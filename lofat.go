// Package lofat is a behavioural reproduction of LO-FAT (Dessouky et
// al., "LO-FAT: Low-Overhead Control Flow ATtestation in Hardware", DAC
// 2017): a hardware control-flow attestation engine for RISC-V embedded
// systems that records a program's run-time control flow — without
// software instrumentation and without stalling the processor — and
// reports it to a remote verifier as a signed (hash, loop-metadata)
// measurement.
//
// The package is a façade over the full stack:
//
//   - an RV32IM assembler and behavioural Pulpino-class core
//     (internal/asm, internal/cpu) standing in for the paper's GCC
//     toolchain and RTL core;
//   - the LO-FAT hardware units: branch filter, loop monitor with
//     path-ID encoding and counter memory, SHA-3 hash engine
//     (internal/filter, internal/monitor, internal/hashengine,
//     integrated in internal/core);
//   - the Figure 2 challenge-response protocol with Ed25519 reports
//     (internal/attest, internal/sig) and the verifier's offline CFG
//     analysis (internal/cfg);
//   - the C-FLAT software baseline and the FPGA area/fmax model used by
//     the evaluation (internal/cflat, internal/area);
//   - the workload suite including the Open Syringe Pump analogue and
//     the three attack classes of Figure 1 (internal/workloads);
//   - the fleet layer (internal/fleet): a verifier-side service scaling
//     the protocol to large fleets of devices on shared firmware — a
//     sharded device registry, a worker-pool verification pipeline with
//     batch submission, a fleet-wide measurement cache that amortizes
//     golden-run simulation across every enrolled device, a periodic
//     sweep scheduler with quarantine, and fleet metrics — hardened
//     against slow, stalling and byzantine devices with per-phase I/O
//     deadlines, bounded retries with jittered backoff, and per-device
//     transport circuit breakers (internal/fleet/faultconn is the
//     fault-injection harness that chaos-tests this layer);
//   - streaming attestation (internal/stream): segmented measurements
//     every N control-flow events, chained so each checkpoint commits
//     to the whole prefix, verified incrementally — divergence rejects
//     at the first bad segment, mid-run, with the offending edge
//     localized and classified against the CFG.
//
// Quick start:
//
//	sys, err := lofat.BuildSource(src, lofat.Options{})
//	res, err := sys.AttestOnce([]uint32{input...})
//	fmt.Println(res) // ACCEPTED (accepted) or REJECTED (+ attack class)
//
// Streamed quick start (see cmd/lofat-stream for a full example):
//
//	res, err := sys.AttestStreamed(input, 64)
//	if res.EarlyAbort { fmt.Println(res.Divergence) } // first bad edge
//
// Fleet quick start (see cmd/lofat-fleet for a full example):
//
//	svc := lofat.NewFleet(lofat.FleetConfig{})
//	progID, err := svc.RegisterProgram(prog, lofat.DeviceConfig{}, inputs)
//	err = svc.Enroll("dev-0001", progID, devicePub, "10.0.0.17:9000")
//	reports, err := svc.Sweep() // or svc.StartScheduler(interval)
package lofat

import (
	"crypto/rand"
	"fmt"
	"io"

	"lofat/internal/area"
	"lofat/internal/asm"
	"lofat/internal/attest"
	"lofat/internal/cfg"
	"lofat/internal/cflat"
	"lofat/internal/core"
	"lofat/internal/cpu"
	"lofat/internal/fleet"
	"lofat/internal/fleet/faultconn"
	"lofat/internal/monitor"
	"lofat/internal/sig"
	"lofat/internal/stream"
	"lofat/internal/workloads"
)

// Re-exported core types: one import surface for downstream users.
type (
	// Program is an assembled RV32IM binary image.
	Program = asm.Program
	// Measurement is the LO-FAT device output (A, L, statistics).
	Measurement = core.Measurement
	// LoopRecord is one entry of the loop metadata L.
	LoopRecord = monitor.LoopRecord
	// PathCode is a unique loop path encoding (Figure 4).
	PathCode = monitor.PathCode
	// DeviceConfig parameterises the LO-FAT hardware.
	DeviceConfig = core.Config
	// Challenge is the verifier's attestation request.
	Challenge = attest.Challenge
	// Report is the prover's signed attestation response.
	Report = attest.Report
	// Result is the verifier's decision, with attack classification.
	Result = attest.Result
	// Classification labels a verification outcome.
	Classification = attest.Classification
	// Adversary is a run-time attack hook (data memory only).
	Adversary = attest.Adversary
	// Machine is a loaded program on the simulated core.
	Machine = cpu.Machine
	// Workload is a ready-made evaluation program.
	Workload = workloads.Workload
	// Attack is a ready-made Figure 1 attack scenario.
	Attack = workloads.Attack
	// AreaConfig / AreaReport drive the §6.2 synthesis model.
	AreaConfig = area.Config
	// AreaReport is a synthesis estimate.
	AreaReport = area.Report
	// CFLATResult is a C-FLAT baseline run.
	CFLATResult = cflat.Result
	// Graph is the verifier's control-flow graph.
	Graph = cfg.Graph

	// Fleet is the verifier-side fleet attestation service.
	Fleet = fleet.Service
	// FleetConfig parameterises a Fleet (shards, workers, cache, ...).
	FleetConfig = fleet.Config
	// FleetMetrics is a snapshot of fleet counters and gauges.
	FleetMetrics = fleet.MetricsSnapshot
	// DeviceID names one enrolled fleet device.
	DeviceID = fleet.DeviceID
	// DeviceState is a registry snapshot of one fleet device.
	DeviceState = fleet.DeviceState
	// SweepReport summarises one fleet attestation sweep.
	SweepReport = fleet.SweepReport
	// FleetRound is one unit of fleet pipeline work.
	FleetRound = fleet.Round
	// FleetOutcome is the pipeline's record of one completed round.
	FleetOutcome = fleet.Outcome
	// MeasurementCache is the fleet-wide golden-measurement store.
	MeasurementCache = fleet.MeasurementCache
	// BreakerState is a fleet device's transport circuit breaker
	// position (healthy / degraded / tripped) — a transport verdict,
	// distinct from measurement-based quarantine.
	BreakerState = fleet.BreakerState
	// SweepError aggregates per-program failures of one fleet sweep.
	SweepError = fleet.SweepError
	// TransportTimeouts are per-phase I/O deadlines for one attestation
	// exchange (challenge write, report/segment reads).
	TransportTimeouts = attest.Timeouts
	// TransportError marks an I/O failure on the frame transport, with
	// Timeout() separating stalled peers from dropped connections.
	TransportError = attest.TransportError
	// FaultPlan selects transport faults (latency, mid-frame stalls,
	// drops, corruption, torn writes) for chaos testing; FaultConn is a
	// connection degraded by one.
	FaultPlan = faultconn.Plan
	FaultConn = faultconn.Conn

	// Segment is one chained checkpoint of a streamed attestation.
	Segment = core.Segment
	// StreamConfig parameterises streamed verification (window size N).
	StreamConfig = stream.Config
	// StreamResult is the outcome of a streamed attestation session.
	StreamResult = stream.Result
	// StreamDivergence localizes the first divergent control-flow edge.
	StreamDivergence = stream.Divergence
	// StreamProver is the device-side half of segmented attestation.
	StreamProver = stream.Prover
	// StreamVerifier opens incrementally-verified sessions.
	StreamVerifier = stream.Verifier
	// StreamSession is one streamed attestation in progress.
	StreamSession = stream.Session
	// SegmentReport is one signed chained sub-measurement on the wire.
	SegmentReport = stream.SegmentReport
)

// Verification outcome classes (Figure 1 attack taxonomy).
const (
	ClassAccepted       = attest.ClassAccepted
	ClassProtocol       = attest.ClassProtocol
	ClassSignature      = attest.ClassSignature
	ClassLoopCounter    = attest.ClassLoopCounter
	ClassControlFlow    = attest.ClassControlFlow
	ClassNonControlData = attest.ClassNonControlData
)

// Transport circuit breaker states (fleet resilience layer).
const (
	BreakerHealthy  = fleet.BreakerHealthy
	BreakerDegraded = fleet.BreakerDegraded
	BreakerTripped  = fleet.BreakerTripped
)

// NewFaultConn wraps a transport in a fault-injection plan — the chaos
// harness used to test the fleet's deadline / retry / breaker layer
// against stalling, dropping and corrupting peers.
func NewFaultConn(inner io.ReadWriteCloser, plan FaultPlan) *FaultConn {
	return faultconn.New(inner, plan)
}

// Assemble builds a program image from RV32IM assembly source.
func Assemble(source string) (*Program, error) { return asm.Assemble(source) }

// Options configures a System.
type Options struct {
	// Device is the LO-FAT hardware configuration (zero = paper
	// defaults: ℓ=16, n=4, depth 3, SHA-3 with 4-deep FIFO).
	Device DeviceConfig
	// Rand supplies entropy for device keys and nonces (default
	// crypto/rand).
	Rand io.Reader
	// MaxInstructions bounds attested executions (default 50M).
	MaxInstructions uint64
}

// System bundles a provisioned prover device and its verifier — the two
// parties of the Figure 2 protocol sharing a program S.
type System struct {
	Program  *Program
	Prover   *attest.Prover
	Verifier *attest.Verifier
}

// Build provisions a prover/verifier pair for an assembled program:
// device key generation, verifier enrolment (public key + binary), and
// the verifier's offline CFG analysis.
func Build(prog *Program, opts Options) (*System, error) {
	if opts.Rand == nil {
		opts.Rand = rand.Reader
	}
	keys, err := sig.GenerateKeyStore(opts.Rand)
	if err != nil {
		return nil, err
	}
	p := attest.NewProver(prog, opts.Device, keys)
	v, err := attest.NewVerifier(prog, opts.Device, keys.Public(), opts.Rand)
	if err != nil {
		return nil, err
	}
	if opts.MaxInstructions > 0 {
		p.MaxInstructions = opts.MaxInstructions
		v.MaxInstructions = opts.MaxInstructions
	}
	return &System{Program: prog, Prover: p, Verifier: v}, nil
}

// BuildSource is Build for assembly source.
func BuildSource(source string, opts Options) (*System, error) {
	prog, err := Assemble(source)
	if err != nil {
		return nil, err
	}
	return Build(prog, opts)
}

// BuildWorkload is Build for a named workload from the evaluation suite.
func BuildWorkload(name string, opts Options) (*System, Workload, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, Workload{}, fmt.Errorf("lofat: unknown workload %q", name)
	}
	prog, err := w.Assemble()
	if err != nil {
		return nil, Workload{}, err
	}
	sys, err := Build(prog, opts)
	return sys, w, err
}

// SetAdversary installs a run-time attack on the prover device (for
// experiments; nil removes it).
func (s *System) SetAdversary(a Adversary) { s.Prover.Adversary = a }

// NewStreamProver wraps a prover for segmented streaming attestation.
func NewStreamProver(p *attest.Prover) *StreamProver { return stream.NewProver(p) }

// NewStreamVerifier wraps a verifier for incremental streamed
// verification with the given checkpoint window.
func NewStreamVerifier(v *attest.Verifier, cfg StreamConfig) *StreamVerifier {
	return stream.NewVerifier(v, cfg)
}

// AttestStreamed runs one full streamed attestation round in memory:
// the device's chained segments are verified as they seal, every
// segmentEvents control-flow events (0 selects the default window). A
// divergence rejects at the first bad segment — aborting the device
// run mid-execution — with the offending edge localized in
// Result.Divergence.
func (s *System) AttestStreamed(input []uint32, segmentEvents int) (StreamResult, error) {
	sp := stream.NewProver(s.Prover)
	sv := stream.NewVerifier(s.Verifier, StreamConfig{SegmentEvents: segmentEvents})
	return stream.AttestOnce(sp, sv, input, nil)
}

// AttestOnce runs one full challenge-response round in memory: fresh
// challenge for input, prover execution under LO-FAT, verification.
func (s *System) AttestOnce(input []uint32) (Result, error) {
	ch, err := s.Verifier.NewChallenge(input)
	if err != nil {
		return Result{}, err
	}
	rep, err := s.Prover.Attest(ch)
	if err != nil {
		return Result{}, err
	}
	return s.Verifier.Verify(ch, rep), nil
}

// Measure runs a program under the LO-FAT device with no protocol
// around it and returns the raw measurement — the device-level API.
func Measure(prog *Program, device DeviceConfig, input []uint32) (Measurement, error) {
	m, _, err := attest.Measure(prog, device, input, 50_000_000)
	return m, err
}

// MeasureSource is Measure for assembly source.
func MeasureSource(source string, device DeviceConfig, input []uint32) (Measurement, error) {
	prog, err := Assemble(source)
	if err != nil {
		return Measurement{}, err
	}
	return Measure(prog, device, input)
}

// Workloads returns the full evaluation workload suite (syringe pump
// first, then the kernels and extended programs).
func Workloads() []Workload { return workloads.All2() }

// Attacks returns the Figure 1 attack scenarios.
func Attacks() []Attack { return workloads.Attacks() }

// EstimateArea runs the §6.2 synthesis model.
func EstimateArea(cfg AreaConfig) AreaReport { return area.Estimate(cfg) }

// RunCFLAT executes a program under the C-FLAT software baseline's cost
// model, for overhead comparisons against LO-FAT's zero stalls.
func RunCFLAT(prog *Program, input []uint32) (CFLATResult, error) {
	return cflat.NewRunner().Run(prog, input)
}

// MetadataSize reports the encoded size in bytes of loop metadata L.
func MetadataSize(loops []LoopRecord) int { return attest.MetadataSize(loops) }

// NewFleet builds a fleet attestation service and starts its worker
// pool. Register firmware with RegisterProgram, enrol devices with
// Enroll, then drive rounds with Sweep or StartScheduler.
func NewFleet(cfg FleetConfig) *Fleet { return fleet.NewService(cfg) }
