// Attested regions: function-granular attestation in hardware.
//
// C-FLAT attests selected functions by instrumenting them; LO-FAT can
// restrict measurement to a code range purely in device configuration —
// the binary stays untouched. This example measures the pump-FSM
// firmware twice: whole-program, and with only the dispense routine
// attested, comparing event counts, metadata, and hash stability.
//
// Run with: go run ./examples/regions
package main

import (
	"fmt"
	"log"

	"lofat"
	"lofat/internal/core"
)

func main() {
	w, ok := pumpFSM()
	if !ok {
		log.Fatal("pump-fsm workload missing")
	}
	prog, err := lofat.Assemble(w.Source)
	if err != nil {
		log.Fatal(err)
	}

	full, err := lofat.Measure(prog, lofat.DeviceConfig{}, w.Input)
	if err != nil {
		log.Fatal(err)
	}

	region := core.Region{
		Start: prog.Labels["do_dispense"],
		End:   prog.Labels["shutdown"],
	}
	part, err := lofat.Measure(prog, lofat.DeviceConfig{Region: region}, w.Input)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("whole program: %4d events, %2d loop records, |L| = %4d B\n",
		full.Stats.ControlFlowEvents, len(full.Loops), lofat.MetadataSize(full.Loops))
	fmt.Printf("dispense only: %4d events, %2d loop records, |L| = %4d B\n",
		part.Stats.ControlFlowEvents, len(part.Loops), lofat.MetadataSize(part.Loops))

	fmt.Println("\ndispense-region loop records:")
	for _, r := range part.Loops {
		fmt.Println("  ", r)
	}

	fmt.Println("\nregion-restricted measurement remains deterministic:",
		check(prog, region, w.Input, part.Hash))
}

func pumpFSM() (lofat.Workload, bool) {
	for _, w := range lofat.Workloads() {
		if w.Name == "pump-fsm" {
			return w, true
		}
	}
	return lofat.Workload{}, false
}

func check(prog *lofat.Program, region core.Region, input []uint32, want [64]byte) bool {
	m, err := lofat.Measure(prog, lofat.DeviceConfig{Region: region}, input)
	if err != nil {
		return false
	}
	return m.Hash == want
}
