// Quickstart: attest a small embedded program end to end.
//
// The program is assembled for the simulated RISC-V core, a LO-FAT
// device is attached to its trace port, and one full challenge-response
// round of the Figure 2 protocol runs in memory: the verifier sends a
// fresh nonce and input, the prover executes under hardware observation
// and returns a signed (A, L) measurement, and the verifier checks it
// against its own golden execution.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lofat"
)

// A countdown with a data-dependent branch: odd counts take one path,
// even counts another, so the loop has two distinct path IDs.
const source = `
main:
	li   a7, 63
	ecall               # read the trip count from the verifier input
	mv   s0, a0
	li   s1, 0
loop:
	andi t0, s0, 1
	beqz t0, even
	addi s1, s1, 3      # odd step
	j    next
even:
	addi s1, s1, 1      # even step
next:
	addi s0, s0, -1
	bnez s0, loop
	mv   a0, s1
	li   a7, 93
	ecall
`

func main() {
	// Build provisions the device key, enrolls the verifier, and runs
	// the verifier's offline CFG analysis of the binary.
	sys, err := lofat.BuildSource(source, lofat.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// One attestation round with input 10.
	res, err := sys.AttestOnce([]uint32{10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("attestation:", res)

	// Look inside the measurement the verifier expected: the hash A
	// and the loop metadata L with per-path iteration counters.
	fmt.Printf("hash A: %x...\n", res.Expected.Hash[:16])
	for _, rec := range res.Expected.Loops {
		fmt.Println("loop:", rec)
	}

	// The headline property: the device never stalled the processor.
	fmt.Printf("processor stall cycles: %d\n",
		res.Expected.Stats.ProcessorStallCycles)
	fmt.Printf("pairs deduplicated by loop compression: %d of %d events\n",
		res.Expected.Stats.DedupedPairs, res.Expected.Stats.ControlFlowEvents)
}
