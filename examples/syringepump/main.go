// Syringe pump: the paper's motivating embedded application (§2, §6.1).
//
// A medical syringe pump dispenses boluses of liquid as motor-step
// loops. The example runs three scenarios against the same firmware:
//
//  1. a benign dispense, accepted by the verifier;
//  2. a loop-counter attack (Figure 1 class 2): the adversary bumps the
//     remaining-steps variable mid-bolus so the pump over-dispenses —
//     every executed path stays legitimate, the hash A is UNCHANGED,
//     and only the loop metadata L reveals the extra iterations;
//  3. an authentication bypass (class 1): the adversary rewrites the
//     stored secret so an invalid token takes the privileged path — a
//     CFG-valid but unexpected control flow.
//
// Run with: go run ./examples/syringepump
package main

import (
	"fmt"
	"log"

	"lofat"
)

func main() {
	sys, pump, err := lofat.BuildWorkload("syringe-pump", lofat.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Scenario 1: benign dispense of two boluses (5 + 3 steps).
	res, err := sys.AttestOnce(pump.Input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("benign dispense:       ", res)

	// Scenario 2: loop-counter corruption. Find the ready-made attack
	// and install its adversary on the prover.
	for _, atk := range lofat.Attacks() {
		if atk.Name != "loop-counter" {
			continue
		}
		sys.SetAdversary(atk.Build(sys.Program))
		res, err = sys.AttestOnce(atk.Workload.Input)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("loop-counter attack:   ", res)
		for _, f := range res.Findings {
			fmt.Println("   finding:", f)
		}
		fmt.Printf("   hash A changed: %v (detection rests on L alone)\n",
			res.Got.Hash != res.Expected.Hash)
		sys.SetAdversary(nil)
	}

	// Scenario 3: authentication bypass with an invalid token.
	for _, atk := range lofat.Attacks() {
		if atk.Name != "auth-bypass" {
			continue
		}
		sys.SetAdversary(atk.Build(sys.Program))
		res, err = sys.AttestOnce(atk.Workload.Input)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("auth-bypass attack:    ", res)
		for _, f := range res.Findings {
			fmt.Println("   finding:", f)
		}
		sys.SetAdversary(nil)
	}
}
