// Design-space exploration: the §6.2 configuration trade-off.
//
// LO-FAT's loop-path memories dominate its BRAM budget (8·2^ℓ bits per
// nesting level), while the indirect-target CAM sits on the critical
// path (80 MHz at n=4). This example sweeps both knobs, prints the
// area/fmax frontier from the synthesis model, and then MEASURES the
// functional cost of shrinking them — overflowed path IDs and CAM
// overflow codes on the workload suite — so the trade-off between
// granularity and memory the paper describes is visible end to end.
//
// Run with: go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"lofat"
	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/monitor"
)

func main() {
	fmt.Println("== synthesis model: area/fmax frontier ==")
	for _, l := range []int{8, 12, 16} {
		for _, n := range []int{2, 4} {
			r := lofat.EstimateArea(lofat.AreaConfig{BranchesPerPath: l, IndirectBits: n})
			fmt.Println(r)
		}
	}

	fmt.Println("\n== measured granularity cost of shrinking ℓ and n ==")
	fmt.Printf("%-14s %4s %4s %14s %14s %12s\n",
		"workload", "ℓ", "n", "overflow-paths", "cam-overflows", "deduped")
	for _, w := range lofat.Workloads() {
		prog, err := lofat.Assemble(w.Source)
		if err != nil {
			log.Fatal(err)
		}
		for _, cfg := range []struct{ l, n int }{{16, 4}, {6, 4}, {16, 2}, {4, 2}} {
			dev := core.Config{Monitor: monitor.Config{
				MaxBranchesPerPath: cfg.l, IndirectBits: cfg.n}}
			m, _, err := attest.Measure(prog, dev, w.Input, 50_000_000)
			if err != nil {
				log.Fatal(err)
			}
			var ovfPaths int
			var camOvf uint64
			for _, rec := range m.Loops {
				for _, p := range rec.Paths {
					if p.Code.Overflow {
						ovfPaths++
					}
				}
				camOvf += rec.IndirectOverflows
			}
			fmt.Printf("%-14s %4d %4d %14d %14d %12d\n",
				w.Name, cfg.l, cfg.n, ovfPaths, camOvf, m.Stats.DedupedPairs)
		}
	}
	fmt.Println("\nsmaller ℓ saves 16x BRAM per step of 4 but overflows long loop")
	fmt.Println("bodies (losing dedup); smaller n saves CAM area and raises fmax")
	fmt.Println("but aliases indirect targets under the all-zero overflow code.")
}
