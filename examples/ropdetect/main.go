// ROP detection: attack class 3 of Figure 1 (code-pointer overwrite).
//
// The victim firmware dispatches through a function pointer held in
// writable data — the classic embedded pattern that code-reuse attacks
// hijack. The adversary redirects the pointer into the middle of an
// auth-gated maintenance routine, skipping its check (a gadget entry).
//
// Because the hijacked call happens inside a loop, its target lands in
// the loop's indirect-target CAM and therefore in the reported metadata
// L. The verifier's CFG walk then shows the edge is not a legitimate
// function entry: hard evidence of a control-flow attack, not just a
// measurement mismatch.
//
// Run with: go run ./examples/ropdetect
package main

import (
	"fmt"
	"log"

	"lofat"
)

func main() {
	var atk lofat.Attack
	for _, a := range lofat.Attacks() {
		if a.Name == "code-pointer" {
			atk = a
		}
	}

	prog, err := lofat.Assemble(atk.Workload.Source)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := lofat.Build(prog, lofat.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Benign dispatch: three rounds through the safe handler.
	res, err := sys.AttestOnce(atk.Workload.Input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("benign dispatch:", res)
	for _, rec := range res.Expected.Loops {
		fmt.Printf("  expected loop %v, indirect targets %#x\n", rec, rec.IndirectTargets)
	}

	// Hijack the handler pointer.
	sys.SetAdversary(atk.Build(prog))
	res, err = sys.AttestOnce(atk.Workload.Input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhijacked dispatch:", res)
	for _, f := range res.Findings {
		fmt.Println("  finding:", f)
	}
	if res.Got != nil {
		for _, rec := range res.Got.Loops {
			fmt.Printf("  reported loop %v, indirect targets %#x\n", rec, rec.IndirectTargets)
		}
	}
	fmt.Println("\nthe gadget address appears in the reported CAM targets; the")
	fmt.Println("verifier's CFG walk rejects it as a non-entry — class 3 detected.")
}
