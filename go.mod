module lofat

go 1.24
