package mem

import "testing"

// TestMemHotPathZeroAlloc is the runtime proof behind the
// //lofat:zeroalloc annotations on the load/store/fetch path: every
// access width plus the segment lookup helpers stay allocation-free in
// the steady state (faults are the sanctioned cold path).
func TestMemHotPathZeroAlloc(t *testing.T) {
	m := New()
	seg, err := m.Map("ram", 0x1000, 0x1000, PermR|PermW|PermX)
	if err != nil {
		t.Fatal(err)
	}
	var sink uint32
	run := func() {
		_ = seg.Contains(0x1000, 4)
		_ = m.StoreWord(0x1000, 0xdeadbeef)
		_ = m.StoreHalf(0x1010, 0xbeef)
		_ = m.StoreByte(0x1020, 0x7f)
		w, _ := m.LoadWord(0x1000)
		h, _ := m.LoadHalf(0x1010)
		b, _ := m.LoadByte(0x1020)
		f, _ := m.Fetch(0x1000)
		sink = w + uint32(h) + uint32(b) + f
	}
	run() // warm any lazily-built segment state
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Fatalf("memory hot path allocates %v per run, want 0", n)
	}
	var want uint32 = 0xdeadbeef
	want += 0xbeef + 0x7f
	want += 0xdeadbeef
	if sink != want {
		t.Fatalf("access values corrupted: sink %#x, want %#x", sink, want)
	}
}
