// Package mem models the prover's program memory: a read-execute code
// segment and a read-write data segment (§2, Figure 1). The permission
// split is what makes the paper's adversary model meaningful — the
// attacker "has full control over the data memory ... but cannot modify
// program code at run-time (marked rx)". Store faults into the code
// segment are therefore hard errors, while the data segment is freely
// writable, including by the simulated adversary.
package mem

import (
	"encoding/binary"
	"fmt"
)

// Perm is a segment permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
)

// String renders the permissions in ls -l style.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// AccessKind describes the access that faulted.
type AccessKind uint8

// Kinds of memory access.
const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessFetch
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessFetch:
		return "fetch"
	}
	return "access"
}

// Fault is returned for permission violations and unmapped accesses.
type Fault struct {
	Kind AccessKind
	Addr uint32
	Size int
	Why  string
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("mem: %s fault at %#08x (size %d): %s", f.Kind, f.Addr, f.Size, f.Why)
}

// Segment is a contiguous region of the address space.
type Segment struct {
	Name string
	Base uint32
	Perm Perm
	Data []byte

	// [dirtyLo, dirtyHi) is the offset window written since the segment
	// was mapped (or last ResetData): the only bytes a reset must
	// re-zero. Embedded programs touch a tiny fraction of their 64 KiB
	// stack/BSS maps, so tracking the window makes machine reuse cheap.
	dirtyLo, dirtyHi uint32
}

// markDirty widens the dirty window to cover [off, off+n).
//
//lofat:zeroalloc
func (s *Segment) markDirty(off uint32, n int) {
	end := off + uint32(n)
	if s.dirtyHi == s.dirtyLo { // empty window
		s.dirtyLo, s.dirtyHi = off, end
		return
	}
	if off < s.dirtyLo {
		s.dirtyLo = off
	}
	if end > s.dirtyHi {
		s.dirtyHi = end
	}
}

// ResetData zeroes every byte written since the segment was mapped (or
// since the last ResetData), restoring the freshly-mapped all-zero
// state without touching untouched pages.
func (s *Segment) ResetData() {
	if s.dirtyHi > s.dirtyLo {
		clear(s.Data[s.dirtyLo:s.dirtyHi])
	}
	s.dirtyLo, s.dirtyHi = 0, 0
}

// Contains reports whether [addr, addr+size) lies inside the segment.
//
//lofat:zeroalloc
func (s *Segment) Contains(addr uint32, size int) bool {
	end := uint64(addr) + uint64(size)
	return addr >= s.Base && end <= uint64(s.Base)+uint64(len(s.Data))
}

// Memory is a small segmented physical memory. Lookups scan the segment
// list; embedded layouts have only two or three segments so this is both
// simple and fast.
type Memory struct {
	segs []*Segment
}

// New returns an empty memory.
func New() *Memory { return &Memory{} }

// Map adds a segment. Overlapping segments are rejected.
func (m *Memory) Map(name string, base uint32, size int, perm Perm) (*Segment, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mem: map %s: non-positive size %d", name, size)
	}
	end := uint64(base) + uint64(size)
	if end > 1<<32 {
		return nil, fmt.Errorf("mem: map %s: segment wraps address space", name)
	}
	for _, s := range m.segs {
		sEnd := uint64(s.Base) + uint64(len(s.Data))
		if uint64(base) < sEnd && end > uint64(s.Base) {
			return nil, fmt.Errorf("mem: map %s: overlaps segment %s", name, s.Name)
		}
	}
	seg := &Segment{Name: name, Base: base, Perm: perm, Data: make([]byte, size)}
	m.segs = append(m.segs, seg)
	return seg, nil
}

// Segments returns the mapped segments (shared, do not mutate the slice).
func (m *Memory) Segments() []*Segment { return m.segs }

// ResetData restores every segment to its freshly-mapped all-zero state
// by clearing the tracked dirty windows. Callers re-load any initial
// images afterwards (the trusted-boot step), exactly as at first map.
func (m *Memory) ResetData() {
	for _, s := range m.segs {
		s.ResetData()
	}
}

// find returns the segment containing the access, or nil.
//
//lofat:zeroalloc
func (m *Memory) find(addr uint32, size int) *Segment {
	for _, s := range m.segs {
		if s.Contains(addr, size) {
			return s
		}
	}
	return nil
}

//lofat:zeroalloc
func (m *Memory) check(kind AccessKind, addr uint32, size int, need Perm) (*Segment, error) {
	s := m.find(addr, size)
	if s == nil {
		//lofat:ignore zeroalloc cold fault path: an unmapped access ends the run
		return nil, &Fault{Kind: kind, Addr: addr, Size: size, Why: "unmapped"}
	}
	if s.Perm&need != need {
		//lofat:ignore zeroalloc cold fault path: a permission fault ends the run
		why := fmt.Sprintf("segment %s is %s", s.Name, s.Perm)
		//lofat:ignore zeroalloc cold fault path: a permission fault ends the run
		return nil, &Fault{Kind: kind, Addr: addr, Size: size, Why: why}
	}
	return s, nil
}

// LoadByte loads one byte with read permission checking.
//
//lofat:zeroalloc
func (m *Memory) LoadByte(addr uint32) (byte, error) {
	s, err := m.check(AccessRead, addr, 1, PermR)
	if err != nil {
		return 0, err
	}
	return s.Data[addr-s.Base], nil
}

// LoadHalf loads a little-endian 16-bit value.
//
//lofat:zeroalloc
func (m *Memory) LoadHalf(addr uint32) (uint16, error) {
	s, err := m.check(AccessRead, addr, 2, PermR)
	if err != nil {
		return 0, err
	}
	off := addr - s.Base
	return binary.LittleEndian.Uint16(s.Data[off : off+2]), nil
}

// LoadWord loads a little-endian 32-bit value.
//
//lofat:zeroalloc
func (m *Memory) LoadWord(addr uint32) (uint32, error) {
	s, err := m.check(AccessRead, addr, 4, PermR)
	if err != nil {
		return 0, err
	}
	off := addr - s.Base
	return binary.LittleEndian.Uint32(s.Data[off : off+4]), nil
}

// StoreByte stores one byte with write permission checking.
//
//lofat:zeroalloc
func (m *Memory) StoreByte(addr uint32, v byte) error {
	s, err := m.check(AccessWrite, addr, 1, PermW)
	if err != nil {
		return err
	}
	off := addr - s.Base
	s.Data[off] = v
	s.markDirty(off, 1)
	return nil
}

// StoreHalf stores a little-endian 16-bit value.
//
//lofat:zeroalloc
func (m *Memory) StoreHalf(addr uint32, v uint16) error {
	s, err := m.check(AccessWrite, addr, 2, PermW)
	if err != nil {
		return err
	}
	off := addr - s.Base
	binary.LittleEndian.PutUint16(s.Data[off:off+2], v)
	s.markDirty(off, 2)
	return nil
}

// StoreWord stores a little-endian 32-bit value.
//
//lofat:zeroalloc
func (m *Memory) StoreWord(addr uint32, v uint32) error {
	s, err := m.check(AccessWrite, addr, 4, PermW)
	if err != nil {
		return err
	}
	off := addr - s.Base
	binary.LittleEndian.PutUint32(s.Data[off:off+4], v)
	s.markDirty(off, 4)
	return nil
}

// Fetch loads an instruction word; the segment must be executable.
//
//lofat:zeroalloc
func (m *Memory) Fetch(addr uint32) (uint32, error) {
	if addr&3 != 0 {
		//lofat:ignore zeroalloc cold fault path: a misaligned PC ends the run
		return 0, &Fault{Kind: AccessFetch, Addr: addr, Size: 4, Why: "misaligned PC"}
	}
	s, err := m.check(AccessFetch, addr, 4, PermX)
	if err != nil {
		return 0, err
	}
	off := addr - s.Base
	return binary.LittleEndian.Uint32(s.Data[off : off+4]), nil
}

// LoadImage copies bytes into a segment regardless of its run-time
// permissions. It models the trusted boot loader that installs the
// statically-attested binary before execution starts.
func (m *Memory) LoadImage(addr uint32, data []byte) error {
	s := m.find(addr, len(data))
	if s == nil {
		return &Fault{Kind: AccessWrite, Addr: addr, Size: len(data), Why: "unmapped (image load)"}
	}
	off := addr - s.Base
	copy(s.Data[off:], data)
	s.markDirty(off, len(data))
	return nil
}

// Poke writes a word bypassing permissions. It models the paper's
// adversary: "full control over the data memory". Poke still refuses to
// touch executable segments — the adversary "cannot modify program code
// at run-time" — so attack scenarios built on Poke stay within the threat
// model by construction.
func (m *Memory) Poke(addr uint32, v uint32) error {
	s := m.find(addr, 4)
	if s == nil {
		return &Fault{Kind: AccessWrite, Addr: addr, Size: 4, Why: "unmapped (poke)"}
	}
	if s.Perm&PermX != 0 {
		return &Fault{Kind: AccessWrite, Addr: addr, Size: 4,
			Why: "adversary cannot modify rx code segment"}
	}
	off := addr - s.Base
	binary.LittleEndian.PutUint32(s.Data[off:off+4], v)
	s.markDirty(off, 4)
	return nil
}

// Peek reads a word bypassing permissions (adversary/debugger view).
func (m *Memory) Peek(addr uint32) (uint32, error) {
	s := m.find(addr, 4)
	if s == nil {
		return 0, &Fault{Kind: AccessRead, Addr: addr, Size: 4, Why: "unmapped (peek)"}
	}
	off := addr - s.Base
	return binary.LittleEndian.Uint32(s.Data[off : off+4]), nil
}
