package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func newTestMem(t *testing.T) *Memory {
	t.Helper()
	m := New()
	if _, err := m.Map("code", 0x1000, 0x1000, PermR|PermX); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("data", 0x8000, 0x1000, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := newTestMem(t)
	if err := m.StoreWord(0x8000, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := m.LoadWord(0x8000)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("LoadWord = %#x, %v", v, err)
	}
	// Little-endian byte order.
	b, err := m.LoadByte(0x8000)
	if err != nil || b != 0xEF {
		t.Fatalf("LoadByte = %#x, %v; want 0xEF", b, err)
	}
	h, err := m.LoadHalf(0x8002)
	if err != nil || h != 0xDEAD {
		t.Fatalf("LoadHalf = %#x, %v; want 0xDEAD", h, err)
	}
	if err := m.StoreHalf(0x8004, 0x1234); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreByte(0x8006, 0x56); err != nil {
		t.Fatal(err)
	}
	h, _ = m.LoadHalf(0x8004)
	if h != 0x1234 {
		t.Fatalf("LoadHalf = %#x, want 0x1234", h)
	}
}

func TestPermissionEnforcement(t *testing.T) {
	m := newTestMem(t)

	// Writing code must fault (W^X: code is rx).
	err := m.StoreWord(0x1000, 1)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != AccessWrite {
		t.Fatalf("write to code: got %v, want write Fault", err)
	}

	// Fetching data must fault (data is rw, not x).
	if _, err := m.Fetch(0x8000); err == nil {
		t.Fatal("fetch from data segment succeeded, want fault")
	}

	// Reading code is allowed (r).
	if _, err := m.LoadWord(0x1000); err != nil {
		t.Fatalf("read from code: %v", err)
	}

	// Unmapped access faults.
	if _, err := m.LoadWord(0x100000); err == nil {
		t.Fatal("unmapped read succeeded")
	}
	if err := m.StoreWord(0x100000, 1); err == nil {
		t.Fatal("unmapped write succeeded")
	}

	// Misaligned fetch faults.
	if _, err := m.Fetch(0x1002); err == nil {
		t.Fatal("misaligned fetch succeeded")
	}
}

func TestSegmentBoundary(t *testing.T) {
	m := newTestMem(t)
	// Word read straddling the end of a segment must fault, not read
	// into the void.
	if _, err := m.LoadWord(0x8FFE); err == nil {
		t.Fatal("straddling read succeeded")
	}
	// Last valid word is fine.
	if _, err := m.LoadWord(0x8FFC); err != nil {
		t.Fatalf("last word read: %v", err)
	}
}

func TestMapOverlapRejected(t *testing.T) {
	m := newTestMem(t)
	if _, err := m.Map("evil", 0x1800, 0x100, PermR|PermW); err == nil {
		t.Fatal("overlapping Map succeeded")
	}
	if _, err := m.Map("zero", 0x20000, 0, PermR); err == nil {
		t.Fatal("zero-size Map succeeded")
	}
	if _, err := m.Map("wrap", 0xFFFFFFF0, 0x100, PermR); err == nil {
		t.Fatal("wrapping Map succeeded")
	}
	// Adjacent (non-overlapping) is fine.
	if _, err := m.Map("ok", 0x2000, 0x100, PermR); err != nil {
		t.Fatalf("adjacent Map: %v", err)
	}
}

func TestLoadImageBypassesPerms(t *testing.T) {
	m := newTestMem(t)
	img := []byte{0x13, 0x00, 0x00, 0x00} // nop
	if err := m.LoadImage(0x1000, img); err != nil {
		t.Fatal(err)
	}
	w, err := m.Fetch(0x1000)
	if err != nil || w != 0x00000013 {
		t.Fatalf("Fetch = %#x, %v", w, err)
	}
	if err := m.LoadImage(0x100000, img); err == nil {
		t.Fatal("LoadImage into unmapped memory succeeded")
	}
}

func TestAdversaryPoke(t *testing.T) {
	m := newTestMem(t)
	// Adversary can corrupt data...
	if err := m.Poke(0x8100, 0x41414141); err != nil {
		t.Fatalf("Poke data: %v", err)
	}
	v, _ := m.Peek(0x8100)
	if v != 0x41414141 {
		t.Fatalf("Peek = %#x", v)
	}
	// ...but not code (rx), per the threat model.
	if err := m.Poke(0x1000, 0x41414141); err == nil {
		t.Fatal("Poke into rx code segment succeeded; violates threat model")
	}
	if _, err := m.Peek(0x100000); err == nil {
		t.Fatal("Peek unmapped succeeded")
	}
	if err := m.Poke(0x100000, 1); err == nil {
		t.Fatal("Poke unmapped succeeded")
	}
}

// Property: for any in-range offset and value, a word write followed by a
// word read returns the value and leaves neighbours untouched.
func TestWriteReadProperty(t *testing.T) {
	m := newTestMem(t)
	f := func(off uint16, v uint32) bool {
		addr := 0x8000 + uint32(off)%(0x1000-8)
		addr &^= 3
		if err := m.StoreWord(addr, v); err != nil {
			return false
		}
		got, err := m.LoadWord(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermString(t *testing.T) {
	if s := (PermR | PermX).String(); s != "r-x" {
		t.Errorf("PermR|PermX = %q, want r-x", s)
	}
	if s := (PermR | PermW).String(); s != "rw-" {
		t.Errorf("PermR|PermW = %q, want rw-", s)
	}
	if s := Perm(0).String(); s != "---" {
		t.Errorf("Perm(0) = %q, want ---", s)
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Kind: AccessWrite, Addr: 0x1000, Size: 4, Why: "test"}
	want := "mem: write fault at 0x00001000 (size 4): test"
	if f.Error() != want {
		t.Errorf("Fault.Error() = %q, want %q", f.Error(), want)
	}
	for _, k := range []AccessKind{AccessRead, AccessWrite, AccessFetch} {
		if k.String() == "access" {
			t.Errorf("AccessKind %d has no name", k)
		}
	}
}

// TestResetDataRestoresZeroState verifies dirty-window reset: every
// write path (stores, pokes, image loads) is tracked, and ResetData
// returns the segment to all-zero without missing any byte.
func TestResetDataRestoresZeroState(t *testing.T) {
	m := New()
	if _, err := m.Map("data", 0x1000, 4096, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreByte(0x1003, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreHalf(0x1F00, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreWord(0x1800, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if err := m.Poke(0x1FF8, 0x12345678); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(0x1100, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	m.ResetData()
	seg := m.Segments()[0]
	for i, b := range seg.Data {
		if b != 0 {
			t.Fatalf("byte %#x not re-zeroed (=%#x)", 0x1000+i, b)
		}
	}
	// The window restarts empty: a fresh write then reset still clears.
	if err := m.StoreWord(0x1004, 7); err != nil {
		t.Fatal(err)
	}
	m.ResetData()
	if w, _ := m.Peek(0x1004); w != 0 {
		t.Fatalf("second-generation dirty byte survived reset: %#x", w)
	}
}
