package area

import (
	"math"
	"testing"
)

// The model must reproduce §6.2's reported numbers at the paper's
// configuration.
func TestPaperCalibration(t *testing.T) {
	r := Estimate(Config{}) // defaults = paper prototype

	// "Tracking ℓ branches per path in a loop requires 8 x 2^ℓ bits":
	// ℓ=16 -> 524288 bits; with depth 3 that is the "dedicated 1.5
	// Mbits memory" of §5.2.
	if r.LoopMemBitsPerLevel != 8*65536 {
		t.Errorf("loop mem bits = %d, want %d", r.LoopMemBitsPerLevel, 8*65536)
	}
	totalBits := r.LoopMemBitsPerLevel * uint64(r.Config.NestingDepth)
	if got := float64(totalBits) / 1e6; math.Abs(got-1.57) > 0.1 {
		t.Errorf("total loop memory = %.2f Mbit, want ~1.5", got)
	}

	// "16 BRAMs per loop ... up to 3 levels of nested loops ... 48
	// BRAMs"; "49 36Kbit Block RAM (BRAMs) are utilized".
	if r.BRAMPerLevel != 16 {
		t.Errorf("BRAM/level = %d, want 16", r.BRAMPerLevel)
	}
	if r.BRAMLoops != 48 {
		t.Errorf("loop BRAMs = %d, want 48", r.BRAMLoops)
	}
	if r.BRAMTotal != 49 {
		t.Errorf("total BRAMs = %d, want 49", r.BRAMTotal)
	}

	// "LO-FAT consumes 4% of the available registers and 6% of
	// available LUTs" (±1 point of model tolerance).
	if math.Abs(100*r.UtilLUT-6) > 1 {
		t.Errorf("LUT util = %.2f%%, want ~6%%", 100*r.UtilLUT)
	}
	if math.Abs(100*r.UtilFF-4) > 1 {
		t.Errorf("FF util = %.2f%%, want ~4%%", 100*r.UtilFF)
	}

	// "an average of 20% additional logic overhead to the Pulpino SoC".
	if math.Abs(100*r.LogicOverheadVsPulpino-20) > 3 {
		t.Errorf("logic overhead = %.1f%%, want ~20%%", 100*r.LogicOverheadVsPulpino)
	}

	// "maximum clock frequency of 80 MHz".
	if r.FmaxMHz != 80 {
		t.Errorf("fmax = %.0f MHz, want 80", r.FmaxMHz)
	}
}

// "Configuring these parameters to lower numbers reduces the memory
// requirements significantly" — the sweep must be monotone.
func TestMemoryMonotoneInBranches(t *testing.T) {
	prev := -1
	for _, l := range []int{8, 10, 12, 14, 16} {
		r := Estimate(Config{BranchesPerPath: l})
		if prev >= 0 && r.BRAMLoops < prev {
			t.Errorf("ℓ=%d: loop BRAMs %d < previous %d", l, r.BRAMLoops, prev)
		}
		prev = r.BRAMLoops
	}
	// Halving ℓ from 16 to 12 must cut loop memory by 16x.
	big := Estimate(Config{BranchesPerPath: 16})
	small := Estimate(Config{BranchesPerPath: 12})
	if small.LoopMemBitsPerLevel*16 != big.LoopMemBitsPerLevel {
		t.Errorf("8*2^l scaling broken: %d vs %d", small.LoopMemBitsPerLevel, big.LoopMemBitsPerLevel)
	}
}

func TestDepthScaling(t *testing.T) {
	for d := 1; d <= 4; d++ {
		r := Estimate(Config{NestingDepth: d})
		if r.BRAMLoops != 16*d {
			t.Errorf("depth %d: loop BRAMs = %d, want %d", d, r.BRAMLoops, 16*d)
		}
	}
}

// The CAM alternative (§6.2): much less BRAM, more logic, fmax no worse.
func TestCAMAlternative(t *testing.T) {
	ram := Estimate(Config{})
	cam := Estimate(Config{UseCAMForLoopMem: true})
	if cam.BRAMLoops != 0 {
		t.Errorf("CAM variant uses %d loop BRAMs", cam.BRAMLoops)
	}
	if cam.LUTs <= ram.LUTs {
		t.Errorf("CAM variant LUTs %d <= RAM variant %d (parallel search is logic-consuming)",
			cam.LUTs, ram.LUTs)
	}
}

// Removing indirect-branch tracking removes the CAM from the critical
// path: "Eliminating the CAM access results in a much higher clock
// frequency", capped by the 150 MHz hash engine.
func TestFmaxWithoutCAM(t *testing.T) {
	r := Estimate(Config{IndirectBits: -1}) // disabled... fill() restores 0? use direct call
	_ = r
	if f := fmax(Config{IndirectBits: 0}); f != 150 {
		t.Errorf("fmax without CAM = %.0f, want 150 (hash engine cap)", f)
	}
	if f := fmax(Config{IndirectBits: 2}); f <= 80 {
		t.Errorf("narrower CAM fmax = %.0f, want > 80", f)
	}
	if f := fmax(Config{IndirectBits: 8}); f >= 80 {
		t.Errorf("wider CAM fmax = %.0f, want < 80", f)
	}
}

func TestSweep(t *testing.T) {
	cfgs := []Config{{BranchesPerPath: 8}, {BranchesPerPath: 16}}
	rs := Sweep(cfgs)
	if len(rs) != 2 || rs[0].Config.BranchesPerPath != 8 {
		t.Fatalf("sweep = %+v", rs)
	}
	if rs[0].String() == "" {
		t.Error("empty report string")
	}
}

// Utilisation must stay within the device at all supported configs.
func TestFitsDevice(t *testing.T) {
	for _, l := range []int{8, 12, 16} {
		for _, d := range []int{1, 2, 3} {
			r := Estimate(Config{BranchesPerPath: l, NestingDepth: d})
			if r.UtilLUT > 1 || r.UtilFF > 1 || r.UtilBRAM > 1 {
				t.Errorf("ℓ=%d d=%d does not fit: %+v", l, d, r)
			}
		}
	}
}
