// Package area is the synthesis-results model replacing the paper's
// Xilinx Vivado runs (§6.2): an analytic FPGA area and clock-frequency
// model for LO-FAT on the Zedboard's XC7Z020, parameterised by the same
// knobs the hardware exposes — ℓ (branches per loop path), n (indirect
// target bits), and loop nesting depth — and calibrated to the numbers
// the paper reports: 49 36-Kbit BRAMs (48 for loop memories, 16 per
// nesting level), ~4% of registers, ~6% of LUTs, ~20% additional logic
// over the Pulpino SoC, and 80 MHz maximum frequency with CAM lookups in
// the critical path.
package area

import "fmt"

// XC7Z020 device resources (Zynq-7020, as on the Zedboard).
const (
	DeviceLUTs   = 53200
	DeviceFFs    = 106400
	DeviceBRAM36 = 140
)

// bramEntries8 is the depth of one 36-Kbit BRAM in its 4K x 9 port
// configuration, the mapping for 8-bit loop-path counters.
const bramEntries8 = 4096

// Pulpino SoC baseline utilisation (single RI5CY core + peripherals on
// the same device), used for the "additional logic overhead" metric.
const (
	pulpinoLUTs = 15800
	pulpinoFFs  = 11400
)

// Calibrated logic cost of each LO-FAT unit (LUTs, FFs). The split is
// the model's; the TOTALS are pinned to the paper's 6%/4% utilisation at
// the default configuration by TestPaperCalibration.
const (
	hashEngineLUTs = 1530 // SHA-3 512 permutation + padding datapath
	hashEngineFFs  = 2100 // 1600-bit state + input buffering

	branchFilterLUTs = 310 // decode taps, loop entry/exit comparators
	branchFilterFFs  = 420 // per-depth entry/exit/depth registers

	monitorBaseLUTs = 360 // path encoder, counter update FSM
	monitorBaseFFs  = 540

	camLUTsPerEntry = 22 // interleaved CAM match logic, per target
	camFFsPerBit    = 1  // stored target bits
)

// Config mirrors the hardware parameters of §5.2.
type Config struct {
	// BranchesPerPath is ℓ (default 16).
	BranchesPerPath int
	// IndirectBits is n (default 4).
	IndirectBits int
	// NestingDepth is the supported loop depth (default 3).
	NestingDepth int
	// UseCAMForLoopMem replaces the path-indexed BRAM with a CAM
	// (the §6.2 optimisation under development): far less memory,
	// more logic, and it no longer limits fmax the same way.
	UseCAMForLoopMem bool
}

// DefaultConfig is the paper's prototype configuration.
var DefaultConfig = Config{BranchesPerPath: 16, IndirectBits: 4, NestingDepth: 3}

func (c *Config) fill() {
	if c.BranchesPerPath == 0 {
		c.BranchesPerPath = DefaultConfig.BranchesPerPath
	}
	if c.IndirectBits == 0 {
		c.IndirectBits = DefaultConfig.IndirectBits
	}
	if c.NestingDepth == 0 {
		c.NestingDepth = DefaultConfig.NestingDepth
	}
}

// Report is the synthesis estimate.
type Report struct {
	Config Config

	// LoopMemBitsPerLevel is 8 x 2^ℓ (§5.2's formula).
	LoopMemBitsPerLevel uint64
	// BRAMPerLevel and BRAMLoops break down the 36-Kbit block count.
	BRAMPerLevel int
	BRAMLoops    int
	// BRAMOther covers the branches memory and hash engine buffers.
	BRAMOther int
	// BRAMTotal is the full block count (49 at defaults).
	BRAMTotal int

	LUTs int
	FFs  int

	// UtilLUT/UtilFF/UtilBRAM are device utilisation fractions.
	UtilLUT  float64
	UtilFF   float64
	UtilBRAM float64
	// LogicOverheadVsPulpino is LO-FAT logic relative to the SoC.
	LogicOverheadVsPulpino float64

	// FmaxMHz is the estimated maximum clock.
	FmaxMHz float64
}

// Estimate produces the synthesis report for a configuration.
func Estimate(cfg Config) Report {
	cfg.fill()
	r := Report{Config: cfg}

	// Loop path-indexed counter memory: 2^ℓ entries of 8 bits per
	// nesting level (§5.2: "Tracking ℓ branches per path in a loop
	// requires 8 x 2^ℓ bits memory").
	entries := uint64(1) << uint(cfg.BranchesPerPath)
	r.LoopMemBitsPerLevel = 8 * entries

	camEntries := 1<<uint(cfg.IndirectBits) - 1
	if cfg.UseCAMForLoopMem {
		// CAM-based loop memory: storage proportional to observed
		// paths, not 2^ℓ; modelled as logic below, zero loop BRAM.
		r.BRAMPerLevel = 0
	} else {
		r.BRAMPerLevel = int((entries + bramEntries8 - 1) / bramEntries8)
	}
	r.BRAMLoops = r.BRAMPerLevel * cfg.NestingDepth
	r.BRAMOther = 1 // branches memory + hash input buffer
	r.BRAMTotal = r.BRAMLoops + r.BRAMOther

	// Logic.
	luts := hashEngineLUTs + branchFilterLUTs + monitorBaseLUTs
	ffs := hashEngineFFs + branchFilterFFs + monitorBaseFFs
	// Indirect-target CAM (2 interleaved CAMs, §5.2) per nesting level.
	luts += cfg.NestingDepth * camEntries * camLUTsPerEntry
	ffs += cfg.NestingDepth * camEntries * 32 * camFFsPerBit
	// Per-depth tracking registers.
	ffs += cfg.NestingDepth * 96 // entry, exit, depth counter
	if cfg.UseCAMForLoopMem {
		// Parallel CAM search over path IDs is logic-consuming (§6.2).
		luts += cfg.NestingDepth * 512 * camLUTsPerEntry / 8
		ffs += cfg.NestingDepth * (cfg.BranchesPerPath*64 + 512)
	}
	r.LUTs = luts
	r.FFs = ffs

	r.UtilLUT = float64(luts) / DeviceLUTs
	r.UtilFF = float64(ffs) / DeviceFFs
	r.UtilBRAM = float64(r.BRAMTotal) / DeviceBRAM36
	r.LogicOverheadVsPulpino = float64(luts) / pulpinoLUTs

	r.FmaxMHz = fmax(cfg)
	return r
}

// fmax models the critical path: the interleaved-CAM single-cycle
// constant-time lookup limits the prototype to 80 MHz; "eliminating the
// CAM access results in a much higher clock frequency" — then the SHA-3
// engine's 150 MHz bound dominates. Wider CAMs (more indirect bits)
// lengthen the match tree slightly.
func fmax(cfg Config) float64 {
	const hashEngineCap = 150.0
	if cfg.IndirectBits <= 0 {
		return hashEngineCap
	}
	f := 80.0 * 4.0 / float64(cfg.IndirectBits) // calibrated: n=4 -> 80 MHz
	if f > hashEngineCap {
		f = hashEngineCap
	}
	return f
}

// String formats the report like a synthesis summary.
func (r Report) String() string {
	return fmt.Sprintf(
		"lofat area @ ℓ=%d n=%d depth=%d cam=%v: %d LUT (%.1f%%), %d FF (%.1f%%), %d BRAM36 (%d loop + %d other), +%.0f%% logic vs Pulpino, fmax %.0f MHz",
		r.Config.BranchesPerPath, r.Config.IndirectBits, r.Config.NestingDepth,
		r.Config.UseCAMForLoopMem,
		r.LUTs, 100*r.UtilLUT, r.FFs, 100*r.UtilFF,
		r.BRAMTotal, r.BRAMLoops, r.BRAMOther,
		100*r.LogicOverheadVsPulpino, r.FmaxMHz)
}

// Sweep evaluates a list of configurations (for the E6/E8 benches).
func Sweep(cfgs []Config) []Report {
	out := make([]Report, len(cfgs))
	for i, c := range cfgs {
		out[i] = Estimate(c)
	}
	return out
}
