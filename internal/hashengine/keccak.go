// Package hashengine implements the LO-FAT measurement engine of §5.3: a
// SHA-3 512 sponge (Keccak-f[1600], 576-bit rate) together with the
// paper's hardware timing model — the engine absorbs one 64-bit
// (Src,Dest) pair per clock cycle into its padding buffer for 9 cycles,
// then the permutation runs and the padding buffer refuses input for 3
// cycles, during which a small input FIFO buffers arriving pairs so
// nothing is dropped. Digests are bit-identical to standard SHA3-512;
// the cycle model only accounts time.
package hashengine

import "math/bits"

// Keccak-f[1600] round constants.
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808A, 0x8000000080008000,
	0x000000000000808B, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008A, 0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
	0x000000008000808B, 0x800000000000008B, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800A, 0x800000008000000A,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// Rotation offsets and lane permutation for the rho/pi steps, in the
// order the combined loop visits lanes.
var (
	rotc = [24]int{1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 2, 14,
		27, 41, 56, 8, 25, 43, 62, 18, 39, 61, 20, 44}
	piln = [24]int{10, 7, 11, 17, 18, 3, 5, 16, 8, 21, 24, 4,
		15, 23, 19, 13, 12, 2, 20, 14, 22, 9, 6, 1}
)

// keccakF1600 applies the full 24-round permutation in place.
func keccakF1600(a *[25]uint64) {
	var bc [5]uint64
	for round := 0; round < 24; round++ {
		// theta
		for i := 0; i < 5; i++ {
			bc[i] = a[i] ^ a[i+5] ^ a[i+10] ^ a[i+15] ^ a[i+20]
		}
		for i := 0; i < 5; i++ {
			t := bc[(i+4)%5] ^ bits.RotateLeft64(bc[(i+1)%5], 1)
			for j := 0; j < 25; j += 5 {
				a[j+i] ^= t
			}
		}
		// rho + pi
		t := a[1]
		for i := 0; i < 24; i++ {
			j := piln[i]
			bc[0] = a[j]
			a[j] = bits.RotateLeft64(t, rotc[i])
			t = bc[0]
		}
		// chi
		for j := 0; j < 25; j += 5 {
			for i := 0; i < 5; i++ {
				bc[i] = a[j+i]
			}
			for i := 0; i < 5; i++ {
				a[j+i] = bc[i] ^ (^bc[(i+1)%5] & bc[(i+2)%5])
			}
		}
		// iota
		a[0] ^= roundConstants[round]
	}
}

// Sponge parameters for SHA3-512.
const (
	// Rate is the sponge rate in bytes: 576 bits, the "message block
	// size of 576-bit" the paper's engine operates on.
	Rate = 72
	// DigestSize is the SHA3-512 output length in bytes.
	DigestSize = 64
	// domainSHA3 is the SHA-3 domain-separation padding byte.
	domainSHA3 = 0x06
)

// Sponge is an incremental SHA3-512 absorber. The zero value is ready to
// use.
type Sponge struct {
	state  [25]uint64
	buf    [Rate]byte
	bufLen int
	closed bool
}

// Write absorbs p into the sponge. It never fails.
func (s *Sponge) Write(p []byte) (int, error) {
	if s.closed {
		panic("hashengine: Write after Sum")
	}
	n := len(p)
	for len(p) > 0 {
		c := copy(s.buf[s.bufLen:], p)
		s.bufLen += c
		p = p[c:]
		if s.bufLen == Rate {
			s.absorbBlock()
		}
	}
	return n, nil
}

func (s *Sponge) absorbBlock() {
	for i := 0; i < Rate/8; i++ {
		s.state[i] ^= leUint64(s.buf[8*i:])
	}
	keccakF1600(&s.state)
	s.bufLen = 0
}

// Sum finalizes the sponge and returns the SHA3-512 digest. The sponge
// must not be written to afterwards.
func (s *Sponge) Sum() [DigestSize]byte {
	// Pad: 0x06 ... 0x80 within the rate block.
	for i := s.bufLen; i < Rate; i++ {
		s.buf[i] = 0
	}
	s.buf[s.bufLen] = domainSHA3
	s.buf[Rate-1] |= 0x80
	for i := 0; i < Rate/8; i++ {
		s.state[i] ^= leUint64(s.buf[8*i:])
	}
	keccakF1600(&s.state)
	s.closed = true

	var out [DigestSize]byte
	for i := 0; i < DigestSize/8; i++ {
		putLeUint64(out[8*i:], s.state[i])
	}
	return out
}

// Reset returns the sponge to its initial state.
func (s *Sponge) Reset() {
	*s = Sponge{}
}

// Sum512 is the one-shot SHA3-512 of msg.
func Sum512(msg []byte) [DigestSize]byte {
	var s Sponge
	s.Write(msg)
	return s.Sum()
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeUint64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
