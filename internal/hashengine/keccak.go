// Package hashengine implements the LO-FAT measurement engine of §5.3: a
// SHA-3 512 sponge (Keccak-f[1600], 576-bit rate) together with the
// paper's hardware timing model — the engine absorbs one 64-bit
// (Src,Dest) pair per clock cycle into its padding buffer for 9 cycles,
// then the permutation runs and the padding buffer refuses input for 3
// cycles, during which a small input FIFO buffers arriving pairs so
// nothing is dropped. Digests are bit-identical to standard SHA3-512;
// the cycle model only accounts time.
package hashengine

import "math/bits"

// Keccak-f[1600] round constants.
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808A, 0x8000000080008000,
	0x000000000000808B, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008A, 0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
	0x000000008000808B, 0x800000000000008B, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800A, 0x800000008000000A,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// Rotation offsets and lane permutation for the rho/pi steps, in the
// order the combined loop visits lanes.
var (
	rotc = [24]int{1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 2, 14,
		27, 41, 56, 8, 25, 43, 62, 18, 39, 61, 20, 44}
	piln = [24]int{10, 7, 11, 17, 18, 3, 5, 16, 8, 21, 24, 4,
		15, 23, 19, 13, 12, 2, 20, 14, 22, 9, 6, 1}
)

// keccakF1600 applies the full 24-round permutation in place. The round
// body is unrolled with all 25 lanes in locals: the generic loop version
// spent most of its time on lane loads/stores and modular index
// arithmetic. Generated from the same rotation/permutation tables;
// bit-identical to the loop form (TestKeccakUnrollMatchesSpec).
//
//lofat:zeroalloc
func keccakF1600(a *[25]uint64) {
	a00 := a[0]
	a01 := a[1]
	a02 := a[2]
	a03 := a[3]
	a04 := a[4]
	a05 := a[5]
	a06 := a[6]
	a07 := a[7]
	a08 := a[8]
	a09 := a[9]
	a10 := a[10]
	a11 := a[11]
	a12 := a[12]
	a13 := a[13]
	a14 := a[14]
	a15 := a[15]
	a16 := a[16]
	a17 := a[17]
	a18 := a[18]
	a19 := a[19]
	a20 := a[20]
	a21 := a[21]
	a22 := a[22]
	a23 := a[23]
	a24 := a[24]
	for round := 0; round < 24; round++ {
		// theta
		c0 := a00 ^ a05 ^ a10 ^ a15 ^ a20
		c1 := a01 ^ a06 ^ a11 ^ a16 ^ a21
		c2 := a02 ^ a07 ^ a12 ^ a17 ^ a22
		c3 := a03 ^ a08 ^ a13 ^ a18 ^ a23
		c4 := a04 ^ a09 ^ a14 ^ a19 ^ a24
		d0 := c4 ^ bits.RotateLeft64(c1, 1)
		d1 := c0 ^ bits.RotateLeft64(c2, 1)
		d2 := c1 ^ bits.RotateLeft64(c3, 1)
		d3 := c2 ^ bits.RotateLeft64(c4, 1)
		d4 := c3 ^ bits.RotateLeft64(c0, 1)
		a00 ^= d0
		a01 ^= d1
		a02 ^= d2
		a03 ^= d3
		a04 ^= d4
		a05 ^= d0
		a06 ^= d1
		a07 ^= d2
		a08 ^= d3
		a09 ^= d4
		a10 ^= d0
		a11 ^= d1
		a12 ^= d2
		a13 ^= d3
		a14 ^= d4
		a15 ^= d0
		a16 ^= d1
		a17 ^= d2
		a18 ^= d3
		a19 ^= d4
		a20 ^= d0
		a21 ^= d1
		a22 ^= d2
		a23 ^= d3
		a24 ^= d4
		// rho + pi
		b00 := a00
		b01 := bits.RotateLeft64(a06, 44)
		b02 := bits.RotateLeft64(a12, 43)
		b03 := bits.RotateLeft64(a18, 21)
		b04 := bits.RotateLeft64(a24, 14)
		b05 := bits.RotateLeft64(a03, 28)
		b06 := bits.RotateLeft64(a09, 20)
		b07 := bits.RotateLeft64(a10, 3)
		b08 := bits.RotateLeft64(a16, 45)
		b09 := bits.RotateLeft64(a22, 61)
		b10 := bits.RotateLeft64(a01, 1)
		b11 := bits.RotateLeft64(a07, 6)
		b12 := bits.RotateLeft64(a13, 25)
		b13 := bits.RotateLeft64(a19, 8)
		b14 := bits.RotateLeft64(a20, 18)
		b15 := bits.RotateLeft64(a04, 27)
		b16 := bits.RotateLeft64(a05, 36)
		b17 := bits.RotateLeft64(a11, 10)
		b18 := bits.RotateLeft64(a17, 15)
		b19 := bits.RotateLeft64(a23, 56)
		b20 := bits.RotateLeft64(a02, 62)
		b21 := bits.RotateLeft64(a08, 55)
		b22 := bits.RotateLeft64(a14, 39)
		b23 := bits.RotateLeft64(a15, 41)
		b24 := bits.RotateLeft64(a21, 2)
		// chi
		a00 = b00 ^ (^b01 & b02)
		a01 = b01 ^ (^b02 & b03)
		a02 = b02 ^ (^b03 & b04)
		a03 = b03 ^ (^b04 & b00)
		a04 = b04 ^ (^b00 & b01)
		a05 = b05 ^ (^b06 & b07)
		a06 = b06 ^ (^b07 & b08)
		a07 = b07 ^ (^b08 & b09)
		a08 = b08 ^ (^b09 & b05)
		a09 = b09 ^ (^b05 & b06)
		a10 = b10 ^ (^b11 & b12)
		a11 = b11 ^ (^b12 & b13)
		a12 = b12 ^ (^b13 & b14)
		a13 = b13 ^ (^b14 & b10)
		a14 = b14 ^ (^b10 & b11)
		a15 = b15 ^ (^b16 & b17)
		a16 = b16 ^ (^b17 & b18)
		a17 = b17 ^ (^b18 & b19)
		a18 = b18 ^ (^b19 & b15)
		a19 = b19 ^ (^b15 & b16)
		a20 = b20 ^ (^b21 & b22)
		a21 = b21 ^ (^b22 & b23)
		a22 = b22 ^ (^b23 & b24)
		a23 = b23 ^ (^b24 & b20)
		a24 = b24 ^ (^b20 & b21)
		// iota
		a00 ^= roundConstants[round]
	}
	a[0] = a00
	a[1] = a01
	a[2] = a02
	a[3] = a03
	a[4] = a04
	a[5] = a05
	a[6] = a06
	a[7] = a07
	a[8] = a08
	a[9] = a09
	a[10] = a10
	a[11] = a11
	a[12] = a12
	a[13] = a13
	a[14] = a14
	a[15] = a15
	a[16] = a16
	a[17] = a17
	a[18] = a18
	a[19] = a19
	a[20] = a20
	a[21] = a21
	a[22] = a22
	a[23] = a23
	a[24] = a24
}

// keccakF1600Generic is the textbook loop formulation of the
// permutation, kept as the executable specification the unrolled
// keccakF1600 is differentially tested against.
func keccakF1600Generic(a *[25]uint64) {
	var bc [5]uint64
	for round := 0; round < 24; round++ {
		// theta
		for i := 0; i < 5; i++ {
			bc[i] = a[i] ^ a[i+5] ^ a[i+10] ^ a[i+15] ^ a[i+20]
		}
		for i := 0; i < 5; i++ {
			t := bc[(i+4)%5] ^ bits.RotateLeft64(bc[(i+1)%5], 1)
			for j := 0; j < 25; j += 5 {
				a[j+i] ^= t
			}
		}
		// rho + pi
		t := a[1]
		for i := 0; i < 24; i++ {
			j := piln[i]
			bc[0] = a[j]
			a[j] = bits.RotateLeft64(t, rotc[i])
			t = bc[0]
		}
		// chi
		for j := 0; j < 25; j += 5 {
			for i := 0; i < 5; i++ {
				bc[i] = a[j+i]
			}
			for i := 0; i < 5; i++ {
				a[j+i] = bc[i] ^ (^bc[(i+1)%5] & bc[(i+2)%5])
			}
		}
		// iota
		a[0] ^= roundConstants[round]
	}
}

// Sponge parameters for SHA3-512.
const (
	// Rate is the sponge rate in bytes: 576 bits, the "message block
	// size of 576-bit" the paper's engine operates on.
	Rate = 72
	// DigestSize is the SHA3-512 output length in bytes.
	DigestSize = 64
	// domainSHA3 is the SHA-3 domain-separation padding byte.
	domainSHA3 = 0x06
)

// Sponge is an incremental SHA3-512 absorber. The zero value is ready to
// use.
type Sponge struct {
	state  [25]uint64
	buf    [Rate]byte
	bufLen int
	closed bool
}

// Write absorbs p into the sponge. It never fails.
//
//lofat:zeroalloc
func (s *Sponge) Write(p []byte) (int, error) {
	if s.closed {
		panic("hashengine: Write after Sum")
	}
	n := len(p)
	for len(p) > 0 {
		c := copy(s.buf[s.bufLen:], p)
		s.bufLen += c
		p = p[c:]
		if s.bufLen == Rate {
			s.absorbBlock()
		}
	}
	return n, nil
}

//lofat:zeroalloc
func (s *Sponge) absorbBlock() {
	for i := 0; i < Rate/8; i++ {
		s.state[i] ^= leUint64(s.buf[8*i:])
	}
	keccakF1600(&s.state)
	s.bufLen = 0
}

// Sum finalizes the sponge and returns the SHA3-512 digest. The sponge
// must not be written to afterwards.
func (s *Sponge) Sum() [DigestSize]byte {
	// Pad: 0x06 ... 0x80 within the rate block.
	for i := s.bufLen; i < Rate; i++ {
		s.buf[i] = 0
	}
	s.buf[s.bufLen] = domainSHA3
	s.buf[Rate-1] |= 0x80
	for i := 0; i < Rate/8; i++ {
		s.state[i] ^= leUint64(s.buf[8*i:])
	}
	keccakF1600(&s.state)
	s.closed = true

	var out [DigestSize]byte
	for i := 0; i < DigestSize/8; i++ {
		putLeUint64(out[8*i:], s.state[i])
	}
	return out
}

// WritePair absorbs the 8-byte little-endian (src, dest) word — the
// engine's per-cycle input — directly into the rate buffer, avoiding the
// intermediate byte-slice copy of the generic Write path. Byte-for-byte
// equivalent to writing Pair.bytes().
//
//lofat:zeroalloc
func (s *Sponge) WritePair(src, dest uint32) {
	if s.closed {
		panic("hashengine: Write after Sum")
	}
	if s.bufLen+8 <= Rate {
		putLeUint64(s.buf[s.bufLen:], uint64(src)|uint64(dest)<<32)
		s.bufLen += 8
		if s.bufLen == Rate {
			s.absorbBlock()
		}
		return
	}
	// Unaligned tail from a previous odd-length Write: fall back to the
	// generic path, which splits across the block boundary.
	var b [8]byte
	putLeUint64(b[:], uint64(src)|uint64(dest)<<32)
	s.Write(b[:])
}

// Reset returns the sponge to its initial state.
//
//lofat:zeroalloc
func (s *Sponge) Reset() {
	*s = Sponge{}
}

// Sum512 is the one-shot SHA3-512 of msg.
func Sum512(msg []byte) [DigestSize]byte {
	var s Sponge
	s.Write(msg)
	return s.Sum()
}

//lofat:zeroalloc
func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

//lofat:zeroalloc
func putLeUint64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
