package hashengine

import (
	"testing"

	"lofat/internal/obs"
)

// TestEngineZeroAllocSteadyState pins the zero-allocation property of
// the engine hot path: Enqueue and Tick (including block absorption and
// the busy window) must never allocate once the engine is constructed.
func TestEngineZeroAllocSteadyState(t *testing.T) {
	e := New(Config{})
	i := uint32(0)
	op := func() {
		for e.Full() || !e.Enqueue(Pair{Src: i, Dest: i * 7}) {
			e.Tick()
		}
		i++
		e.Tick()
	}
	op() // warm up
	if allocs := testing.AllocsPerRun(1000, op); allocs != 0 {
		t.Fatalf("Enqueue/Tick steady state: %v allocs/op, want 0", allocs)
	}
}

// TestEngineZeroAllocWithGauge pins the same property with a FIFO
// occupancy gauge attached: publishing occupancy is an atomic store,
// never an allocation.
func TestEngineZeroAllocWithGauge(t *testing.T) {
	e := New(Config{})
	var g obs.Gauge
	e.SetFIFOGauge(&g)
	i := uint32(0)
	op := func() {
		for !e.Enqueue(Pair{Src: i, Dest: i * 7}) {
			e.Tick()
		}
		i++
		e.Tick()
	}
	op() // warm up
	if allocs := testing.AllocsPerRun(1000, op); allocs != 0 {
		t.Fatalf("Enqueue/Tick with gauge: %v allocs/op, want 0", allocs)
	}
	if g.Load() < 0 || g.Load() > int64(e.cfg.FIFODepth) {
		t.Fatalf("gauge out of range: %d", g.Load())
	}
}

// TestAdvanceMatchesTicks proves Advance(n) is counter-identical to n
// Ticks in every engine state: mid-block, busy window, loaded FIFO.
func TestAdvanceMatchesTicks(t *testing.T) {
	for _, load := range []int{0, 1, 3, 4} {
		a, b := New(Config{}), New(Config{})
		for j := 0; j < 25; j++ { // park both engines in a mid-stream state
			a.Enqueue(Pair{Src: uint32(j), Dest: uint32(j)})
			b.Enqueue(Pair{Src: uint32(j), Dest: uint32(j)})
			a.Tick()
			b.Tick()
		}
		for j := 0; j < load; j++ {
			a.Enqueue(Pair{Src: 99, Dest: uint32(j)})
			b.Enqueue(Pair{Src: 99, Dest: uint32(j)})
		}
		const n = 40
		a.Advance(n)
		for j := 0; j < n; j++ {
			b.Tick()
		}
		if a.Stats() != b.Stats() {
			t.Fatalf("load %d: Advance stats %+v != Tick stats %+v", load, a.Stats(), b.Stats())
		}
		if a.Finalize() != b.Finalize() {
			t.Fatalf("load %d: digests diverged", load)
		}
	}
}

// TestWritePairMatchesWrite proves the direct lane-buffer path is
// byte-identical to the generic Write path, including after an
// unaligned prefix write.
func TestWritePairMatchesWrite(t *testing.T) {
	for _, prefix := range []int{0, 1, 7, 64, 65} {
		var viaPair, viaWrite Sponge
		junk := make([]byte, prefix)
		for i := range junk {
			junk[i] = byte(i * 31)
		}
		viaPair.Write(junk)
		viaWrite.Write(junk)
		for i := 0; i < 40; i++ {
			p := Pair{Src: uint32(i * 11), Dest: uint32(i * 13)}
			viaPair.WritePair(p.Src, p.Dest)
			b := p.bytes()
			viaWrite.Write(b[:])
		}
		if viaPair.Sum() != viaWrite.Sum() {
			t.Fatalf("prefix %d: WritePair digest != Write digest", prefix)
		}
	}
}

// TestKeccakUnrollMatchesSpec differentially tests the unrolled
// permutation against the loop formulation over pseudorandom states.
func TestKeccakUnrollMatchesSpec(t *testing.T) {
	var x uint64 = 0x9E3779B97F4A7C15
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for trial := 0; trial < 200; trial++ {
		var a, b [25]uint64
		for i := range a {
			a[i] = next()
			b[i] = a[i]
		}
		keccakF1600(&a)
		keccakF1600Generic(&b)
		if a != b {
			t.Fatalf("trial %d: unrolled permutation diverged from spec", trial)
		}
	}
}
