package hashengine

import (
	"testing"
	"testing/quick"
)

func pairs(n int) []Pair {
	ps := make([]Pair, n)
	for i := range ps {
		ps[i] = Pair{Src: uint32(0x1000 + 4*i), Dest: uint32(0x2000 + 4*i)}
	}
	return ps
}

// The cycle model must not change the digest: engine output equals the
// functional HashPairs over the same sequence.
func TestEngineDigestMatchesFunctional(t *testing.T) {
	for _, n := range []int{0, 1, 8, 9, 10, 27, 100} {
		e := New(Config{})
		for _, p := range pairs(n) {
			// Feed with hardware backpressure: retry while the FIFO
			// is full (the engine absorbs 9 pairs per 12 cycles, so a
			// sustained 1/cycle burst must eventually wait).
			for !e.Enqueue(p) {
				e.Tick()
			}
			e.Tick()
		}
		got := e.Finalize()
		want := HashPairs(pairs(n))
		if got != want {
			t.Errorf("n=%d: engine digest != functional digest", n)
		}
	}
}

// §5.3: the padding buffer fills after 9 pairs and stalls 3 cycles; the
// FIFO must absorb pairs arriving during the stall so none are dropped.
// The densest stream a real core can emit is one control-flow event
// every other cycle (a taken branch costs at least 2 cycles), which is
// below the engine's 9-per-12-cycle throughput, so with the paper's FIFO
// nothing drops.
func TestBusyWindowAndFIFO(t *testing.T) {
	e := New(Config{})
	ps := pairs(30)
	for _, p := range ps {
		if !e.Enqueue(p) {
			t.Fatal("pair dropped despite FIFO")
		}
		e.Tick()
		e.Tick()
	}
	e.Drain()
	st := e.Stats()
	if st.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", st.Dropped)
	}
	if st.Absorbed != 30 {
		t.Errorf("absorbed = %d, want 30", st.Absorbed)
	}
	if st.BusyCycles == 0 {
		t.Error("no busy cycles recorded over 3 blocks")
	}
	if st.MaxFIFO == 0 {
		t.Error("FIFO never held a pair during busy windows")
	}
	if st.MaxFIFO > DefaultConfig.FIFODepth {
		t.Errorf("MaxFIFO %d exceeds depth", st.MaxFIFO)
	}
}

// With a crippled FIFO (depth 1) and a sustained 1 pair/cycle burst,
// pairs must drop during busy windows — the ablation the paper's buffer
// sizing avoids.
func TestStarvedFIFODrops(t *testing.T) {
	e := New(Config{FIFODepth: 1})
	var drops int
	for _, p := range pairs(50) {
		if !e.Enqueue(p) {
			drops++
		}
		e.Tick()
	}
	if drops == 0 {
		t.Error("depth-1 FIFO never dropped under sustained load")
	}
	if int(e.Stats().Dropped) != drops {
		t.Errorf("stats.Dropped = %d, want %d", e.Stats().Dropped, drops)
	}
}

// Throughput: with gaps between control-flow events (realistic programs
// have ~1 branch per 4-6 instructions), the engine keeps up and the FIFO
// stays small.
func TestSparseStreamNeverBacklogs(t *testing.T) {
	e := New(Config{})
	ps := pairs(100)
	i := 0
	for cycle := 0; i < len(ps); cycle++ {
		if cycle%4 == 0 {
			if !e.Enqueue(ps[i]) {
				t.Fatal("drop on sparse stream")
			}
			i++
		}
		e.Tick()
	}
	if e.Stats().MaxFIFO > 2 {
		t.Errorf("MaxFIFO = %d on sparse stream, want <= 2", e.Stats().MaxFIFO)
	}
}

// Property: digest depends only on the pair sequence, not on arrival
// timing (gaps between enqueues).
func TestTimingInvariance(t *testing.T) {
	f := func(seed []uint32, gap uint8) bool {
		if len(seed) > 40 {
			seed = seed[:40]
		}
		ps := make([]Pair, len(seed))
		for i, v := range seed {
			ps[i] = Pair{Src: v, Dest: v ^ 0xDEAD}
		}
		g := int(gap%5) + 1
		e := New(Config{})
		for _, p := range ps {
			for !e.Enqueue(p) {
				e.Tick() // FIFO full: wait (hardware backpressure)
			}
			for k := 0; k < g; k++ {
				e.Tick()
			}
		}
		return e.Finalize() == HashPairs(ps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The drain latency after the last pair is bounded by FIFO content plus
// busy windows — the end-of-attestation flush the paper describes as
// "indicating the end of streaming".
func TestDrainBounded(t *testing.T) {
	e := New(Config{})
	for _, p := range pairs(9) {
		e.Enqueue(p)
	}
	cycles := e.Drain()
	// 4 pairs fit the FIFO... Enqueue without Tick: depth 4, so only 4
	// accepted; re-check with backpressure loop instead.
	if cycles == 0 {
		t.Error("drain took zero cycles with pending pairs")
	}
	if e.Pending() != 0 || e.Busy() {
		t.Error("engine not idle after Drain")
	}
}

func TestEngineReset(t *testing.T) {
	e := New(Config{})
	e.Enqueue(Pair{1, 2})
	e.Tick()
	e.Reset()
	if e.Pending() != 0 || e.Stats().Absorbed != 0 {
		t.Error("Reset left state behind")
	}
	got := e.Finalize()
	if got != HashPairs(nil) {
		t.Error("post-Reset digest != empty digest")
	}
}
