package hashengine

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// Known-answer tests from the NIST SHA-3 examples.
func TestSHA3KnownVectors(t *testing.T) {
	cases := []struct {
		msg  string
		want string
	}{
		{"", "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a615b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26"},
		{"abc", "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"04a371e84ecfb5b8b77cb48610fca8182dd457ce6f326a0fd3d7ec2f1e91636dee691fbe0c985302ba1b0d8dc78c086346b533b49c030d99a27daf1139d6e75e"},
		{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
			"afebb2ef542e6579c50cad06d2e578f9f8dd6881d7dc824d26360feebf18a4fa73e3261122948efcfd492e74e82e2189ed0fb440d187f382270cb455f21dd185"},
	}
	for _, c := range cases {
		got := Sum512([]byte(c.msg))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("SHA3-512(%q) = %x, want %s", c.msg, got, c.want)
		}
	}
}

// A message exactly one rate block long exercises the full-block path.
func TestSHA3RateBoundary(t *testing.T) {
	for _, n := range []int{Rate - 1, Rate, Rate + 1, 2 * Rate, 2*Rate + 5} {
		msg := bytes.Repeat([]byte{0xA5}, n)
		oneShot := Sum512(msg)
		// Incremental in awkward chunk sizes must agree.
		var s Sponge
		for i := 0; i < len(msg); i += 7 {
			end := i + 7
			if end > len(msg) {
				end = len(msg)
			}
			s.Write(msg[i:end])
		}
		inc := s.Sum()
		if oneShot != inc {
			t.Errorf("n=%d: incremental digest differs from one-shot", n)
		}
	}
}

// Property: splitting the message arbitrarily never changes the digest.
func TestSpongeSplitInvariance(t *testing.T) {
	f := func(msg []byte, split uint8) bool {
		i := 0
		if len(msg) > 0 {
			i = int(split) % (len(msg) + 1)
		}
		var s Sponge
		s.Write(msg[:i])
		s.Write(msg[i:])
		return s.Sum() == Sum512(msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSpongeReset(t *testing.T) {
	var s Sponge
	s.Write([]byte("garbage"))
	s.Sum()
	s.Reset()
	s.Write([]byte("abc"))
	if s.Sum() != Sum512([]byte("abc")) {
		t.Error("Reset did not restore initial state")
	}
}

func TestWriteAfterSumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Write after Sum did not panic")
		}
	}()
	var s Sponge
	s.Sum()
	s.Write([]byte("x"))
}
