package hashengine

import "lofat/internal/obs"

// Pair is one control-flow edge measurement: the 64-bit (Src,Dest)
// input the engine absorbs per clock cycle (§5.3).
type Pair struct {
	Src  uint32
	Dest uint32
}

// bytes returns the 8-byte little-endian absorb word for the pair.
func (p Pair) bytes() [8]byte {
	var b [8]byte
	b[0] = byte(p.Src)
	b[1] = byte(p.Src >> 8)
	b[2] = byte(p.Src >> 16)
	b[3] = byte(p.Src >> 24)
	b[4] = byte(p.Dest)
	b[5] = byte(p.Dest >> 8)
	b[6] = byte(p.Dest >> 16)
	b[7] = byte(p.Dest >> 24)
	return b
}

// Config sets the engine's hardware parameters.
type Config struct {
	// FIFODepth is the input cache buffer depth in pairs. The paper
	// uses a "small cache buffer" sized to cover the 3-cycle busy
	// window; depth 4 is sufficient at one pair per cycle.
	FIFODepth int
	// PairsPerBlock is how many 64-bit inputs fill the 576-bit padding
	// buffer: 9.
	PairsPerBlock int
	// BusyCycles is how long the padding buffer refuses input after
	// filling while the permutation starts: 3.
	BusyCycles int
}

// DefaultConfig matches §5.3.
var DefaultConfig = Config{FIFODepth: 4, PairsPerBlock: 9, BusyCycles: 3}

func (c *Config) fill() {
	if c.FIFODepth == 0 {
		c.FIFODepth = DefaultConfig.FIFODepth
	}
	if c.PairsPerBlock == 0 {
		c.PairsPerBlock = DefaultConfig.PairsPerBlock
	}
	if c.BusyCycles == 0 {
		c.BusyCycles = DefaultConfig.BusyCycles
	}
}

// Stats are the engine's observability counters.
type Stats struct {
	// Cycles is the number of Tick calls.
	Cycles uint64
	// Absorbed counts pairs absorbed into the sponge.
	Absorbed uint64
	// Dropped counts pairs lost to FIFO overflow (0 with the paper's
	// configuration; nonzero only in ablation runs with a starved FIFO).
	Dropped uint64
	// BusyCycles counts cycles the padding buffer was refusing input.
	BusyCycles uint64
	// MaxFIFO is the high-water mark of the input FIFO.
	MaxFIFO int
}

// Engine is the cycle-accurate SHA-3 measurement engine. Digest content
// depends only on the absorbed pair sequence; the FIFO and busy windows
// model *when* absorption happens.
type Engine struct {
	cfg    Config
	sponge Sponge
	fifo   []Pair
	inBlk  int
	busy   int
	stats  Stats
	occ    *obs.Gauge
}

// New returns an engine with the given configuration (zero fields take
// paper defaults).
func New(cfg Config) *Engine {
	cfg.fill()
	return &Engine{cfg: cfg, fifo: make([]Pair, 0, cfg.FIFODepth)}
}

// SetFIFOGauge publishes the FIFO occupancy to g on every change. A nil
// gauge (the default) keeps the hot path branch-only: Enqueue and Tick
// stay allocation-free either way. Not wired through Config — the device
// pool keys on Config identity, and observability must not split pools.
func (e *Engine) SetFIFOGauge(g *obs.Gauge) {
	e.occ = g
	if g != nil {
		g.Set(int64(len(e.fifo)))
	}
}

// Full reports whether the input FIFO cannot accept a pair this cycle.
// Producers with backpressure (the loop monitor draining the branches
// memory) poll Full and wait instead of losing the pair; only
// unbuffered wire-speed producers drop.
//
//lofat:zeroalloc
func (e *Engine) Full() bool { return len(e.fifo) >= e.cfg.FIFODepth }

// Enqueue presents a pair at the engine input this cycle. It reports
// false (and counts a drop) if the FIFO is full — the hardware condition
// the paper's buffer sizing rules out.
//
//lofat:zeroalloc
func (e *Engine) Enqueue(p Pair) bool {
	if len(e.fifo) >= e.cfg.FIFODepth {
		e.stats.Dropped++
		return false
	}
	e.fifo = append(e.fifo, p)
	if len(e.fifo) > e.stats.MaxFIFO {
		e.stats.MaxFIFO = len(e.fifo)
	}
	if e.occ != nil {
		e.occ.Set(int64(len(e.fifo)))
	}
	return true
}

// Tick advances the engine one clock cycle: either the padding buffer is
// busy, or one pair is popped from the FIFO and absorbed.
//
//lofat:zeroalloc
func (e *Engine) Tick() {
	e.stats.Cycles++
	if e.busy > 0 {
		e.busy--
		e.stats.BusyCycles++
		return
	}
	if len(e.fifo) == 0 {
		return
	}
	p := e.fifo[0]
	copy(e.fifo, e.fifo[1:])
	e.fifo = e.fifo[:len(e.fifo)-1]
	if e.occ != nil {
		e.occ.Set(int64(len(e.fifo)))
	}

	e.sponge.WritePair(p.Src, p.Dest)
	e.stats.Absorbed++
	e.inBlk++
	if e.inBlk == e.cfg.PairsPerBlock {
		e.inBlk = 0
		e.busy = e.cfg.BusyCycles
	}
}

// Advance runs the engine clock n cycles: exactly equivalent to (and
// counter-identical with) calling Tick n times, but once the FIFO is
// empty and the padding buffer idle the remaining cycles are credited in
// bulk. The trace pipeline uses it to fast-forward across the long
// no-control-flow stretches between measured events.
//
//lofat:zeroalloc
func (e *Engine) Advance(n uint64) {
	for n > 0 && (e.busy > 0 || len(e.fifo) > 0) {
		e.Tick()
		n--
	}
	e.stats.Cycles += n
}

// Pending reports how many pairs are waiting in the FIFO.
//
//lofat:zeroalloc
func (e *Engine) Pending() int { return len(e.fifo) }

// Busy reports whether the padding buffer is refusing input this cycle.
//
//lofat:zeroalloc
func (e *Engine) Busy() bool { return e.busy > 0 }

// Drain ticks until the FIFO is empty and the engine idle, returning the
// number of cycles spent. Called at attestation end before Finalize.
//
//lofat:zeroalloc
func (e *Engine) Drain() uint64 {
	var n uint64
	for len(e.fifo) > 0 || e.busy > 0 {
		e.Tick()
		n++
	}
	return n
}

// Finalize drains any pending input and returns the SHA3-512 digest over
// every absorbed pair, in order. The engine must be discarded (or Reset)
// afterwards.
func (e *Engine) Finalize() [DigestSize]byte {
	e.Drain()
	return e.sponge.Sum()
}

// Reset clears the sponge, FIFO and statistics for a new attestation.
//
//lofat:zeroalloc
func (e *Engine) Reset() {
	e.sponge.Reset()
	e.fifo = e.fifo[:0]
	e.inBlk = 0
	e.busy = 0
	e.stats = Stats{}
	e.occ.Set(0)
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// AbsorbPairs absorbs a pair stream in order via the direct lane-buffer
// path, without per-pair byte-slice staging.
func (s *Sponge) AbsorbPairs(pairs []Pair) {
	for _, p := range pairs {
		s.WritePair(p.Src, p.Dest)
	}
}

// HashPairs computes, functionally, the digest the engine would produce
// for the given pair stream. The verifier uses this to recompute A
// without a cycle model.
func HashPairs(pairs []Pair) [DigestSize]byte {
	var s Sponge
	s.AbsorbPairs(pairs)
	return s.Sum()
}

// ChainPairs extends a hash chain by one link: SHA3-512 over the
// previous link followed by the pair stream, in order. Segmented
// attestation (internal/stream) uses it to make checkpoint k commit to
// checkpoints 0..k-1: a segment's chain value authenticates the entire
// edge-stream prefix, not just its own window.
func ChainPairs(prev [DigestSize]byte, pairs []Pair) [DigestSize]byte {
	var s Sponge
	s.Write(prev[:])
	s.AbsorbPairs(pairs)
	return s.Sum()
}
