package hashengine

import (
	"testing"

	"lofat/internal/obs"
)

// TestEnqueueAtCapacityBoundary pins the FIFO's exact saturation
// boundary: depth D accepts exactly D pairs without a tick, the D+1st
// is refused and counted as a drop, and one Tick frees exactly one
// slot. Off-by-one here would either lose a pair the paper's buffer
// sizing promises to keep or model a phantom fifth register.
func TestEnqueueAtCapacityBoundary(t *testing.T) {
	const depth = 4
	e := New(Config{FIFODepth: depth})
	for i := 0; i < depth; i++ {
		if e.Full() {
			t.Fatalf("Full() true at occupancy %d/%d", i, depth)
		}
		if !e.Enqueue(Pair{Src: uint32(i), Dest: uint32(i) + 4}) {
			t.Fatalf("pair %d refused below capacity", i)
		}
	}
	if !e.Full() || e.Pending() != depth {
		t.Fatalf("after %d enqueues: Full=%v Pending=%d", depth, e.Full(), e.Pending())
	}

	// Exactly at capacity: the next pair must bounce, and keep bouncing.
	for i := 0; i < 3; i++ {
		if e.Enqueue(Pair{Src: 0xdead, Dest: 0xbeef}) {
			t.Fatalf("enqueue %d accepted into a full FIFO", i)
		}
	}
	st := e.Stats()
	if st.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", st.Dropped)
	}
	if st.MaxFIFO != depth {
		t.Fatalf("MaxFIFO = %d, want %d", st.MaxFIFO, depth)
	}

	// One cycle pops one pair: exactly one slot opens.
	e.Tick()
	if e.Full() || e.Pending() != depth-1 {
		t.Fatalf("after one tick: Full=%v Pending=%d", e.Full(), e.Pending())
	}
	if !e.Enqueue(Pair{Src: 1, Dest: 5}) {
		t.Fatal("freed slot refused a pair")
	}
	if !e.Full() {
		t.Fatal("refilled FIFO not full")
	}

	// Drops are observability-only: the digest covers exactly the
	// accepted pairs, in order.
	got := e.Finalize()
	want := HashPairs([]Pair{{0, 4}, {1, 5}, {2, 6}, {3, 7}, {1, 5}})
	if got != want {
		t.Fatal("digest does not match the accepted-pair sequence")
	}
}

// TestBackPressureLosesNothing models the loop monitor's contract: a
// producer that polls Full and waits — instead of dropping — delivers
// every pair even through a busy-window pile-up, and the drop counter
// stays zero. This is the discipline the interrupt-storm conformance
// class relies on when dispatch edges saturate the trace path.
func TestBackPressureLosesNothing(t *testing.T) {
	e := New(Config{}) // paper defaults: depth 4, 9 pairs/block, 3 busy cycles
	var pairs []Pair
	for i := 0; i < 200; i++ {
		pairs = append(pairs, Pair{Src: uint32(i * 4), Dest: uint32(i*4 + 8)})
	}
	var stalls int
	for _, p := range pairs {
		for e.Full() {
			e.Tick() // producer stalls a cycle, engine keeps draining
			stalls++
		}
		if !e.Enqueue(p) {
			t.Fatal("Enqueue refused after Full() reported space")
		}
		e.Tick()
	}
	st := e.Stats()
	if st.Dropped != 0 {
		t.Fatalf("back-pressured producer dropped %d pairs", st.Dropped)
	}
	if stalls == 0 {
		t.Fatal("wire-speed stream never hit back-pressure; test exercises nothing")
	}
	if e.Finalize() != HashPairs(pairs) {
		t.Fatal("digest lost pairs despite back-pressure")
	}
	if st := e.Stats(); st.Absorbed != uint64(len(pairs)) {
		t.Fatalf("Absorbed = %d, want %d", st.Absorbed, len(pairs))
	}
}

// TestFIFOGaugeTracksOccupancy pins the gauge contract: it follows
// every enqueue/pop transition, peaks exactly at MaxFIFO, and Reset
// zeroes it.
func TestFIFOGaugeTracksOccupancy(t *testing.T) {
	var g obs.Gauge
	e := New(Config{FIFODepth: 4})
	e.SetFIFOGauge(&g)
	if g.Load() != 0 {
		t.Fatalf("gauge %d on an idle engine", g.Load())
	}

	var peak int64
	for i := 0; i < 3; i++ {
		e.Enqueue(Pair{Src: uint32(i), Dest: uint32(i) + 4})
		if got := g.Load(); got != int64(i+1) {
			t.Fatalf("gauge %d after %d enqueues", got, i+1)
		}
		peak = max(peak, g.Load())
	}
	e.Tick()
	if g.Load() != 2 {
		t.Fatalf("gauge %d after pop, want 2", g.Load())
	}
	if int(peak) != e.Stats().MaxFIFO {
		t.Fatalf("gauge peak %d disagrees with MaxFIFO %d", peak, e.Stats().MaxFIFO)
	}

	// A full-FIFO bounce is not an occupancy change.
	e.Enqueue(Pair{}) // 3
	e.Enqueue(Pair{}) // 4 = full
	before := g.Load()
	e.Enqueue(Pair{Src: 9, Dest: 13})
	if g.Load() != before {
		t.Fatalf("dropped pair moved the gauge %d -> %d", before, g.Load())
	}

	e.Reset()
	if g.Load() != 0 {
		t.Fatalf("gauge %d after Reset", g.Load())
	}

	// Late attachment snaps to the current occupancy rather than
	// waiting for the next transition.
	e.Enqueue(Pair{Src: 4, Dest: 8})
	var late obs.Gauge
	e.SetFIFOGauge(&late)
	if late.Load() != 1 {
		t.Fatalf("late-attached gauge %d, want 1", late.Load())
	}
}
