package monitor

import (
	"testing"

	"lofat/internal/filter"
	"lofat/internal/hashengine"
)

// collector wires a monitor to a pair-recording sink.
func collector(cfg Config) (*Monitor, *[]hashengine.Pair) {
	var pairs []hashengine.Pair
	m := New(cfg, func(p hashengine.Pair) { pairs = append(pairs, p) })
	return m, &pairs
}

func push(m *Monitor, entry, exit uint32) {
	m.Apply(filter.Op{Kind: filter.OpLoopPush, Entry: entry, Exit: exit})
}

func cond(m *Monitor, src, dest uint32, taken bool) {
	m.Apply(filter.Op{Kind: filter.OpLoopEvent, Sym: filter.SymCond, Taken: taken,
		Pair: hashengine.Pair{Src: src, Dest: dest}})
}

func jump(m *Monitor, src, dest uint32) {
	m.Apply(filter.Op{Kind: filter.OpLoopEvent, Sym: filter.SymJump,
		Pair: hashengine.Pair{Src: src, Dest: dest}})
}

func indirect(m *Monitor, src, dest uint32) {
	m.Apply(filter.Op{Kind: filter.OpLoopEvent, Sym: filter.SymIndirect, Target: dest,
		Pair: hashengine.Pair{Src: src, Dest: dest}})
}

func iterEnd(m *Monitor) { m.Apply(filter.Op{Kind: filter.OpIterEnd}) }
func exit(m *Monitor)    { m.Apply(filter.Op{Kind: filter.OpLoopExit}) }

// Figure 4: the dashed path N2→N3→N5→N6→N2 encodes as "011" and the
// bold path N2→N3→N4→N6→N2 as "0011".
func TestFigure4Encodings(t *testing.T) {
	m, _ := collector(Config{})
	push(m, 0x100, 0x140)

	// Dashed: N2 while-cond not taken (0), N3 if-cond taken to else (1),
	// N6 back-edge jump (1).
	cond(m, 0x100, 0x104, false)
	cond(m, 0x104, 0x120, true)
	jump(m, 0x130, 0x100)
	iterEnd(m)

	// Bold: N2 (0), N3 not taken (0), N4 jump over else (1), N6 (1).
	cond(m, 0x100, 0x104, false)
	cond(m, 0x104, 0x108, false)
	jump(m, 0x118, 0x124)
	jump(m, 0x130, 0x100)
	iterEnd(m)

	exit(m)
	recs := m.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if len(r.Paths) != 2 {
		t.Fatalf("paths = %+v", r.Paths)
	}
	if got := r.Paths[0].Code.String(); got != "011" {
		t.Errorf("dashed path = %q, want 011", got)
	}
	if got := r.Paths[1].Code.String(); got != "0011" {
		t.Errorf("bold path = %q, want 0011", got)
	}
	if r.Iterations != 2 {
		t.Errorf("iterations = %d", r.Iterations)
	}
}

// The core optimisation: a repeated path is hashed once and counted.
func TestLoopPathDeduplication(t *testing.T) {
	m, pairs := collector(Config{})
	push(m, 0x100, 0x140)

	iteration := func() {
		cond(m, 0x100, 0x104, false)
		jump(m, 0x130, 0x100)
		iterEnd(m)
	}
	for i := 0; i < 10; i++ {
		iteration()
	}
	exit(m)

	// Only the first iteration's 2 pairs were hashed.
	if len(*pairs) != 2 {
		t.Fatalf("hashed pairs = %d, want 2", len(*pairs))
	}
	r := m.Records()[0]
	if len(r.Paths) != 1 || r.Paths[0].Count != 10 {
		t.Fatalf("paths = %+v", r.Paths)
	}
	if m.NewPaths != 1 || m.RepeatedPaths != 9 {
		t.Errorf("new/repeated = %d/%d", m.NewPaths, m.RepeatedPaths)
	}
	if m.DedupedPairs != 18 {
		t.Errorf("deduped pairs = %d, want 18", m.DedupedPairs)
	}
}

// Distinct paths through the same loop get distinct IDs, all hashed once.
func TestDistinctPathsAllHashed(t *testing.T) {
	m, pairs := collector(Config{})
	push(m, 0x100, 0x140)
	// Path A twice, path B once, path A again.
	runPath := func(taken bool) {
		cond(m, 0x100, 0x104, taken)
		jump(m, 0x130, 0x100)
		iterEnd(m)
	}
	runPath(false)
	runPath(false)
	runPath(true)
	runPath(false)
	exit(m)

	if len(*pairs) != 4 { // 2 per distinct path
		t.Fatalf("hashed pairs = %d, want 4", len(*pairs))
	}
	r := m.Records()[0]
	if len(r.Paths) != 2 {
		t.Fatalf("paths = %+v", r.Paths)
	}
	if r.Paths[0].Count != 3 || r.Paths[1].Count != 1 {
		t.Errorf("counts = %d, %d", r.Paths[0].Count, r.Paths[1].Count)
	}
}

// Partial iteration pairs are hashed when the loop exits.
func TestPartialIterationFlushedOnExit(t *testing.T) {
	m, pairs := collector(Config{})
	push(m, 0x100, 0x140)
	cond(m, 0x100, 0x140, true) // exit branch: partial path "1"
	exit(m)

	if len(*pairs) != 1 {
		t.Fatalf("hashed pairs = %d, want 1", len(*pairs))
	}
	r := m.Records()[0]
	if r.Partial.String() != "1" {
		t.Errorf("partial = %q, want 1", r.Partial)
	}
	if r.Iterations != 0 {
		t.Errorf("iterations = %d", r.Iterations)
	}
}

// Indirect targets are CAM-encoded: first-seen order, n-bit codes,
// distinct targets produce distinct path IDs.
func TestIndirectTargetEncoding(t *testing.T) {
	m, _ := collector(Config{IndirectBits: 4})
	push(m, 0x100, 0x140)

	runIter := func(target uint32) {
		indirect(m, 0x108, target)
		jump(m, 0x130, 0x100)
		iterEnd(m)
	}
	runIter(0x200) // code 1
	runIter(0x300) // code 2
	runIter(0x200) // code 1 again: repeats path 1
	exit(m)

	r := m.Records()[0]
	if len(r.IndirectTargets) != 2 || r.IndirectTargets[0] != 0x200 || r.IndirectTargets[1] != 0x300 {
		t.Fatalf("cam order = %#v", r.IndirectTargets)
	}
	if len(r.Paths) != 2 {
		t.Fatalf("paths = %+v (distinct targets must give distinct IDs)", r.Paths)
	}
	if r.Paths[0].Count != 2 || r.Paths[1].Count != 1 {
		t.Errorf("counts = %+v", r.Paths)
	}
	// Code width: 4-bit target code + 1-bit jump = 5 bits.
	if r.Paths[0].Code.Len != 5 {
		t.Errorf("code len = %d, want 5", r.Paths[0].Code.Len)
	}
}

// Beyond 2^n-1 targets, the all-zero overflow code is used and reported.
func TestIndirectCAMOverflow(t *testing.T) {
	m, _ := collector(Config{IndirectBits: 2}) // 3 targets max
	push(m, 0x100, 0x140)
	for i := 0; i < 5; i++ {
		indirect(m, 0x108, uint32(0x200+0x10*i))
		jump(m, 0x130, 0x100)
		iterEnd(m)
	}
	exit(m)
	r := m.Records()[0]
	if len(r.IndirectTargets) != 3 {
		t.Errorf("cam targets = %d, want 3", len(r.IndirectTargets))
	}
	if r.IndirectOverflows != 2 {
		t.Errorf("overflows = %d, want 2", r.IndirectOverflows)
	}
	// Targets 4 and 5 share the overflow code, hence the same path ID.
	if len(r.Paths) != 4 {
		t.Errorf("paths = %d, want 4 (3 coded + 1 overflow-coded)", len(r.Paths))
	}
}

// Iterations longer than ℓ symbols overflow: counted under the overflow
// ID and hashed on EVERY occurrence (dedup would be unsound).
func TestPathLengthOverflow(t *testing.T) {
	m, pairs := collector(Config{MaxBranchesPerPath: 4})
	push(m, 0x100, 0x140)
	longIter := func() {
		for i := 0; i < 6; i++ {
			cond(m, uint32(0x100+8*i), uint32(0x104+8*i), i%2 == 0)
		}
		jump(m, 0x130, 0x100)
		iterEnd(m)
	}
	longIter()
	longIter()
	exit(m)

	if len(*pairs) != 14 { // 7 pairs per iteration, both hashed
		t.Fatalf("hashed pairs = %d, want 14", len(*pairs))
	}
	r := m.Records()[0]
	if len(r.Paths) != 1 || !r.Paths[0].Code.Overflow || r.Paths[0].Count != 2 {
		t.Fatalf("paths = %+v", r.Paths)
	}
	if r.Paths[0].Code.String() != "OVERFLOW" {
		t.Errorf("code string = %q", r.Paths[0].Code)
	}
}

// Nested loop contexts are independent: inner records appear before the
// outer's (exit order), each with its own paths and CAM.
func TestNestedContexts(t *testing.T) {
	m, _ := collector(Config{})
	push(m, 0x100, 0x180) // outer
	cond(m, 0x100, 0x104, false)
	push(m, 0x110, 0x130) // inner
	cond(m, 0x110, 0x114, true)
	iterEnd(m) // inner iteration
	cond(m, 0x110, 0x130, false)
	exit(m) // inner exits
	jump(m, 0x17C, 0x100)
	iterEnd(m) // outer iteration
	exit(m)    // outer exits

	recs := m.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Entry != 0x110 || recs[1].Entry != 0x100 {
		t.Errorf("record order = %#x, %#x; want inner first", recs[0].Entry, recs[1].Entry)
	}
	if recs[0].Iterations != 1 || recs[1].Iterations != 1 {
		t.Errorf("iterations = %d, %d", recs[0].Iterations, recs[1].Iterations)
	}
	// Outer path excludes inner loop events: cond(0) + jump(1) = "01".
	if got := recs[1].Paths[0].Code.String(); got != "01" {
		t.Errorf("outer path = %q, want 01", got)
	}
}

// An empty-code iteration (entry reached with no intervening branch
// events, e.g. straight-line body with a fallthrough... possible via
// continue patterns) still counts distinctly from other paths.
func TestEmptyPathCode(t *testing.T) {
	m, _ := collector(Config{})
	push(m, 0x100, 0x140)
	iterEnd(m)
	iterEnd(m)
	exit(m)
	r := m.Records()[0]
	if len(r.Paths) != 1 || r.Paths[0].Count != 2 {
		t.Fatalf("paths = %+v", r.Paths)
	}
	if r.Paths[0].Code.String() != "ε" {
		t.Errorf("empty code = %q", r.Paths[0].Code)
	}
}

func TestPathCodeString(t *testing.T) {
	cases := []struct {
		code PathCode
		want string
	}{
		{PathCode{Bits: 0b011, Len: 3}, "011"},
		{PathCode{Bits: 0b0011, Len: 4}, "0011"},
		{PathCode{Bits: 0, Len: 1}, "0"},
		{PathCode{Bits: 1, Len: 1}, "1"},
		{PathCode{Overflow: true}, "OVERFLOW"},
		{PathCode{}, "ε"},
	}
	for _, c := range cases {
		if got := c.code.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.code, got, c.want)
		}
	}
}

func TestMonitorReset(t *testing.T) {
	m, _ := collector(Config{})
	push(m, 0x100, 0x140)
	cond(m, 0x100, 0x104, true)
	m.Reset()
	if m.Depth() != 0 || len(m.Records()) != 0 || m.HashedPairs != 0 {
		t.Error("Reset left state behind")
	}
}
