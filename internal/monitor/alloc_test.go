package monitor

import (
	"testing"

	"lofat/internal/filter"
	"lofat/internal/hashengine"
)

// TestApplyZeroAllocSteadyState pins the zero-allocation property of the
// monitor hot path: once a loop context exists and its path is interned,
// encoding further iterations (events + iteration boundaries) must not
// allocate.
func TestApplyZeroAllocSteadyState(t *testing.T) {
	m := New(Config{}, func(hashengine.Pair) {})
	m.Apply(filter.Op{Kind: filter.OpLoopPush, Entry: 0x100, Exit: 0x140})
	iter := func() {
		m.Apply(filter.Op{Kind: filter.OpLoopEvent, Sym: filter.SymCond, Taken: true,
			Pair: hashengine.Pair{Src: 0x104, Dest: 0x120}})
		m.Apply(filter.Op{Kind: filter.OpLoopEvent, Sym: filter.SymJump,
			Pair: hashengine.Pair{Src: 0x130, Dest: 0x100}})
		m.Apply(filter.Op{Kind: filter.OpIterEnd})
	}
	iter() // intern the path (first occurrence hashes and allocates the counter row)
	if allocs := testing.AllocsPerRun(100, iter); allocs != 0 {
		t.Fatalf("monitor.Apply steady state: %v allocs/op, want 0", allocs)
	}
}

// TestPushPoolReuse pins the frame pool: after a loop has exited, a new
// loop push must reuse its frame instead of allocating maps. The only
// steady-state allocations of a push/exit cycle are the exact-size
// record copies the metadata L hands to the caller.
func TestPushPoolReuse(t *testing.T) {
	m := New(Config{}, func(hashengine.Pair) {})
	cycle := func() {
		m.Apply(filter.Op{Kind: filter.OpLoopPush, Entry: 0x100, Exit: 0x140})
		m.Apply(filter.Op{Kind: filter.OpLoopEvent, Sym: filter.SymCond, Taken: true,
			Pair: hashengine.Pair{Src: 0x104, Dest: 0x100}})
		m.Apply(filter.Op{Kind: filter.OpIterEnd})
		m.Apply(filter.Op{Kind: filter.OpLoopExit})
	}
	// Warm up: allocate one frame, grow the records slice.
	for i := 0; i < 64; i++ {
		cycle()
	}
	m.Reset()
	for i := 0; i < 64; i++ {
		cycle()
	}
	base := m.Records()
	allocs := testing.AllocsPerRun(100, cycle)
	// Per cycle: one Paths copy + one records growth at most. The frame
	// and its maps must come from the pool (a fresh frame costs 2 map
	// allocations plus the state struct).
	if allocs > 2 {
		t.Fatalf("push/exit cycle: %v allocs/op, want <= 2 (frame pool not reusing?)", allocs)
	}
	if len(m.Records()) <= len(base) {
		t.Fatalf("records not appended")
	}
}

// TestPooledFrameStateIsolation verifies a reused frame starts clean:
// records produced after heavy prior use match those of a fresh monitor.
func TestPooledFrameStateIsolation(t *testing.T) {
	runOnce := func(m *Monitor) LoopRecord {
		m.Apply(filter.Op{Kind: filter.OpLoopPush, Entry: 0x200, Exit: 0x240})
		m.Apply(filter.Op{Kind: filter.OpLoopEvent, Sym: filter.SymIndirect, Target: 0xB00,
			Pair: hashengine.Pair{Src: 0x204, Dest: 0xB00}})
		m.Apply(filter.Op{Kind: filter.OpIterEnd})
		m.Apply(filter.Op{Kind: filter.OpLoopExit})
		recs := m.Records()
		return recs[len(recs)-1]
	}

	fresh := New(Config{}, func(hashengine.Pair) {})
	want := runOnce(fresh)

	used := New(Config{}, func(hashengine.Pair) {})
	// Pollute a frame with different loop state, then force reuse.
	used.Apply(filter.Op{Kind: filter.OpLoopPush, Entry: 0x100, Exit: 0x180})
	for i := 0; i < 20; i++ {
		used.Apply(filter.Op{Kind: filter.OpLoopEvent, Sym: filter.SymIndirect,
			Target: uint32(0xA00 + i*4), Pair: hashengine.Pair{Src: 0x104, Dest: uint32(0xA00 + i*4)}})
		used.Apply(filter.Op{Kind: filter.OpIterEnd})
	}
	used.Apply(filter.Op{Kind: filter.OpLoopExit})
	got := runOnce(used)

	if got.Entry != want.Entry || got.Exit != want.Exit ||
		got.Iterations != want.Iterations ||
		len(got.Paths) != len(want.Paths) ||
		len(got.IndirectTargets) != len(want.IndirectTargets) ||
		got.IndirectTargets[0] != want.IndirectTargets[0] ||
		got.Paths[0].Code != want.Paths[0].Code {
		t.Fatalf("reused frame leaked state:\n got %+v\nwant %+v", got, want)
	}
}
