package monitor

import (
	"math/rand"
	"testing"

	"lofat/internal/filter"
	"lofat/internal/hashengine"
)

// The monitor is the fail-safe stage: even on a desynchronized op
// stream (events without a push, spurious iteration ends or exits) it
// must not panic and must never silently drop a measured pair.
func TestDesyncOpsNeverLosePairs(t *testing.T) {
	var got []hashengine.Pair
	m := New(Config{}, func(p hashengine.Pair) { got = append(got, p) })

	// Loop event with no active loop: measured directly.
	m.Apply(filter.Op{Kind: filter.OpLoopEvent, Sym: filter.SymCond,
		Pair: hashengine.Pair{Src: 1, Dest: 2}})
	if len(got) != 1 {
		t.Fatalf("orphan loop event lost: %d pairs", len(got))
	}
	// Spurious iteration end / exit: no-ops.
	m.Apply(filter.Op{Kind: filter.OpIterEnd})
	m.Apply(filter.Op{Kind: filter.OpLoopExit})
	if m.Depth() != 0 || len(m.Records()) != 0 {
		t.Error("spurious ops changed state")
	}
}

// Random op storms: pairs in == pairs hashed + pairs deduplicated, and
// the monitor never panics.
func TestRandomOpStormConservation(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		var hashed int
		m := New(Config{}, func(hashengine.Pair) { hashed++ })
		pairsIn := 0
		for i := 0; i < 3000; i++ {
			switch r.Intn(6) {
			case 0:
				m.Apply(filter.Op{Kind: filter.OpHashDirect,
					Pair: hashengine.Pair{Src: uint32(i), Dest: uint32(i * 3)}})
				pairsIn++
			case 1, 2:
				sym := filter.SymbolKind(r.Intn(3))
				m.Apply(filter.Op{Kind: filter.OpLoopEvent, Sym: sym,
					Taken:  r.Intn(2) == 0,
					Target: uint32(r.Intn(64) * 4),
					Pair:   hashengine.Pair{Src: uint32(i), Dest: uint32(i * 7)}})
				pairsIn++
			case 3:
				m.Apply(filter.Op{Kind: filter.OpIterEnd})
			case 4:
				if m.Depth() < 3 {
					m.Apply(filter.Op{Kind: filter.OpLoopPush,
						Entry: uint32(0x1000 + r.Intn(64)*4), Exit: uint32(0x2000)})
				}
			case 5:
				m.Apply(filter.Op{Kind: filter.OpLoopExit})
			}
		}
		// Flush everything still active.
		for m.Depth() > 0 {
			m.Apply(filter.Op{Kind: filter.OpLoopExit})
		}
		if uint64(hashed)+m.DedupedPairs != uint64(pairsIn) {
			t.Fatalf("seed %d: hashed %d + deduped %d != in %d",
				seed, hashed, m.DedupedPairs, pairsIn)
		}
	}
}
