// Package monitor implements the LO-FAT loop monitor of §4/§5: the path
// encoder that assigns each distinct path through a loop a unique path
// ID (Figure 4), the path-ID-indexed loop counter memory, the
// interleaved-CAM re-encoding of indirect branch targets (§5.2), and the
// metadata generator that assembles the auxiliary loop metadata L.
//
// The central optimisation of the paper lives here: each distinct loop
// path is hashed ONCE, on first occurrence; repeated executions only
// increment an on-chip counter, avoiding both the combinatorial
// explosion of valid hash values and per-iteration hash work.
package monitor

import (
	"fmt"
	"strings"

	"lofat/internal/filter"
	"lofat/internal/hashengine"
)

// Config parameterizes the loop monitor hardware (§5.2).
type Config struct {
	// MaxBranchesPerPath is ℓ: the maximum number of control-flow
	// events encoded per loop path (paper: 16). Longer iterations
	// overflow: they are counted under a dedicated overflow path ID
	// and their pairs are hashed on every occurrence (no dedup).
	MaxBranchesPerPath int
	// IndirectBits is n: indirect targets are re-encoded in n bits,
	// allowing 2^n-1 distinct targets per loop; further targets get
	// the all-zero overflow code, which is reported to the verifier.
	IndirectBits int
	// DisableDedup turns the paper's core optimisation OFF: every loop
	// iteration is hashed even when its path ID was seen before. Only
	// for ablation studies — it recreates the "combinatorial explosion
	// of valid hash values" problem §4 describes.
	DisableDedup bool
}

// DefaultConfig matches the paper's prototype (ℓ=16, n=4).
var DefaultConfig = Config{MaxBranchesPerPath: 16, IndirectBits: 4}

func (c *Config) fill() {
	if c.MaxBranchesPerPath == 0 {
		c.MaxBranchesPerPath = DefaultConfig.MaxBranchesPerPath
	}
	if c.IndirectBits == 0 {
		c.IndirectBits = DefaultConfig.IndirectBits
	}
}

// PathCode is a unique loop path encoding: the chronological
// taken/not-taken and indirect-target symbols of one iteration, as in
// Figure 4 ("011" for the dashed path, "0011" for the bold path).
type PathCode struct {
	Bits     uint64
	Len      uint8 // number of significant bits
	Overflow bool  // iteration exceeded ℓ symbols or 64 bits
}

// String renders the code as the paper does: chronological bit string.
func (p PathCode) String() string {
	if p.Overflow {
		return "OVERFLOW"
	}
	if p.Len == 0 {
		return "ε"
	}
	var b strings.Builder
	for i := int(p.Len) - 1; i >= 0; i-- {
		if p.Bits>>uint(i)&1 == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// PathStat is one row of the loop counter memory.
type PathStat struct {
	Code  PathCode
	Count uint64 // iterations that followed this path
}

// LoopRecord is the per-loop entry of the auxiliary metadata L: "the
// unique loop path encodings in order of first occurrence, the number of
// iterations of each path, and the indirect branch targets encountered
// in this loop" (§5.1), plus the partial path taken when exiting.
type LoopRecord struct {
	Entry uint32
	Exit  uint32
	// Paths lists distinct path IDs in order of first occurrence with
	// their iteration counts.
	Paths []PathStat
	// IndirectTargets are the CAM contents in code order (code i+1 =
	// IndirectTargets[i]); code 0 is the overflow marker.
	IndirectTargets []uint32
	// IndirectOverflows counts targets beyond the 2^n-1 CAM capacity.
	IndirectOverflows uint64
	// Partial is the (possibly empty) path prefix of the iteration
	// during which the loop exited.
	Partial PathCode
	// Iterations is the total number of completed iterations observed
	// (sum of path counts).
	Iterations uint64
}

// String summarizes the record for diagnostics.
func (r LoopRecord) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop[%#x,%#x) iters=%d paths=", r.Entry, r.Exit, r.Iterations)
	for i, p := range r.Paths {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s×%d", p.Code, p.Count)
	}
	return b.String()
}

// loopState is the per-active-loop hardware context. States are pooled
// by the Monitor: a loop push in steady state reuses a frame freed by an
// earlier loop exit instead of allocating (the hardware analogue: the
// fixed per-nesting-level register banks of §5.2).
type loopState struct {
	entry, exit uint32
	code        PathCode
	syms        int
	buf         []hashengine.Pair
	stats       map[PathCode]int32 // code -> interned path ID (index into order)
	order       []PathStat
	cam         map[uint32]uint8
	camOrder    []uint32
	camOverflow uint64
	iterations  uint64
}

// newLoopState is the pool-miss cold path: the first loop at a given
// nesting depth allocates its frame here; every later push at that
// depth reuses it via reset.
func newLoopState(entry, exit uint32) *loopState {
	return &loopState{
		entry: entry,
		exit:  exit,
		stats: make(map[PathCode]int32),
		cam:   make(map[uint32]uint8),
	}
}

// reset prepares a pooled frame for a fresh loop, keeping the allocated
// buffers and map storage.
//
//lofat:zeroalloc
func (l *loopState) reset(entry, exit uint32) {
	l.entry, l.exit = entry, exit
	l.code = PathCode{}
	l.syms = 0
	l.buf = l.buf[:0]
	clear(l.stats)
	l.order = l.order[:0]
	clear(l.cam)
	l.camOrder = l.camOrder[:0]
	l.camOverflow = 0
	l.iterations = 0
}

// Monitor is the loop monitor. Emitted (Src,Dest) pairs flow to the hash
// engine via the emit callback (the new_path/non_loops ctrl paths of
// Figure 3).
type Monitor struct {
	cfg     Config
	stack   []*loopState
	free    []*loopState // frame pool (exited loops awaiting reuse)
	records []LoopRecord
	emit    func(hashengine.Pair)

	// Stats for the evaluation.
	HashedPairs   uint64 // pairs sent to the hash engine
	DedupedPairs  uint64 // pairs suppressed by the loop-path dedup
	NewPaths      uint64
	RepeatedPaths uint64
}

// New returns a monitor forwarding measured pairs to emit.
func New(cfg Config, emit func(hashengine.Pair)) *Monitor {
	cfg.fill()
	return &Monitor{cfg: cfg, emit: emit}
}

// Reset clears all state for a new attestation. Pooled loop frames are
// retained across resets so repeated attestations stay allocation-free.
//
//lofat:zeroalloc
func (m *Monitor) Reset() {
	m.free = append(m.free, m.stack...)
	m.stack = m.stack[:0]
	m.records = m.records[:0]
	m.HashedPairs = 0
	m.DedupedPairs = 0
	m.NewPaths = 0
	m.RepeatedPaths = 0
}

// Records returns the loop metadata generated so far (L).
func (m *Monitor) Records() []LoopRecord { return m.records }

// Depth reports the number of active loop contexts (mirrors the filter).
func (m *Monitor) Depth() int { return len(m.stack) }

//lofat:zeroalloc
func (m *Monitor) send(p hashengine.Pair) {
	m.HashedPairs++
	m.emit(p)
}

// Apply consumes one filter operation.
//
//lofat:zeroalloc
func (m *Monitor) Apply(op filter.Op) {
	switch op.Kind {
	case filter.OpHashDirect:
		m.send(op.Pair)

	case filter.OpLoopPush:
		var l *loopState
		if n := len(m.free); n > 0 {
			l = m.free[n-1]
			m.free = m.free[:n-1]
			l.reset(op.Entry, op.Exit)
		} else {
			//lofat:ignore zeroalloc pool miss: first loop at this nesting depth allocates its frame once
			l = newLoopState(op.Entry, op.Exit)
		}
		m.stack = append(m.stack, l)

	case filter.OpLoopEvent:
		l := m.top()
		if l == nil {
			// Filter/monitor desync would be a wiring bug; measure
			// the pair directly so A never silently loses an edge.
			m.send(op.Pair)
			return
		}
		l.buf = append(l.buf, op.Pair)
		m.appendSymbol(l, op)

	case filter.OpIterEnd:
		l := m.top()
		if l == nil {
			return
		}
		m.finishIteration(l)

	case filter.OpLoopExit:
		l := m.top()
		if l == nil {
			return
		}
		m.stack = m.stack[:len(m.stack)-1]
		// The partial iteration in flight when the loop exits is part
		// of the actual execution path: hash it directly.
		for _, p := range l.buf {
			m.send(p)
		}
		//lofat:ignore zeroalloc record emission copies the frame once per loop exit, not per iteration
		m.emitRecord(l)
		m.free = append(m.free, l)
	}
}

// emitRecord appends the finished loop's metadata record. The record
// owns exact-size copies so the frame (and its grown buffers) can go
// back to the pool. This is the per-loop-exit cold path: its cost is
// bounded by the number of loops, not iterations.
func (m *Monitor) emitRecord(l *loopState) {
	m.records = append(m.records, LoopRecord{
		Entry:             l.entry,
		Exit:              l.exit,
		Paths:             append([]PathStat(nil), l.order...),
		IndirectTargets:   append([]uint32(nil), l.camOrder...),
		IndirectOverflows: l.camOverflow,
		Partial:           l.code,
		Iterations:        l.iterations,
	})
}

//lofat:zeroalloc
func (m *Monitor) top() *loopState {
	if len(m.stack) == 0 {
		return nil
	}
	return m.stack[len(m.stack)-1]
}

// appendSymbol extends the current iteration's path code per Figure 4:
// conditional branches append their taken bit, direct jumps append '1',
// indirect transfers append the n-bit CAM code of their target.
//
//lofat:zeroalloc
func (m *Monitor) appendSymbol(l *loopState, op filter.Op) {
	l.syms++
	if l.syms > m.cfg.MaxBranchesPerPath {
		l.code.Overflow = true
		return
	}
	var sym uint64
	var width uint8
	switch op.Sym {
	case filter.SymCond:
		width = 1
		if op.Taken {
			sym = 1
		}
	case filter.SymJump:
		width, sym = 1, 1
	case filter.SymIndirect:
		width = uint8(m.cfg.IndirectBits)
		sym = uint64(m.camCode(l, op.Target))
	}
	if int(l.code.Len)+int(width) > 64 {
		l.code.Overflow = true
		return
	}
	l.code.Bits = l.code.Bits<<width | sym
	l.code.Len += width
}

// camCode returns the n-bit re-encoding of an indirect target, assigning
// codes 1..2^n-1 in first-seen order; 0 is the overflow code reported to
// the verifier (§5.2).
//
//lofat:zeroalloc
func (m *Monitor) camCode(l *loopState, target uint32) uint8 {
	if c, ok := l.cam[target]; ok {
		return c
	}
	maxTargets := 1<<uint(m.cfg.IndirectBits) - 1
	if len(l.camOrder) >= maxTargets {
		l.camOverflow++
		return 0
	}
	code := uint8(len(l.camOrder) + 1)
	//lofat:ignore zeroalloc CAM capacity is 2^n-1 entries; the map stops growing once full
	l.cam[target] = code
	l.camOrder = append(l.camOrder, target)
	return code
}

// finishIteration closes one loop iteration: looks the path ID up in the
// counter memory, hashes the buffered pairs only on first occurrence
// (the paper's core optimisation), and increments the counter.
//
//lofat:zeroalloc
func (m *Monitor) finishIteration(l *loopState) {
	l.iterations++
	code := l.code
	idx, seen := l.stats[code]
	switch {
	case m.cfg.DisableDedup:
		// Ablation: naive per-iteration hashing.
		for _, p := range l.buf {
			m.send(p)
		}
		if !seen {
			idx = m.internPath(l, code)
		}
		l.order[idx].Count++
	case code.Overflow:
		// Overflow paths cannot be deduplicated soundly: hash every
		// occurrence so A stays complete.
		for _, p := range l.buf {
			m.send(p)
		}
		if !seen {
			idx = m.internPath(l, code)
		}
		l.order[idx].Count++
	case !seen:
		// New path: hash its (Src,Dest) pairs from the branches
		// memory (new_path ctrl) and allocate a counter.
		for _, p := range l.buf {
			m.send(p)
		}
		idx = m.internPath(l, code)
		l.order[idx].Count = 1
	default:
		// Known path: counter increment only; no hash work.
		l.order[idx].Count++
		m.DedupedPairs += uint64(len(l.buf))
		m.RepeatedPaths++
	}
	l.buf = l.buf[:0]
	l.code = PathCode{}
	l.syms = 0
}

// internPath allocates the next path ID for a first-seen code: the row
// index in the loop counter memory. Downstream lookups compare interned
// IDs, never the code bit strings.
//
//lofat:zeroalloc
func (m *Monitor) internPath(l *loopState, code PathCode) int32 {
	id := int32(len(l.order))
	//lofat:ignore zeroalloc counter memory rows are interned once per distinct path, not per iteration
	l.stats[code] = id
	l.order = append(l.order, PathStat{Code: code})
	m.NewPaths++
	return id
}
