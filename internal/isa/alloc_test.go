package isa

import "testing"

// TestClassifyZeroAlloc is the runtime proof for the //lofat:zeroalloc
// annotations on the per-instruction classification helpers: Classify,
// IsLinking, IsCondBranch, and IsControlFlow run on every retired
// instruction and must not allocate.
func TestClassifyZeroAlloc(t *testing.T) {
	insts := []Inst{
		{Op: OpBEQ},
		{Op: OpJAL, Rd: RA},
		{Op: OpJAL},
		{Op: OpJALR, Rs1: RA},
		{Op: OpADDI},
	}
	var kinds [8]int
	var links int
	n := testing.AllocsPerRun(200, func() {
		for _, in := range insts {
			kinds[Classify(in)]++
			if IsLinking(in) {
				links++
			}
			_ = in.Op.IsCondBranch()
			_ = in.Op.IsControlFlow()
		}
	})
	if n != 0 {
		t.Fatalf("classification helpers allocate %v per run, want 0", n)
	}
	if kinds[KindCondBr] == 0 || kinds[KindJump] == 0 || kinds[KindReturn] == 0 || links == 0 {
		t.Fatalf("classification coverage hole: kinds %v links %d", kinds, links)
	}
}
