package isa

// ControlFlowKind is the branch-filter taxonomy of §4: every retired
// instruction is either not a control-flow instruction or one of these.
type ControlFlowKind uint8

// Control-flow kinds distinguished by the LO-FAT branch filter. The
// filter treats conditional branches specially (they contribute
// taken/not-taken path bits inside loops) and distinguishes linking from
// non-linking transfers for the loop-detection heuristic of §5.1.
const (
	KindNone     ControlFlowKind = iota // not a control-flow instruction
	KindCondBr                          // conditional branch (taken or not)
	KindJump                            // direct jump (jal)
	KindIndirect                        // indirect jump/call (jalr, not return)
	KindReturn                          // function return (jalr via ra, rd=x0)
	KindIRQEnter                        // asynchronous interrupt entry (hardware vector dispatch)
	KindIRQRet                          // return from interrupt handler (mret)
)

// String names the kind for diagnostics.
func (k ControlFlowKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindCondBr:
		return "cond-branch"
	case KindJump:
		return "jump"
	case KindIndirect:
		return "indirect"
	case KindReturn:
		return "return"
	case KindIRQEnter:
		return "irq-enter"
	case KindIRQRet:
		return "irq-return"
	}
	return "unknown"
}

// IsCondBranch reports whether the opcode is a conditional branch.
//
//lofat:zeroalloc
func (op Opcode) IsCondBranch() bool {
	switch op {
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return true
	}
	return false
}

// IsControlFlow reports whether the opcode can redirect the PC.
//
//lofat:zeroalloc
func (op Opcode) IsControlFlow() bool {
	return op.IsCondBranch() || op == OpJAL || op == OpJALR || op == OpMRET
}

// Classify maps a decoded instruction to its control-flow kind.
//
// Returns are identified by the standard RISC-V idiom `jalr x0, 0(ra)`
// (any jalr through ra that does not link is treated as a return). All
// other jalr instructions are indirect calls/jumps whose targets cannot
// be enumerated statically (§5.2).
//
//lofat:zeroalloc
func Classify(in Inst) ControlFlowKind {
	switch {
	case in.Op.IsCondBranch():
		return KindCondBr
	case in.Op == OpJAL:
		return KindJump
	case in.Op == OpJALR:
		if in.Rd == Zero && in.Rs1 == RA {
			return KindReturn
		}
		return KindIndirect
	case in.Op == OpMRET:
		return KindIRQRet
	}
	return KindNone
}

// IsLinking reports whether the instruction updates the link register
// (or any rd != x0 for jal/jalr), i.e. whether it is a subroutine call
// in the sense of the loop-detection heuristic: "any subroutine call
// with multiple call sites must be linking and updates the link
// register" (§5.1). Backward control transfers that are NOT linking are
// treated as loop back-edges.
//
//lofat:zeroalloc
func IsLinking(in Inst) bool {
	switch in.Op {
	case OpJAL, OpJALR:
		return in.Rd != Zero
	}
	return false
}
