package isa

import "fmt"

// Decode disassembles a 32-bit word into an Inst. Unknown encodings
// return an error so corrupted code memory is surfaced instead of
// misexecuted.
func Decode(word uint32) (Inst, error) {
	opcode := word & 0x7F
	rd := Reg(word >> 7 & 0x1F)
	funct3 := word >> 12 & 0x7
	rs1 := Reg(word >> 15 & 0x1F)
	rs2 := Reg(word >> 20 & 0x1F)
	funct7 := word >> 25 & 0x7F

	switch opcode {
	case 0x37: // LUI
		return Inst{Op: OpLUI, Rd: rd, Imm: int32(word & 0xFFFFF000)}, nil
	case 0x17: // AUIPC
		return Inst{Op: OpAUIPC, Rd: rd, Imm: int32(word & 0xFFFFF000)}, nil

	case 0x6F: // JAL
		return Inst{Op: OpJAL, Rd: rd, Imm: immJ(word)}, nil

	case 0x67: // JALR
		if funct3 != 0 {
			return Inst{}, fmt.Errorf("isa: decode %#08x: bad jalr funct3 %d", word, funct3)
		}
		return Inst{Op: OpJALR, Rd: rd, Rs1: rs1, Imm: immI(word)}, nil

	case 0x63: // BRANCH
		var op Opcode
		switch funct3 {
		case 0:
			op = OpBEQ
		case 1:
			op = OpBNE
		case 4:
			op = OpBLT
		case 5:
			op = OpBGE
		case 6:
			op = OpBLTU
		case 7:
			op = OpBGEU
		default:
			return Inst{}, fmt.Errorf("isa: decode %#08x: bad branch funct3 %d", word, funct3)
		}
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immB(word)}, nil

	case 0x03: // LOAD
		var op Opcode
		switch funct3 {
		case 0:
			op = OpLB
		case 1:
			op = OpLH
		case 2:
			op = OpLW
		case 4:
			op = OpLBU
		case 5:
			op = OpLHU
		default:
			return Inst{}, fmt.Errorf("isa: decode %#08x: bad load funct3 %d", word, funct3)
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: immI(word)}, nil

	case 0x23: // STORE
		var op Opcode
		switch funct3 {
		case 0:
			op = OpSB
		case 1:
			op = OpSH
		case 2:
			op = OpSW
		default:
			return Inst{}, fmt.Errorf("isa: decode %#08x: bad store funct3 %d", word, funct3)
		}
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immS(word)}, nil

	case 0x13: // OP-IMM
		switch funct3 {
		case 0:
			return Inst{Op: OpADDI, Rd: rd, Rs1: rs1, Imm: immI(word)}, nil
		case 2:
			return Inst{Op: OpSLTI, Rd: rd, Rs1: rs1, Imm: immI(word)}, nil
		case 3:
			return Inst{Op: OpSLTIU, Rd: rd, Rs1: rs1, Imm: immI(word)}, nil
		case 4:
			return Inst{Op: OpXORI, Rd: rd, Rs1: rs1, Imm: immI(word)}, nil
		case 6:
			return Inst{Op: OpORI, Rd: rd, Rs1: rs1, Imm: immI(word)}, nil
		case 7:
			return Inst{Op: OpANDI, Rd: rd, Rs1: rs1, Imm: immI(word)}, nil
		case 1:
			if funct7 != 0 {
				return Inst{}, fmt.Errorf("isa: decode %#08x: bad slli funct7 %#x", word, funct7)
			}
			return Inst{Op: OpSLLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
		case 5:
			switch funct7 {
			case 0x00:
				return Inst{Op: OpSRLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			case 0x20:
				return Inst{Op: OpSRAI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			}
			return Inst{}, fmt.Errorf("isa: decode %#08x: bad shift funct7 %#x", word, funct7)
		}

	case 0x33: // OP
		var op Opcode
		switch funct7<<3 | funct3 {
		case 0x00<<3 | 0:
			op = OpADD
		case 0x20<<3 | 0:
			op = OpSUB
		case 0x00<<3 | 1:
			op = OpSLL
		case 0x00<<3 | 2:
			op = OpSLT
		case 0x00<<3 | 3:
			op = OpSLTU
		case 0x00<<3 | 4:
			op = OpXOR
		case 0x00<<3 | 5:
			op = OpSRL
		case 0x20<<3 | 5:
			op = OpSRA
		case 0x00<<3 | 6:
			op = OpOR
		case 0x00<<3 | 7:
			op = OpAND
		case 0x01<<3 | 0:
			op = OpMUL
		case 0x01<<3 | 1:
			op = OpMULH
		case 0x01<<3 | 2:
			op = OpMULHSU
		case 0x01<<3 | 3:
			op = OpMULHU
		case 0x01<<3 | 4:
			op = OpDIV
		case 0x01<<3 | 5:
			op = OpDIVU
		case 0x01<<3 | 6:
			op = OpREM
		case 0x01<<3 | 7:
			op = OpREMU
		default:
			return Inst{}, fmt.Errorf("isa: decode %#08x: bad OP funct3/funct7 %d/%#x", word, funct3, funct7)
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil

	case 0x0F: // MISC-MEM
		return Inst{Op: OpFENCE}, nil

	case 0x73: // SYSTEM
		switch word {
		case 0x00000073:
			return Inst{Op: OpECALL}, nil
		case 0x00100073:
			return Inst{Op: OpEBREAK}, nil
		case 0x30200073:
			return Inst{Op: OpMRET}, nil
		}
		return Inst{}, fmt.Errorf("isa: decode %#08x: unsupported SYSTEM encoding", word)
	}
	return Inst{}, fmt.Errorf("isa: decode %#08x: unknown opcode %#02x", word, opcode)
}

func immI(word uint32) int32 { return int32(word) >> 20 }

func immS(word uint32) int32 {
	return int32(word)>>25<<5 | int32(word>>7&0x1F)
}

func immB(word uint32) int32 {
	imm := int32(word)>>31<<12 | // imm[12]
		int32(word>>7&1)<<11 | // imm[11]
		int32(word>>25&0x3F)<<5 | // imm[10:5]
		int32(word>>8&0xF)<<1 // imm[4:1]
	return imm
}

func immJ(word uint32) int32 {
	imm := int32(word)>>31<<20 | // imm[20]
		int32(word>>12&0xFF)<<12 | // imm[19:12]
		int32(word>>20&1)<<11 | // imm[11]
		int32(word>>21&0x3FF)<<1 // imm[10:1]
	return imm
}
