package isa

import "fmt"

// abiNames maps ABI register names to register numbers, including both
// the numeric x-form and the conventional names used by the RISC-V
// calling convention (and by the Pulpino toolchain output the paper's
// heuristic was derived from).
var abiNames = map[string]Reg{
	"zero": Zero, "ra": RA, "sp": SP, "gp": GP, "tp": TP,
	"t0": T0, "t1": T1, "t2": T2,
	"s0": S0, "fp": S0, "s1": S1,
	"a0": A0, "a1": A1, "a2": A2, "a3": A3,
	"a4": A4, "a5": A5, "a6": A6, "a7": A7,
	"s2": S2, "s3": S3, "s4": S4, "s5": S5, "s6": S6,
	"s7": S7, "s8": S8, "s9": S9, "s10": S10, "s11": S11,
	"t3": T3, "t4": T4, "t5": T5, "t6": T6,
}

// RegByName resolves a register name in either ABI ("a0", "ra") or
// numeric ("x10") form.
func RegByName(name string) (Reg, error) {
	if r, ok := abiNames[name]; ok {
		return r, nil
	}
	var n int
	if _, err := fmt.Sscanf(name, "x%d", &n); err == nil && n >= 0 && n < NumRegs {
		return Reg(n), nil
	}
	return 0, fmt.Errorf("isa: unknown register %q", name)
}

var regNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// Name returns the ABI name of the register ("a0", "ra", ...).
func (r Reg) Name() string {
	if r < NumRegs {
		return regNames[r]
	}
	return fmt.Sprintf("x%d?", uint8(r))
}
