package isa

import "fmt"

// Immediate range limits per format.
const (
	maxImmI = 1<<11 - 1
	minImmI = -(1 << 11)
	maxImmB = 1<<12 - 2 // B immediates are 13-bit signed, even
	minImmB = -(1 << 12)
	maxImmJ = 1<<20 - 2 // J immediates are 21-bit signed, even
	minImmJ = -(1 << 20)
)

// Encode assembles the instruction into its 32-bit RISC-V encoding.
// It validates register numbers and immediate ranges.
func Encode(in Inst) (uint32, error) {
	if in.Op == OpInvalid || in.Op >= numOpcodes {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", in.Op)
	}
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return 0, fmt.Errorf("isa: encode %s: register out of range", in.Op)
	}
	info := opTable[in.Op]
	switch info.format {
	case FormatR:
		return info.opcode | uint32(in.Rd)<<7 | info.funct3<<12 |
			uint32(in.Rs1)<<15 | uint32(in.Rs2)<<20 | info.funct7<<25, nil

	case FormatI:
		imm := in.Imm
		if in.Op == OpSLLI || in.Op == OpSRLI || in.Op == OpSRAI {
			if imm < 0 || imm > 31 {
				return 0, fmt.Errorf("isa: encode %s: shift amount %d out of range", in.Op, imm)
			}
			return info.opcode | uint32(in.Rd)<<7 | info.funct3<<12 |
				uint32(in.Rs1)<<15 | uint32(imm)<<20 | info.funct7<<25, nil
		}
		if imm < minImmI || imm > maxImmI {
			return 0, fmt.Errorf("isa: encode %s: immediate %d out of 12-bit range", in.Op, imm)
		}
		return info.opcode | uint32(in.Rd)<<7 | info.funct3<<12 |
			uint32(in.Rs1)<<15 | (uint32(imm)&0xFFF)<<20, nil

	case FormatS:
		imm := in.Imm
		if imm < minImmI || imm > maxImmI {
			return 0, fmt.Errorf("isa: encode %s: immediate %d out of 12-bit range", in.Op, imm)
		}
		u := uint32(imm) & 0xFFF
		return info.opcode | (u&0x1F)<<7 | info.funct3<<12 |
			uint32(in.Rs1)<<15 | uint32(in.Rs2)<<20 | (u>>5)<<25, nil

	case FormatB:
		imm := in.Imm
		if imm < minImmB || imm > maxImmB {
			return 0, fmt.Errorf("isa: encode %s: branch offset %d out of range", in.Op, imm)
		}
		if imm&1 != 0 {
			return 0, fmt.Errorf("isa: encode %s: branch offset %d is odd", in.Op, imm)
		}
		u := uint32(imm)
		word := info.opcode | info.funct3<<12 | uint32(in.Rs1)<<15 | uint32(in.Rs2)<<20
		word |= (u >> 11 & 1) << 7    // imm[11]
		word |= (u >> 1 & 0xF) << 8   // imm[4:1]
		word |= (u >> 5 & 0x3F) << 25 // imm[10:5]
		word |= (u >> 12 & 1) << 31   // imm[12]
		return word, nil

	case FormatU:
		// Imm carries the full 32-bit value whose low 12 bits must be zero.
		if in.Imm&0xFFF != 0 {
			return 0, fmt.Errorf("isa: encode %s: U immediate %#x has nonzero low bits", in.Op, in.Imm)
		}
		return info.opcode | uint32(in.Rd)<<7 | uint32(in.Imm), nil

	case FormatJ:
		imm := in.Imm
		if imm < minImmJ || imm > maxImmJ {
			return 0, fmt.Errorf("isa: encode %s: jump offset %d out of range", in.Op, imm)
		}
		if imm&1 != 0 {
			return 0, fmt.Errorf("isa: encode %s: jump offset %d is odd", in.Op, imm)
		}
		u := uint32(imm)
		word := info.opcode | uint32(in.Rd)<<7
		word |= (u >> 12 & 0xFF) << 12 // imm[19:12]
		word |= (u >> 11 & 1) << 20    // imm[11]
		word |= (u >> 1 & 0x3FF) << 21 // imm[10:1]
		word |= (u >> 20 & 1) << 31    // imm[20]
		return word, nil

	case FormatSys:
		switch in.Op {
		case OpECALL:
			return 0x00000073, nil
		case OpEBREAK:
			return 0x00100073, nil
		case OpMRET:
			return 0x30200073, nil
		case OpFENCE:
			return 0x0000000F, nil
		}
	}
	return 0, fmt.Errorf("isa: encode: unsupported opcode %s", in.Op)
}

// MustEncode is Encode for known-good instructions; it panics on error and
// is intended for package-internal tables and tests.
func MustEncode(in Inst) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}
