package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Known encodings cross-checked against the RISC-V spec / GNU as output.
func TestKnownEncodings(t *testing.T) {
	cases := []struct {
		in   Inst
		want uint32
	}{
		{Inst{Op: OpADDI, Rd: RA, Rs1: Zero, Imm: 5}, 0x00500093},  // addi ra,zero,5
		{Inst{Op: OpADDI, Rd: A0, Rs1: A0, Imm: -1}, 0xFFF50513},   // addi a0,a0,-1
		{Inst{Op: OpADD, Rd: A0, Rs1: A1, Rs2: A2}, 0x00C58533},    // add a0,a1,a2
		{Inst{Op: OpSUB, Rd: T0, Rs1: T1, Rs2: T2}, 0x407302B3},    // sub t0,t1,t2
		{Inst{Op: OpLUI, Rd: A0, Imm: 0x12345000}, 0x12345537},     // lui a0,0x12345
		{Inst{Op: OpAUIPC, Rd: T0, Imm: 0x1000}, 0x00001297},       // auipc t0,1
		{Inst{Op: OpJAL, Rd: RA, Imm: 8}, 0x008000EF},              // jal ra,+8
		{Inst{Op: OpJAL, Rd: Zero, Imm: -4}, 0xFFDFF06F},           // j -4
		{Inst{Op: OpJALR, Rd: Zero, Rs1: RA, Imm: 0}, 0x00008067},  // ret
		{Inst{Op: OpBEQ, Rs1: A0, Rs2: A1, Imm: 16}, 0x00B50863},   // beq a0,a1,+16
		{Inst{Op: OpBNE, Rs1: A0, Rs2: Zero, Imm: -8}, 0xFE051CE3}, // bne a0,zero,-8
		{Inst{Op: OpLW, Rd: A0, Rs1: SP, Imm: 12}, 0x00C12503},     // lw a0,12(sp)
		{Inst{Op: OpSW, Rs1: SP, Rs2: RA, Imm: 12}, 0x00112623},    // sw ra,12(sp)
		{Inst{Op: OpSLLI, Rd: A0, Rs1: A0, Imm: 4}, 0x00451513},    // slli a0,a0,4
		{Inst{Op: OpSRAI, Rd: A0, Rs1: A0, Imm: 4}, 0x40455513},    // srai a0,a0,4
		{Inst{Op: OpMUL, Rd: A0, Rs1: A1, Rs2: A2}, 0x02C58533},    // mul a0,a1,a2
		{Inst{Op: OpDIVU, Rd: A3, Rs1: A4, Rs2: A5}, 0x02F756B3},   // divu a3,a4,a5
		{Inst{Op: OpECALL}, 0x00000073},
		{Inst{Op: OpEBREAK}, 0x00100073},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Errorf("Encode(%v): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Encode(%v) = %#08x, want %#08x", c.in, got, c.want)
		}
		dec, err := Decode(c.want)
		if err != nil {
			t.Errorf("Decode(%#08x): %v", c.want, err)
			continue
		}
		if dec != c.in {
			t.Errorf("Decode(%#08x) = %+v, want %+v", c.want, dec, c.in)
		}
	}
}

// randomInst generates a valid random instruction for round-trip tests.
func randomInst(r *rand.Rand) Inst {
	for {
		op := Opcode(1 + r.Intn(int(numOpcodes)-1))
		in := Inst{Op: op}
		switch op.Format() {
		case FormatR:
			in.Rd = Reg(r.Intn(NumRegs))
			in.Rs1 = Reg(r.Intn(NumRegs))
			in.Rs2 = Reg(r.Intn(NumRegs))
		case FormatI:
			in.Rd = Reg(r.Intn(NumRegs))
			in.Rs1 = Reg(r.Intn(NumRegs))
			if op == OpSLLI || op == OpSRLI || op == OpSRAI {
				in.Imm = int32(r.Intn(32))
			} else {
				in.Imm = int32(r.Intn(1<<12)) - 1<<11
			}
		case FormatS:
			in.Rs1 = Reg(r.Intn(NumRegs))
			in.Rs2 = Reg(r.Intn(NumRegs))
			in.Imm = int32(r.Intn(1<<12)) - 1<<11
		case FormatB:
			in.Rs1 = Reg(r.Intn(NumRegs))
			in.Rs2 = Reg(r.Intn(NumRegs))
			in.Imm = (int32(r.Intn(1<<12)) - 1<<11) &^ 1
		case FormatU:
			in.Rd = Reg(r.Intn(NumRegs))
			in.Imm = int32(uint32(r.Uint32()) & 0xFFFFF000)
		case FormatJ:
			in.Rd = Reg(r.Intn(NumRegs))
			in.Imm = (int32(r.Intn(1<<20)) - 1<<19) &^ 1
		case FormatSys:
			// no operands
		}
		return in
	}
}

// Property: Encode then Decode is the identity on valid instructions.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		in := randomInst(r)
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x) (from %+v): %v", w, in, err)
		}
		if got != in {
			t.Fatalf("round trip %+v -> %#08x -> %+v", in, w, got)
		}
	}
}

// Property: Decode never mis-reports a valid instruction word: if Decode
// succeeds, re-encoding the result yields the canonical bits for that
// instruction, and decoding those bits is a fixed point.
func TestDecodeEncodeFixedPoint(t *testing.T) {
	f := func(word uint32) bool {
		in, err := Decode(word)
		if err != nil {
			return true // not a valid instruction; nothing to check
		}
		w2, err := Encode(in)
		if err != nil {
			return false
		}
		in2, err := Decode(w2)
		return err == nil && in2 == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		in   Inst
		want ControlFlowKind
	}{
		{Inst{Op: OpBEQ, Rs1: A0, Rs2: A1, Imm: -8}, KindCondBr},
		{Inst{Op: OpBGEU, Rs1: A0, Rs2: A1, Imm: 8}, KindCondBr},
		{Inst{Op: OpJAL, Rd: RA, Imm: 64}, KindJump},
		{Inst{Op: OpJAL, Rd: Zero, Imm: -64}, KindJump},
		{Inst{Op: OpJALR, Rd: Zero, Rs1: RA}, KindReturn},
		{Inst{Op: OpJALR, Rd: RA, Rs1: A0}, KindIndirect},
		{Inst{Op: OpJALR, Rd: Zero, Rs1: A0}, KindIndirect},
		{Inst{Op: OpADD, Rd: A0, Rs1: A1, Rs2: A2}, KindNone},
		{Inst{Op: OpLW, Rd: A0, Rs1: SP, Imm: 4}, KindNone},
		{Inst{Op: OpECALL}, KindNone},
	}
	for _, c := range cases {
		if got := Classify(c.in); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsLinking(t *testing.T) {
	cases := []struct {
		in   Inst
		want bool
	}{
		{Inst{Op: OpJAL, Rd: RA, Imm: 64}, true},
		{Inst{Op: OpJAL, Rd: T0, Imm: 64}, true}, // any rd != x0 links
		{Inst{Op: OpJAL, Rd: Zero, Imm: -64}, false},
		{Inst{Op: OpJALR, Rd: RA, Rs1: A0}, true},
		{Inst{Op: OpJALR, Rd: Zero, Rs1: RA}, false}, // return
		{Inst{Op: OpBEQ, Rs1: A0, Rs2: A1, Imm: -8}, false},
	}
	for _, c := range cases {
		if got := IsLinking(c.in); got != c.want {
			t.Errorf("IsLinking(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRegByName(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		got, err := RegByName(r.Name())
		if err != nil || got != r {
			t.Errorf("RegByName(%q) = %v, %v; want %v", r.Name(), got, err, r)
		}
	}
	if r, err := RegByName("x17"); err != nil || r != A7 {
		t.Errorf("RegByName(x17) = %v, %v; want a7", r, err)
	}
	if r, err := RegByName("fp"); err != nil || r != S0 {
		t.Errorf("RegByName(fp) = %v, %v; want s0", r, err)
	}
	if _, err := RegByName("x32"); err == nil {
		t.Error("RegByName(x32) succeeded, want error")
	}
	if _, err := RegByName("bogus"); err == nil {
		t.Error("RegByName(bogus) succeeded, want error")
	}
}

func TestEncodeErrors(t *testing.T) {
	bad := []Inst{
		{Op: OpInvalid},
		{Op: OpADDI, Rd: A0, Rs1: A0, Imm: 4096},
		{Op: OpADDI, Rd: A0, Rs1: A0, Imm: -4097},
		{Op: OpSLLI, Rd: A0, Rs1: A0, Imm: 32},
		{Op: OpBEQ, Rs1: A0, Rs2: A1, Imm: 3},       // odd offset
		{Op: OpBEQ, Rs1: A0, Rs2: A1, Imm: 1 << 13}, // out of range
		{Op: OpJAL, Rd: RA, Imm: 1 << 21},
		{Op: OpLUI, Rd: A0, Imm: 0x123},     // low bits set
		{Op: OpADD, Rd: 32, Rs1: 0, Rs2: 0}, // bad register
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) succeeded, want error", in)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []uint32{
		0x00000000, // all zeros: not a valid instruction
		0xFFFFFFFF, // all ones
		0x0000707F, // unknown opcode bits
		0x00002067, // jalr with funct3=2
		0x00003003, // load funct3=3
		0x00003023, // store funct3=3
		0x00002073, // SYSTEM not ecall/ebreak
		0x40001013, // slli with funct7=0x20
		0x06000033, // OP with funct7=0x03
	}
	for _, w := range bad {
		if in, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x) = %+v, want error", w, in)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpADD, Rd: A0, Rs1: A1, Rs2: A2}, "add x10, x11, x12"},
		{Inst{Op: OpLW, Rd: A0, Rs1: SP, Imm: 8}, "lw x10, 8(x2)"},
		{Inst{Op: OpSW, Rs1: SP, Rs2: RA, Imm: 12}, "sw x1, 12(x2)"},
		{Inst{Op: OpBEQ, Rs1: A0, Rs2: A1, Imm: -8}, "beq x10, x11, -8"},
		{Inst{Op: OpJAL, Rd: RA, Imm: 16}, "jal x1, 16"},
		{Inst{Op: OpLUI, Rd: A0, Imm: 0x1000}, "lui x10, 0x1"},
		{Inst{Op: OpECALL}, "ecall"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestOpcodeByName(t *testing.T) {
	for op := OpInvalid + 1; op < numOpcodes; op++ {
		got, ok := OpcodeByName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpcodeByName("nop"); ok {
		t.Error("OpcodeByName(nop) succeeded; nop is a pseudo-op, not a base opcode")
	}
}
