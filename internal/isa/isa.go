// Package isa defines the RV32IM instruction set used by the simulated
// Pulpino-class core: instruction mnemonics, operand formats, binary
// encode/decode, and the control-flow classification the LO-FAT branch
// filter depends on (branch vs. jump vs. linking call vs. return).
//
// The encodings follow the RISC-V unprivileged specification. Only the
// subset implemented by the simulator is supported; Decode returns an
// error for anything else so that corrupted code memory is detected
// rather than silently misexecuted.
package isa

import "fmt"

// Reg is a RISC-V integer register number x0..x31.
type Reg uint8

// ABI register aliases. The link register (x1/ra) is central to LO-FAT's
// loop-detection heuristic: backward branches that do not update ra are
// treated as loop back-edges.
const (
	Zero Reg = 0  // x0: hardwired zero
	RA   Reg = 1  // x1: return address (link register)
	SP   Reg = 2  // x2: stack pointer
	GP   Reg = 3  // x3: global pointer
	TP   Reg = 4  // x4: thread pointer
	T0   Reg = 5  // x5
	T1   Reg = 6  // x6
	T2   Reg = 7  // x7
	S0   Reg = 8  // x8 / fp
	S1   Reg = 9  // x9
	A0   Reg = 10 // x10: argument/return 0
	A1   Reg = 11 // x11: argument/return 1
	A2   Reg = 12
	A3   Reg = 13
	A4   Reg = 14
	A5   Reg = 15
	A6   Reg = 16
	A7   Reg = 17 // x17: syscall number by convention
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	S8   Reg = 24
	S9   Reg = 25
	S10  Reg = 26
	S11  Reg = 27
	T3   Reg = 28
	T4   Reg = 29
	T5   Reg = 30
	T6   Reg = 31
)

// NumRegs is the size of the integer register file.
const NumRegs = 32

// Opcode enumerates the RV32IM mnemonics known to the simulator.
type Opcode uint8

// RV32I base integer instructions plus the M extension.
const (
	OpInvalid Opcode = iota

	// Upper-immediate.
	OpLUI
	OpAUIPC

	// Unconditional jumps.
	OpJAL
	OpJALR

	// Conditional branches.
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Loads.
	OpLB
	OpLH
	OpLW
	OpLBU
	OpLHU

	// Stores.
	OpSB
	OpSH
	OpSW

	// Immediate ALU.
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI

	// Register ALU.
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND

	// M extension.
	OpMUL
	OpMULH
	OpMULHSU
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU

	// System.
	OpFENCE
	OpECALL
	OpEBREAK
	OpMRET

	numOpcodes
)

// Format describes how an instruction's operands are laid out in the
// 32-bit word.
type Format uint8

// RISC-V instruction formats.
const (
	FormatR Format = iota
	FormatI
	FormatS
	FormatB
	FormatU
	FormatJ
	FormatSys // ECALL/EBREAK/FENCE: fixed encodings, no variable operands
)

// Inst is a decoded instruction. Imm is the sign-extended immediate; for
// B and J formats it is the byte offset from the instruction's own PC.
type Inst struct {
	Op  Opcode
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

type opInfo struct {
	name   string
	format Format
	opcode uint32 // 7-bit major opcode
	funct3 uint32
	funct7 uint32
}

var opTable = [numOpcodes]opInfo{
	OpLUI:   {"lui", FormatU, 0x37, 0, 0},
	OpAUIPC: {"auipc", FormatU, 0x17, 0, 0},

	OpJAL:  {"jal", FormatJ, 0x6F, 0, 0},
	OpJALR: {"jalr", FormatI, 0x67, 0, 0},

	OpBEQ:  {"beq", FormatB, 0x63, 0, 0},
	OpBNE:  {"bne", FormatB, 0x63, 1, 0},
	OpBLT:  {"blt", FormatB, 0x63, 4, 0},
	OpBGE:  {"bge", FormatB, 0x63, 5, 0},
	OpBLTU: {"bltu", FormatB, 0x63, 6, 0},
	OpBGEU: {"bgeu", FormatB, 0x63, 7, 0},

	OpLB:  {"lb", FormatI, 0x03, 0, 0},
	OpLH:  {"lh", FormatI, 0x03, 1, 0},
	OpLW:  {"lw", FormatI, 0x03, 2, 0},
	OpLBU: {"lbu", FormatI, 0x03, 4, 0},
	OpLHU: {"lhu", FormatI, 0x03, 5, 0},

	OpSB: {"sb", FormatS, 0x23, 0, 0},
	OpSH: {"sh", FormatS, 0x23, 1, 0},
	OpSW: {"sw", FormatS, 0x23, 2, 0},

	OpADDI:  {"addi", FormatI, 0x13, 0, 0},
	OpSLTI:  {"slti", FormatI, 0x13, 2, 0},
	OpSLTIU: {"sltiu", FormatI, 0x13, 3, 0},
	OpXORI:  {"xori", FormatI, 0x13, 4, 0},
	OpORI:   {"ori", FormatI, 0x13, 6, 0},
	OpANDI:  {"andi", FormatI, 0x13, 7, 0},
	OpSLLI:  {"slli", FormatI, 0x13, 1, 0x00},
	OpSRLI:  {"srli", FormatI, 0x13, 5, 0x00},
	OpSRAI:  {"srai", FormatI, 0x13, 5, 0x20},

	OpADD:  {"add", FormatR, 0x33, 0, 0x00},
	OpSUB:  {"sub", FormatR, 0x33, 0, 0x20},
	OpSLL:  {"sll", FormatR, 0x33, 1, 0x00},
	OpSLT:  {"slt", FormatR, 0x33, 2, 0x00},
	OpSLTU: {"sltu", FormatR, 0x33, 3, 0x00},
	OpXOR:  {"xor", FormatR, 0x33, 4, 0x00},
	OpSRL:  {"srl", FormatR, 0x33, 5, 0x00},
	OpSRA:  {"sra", FormatR, 0x33, 5, 0x20},
	OpOR:   {"or", FormatR, 0x33, 6, 0x00},
	OpAND:  {"and", FormatR, 0x33, 7, 0x00},

	OpMUL:    {"mul", FormatR, 0x33, 0, 0x01},
	OpMULH:   {"mulh", FormatR, 0x33, 1, 0x01},
	OpMULHSU: {"mulhsu", FormatR, 0x33, 2, 0x01},
	OpMULHU:  {"mulhu", FormatR, 0x33, 3, 0x01},
	OpDIV:    {"div", FormatR, 0x33, 4, 0x01},
	OpDIVU:   {"divu", FormatR, 0x33, 5, 0x01},
	OpREM:    {"rem", FormatR, 0x33, 6, 0x01},
	OpREMU:   {"remu", FormatR, 0x33, 7, 0x01},

	OpFENCE:  {"fence", FormatSys, 0x0F, 0, 0},
	OpECALL:  {"ecall", FormatSys, 0x73, 0, 0},
	OpEBREAK: {"ebreak", FormatSys, 0x73, 0, 0},
	OpMRET:   {"mret", FormatSys, 0x73, 0, 0},
}

// String returns the assembler mnemonic of the opcode.
func (op Opcode) String() string {
	if op == OpInvalid || op >= numOpcodes {
		return "invalid"
	}
	return opTable[op].name
}

// Format reports the operand layout of the opcode.
func (op Opcode) Format() Format {
	if op == OpInvalid || op >= numOpcodes {
		return FormatSys
	}
	return opTable[op].format
}

// OpcodeByName looks a mnemonic up; ok is false for unknown mnemonics.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Opcode {
	m := make(map[string]Opcode, int(numOpcodes))
	for op := OpInvalid + 1; op < numOpcodes; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// String renders the instruction in assembler-like syntax.
func (in Inst) String() string {
	switch in.Op.Format() {
	case FormatR:
		return fmt.Sprintf("%s x%d, x%d, x%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case FormatI:
		switch in.Op {
		case OpLB, OpLH, OpLW, OpLBU, OpLHU, OpJALR:
			return fmt.Sprintf("%s x%d, %d(x%d)", in.Op, in.Rd, in.Imm, in.Rs1)
		}
		return fmt.Sprintf("%s x%d, x%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case FormatS:
		return fmt.Sprintf("%s x%d, %d(x%d)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case FormatB:
		return fmt.Sprintf("%s x%d, x%d, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case FormatU:
		return fmt.Sprintf("%s x%d, 0x%x", in.Op, in.Rd, uint32(in.Imm)>>12)
	case FormatJ:
		return fmt.Sprintf("%s x%d, %d", in.Op, in.Rd, in.Imm)
	default:
		return in.Op.String()
	}
}
