package cfg

import (
	"testing"
)

func TestDominatorsDiamond(t *testing.T) {
	// if/else diamond: entry dominates everything; join's idom is entry.
	g, p := buildFromSource(t, `
entry:
	beqz a0, right
left:
	addi a1, a1, 1
	j    join
right:
	addi a1, a1, 2
join:
	li   a7, 93
	ecall
`)
	idom := g.Dominators(p.Labels["entry"])
	entry := p.Labels["entry"]
	for _, lbl := range []string{"left", "right", "join"} {
		blk := p.Labels[lbl]
		if idom[blk] != entry {
			t.Errorf("idom(%s) = %#x, want entry %#x", lbl, idom[blk], entry)
		}
	}
	if !Dominates(idom, entry, p.Labels["join"]) {
		t.Error("entry must dominate join")
	}
	if Dominates(idom, p.Labels["left"], p.Labels["join"]) {
		t.Error("left must not dominate join")
	}
}

func TestNaturalLoopsSimple(t *testing.T) {
	g, p := buildFromSource(t, fig4)
	loops := g.NaturalLoops(p.TextBase)
	if len(loops) != 1 {
		t.Fatalf("natural loops = %+v", loops)
	}
	nl := loops[0]
	if nl.Header != p.Labels["N2"] {
		t.Errorf("header = %#x, want N2", nl.Header)
	}
	// The body must include N2..N6 but not N1 or N7.
	for _, in := range []string{"N2", "N3", "N4", "N5", "N6"} {
		if !nl.Body[blockOf(t, g, p.Labels[in])] {
			t.Errorf("body missing %s", in)
		}
	}
	if nl.Body[blockOf(t, g, p.Labels["N7"])] {
		t.Error("body contains exit block N7")
	}
}

func blockOf(t *testing.T, g *Graph, addr uint32) uint32 {
	t.Helper()
	b, ok := g.BlockContaining(addr)
	if !ok {
		t.Fatalf("no block for %#x", addr)
	}
	return b.Start
}

func TestNaturalLoopsNested(t *testing.T) {
	g, p := buildFromSource(t, `
main:
	li s0, 3
outer:
	li s1, 4
inner:
	addi s1, s1, -1
	bnez s1, inner
	addi s0, s0, -1
	bnez s0, outer
	li a7, 93
	ecall
`)
	loops := g.NaturalLoops(p.TextBase)
	if len(loops) != 2 {
		t.Fatalf("natural loops = %d, want 2", len(loops))
	}
	// The outer loop's body must contain the inner header.
	var outer NaturalLoop
	for _, nl := range loops {
		if nl.Header == blockOf(t, g, p.Labels["outer"]) {
			outer = nl
		}
	}
	if !outer.Body[blockOf(t, g, p.Labels["inner"])] {
		t.Error("outer natural loop body missing inner header")
	}
}

// On compiler-convention code the heuristic agrees with dominance
// analysis: no false positives, no misses.
func TestHeuristicMatchesNaturalOnStructuredCode(t *testing.T) {
	for _, src := range []string{fig4, `
main:
	li s0, 3
outer:
	li s1, 4
inner:
	addi s1, s1, -1
	bnez s1, inner
	addi s0, s0, -1
	bnez s0, outer
	li a7, 93
	ecall
`} {
		g, p := buildFromSource(t, src)
		fp, missed := g.HeuristicVsNatural(p.TextBase)
		if len(fp) != 0 {
			t.Errorf("false positive loop entries: %#x", fp)
		}
		if len(missed) != 0 {
			t.Errorf("missed natural headers: %#x", missed)
		}
	}
}

// Recursion: the heuristic intentionally does NOT treat a backward
// linking call as a loop, while dominance analysis over the call graph
// sees a cycle — the documented divergence.
func TestHeuristicVsNaturalOnRecursion(t *testing.T) {
	g, p := buildFromSource(t, `
fib:
	li   t0, 2
	blt  a0, t0, base
	addi sp, sp, -12
	sw   ra, 8(sp)
	sw   a0, 4(sp)
	addi a0, a0, -1
	call fib
	sw   a0, 0(sp)
	lw   a0, 4(sp)
	addi a0, a0, -2
	call fib
	lw   t1, 0(sp)
	add  a0, a0, t1
	lw   ra, 8(sp)
	addi sp, sp, 12
	ret
base:
	ret
`)
	// The heuristic finds no loops (calls are linking).
	if n := len(g.Loops()); n != 0 {
		t.Errorf("heuristic loops on recursion = %d, want 0", n)
	}
	// Dominance over the static call edge does see the cycle.
	_, missed := g.HeuristicVsNatural(p.Labels["fib"])
	if len(missed) == 0 {
		t.Error("expected natural header missed by heuristic (recursive cycle)")
	}
}

func TestDominatorsUnreachableEntry(t *testing.T) {
	g, _ := buildFromSource(t, fig4)
	if d := g.Dominators(0x9999); d != nil {
		t.Error("Dominators of bogus entry should be nil")
	}
	if l := g.NaturalLoops(0x9999); l != nil {
		t.Error("NaturalLoops of bogus entry should be nil")
	}
}

func TestDump(t *testing.T) {
	g, _ := buildFromSource(t, fig4)
	s := g.Dump()
	for _, frag := range []string{"blocks", "static loops", "innermost", "function entries"} {
		if !contains(s, frag) {
			t.Errorf("dump missing %q", frag)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
