package cfg

import (
	"fmt"
	"sort"

	"lofat/internal/isa"
	"lofat/internal/monitor"
)

// EnumerateOptions bounds the valid-path enumeration.
type EnumerateOptions struct {
	// MaxPaths aborts enumeration when more codes would be produced
	// (combinatorial safety valve). Default 4096.
	MaxPaths int
	// MaxSymbols is the per-path symbol budget ℓ (default 16, matching
	// the monitor).
	MaxSymbols int
	// IndirectBits is n for CAM codes (default 4).
	IndirectBits int
	// Targets is the loop's CAM table (code i+1 = Targets[i]); indirect
	// transfers enumerate over every CFG-consistent target present in
	// the table. Empty means loops without indirect transfers only.
	Targets []uint32
}

func (o *EnumerateOptions) fill() {
	if o.MaxPaths == 0 {
		o.MaxPaths = 4096
	}
	if o.MaxSymbols == 0 {
		o.MaxSymbols = 16
	}
	if o.IndirectBits == 0 {
		o.IndirectBits = 4
	}
}

// ErrPathSpaceTooLarge is returned when enumeration exceeds MaxPaths.
var ErrPathSpaceTooLarge = fmt.Errorf("cfg: loop path space exceeds enumeration bound")

// EnumeratePaths computes the complete set of valid full-path encodings
// of an innermost loop: every CFG walk from the entry back to the entry,
// encoded exactly as the monitor encodes iterations (Figure 4). This is
// the offline half of the paper's verification statement — "Other path
// encodings are considered invalid and detected by V": a reported path
// ID outside this set is an attack, with NO golden execution required.
//
// Enumeration refuses loops containing nested back-edges (use the
// dominance analysis to pick innermost loops) and returns
// ErrPathSpaceTooLarge when the bound is hit.
func (g *Graph) EnumeratePaths(loop Loop, opts EnumerateOptions) ([]monitor.PathCode, error) {
	opts.fill()
	if !g.IsInnermost(loop) {
		return nil, fmt.Errorf("cfg: loop at %#x is not innermost", loop.Entry)
	}

	var out []monitor.PathCode
	seen := map[monitor.PathCode]bool{}

	type frame struct {
		pos  uint32
		code monitor.PathCode
		syms int
	}
	stack := []frame{{pos: loop.Entry}}
	const stepBudget = 1 << 20
	steps := 0

	pushCode := func(c monitor.PathCode, width uint8, sym uint64) (monitor.PathCode, bool) {
		if int(c.Len)+int(width) > 64 {
			return c, false
		}
		c.Bits = c.Bits<<width | sym
		c.Len += width
		return c, true
	}

	for len(stack) > 0 {
		if steps++; steps > stepBudget {
			return nil, ErrPathSpaceTooLarge
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		// Scan to the next control-flow instruction.
		pos := f.pos
		var in Instruction
		for {
			var ok bool
			in, ok = g.InstAt(pos)
			if !ok {
				return nil, fmt.Errorf("cfg: enumeration left text at %#x", pos)
			}
			if isa.Classify(in.Inst) != isa.KindNone {
				break
			}
			if in.Inst.Op == isa.OpECALL || in.Inst.Op == isa.OpEBREAK {
				// Terminal: this walk never returns to the entry.
				in = Instruction{}
				break
			}
			pos += 4
		}
		if in.Inst.Op == isa.OpInvalid {
			continue // terminal walk, not a cycle
		}
		if f.syms >= opts.MaxSymbols {
			continue // would overflow: not a valid compact path
		}

		step := func(code monitor.PathCode, next uint32) error {
			if next == loop.Entry {
				if !seen[code] {
					seen[code] = true
					out = append(out, code)
					if len(out) > opts.MaxPaths {
						return ErrPathSpaceTooLarge
					}
				}
				return nil
			}
			if !loop.Contains(next) && !g.ReturnSites[next] && !g.FuncEntries[next] {
				// Left the loop: an exit traversal, not a full path.
				return nil
			}
			stack = append(stack, frame{pos: next, code: code, syms: f.syms + 1})
			return nil
		}

		switch isa.Classify(in.Inst) {
		case isa.KindCondBr:
			for _, taken := range []bool{false, true} {
				var bit uint64
				next := in.Addr + 4
				if taken {
					bit = 1
					next = in.Addr + uint32(in.Inst.Imm)
				}
				if taken && next < in.Addr && next != loop.Entry {
					continue // nested back-edge: not statically walkable
				}
				code, ok := pushCode(f.code, 1, bit)
				if !ok {
					continue
				}
				if err := step(code, next); err != nil {
					return nil, err
				}
			}
		case isa.KindJump:
			next := in.Addr + uint32(in.Inst.Imm)
			if next < in.Addr && next != loop.Entry && !isa.IsLinking(in.Inst) {
				continue // nested back-edge
			}
			code, ok := pushCode(f.code, 1, 1)
			if !ok {
				continue
			}
			if err := step(code, next); err != nil {
				return nil, err
			}
		case isa.KindIndirect, isa.KindReturn:
			for i, tgt := range opts.Targets {
				if !g.ValidEdge(in.Addr, tgt) {
					continue
				}
				code, ok := pushCode(f.code, uint8(opts.IndirectBits), uint64(i+1))
				if !ok {
					continue
				}
				if err := step(code, tgt); err != nil {
					return nil, err
				}
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Len != out[j].Len {
			return out[i].Len < out[j].Len
		}
		return out[i].Bits < out[j].Bits
	})
	return out, nil
}

// PathSetContains reports whether a reported code is in the enumerated
// valid set.
func PathSetContains(set []monitor.PathCode, code monitor.PathCode) bool {
	for _, c := range set {
		if c == code {
			return true
		}
	}
	return false
}
