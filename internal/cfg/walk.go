package cfg

import (
	"errors"
	"fmt"

	"lofat/internal/isa"
	"lofat/internal/monitor"
)

// Verdict is the outcome of validating a reported loop path against the
// CFG.
type Verdict uint8

// Path validation verdicts.
const (
	// PathValid: the encoding decodes to a legal CFG walk.
	PathValid Verdict = iota
	// PathInvalid: no CFG walk realizes the encoding — evidence of a
	// control-flow attack.
	PathInvalid
	// PathUnresolvable: the walk hits something static analysis cannot
	// decide (nested runtime loop, CAM overflow code, symbol overflow);
	// the verifier falls back to golden-run comparison for it.
	PathUnresolvable
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case PathValid:
		return "valid"
	case PathInvalid:
		return "invalid"
	case PathUnresolvable:
		return "unresolvable"
	}
	return "unknown"
}

// ErrNotInnermost marks loops whose paths cannot be walked because an
// inner loop consumes part of their events at run time.
var ErrNotInnermost = errors.New("cfg: loop contains nested loops; path not statically walkable")

// pathReader consumes the bit string of a PathCode chronologically.
type pathReader struct {
	bits uint64
	left uint8
}

func newPathReader(c monitor.PathCode) pathReader {
	return pathReader{bits: c.Bits, left: c.Len}
}

func (r *pathReader) take(n uint8) (uint64, bool) {
	if r.left < n {
		return 0, false
	}
	r.left -= n
	return r.bits >> r.left & (1<<n - 1), true
}

func (r *pathReader) empty() bool { return r.left == 0 }

// WalkResult carries the verdict and a human-readable reason.
type WalkResult struct {
	Verdict Verdict
	Reason  string
}

// ValidatePath replays a reported loop path encoding over the CFG,
// reproducing the monitor's symbol consumption (Figure 4): conditional
// branches consume their taken bit, direct jumps a mandatory '1',
// indirect transfers an n-bit CAM code resolved through the report's
// IndirectTargets table. For a full path the walk must return to the
// loop entry with all symbols consumed; for the partial (exit) path the
// prefix must be legal.
//
// The walk only decides innermost loops: when it meets a backward
// transfer to an address other than the entry, a nested loop would have
// consumed the following symbols at run time, so it reports
// PathUnresolvable rather than guessing.
func (g *Graph) ValidatePath(loop Loop, code monitor.PathCode, targets []uint32, indirectBits int, partial bool) WalkResult {
	if code.Overflow {
		return WalkResult{PathUnresolvable, "overflow path ID (ℓ exceeded)"}
	}
	if indirectBits <= 0 {
		indirectBits = 4
	}
	r := newPathReader(code)
	pos := loop.Entry
	const budget = 100_000
	for steps := 0; steps < budget; steps++ {
		// Advance to the next control-flow instruction from pos.
		in, ok := g.InstAt(pos)
		if !ok {
			return WalkResult{PathInvalid, fmt.Sprintf("walk left text at %#x", pos)}
		}
		kind := isa.Classify(in.Inst)
		if kind == isa.KindNone {
			if in.Inst.Op == isa.OpECALL || in.Inst.Op == isa.OpEBREAK {
				// Attested programs end on ecall; inside a loop path
				// this means the walk derailed.
				if partial && r.empty() {
					return WalkResult{PathValid, "partial path ends at ecall"}
				}
				return WalkResult{PathInvalid, fmt.Sprintf("walk hit %v at %#x", in.Inst.Op, pos)}
			}
			pos += 4
			continue
		}

		// Control-flow instruction: consume the matching symbol.
		if r.empty() {
			if partial {
				return WalkResult{PathValid, "legal prefix"}
			}
			return WalkResult{PathInvalid, fmt.Sprintf("symbols exhausted at %#x before re-reaching entry", pos)}
		}
		var next uint32
		switch kind {
		case isa.KindCondBr:
			bit, _ := r.take(1)
			if bit == 1 {
				next = pos + uint32(in.Inst.Imm)
			} else {
				next = pos + 4
			}
		case isa.KindJump:
			bit, _ := r.take(1)
			if bit != 1 {
				return WalkResult{PathInvalid, fmt.Sprintf("jump at %#x encoded as 0", pos)}
			}
			next = pos + uint32(in.Inst.Imm)
		case isa.KindIndirect, isa.KindReturn:
			c, ok := r.take(uint8(indirectBits))
			if !ok {
				return WalkResult{PathInvalid, fmt.Sprintf("truncated indirect code at %#x", pos)}
			}
			if c == 0 {
				return WalkResult{PathUnresolvable, fmt.Sprintf("indirect CAM overflow code at %#x", pos)}
			}
			if int(c) > len(targets) {
				return WalkResult{PathInvalid, fmt.Sprintf("indirect code %d beyond reported CAM (%d targets)", c, len(targets))}
			}
			next = targets[c-1]
			if !g.ValidEdge(pos, next) {
				return WalkResult{PathInvalid, fmt.Sprintf("indirect edge %#x->%#x not CFG-consistent", pos, next)}
			}
		}

		if next == loop.Entry {
			if r.empty() {
				return WalkResult{PathValid, "cycle closed at entry"}
			}
			return WalkResult{PathInvalid, "re-reached entry with symbols left"}
		}
		// A backward transfer to a non-entry address is a nested-loop
		// back-edge at run time: its iterations consumed symbols this
		// walker cannot model.
		if next < pos && kind != isa.KindReturn && !isa.IsLinking(in.Inst) && next != loop.Entry {
			return WalkResult{PathUnresolvable, fmt.Sprintf("nested back-edge %#x->%#x", pos, next)}
		}
		pos = next
	}
	return WalkResult{PathInvalid, "walk budget exhausted"}
}

// ValidateRecord checks a full loop record: the loop must exist
// statically, every path and the partial must walk, and iteration counts
// must be internally consistent.
func (g *Graph) ValidateRecord(rec monitor.LoopRecord, indirectBits int) []WalkResult {
	var out []WalkResult
	loop, ok := g.LoopWithEntry(rec.Entry, rec.Exit)
	if !ok {
		return []WalkResult{{PathInvalid,
			fmt.Sprintf("no static loop with entry %#x exit %#x", rec.Entry, rec.Exit)}}
	}
	var sum uint64
	for _, p := range rec.Paths {
		out = append(out, g.ValidatePath(loop, p.Code, rec.IndirectTargets, indirectBits, false))
		sum += p.Count
	}
	if sum != rec.Iterations {
		out = append(out, WalkResult{PathInvalid,
			fmt.Sprintf("path counts sum %d != iterations %d", sum, rec.Iterations)})
	}
	if rec.Partial.Len > 0 || rec.Partial.Overflow {
		out = append(out, g.ValidatePath(loop, rec.Partial, rec.IndirectTargets, indirectBits, true))
	}
	return out
}
