package cfg

import (
	"fmt"
	"sort"
	"strings"

	"lofat/internal/isa"
)

// flowSuccs returns the successors used for dominance analysis: the
// machine-level edges plus a fall-through edge after every linking call
// (direct or indirect) — the standard "calls return" abstraction.
// Without it, code after an indirect call would be statically
// unreachable and loops containing calls would be invisible to the
// natural-loop analysis. The call-target edge of direct calls is kept,
// so recursive cycles remain visible.
func (g *Graph) flowSuccs(blk *Block) []uint32 {
	term := blk.Term()
	if isLinkingCall(term) {
		return append(append([]uint32(nil), blk.Succs...), term.Addr+4)
	}
	return blk.Succs
}

func isLinkingCall(in Instruction) bool {
	op := in.Inst.Op
	return (op == isa.OpJAL || op == isa.OpJALR) && in.Inst.Rd != isa.Zero
}

// Dominators computes the immediate-dominator tree of the blocks
// reachable from entry, using the iterative algorithm of Cooper, Harvey
// and Kennedy over a reverse-postorder numbering. The result maps each
// reachable block start to its immediate dominator's start (the entry
// maps to itself).
//
// The verifier uses dominance to enumerate NATURAL loops — the
// compiler-theoretic ground truth against which the §5.1 run-time
// heuristic (non-linking backward branches) is cross-validated.
func (g *Graph) Dominators(entry uint32) map[uint32]uint32 {
	start, ok := g.leaderOf[entry]
	if !ok {
		return nil
	}

	// Reverse postorder over the block graph.
	var order []uint32
	visited := map[uint32]bool{}
	var dfs func(u uint32)
	dfs = func(u uint32) {
		visited[u] = true
		b := g.blockAt[u]
		if b == nil {
			return
		}
		for _, s := range g.flowSuccs(b) {
			if t, ok := g.leaderOf[s]; ok && !visited[t] {
				dfs(t)
			}
		}
		order = append(order, u)
	}
	dfs(start)
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpo := make(map[uint32]int, len(order))
	for i, u := range order {
		rpo[u] = i
	}

	// Predecessor lists restricted to reachable blocks.
	preds := map[uint32][]uint32{}
	for _, u := range order {
		for _, s := range g.flowSuccs(g.blockAt[u]) {
			if t, ok := g.leaderOf[s]; ok && visited[t] {
				preds[t] = append(preds[t], u)
			}
		}
	}

	idom := map[uint32]uint32{start: start}
	intersect := func(a, b uint32) uint32 {
		for a != b {
			for rpo[a] > rpo[b] {
				a = idom[a]
			}
			for rpo[b] > rpo[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, u := range order {
			if u == start {
				continue
			}
			var newIdom uint32
			found := false
			for _, p := range preds[u] {
				if _, processed := idom[p]; !processed {
					continue
				}
				if !found {
					newIdom = p
					found = true
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if !found {
				continue
			}
			if old, ok := idom[u]; !ok || old != newIdom {
				idom[u] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b under idom.
func Dominates(idom map[uint32]uint32, a, b uint32) bool {
	for {
		if a == b {
			return true
		}
		next, ok := idom[b]
		if !ok || next == b {
			return a == b
		}
		b = next
	}
}

// NaturalLoop is a dominance-defined loop: a back edge u→h where h
// dominates u; the body is every block that can reach u without passing
// through h.
type NaturalLoop struct {
	Header    uint32
	BackEdges []uint32 // source block starts
	Body      map[uint32]bool
}

// NaturalLoops enumerates the natural loops reachable from entry,
// merging loops that share a header.
func (g *Graph) NaturalLoops(entry uint32) []NaturalLoop {
	idom := g.Dominators(entry)
	if idom == nil {
		return nil
	}
	byHeader := map[uint32]*NaturalLoop{}
	for u := range idom {
		b := g.blockAt[u]
		for _, s := range g.flowSuccs(b) {
			h, ok := g.leaderOf[s]
			if !ok || h != s {
				continue // successor must be a block start
			}
			if _, reachable := idom[h]; !reachable {
				continue
			}
			if !Dominates(idom, h, u) {
				continue
			}
			nl := byHeader[h]
			if nl == nil {
				nl = &NaturalLoop{Header: h, Body: map[uint32]bool{h: true}}
				byHeader[h] = nl
			}
			nl.BackEdges = append(nl.BackEdges, u)
			// Collect the body: reverse reachability from u stopping
			// at h.
			preds := g.blockPreds(idom)
			stack := []uint32{u}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if nl.Body[x] {
					continue
				}
				nl.Body[x] = true
				for _, p := range preds[x] {
					stack = append(stack, p)
				}
			}
		}
	}
	var out []NaturalLoop
	for _, nl := range byHeader {
		sort.Slice(nl.BackEdges, func(i, j int) bool { return nl.BackEdges[i] < nl.BackEdges[j] })
		out = append(out, *nl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Header < out[j].Header })
	return out
}

// blockPreds builds predecessor lists restricted to reachable blocks.
func (g *Graph) blockPreds(idom map[uint32]uint32) map[uint32][]uint32 {
	preds := map[uint32][]uint32{}
	for u := range idom {
		for _, s := range g.flowSuccs(g.blockAt[u]) {
			if t, ok := g.leaderOf[s]; ok {
				if _, reachable := idom[t]; reachable {
					preds[t] = append(preds[t], u)
				}
			}
		}
	}
	return preds
}

// HeuristicVsNatural cross-validates the §5.1 run-time heuristic against
// dominance-based natural loops: it reports heuristic loops whose entry
// is NOT a natural loop header (potential false loop detections) and
// natural headers missed by the heuristic (e.g. loops formed only by
// linking calls — recursion — which the hardware intentionally does not
// track as loops).
func (g *Graph) HeuristicVsNatural(entry uint32) (falsePositives, missed []uint32) {
	// Code reachable only through indirect calls (jump-table handlers)
	// is invisible from the program entry, so natural loops are
	// enumerated from every known function entry as well.
	headers := map[uint32]bool{}
	roots := []uint32{entry}
	for fe := range g.FuncEntries {
		if fe != entry {
			roots = append(roots, fe)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, root := range roots {
		for _, nl := range g.NaturalLoops(root) {
			headers[nl.Header] = true
		}
	}
	heuristic := map[uint32]bool{}
	for _, l := range g.Loops() {
		if blk, ok := g.leaderOf[l.Entry]; ok {
			heuristic[blk] = true
		}
	}
	for h := range heuristic {
		if !headers[h] {
			falsePositives = append(falsePositives, h)
		}
	}
	for h := range headers {
		if !heuristic[h] {
			missed = append(missed, h)
		}
	}
	sort.Slice(falsePositives, func(i, j int) bool { return falsePositives[i] < falsePositives[j] })
	sort.Slice(missed, func(i, j int) bool { return missed[i] < missed[j] })
	return falsePositives, missed
}

// Dump renders the graph as a human-readable listing: blocks with their
// instructions and successors, static loops, and the indirect-transfer
// oracles. This is the verifier-side tooling view (cmd/lofat-dis).
func (g *Graph) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "text [%#x, %#x): %d instructions, %d blocks\n\n",
		g.Base, g.Limit, len(g.Instrs), len(g.blocks))
	for _, blk := range g.blocks {
		fmt.Fprintf(&b, "block %#x..%#x", blk.Start, blk.End)
		if len(blk.Succs) > 0 {
			fmt.Fprintf(&b, "  -> %#x", blk.Succs)
		}
		b.WriteByte('\n')
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %#08x  %v\n", in.Addr, in.Inst)
		}
	}
	b.WriteString("\nstatic loops (hardware heuristic):\n")
	for _, l := range g.loops {
		inner := ""
		if g.IsInnermost(l) {
			inner = " (innermost)"
		}
		fmt.Fprintf(&b, "  entry %#x exit %#x back-edge %#x%s\n", l.Entry, l.Exit, l.Branch, inner)
	}
	b.WriteString("\nfunction entries: ")
	b.WriteString(addrList(g.FuncEntries))
	b.WriteString("\nreturn sites:     ")
	b.WriteString(addrList(g.ReturnSites))
	b.WriteByte('\n')
	return b.String()
}

func addrList(m map[uint32]bool) string {
	addrs := make([]uint32, 0, len(m))
	for a := range m {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = fmt.Sprintf("%#x", a)
	}
	return strings.Join(parts, " ")
}
