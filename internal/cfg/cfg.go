// Package cfg is the verifier's offline static analysis (§3): it
// disassembles the attested binary, builds its control-flow graph,
// enumerates the loops the LO-FAT hardware heuristic will detect, and
// validates reported loop path encodings against the CFG. "V performs a
// one-time offline pre-processing step to generate the CFG of S
// (including expected loop execution information)".
package cfg

import (
	"fmt"
	"sort"

	"lofat/internal/isa"
)

// Instruction is a disassembled instruction with its address.
type Instruction struct {
	Addr uint32
	Inst isa.Inst
}

// Disassemble decodes the full text image. Every word must decode: the
// attested binary contains no data islands in our toolchain.
func Disassemble(text []byte, base uint32) ([]Instruction, error) {
	if len(text)%4 != 0 {
		return nil, fmt.Errorf("cfg: text size %d not word aligned", len(text))
	}
	out := make([]Instruction, 0, len(text)/4)
	for i := 0; i+4 <= len(text); i += 4 {
		w := uint32(text[i]) | uint32(text[i+1])<<8 | uint32(text[i+2])<<16 | uint32(text[i+3])<<24
		in, err := isa.Decode(w)
		if err != nil {
			return nil, fmt.Errorf("cfg: at %#x: %w", base+uint32(i), err)
		}
		out = append(out, Instruction{Addr: base + uint32(i), Inst: in})
	}
	return out, nil
}

// Block is a basic block: a maximal straight-line instruction sequence.
type Block struct {
	// Start and End delimit [Start, End) in bytes.
	Start, End uint32
	// Instrs are the block's instructions.
	Instrs []Instruction
	// Succs are the statically-known successor block start addresses
	// (taken target and/or fall-through). Indirect terminators have
	// none here; they are validated via function entries/return sites.
	Succs []uint32
}

// Term returns the block's final instruction.
func (b *Block) Term() Instruction { return b.Instrs[len(b.Instrs)-1] }

// Loop is a loop as the §5.1 hardware heuristic sees it: the target of a
// taken non-linking direct backward branch (entry) and the address just
// past that branch (exit).
type Loop struct {
	Entry  uint32
	Exit   uint32 // first address past the back-edge branch
	Branch uint32 // address of the back-edge branch instruction
}

// Contains reports whether addr is within the loop body [Entry, Exit).
func (l Loop) Contains(addr uint32) bool { return addr >= l.Entry && addr < l.Exit }

// Graph is the control-flow graph plus the indirect-transfer oracles the
// verifier uses to validate edges.
type Graph struct {
	Base   uint32
	Limit  uint32 // one past the last instruction
	Instrs []Instruction

	index    map[uint32]int // addr -> Instrs position
	blocks   []*Block
	blockAt  map[uint32]*Block // start addr -> block
	leaderOf map[uint32]uint32 // instruction addr -> containing block start

	// FuncEntries are plausible indirect-call targets: linking-jal
	// targets plus text addresses that appear literally in the data
	// image (address-taken functions, jump tables).
	FuncEntries map[uint32]bool
	// ReturnSites are plausible return targets: the instruction after
	// every linking call.
	ReturnSites map[uint32]bool

	loops []Loop

	// ISR oracle state (EnableISR): the configured interrupt vector and
	// the addresses of the return-from-interrupt instructions.
	isrEnabled bool
	isrVector  uint32
	mretSites  map[uint32]bool
}

// Build constructs the graph from a text image. dataWords are the
// 32-bit-aligned words of the data image, scanned for address-taken
// functions (jump tables, function-pointer initialisers).
func Build(text []byte, base uint32, dataWords []uint32) (*Graph, error) {
	instrs, err := Disassemble(text, base)
	if err != nil {
		return nil, err
	}
	if len(instrs) == 0 {
		return nil, fmt.Errorf("cfg: empty text")
	}
	g := &Graph{
		Base:        base,
		Limit:       base + uint32(4*len(instrs)),
		Instrs:      instrs,
		index:       make(map[uint32]int, len(instrs)),
		blockAt:     make(map[uint32]*Block),
		leaderOf:    make(map[uint32]uint32, len(instrs)),
		FuncEntries: make(map[uint32]bool),
		ReturnSites: make(map[uint32]bool),
	}
	for i, in := range instrs {
		g.index[in.Addr] = i
	}

	// Leaders: first instruction, branch/jump targets, fall-throughs
	// after control transfers.
	leaders := map[uint32]bool{base: true}
	for _, in := range instrs {
		op := in.Inst.Op
		switch {
		case op.IsCondBranch():
			leaders[in.Addr+uint32(in.Inst.Imm)] = true
			leaders[in.Addr+4] = true
		case op == isa.OpJAL:
			leaders[in.Addr+uint32(in.Inst.Imm)] = true
			leaders[in.Addr+4] = true
			if in.Inst.Rd != isa.Zero {
				g.FuncEntries[in.Addr+uint32(in.Inst.Imm)] = true
				g.ReturnSites[in.Addr+4] = true
			}
		case op == isa.OpJALR:
			leaders[in.Addr+4] = true
			if in.Inst.Rd != isa.Zero {
				g.ReturnSites[in.Addr+4] = true
			}
		case op == isa.OpECALL || op == isa.OpEBREAK || op == isa.OpMRET:
			leaders[in.Addr+4] = true
		}
	}
	for _, w := range dataWords {
		if w >= g.Base && w < g.Limit && w%4 == 0 {
			g.FuncEntries[w] = true
		}
	}
	g.FuncEntries[base] = true

	// Partition into blocks.
	var starts []uint32
	for a := range leaders {
		if _, ok := g.index[a]; ok {
			starts = append(starts, a)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for bi, s := range starts {
		end := g.Limit
		if bi+1 < len(starts) {
			end = starts[bi+1]
		}
		blk := &Block{Start: s, End: end}
		for a := s; a < end; a += 4 {
			blk.Instrs = append(blk.Instrs, instrs[g.index[a]])
			g.leaderOf[a] = s
		}
		g.blocks = append(g.blocks, blk)
		g.blockAt[s] = blk
	}

	// Successor edges.
	for _, blk := range g.blocks {
		term := blk.Term()
		op := term.Inst.Op
		switch {
		case op.IsCondBranch():
			blk.Succs = append(blk.Succs, term.Addr+uint32(term.Inst.Imm), term.Addr+4)
		case op == isa.OpJAL:
			blk.Succs = append(blk.Succs, term.Addr+uint32(term.Inst.Imm))
		case op == isa.OpJALR:
			// indirect: validated via FuncEntries/ReturnSites instead
		case op == isa.OpMRET:
			// resumes at the interrupted PC: no static successor; the
			// edge is validated dynamically once EnableISR is set
		case op == isa.OpECALL, op == isa.OpEBREAK:
			// An ecall resumes at the next instruction (the exit call
			// simply never returns at run time; the extra static edge
			// is harmless for dominance and reachability).
			if term.Addr+4 < g.Limit {
				blk.Succs = append(blk.Succs, term.Addr+4)
			}
		default:
			if term.Addr+4 < g.Limit {
				blk.Succs = append(blk.Succs, term.Addr+4)
			}
		}
	}

	// Static loop enumeration with the hardware's heuristic.
	for _, in := range instrs {
		op := in.Inst.Op
		backTarget := in.Addr + uint32(in.Inst.Imm)
		switch {
		case op.IsCondBranch() && in.Inst.Imm < 0:
			g.loops = append(g.loops, Loop{Entry: backTarget, Exit: in.Addr + 4, Branch: in.Addr})
		case op == isa.OpJAL && in.Inst.Rd == isa.Zero && in.Inst.Imm < 0:
			g.loops = append(g.loops, Loop{Entry: backTarget, Exit: in.Addr + 4, Branch: in.Addr})
		}
	}
	sort.Slice(g.loops, func(i, j int) bool {
		if g.loops[i].Entry != g.loops[j].Entry {
			return g.loops[i].Entry < g.loops[j].Entry
		}
		return g.loops[i].Exit < g.loops[j].Exit
	})
	return g, nil
}

// Blocks returns the basic blocks in address order.
func (g *Graph) Blocks() []*Block { return g.blocks }

// BlockContaining returns the block holding addr.
func (g *Graph) BlockContaining(addr uint32) (*Block, bool) {
	s, ok := g.leaderOf[addr]
	if !ok {
		return nil, false
	}
	return g.blockAt[s], true
}

// InstAt returns the instruction at addr.
func (g *Graph) InstAt(addr uint32) (Instruction, bool) {
	i, ok := g.index[addr]
	if !ok {
		return Instruction{}, false
	}
	return g.Instrs[i], true
}

// Loops returns the statically-enumerated loops (hardware heuristic).
func (g *Graph) Loops() []Loop { return g.loops }

// LoopWithEntry finds a static loop matching a reported (entry, exit).
func (g *Graph) LoopWithEntry(entry, exit uint32) (Loop, bool) {
	for _, l := range g.loops {
		if l.Entry == entry && l.Exit == exit {
			return l, true
		}
	}
	return Loop{}, false
}

// IsInnermost reports whether no other static loop nests strictly inside l.
func (g *Graph) IsInnermost(l Loop) bool {
	for _, o := range g.loops {
		if o == l {
			continue
		}
		if o.Entry >= l.Entry && o.Exit <= l.Exit && (o.Entry > l.Entry || o.Exit < l.Exit) {
			return false
		}
	}
	return true
}

// BranchArms returns the two static successors of the conditional
// branch at src — the taken target and the fall-through — and reports
// whether src holds a conditional branch at all. Mutation tooling (the
// conformance harness's attack mutator) uses it to flip a recorded
// branch decision onto the branch's other, equally CFG-consistent arm.
func (g *Graph) BranchArms(src uint32) (taken, fallthru uint32, ok bool) {
	in, found := g.InstAt(src)
	if !found || !in.Inst.Op.IsCondBranch() {
		return 0, 0, false
	}
	return src + uint32(in.Inst.Imm), src + 4, true
}

// EnableISR teaches the oracle the program's interrupt semantics: the
// hardware may dispatch to vector from ANY instruction boundary, and a
// return-from-interrupt (mret) may resume at any instruction. Both
// rules are deliberately as weak as the true asynchronous semantics —
// an interrupt is architecturally permitted at every boundary, so no
// stronger static statement exists. A mutation that resumes at the
// wrong (but valid) PC after mret is therefore a class-1 deviation
// (CFG-consistent, unintended path), not a class-3 CFG violation;
// redirecting the entry edge anywhere but the vector stays class 3.
func (g *Graph) EnableISR(vector uint32) {
	g.isrEnabled = true
	g.isrVector = vector
	g.mretSites = make(map[uint32]bool)
	for _, in := range g.Instrs {
		if in.Inst.Op == isa.OpMRET {
			g.mretSites[in.Addr] = true
		}
	}
}

// ISRVector returns the interrupt vector configured via EnableISR, or
// (0, false) when the oracle has no ISR semantics.
func (g *Graph) ISRVector() (uint32, bool) {
	return g.isrVector, g.isrEnabled
}

// IsMRetSite reports whether addr holds a return-from-interrupt
// instruction (only meaningful after EnableISR).
func (g *Graph) IsMRetSite(addr uint32) bool { return g.mretSites[addr] }

// ValidEdge reports whether a (src, dest) pair is a CFG-consistent
// control transfer: the core check the verifier applies to decide
// whether a reported path "resembles a valid path in CFG".
func (g *Graph) ValidEdge(src, dest uint32) bool {
	in, ok := g.InstAt(src)
	if !ok {
		return false
	}
	if g.isrEnabled {
		// Interrupt entry: any instruction boundary may transfer to the
		// vector. Interrupt return: an mret may resume anywhere in text.
		if dest == g.isrVector {
			return true
		}
		if in.Inst.Op == isa.OpMRET {
			_, ok := g.InstAt(dest)
			return ok
		}
	}
	op := in.Inst.Op
	switch {
	case op.IsCondBranch():
		return dest == src+4 || dest == src+uint32(in.Inst.Imm)
	case op == isa.OpJAL:
		return dest == src+uint32(in.Inst.Imm)
	case op == isa.OpJALR:
		if isa.Classify(in.Inst) == isa.KindReturn {
			return g.ReturnSites[dest]
		}
		return g.FuncEntries[dest]
	}
	return false
}
