package cfg

import (
	"errors"
	"testing"

	"lofat/internal/monitor"
)

// Figure 4: the enumerated valid set is exactly {011, 0011}.
func TestEnumerateFig4(t *testing.T) {
	g, _ := buildFromSource(t, fig4)
	loop := g.Loops()[0]
	paths, err := g.EnumeratePaths(loop, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want exactly the paper's two", paths)
	}
	want := map[string]bool{"011": true, "0011": true}
	for _, p := range paths {
		if !want[p.String()] {
			t.Errorf("unexpected valid path %v", p)
		}
	}
	// Membership check: invalid encodings are outside the set —
	// "Other path encodings are considered invalid and detected by V."
	if PathSetContains(paths, monitor.PathCode{Bits: 0b111, Len: 3}) {
		t.Error("111 reported valid")
	}
	if !PathSetContains(paths, monitor.PathCode{Bits: 0b011, Len: 3}) {
		t.Error("011 missing")
	}
}

// Every path the device ACTUALLY records must be in the enumerated set
// (soundness of the enumeration vs the monitor's encoder).
func TestEnumerationCoversMeasuredPaths(t *testing.T) {
	g, p := buildFromSource(t, fig4)
	loop := g.Loops()[0]
	set, err := g.EnumeratePaths(loop, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	// The Figure 4 run records 0011 x3 and 011 x2 (see core tests).
	for _, code := range []monitor.PathCode{
		{Bits: 0b0011, Len: 4},
		{Bits: 0b011, Len: 3},
	} {
		if !PathSetContains(set, code) {
			t.Errorf("measured path %v not in enumerated set", code)
		}
	}
}

// A simple counted loop has exactly one valid path.
func TestEnumerateSingleCycle(t *testing.T) {
	g, _ := buildFromSource(t, `
main:
	li s0, 5
loop:
	addi s0, s0, -1
	bnez s0, loop
	li a7, 93
	ecall
`)
	paths, err := g.EnumeratePaths(g.Loops()[0], EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0].String() != "1" {
		t.Fatalf("paths = %v, want [1]", paths)
	}
}

// Non-innermost loops are refused (their symbol streams are not
// statically walkable).
func TestEnumerateRejectsOuterLoop(t *testing.T) {
	g, p := buildFromSource(t, `
main:
	li s0, 3
outer:
	li s1, 4
inner:
	addi s1, s1, -1
	bnez s1, inner
	addi s0, s0, -1
	bnez s0, outer
	li a7, 93
	ecall
`)
	var outer Loop
	for _, l := range g.Loops() {
		if l.Entry == p.Labels["outer"] {
			outer = l
		}
	}
	if _, err := g.EnumeratePaths(outer, EnumerateOptions{}); err == nil {
		t.Error("outer loop enumeration succeeded")
	}
	// The inner loop enumerates fine.
	var inner Loop
	for _, l := range g.Loops() {
		if l.Entry == p.Labels["inner"] {
			inner = l
		}
	}
	paths, err := g.EnumeratePaths(inner, EnumerateOptions{})
	if err != nil || len(paths) != 1 {
		t.Errorf("inner paths = %v, %v", paths, err)
	}
}

// Indirect dispatch loops enumerate over the reported CAM targets.
func TestEnumerateWithIndirect(t *testing.T) {
	g, p := buildFromSource(t, `
	.data
table:
	.word h0, h1
	.text
main:
	li   s0, 4
loop:
	andi t0, s0, 1
	slli t0, t0, 2
	la   t1, table
	add  t1, t1, t0
	lw   t2, 0(t1)
	jalr ra, 0(t2)
	addi s0, s0, -1
	bnez s0, loop
	li   a7, 93
	ecall
h0:
	ret
h1:
	ret
`)
	loop := g.Loops()[0]
	retSite := findRetSite(t, g)
	targets := []uint32{p.Labels["h0"], p.Labels["h1"], retSite}
	paths, err := g.EnumeratePaths(loop, EnumerateOptions{Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	// Two handlers x one return site x final bnez (taken to close the
	// cycle): two valid paths.
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want 2", paths)
	}
}

func findRetSite(t *testing.T, g *Graph) uint32 {
	t.Helper()
	for a := range g.ReturnSites {
		return a
	}
	t.Fatal("no return sites")
	return 0
}

// MaxPaths truncation: a bound below the true path count returns
// ErrPathSpaceTooLarge (never a silently truncated set), a bound at
// exactly the path count succeeds.
func TestEnumerateMaxPathsTruncation(t *testing.T) {
	g, _ := buildFromSource(t, fig4) // exactly 2 valid paths
	loop := g.Loops()[0]

	_, err := g.EnumeratePaths(loop, EnumerateOptions{MaxPaths: 1})
	if !errors.Is(err, ErrPathSpaceTooLarge) {
		t.Fatalf("MaxPaths=1 error = %v, want ErrPathSpaceTooLarge", err)
	}

	// The bound is inclusive: MaxPaths equal to the true count is not a
	// truncation.
	paths, err := g.EnumeratePaths(loop, EnumerateOptions{MaxPaths: 2})
	if err != nil {
		t.Fatalf("MaxPaths=2: %v", err)
	}
	if len(paths) != 2 {
		t.Fatalf("MaxPaths=2 returned %d paths, want 2", len(paths))
	}
}

// PathSetContains on degenerate sets: empty and duplicated.
func TestPathSetContainsEmptyAndDuplicates(t *testing.T) {
	code := monitor.PathCode{Bits: 0b011, Len: 3}

	if PathSetContains(nil, code) {
		t.Error("nil set contains a code")
	}
	if PathSetContains([]monitor.PathCode{}, code) {
		t.Error("empty set contains a code")
	}
	if PathSetContains([]monitor.PathCode{}, monitor.PathCode{}) {
		t.Error("empty set contains the zero code")
	}

	// Duplicates change nothing: membership is by value.
	dup := []monitor.PathCode{code, code, {Bits: 0b1, Len: 1}, code}
	if !PathSetContains(dup, code) {
		t.Error("duplicated code not found")
	}
	if !PathSetContains(dup, monitor.PathCode{Bits: 0b1, Len: 1}) {
		t.Error("singleton among duplicates not found")
	}
	if PathSetContains(dup, monitor.PathCode{Bits: 0b011, Len: 4}) {
		t.Error("same bits different length reported contained")
	}
	if PathSetContains(dup, monitor.PathCode{Bits: 0b011, Len: 3, Overflow: true}) {
		t.Error("overflow variant reported contained")
	}
}

// The safety valve trips on explosive path spaces.
func TestEnumerateBound(t *testing.T) {
	// 12 sequential diamonds inside one loop: 2^12 paths.
	src := "main:\n\tli s0, 3\nloop:\n"
	for i := 0; i < 12; i++ {
		src += "\tandi t0, s0, 1\n"
		src += "\tbeqz t0, sk" + string(rune('a'+i)) + "\n"
		src += "\taddi s1, s1, 1\n"
		src += "sk" + string(rune('a'+i)) + ":\n"
	}
	src += "\taddi s0, s0, -1\n\tbnez s0, loop\n\tli a7, 93\n\tecall\n"
	g, _ := buildFromSource(t, src)
	_, err := g.EnumeratePaths(g.Loops()[0], EnumerateOptions{MaxPaths: 100, MaxSymbols: 20})
	if err == nil {
		t.Error("explosive path space enumerated under bound 100")
	}
	// With a generous bound it enumerates all 4096 (2^12) paths.
	paths, err := g.EnumeratePaths(g.Loops()[0], EnumerateOptions{MaxPaths: 5000, MaxSymbols: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4096 {
		t.Errorf("paths = %d, want 4096", len(paths))
	}
}
