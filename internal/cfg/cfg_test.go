package cfg

import (
	"encoding/binary"
	"testing"

	"lofat/internal/asm"
	"lofat/internal/isa"
	"lofat/internal/monitor"
)

// buildFromSource assembles and builds the graph.
func buildFromSource(t *testing.T, src string) (*Graph, *asm.Program) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	words := make([]uint32, 0, len(p.Data)/4)
	for i := 0; i+4 <= len(p.Data); i += 4 {
		words = append(words, binary.LittleEndian.Uint32(p.Data[i:]))
	}
	g, err := Build(p.Text, p.TextBase, words)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g, p
}

const fig4 = `
main:
	li   s0, 6
N2:	beqz s0, N7
N3:	andi t0, s0, 1
	beqz t0, N5
N4:	addi s1, s1, 10
	j    N6
N5:	addi s1, s1, 1
N6:	addi s0, s0, -1
	j    N2
N7:	li   a7, 93
	ecall
`

func TestDisassembleRoundTrip(t *testing.T) {
	g, p := buildFromSource(t, fig4)
	if len(g.Instrs) != p.NumInstructions() {
		t.Fatalf("disassembled %d, assembled %d", len(g.Instrs), p.NumInstructions())
	}
	if g.Instrs[0].Addr != p.TextBase {
		t.Errorf("first addr = %#x", g.Instrs[0].Addr)
	}
}

func TestBasicBlocks(t *testing.T) {
	g, p := buildFromSource(t, fig4)
	// Expect blocks at: main, N2, N3, N4, j-N6-successor? Let's check
	// the labelled block leaders exist.
	for _, lbl := range []string{"N2", "N3", "N4", "N5", "N6", "N7"} {
		addr := p.Labels[lbl]
		if _, ok := g.blockAt[addr]; !ok {
			t.Errorf("no block starting at %s (%#x)", lbl, addr)
		}
	}
	// N2's block ends in beqz with two successors: N7 and N3.
	b := g.blockAt[p.Labels["N2"]]
	if len(b.Succs) != 2 {
		t.Fatalf("N2 succs = %#v", b.Succs)
	}
	has := map[uint32]bool{b.Succs[0]: true, b.Succs[1]: true}
	if !has[p.Labels["N7"]] || !has[p.Labels["N3"]] {
		t.Errorf("N2 succs = %#v, want N7 and N3", b.Succs)
	}
	// Every instruction is covered by exactly one block.
	covered := 0
	for _, blk := range g.Blocks() {
		covered += len(blk.Instrs)
	}
	if covered != len(g.Instrs) {
		t.Errorf("blocks cover %d of %d instructions", covered, len(g.Instrs))
	}
}

func TestStaticLoops(t *testing.T) {
	g, p := buildFromSource(t, fig4)
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %+v, want 1", loops)
	}
	l := loops[0]
	if l.Entry != p.Labels["N2"] {
		t.Errorf("entry = %#x, want N2 %#x", l.Entry, p.Labels["N2"])
	}
	if l.Exit != p.Labels["N7"] {
		t.Errorf("exit = %#x, want N7 %#x", l.Exit, p.Labels["N7"])
	}
	if !g.IsInnermost(l) {
		t.Error("single loop not innermost")
	}
}

func TestNestedStaticLoops(t *testing.T) {
	g, p := buildFromSource(t, `
main:
	li s0, 3
outer:
	li s1, 4
inner:
	addi s1, s1, -1
	bnez s1, inner
	addi s0, s0, -1
	bnez s0, outer
	li a7, 93
	ecall
`)
	loops := g.Loops()
	if len(loops) != 2 {
		t.Fatalf("loops = %+v", loops)
	}
	var innerL, outerL Loop
	for _, l := range loops {
		if l.Entry == p.Labels["inner"] {
			innerL = l
		}
		if l.Entry == p.Labels["outer"] {
			outerL = l
		}
	}
	if !g.IsInnermost(innerL) {
		t.Error("inner loop not innermost")
	}
	if g.IsInnermost(outerL) {
		t.Error("outer loop reported innermost")
	}
}

func TestValidEdge(t *testing.T) {
	g, p := buildFromSource(t, `
	.data
tbl:
	.word f1
	.text
main:
	beqz a0, skip
	call f1
skip:
	la   t0, tbl
	lw   t1, 0(t0)
	jalr ra, 0(t1)
	li   a7, 93
	ecall
f1:
	ret
`)
	main := p.Labels["main"]
	skip := p.Labels["skip"]
	f1 := p.Labels["f1"]
	callAddr := main + 4 // the `call f1` jal

	// Conditional branch: both outcomes valid, others not.
	if !g.ValidEdge(main, skip) || !g.ValidEdge(main, main+4) {
		t.Error("beqz edges rejected")
	}
	if g.ValidEdge(main, f1) {
		t.Error("beqz to arbitrary target accepted")
	}
	// jal: only its target.
	if !g.ValidEdge(callAddr, f1) {
		t.Error("call edge rejected")
	}
	if g.ValidEdge(callAddr, skip) {
		t.Error("jal to wrong target accepted")
	}
	// Return: only return sites. f1's ret may go to callAddr+4 or
	// jalr+4, not to main.
	ret := f1
	if !g.ValidEdge(ret, callAddr+4) {
		t.Error("return to call site+4 rejected")
	}
	if g.ValidEdge(ret, main) {
		t.Error("return to non-return-site accepted (ROP edge)")
	}
	// Indirect call through the table: f1 is address-taken.
	jalrAddr := skip + 12 // la(2) + lw(1) then jalr
	if !g.ValidEdge(jalrAddr, f1) {
		t.Error("indirect call to address-taken function rejected")
	}
	if g.ValidEdge(jalrAddr, skip) {
		t.Error("indirect call to random block accepted")
	}
	// Non-control-flow source.
	if g.ValidEdge(skip, f1) {
		t.Error("edge from non-CF instruction accepted")
	}
}

func TestValidatePathFig4(t *testing.T) {
	g, _ := buildFromSource(t, fig4)
	loop := g.Loops()[0]

	// The paper's two encodings must walk; see Figure 4.
	bold := monitor.PathCode{Bits: 0b0011, Len: 4}
	dashed := monitor.PathCode{Bits: 0b011, Len: 3}
	for _, c := range []monitor.PathCode{bold, dashed} {
		res := g.ValidatePath(loop, c, nil, 4, false)
		if res.Verdict != PathValid {
			t.Errorf("path %v: %v (%s)", c, res.Verdict, res.Reason)
		}
	}
	// "Other path encodings are considered invalid and detected by V."
	invalid := []monitor.PathCode{
		{Bits: 0b111, Len: 3},  // enter-exit mismatch
		{Bits: 0b0010, Len: 4}, // back-edge jump encoded 0
		{Bits: 0b01, Len: 2},   // truncated
		{Bits: 0b00111, Len: 5},
		{Bits: 0b1, Len: 1}, // exit branch as full path (leaves loop)
	}
	for _, c := range invalid {
		res := g.ValidatePath(loop, c, nil, 4, false)
		if res.Verdict != PathInvalid {
			t.Errorf("path %v accepted: %v (%s)", c, res.Verdict, res.Reason)
		}
	}
	// The exit traversal "1" is a legal PARTIAL path.
	res := g.ValidatePath(loop, monitor.PathCode{Bits: 1, Len: 1}, nil, 4, true)
	if res.Verdict != PathValid {
		t.Errorf("partial exit path: %v (%s)", res.Verdict, res.Reason)
	}
	// Overflow codes are unresolvable, not invalid.
	res = g.ValidatePath(loop, monitor.PathCode{Overflow: true}, nil, 4, false)
	if res.Verdict != PathUnresolvable {
		t.Errorf("overflow path: %v", res.Verdict)
	}
}

func TestValidateRecordFig4(t *testing.T) {
	g, p := buildFromSource(t, fig4)
	rec := monitor.LoopRecord{
		Entry: p.Labels["N2"],
		Exit:  p.Labels["N7"],
		Paths: []monitor.PathStat{
			{Code: monitor.PathCode{Bits: 0b0011, Len: 4}, Count: 3},
			{Code: monitor.PathCode{Bits: 0b011, Len: 3}, Count: 2},
		},
		Partial:    monitor.PathCode{Bits: 1, Len: 1},
		Iterations: 5,
	}
	for _, r := range g.ValidateRecord(rec, 4) {
		if r.Verdict == PathInvalid {
			t.Errorf("valid record flagged: %s", r.Reason)
		}
	}

	// Tampered iteration counts (attack class 2) are inconsistent if
	// the path-count sum no longer matches.
	bad := rec
	bad.Iterations = 50
	found := false
	for _, r := range g.ValidateRecord(bad, 4) {
		if r.Verdict == PathInvalid {
			found = true
		}
	}
	if !found {
		t.Error("inconsistent iteration count not flagged")
	}

	// Unknown loop bounds.
	bad = rec
	bad.Entry = 0x9999
	res := g.ValidateRecord(bad, 4)
	if len(res) == 0 || res[0].Verdict != PathInvalid {
		t.Error("unknown loop accepted")
	}
}

// A loop whose body calls a function: the walk follows the call, the
// return resolves through the CAM.
func TestValidatePathWithCall(t *testing.T) {
	g, p := buildFromSource(t, `
main:
	li s0, 5
loop:
	call helper
	addi s0, s0, -1
	bnez s0, loop
	li a7, 93
	ecall
helper:
	ret
`)
	loop := g.Loops()[0]
	retSite := p.Labels["loop"] + 4 // after the call

	// Path: call('1'), ret(code 1), bnez taken('1'). With n=4:
	// 1 + 0001 + 1 = 6 bits.
	code := monitor.PathCode{Bits: 0b1_0001_1, Len: 6}
	res := g.ValidatePath(loop, code, []uint32{retSite}, 4, false)
	if res.Verdict != PathValid {
		t.Errorf("call path: %v (%s)", res.Verdict, res.Reason)
	}

	// A corrupted return target (ROP): CAM points somewhere that is
	// not a return site.
	res = g.ValidatePath(loop, code, []uint32{p.Labels["main"]}, 4, false)
	if res.Verdict != PathInvalid {
		t.Errorf("ROP return accepted: %v (%s)", res.Verdict, res.Reason)
	}
}

func TestWalkUnresolvableOnNestedBackEdge(t *testing.T) {
	g, p := buildFromSource(t, `
main:
	li s0, 3
outer:
	li s1, 4
inner:
	addi s1, s1, -1
	bnez s1, inner
	addi s0, s0, -1
	bnez s0, outer
	li a7, 93
	ecall
`)
	var outer Loop
	for _, l := range g.Loops() {
		if l.Entry == p.Labels["outer"] {
			outer = l
		}
	}
	// Outer path includes the inner's first back-edge bit, then the
	// walker must give up (nested iterations unknown).
	code := monitor.PathCode{Bits: 0b11, Len: 2}
	res := g.ValidatePath(outer, code, nil, 4, false)
	if res.Verdict != PathUnresolvable {
		t.Errorf("nested walk = %v (%s), want unresolvable", res.Verdict, res.Reason)
	}
}

func TestDisassembleErrors(t *testing.T) {
	if _, err := Disassemble([]byte{1, 2, 3}, 0x1000); err == nil {
		t.Error("unaligned text accepted")
	}
	if _, err := Disassemble([]byte{0, 0, 0, 0}, 0x1000); err == nil {
		t.Error("invalid instruction word accepted")
	}
	if _, err := Build(nil, 0x1000, nil); err == nil {
		t.Error("empty text accepted")
	}
}

func TestBlockContaining(t *testing.T) {
	g, p := buildFromSource(t, fig4)
	b, ok := g.BlockContaining(p.Labels["N3"] + 4)
	if !ok || b.Start != p.Labels["N3"] {
		t.Errorf("BlockContaining(N3+4) = %+v, %v", b, ok)
	}
	if _, ok := g.BlockContaining(0x9000); ok {
		t.Error("BlockContaining outside text succeeded")
	}
}

func TestInstAt(t *testing.T) {
	g, p := buildFromSource(t, fig4)
	in, ok := g.InstAt(p.TextBase)
	if !ok || in.Inst.Op != isa.OpADDI {
		t.Errorf("InstAt(base) = %+v, %v", in, ok)
	}
	if _, ok := g.InstAt(p.TextBase + 2); ok {
		t.Error("InstAt(misaligned) succeeded")
	}
}

// BranchArms must return exactly the two successors of a conditional
// branch — both admitted by ValidEdge — and nothing for any other
// instruction.
func TestBranchArms(t *testing.T) {
	g, _ := buildFromSource(t, `
main:
	li   t0, 3
loop:
	beqz t0, done
	addi t0, t0, -1
	j    loop
done:
	li   a7, 93
	ecall
`)
	arms := 0
	for _, in := range g.Instrs {
		taken, fallthru, ok := g.BranchArms(in.Addr)
		if !in.Inst.Op.IsCondBranch() {
			if ok {
				t.Errorf("BranchArms claimed arms for non-branch at %#x", in.Addr)
			}
			continue
		}
		if !ok {
			t.Fatalf("BranchArms missed the branch at %#x", in.Addr)
		}
		arms++
		if fallthru != in.Addr+4 {
			t.Errorf("fall-through %#x, want %#x", fallthru, in.Addr+4)
		}
		if !g.ValidEdge(in.Addr, taken) || !g.ValidEdge(in.Addr, fallthru) {
			t.Errorf("BranchArms arm rejected by ValidEdge at %#x", in.Addr)
		}
		if taken == fallthru {
			t.Errorf("degenerate arms at %#x", in.Addr)
		}
	}
	if arms == 0 {
		t.Fatal("no conditional branch found")
	}
	if _, _, ok := g.BranchArms(0xdead_0000); ok {
		t.Error("BranchArms claimed arms outside the text")
	}
}
