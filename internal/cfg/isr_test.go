package cfg

import "testing"

const isrSrc = `
main:
	li   t0, 4
loop:
	addi t0, t0, -1
	bnez t0, loop
	li   a0, 0
	li   a7, 93
	ecall
isr:
	addi t5, t5, 1
	mret
`

// TestEnableISRValidEdge pins the oracle's ISR semantics: with
// EnableISR set, a dispatch edge from ANY instruction boundary to the
// vector is valid, an mret may resume at any instruction, and both
// rules vanish when ISR semantics are off.
func TestEnableISRValidEdge(t *testing.T) {
	g, p := buildFromSource(t, isrSrc)
	vector, ok := p.Entry("isr")
	if !ok {
		t.Fatal("no isr label")
	}
	mret := vector + 4 // addi then mret

	// Before EnableISR: no vector or mret edges validate.
	if g.ValidEdge(g.Base, vector) {
		t.Error("dispatch edge valid before EnableISR")
	}
	if g.ValidEdge(mret, g.Base) {
		t.Error("mret edge valid before EnableISR")
	}
	if _, on := g.ISRVector(); on {
		t.Error("ISRVector() reports enabled before EnableISR")
	}

	g.EnableISR(vector)
	if v, on := g.ISRVector(); !on || v != vector {
		t.Fatalf("ISRVector() = %#x, %v", v, on)
	}
	if !g.IsMRetSite(mret) {
		t.Errorf("IsMRetSite(%#x) = false for the mret instruction", mret)
	}
	if g.IsMRetSite(g.Base) {
		t.Error("IsMRetSite true for a non-mret address")
	}

	// Dispatch is architecturally valid at every instruction boundary.
	for addr := g.Base; addr < g.Limit; addr += 4 {
		if !g.ValidEdge(addr, vector) {
			t.Errorf("dispatch edge %#x->%#x invalid with ISR enabled", addr, vector)
		}
	}
	// mret resumes anywhere in text — but not outside it.
	if !g.ValidEdge(mret, g.Base+4) {
		t.Error("mret resume edge to a text address invalid")
	}
	if g.ValidEdge(mret, g.Limit+64) {
		t.Error("mret edge to a non-text address validated")
	}
	// Redirecting the dispatch anywhere but the vector stays invalid
	// (the isr-hijack shape): a non-control-flow src has no other
	// outgoing edge.
	if g.ValidEdge(g.Base, g.Base+8) {
		t.Error("li has a non-fall-through edge")
	}
}

// TestMRETBlockStructure: mret ends a basic block with no static
// successors, and the following instruction (if any) leads a block.
func TestMRETBlockStructure(t *testing.T) {
	g, p := buildFromSource(t, isrSrc+"tail:\n\tret\n")
	vector, _ := p.Entry("isr")
	blk, ok := g.BlockContaining(vector + 4)
	if !ok {
		t.Fatal("mret not in any block")
	}
	if blk.Term().Addr != vector+4 {
		t.Fatalf("mret does not terminate its block (term at %#x)", blk.Term().Addr)
	}
	if len(blk.Succs) != 0 {
		t.Fatalf("mret block has static successors %v", blk.Succs)
	}
	if tail, ok := p.Entry("tail"); ok {
		if _, found := g.BlockContaining(tail); !found {
			t.Fatal("instruction after mret is not a block leader")
		}
	}
}
