package lint

import (
	"go/ast"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
	"unicode"
	"unicode/utf8"
)

// TestZeroAllocDriftCoupling couples the static //lofat:zeroalloc
// annotations to their runtime proofs: every package that annotates a
// hot-path function must carry a testing.AllocsPerRun suite, and every
// exported annotated function must be named somewhere in that
// package's tests. Annotating a function without measuring it (or
// deleting the measurement while keeping the annotation) fails here —
// the static contract and the runtime evidence cannot drift apart.
func TestZeroAllocDriftCoupling(t *testing.T) {
	var dirs []string
	for _, top := range []string{"../../internal", "../../cmd"} {
		err := filepath.WalkDir(top, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	annotated := 0
	for _, dir := range dirs {
		fset, files, testFiles, err := LoadDirAST(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			continue
		}
		keys := ParseDirectives(fset, files).ZeroAllocFuncs()
		if len(keys) == 0 {
			continue
		}
		annotated++

		idents := make(map[string]bool)
		for _, f := range testFiles {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					idents[id.Name] = true
				}
				return true
			})
		}
		rel := filepath.ToSlash(strings.TrimPrefix(dir, "../../"))
		if !idents["AllocsPerRun"] {
			t.Errorf("%s: carries //lofat:zeroalloc annotations but no testing.AllocsPerRun proof in its tests", rel)
		}
		for _, key := range keys {
			name := key[strings.LastIndex(key, ".")+1:]
			if r, _ := utf8.DecodeRuneInString(name); !unicode.IsUpper(r) {
				continue // unexported: measured through the exported entry points
			}
			if !idents[name] {
				t.Errorf("%s: exported //lofat:zeroalloc function %s is never mentioned in the package's tests", rel, key)
			}
		}
	}
	if annotated == 0 {
		t.Fatal("found no //lofat:zeroalloc-annotated packages; the directive scan is broken")
	}
}
