package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir          string
	ImportPath   string
	Export       string
	Standard     bool
	DepOnly      bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// Load lists, parses, and type-checks the packages matched by patterns
// (e.g. "./...") relative to dir. Dependencies are imported from
// compiler export data, so only the target packages themselves are
// parsed from source.
func Load(dir string, patterns ...string) (*Suite, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	exports := make(map[string]string) // import path -> export data file
	var targets []*listPackage
	for _, lp := range pkgs {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}

	imp := newExportImporter(fset, exports)
	suite := &Suite{Analyzers: DefaultAnalyzers()}
	for _, lp := range targets {
		p, err := loadPackage(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		suite.Packages = append(suite.Packages, p)
	}
	return suite, nil
}

// goList shells out to the go tool. -export makes the toolchain write
// export data for every listed package (including dependencies via
// -deps), which the type-checker then imports instead of re-parsing
// the world.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Export,Standard,DepOnly,GoFiles,TestGoFiles,XTestGoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// GOWORK=off keeps a stray parent workspace file from dragging in
	// unrelated modules (the driver test loads synthetic mini-modules
	// from temp dirs).
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// newExportImporter returns a types.Importer reading gc export data
// from the files go list reported. "unsafe" has no export file and is
// special-cased to the built-in package.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{gc: importer.ForCompiler(fset, "gc", lookup)}
}

type exportImporter struct {
	gc types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.Import(path)
}

func loadPackage(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	parse := func(names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, name := range names {
			path := filepath.Join(lp.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", path, err)
			}
			files = append(files, f)
		}
		return files, nil
	}
	files, err := parse(lp.GoFiles)
	if err != nil {
		return nil, err
	}
	testFiles, err := parse(append(append([]string(nil), lp.TestGoFiles...), lp.XTestGoFiles...))
	if err != nil {
		return nil, err
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		// Keep going past errors: a half-typed package still yields
		// useful diagnostics, and fixtures may reference the analyzer
		// under test without caring about full type soundness.
		Error: func(error) {},
	}
	tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)

	// Directives are scanned over compiled and test files alike (alloc
	// drift tests live in _test.go but the annotations they index live
	// in compiled files; ignores may appear in either).
	all := make([]*ast.File, 0, len(files)+len(testFiles))
	all = append(all, files...)
	all = append(all, testFiles...)

	return &Package{
		Path:       lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		TestFiles:  testFiles,
		Types:      tpkg,
		Info:       info,
		Directives: ParseDirectives(fset, all),
	}, nil
}

// LoadDirAST parses every .go file directly inside dir (no go list, no
// type-checking) and returns the fileset, compiled files, and test
// files. This is the lightweight path used by fixture tests and the
// annotation drift test, which only need directive scanning.
func LoadDirAST(dir string) (*token.FileSet, []*ast.File, []*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	fset := token.NewFileSet()
	var files, testFiles []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			testFiles = append(testFiles, f)
		} else {
			files = append(files, f)
		}
	}
	return fset, files, testFiles, nil
}
