package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WalCodecAnalyzer enforces the persistence-codec contract on
// encode/decode function pairs:
//
//   - every EncodeX/encodeX plain function must have a matching
//     DecodeX/decodeX in the same package, and vice versa — a
//     write-only record is unrecoverable, a read-only one untestable;
//   - every decoder must be exercised by the package's own tests (a
//     round-trip or fuzz test referencing it by name) — decoders parse
//     attacker-reachable or disk-corrupted bytes and must not rot;
//   - encoders must not iterate maps, whose order is randomized —
//     canonical (CRC-stable) encodings require deterministic byte
//     output. The collect-then-sort idiom (a range whose body is a
//     single self-append of the keys) is allowed.
func WalCodecAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "walcodec",
		Doc:  "require paired, round-trip-tested, canonically-ordered encode/decode functions",
		Run:  runWalCodec,
	}
}

func runWalCodec(p *Package) []Diagnostic {
	var diags []Diagnostic

	type codecFunc struct {
		fn   *ast.FuncDecl
		rest string // name with the Encode/Decode prefix stripped
	}
	var encoders, decoders []codecFunc
	byName := make(map[string]bool)

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv != nil {
				continue
			}
			byName[fn.Name.Name] = true
			if rest, ok := codecRest(fn.Name.Name, "Encode", "encode"); ok {
				encoders = append(encoders, codecFunc{fn, rest})
			}
			if rest, ok := codecRest(fn.Name.Name, "Decode", "decode"); ok {
				decoders = append(decoders, codecFunc{fn, rest})
			}
		}
	}
	if len(encoders) == 0 && len(decoders) == 0 {
		return nil
	}

	// Identifiers referenced anywhere in the package's own test files:
	// the "exercised by a test" witness.
	tested := make(map[string]bool)
	for _, f := range p.TestFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				tested[id.Name] = true
			}
			return true
		})
	}

	counterpart := func(name, from, to string) string {
		if strings.HasPrefix(name, from) {
			return to + strings.TrimPrefix(name, from)
		}
		return strings.ToLower(to[:1]) + to[1:] + strings.TrimPrefix(name, strings.ToLower(from[:1])+from[1:])
	}

	for _, enc := range encoders {
		want := counterpart(enc.fn.Name.Name, "Encode", "Decode")
		if !byName[want] {
			diags = append(diags, p.Diag("walcodec", enc.fn.Name.Pos(),
				"encoder %s has no matching decoder %s in this package", enc.fn.Name.Name, want))
		}
		diags = append(diags, checkEncoderMapRange(p, enc.fn)...)
	}
	for _, dec := range decoders {
		want := counterpart(dec.fn.Name.Name, "Decode", "Encode")
		if !byName[want] {
			diags = append(diags, p.Diag("walcodec", dec.fn.Name.Pos(),
				"decoder %s has no matching encoder %s in this package", dec.fn.Name.Name, want))
		}
		if !tested[dec.fn.Name.Name] {
			diags = append(diags, p.Diag("walcodec", dec.fn.Name.Pos(),
				"decoder %s is not exercised by any test in this package; add a round-trip or fuzz test", dec.fn.Name.Name))
		}
	}
	return diags
}

func codecRest(name, upper, lower string) (string, bool) {
	for _, prefix := range []string{upper, lower} {
		rest, ok := strings.CutPrefix(name, prefix)
		if ok && rest != "" {
			return rest, true
		}
	}
	return "", false
}

// checkEncoderMapRange flags map iteration inside an encoder unless
// the range body is a single key-collecting self-append (the
// collect-then-sort idiom).
func checkEncoderMapRange(p *Package, fn *ast.FuncDecl) []Diagnostic {
	if fn.Body == nil {
		return nil
	}
	var diags []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.typeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if isCollectOnlyBody(rng.Body) {
			return true
		}
		diags = append(diags, p.Diag("walcodec", rng.Pos(),
			"map iteration in encoder %s is non-deterministic; collect keys, sort, then encode", fn.Name.Name))
		return true
	})
	return diags
}

// isCollectOnlyBody reports whether a range body is exactly one
// self-append statement ("keys = append(keys, k)").
func isCollectOnlyBody(body *ast.BlockStmt) bool {
	if len(body.List) != 1 {
		return false
	}
	assign, ok := body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	return types.ExprString(assign.Lhs[0]) == types.ExprString(appendBase(call.Args[0]))
}
