package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Directive names. Each is written as a comment of the form
// "//lofat:<name> [args...]" — no space after "//", mirroring the
// "//go:" convention so gofmt leaves them alone.
const (
	// DirZeroAlloc marks a function as part of a zero-allocation hot
	// path: the zeroalloc analyzer rejects allocation-inducing
	// constructs inside it, and the runtime drift test (satellite of the
	// static contract) requires a testing.AllocsPerRun proof in the
	// package's tests.
	DirZeroAlloc = "zeroalloc"
	// DirRawConn marks a function as part of the sanctioned raw
	// connection layer: the deadline wrappers and frame codec that are
	// allowed to call Read/Write on a deadline-capable connection
	// directly. A reason string is required; every use is listed as a
	// suppression in machine-readable output.
	DirRawConn = "rawconn"
	// DirLocked documents that a function's CALLER holds the named
	// mutex: the locked analyzer treats guarded-field accesses inside it
	// as properly protected.
	DirLocked = "locked"
	// DirNilSafe marks a type as a nil-safe handle: the obsnil analyzer
	// requires every exported pointer-receiver method to begin with a
	// nil-receiver guard.
	DirNilSafe = "nilsafe"
	// DirGuardedBy marks a struct field as protected by the named mutex
	// (a sibling field, or — for records owned by a locked container —
	// the symbolic name of the owning lock).
	DirGuardedBy = "guardedby"
	// DirIgnore suppresses one analyzer's diagnostics on the same line
	// or the line below. A reason string is required; all ignores are
	// listed as suppressions in machine-readable output, and ignores
	// that suppress nothing are themselves reported.
	DirIgnore = "ignore"
)

const directivePrefix = "//lofat:"

// Ignore is one parsed //lofat:ignore comment.
type Ignore struct {
	Analyzer string
	Reason   string
	File     string
	Line     int
}

// FuncDirective is a parsed function-level directive (zeroalloc,
// rawconn, locked).
type FuncDirective struct {
	Kind string
	// Arg is the mutex name for locked, empty otherwise.
	Arg string
	// Reason is the trailing free text (required for rawconn).
	Reason string
	// Func is the directive target in Recv.Name or Name form.
	Func string
	Pos  token.Position
}

// Directives holds every parsed //lofat: directive of one package.
type Directives struct {
	// Funcs maps annotated function declarations to their directives
	// (a function may carry several, e.g. zeroalloc + locked).
	Funcs map[*ast.FuncDecl][]*FuncDirective
	// NilSafe holds type declarations marked //lofat:nilsafe.
	NilSafe map[*ast.TypeSpec]bool
	// GuardedBy maps annotated struct fields to their mutex name.
	GuardedBy map[*ast.Field]string
	// Ignores are the per-line suppression comments, in file order.
	Ignores []*Ignore
	// Malformed collects directive syntax errors as diagnostics (they
	// are reported under the "directive" analyzer name).
	Malformed []Diagnostic
}

// FuncKey renders a function declaration as its directive-index key:
// "Recv.Name" for methods (pointer stars stripped), "Name" otherwise.
func FuncKey(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		if name := recvTypeName(fn.Recv.List[0].Type); name != "" {
			return name + "." + fn.Name.Name
		}
	}
	return fn.Name.Name
}

// recvTypeName unwraps a receiver type expression to its base type
// name ("*Monitor" and "Monitor" both yield "Monitor").
func recvTypeName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr: // generic receiver
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// parseDirectiveComment splits one comment into (name, rest). ok is
// false for comments that are not lofat directives at all.
func parseDirectiveComment(text string) (name, rest string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	body := strings.TrimPrefix(text, directivePrefix)
	name, rest, _ = strings.Cut(body, " ")
	return strings.TrimSpace(name), strings.TrimSpace(rest), true
}

// ParseDirectives scans the files of one package for //lofat:
// directives. fset must be the set the files were parsed with (with
// comments).
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		Funcs:     make(map[*ast.FuncDecl][]*FuncDirective),
		NilSafe:   make(map[*ast.TypeSpec]bool),
		GuardedBy: make(map[*ast.Field]string),
	}
	for _, f := range files {
		d.parseFile(fset, f)
	}
	return d
}

func (d *Directives) bad(pos token.Position, format string, args ...any) {
	d.Malformed = append(d.Malformed, Diagnostic{
		Analyzer: "directive",
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (d *Directives) parseFile(fset *token.FileSet, f *ast.File) {
	// Ignores can appear in any comment group, attached or floating.
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			name, rest, ok := parseDirectiveComment(c.Text)
			if !ok || name != DirIgnore {
				continue
			}
			pos := fset.Position(c.Pos())
			analyzer, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if analyzer == "" || reason == "" {
				d.bad(pos, "malformed //lofat:ignore: want \"//lofat:ignore <analyzer> <reason>\"")
				continue
			}
			if !knownAnalyzer(analyzer) {
				d.bad(pos, "//lofat:ignore names unknown analyzer %q", analyzer)
				continue
			}
			d.Ignores = append(d.Ignores, &Ignore{
				Analyzer: analyzer,
				Reason:   reason,
				File:     pos.Filename,
				Line:     pos.Line,
			})
		}
	}

	// Function- and type-level directives live in doc comments.
	for _, decl := range f.Decls {
		switch decl := decl.(type) {
		case *ast.FuncDecl:
			d.parseFuncDoc(fset, decl)
		case *ast.GenDecl:
			d.parseGenDecl(fset, decl)
		}
	}
}

func (d *Directives) parseFuncDoc(fset *token.FileSet, fn *ast.FuncDecl) {
	if fn.Doc == nil {
		return
	}
	for _, c := range fn.Doc.List {
		name, rest, ok := parseDirectiveComment(c.Text)
		if !ok || name == DirIgnore {
			continue
		}
		pos := fset.Position(c.Pos())
		fd := &FuncDirective{Kind: name, Func: FuncKey(fn), Pos: pos}
		switch name {
		case DirZeroAlloc:
			fd.Reason = rest
		case DirRawConn:
			if rest == "" {
				d.bad(pos, "//lofat:rawconn requires a reason string")
				continue
			}
			fd.Reason = rest
		case DirLocked:
			mutex, reason, _ := strings.Cut(rest, " ")
			if mutex == "" {
				d.bad(pos, "//lofat:locked requires a mutex name")
				continue
			}
			fd.Arg, fd.Reason = mutex, strings.TrimSpace(reason)
		default:
			d.bad(pos, "unknown or misplaced directive //lofat:%s on function %s", name, FuncKey(fn))
			continue
		}
		d.Funcs[fn] = append(d.Funcs[fn], fd)
	}
}

func (d *Directives) parseGenDecl(fset *token.FileSet, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		// The directive may sit on the TypeSpec or, for single-spec
		// declarations, on the GenDecl.
		for _, doc := range []*ast.CommentGroup{decl.Doc, ts.Doc} {
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				name, _, ok := parseDirectiveComment(c.Text)
				if !ok || name == DirIgnore {
					continue
				}
				pos := fset.Position(c.Pos())
				if name != DirNilSafe {
					d.bad(pos, "unknown or misplaced directive //lofat:%s on type %s", name, ts.Name.Name)
					continue
				}
				d.NilSafe[ts] = true
			}
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
				if doc == nil {
					continue
				}
				for _, c := range doc.List {
					name, rest, ok := parseDirectiveComment(c.Text)
					if !ok || name == DirIgnore {
						continue
					}
					pos := fset.Position(c.Pos())
					if name != DirGuardedBy {
						d.bad(pos, "unknown or misplaced directive //lofat:%s on a struct field", name)
						continue
					}
					mutex, _, _ := strings.Cut(rest, " ")
					if mutex == "" {
						d.bad(pos, "//lofat:guardedby requires a mutex name")
						continue
					}
					d.GuardedBy[field] = mutex
				}
			}
		}
	}
}

// ZeroAllocFuncs returns the FuncKey of every function in the package
// marked //lofat:zeroalloc, sorted by position. The runtime drift test
// uses this to couple annotations to AllocsPerRun proofs.
func (d *Directives) ZeroAllocFuncs() []string {
	var out []string
	for fn, dirs := range d.Funcs {
		for _, fd := range dirs {
			if fd.Kind == DirZeroAlloc {
				out = append(out, FuncKey(fn))
			}
		}
	}
	sortStrings(out)
	return out
}
