package lint

import (
	"go/ast"
	"go/types"
)

// RawConnAnalyzer forbids direct Read/Write calls on deadline-capable
// connections outside the sanctioned transport layer. PR 4 routed all
// frame I/O through deadline-arming wrappers so a stalled peer can
// never hang a verifier; a bare conn.Read anywhere else silently
// reopens that hole.
//
// A type is "deadline-capable" when its method set includes
// SetReadDeadline(time.Time) error — this covers net.Conn, *net.TCPConn
// and every conn wrapper, without requiring the net package itself to
// be type-checked from source. Functions annotated
// //lofat:rawconn <reason> form the sanctioned layer; each annotation
// is surfaced as an audited suppression in -json output.
//
// io.ReadFull / ReadAtLeast / Copy / CopyN / ReadAll on a
// deadline-capable argument are flagged too: they loop over the same
// raw Read.
func RawConnAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "rawconn",
		Doc:  "forbid raw conn Read/Write outside the deadline-wrapped transport layer",
		Run:  runRawConn,
	}
}

var ioReaders = map[string]bool{
	"ReadFull":    true,
	"ReadAtLeast": true,
	"Copy":        true,
	"CopyN":       true,
	"ReadAll":     true,
}

func runRawConn(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || p.sanctioned(fn, DirRawConn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Read", "Write":
					if t := p.typeOf(sel.X); t != nil && deadlineCapable(t) {
						diags = append(diags, p.Diag("rawconn", call.Pos(),
							"direct %s on deadline-capable connection; route I/O through the deadline-armed frame layer", sel.Sel.Name))
					}
				default:
					if !ioReaders[sel.Sel.Name] || !isPackageRef(p, sel.X, "io") {
						return true
					}
					for _, arg := range call.Args {
						if t := p.typeOf(arg); t != nil && deadlineCapable(t) {
							diags = append(diags, p.Diag("rawconn", call.Pos(),
								"io.%s over a deadline-capable connection loops over raw Read; use the deadline-armed frame layer", sel.Sel.Name))
							break
						}
					}
				}
				return true
			})
		}
	}
	return diags
}

// sanctioned reports whether fn carries the given function directive.
func (p *Package) sanctioned(fn *ast.FuncDecl, kind string) bool {
	for _, fd := range p.Directives.Funcs[fn] {
		if fd.Kind == kind {
			return true
		}
	}
	return false
}

// deadlineCapable reports whether t's method set (or its pointer's)
// includes SetReadDeadline. *os.File structurally qualifies but is not
// a network transport — plain file I/O is exempt.
func deadlineCapable(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File" {
			return false
		}
	}
	if hasSetReadDeadline(t) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return hasSetReadDeadline(types.NewPointer(t))
	}
	return false
}

func hasSetReadDeadline(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		if m.Name() != "SetReadDeadline" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if ok && sig.Params().Len() == 1 && sig.Results().Len() == 1 {
			return true
		}
	}
	return false
}

// isPackageRef reports whether expr is a reference to the named
// package (e.g. the "io" in io.ReadFull).
func isPackageRef(p *Package, expr ast.Expr, path string) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == path
}
