package lint

import (
	"go/ast"
)

// ObsNilAnalyzer enforces the nil-safe handle contract: every exported
// pointer-receiver method of a type annotated //lofat:nilsafe must
// begin with a nil-receiver guard, so a disabled (nil) handle is a
// no-op rather than a panic. Accepted guard forms:
//
//	if h == nil { ... return ... }   // leading guard
//	return h == nil                  // predicate methods (Enabled)
//	return h != nil
//
// Value-receiver methods and methods with an unnamed receiver cannot
// dereference a nil handle and are exempt; unexported methods are the
// package's own business (they run behind an exported guard).
func ObsNilAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "obsnil",
		Doc:  "require nil-receiver guards on exported methods of //lofat:nilsafe types",
		Run:  runObsNil,
	}
}

func runObsNil(p *Package) []Diagnostic {
	nilSafe := make(map[string]bool)
	for ts := range p.Directives.NilSafe {
		nilSafe[ts.Name.Name] = true
	}
	if len(nilSafe) == 0 {
		return nil
	}

	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			recv := fn.Recv.List[0]
			star, isPtr := recv.Type.(*ast.StarExpr)
			if !isPtr {
				continue // value receiver: a nil handle can't reach it
			}
			if !nilSafe[recvTypeNameFrom(star)] {
				continue
			}
			if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
				continue // receiver unused: trivially nil-safe
			}
			recvName := recv.Names[0].Name
			if !hasNilGuard(fn.Body, recvName) {
				diags = append(diags, p.Diag("obsnil", fn.Name.Pos(),
					"exported method %s on nil-safe type must begin with \"if %s == nil\" guard",
					FuncKey(fn), recvName))
			}
		}
	}
	return diags
}

func recvTypeNameFrom(star *ast.StarExpr) string {
	return recvTypeName(star.X)
}

func hasNilGuard(body *ast.BlockStmt, recvName string) bool {
	if len(body.List) == 0 {
		return true // empty body cannot dereference anything
	}
	switch first := body.List[0].(type) {
	case *ast.IfStmt:
		// if recv == nil { ...; return }
		if !isNilComparison(first.Cond, recvName, "==") {
			return false
		}
		if n := len(first.Body.List); n > 0 {
			_, isReturn := first.Body.List[n-1].(*ast.ReturnStmt)
			return isReturn
		}
		return false
	case *ast.ReturnStmt:
		// return recv == nil / return recv != nil (Enabled-style)
		if len(first.Results) != 1 {
			return false
		}
		return isNilComparison(first.Results[0], recvName, "==") ||
			isNilComparison(first.Results[0], recvName, "!=")
	}
	return false
}

func isNilComparison(expr ast.Expr, recvName, op string) bool {
	bin, ok := ast.Unparen(expr).(*ast.BinaryExpr)
	if !ok || bin.Op.String() != op {
		return false
	}
	return isIdentPair(bin.X, bin.Y, recvName) || isIdentPair(bin.Y, bin.X, recvName)
}

func isIdentPair(a, b ast.Expr, recvName string) bool {
	ai, ok := ast.Unparen(a).(*ast.Ident)
	if !ok || ai.Name != recvName {
		return false
	}
	bi, ok := ast.Unparen(b).(*ast.Ident)
	return ok && bi.Name == "nil"
}
