// Package lk exercises the locked analyzer: //lofat:guardedby fields
// may only be touched where an enclosing function locks the named
// mutex or is sanctioned //lofat:locked.
package lk

import "sync"

type Counter struct {
	mu sync.Mutex
	//lofat:guardedby mu
	n int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) Read() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// incLocked is the caller-holds-lock idiom; the directive sanctions
// it and is audited as a suppression.
//
//lofat:locked mu caller-holds-lock idiom; call sites take c.mu first
func (c *Counter) incLocked() { c.n++ }

func (c *Counter) Racy() int { // the access below fires
	return c.n // want "no enclosing function locks"
}

// HeldClosure builds the closure while holding the lock; the lock
// call in the enclosing scope satisfies the (lexical, flow-insensitive)
// check, so this is silent.
func (c *Counter) HeldClosure() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() { c.n++ }
}

// EscapedClosure touches the guarded field from a closure whose
// enclosing scopes never lock: fires.
func (c *Counter) EscapedClosure() func() {
	return func() {
		c.n++ // want "no enclosing function locks"
	}
}

// RWGuard shows RLock satisfying the guard too.
type RWGuard struct {
	mu sync.RWMutex
	//lofat:guardedby mu
	state string
}

func (g *RWGuard) State() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.state
}

// unguarded fields stay free.
type Free struct{ n int }

func (f *Free) Bump() { f.n++ }
