module fixture.example/locked

go 1.24
