// Package ig exercises the suppression machinery: a matching
// //lofat:ignore silences its diagnostic (and is audited), an unused
// ignore is itself a diagnostic, and malformed directives are
// reported.
package ig

//lofat:zeroalloc
func Hot() []int {
	//lofat:ignore zeroalloc fixture exception: one-time cold-path buffer
	buf := make([]int, 4)

	grown := append(buf, 9) //lofat:ignore zeroalloc end-of-line form matches its own line
	_ = grown

	//lofat:ignore zeroalloc this matches nothing // want "suppresses no diagnostic"
	return buf
}

//lofat:ignore bogus not a real analyzer // want "unknown analyzer"
func cold() {}
