module fixture.example/ignore

go 1.24
