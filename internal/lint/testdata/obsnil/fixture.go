// Package on exercises the obsnil analyzer: exported pointer-receiver
// methods on a //lofat:nilsafe type must open with a nil-receiver
// guard.
package on

//lofat:nilsafe
type Handle struct{ n int }

// Good opens with the canonical guard: silent.
func (h *Handle) Good() int {
	if h == nil {
		return 0
	}
	return h.n
}

// Enabled is the single-expression form of the guard: silent.
func (h *Handle) Enabled() bool { return h != nil }

// Disabled is the negated single-expression form: silent.
func (h *Handle) Disabled() bool { return h == nil }

func (h *Handle) Bad() int { // want "must begin with"
	return h.n
}

func (h *Handle) GuardNotFirst(x int) int { // want "must begin with"
	x++
	if h == nil {
		return 0
	}
	return h.n + x
}

// Value copies the receiver; a nil pointer cannot reach it: silent.
func (h Handle) Value() int { return h.n }

// unexported methods are internal plumbing with the guard at the
// exported boundary: silent.
func (h *Handle) load() int { return h.n }

// Reset never touches the receiver: silent.
func (_ *Handle) Reset() {}

// Plain is not //lofat:nilsafe; its methods are unconstrained.
type Plain struct{ n int }

func (p *Plain) Get() int { return p.n }
