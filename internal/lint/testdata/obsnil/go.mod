module fixture.example/obsnil

go 1.24
