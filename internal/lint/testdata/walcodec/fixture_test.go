package wc

import "testing"

func TestRoundTrip(t *testing.T) {
	if got := DecodeThing(EncodeThing(0xdeadbeef)); got != 0xdeadbeef {
		t.Fatalf("round trip: got %#x", got)
	}
	if got := DecodeLost([]byte{7}); got != 7 {
		t.Fatalf("DecodeLost: got %d", got)
	}
	_ = DecodeTable(nil)
	_ = DecodeSorted(nil)
}
