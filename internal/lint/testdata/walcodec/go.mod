module fixture.example/walcodec

go 1.24
