// Package wc exercises the walcodec analyzer: every encoder needs a
// decoder (and vice versa), every decoder needs a test exercising it,
// and encoders must not iterate maps except to collect keys.
package wc

import "sort"

// EncodeThing / DecodeThing: matched pair, decoder exercised by the
// test file — fully silent.
func EncodeThing(v uint32) []byte {
	return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
}

func DecodeThing(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func EncodeOrphan(v int) []byte { // want "no matching decoder"
	return []byte{byte(v)}
}

func DecodeLost(b []byte) int { // want "no matching encoder"
	return int(b[0])
}

// EncodeUntested / DecodeUntested pair up, but no test mentions the
// decoder.
func EncodeUntested(v int) []byte { return []byte{byte(v)} }

func DecodeUntested(b []byte) int { // want "not exercised by any test"
	return int(b[0])
}

// EncodeTable iterates its map directly: iteration order leaks into
// the encoding.
func EncodeTable(m map[string]int) []byte {
	var out []byte
	for k, v := range m { // want "non-deterministic"
		out = append(out, byte(len(k)))
		out = append(out, byte(v))
	}
	return out
}

func DecodeTable(b []byte) map[string]int { return nil }

// EncodeSorted uses the collect-then-sort idiom: the map range only
// gathers keys, so it is deterministic and silent.
func EncodeSorted(m map[string]int) []byte {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	for _, k := range keys {
		out = append(out, byte(m[k]))
	}
	return out
}

func DecodeSorted(b []byte) map[string]int { return nil }

// helper is not a codec; free to do anything.
func helper(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
