module fixture.example/rawconn

go 1.24
