// Package rc exercises the rawconn analyzer: direct Read/Write on a
// deadline-capable connection fires, sanctioned wrappers and
// non-deadline-capable readers stay silent.
package rc

import (
	"io"
	"net"
	"os"
)

func Bad(c net.Conn, buf []byte) {
	c.Read(buf)            // want "direct Read"
	c.Write(buf)           // want "direct Write"
	io.ReadFull(c, buf)    // want "io.ReadFull"
	io.Copy(io.Discard, c) // want "io.Copy"
}

// Sanctioned is the deadline wrapper itself; the directive suspends
// the analyzer for this function and is audited as a suppression.
//
//lofat:rawconn fixture: this function IS the deadline wrapper
func Sanctioned(c net.Conn, buf []byte) {
	c.Read(buf)
	c.Write(buf)
}

func File(f *os.File, buf []byte) {
	f.Read(buf) // *os.File is deadline-capable but explicitly exempt
}

func Plain(r io.Reader, buf []byte) {
	r.Read(buf)         // io.Reader has no SetReadDeadline: silent
	io.ReadFull(r, buf) // same via the io helpers
}
