// Package za exercises the zeroalloc analyzer: every construct the
// hot-path contract forbids fires exactly one diagnostic, and the
// allowed idioms (self-append, value literals, annotated callees) stay
// silent.
package za

import (
	"errors"
	"fmt"
	"io"
)

type point struct{ x, y int }

var table = map[string]int{}

//lofat:zeroalloc
func noop() {}

//lofat:zeroalloc
func sink(v any) { _ = v }

//lofat:zeroalloc
func Hot(dst, src []byte, s1, s2 string) []byte {
	var fresh []int
	_ = make([]byte, 4)       // want "make allocates"
	_ = new(point)            // want "new allocates"
	fresh = append(fresh, 1)  // self-append: silent
	grown := append(fresh, 2) // want "fresh slice"
	_ = grown
	_ = []int{1, 2}   // want "slice literal allocates"
	_ = map[int]int{} // want "map literal allocates"
	_ = &point{x: 1}  // want "escapes to the heap"
	f := func() {}    // want "closure literal allocates"
	f()
	go noop()           // want "goroutine"
	_ = s1 + s2         // want "string concatenation allocates"
	s1 += s2            // want "+= allocates"
	_ = string(src)     // want "string conversion copies"
	_ = []byte(s1)      // want "string conversion copies"
	table["k"] = 1      // want "map assignment may grow"
	_ = fmt.Sprint()    // want "fmt.Sprint allocates"
	_ = errors.New("x") // want "errors.New allocates"
	cold()              // want "not //lofat:zeroalloc"
	sink(42)            // want "boxed into interface parameter"
	dst = append(dst, src...)
	dst = append(dst[:0], src...)
	return dst
}

//lofat:zeroalloc
func OK(dst, src []byte, w io.Writer) []byte {
	p := point{x: 1, y: 2} // value literal: stack, silent
	_ = p
	noop()              // annotated callee: silent
	_, _ = w.Write(src) // dynamic dispatch: trusted
	const a, b = "x", "y"
	_ = a + b // constant-folded concat: silent
	sink(&p)  // pointer is pointer-shaped: no boxing
	dst = append(dst, src...)
	dst = append(dst[:0], src...)
	return dst
}

func cold() { _ = make([]int, 8) } // unannotated: free to allocate
