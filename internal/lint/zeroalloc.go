package lint

import (
	"go/ast"
	"go/types"
)

// ZeroAllocAnalyzer checks functions annotated //lofat:zeroalloc for
// allocation-inducing constructs. The contract is the amortized
// steady-state one the AllocsPerRun suites prove at runtime: pooled
// buffers may grow themselves (self-append is allowed), but nothing on
// the path may build fresh maps, slices, closures, boxed interfaces,
// or formatted strings per call.
//
// Calls are checked transitively by annotation, not by inlining: a
// zeroalloc function may call stdlib functions (except fmt/errors),
// other //lofat:zeroalloc functions anywhere in the module, and
// dynamic callees (interface methods, func values) — the latter are
// trusted, since the concrete callee is not statically known. A call
// to an unannotated in-module function is a diagnostic: either
// annotate the callee or isolate the cold path behind an
// //lofat:ignore.
func ZeroAllocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "zeroalloc",
		Doc:  "forbid allocation-inducing constructs in //lofat:zeroalloc functions",
		Run:  runZeroAlloc,
	}
}

func runZeroAlloc(p *Package) []Diagnostic {
	var diags []Diagnostic
	for fn, dirs := range p.Directives.Funcs {
		for _, fd := range dirs {
			if fd.Kind == DirZeroAlloc {
				diags = append(diags, checkZeroAllocFunc(p, fn)...)
				break
			}
		}
	}
	return diags
}

func checkZeroAllocFunc(p *Package, fn *ast.FuncDecl) []Diagnostic {
	if fn.Body == nil {
		return nil
	}
	za := &zeroAllocCheck{p: p, selfAppends: make(map[*ast.CallExpr]bool)}

	// First pass: mark self-appends. "x = append(x, ...)" (including
	// "x = append(x[:n], ...)") reuses x's backing array in the steady
	// state; any other append builds or leaks a fresh slice.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !za.isBuiltin(call, "append") || len(call.Args) == 0 {
				continue
			}
			if types.ExprString(assign.Lhs[i]) == types.ExprString(appendBase(call.Args[0])) {
				za.selfAppends[call] = true
			}
		}
		return true
	})

	ast.Inspect(fn.Body, za.visit)
	return za.diags
}

type zeroAllocCheck struct {
	p           *Package
	selfAppends map[*ast.CallExpr]bool
	diags       []Diagnostic
}

func (za *zeroAllocCheck) diag(pos ast.Node, format string, args ...any) {
	za.diags = append(za.diags, za.p.Diag("zeroalloc", pos.Pos(), format, args...))
}

// appendBase strips slicing from append's first argument, so
// "x = append(x[:0], ...)" counts as a self-append on x.
func appendBase(e ast.Expr) ast.Expr {
	for {
		if s, ok := ast.Unparen(e).(*ast.SliceExpr); ok {
			e = s.X
			continue
		}
		return ast.Unparen(e)
	}
}

func (za *zeroAllocCheck) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := za.p.Info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

func (za *zeroAllocCheck) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		za.diag(n, "closure literal allocates")
		return false // don't double-report the closure's own body
	case *ast.GoStmt:
		za.diag(n, "go statement allocates a goroutine")
	case *ast.CompositeLit:
		za.checkCompositeLit(n)
	case *ast.UnaryExpr:
		za.checkUnary(n)
	case *ast.BinaryExpr:
		za.checkStringConcat(n)
	case *ast.AssignStmt:
		za.checkAssign(n)
	case *ast.CallExpr:
		za.checkCall(n)
	}
	return true
}

func (za *zeroAllocCheck) checkCompositeLit(lit *ast.CompositeLit) {
	t := za.p.typeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		za.diag(lit, "slice literal allocates")
	case *types.Map:
		za.diag(lit, "map literal allocates")
	}
	// Value struct/array literals stay on the stack and are allowed;
	// &T{...} is caught by checkUnary.
}

func (za *zeroAllocCheck) checkUnary(u *ast.UnaryExpr) {
	if u.Op.String() != "&" {
		return
	}
	if _, ok := ast.Unparen(u.X).(*ast.CompositeLit); ok {
		za.diag(u, "&composite literal escapes to the heap")
	}
}

func (za *zeroAllocCheck) checkStringConcat(b *ast.BinaryExpr) {
	if b.Op.String() != "+" {
		return
	}
	tv, ok := za.p.Info.Types[b]
	if !ok || tv.Value != nil { // constant-folded concat is free
		return
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
		za.diag(b, "string concatenation allocates")
	}
}

func (za *zeroAllocCheck) checkAssign(assign *ast.AssignStmt) {
	if assign.Tok.String() == "+=" && len(assign.Lhs) == 1 {
		if t := za.p.typeOf(assign.Lhs[0]); t != nil {
			if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
				za.diag(assign, "string += allocates")
			}
		}
	}
	for _, lhs := range assign.Lhs {
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		if t := za.p.typeOf(idx.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				za.diag(lhs, "map assignment may grow the map")
			}
		}
	}
}

func (za *zeroAllocCheck) checkCall(call *ast.CallExpr) {
	// Type conversions: only string<->[]byte/[]rune copy.
	if tv, ok := za.p.Info.Types[call.Fun]; ok && tv.IsType() {
		za.checkConversion(call, tv.Type)
		return
	}

	obj := calleeObject(za.p, call)
	switch obj := obj.(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			za.diag(call, "make allocates")
		case "new":
			za.diag(call, "new allocates")
		case "append":
			if !za.selfAppends[call] {
				za.diag(call, "append into a fresh slice allocates (only self-append \"x = append(x, ...)\" is amortized-free)")
			}
		}
		// Builtins are exempt from the boxing check: panic's any
		// parameter is a never-returns cold path.
		return
	case *types.Func:
		za.checkFuncCall(call, obj)
	}
	// nil obj: dynamic call through a func value — trusted.

	za.checkBoxing(call)
}

func (za *zeroAllocCheck) checkConversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := za.p.typeOf(call.Args[0])
	if src == nil {
		return
	}
	if isStringType(target) && isByteOrRuneSlice(src) || isByteOrRuneSlice(target) && isStringType(src) {
		za.diag(call, "string conversion copies and allocates")
	}
}

func (za *zeroAllocCheck) checkFuncCall(call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if recv := sig.Recv(); recv != nil {
		if types.IsInterface(recv.Type()) {
			return // dynamic dispatch: callee trusted
		}
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return // universe-scope (error.Error)
	}
	switch pkg.Path() {
	case "fmt":
		za.diag(call, "fmt.%s allocates", fn.Name())
		return
	case "errors":
		za.diag(call, "errors.%s allocates", fn.Name())
		return
	}
	set, inModule := za.p.suite.zeroalloc[pkg.Path()]
	if !inModule {
		return // stdlib or unloaded dependency: trusted
	}
	key := fn.Name()
	if recv := sig.Recv(); recv != nil {
		if name := namedTypeName(recv.Type()); name != "" {
			key = name + "." + key
		}
	}
	if !set[key] {
		za.diag(call, "calls %s.%s which is not //lofat:zeroalloc", pkg.Path(), key)
	}
}

// checkBoxing flags arguments converted to interface parameters when
// the argument's concrete type is not pointer-shaped: boxing such a
// value heap-allocates its copy.
func (za *zeroAllocCheck) checkBoxing(call *ast.CallExpr) {
	sig, ok := typeAsSignature(za.p.typeOf(call.Fun))
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1)
			slice, ok := last.Type().Underlying().(*types.Slice)
			if !ok {
				return
			}
			paramType = slice.Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			return
		}
		if !types.IsInterface(paramType) {
			continue
		}
		argType := za.p.typeOf(arg)
		if argType == nil || types.IsInterface(argType) || pointerShaped(argType) {
			continue
		}
		za.diag(arg, "value of type %s boxed into interface parameter allocates", argType)
	}
}

func calleeObject(p *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		return p.Info.Uses[fun.Sel]
	}
	return nil
}

func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem, ok := slice.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	kind := elem.Kind()
	return kind == types.Byte || kind == types.Uint8 || kind == types.Rune || kind == types.Int32
}

// pointerShaped reports whether boxing a value of type t into an
// interface stores the value directly in the data word (no heap copy):
// pointers, channels, maps, funcs, and unsafe.Pointer. Untyped nil is
// also free.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		switch u.Kind() {
		case types.UnsafePointer, types.UntypedNil:
			return true
		}
	}
	return false
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}
