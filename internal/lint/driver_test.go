package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// want expectations are "// want \"substr\"" comments in fixture
// files: each quoted string expects one diagnostic on that line whose
// message contains the substring.
type wantComment struct {
	file   string // base name
	line   int
	substr string
	hit    bool
}

var wantRE = regexp.MustCompile(`want ((?:"[^"]*"\s*)+)`)
var quotedRE = regexp.MustCompile(`"([^"]*)"`)

func parseWants(t *testing.T, dir string) []*wantComment {
	t.Helper()
	fset, files, testFiles, err := LoadDirAST(dir)
	if err != nil {
		t.Fatalf("parsing fixtures in %s: %v", dir, err)
	}
	var wants []*wantComment
	for _, f := range append(files, testFiles...) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					wants = append(wants, &wantComment{
						file:   filepath.Base(pos.Filename),
						line:   pos.Line,
						substr: q[1],
					})
				}
			}
		}
	}
	return wants
}

// TestFixtures loads every mini-module under testdata/ through the
// real driver (go list + export-data type-checking) and requires the
// suite's diagnostics to match the fixtures' want comments exactly:
// every want satisfied, no diagnostic unaccounted for.
func TestFixtures(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			dir := filepath.Join("testdata", e.Name())
			suite, err := Load(dir, "./...")
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			res := suite.Run()
			wants := parseWants(t, dir)
			for _, d := range res.Diagnostics {
				if w := matchWant(wants, d); w != nil {
					w.hit = true
					continue
				}
				t.Errorf("unexpected diagnostic: %s", d)
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: want %q: no such diagnostic", w.file, w.line, w.substr)
				}
			}
		})
	}
}

func matchWant(wants []*wantComment, d Diagnostic) *wantComment {
	for _, w := range wants {
		if !w.hit && w.file == filepath.Base(d.File) && w.line == d.Line && strings.Contains(d.Message, w.substr) {
			return w
		}
	}
	return nil
}

// TestFixtureSuppressions checks the audit half of the contract on the
// ignore fixture: matched ignores surface as suppressions with their
// reasons and match counts, and the sanctioning directives of the
// rawconn and locked fixtures are listed too.
func TestFixtureSuppressions(t *testing.T) {
	load := func(name string) Result {
		t.Helper()
		suite, err := Load(filepath.Join("testdata", name), "./...")
		if err != nil {
			t.Fatalf("Load %s: %v", name, err)
		}
		return suite.Run()
	}

	res := load("ignore")
	var matched int
	for _, sup := range res.Suppressions {
		if sup.Kind != "ignore" {
			t.Errorf("unexpected suppression kind %q", sup.Kind)
		}
		if sup.Matched < 1 {
			t.Errorf("suppression at %s:%d survived with Matched == 0", sup.File, sup.Line)
		}
		if sup.Reason == "" {
			t.Errorf("suppression at %s:%d has no reason", sup.File, sup.Line)
		}
		matched += sup.Matched
	}
	if matched != 2 {
		t.Errorf("ignore fixture: %d diagnostics absorbed, want 2", matched)
	}

	for name, kind := range map[string]string{"rawconn": "rawconn", "locked": "locked"} {
		found := false
		for _, sup := range load(name).Suppressions {
			if sup.Kind == kind && sup.Target != "" && sup.Reason != "" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s fixture: no audited %s sanction in suppressions", name, kind)
		}
	}
}

// TestSyntheticModule drives the loader end to end over a module
// written into a temp dir at test time, proving the driver needs
// nothing from the repo tree: go list, export-data imports, directive
// parsing, and a firing analyzer all work against a from-scratch
// module.
func TestSyntheticModule(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module synthetic.example/vet\n\ngo 1.24\n")
	write("main.go", `package vet

import "net"

//lofat:zeroalloc
func Hot(n int) []int {
	return make([]int, n)
}

func Leak(c net.Conn, b []byte) {
	c.Read(b)
}
`)
	suite, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res := suite.Run()
	var got []string
	for _, d := range res.Diagnostics {
		got = append(got, fmt.Sprintf("%s@%d", d.Analyzer, d.Line))
	}
	want := []string{"zeroalloc@7", "rawconn@11"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("diagnostics %v, want %v", got, want)
	}
}
