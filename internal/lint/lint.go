// Package lint is a stdlib-only static-analysis engine enforcing the
// LO-FAT code contracts: zero-allocation measurement loops (zeroalloc),
// deadline-wrapped transport I/O (rawconn), nil-safe observability
// handles (obsnil), canonical round-trip-tested persistence codecs
// (walcodec), and mutex-guarded shared state (locked).
//
// The engine loads packages by shelling out to `go list -export -deps
// -json`, parses sources with go/parser, and type-checks with go/types
// against the compiler's export data — no module downloads, no
// third-party dependencies. Diagnostics can be suppressed per line with
// `//lofat:ignore <analyzer> <reason>` comments; every suppression is
// surfaced in machine-readable output so exceptions stay auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Suppression is one audited exception: an //lofat:ignore comment or a
// sanctioning function directive (rawconn, locked). Matched counts the
// diagnostics it absorbed; an ignore with Matched == 0 is itself
// reported as a diagnostic so stale suppressions cannot accumulate.
type Suppression struct {
	// Kind is "ignore", "rawconn", or "locked".
	Kind     string `json:"kind"`
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	// Target is the sanctioned function (directive suppressions only).
	Target string `json:"target,omitempty"`
	Reason string `json:"reason"`
	// Matched is how many diagnostics the suppression absorbed.
	Matched int `json:"matched"`
}

// Package is one loaded, type-checked package plus its parsed test
// files (test files are parsed but not type-checked: analyzers only
// need their ASTs, e.g. walcodec checking a decoder is exercised).
type Package struct {
	Path       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // compiled (non-test) files
	TestFiles  []*ast.File // _test.go files, AST only
	Types      *types.Package
	Info       *types.Info
	Directives *Directives

	suite *Suite
}

// Position resolves a node position in this package.
func (p *Package) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// Diag formats a diagnostic anchored at pos.
func (p *Package) Diag(analyzer string, pos token.Pos, format string, args ...any) Diagnostic {
	position := p.Position(pos)
	return Diagnostic{
		Analyzer: analyzer,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// Suite is a set of loaded packages plus the analyzers to run over
// them.
type Suite struct {
	Packages  []*Package
	Analyzers []*Analyzer

	// zeroalloc holds the FuncKey of every annotated function, keyed by
	// package path, so the zeroalloc analyzer can allow calls into other
	// annotated functions across package boundaries.
	zeroalloc map[string]map[string]bool
}

// Analyzer is one named check over a single package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Diagnostic
}

// DefaultAnalyzers returns the full LO-FAT analyzer suite.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		ZeroAllocAnalyzer(),
		RawConnAnalyzer(),
		ObsNilAnalyzer(),
		WalCodecAnalyzer(),
		LockedAnalyzer(),
	}
}

var analyzerNames = map[string]bool{
	"zeroalloc": true,
	"rawconn":   true,
	"obsnil":    true,
	"walcodec":  true,
	"locked":    true,
	"directive": true,
}

func knownAnalyzer(name string) bool { return analyzerNames[name] }

// ZeroAllocAnnotated reports whether the function key in the given
// package carries a //lofat:zeroalloc directive anywhere in the suite.
func (s *Suite) ZeroAllocAnnotated(pkgPath, funcKey string) bool {
	return s.zeroalloc[pkgPath][funcKey]
}

// index builds the cross-package directive indexes analyzers consult.
func (s *Suite) index() {
	s.zeroalloc = make(map[string]map[string]bool)
	for _, p := range s.Packages {
		set := make(map[string]bool)
		for fn, dirs := range p.Directives.Funcs {
			for _, fd := range dirs {
				if fd.Kind == DirZeroAlloc {
					set[FuncKey(fn)] = true
				}
			}
		}
		s.zeroalloc[p.Path] = set
		p.suite = s
	}
}

// Result is one full suite run: the surviving diagnostics and every
// suppression that was in effect, both sorted by file position.
type Result struct {
	Diagnostics  []Diagnostic  `json:"diagnostics"`
	Suppressions []Suppression `json:"suppressions"`
}

// Run executes every analyzer over every package, applies
// //lofat:ignore suppressions, reports malformed directives and unused
// ignores, and returns the sorted result.
func (s *Suite) Run() Result {
	s.index()

	var res Result
	for _, p := range s.Packages {
		var diags []Diagnostic
		diags = append(diags, p.Directives.Malformed...)
		for _, a := range s.Analyzers {
			diags = append(diags, a.Run(p)...)
		}

		// Apply line-based ignores: an ignore on line L suppresses
		// matching diagnostics on L (end-of-line comment) and L+1
		// (comment on its own line above). Multi-line expressions are
		// covered by placing the ignore on the first line.
		ignores := make([]*Suppression, len(p.Directives.Ignores))
		for i, ig := range p.Directives.Ignores {
			ignores[i] = &Suppression{
				Kind:     "ignore",
				Analyzer: ig.Analyzer,
				File:     ig.File,
				Line:     ig.Line,
				Reason:   ig.Reason,
			}
		}
		for _, d := range diags {
			sup := matchIgnore(ignores, d)
			if sup != nil {
				sup.Matched++
				continue
			}
			res.Diagnostics = append(res.Diagnostics, d)
		}
		for _, sup := range ignores {
			if sup.Matched == 0 {
				res.Diagnostics = append(res.Diagnostics, Diagnostic{
					Analyzer: "ignore",
					File:     sup.File,
					Line:     sup.Line,
					Col:      1,
					Message:  fmt.Sprintf("//lofat:ignore %s suppresses no diagnostic; delete it", sup.Analyzer),
				})
				continue
			}
			res.Suppressions = append(res.Suppressions, *sup)
		}

		// Sanctioning function directives are standing suppressions:
		// surface them so -json output audits every exception.
		for _, dirs := range p.Directives.Funcs {
			for _, fd := range dirs {
				if fd.Kind != DirRawConn && fd.Kind != DirLocked {
					continue
				}
				res.Suppressions = append(res.Suppressions, Suppression{
					Kind:     fd.Kind,
					Analyzer: fd.Kind,
					File:     fd.Pos.Filename,
					Line:     fd.Pos.Line,
					Target:   fd.Func,
					Reason:   fd.Reason,
					Matched:  1,
				})
			}
		}
	}

	sortDiagnostics(res.Diagnostics)
	sort.Slice(res.Suppressions, func(i, j int) bool {
		a, b := res.Suppressions[i], res.Suppressions[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return res
}

func matchIgnore(ignores []*Suppression, d Diagnostic) *Suppression {
	for _, ig := range ignores {
		if ig.File != d.File || ig.Analyzer != d.Analyzer {
			continue
		}
		if ig.Line == d.Line || ig.Line == d.Line-1 {
			return ig
		}
	}
	return nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

func sortStrings(s []string) { sort.Strings(s) }

// typeOf is a nil-tolerant shorthand for Info.TypeOf.
func (p *Package) typeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}
