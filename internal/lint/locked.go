package lint

import (
	"go/ast"
	"go/types"
)

// LockedAnalyzer checks that fields annotated //lofat:guardedby <mutex>
// are only touched under that mutex. An access is considered guarded
// when any lexically enclosing function (declaration or closure)
// either contains a <...>.mutex.Lock() / RLock() call, or is annotated
// //lofat:locked <mutex> (documenting that its caller holds the lock —
// the convention the *Locked helper suffix already encodes informally).
//
// The analysis is flow-insensitive and matches the mutex symbolically
// by name, so a field of a record struct guarded by its owning
// container's lock (fleet's device fields under shard.mu) is expressed
// as //lofat:guardedby mu. This catches the common real bug — a new
// accessor that forgets the lock entirely — not lock-ordering or
// release-before-use errors; the chaos/race suites keep sampling
// those.
func LockedAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "locked",
		Doc:  "require //lofat:guardedby fields to be accessed under their mutex",
		Run:  runLocked,
	}
}

func runLocked(p *Package) []Diagnostic {
	// Resolve annotated fields to their types.Var objects.
	guarded := make(map[types.Object]string)
	for field, mutex := range p.Directives.GuardedBy {
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				guarded[obj] = mutex
			}
		}
	}
	if len(guarded) == 0 {
		return nil
	}

	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			lc := &lockedCheck{p: p, guarded: guarded}
			lc.pushFunc(fn.Body, p.lockedMutexes(fn))
			ast.Inspect(fn.Body, lc.visit)
			diags = append(diags, lc.diags...)
		}
	}
	return diags
}

// lockedMutexes returns the mutex names fn's //lofat:locked directives
// declare held on entry.
func (p *Package) lockedMutexes(fn *ast.FuncDecl) []string {
	var names []string
	for _, fd := range p.Directives.Funcs[fn] {
		if fd.Kind == DirLocked {
			names = append(names, fd.Arg)
		}
	}
	return names
}

type lockedScope struct {
	body  *ast.BlockStmt
	holds map[string]bool // mutex names locked (or declared held) here
}

type lockedCheck struct {
	p       *Package
	guarded map[types.Object]string
	scopes  []lockedScope
	diags   []Diagnostic
}

func (lc *lockedCheck) pushFunc(body *ast.BlockStmt, declared []string) {
	holds := make(map[string]bool)
	for _, m := range declared {
		holds[m] = true
	}
	// Pre-scan the body (excluding nested closures) for Lock/RLock
	// calls: flow-insensitive, "locks it somewhere in this function".
	collectLockCalls(body, holds)
	lc.scopes = append(lc.scopes, lockedScope{body: body, holds: holds})
}

// collectLockCalls records the mutex names m for which a "<x>.m.Lock()"
// or "<x>.m.RLock()" call appears in body, not descending into nested
// function literals (a closure's locks do not protect its definer).
func collectLockCalls(body *ast.BlockStmt, holds map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		if name := finalSelectorName(sel.X); name != "" {
			holds[name] = true
		}
		return true
	})
}

// finalSelectorName returns the last identifier of a selector chain:
// "s.mu" -> "mu", "mu" -> "mu".
func finalSelectorName(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

func (lc *lockedCheck) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		lc.pushFunc(n.Body, nil)
		ast.Inspect(n.Body, lc.visit)
		lc.scopes = lc.scopes[:len(lc.scopes)-1]
		return false
	case *ast.SelectorExpr:
		sel, ok := lc.p.Info.Selections[n]
		if !ok || sel.Kind() != types.FieldVal {
			return true
		}
		mutex, isGuarded := lc.guarded[sel.Obj()]
		if !isGuarded {
			return true
		}
		if !lc.holds(mutex) {
			lc.diags = append(lc.diags, lc.p.Diag("locked", n.Sel.Pos(),
				"field %s is //lofat:guardedby %s but no enclosing function locks %s or is //lofat:locked %s",
				n.Sel.Name, mutex, mutex, mutex))
		}
	}
	return true
}

// holds reports whether any enclosing function scope locks (or
// declares held) the named mutex. Outer scopes count: a closure
// defined inside a locked region runs while the lock is held in the
// common sync-callback pattern this codebase uses.
func (lc *lockedCheck) holds(mutex string) bool {
	for _, scope := range lc.scopes {
		if scope.holds[mutex] {
			return true
		}
	}
	return false
}
