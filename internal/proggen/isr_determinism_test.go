package proggen

import (
	"strings"
	"testing"

	"lofat/internal/asm"
	"lofat/internal/cpu"
)

// isrSchedule is the seed-varied interrupt schedule the corpus tests
// run under: phase early enough to land inside short programs, period
// long enough that the main computation dominates.
func isrSchedule(prog *asm.Program, seed int64) (cpu.IRQSchedule, bool) {
	vector, ok := prog.Entry("isr")
	if !ok {
		return cpu.IRQSchedule{}, false
	}
	return cpu.IRQSchedule{
		Vector: vector,
		Phase:  uint64(16 + seed&31),
		Period: uint64(256 + (seed&7)*67),
	}, true
}

// TestGenerateSeededISRIsByteIdentical extends the seed-determinism
// contract to interrupt-driven programs: an ISR-enabled generation
// must be byte-for-byte reproducible, must actually carry the handler,
// and must not disturb the interrupt-free output for the same seed —
// the ISR draws come after every main-program draw, so switching the
// handler on cannot reshuffle the rest of the program.
func TestGenerateSeededISRIsByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		a := GenerateSeeded(seed, Config{ISR: true})
		b := GenerateSeeded(seed, Config{ISR: true})
		if a != b {
			t.Fatalf("seed %d: two ISR generations differ:\n%s\n----\n%s", seed, a, b)
		}
		if !strings.Contains(a, "isr:") || !strings.Contains(a, "mret") {
			t.Fatalf("seed %d: ISR generation lacks a handler:\n%s", seed, a)
		}
		plain := GenerateSeeded(seed, Config{})
		if strings.Contains(plain, "mret") {
			t.Fatalf("seed %d: interrupt-free generation contains mret", seed)
		}
		// The entire main program must be untouched: enabling the ISR
		// appends the handler (and its counter word) but never
		// reshuffles a draw. Everything from the main label onward in
		// the plain output must reappear verbatim, as a prefix, in the
		// ISR output's tail.
		_, plainTail, _ := strings.Cut(plain, "\nmain:")
		_, isrTail, _ := strings.Cut(a, "\nmain:")
		if !strings.HasPrefix(isrTail, plainTail) {
			t.Fatalf("seed %d: enabling ISR reshuffled the main program", seed)
		}
	}
	if GenerateSeeded(1, Config{ISR: true}) == GenerateSeeded(2, Config{ISR: true}) {
		t.Fatal("seeds 1 and 2 generated identical ISR programs")
	}
}

// TestThousandISRSeedsAssembleAndTerminate is the ISR analogue of the
// 1000-seed corpus soak: every ISR-enabled seed assembles, runs to a
// clean halt under a live seed-derived interrupt schedule, and — the
// repro-recipe contract — an identical re-run replays the interrupt
// schedule exactly: same dispatch count, same cycle count, same exit.
func TestThousandISRSeedsAssembleAndTerminate(t *testing.T) {
	seeds := int64(1000)
	if testing.Short() {
		seeds = 250
	}
	var dispatched int64
	for seed := int64(0); seed < seeds; seed++ {
		src := GenerateSeeded(seed, Config{ISR: true})
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
		}
		run := func() *cpu.CPU {
			mach, err := cpu.Load(prog, cpu.LoadOptions{})
			if err != nil {
				t.Fatalf("seed %d: load: %v", seed, err)
			}
			sched, ok := isrSchedule(prog, seed)
			if !ok {
				t.Fatalf("seed %d: ISR program has no isr label", seed)
			}
			mach.CPU.IRQ = sched
			if err := mach.CPU.Run(3_000_000); err != nil {
				t.Fatalf("seed %d: run: %v\n%s", seed, err, src)
			}
			if !mach.CPU.Halted {
				t.Fatalf("seed %d: did not halt", seed)
			}
			return mach.CPU
		}
		first := run()
		dispatched += int64(first.IRQsTaken())

		// Schedule replay identity on a deterministic sample of the
		// corpus (a full double-run would double the test's cost for
		// no additional coverage of the generator itself).
		if seed%16 == 0 {
			second := run()
			if first.IRQsTaken() != second.IRQsTaken() ||
				first.Cycle != second.Cycle ||
				first.Retired != second.Retired ||
				first.ExitCode != second.ExitCode {
				t.Fatalf("seed %d: interrupt schedule did not replay identically: "+
					"irqs %d/%d cycles %d/%d retired %d/%d exit %d/%d",
					seed, first.IRQsTaken(), second.IRQsTaken(),
					first.Cycle, second.Cycle, first.Retired, second.Retired,
					first.ExitCode, second.ExitCode)
			}
		}
	}
	// The schedules must actually fire across the corpus — a phase that
	// never lands would turn this into the interrupt-free test again.
	if dispatched == 0 {
		t.Fatal("no seed in the corpus ever dispatched an interrupt")
	}
}
