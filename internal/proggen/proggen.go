// Package proggen generates random structured RV32IM programs for
// property-based testing of the whole LO-FAT stack. Programs are
// terminating by construction (every loop is counter-driven with a
// small constant trip count) and exercise the control-flow shapes the
// hardware must handle: nested counted loops, if/else diamonds,
// data-dependent branches, leaf calls, and indirect calls through a
// jump table.
//
// The generator exists to check system-level invariants no hand-written
// test enumerates:
//
//   - every edge executed by the core is CFG-valid per the verifier's
//     static analysis (soundness of internal/cfg.ValidEdge);
//   - honest loop records always pass the verifier's path walks;
//   - measurements are deterministic and conservation holds
//     (hashed + deduplicated = events).
package proggen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program shape.
type Config struct {
	// MaxDepth is the maximum loop/if nesting depth (default 3,
	// matching the hardware's tracked depth).
	MaxDepth int
	// MaxStmts is the maximum statements per block (default 4).
	MaxStmts int
	// Helpers is the number of callable leaf functions (default 2).
	Helpers int
	// NoIndirect disables jump-table indirect calls; the zero value
	// generates them, so the default corpus exercises the CAM-encoded
	// indirect-target path.
	NoIndirect bool
	// ISR appends an interrupt handler (label "isr", terminated by
	// mret) and an isr_count data word the handler increments. The
	// handler uses only t4/t5/t6, which the main program and helpers
	// never touch, so it can preempt any instruction boundary without
	// perturbing the interrupted computation. The handler is emitted
	// after everything else: ISR-disabled output is byte-identical to a
	// generator without the feature.
	ISR bool
}

func (c *Config) fill() {
	if c.MaxDepth == 0 {
		c.MaxDepth = 3
	}
	if c.MaxStmts == 0 {
		c.MaxStmts = 4
	}
	if c.Helpers == 0 {
		c.Helpers = 2
	}
}

// generator carries emission state.
type generator struct {
	cfg    Config
	r      *rand.Rand
	b      strings.Builder
	nLabel int
	// loop counters use s2..s6 indexed by depth; s0 is the running
	// checksum, s1 a scratch accumulator.
}

// GenerateSeeded produces the program for a seed: the canonical
// seed → program mapping shared by every consumer that needs
// reproducibility (the conformance corpus, regression tests, repro
// recipes printed on failures). Same seed, same config ⇒ byte-identical
// program text.
func GenerateSeeded(seed int64, cfg Config) string {
	return Generate(rand.New(rand.NewSource(seed)), cfg)
}

// Generate produces a self-contained assembly program. The program's
// exit code is a data-dependent checksum, so functional determinism is
// observable.
func Generate(r *rand.Rand, cfg Config) string {
	cfg.fill()
	g := &generator{cfg: cfg, r: r}

	g.emit("\t.data")
	g.emit("table:")
	for i := 0; i < cfg.Helpers; i++ {
		g.emit("\t.word helper%d", i)
	}
	g.emit("scratch:")
	g.emit("\t.space 64")
	if cfg.ISR {
		g.emit("isr_count:")
		g.emit("\t.word 0")
	}
	g.emit("\t.text")
	g.emit("main:")
	g.emit("\tli   s0, %d", r.Intn(100)) // checksum seed

	g.block(0)

	g.emit("\tmv   a0, s0")
	g.emit("\tli   a7, 93")
	g.emit("\tecall")

	for i := 0; i < cfg.Helpers; i++ {
		g.helper(i)
	}
	if cfg.ISR {
		g.isr()
	}
	return g.b.String()
}

// isr emits the interrupt handler: bump isr_count, optionally do some
// seed-varied private work, return via mret. Only t4/t5/t6 are
// touched — registers no generated main-line code ever uses — so the
// handler is transparent to the interrupted computation no matter
// where the schedule lands. The draws for the variant happen after
// every main-program draw, keeping the ISR-free prefix byte-identical.
func (g *generator) isr() {
	g.emit("isr:")
	g.emit("\tla   t4, isr_count")
	g.emit("\tlw   t5, 0(t4)")
	g.emit("\taddi t5, t5, 1")
	g.emit("\tsw   t5, 0(t4)")
	switch g.r.Intn(3) {
	case 0:
		// minimal handler: just the counter
	case 1:
		g.emit("\txori t6, t5, %d", g.r.Intn(1024))
		g.emit("\tandi t6, t6, 255")
	case 2:
		head := g.label("il")
		g.emit("\tli   t6, %d", 2+g.r.Intn(3))
		g.emit("%s:", head)
		g.emit("\taddi t6, t6, -1")
		g.emit("\tbnez t6, %s", head)
	}
	g.emit("\tmret")
}

func (g *generator) emit(format string, args ...interface{}) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *generator) label(prefix string) string {
	g.nLabel++
	return fmt.Sprintf("%s_%d", prefix, g.nLabel)
}

// counterReg returns the loop-counter register for a nesting depth.
func counterReg(depth int) string {
	regs := []string{"s2", "s3", "s4", "s5", "s6", "s7"}
	return regs[depth%len(regs)]
}

// block emits 1..MaxStmts statements at the given nesting depth.
func (g *generator) block(depth int) {
	n := 1 + g.r.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(depth)
	}
}

func (g *generator) stmt(depth int) {
	choices := []func(int){g.arith, g.ifElse, g.dataBranch}
	if depth < g.cfg.MaxDepth {
		choices = append(choices, g.countedLoop, g.countedLoop, g.doWhile)
	}
	if g.cfg.Helpers > 0 {
		choices = append(choices, g.call)
		if !g.cfg.NoIndirect {
			choices = append(choices, g.indirectCall)
		}
	}
	choices[g.r.Intn(len(choices))](depth)
}

// arith mixes the checksum.
func (g *generator) arith(int) {
	switch g.r.Intn(4) {
	case 0:
		g.emit("\taddi s0, s0, %d", 1+g.r.Intn(63))
	case 1:
		g.emit("\tslli t0, s0, %d", 1+g.r.Intn(4))
		g.emit("\tadd  s0, s0, t0")
	case 2:
		g.emit("\txori s0, s0, %d", g.r.Intn(2048))
	case 3:
		g.emit("\tli   t0, %d", 3+g.r.Intn(61))
		g.emit("\tmul  s0, s0, t0")
		g.emit("\tsrli s0, s0, 1")
	}
}

// ifElse emits a checksum-dependent diamond.
func (g *generator) ifElse(depth int) {
	elseL, joinL := g.label("else"), g.label("join")
	g.emit("\tandi t0, s0, %d", 1+g.r.Intn(7))
	g.emit("\tbeqz t0, %s", elseL)
	g.arith(depth)
	g.emit("\tj    %s", joinL)
	g.emit("%s:", elseL)
	g.arith(depth)
	g.emit("%s:", joinL)
}

// dataBranch emits a forward branch without an else arm.
func (g *generator) dataBranch(depth int) {
	skip := g.label("skip")
	g.emit("\tandi t0, s0, %d", 1+g.r.Intn(15))
	g.emit("\tbnez t0, %s", skip)
	g.arith(depth)
	g.emit("%s:", skip)
}

// countedLoop emits a top-test while loop with a constant trip count.
func (g *generator) countedLoop(depth int) {
	head, exit := g.label("loop"), g.label("done")
	cr := counterReg(depth)
	g.emit("\tli   %s, %d", cr, 1+g.r.Intn(6))
	g.emit("%s:", head)
	g.emit("\tbeqz %s, %s", cr, exit)
	g.block(depth + 1)
	g.emit("\taddi %s, %s, -1", cr, cr)
	g.emit("\tj    %s", head)
	g.emit("%s:", exit)
}

// doWhile emits a bottom-test loop.
func (g *generator) doWhile(depth int) {
	head := g.label("dw")
	cr := counterReg(depth)
	g.emit("\tli   %s, %d", cr, 1+g.r.Intn(5))
	g.emit("%s:", head)
	g.block(depth + 1)
	g.emit("\taddi %s, %s, -1", cr, cr)
	g.emit("\tbnez %s, %s", cr, head)
}

// call emits a direct call to a random helper.
func (g *generator) call(int) {
	g.emit("\tmv   a0, s0")
	g.emit("\tcall helper%d", g.r.Intn(g.cfg.Helpers))
	g.emit("\tadd  s0, s0, a0")
}

// indirectCall dispatches through the jump table with a checksum-
// dependent index.
func (g *generator) indirectCall(int) {
	g.emit("\tli   t0, %d", g.cfg.Helpers)
	g.emit("\tremu t1, s0, t0")
	g.emit("\tslli t1, t1, 2")
	g.emit("\tla   t2, table")
	g.emit("\tadd  t2, t2, t1")
	g.emit("\tlw   t3, 0(t2)")
	g.emit("\tmv   a0, s0")
	g.emit("\tjalr ra, 0(t3)")
	g.emit("\tadd  s0, s0, a0")
}

// helper emits a leaf function: some arithmetic on a0 and optionally a
// small private loop (using t-registers only, so it never clobbers the
// callers' counters).
func (g *generator) helper(i int) {
	g.emit("helper%d:", i)
	switch g.r.Intn(3) {
	case 0:
		g.emit("\taddi a0, a0, %d", 1+g.r.Intn(31))
	case 1:
		g.emit("\txori a0, a0, %d", g.r.Intn(1024))
		g.emit("\tandi a0, a0, 1023")
	case 2:
		head := g.label("hl")
		g.emit("\tli   t0, %d", 2+g.r.Intn(4))
		g.emit("%s:", head)
		g.emit("\taddi a0, a0, 7")
		g.emit("\taddi t0, t0, -1")
		g.emit("\tbnez t0, %s", head)
	}
	g.emit("\tandi a0, a0, 255")
	g.emit("\tret")
}
