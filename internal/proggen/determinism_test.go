package proggen

import (
	"testing"

	"lofat/internal/asm"
	"lofat/internal/cpu"
)

// Seed determinism is the contract the conformance harness's repro
// recipes stand on: a seed printed by a failing run must regenerate
// the exact program that failed, byte for byte, on any machine.
func TestGenerateSeededIsByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		a := GenerateSeeded(seed, Config{})
		b := GenerateSeeded(seed, Config{})
		if a != b {
			t.Fatalf("seed %d: two generations differ:\n%s\n----\n%s", seed, a, b)
		}
	}
	// Distinct seeds must not collapse onto one program (a frozen RNG
	// would pass the identity check above).
	if GenerateSeeded(1, Config{}) == GenerateSeeded(2, Config{}) {
		t.Fatal("seeds 1 and 2 generated identical programs")
	}
}

// Every seed of the corpus assembles and terminates cleanly within the
// instruction budget — 1000 seeds in full mode, a sample under -short.
func TestThousandSeedsAssembleAndTerminate(t *testing.T) {
	seeds := int64(1000)
	if testing.Short() {
		seeds = 250
	}
	for seed := int64(0); seed < seeds; seed++ {
		src := GenerateSeeded(seed, Config{})
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
		}
		mach, err := cpu.Load(prog, cpu.LoadOptions{})
		if err != nil {
			t.Fatalf("seed %d: load: %v", seed, err)
		}
		if err := mach.CPU.Run(3_000_000); err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, src)
		}
		if !mach.CPU.Halted {
			t.Fatalf("seed %d: did not halt", seed)
		}
	}
}
