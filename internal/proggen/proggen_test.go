package proggen

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"lofat/internal/asm"
	"lofat/internal/attest"
	"lofat/internal/cfg"
	"lofat/internal/core"
	"lofat/internal/cpu"
	"lofat/internal/isa"
	"lofat/internal/sig"
	"lofat/internal/trace"
)

const seeds = 60

func genProgram(t *testing.T, seed int64) (*asm.Program, string) {
	t.Helper()
	src := Generate(rand.New(rand.NewSource(seed)), Config{})
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
	}
	return prog, src
}

func buildGraph(t *testing.T, prog *asm.Program) *cfg.Graph {
	t.Helper()
	words := make([]uint32, 0, len(prog.Data)/4)
	for i := 0; i+4 <= len(prog.Data); i += 4 {
		words = append(words, binary.LittleEndian.Uint32(prog.Data[i:]))
	}
	g, err := cfg.Build(prog.Text, prog.TextBase, words)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Property: every generated program assembles, terminates, and is
// deterministic (same exit code, cycles, and measurement twice).
func TestGeneratedProgramsTerminateDeterministically(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		prog, src := genProgram(t, seed)
		run := func() (uint32, uint64, core.Measurement) {
			mach, err := cpu.Load(prog, cpu.LoadOptions{})
			if err != nil {
				t.Fatal(err)
			}
			dev := core.NewDevice(core.Config{})
			mach.CPU.Trace = dev
			if err := mach.CPU.Run(3_000_000); err != nil {
				t.Fatalf("seed %d: %v\n%s", seed, err, src)
			}
			return mach.CPU.ExitCode, mach.CPU.Cycle, dev.Finalize()
		}
		e1, c1, m1 := run()
		e2, c2, m2 := run()
		if e1 != e2 || c1 != c2 || m1.Hash != m2.Hash {
			t.Fatalf("seed %d: nondeterministic run", seed)
		}
	}
}

// Property: every control-flow edge the core executes is valid per the
// verifier's static CFG analysis — ValidEdge never rejects a real edge
// (soundness; completeness is what catches attacks).
func TestExecutedEdgesAreCFGValid(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		prog, src := genProgram(t, seed)
		g := buildGraph(t, prog)
		mach, err := cpu.Load(prog, cpu.LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		bad := 0
		mach.CPU.Trace = trace.SinkFunc(func(e trace.Event) {
			if e.Kind == isa.KindNone {
				return
			}
			src, dest := e.SrcDest()
			if !g.ValidEdge(src, dest) {
				bad++
				t.Errorf("seed %d: executed edge %#x->%#x (%v) rejected by CFG",
					seed, src, dest, e.Kind)
			}
		})
		if err := mach.CPU.Run(3_000_000); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if bad > 3 {
			t.Fatalf("seed %d: too many invalid edges; aborting", seed)
		}
	}
}

// Property: conservation — every control-flow event is either hashed or
// deduplicated; the device never loses an edge; no stalls; no drops.
func TestDeviceConservation(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		prog, _ := genProgram(t, seed)
		m, _, err := attest.Measure(prog, core.Config{}, nil, 3_000_000)
		if err != nil {
			t.Fatal(err)
		}
		st := m.Stats
		if st.HashedPairs+st.DedupedPairs != st.ControlFlowEvents {
			t.Errorf("seed %d: hashed %d + deduped %d != events %d",
				seed, st.HashedPairs, st.DedupedPairs, st.ControlFlowEvents)
		}
		if st.ProcessorStallCycles != 0 {
			t.Errorf("seed %d: stalls %d", seed, st.ProcessorStallCycles)
		}
		if st.Engine.Dropped != 0 {
			t.Errorf("seed %d: engine dropped %d", seed, st.Engine.Dropped)
		}
		if st.LoopsDetected != st.LoopExits {
			t.Errorf("seed %d: pushes %d != exits %d (post-finalize)",
				seed, st.LoopsDetected, st.LoopExits)
		}
	}
}

// Property: honest loop metadata never fails the verifier's CFG path
// walks — the monitor's encoding and the walker's decoding agree on
// every loop the walker can decide.
func TestHonestRecordsPassPathWalks(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		prog, src := genProgram(t, seed)
		g := buildGraph(t, prog)
		m, _, err := attest.Measure(prog, core.Config{}, nil, 3_000_000)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range m.Loops {
			for _, wr := range g.ValidateRecord(rec, 4) {
				if wr.Verdict == cfg.PathInvalid {
					t.Errorf("seed %d: honest record %v flagged: %s\n%s",
						seed, rec, wr.Reason, src)
				}
			}
		}
	}
}

// Property: the full protocol accepts every honest generated program.
func TestHonestAttestationAlwaysAccepted(t *testing.T) {
	for seed := int64(0); seed < seeds; seed += 4 { // protocol is heavier; sample
		prog, src := genProgram(t, seed)
		keys, err := sig.GenerateKeyStore(rand.New(rand.NewSource(seed + 1)))
		if err != nil {
			t.Fatal(err)
		}
		p := attest.NewProver(prog, core.Config{}, keys)
		v, err := attest.NewVerifier(prog, core.Config{}, keys.Public(),
			rand.New(rand.NewSource(seed+2)))
		if err != nil {
			t.Fatal(err)
		}
		ch, err := v.NewChallenge(nil)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Attest(ch)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if res := v.Verify(ch, rep); !res.Accepted {
			t.Errorf("seed %d: honest program rejected: %v %v\n%s",
				seed, res, res.Findings, src)
		}
	}
}

// Property: random data corruption mid-run either leaves the path
// unchanged or is caught — it can never be accepted with a different
// measurement. (The verifier compares measurements exactly, so this is
// the no-false-negative property at measurement level.)
func TestRandomCorruptionNeverAcceptedWithDifferentPath(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		prog, _ := genProgram(t, seed)
		keys, err := sig.GenerateKeyStore(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		p := attest.NewProver(prog, core.Config{}, keys)
		v, err := attest.NewVerifier(prog, core.Config{}, keys.Public(),
			rand.New(rand.NewSource(seed+99)))
		if err != nil {
			t.Fatal(err)
		}

		// Adversary: after ~200 instructions, flip a random bit in the
		// scratch/data area once.
		rng := rand.New(rand.NewSource(seed * 7))
		scratch := prog.Labels["scratch"]
		count := 0
		p.Adversary = func(m *cpu.Machine) error {
			count++
			if count == 200 {
				addr := scratch + uint32(rng.Intn(16))*4
				val, err := m.Mem.Peek(addr)
				if err != nil {
					return err
				}
				return m.Mem.Poke(addr, val^(1<<uint(rng.Intn(32))))
			}
			return nil
		}

		ch, err := v.NewChallenge(nil)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Attest(ch)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := v.Verify(ch, rep)
		// The generated programs never read scratch, so the path is
		// unchanged and the run must be ACCEPTED — corruption of dead
		// data is invisible to CFA, exactly as the paper scopes it.
		if !res.Accepted {
			t.Errorf("seed %d: dead-data corruption rejected: %v %v", seed, res, res.Findings)
		}
	}
}
