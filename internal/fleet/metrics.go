package fleet

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"lofat/internal/attest"
	"lofat/internal/stream"
)

// numClasses covers attest.ClassAccepted..ClassNonControlData.
const numClasses = int(attest.ClassNonControlData) + 1

// Metrics aggregates fleet-wide counters. All fields are atomics so the
// worker pool updates them without a shared lock.
type Metrics struct {
	verified atomic.Uint64
	accepted atomic.Uint64
	rejected atomic.Uint64
	errors   atomic.Uint64
	skipped  atomic.Uint64
	sweeps   atomic.Uint64
	byClass  [numClasses]atomic.Uint64

	// Streaming counters (segmented attestation rounds).
	streamRounds     atomic.Uint64
	segmentsVerified atomic.Uint64
	earlyAborts      atomic.Uint64

	// Transport-failure classes (each failed round increments errors
	// plus exactly one of these) and resilience counters.
	dialFailures   atomic.Uint64
	timeouts       atomic.Uint64
	connDrops      atomic.Uint64
	protocolErrors atomic.Uint64
	localErrors    atomic.Uint64
	retries        atomic.Uint64
	breakerTrips   atomic.Uint64
	breakerResets  atomic.Uint64
	breakerSkips   atomic.Uint64
	breakerProbes  atomic.Uint64
}

// NewMetrics returns zeroed metrics.
func NewMetrics() *Metrics { return &Metrics{} }

func (m *Metrics) record(res attest.Result) {
	m.verified.Add(1)
	if res.Accepted {
		m.accepted.Add(1)
	} else {
		m.rejected.Add(1)
	}
	if c := int(res.Class); c < numClasses {
		m.byClass[c].Add(1)
	}
}

// recordFailure buckets a failed round (all attempts exhausted) into
// the per-class transport-failure counters: could not dial, peer
// stalled past a deadline, connection dropped mid-exchange, or the
// peer spoke a broken protocol.
func (m *Metrics) recordFailure(err error) {
	m.errors.Add(1)
	var de *DialError
	var te *attest.TransportError
	var le *attest.LocalError
	switch {
	case errors.As(err, &de):
		m.dialFailures.Add(1)
	case errors.As(err, &te) && te.Timeout():
		m.timeouts.Add(1)
	case errors.As(err, &te):
		m.connDrops.Add(1)
	case errors.As(err, &le):
		m.localErrors.Add(1)
	default:
		m.protocolErrors.Add(1)
	}
}

func (m *Metrics) recordStream(res stream.Result) {
	m.record(res.Result)
	m.streamRounds.Add(1)
	m.segmentsVerified.Add(uint64(res.Segments))
	if res.EarlyAbort {
		m.earlyAborts.Add(1)
	}
}

// MetricsSnapshot is a point-in-time view of the fleet counters plus
// cache and registry gauges.
type MetricsSnapshot struct {
	// Verified counts completed verifications (accepted + rejected).
	Verified uint64
	Accepted uint64
	Rejected uint64
	// Errors counts rounds lost to transport or attestation failures.
	Errors uint64
	// Skipped counts rounds dropped because the device was quarantined.
	Skipped uint64
	// Sweeps counts completed fleet sweeps.
	Sweeps uint64
	// ByClass breaks verified rounds down per attack classification.
	ByClass map[attest.Classification]uint64

	// StreamRounds counts rounds verified over the streaming protocol;
	// SegmentsVerified sums the segment reports those rounds consumed;
	// EarlyAborts counts streamed rounds rejected at a divergent
	// segment while the device was still running.
	StreamRounds     uint64
	SegmentsVerified uint64
	EarlyAborts      uint64

	// Transport-failure classes: every failed round (all attempts
	// exhausted) lands in exactly one of these. DialFailures could not
	// open a transport; Timeouts hit a per-phase deadline (stalled
	// peer); ConnDrops lost the connection mid-exchange; ProtocolErrors
	// cover peers speaking a broken or hostile protocol, plus rounds
	// unusable for other non-transport reasons (unknown device);
	// LocalErrors failed verifier-side before any bytes moved (golden
	// run, cache, entropy) and say nothing about the device — they
	// never advance a breaker.
	DialFailures   uint64
	Timeouts       uint64
	ConnDrops      uint64
	ProtocolErrors uint64
	LocalErrors    uint64
	// Retries counts extra transport attempts beyond the first.
	Retries uint64
	// BreakerTrips / BreakerResets count breaker state transitions;
	// BreakerSkips are rounds dropped on an open breaker (no timeout
	// budget paid); BreakerProbes are half-open probe rounds.
	BreakerTrips  uint64
	BreakerResets uint64
	BreakerSkips  uint64
	BreakerProbes uint64

	// CacheHits / CacheMisses / CacheHitRate mirror the shared
	// measurement cache (zero when the cache is disabled).
	CacheHits    uint64
	CacheMisses  uint64
	CacheHitRate float64

	// Devices / Quarantined / Tripped are registry gauges.
	Devices     int
	Quarantined int
	Tripped     int
}

// Metrics snapshots the service counters.
func (s *Service) Metrics() MetricsSnapshot {
	m := s.metrics
	snap := MetricsSnapshot{
		Verified: m.verified.Load(),
		Accepted: m.accepted.Load(),
		Rejected: m.rejected.Load(),
		Errors:   m.errors.Load(),
		Skipped:  m.skipped.Load(),
		Sweeps:   m.sweeps.Load(),
		ByClass:  make(map[attest.Classification]uint64, numClasses),

		StreamRounds:     m.streamRounds.Load(),
		SegmentsVerified: m.segmentsVerified.Load(),
		EarlyAborts:      m.earlyAborts.Load(),

		DialFailures:   m.dialFailures.Load(),
		Timeouts:       m.timeouts.Load(),
		ConnDrops:      m.connDrops.Load(),
		ProtocolErrors: m.protocolErrors.Load(),
		LocalErrors:    m.localErrors.Load(),
		Retries:        m.retries.Load(),
		BreakerTrips:   m.breakerTrips.Load(),
		BreakerResets:  m.breakerResets.Load(),
		BreakerSkips:   m.breakerSkips.Load(),
		BreakerProbes:  m.breakerProbes.Load(),

		Devices:     s.reg.Len(),
		Quarantined: s.reg.count(func(d *device) bool { return d.quarantined }),
		Tripped:     s.reg.count(func(d *device) bool { return d.breaker == BreakerTripped }),
	}
	for c := 0; c < numClasses; c++ {
		if n := m.byClass[c].Load(); n > 0 {
			snap.ByClass[attest.Classification(c)] = n
		}
	}
	if s.cache != nil {
		snap.CacheHits = s.cache.Hits()
		snap.CacheMisses = s.cache.Misses()
		snap.CacheHitRate = s.cache.HitRate()
	}
	return snap
}

// String renders the snapshot as a short operator-readable summary.
func (snap MetricsSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d devices (%d quarantined), %d sweeps, %d verified (%d accepted / %d rejected), %d errors, %d skipped",
		snap.Devices, snap.Quarantined, snap.Sweeps, snap.Verified, snap.Accepted, snap.Rejected, snap.Errors, snap.Skipped)
	if snap.StreamRounds > 0 {
		fmt.Fprintf(&b, ", %d streamed (%d segments, %d early aborts)",
			snap.StreamRounds, snap.SegmentsVerified, snap.EarlyAborts)
	}
	if snap.Errors > 0 || snap.Retries > 0 {
		fmt.Fprintf(&b, ", transport: %d dial / %d timeout / %d drop / %d protocol / %d local, %d retries",
			snap.DialFailures, snap.Timeouts, snap.ConnDrops, snap.ProtocolErrors, snap.LocalErrors, snap.Retries)
	}
	if snap.BreakerTrips > 0 || snap.Tripped > 0 {
		fmt.Fprintf(&b, ", breaker: %d tripped now (%d trips, %d skips, %d probes, %d resets)",
			snap.Tripped, snap.BreakerTrips, snap.BreakerSkips, snap.BreakerProbes, snap.BreakerResets)
	}
	if snap.CacheHits+snap.CacheMisses > 0 {
		fmt.Fprintf(&b, ", cache %.0f%% hit (%d/%d)",
			100*snap.CacheHitRate, snap.CacheHits, snap.CacheHits+snap.CacheMisses)
	}
	if len(snap.ByClass) > 0 {
		classes := make([]attest.Classification, 0, len(snap.ByClass))
		for c := range snap.ByClass {
			classes = append(classes, c)
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
		parts := make([]string, len(classes))
		for i, c := range classes {
			parts[i] = fmt.Sprintf("%v=%d", c, snap.ByClass[c])
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(parts, " "))
	}
	return b.String()
}
