package fleet

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"lofat/internal/attest"
	"lofat/internal/obs"
	"lofat/internal/stream"
)

// numClasses covers attest.ClassAccepted..ClassNonControlData.
const numClasses = int(attest.ClassNonControlData) + 1

// failureClass buckets a failed round (all attempts exhausted) by what
// killed it. Each failed round lands in exactly one class.
type failureClass uint8

const (
	failDial failureClass = iota
	failTimeout
	failDrop
	failLocal
	failProtocol
)

func (f failureClass) String() string {
	switch f {
	case failDial:
		return "dial"
	case failTimeout:
		return "timeout"
	case failDrop:
		return "conn-drop"
	case failLocal:
		return "local"
	}
	return "protocol"
}

// classifyFailure maps a round error to its failure class: could not
// dial, peer stalled past a deadline, connection dropped mid-exchange,
// verifier-side fault, or a peer speaking a broken protocol.
func classifyFailure(err error) failureClass {
	var de *DialError
	var te *attest.TransportError
	var le *attest.LocalError
	switch {
	case errors.As(err, &de):
		return failDial
	case errors.As(err, &te) && te.Timeout():
		return failTimeout
	case errors.As(err, &te):
		return failDrop
	case errors.As(err, &le):
		return failLocal
	}
	return failProtocol
}

// Metrics aggregates fleet-wide counters and latency histograms. All
// fields are atomics so the worker pool updates them without a shared
// lock; register exposes them through an obs.Registry for HTTP
// exposition without changing how they are written.
type Metrics struct {
	verified obs.Counter
	accepted obs.Counter
	rejected obs.Counter
	errors   obs.Counter
	skipped  obs.Counter
	sweeps   obs.Counter
	byClass  [numClasses]obs.Counter
	// unknownClass counts verdicts whose classification is outside the
	// known range — a protocol evolution signal that previously vanished
	// silently.
	unknownClass obs.Counter

	// Streaming counters (segmented attestation rounds).
	streamRounds     obs.Counter
	segmentsVerified obs.Counter
	earlyAborts      obs.Counter

	// Transport-failure classes (each failed round increments errors
	// plus exactly one of these) and resilience counters.
	dialFailures   obs.Counter
	timeouts       obs.Counter
	connDrops      obs.Counter
	protocolErrors obs.Counter
	localErrors    obs.Counter
	retries        obs.Counter
	breakerTrips   obs.Counter
	breakerResets  obs.Counter
	breakerSkips   obs.Counter
	breakerProbes  obs.Counter

	// Latency histograms (nanoseconds) and pipeline gauges.
	roundLatency  obs.Histogram
	queueWait     obs.Histogram
	segmentVerify obs.Histogram
	sweepDuration obs.Histogram
	workersBusy   obs.Gauge
}

// NewMetrics returns zeroed metrics.
func NewMetrics() *Metrics { return &Metrics{} }

// register exposes every counter, gauge and histogram through reg under
// stable lofat_fleet_* names. Registration is idempotent.
func (m *Metrics) register(reg *obs.Registry) {
	reg.RegisterCounter("lofat_fleet_verified_total", "", "Completed verifications (accepted + rejected).", &m.verified)
	reg.RegisterCounter("lofat_fleet_accepted_total", "", "Rounds accepted.", &m.accepted)
	reg.RegisterCounter("lofat_fleet_rejected_total", "", "Rounds rejected.", &m.rejected)
	reg.RegisterCounter("lofat_fleet_errors_total", "", "Rounds lost to transport or attestation failures.", &m.errors)
	reg.RegisterCounter("lofat_fleet_skipped_total", "", "Rounds dropped for quarantined devices.", &m.skipped)
	reg.RegisterCounter("lofat_fleet_sweeps_total", "", "Completed fleet sweeps.", &m.sweeps)
	for c := 0; c < numClasses; c++ {
		labels := fmt.Sprintf("class=%q", attest.Classification(c).String())
		reg.RegisterCounter("lofat_fleet_class_total", labels, "Verdicts by attack classification.", &m.byClass[c])
	}
	reg.RegisterCounter("lofat_fleet_class_total", `class="unknown"`, "Verdicts by attack classification.", &m.unknownClass)

	reg.RegisterCounter("lofat_fleet_stream_rounds_total", "", "Rounds verified over the streaming protocol.", &m.streamRounds)
	reg.RegisterCounter("lofat_fleet_segments_verified_total", "", "Segment reports consumed by streamed rounds.", &m.segmentsVerified)
	reg.RegisterCounter("lofat_fleet_early_aborts_total", "", "Streamed rounds rejected mid-run at a divergent segment.", &m.earlyAborts)

	reg.RegisterCounter("lofat_fleet_failures_total", `class="dial"`, "Failed rounds by transport-failure class.", &m.dialFailures)
	reg.RegisterCounter("lofat_fleet_failures_total", `class="timeout"`, "Failed rounds by transport-failure class.", &m.timeouts)
	reg.RegisterCounter("lofat_fleet_failures_total", `class="conn-drop"`, "Failed rounds by transport-failure class.", &m.connDrops)
	reg.RegisterCounter("lofat_fleet_failures_total", `class="protocol"`, "Failed rounds by transport-failure class.", &m.protocolErrors)
	reg.RegisterCounter("lofat_fleet_failures_total", `class="local"`, "Failed rounds by transport-failure class.", &m.localErrors)
	reg.RegisterCounter("lofat_fleet_retries_total", "", "Extra transport attempts beyond the first.", &m.retries)
	reg.RegisterCounter("lofat_fleet_breaker_trips_total", "", "Circuit breaker trips.", &m.breakerTrips)
	reg.RegisterCounter("lofat_fleet_breaker_resets_total", "", "Circuit breaker resets.", &m.breakerResets)
	reg.RegisterCounter("lofat_fleet_breaker_skips_total", "", "Rounds dropped on an open breaker.", &m.breakerSkips)
	reg.RegisterCounter("lofat_fleet_breaker_probes_total", "", "Half-open breaker probe rounds.", &m.breakerProbes)

	reg.RegisterHistogram("lofat_fleet_round_latency_ns", "", "End-to-end device round latency.", &m.roundLatency)
	reg.RegisterHistogram("lofat_fleet_queue_wait_ns", "", "Pipeline wait between enqueue and worker pickup.", &m.queueWait)
	reg.RegisterHistogram("lofat_fleet_segment_verify_ns", "", "Per-segment verification time (streamed rounds).", &m.segmentVerify)
	reg.RegisterHistogram("lofat_fleet_sweep_duration_ns", "", "Whole-sweep duration per program.", &m.sweepDuration)
	reg.RegisterGauge("lofat_fleet_workers_busy", "", "Workers currently processing a round.", &m.workersBusy)
}

func (m *Metrics) record(res attest.Result) {
	m.verified.Add(1)
	if res.Accepted {
		m.accepted.Add(1)
	} else {
		m.rejected.Add(1)
	}
	if c := int(res.Class); c < numClasses {
		m.byClass[c].Add(1)
	} else {
		m.unknownClass.Add(1)
	}
}

// recordFailure buckets a failed round into the per-class
// transport-failure counters and returns the class for flight
// recording.
func (m *Metrics) recordFailure(err error) failureClass {
	m.errors.Add(1)
	fc := classifyFailure(err)
	switch fc {
	case failDial:
		m.dialFailures.Add(1)
	case failTimeout:
		m.timeouts.Add(1)
	case failDrop:
		m.connDrops.Add(1)
	case failLocal:
		m.localErrors.Add(1)
	default:
		m.protocolErrors.Add(1)
	}
	return fc
}

func (m *Metrics) recordStream(res stream.Result) {
	m.record(res.Result)
	m.streamRounds.Add(1)
	m.segmentsVerified.Add(uint64(res.Segments))
	if res.EarlyAbort {
		m.earlyAborts.Add(1)
	}
}

// MetricsSnapshot is a point-in-time view of the fleet counters plus
// cache and registry gauges.
type MetricsSnapshot struct {
	// Verified counts completed verifications (accepted + rejected).
	Verified uint64
	Accepted uint64
	Rejected uint64
	// Errors counts rounds lost to transport or attestation failures.
	Errors uint64
	// Skipped counts rounds dropped because the device was quarantined.
	Skipped uint64
	// Sweeps counts completed fleet sweeps.
	Sweeps uint64
	// ByClass breaks verified rounds down per attack classification.
	ByClass map[attest.Classification]uint64
	// UnknownClass counts verdicts whose classification fell outside
	// the known range (future protocol versions, corrupted verdicts).
	UnknownClass uint64

	// StreamRounds counts rounds verified over the streaming protocol;
	// SegmentsVerified sums the segment reports those rounds consumed;
	// EarlyAborts counts streamed rounds rejected at a divergent
	// segment while the device was still running.
	StreamRounds     uint64
	SegmentsVerified uint64
	EarlyAborts      uint64

	// Transport-failure classes: every failed round (all attempts
	// exhausted) lands in exactly one of these. DialFailures could not
	// open a transport; Timeouts hit a per-phase deadline (stalled
	// peer); ConnDrops lost the connection mid-exchange; ProtocolErrors
	// cover peers speaking a broken or hostile protocol, plus rounds
	// unusable for other non-transport reasons (unknown device);
	// LocalErrors failed verifier-side before any bytes moved (golden
	// run, cache, entropy) and say nothing about the device — they
	// never advance a breaker.
	DialFailures   uint64
	Timeouts       uint64
	ConnDrops      uint64
	ProtocolErrors uint64
	LocalErrors    uint64
	// Retries counts extra transport attempts beyond the first.
	Retries uint64
	// BreakerTrips / BreakerResets count breaker state transitions;
	// BreakerSkips are rounds dropped on an open breaker (no timeout
	// budget paid); BreakerProbes are half-open probe rounds.
	BreakerTrips  uint64
	BreakerResets uint64
	BreakerSkips  uint64
	BreakerProbes uint64

	// Latency distributions in nanoseconds: end-to-end round latency,
	// pipeline queue wait, per-segment verify time (streamed rounds),
	// and whole-sweep duration.
	RoundLatency  obs.HistSnapshot
	QueueWait     obs.HistSnapshot
	SegmentVerify obs.HistSnapshot
	SweepDuration obs.HistSnapshot

	// CacheHits / CacheMisses / CacheHitRate mirror the shared
	// measurement cache (zero when the cache is disabled).
	CacheHits    uint64
	CacheMisses  uint64
	CacheHitRate float64

	// Devices / Quarantined / Tripped are registry gauges.
	Devices     int
	Quarantined int
	Tripped     int
}

// Metrics snapshots the service counters.
func (s *Service) Metrics() MetricsSnapshot {
	m := s.metrics
	snap := MetricsSnapshot{
		Verified:     m.verified.Load(),
		Accepted:     m.accepted.Load(),
		Rejected:     m.rejected.Load(),
		Errors:       m.errors.Load(),
		Skipped:      m.skipped.Load(),
		Sweeps:       m.sweeps.Load(),
		ByClass:      make(map[attest.Classification]uint64, numClasses),
		UnknownClass: m.unknownClass.Load(),

		StreamRounds:     m.streamRounds.Load(),
		SegmentsVerified: m.segmentsVerified.Load(),
		EarlyAborts:      m.earlyAborts.Load(),

		DialFailures:   m.dialFailures.Load(),
		Timeouts:       m.timeouts.Load(),
		ConnDrops:      m.connDrops.Load(),
		ProtocolErrors: m.protocolErrors.Load(),
		LocalErrors:    m.localErrors.Load(),
		Retries:        m.retries.Load(),
		BreakerTrips:   m.breakerTrips.Load(),
		BreakerResets:  m.breakerResets.Load(),
		BreakerSkips:   m.breakerSkips.Load(),
		BreakerProbes:  m.breakerProbes.Load(),

		RoundLatency:  m.roundLatency.Snapshot(),
		QueueWait:     m.queueWait.Snapshot(),
		SegmentVerify: m.segmentVerify.Snapshot(),
		SweepDuration: m.sweepDuration.Snapshot(),

		Devices: s.reg.Len(),
		//lofat:ignore locked the pred runs inside count, which holds each shard's read lock around it
		Quarantined: s.reg.count(func(d *device) bool { return d.quarantined }),
		//lofat:ignore locked the pred runs inside count, which holds each shard's read lock around it
		Tripped: s.reg.count(func(d *device) bool { return d.breaker == BreakerTripped }),
	}
	for c := 0; c < numClasses; c++ {
		if n := m.byClass[c].Load(); n > 0 {
			snap.ByClass[attest.Classification(c)] = n
		}
	}
	if s.cache != nil {
		snap.CacheHits = s.cache.Hits()
		snap.CacheMisses = s.cache.Misses()
		snap.CacheHitRate = s.cache.HitRate()
	}
	return snap
}

// String renders the snapshot as a short operator-readable summary.
func (snap MetricsSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d devices (%d quarantined), %d sweeps, %d verified (%d accepted / %d rejected), %d errors, %d skipped",
		snap.Devices, snap.Quarantined, snap.Sweeps, snap.Verified, snap.Accepted, snap.Rejected, snap.Errors, snap.Skipped)
	if snap.StreamRounds > 0 {
		fmt.Fprintf(&b, ", %d streamed (%d segments, %d early aborts)",
			snap.StreamRounds, snap.SegmentsVerified, snap.EarlyAborts)
	}
	if snap.Errors > 0 || snap.Retries > 0 {
		fmt.Fprintf(&b, ", transport: %d dial / %d timeout / %d drop / %d protocol / %d local, %d retries",
			snap.DialFailures, snap.Timeouts, snap.ConnDrops, snap.ProtocolErrors, snap.LocalErrors, snap.Retries)
	}
	if snap.BreakerTrips > 0 || snap.Tripped > 0 {
		fmt.Fprintf(&b, ", breaker: %d tripped now (%d trips, %d skips, %d probes, %d resets)",
			snap.Tripped, snap.BreakerTrips, snap.BreakerSkips, snap.BreakerProbes, snap.BreakerResets)
	}
	if snap.CacheHits+snap.CacheMisses > 0 {
		fmt.Fprintf(&b, ", cache %.0f%% hit (%d/%d)",
			100*snap.CacheHitRate, snap.CacheHits, snap.CacheHits+snap.CacheMisses)
	}
	if snap.RoundLatency.Count > 0 {
		fmt.Fprintf(&b, ", round latency p50/p95/p99 %s/%s/%s",
			fmtNanos(snap.RoundLatency.Quantile(0.5)),
			fmtNanos(snap.RoundLatency.Quantile(0.95)),
			fmtNanos(snap.RoundLatency.Quantile(0.99)))
	}
	if len(snap.ByClass) > 0 || snap.UnknownClass > 0 {
		classes := make([]attest.Classification, 0, len(snap.ByClass))
		for c := range snap.ByClass {
			classes = append(classes, c)
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
		parts := make([]string, 0, len(classes)+1)
		for _, c := range classes {
			parts = append(parts, fmt.Sprintf("%v=%d", c, snap.ByClass[c]))
		}
		if snap.UnknownClass > 0 {
			parts = append(parts, fmt.Sprintf("unknown=%d", snap.UnknownClass))
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(parts, " "))
	}
	return b.String()
}

// fmtNanos renders a nanosecond quantity with a readable unit.
func fmtNanos(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	}
	return fmt.Sprintf("%.0fns", ns)
}
