package fleet

import (
	"strings"
	"testing"

	"lofat/internal/attest"
	"lofat/internal/obs"
)

// TestRecordUnknownClass pins the fix for verdicts whose classification
// is outside the known range: they used to vanish from the per-class
// breakdown entirely; now they land in an explicit unknown counter.
func TestRecordUnknownClass(t *testing.T) {
	m := NewMetrics()
	m.record(attest.Result{Accepted: false, Class: attest.Classification(200)})
	if got := m.unknownClass.Load(); got != 1 {
		t.Fatalf("unknownClass = %d, want 1", got)
	}
	if got := m.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want 1 (unknown class still counts the verdict)", got)
	}
	for c := 0; c < numClasses; c++ {
		if n := m.byClass[c].Load(); n != 0 {
			t.Fatalf("byClass[%d] = %d, want 0", c, n)
		}
	}
	// Known classes stay out of the unknown bucket.
	m.record(attest.Result{Accepted: true, Class: attest.ClassAccepted})
	if got := m.unknownClass.Load(); got != 1 {
		t.Fatalf("unknownClass after known verdict = %d, want 1", got)
	}
}

func TestSnapshotRendersUnknownClass(t *testing.T) {
	snap := MetricsSnapshot{Verified: 3, Rejected: 3, UnknownClass: 3}
	if s := snap.String(); !strings.Contains(s, "unknown=3") {
		t.Fatalf("summary missing unknown bucket: %s", s)
	}
}

func TestFailureClassStrings(t *testing.T) {
	want := map[failureClass]string{
		failDial:     "dial",
		failTimeout:  "timeout",
		failDrop:     "conn-drop",
		failLocal:    "local",
		failProtocol: "protocol",
	}
	for fc, s := range want {
		if fc.String() != s {
			t.Errorf("%d.String() = %q, want %q", fc, fc.String(), s)
		}
	}
}

// TestMetricsRegisterIdempotent re-registers the same Metrics into one
// registry twice and checks the snapshot does not duplicate families.
func TestMetricsRegisterIdempotent(t *testing.T) {
	m := NewMetrics()
	reg := obs.NewRegistry()
	m.register(reg)
	first := len(reg.Snapshot())
	m.register(reg)
	if second := len(reg.Snapshot()); second != first {
		t.Fatalf("re-registration grew the registry: %d -> %d", first, second)
	}
	m.verified.Add(7)
	for _, ms := range reg.Snapshot() {
		if ms.Name == "lofat_fleet_verified_total" && ms.Value != 7 {
			t.Fatalf("registered counter detached from live metrics: %v", ms.Value)
		}
	}
}
