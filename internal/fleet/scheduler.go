package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"lofat/internal/attest"
	"lofat/internal/obs"
	"lofat/internal/stream"
)

// SweepReport summarises one attestation sweep of a program's fleet.
type SweepReport struct {
	Program attest.ProgramID
	// Input is the challenge input this sweep used.
	Input []uint32
	// Streamed reports whether the sweep used the segmented streaming
	// protocol.
	Streamed bool
	// Devices is the number enrolled for the program; Skipped of those
	// were not challenged (quarantined, or transport breaker open —
	// the latter also counted in BreakerSkipped).
	Devices int
	Skipped int

	Accepted int
	Rejected int
	Errors   int
	// Retried counts rounds that needed more than one transport
	// attempt (whether or not they eventually completed).
	Retried int
	// NewlyQuarantined lists devices this sweep quarantined.
	NewlyQuarantined []DeviceID
	// NewlyTripped lists devices whose transport breaker this sweep
	// tripped; BreakerSkipped / BreakerProbes count breaker-gated
	// rounds.
	NewlyTripped   []DeviceID
	BreakerSkipped int
	BreakerProbes  int
	// ByClass breaks verified rounds down per classification.
	ByClass map[attest.Classification]int

	// SegmentsVerified / EarlyAborts aggregate the streaming outcomes
	// of a streamed sweep (zero otherwise).
	SegmentsVerified int
	EarlyAborts      int

	Duration time.Duration
	// Throughput is verified rounds per second for this sweep.
	Throughput float64
}

// String renders a one-line sweep summary.
func (r SweepReport) String() string {
	s := fmt.Sprintf("sweep %v: %d devices, %d accepted, %d rejected, %d errors, %d skipped, %d newly quarantined, %.0f rounds/s",
		r.Program, r.Devices, r.Accepted, r.Rejected, r.Errors, r.Skipped, len(r.NewlyQuarantined), r.Throughput)
	if r.Retried > 0 || len(r.NewlyTripped) > 0 || r.BreakerSkipped > 0 || r.BreakerProbes > 0 {
		s += fmt.Sprintf(" [transport: %d retried, %d newly tripped, %d breaker-skipped, %d probes]",
			r.Retried, len(r.NewlyTripped), r.BreakerSkipped, r.BreakerProbes)
	}
	if r.Streamed {
		s += fmt.Sprintf(" [streamed: %d segments, %d early aborts]", r.SegmentsVerified, r.EarlyAborts)
	}
	return s
}

// ProgramError pairs a program with its sweep failure.
type ProgramError struct {
	Program attest.ProgramID
	Err     error
}

func (e ProgramError) Error() string { return fmt.Sprintf("program %v: %v", e.Program, e.Err) }

func (e ProgramError) Unwrap() error { return e.Err }

// SweepError aggregates the per-program failures of one fleet sweep.
// It unwraps to every underlying error, so errors.Is(err, ErrClosed)
// still detects a service closed mid-sweep.
type SweepError struct {
	Failures []ProgramError
}

func (e *SweepError) Error() string {
	parts := make([]string, len(e.Failures))
	for i, f := range e.Failures {
		parts[i] = f.Error()
	}
	return fmt.Sprintf("fleet: sweep: %d program(s) failed: %s", len(e.Failures), strings.Join(parts, "; "))
}

func (e *SweepError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f
	}
	return errs
}

// Sweep challenges every non-quarantined device of every registered
// program once, rotating through each program's input schedule.
// Programs are swept concurrently, and one program failing does not
// abort the others: the sweep continues, the reports of the programs
// that completed are returned sorted by program ID, and the failures —
// if any — come back aggregated in a *SweepError.
func (s *Service) Sweep() ([]SweepReport, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	type pick struct {
		id    attest.ProgramID
		input []uint32
	}
	picks := make([]pick, 0, len(s.programs))
	for id, p := range s.programs {
		in := p.inputs[p.next%len(p.inputs)]
		p.next++
		picks = append(picks, pick{id: id, input: in})
	}
	s.mu.Unlock()
	sort.Slice(picks, func(i, j int) bool {
		return bytes.Compare(picks[i].id[:], picks[j].id[:]) < 0
	})

	// One generation per fleet sweep, shared by every program, so
	// tripped breakers pace their half-open probes in whole sweeps no
	// matter how many programs are registered.
	gen := s.sweepGen.Add(1)
	all := make([]SweepReport, len(picks))
	errs := make([]error, len(picks))
	var wg sync.WaitGroup
	for i, pk := range picks {
		wg.Add(1)
		go func(i int, id attest.ProgramID, input []uint32) {
			defer wg.Done()
			all[i], errs[i] = s.sweepProgram(id, input, s.cfg.StreamedSweeps, gen)
		}(i, pk.id, pk.input)
	}
	wg.Wait()

	reports := make([]SweepReport, 0, len(picks))
	var failures []ProgramError
	for i, pk := range picks {
		if errs[i] != nil {
			failures = append(failures, ProgramError{Program: pk.id, Err: errs[i]})
			continue
		}
		reports = append(reports, all[i])
	}
	if len(failures) > 0 {
		return reports, &SweepError{Failures: failures}
	}
	return reports, nil
}

// SweepProgram challenges every non-quarantined device enrolled for one
// program with the given input. When the measurement cache is enabled
// the golden run is precomputed once up front (through the program's
// template verifier), so the fan-out below never simulates: every
// worker-pool verification is a cache hit.
func (s *Service) SweepProgram(prog attest.ProgramID, input []uint32) (SweepReport, error) {
	return s.sweepProgram(prog, input, false, s.sweepGen.Add(1))
}

// SweepProgramDevices is SweepProgram restricted to an explicit device
// subset — the federated placement primitive: a coordinator that has
// replicated a device onto several nodes names, per sweep, exactly
// which devices each node acts for, so standby replicas hold the state
// without double-challenging the prover. Devices in ids that are not
// enrolled for prog are ignored; an empty subset performs the cache
// warm-up and returns an empty report.
func (s *Service) SweepProgramDevices(prog attest.ProgramID, input []uint32, streamed bool, ids []DeviceID) (SweepReport, error) {
	only := make(map[DeviceID]bool, len(ids))
	for _, id := range ids {
		only[id] = true
	}
	return s.sweepProgramFiltered(prog, input, streamed, s.sweepGen.Add(1), only)
}

// SweepProgramStreamed is SweepProgram over the segmented streaming
// protocol: every device is verified incrementally as it executes, and
// an attacked or long-running device is rejected — and quarantined —
// at its first divergent segment instead of after end-of-run. The
// devices must serve the stream protocol on their enrolled address.
func (s *Service) SweepProgramStreamed(prog attest.ProgramID, input []uint32) (SweepReport, error) {
	return s.sweepProgram(prog, input, true, s.sweepGen.Add(1))
}

// sweepFail records a program-sweep failure in the flight recorder; the
// Device slot carries the program ID (there is no single device to
// blame for a sweep-level failure).
func (s *Service) sweepFail(prog attest.ProgramID, gen uint64, err error) {
	if s.flight != nil {
		s.flight.Record(obs.Event{Device: prog.String(), Kind: obs.KindSweepFail,
			Detail: err.Error(), Sweep: gen})
	}
}

func (s *Service) sweepProgram(prog attest.ProgramID, input []uint32, streamed bool, gen uint64) (SweepReport, error) {
	return s.sweepProgramFiltered(prog, input, streamed, gen, nil)
}

// sweepProgramFiltered is sweepProgram with an optional device filter
// (nil sweeps every member; non-nil sweeps exactly the listed members).
func (s *Service) sweepProgramFiltered(prog attest.ProgramID, input []uint32, streamed bool, gen uint64, only map[DeviceID]bool) (SweepReport, error) {
	s.mu.RLock()
	p, ok := s.programs[prog]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return SweepReport{}, ErrClosed
	}
	if !ok {
		err := fmt.Errorf("fleet: program %v not registered", prog)
		s.sweepFail(prog, gen, err)
		return SweepReport{}, err
	}

	// Each program sweep is its own trace track: the sweep span brackets
	// cache warming and the full fan-out, and the per-round spans on the
	// worker tracks nest inside it by time.
	sc := obs.Scope{T: s.tracer, TID: s.tracer.NextTID()}
	ssp := sc.Start("sweep", "fleet")
	if sc.Enabled() {
		ssp = ssp.Arg("program", prog.String())
		if streamed {
			ssp = ssp.Arg("mode", "streamed")
		}
	}
	defer ssp.End()

	rep := SweepReport{
		Program:  prog,
		Input:    append([]uint32(nil), input...),
		Streamed: streamed,
		ByClass:  make(map[attest.Classification]int),
	}
	start := time.Now()
	if s.cache != nil {
		wsp := sc.Start("warm-cache", "fleet")
		if streamed {
			// Streamed golden runs carry the per-segment states; they
			// also seed the plain end-of-run expectation.
			sv := stream.NewVerifier(p.template, stream.Config{SegmentEvents: s.cfg.StreamSegmentEvents})
			if err := sv.Precompute([][]uint32{input}); err != nil {
				wsp.End()
				err = fmt.Errorf("fleet: warm stream cache: %w", err)
				s.sweepFail(prog, gen, err)
				return rep, err
			}
		} else if err := s.cache.Warm(p.template, [][]uint32{input}); err != nil {
			wsp.End()
			err = fmt.Errorf("fleet: warm cache: %w", err)
			s.sweepFail(prog, gen, err)
			return rep, err
		}
		wsp.End()
	}

	members := s.reg.membersOf(prog)
	if only != nil {
		kept := members[:0]
		for _, d := range members {
			if only[d.id] {
				kept = append(kept, d)
			}
		}
		members = kept
	}
	rep.Devices = len(members)
	rounds := make([]Round, 0, len(members))
	for _, d := range members {
		rounds = append(rounds, Round{Device: d.id, Input: input, Streamed: streamed, gen: gen})
	}
	outs, err := s.SubmitBatch(rounds)
	if err != nil {
		s.sweepFail(prog, gen, err)
		return rep, err
	}
	for _, o := range outs {
		switch {
		case o.Skipped:
			rep.Skipped++
			if o.BreakerOpen {
				rep.BreakerSkipped++
			}
		case o.Err != nil:
			rep.Errors++
		case o.Result.Accepted:
			rep.Accepted++
			rep.ByClass[o.Result.Class]++
		default:
			rep.Rejected++
			rep.ByClass[o.Result.Class]++
		}
		if o.Stream != nil {
			rep.SegmentsVerified += int(o.Stream.Segments)
			if o.Stream.EarlyAbort {
				rep.EarlyAborts++
			}
		}
		if o.Attempts > 1 {
			rep.Retried++
		}
		if o.BreakerProbe {
			rep.BreakerProbes++
		}
		if o.Quarantined {
			rep.NewlyQuarantined = append(rep.NewlyQuarantined, o.Device)
		}
		if o.Tripped {
			rep.NewlyTripped = append(rep.NewlyTripped, o.Device)
		}
	}
	rep.Duration = time.Since(start)
	if verified := rep.Accepted + rep.Rejected; verified > 0 && rep.Duration > 0 {
		rep.Throughput = float64(verified) / rep.Duration.Seconds()
	}
	s.metrics.sweeps.Add(1)
	s.metrics.sweepDuration.Observe(uint64(rep.Duration))
	s.mu.Lock()
	s.reports = append(s.reports, rep)
	if len(s.reports) > maxRetainedReports {
		s.reports = s.reports[len(s.reports)-maxRetainedReports:]
	}
	s.mu.Unlock()
	return rep, nil
}

// maxRetainedReports bounds the sweep history kept for Reports.
const maxRetainedReports = 256

// Reports returns the retained sweep history, oldest first.
func (s *Service) Reports() []SweepReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]SweepReport(nil), s.reports...)
}

// StartScheduler begins periodic fleet sweeps every interval and
// returns a stop function that halts the loop and waits for an
// in-flight sweep to finish. A non-positive interval is clamped to one
// second rather than panicking the ticker. Sweep errors on a closed
// service end the loop; other errors are recorded in the metrics by
// the pipeline.
func (s *Service) StartScheduler(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if _, err := s.Sweep(); errors.Is(err, ErrClosed) {
					return
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}
