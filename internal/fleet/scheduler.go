package fleet

import (
	"fmt"
	"sync"
	"time"

	"lofat/internal/attest"
	"lofat/internal/stream"
)

// SweepReport summarises one attestation sweep of a program's fleet.
type SweepReport struct {
	Program attest.ProgramID
	// Input is the challenge input this sweep used.
	Input []uint32
	// Streamed reports whether the sweep used the segmented streaming
	// protocol.
	Streamed bool
	// Devices is the number enrolled for the program; Skipped of those
	// were quarantined and not challenged.
	Devices int
	Skipped int

	Accepted int
	Rejected int
	Errors   int
	// NewlyQuarantined lists devices this sweep quarantined.
	NewlyQuarantined []DeviceID
	// ByClass breaks verified rounds down per classification.
	ByClass map[attest.Classification]int

	// SegmentsVerified / EarlyAborts aggregate the streaming outcomes
	// of a streamed sweep (zero otherwise).
	SegmentsVerified int
	EarlyAborts      int

	Duration time.Duration
	// Throughput is verified rounds per second for this sweep.
	Throughput float64
}

// String renders a one-line sweep summary.
func (r SweepReport) String() string {
	s := fmt.Sprintf("sweep %v: %d devices, %d accepted, %d rejected, %d errors, %d skipped, %d newly quarantined, %.0f rounds/s",
		r.Program, r.Devices, r.Accepted, r.Rejected, r.Errors, r.Skipped, len(r.NewlyQuarantined), r.Throughput)
	if r.Streamed {
		s += fmt.Sprintf(" [streamed: %d segments, %d early aborts]", r.SegmentsVerified, r.EarlyAborts)
	}
	return s
}

// Sweep challenges every non-quarantined device of every registered
// program once, rotating through each program's input schedule, and
// returns one report per program (sorted by registration order of the
// underlying map is not guaranteed; reports carry the program ID).
func (s *Service) Sweep() ([]SweepReport, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	type pick struct {
		id    attest.ProgramID
		input []uint32
	}
	picks := make([]pick, 0, len(s.programs))
	for id, p := range s.programs {
		in := p.inputs[p.next%len(p.inputs)]
		p.next++
		picks = append(picks, pick{id: id, input: in})
	}
	s.mu.Unlock()

	reports := make([]SweepReport, 0, len(picks))
	for _, pk := range picks {
		rep, err := s.sweepProgram(pk.id, pk.input, s.cfg.StreamedSweeps)
		if err != nil {
			return reports, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// SweepProgram challenges every non-quarantined device enrolled for one
// program with the given input. When the measurement cache is enabled
// the golden run is precomputed once up front (through the program's
// template verifier), so the fan-out below never simulates: every
// worker-pool verification is a cache hit.
func (s *Service) SweepProgram(prog attest.ProgramID, input []uint32) (SweepReport, error) {
	return s.sweepProgram(prog, input, false)
}

// SweepProgramStreamed is SweepProgram over the segmented streaming
// protocol: every device is verified incrementally as it executes, and
// an attacked or long-running device is rejected — and quarantined —
// at its first divergent segment instead of after end-of-run. The
// devices must serve the stream protocol on their enrolled address.
func (s *Service) SweepProgramStreamed(prog attest.ProgramID, input []uint32) (SweepReport, error) {
	return s.sweepProgram(prog, input, true)
}

func (s *Service) sweepProgram(prog attest.ProgramID, input []uint32, streamed bool) (SweepReport, error) {
	s.mu.RLock()
	p, ok := s.programs[prog]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return SweepReport{}, ErrClosed
	}
	if !ok {
		return SweepReport{}, fmt.Errorf("fleet: program %v not registered", prog)
	}

	rep := SweepReport{
		Program:  prog,
		Input:    append([]uint32(nil), input...),
		Streamed: streamed,
		ByClass:  make(map[attest.Classification]int),
	}
	start := time.Now()
	if s.cache != nil {
		if streamed {
			// Streamed golden runs carry the per-segment states; they
			// also seed the plain end-of-run expectation.
			sv := stream.NewVerifier(p.template, stream.Config{SegmentEvents: s.cfg.StreamSegmentEvents})
			if err := sv.Precompute([][]uint32{input}); err != nil {
				return rep, fmt.Errorf("fleet: warm stream cache: %w", err)
			}
		} else if err := s.cache.Warm(p.template, [][]uint32{input}); err != nil {
			return rep, fmt.Errorf("fleet: warm cache: %w", err)
		}
	}

	members := s.reg.membersOf(prog)
	rep.Devices = len(members)
	rounds := make([]Round, 0, len(members))
	for _, d := range members {
		rounds = append(rounds, Round{Device: d.id, Input: input, Streamed: streamed})
	}
	outs, err := s.SubmitBatch(rounds)
	if err != nil {
		return rep, err
	}
	for _, o := range outs {
		switch {
		case o.Skipped:
			rep.Skipped++
		case o.Err != nil:
			rep.Errors++
		case o.Result.Accepted:
			rep.Accepted++
			rep.ByClass[o.Result.Class]++
		default:
			rep.Rejected++
			rep.ByClass[o.Result.Class]++
		}
		if o.Stream != nil {
			rep.SegmentsVerified += int(o.Stream.Segments)
			if o.Stream.EarlyAbort {
				rep.EarlyAborts++
			}
		}
		if o.Quarantined {
			rep.NewlyQuarantined = append(rep.NewlyQuarantined, o.Device)
		}
	}
	rep.Duration = time.Since(start)
	if verified := rep.Accepted + rep.Rejected; verified > 0 && rep.Duration > 0 {
		rep.Throughput = float64(verified) / rep.Duration.Seconds()
	}
	s.metrics.sweeps.Add(1)
	s.mu.Lock()
	s.reports = append(s.reports, rep)
	if len(s.reports) > maxRetainedReports {
		s.reports = s.reports[len(s.reports)-maxRetainedReports:]
	}
	s.mu.Unlock()
	return rep, nil
}

// maxRetainedReports bounds the sweep history kept for Reports.
const maxRetainedReports = 256

// Reports returns the retained sweep history, oldest first.
func (s *Service) Reports() []SweepReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]SweepReport(nil), s.reports...)
}

// StartScheduler begins periodic fleet sweeps every interval and
// returns a stop function that halts the loop and waits for an
// in-flight sweep to finish. A non-positive interval is clamped to one
// second rather than panicking the ticker. Sweep errors on a closed
// service end the loop; other errors are recorded in the metrics by
// the pipeline.
func (s *Service) StartScheduler(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if _, err := s.Sweep(); err == ErrClosed {
					return
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}
