package fleet_test

import (
	"crypto/rand"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/fleet"
	"lofat/internal/monitor"
	"lofat/internal/obs"
	"lofat/internal/sig"
	"lofat/internal/workloads"
)

// fabric is an in-memory device network: each enrolled address maps to
// a prover-side attest.Registry, and dialing spawns a ServeConn
// goroutine on the server end of a synchronous pipe — the same frame
// protocol the TCP transport speaks, without sockets.
type fabric struct {
	mu   sync.Mutex
	regs map[string]*attest.Registry
}

func newFabric() *fabric { return &fabric{regs: make(map[string]*attest.Registry)} }

func (f *fabric) install(addr string, reg *attest.Registry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.regs[addr] = reg
}

func (f *fabric) dial(addr string) (io.ReadWriteCloser, error) {
	f.mu.Lock()
	reg, ok := f.regs[addr]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fabric: no device at %q", addr)
	}
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		_ = reg.ServeConn(server)
	}()
	return client, nil
}

// simDevice is one simulated prover: its keys and its fabric address.
type simDevice struct {
	id   fleet.DeviceID
	pub  []byte
	addr string
}

// spawnDevice provisions a prover with fresh keys, optionally armed
// with an adversary, and installs it on the fabric.
func spawnDevice(t testing.TB, f *fabric, w workloads.Workload, i int, adv attest.Adversary) simDevice {
	t.Helper()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p := attest.NewProver(prog, core.Config{}, keys)
	p.Adversary = adv
	reg := attest.NewRegistry()
	reg.Register(p)
	d := simDevice{
		id:   fleet.DeviceID(fmt.Sprintf("%s-%03d", w.Name, i)),
		pub:  keys.Public(),
		addr: fmt.Sprintf("mem://%s/%d", w.Name, i),
	}
	f.install(d.addr, reg)
	return d
}

func newService(f *fabric, cfg fleet.Config) *fleet.Service {
	cfg.Dial = f.dial
	return fleet.NewService(cfg)
}

// TestFleetSweepMixed drives a full attestation sweep over a fleet of
// more than 100 devices on shared firmware — honest devices plus one of
// each Figure 1 attack scenario — and checks the per-device
// classification and quarantine decisions.
func TestFleetSweepMixed(t *testing.T) {
	f := newFabric()
	svc := newService(f, fleet.Config{})
	defer svc.Close()

	pump := workloads.SyringePump()
	pumpProg, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pumpID, err := svc.RegisterProgram(pumpProg, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}

	const honest = 100
	var honestIDs []fleet.DeviceID
	for i := 0; i < honest; i++ {
		d := spawnDevice(t, f, pump, i, nil)
		if err := svc.Enroll(d.id, pumpID, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
		honestIDs = append(honestIDs, d.id)
	}

	// One device per pump-based attack scenario. The data-only attack is
	// accepted by design (the paper's stated limitation); auth-bypass
	// under the benign sweep input still perturbs the path, class 1.
	type attacked struct {
		dev    simDevice
		expect attest.Classification
	}
	var attackedDevs []attacked
	for i, spec := range []struct {
		name   string
		expect attest.Classification
	}{
		{"loop-counter", attest.ClassLoopCounter},
		{"auth-bypass", attest.ClassNonControlData},
		{"dop-data-only", attest.ClassAccepted},
	} {
		atk, ok := workloads.AttackByName(spec.name)
		if !ok {
			t.Fatalf("unknown attack %s", spec.name)
		}
		d := spawnDevice(t, f, pump, honest+i, atk.Build(pumpProg))
		if err := svc.Enroll(d.id, pumpID, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
		attackedDevs = append(attackedDevs, attacked{dev: d, expect: spec.expect})
	}

	// A second firmware image in the same fleet: the code-pointer
	// victim, with one hijacked device among honest ones.
	atk, _ := workloads.AttackByName("code-pointer")
	victim := atk.Workload
	victimProg, err := victim.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	victimID, err := svc.RegisterProgram(victimProg, core.Config{}, [][]uint32{{}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		d := spawnDevice(t, f, victim, i, nil)
		if err := svc.Enroll(d.id, victimID, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
	}
	hijacked := spawnDevice(t, f, victim, 5, atk.Build(victimProg))
	if err := svc.Enroll(hijacked.id, victimID, hijacked.pub, hijacked.addr); err != nil {
		t.Fatal(err)
	}

	if got := svc.FleetSize(); got != honest+3+6 {
		t.Fatalf("fleet size = %d, want %d", got, honest+3+6)
	}

	reports, err := svc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	byProg := map[attest.ProgramID]fleet.SweepReport{}
	for _, r := range reports {
		byProg[r.Program] = r
	}
	pumpRep := byProg[pumpID]
	// 100 honest + data-only accepted; loop-counter and auth-bypass rejected.
	if pumpRep.Accepted != honest+1 || pumpRep.Rejected != 2 || pumpRep.Errors != 0 {
		t.Fatalf("pump sweep: %+v", pumpRep)
	}
	victimRep := byProg[victimID]
	if victimRep.Accepted != 5 || victimRep.Rejected != 1 {
		t.Fatalf("victim sweep: %+v", victimRep)
	}

	for _, id := range honestIDs {
		st, ok := svc.Device(id)
		if !ok || st.Quarantined || st.LastClass != attest.ClassAccepted {
			t.Fatalf("honest device %s: %+v", id, st)
		}
	}
	for _, a := range attackedDevs {
		st, ok := svc.Device(a.dev.id)
		if !ok {
			t.Fatalf("device %s missing", a.dev.id)
		}
		if st.LastClass != a.expect {
			t.Errorf("device %s classified %v, want %v (findings: %v)",
				a.dev.id, st.LastClass, a.expect, st.LastFindings)
		}
		wantQuarantine := a.expect != attest.ClassAccepted
		if st.Quarantined != wantQuarantine {
			t.Errorf("device %s quarantined = %v, want %v", a.dev.id, st.Quarantined, wantQuarantine)
		}
	}
	if st, _ := svc.Device(hijacked.id); st.LastClass != attest.ClassControlFlow || !st.Quarantined {
		t.Errorf("hijacked device: %+v", st)
	}

	snap := svc.Metrics()
	if snap.Verified != uint64(honest+3+6) || snap.Sweeps != 2 {
		t.Fatalf("metrics: %v", snap)
	}
	if snap.ByClass[attest.ClassLoopCounter] != 1 ||
		snap.ByClass[attest.ClassNonControlData] != 1 ||
		snap.ByClass[attest.ClassControlFlow] != 1 {
		t.Fatalf("per-class counts: %v", snap.ByClass)
	}
}

// TestMeasurementCacheAmortization checks the fleet-wide golden-run
// amortization: K devices on one firmware cost exactly one simulation,
// and repeat sweeps add no cache traffic at all (both layers hot).
func TestMeasurementCacheAmortization(t *testing.T) {
	f := newFabric()
	svc := newService(f, fleet.Config{})
	defer svc.Close()

	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{w.Input})
	if err != nil {
		t.Fatal(err)
	}
	const K = 50
	for i := 0; i < K; i++ {
		d := spawnDevice(t, f, w, i, nil)
		if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := svc.SweepProgram(pid, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != K {
		t.Fatalf("accepted %d of %d", rep.Accepted, K)
	}
	cache := svc.Cache()
	if cache.Misses() != 1 {
		t.Fatalf("cache misses = %d, want 1 (single golden run for the whole fleet)", cache.Misses())
	}
	if cache.Hits() != K {
		t.Fatalf("cache hits = %d, want %d", cache.Hits(), K)
	}

	// Second sweep: every verifier's private memo is hot, so not even
	// cache lookups happen — and certainly no simulation.
	if _, err := svc.SweepProgram(pid, w.Input); err != nil {
		t.Fatal(err)
	}
	if cache.Misses() != 1 || cache.Hits() != K {
		t.Fatalf("repeat sweep touched the cache: hits=%d misses=%d", cache.Hits(), cache.Misses())
	}
	if got := svc.Metrics().Accepted; got != 2*K {
		t.Fatalf("accepted total = %d, want %d", got, 2*K)
	}
}

// TestCacheConfigIsolation checks that one shared cache serving
// verifiers with different device configurations keeps their golden
// measurements apart: measurements depend on the config (e.g. dedup
// on/off changes the hash), so a shared entry would falsely reject
// honest devices.
func TestCacheConfigIsolation(t *testing.T) {
	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := core.Config{}
	cfgB := core.Config{Monitor: monitor.Config{DisableDedup: true}}
	cache := fleet.NewMeasurementCache()
	for _, cfg := range []core.Config{cfgA, cfgB} {
		p := attest.NewProver(prog, cfg, keys)
		v, err := attest.NewVerifier(prog, cfg, keys.Public(), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		v.SetExpectationCache(cache)
		ch, err := v.NewChallenge(w.Input)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Attest(ch)
		if err != nil {
			t.Fatal(err)
		}
		if res := v.Verify(ch, rep); !res.Accepted {
			t.Fatalf("config %+v: honest device rejected: %v %v", cfg.Monitor, res, res.Findings)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("cache entries = %d, want 2 (one per device config)", cache.Len())
	}
}

// TestQuarantineAndRelease checks the quarantine lifecycle: rejection
// quarantines, quarantined devices are skipped, release restores them.
func TestQuarantineAndRelease(t *testing.T) {
	f := newFabric()
	svc := newService(f, fleet.Config{})
	defer svc.Close()

	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{w.Input})
	if err != nil {
		t.Fatal(err)
	}
	honest := spawnDevice(t, f, w, 0, nil)
	atk, _ := workloads.AttackByName("loop-counter")
	bad := spawnDevice(t, f, w, 1, atk.Build(prog))
	for _, d := range []simDevice{honest, bad} {
		if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := svc.SweepProgram(pid, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 1 || len(rep.NewlyQuarantined) != 1 || rep.NewlyQuarantined[0] != bad.id {
		t.Fatalf("first sweep: %+v", rep)
	}

	rep, err = svc.SweepProgram(pid, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 1 || rep.Accepted != 1 {
		t.Fatalf("second sweep should skip the quarantined device: %+v", rep)
	}

	// The loop-counter adversary is one-shot and has fired; after an
	// operator release the device attests honestly again.
	if !svc.Release(bad.id) {
		t.Fatal("release failed")
	}
	rep, err = svc.SweepProgram(pid, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 2 || rep.Skipped != 0 {
		t.Fatalf("post-release sweep: %+v", rep)
	}
	if st, _ := svc.Device(bad.id); st.Quarantined || st.ConsecutiveRejects != 0 {
		t.Fatalf("released device state: %+v", st)
	}
}

// TestSubmitBatchConcurrent hammers the bounded pipeline from many
// goroutines at once (run under -race).
func TestSubmitBatchConcurrent(t *testing.T) {
	f := newFabric()
	svc := newService(f, fleet.Config{Workers: 4, QueueDepth: 2})
	defer svc.Close()

	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{w.Input})
	if err != nil {
		t.Fatal(err)
	}
	const K = 8
	devs := make([]simDevice, K)
	for i := range devs {
		devs[i] = spawnDevice(t, f, w, i, nil)
		if err := svc.Enroll(devs[i].id, pid, devs[i].pub, devs[i].addr); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rounds := make([]fleet.Round, K)
			for i, d := range devs {
				rounds[i] = fleet.Round{Device: d.id, Input: w.Input}
			}
			outs, err := svc.SubmitBatch(rounds)
			if err != nil {
				errs <- err
				return
			}
			for _, o := range outs {
				if o.Err != nil {
					errs <- o.Err
				} else if !o.Result.Accepted {
					errs <- fmt.Errorf("%s rejected: %v", o.Device, o.Result)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := svc.Metrics().Verified; got != 8*K {
		t.Fatalf("verified = %d, want %d", got, 8*K)
	}
}

// TestScheduler checks the periodic sweeper: it runs sweeps on its own
// and stops cleanly.
func TestScheduler(t *testing.T) {
	f := newFabric()
	svc := newService(f, fleet.Config{})
	defer svc.Close()

	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{w.Input})
	if err != nil {
		t.Fatal(err)
	}
	d := spawnDevice(t, f, w, 0, nil)
	if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
		t.Fatal(err)
	}

	stop := svc.StartScheduler(5 * time.Millisecond)
	deadline := time.Now().Add(10 * time.Second)
	for svc.Metrics().Sweeps < 2 {
		if time.Now().After(deadline) {
			stop()
			t.Fatal("scheduler never completed two sweeps")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	settled := svc.Metrics().Sweeps
	time.Sleep(20 * time.Millisecond)
	if got := svc.Metrics().Sweeps; got != settled {
		t.Fatalf("sweeps advanced after stop: %d -> %d", settled, got)
	}
	if reports := svc.Reports(); len(reports) < 2 {
		t.Fatalf("retained %d reports, want >= 2", len(reports))
	}
}

// TestInputRotation checks that consecutive sweeps rotate through the
// program's input schedule.
func TestInputRotation(t *testing.T) {
	f := newFabric()
	svc := newService(f, fleet.Config{})
	defer svc.Close()

	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]uint32{
		{0xC0FFEE, 2, 5, 3},
		{0xC0FFEE, 1, 4},
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	d := spawnDevice(t, f, w, 0, nil)
	if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		reports, err := svc.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		want := inputs[round%len(inputs)]
		got := reports[0].Input
		if len(got) != len(want) {
			t.Fatalf("round %d input %v, want %v", round, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d input %v, want %v", round, got, want)
			}
		}
		if reports[0].Accepted != 1 {
			t.Fatalf("round %d not accepted: %+v", round, reports[0])
		}
	}
}

// TestEnrollmentErrors covers registry and service error paths.
func TestEnrollmentErrors(t *testing.T) {
	f := newFabric()
	svc := newService(f, fleet.Config{})

	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RegisterProgram(prog, core.Config{}, nil); err == nil {
		t.Error("registering a program with no inputs succeeded")
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{w.Input})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{w.Input}); err == nil {
		t.Error("duplicate program registration succeeded")
	}

	d := spawnDevice(t, f, w, 0, nil)
	if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
		t.Fatal(err)
	}
	if err := svc.Enroll(d.id, pid, d.pub, d.addr); err == nil {
		t.Error("duplicate enrolment succeeded")
	}
	if err := svc.Enroll("other", attest.ProgramID{}, d.pub, d.addr); err == nil {
		t.Error("enrolment for unregistered program succeeded")
	}
	out, err := svc.Submit(fleet.Round{Device: "ghost", Input: w.Input})
	if err != nil {
		t.Fatal(err)
	}
	if out.Err == nil {
		t.Error("round for unknown device succeeded")
	}

	svc.Close()
	if _, err := svc.Sweep(); err != fleet.ErrClosed {
		t.Errorf("sweep on closed service: %v", err)
	}
	if _, err := svc.SubmitBatch([]fleet.Round{{Device: d.id}}); err != fleet.ErrClosed {
		t.Errorf("submit on closed service: %v", err)
	}
	svc.Close() // idempotent
}

// TestUnreachableDevice checks that transport failures are recorded as
// errors, not rejections, and never quarantine.
func TestUnreachableDevice(t *testing.T) {
	f := newFabric()
	svc := newService(f, fleet.Config{})
	defer svc.Close()

	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{w.Input})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Enrolled at an address nothing serves.
	if err := svc.Enroll("lost", pid, keys.Public(), "mem://nowhere"); err != nil {
		t.Fatal(err)
	}
	rep, err := svc.SweepProgram(pid, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 1 || rep.Rejected != 0 {
		t.Fatalf("sweep: %+v", rep)
	}
	st, _ := svc.Device("lost")
	if st.Quarantined || st.TransportErrors != 1 || st.LastError == "" {
		t.Fatalf("device state: %+v", st)
	}
}

// TestReleaseDrainsFlightHistory is the federation-era release
// contract: lifting a quarantine (or forgetting a device for hand-off)
// also drains the device's flight-recorder events, so a device released
// and later re-enrolled — possibly on another node — does not inherit
// stale quarantine/breaker history from its previous life.
func TestReleaseDrainsFlightHistory(t *testing.T) {
	f := newFabric()
	hub := obs.NewHub()
	hub.Flight = obs.NewFlight(256)
	svc := fleet.NewService(fleet.Config{Dial: f.dial, Obs: hub})
	defer svc.Close()

	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{w.Input})
	if err != nil {
		t.Fatal(err)
	}
	honest := spawnDevice(t, f, w, 0, nil)
	atk, _ := workloads.AttackByName("loop-counter")
	bad := spawnDevice(t, f, w, 1, atk.Build(prog))
	for _, d := range []simDevice{honest, bad} {
		if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.SweepProgram(pid, w.Input); err != nil {
		t.Fatal(err)
	}
	if got := hub.Flight.DeviceEvents(string(bad.id)); len(got) == 0 {
		t.Fatal("attacked device produced no flight events")
	}
	honestEvents := len(hub.Flight.DeviceEvents(string(honest.id)))
	if honestEvents == 0 {
		t.Fatal("honest device produced no flight events")
	}

	if !svc.Release(bad.id) {
		t.Fatal("release failed")
	}
	if got := hub.Flight.DeviceEvents(string(bad.id)); len(got) != 0 {
		t.Fatalf("released device kept %d stale flight events: %+v", len(got), got)
	}
	if got := len(hub.Flight.DeviceEvents(string(honest.id))); got != honestEvents {
		t.Fatalf("release drained a bystander's events: %d → %d", honestEvents, got)
	}

	// Forget (the federation hand-off primitive) drains the same way,
	// and a fresh enrolment under the old ID starts with a clean ring.
	st, ok := svc.Forget(honest.id)
	if !ok {
		t.Fatal("forget failed")
	}
	if got := hub.Flight.DeviceEvents(string(honest.id)); len(got) != 0 {
		t.Fatalf("forgotten device kept %d flight events", len(got))
	}
	if err := svc.EnrollState(st); err != nil {
		t.Fatal(err)
	}
	if got := hub.Flight.DeviceEvents(string(honest.id)); len(got) != 0 {
		t.Fatalf("re-enrolled device inherited %d events", len(got))
	}
}

// TestSweepProgramDevicesSubset pins the federated placement primitive:
// only the named devices are challenged, the rest of the program's
// members sit the round out untouched.
func TestSweepProgramDevicesSubset(t *testing.T) {
	f := newFabric()
	svc := newService(f, fleet.Config{})
	defer svc.Close()

	pump := workloads.SyringePump()
	prog, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}
	var devs []simDevice
	for i := 0; i < 4; i++ {
		d := spawnDevice(t, f, pump, i, nil)
		if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
	}

	subset := []fleet.DeviceID{devs[0].id, devs[2].id, "no-such-device"}
	rep, err := svc.SweepProgramDevices(pid, pump.Input, false, subset)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Devices != 2 || rep.Accepted != 2 {
		t.Fatalf("subset sweep: devices=%d accepted=%d, want 2/2", rep.Devices, rep.Accepted)
	}
	for i, d := range devs {
		st, ok := svc.Device(d.id)
		if !ok {
			t.Fatalf("device %s missing", d.id)
		}
		wantRounds := uint64(0)
		if i == 0 || i == 2 {
			wantRounds = 1
		}
		if st.Rounds != wantRounds {
			t.Fatalf("device %s: rounds=%d, want %d", d.id, st.Rounds, wantRounds)
		}
	}

	// The empty subset is a no-op round, not an error.
	rep, err = svc.SweepProgramDevices(pid, pump.Input, false, nil)
	if err != nil || rep.Devices != 0 {
		t.Fatalf("empty subset: devices=%d err=%v", rep.Devices, err)
	}
}

// TestSyncState pins the anti-entropy upsert: replicated policy fields
// converge on the pushed snapshot, identity and enrolment stay local.
func TestSyncState(t *testing.T) {
	f := newFabric()
	svc := newService(f, fleet.Config{})
	defer svc.Close()

	pump := workloads.SyringePump()
	prog, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}
	d := spawnDevice(t, f, pump, 0, nil)
	if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
		t.Fatal(err)
	}

	push := fleet.DeviceState{
		ID:      d.id,
		Addr:    "mem://bogus/overwritten-identity-must-not-land",
		Program: pid,

		Quarantined:        true,
		ConsecutiveRejects: 3,
		Rounds:             7,
		Accepted:           4,
		Rejected:           3,
		LastClass:          attest.ClassLoopCounter,

		Breaker:                   fleet.BreakerDegraded,
		ConsecutiveTransportFails: 1,
		BreakerGen:                9,
	}
	if !svc.SyncState(push) {
		t.Fatal("SyncState on an enrolled device should succeed")
	}
	st, _ := svc.Device(d.id)
	if !st.Quarantined || st.ConsecutiveRejects != 3 || st.Rounds != 7 ||
		st.Accepted != 4 || st.Rejected != 3 || st.LastClass != attest.ClassLoopCounter ||
		st.Breaker != fleet.BreakerDegraded || st.ConsecutiveTransportFails != 1 || st.BreakerGen != 9 {
		t.Fatalf("policy fields did not converge: %+v", st)
	}
	if st.Addr != d.addr {
		t.Fatalf("SyncState rewrote identity: addr %q → %q", d.addr, st.Addr)
	}

	if svc.SyncState(fleet.DeviceState{ID: "ghost", Program: pid}) {
		t.Fatal("SyncState on an unknown device should report false")
	}
	if svc.SyncState(fleet.DeviceState{ID: d.id}) {
		t.Fatal("SyncState with a mismatched program should report false")
	}
}
