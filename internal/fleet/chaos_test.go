package fleet_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"lofat/internal/asm"
	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/fleet"
	"lofat/internal/fleet/faultconn"
	"lofat/internal/workloads"
)

// chaosBudget is the wall-clock bound every chaos sweep scenario must
// finish within: generous against race-detector and CI slowness, but a
// hard ceiling — before the resilience layer a single stalled device
// wedged a sweep forever.
const chaosBudget = 60 * time.Second

// chaosConfig returns a fleet config with tight-but-CI-safe transport
// budgets: 1s per I/O phase, one retry with short backoff, breaker
// tripping on the 2nd consecutive failed round, one sit-out sweep
// between half-open probes.
func chaosConfig(dial fleet.DialFunc) fleet.Config {
	return fleet.Config{
		Dial:              dial,
		Workers:           8,
		ReadTimeout:       time.Second,
		WriteTimeout:      time.Second,
		RetryAttempts:     2,
		RetryBackoff:      10 * time.Millisecond,
		RetryBackoffMax:   50 * time.Millisecond,
		BreakerThreshold:  2,
		BreakerProbeAfter: 1,
	}
}

// plannedDial wraps a fabric dial in faultconn with a mutable
// per-address plan table (mutate with set to heal or break devices
// mid-test).
type plannedDial struct {
	mu    sync.Mutex
	plans map[string]faultconn.Plan
}

func newPlannedDial() *plannedDial { return &plannedDial{plans: make(map[string]faultconn.Plan)} }

func (p *plannedDial) set(addr string, plan faultconn.Plan) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.plans[addr] = plan
}

func (p *plannedDial) clear(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.plans, addr)
}

func (p *plannedDial) wrap(dial fleet.DialFunc) fleet.DialFunc {
	return faultconn.Wrap(dial, func(addr string) (faultconn.Plan, bool) {
		p.mu.Lock()
		defer p.mu.Unlock()
		plan, ok := p.plans[addr]
		return plan, ok
	})
}

// TestChaosSweepMixedFleet sweeps a fleet of honest, attacked, stalled
// and connection-dropping devices and checks that the sweep completes
// in bounded time, that breakers trip on exactly the transport-faulty
// devices, that the attacked devices are quarantined (measurement
// verdict, breaker untouched), and that honest devices' accept counts
// are untouched by the chaos around them. Run under -race in CI.
func TestChaosSweepMixedFleet(t *testing.T) {
	start := time.Now()
	f := newFabric()
	plans := newPlannedDial()
	svc := fleet.NewService(chaosConfig(plans.wrap(f.dial)))
	defer svc.Close()

	pump := workloads.SyringePump()
	prog, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}

	const honest = 8
	var honestIDs []fleet.DeviceID
	for i := 0; i < honest; i++ {
		d := spawnDevice(t, f, pump, i, nil)
		if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
		honestIDs = append(honestIDs, d.id)
	}
	atk, _ := workloads.AttackByName("loop-counter")
	var attackedIDs []fleet.DeviceID
	for i := 0; i < 2; i++ {
		d := spawnDevice(t, f, pump, 100+i, atk.Build(prog))
		if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
		attackedIDs = append(attackedIDs, d.id)
	}
	// Stalled devices deliver 3 bytes of the challenge frame and then
	// swallow the rest: the prover blocks mid-ReadFull, the verifier's
	// report read times out. Dropping devices lose the connection two
	// bytes in.
	var stalledIDs, droppingIDs []fleet.DeviceID
	for i := 0; i < 2; i++ {
		d := spawnDevice(t, f, pump, 200+i, nil)
		if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
		plans.set(d.addr, faultconn.Plan{StallWriteAfter: 3})
		stalledIDs = append(stalledIDs, d.id)
	}
	for i := 0; i < 2; i++ {
		d := spawnDevice(t, f, pump, 300+i, nil)
		if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
		plans.set(d.addr, faultconn.Plan{CloseAfter: 2})
		droppingIDs = append(droppingIDs, d.id)
	}
	faulty := append(append([]fleet.DeviceID(nil), stalledIDs...), droppingIDs...)

	// Sweep 1: faulty devices fail (breaker degraded), attacked are
	// rejected and quarantined. Sweep 2: faulty fail again and trip.
	// Sweep 3: tripped devices sit out (breaker-skipped). Sweep 4:
	// half-open probes fire and fail.
	reports := make([]fleet.SweepReport, 0, 4)
	for i := 0; i < 4; i++ {
		reps, err := svc.Sweep()
		if err != nil {
			t.Fatalf("sweep %d: %v", i+1, err)
		}
		if len(reps) != 1 {
			t.Fatalf("sweep %d: %d reports", i+1, len(reps))
		}
		reports = append(reports, reps[0])
	}
	if elapsed := time.Since(start); elapsed > chaosBudget {
		t.Fatalf("chaos sweeps took %v, want < %v", elapsed, chaosBudget)
	}

	if got := reports[0].Errors; got != len(faulty) {
		t.Errorf("sweep 1 errors = %d, want %d", got, len(faulty))
	}
	if got := len(reports[1].NewlyTripped); got != len(faulty) {
		t.Errorf("sweep 2 newly tripped = %d, want %d (%+v)", got, len(faulty), reports[1])
	}
	if got := reports[2].BreakerSkipped; got != len(faulty) {
		t.Errorf("sweep 3 breaker-skipped = %d, want %d (%+v)", got, len(faulty), reports[2])
	}
	if got := reports[3].BreakerProbes; got != len(faulty) {
		t.Errorf("sweep 4 probes = %d, want %d (%+v)", got, len(faulty), reports[3])
	}

	for _, id := range honestIDs {
		st, ok := svc.Device(id)
		if !ok {
			t.Fatalf("honest device %s missing", id)
		}
		if st.Accepted != 4 || st.Quarantined || st.Breaker != fleet.BreakerHealthy || st.TransportErrors != 0 {
			t.Errorf("honest device %s disturbed by chaos: %+v", id, st)
		}
	}
	for _, id := range faulty {
		st, _ := svc.Device(id)
		if st.Breaker != fleet.BreakerTripped {
			t.Errorf("faulty device %s breaker = %v, want tripped", id, st.Breaker)
		}
		if st.Quarantined || st.Rejected != 0 {
			t.Errorf("faulty device %s treated as compromised: %+v (transport faults are not measurement evidence)", id, st)
		}
		if st.TransportErrors == 0 || st.LastError == "" {
			t.Errorf("faulty device %s has no recorded transport failure: %+v", id, st)
		}
	}
	for _, id := range attackedIDs {
		st, _ := svc.Device(id)
		if !st.Quarantined || st.LastClass != attest.ClassLoopCounter {
			t.Errorf("attacked device %s: %+v", id, st)
		}
		if st.Breaker != fleet.BreakerHealthy {
			t.Errorf("attacked device %s breaker = %v; rejection is not a transport fault", id, st.Breaker)
		}
	}

	tripped := svc.Tripped()
	if len(tripped) != len(faulty) {
		t.Errorf("tripped listing = %v, want the %d faulty devices", tripped, len(faulty))
	}
	snap := svc.Metrics()
	if snap.Timeouts == 0 {
		t.Errorf("no timeouts recorded: %v", snap)
	}
	if snap.ConnDrops == 0 {
		t.Errorf("no connection drops recorded: %v", snap)
	}
	if snap.Retries == 0 {
		t.Errorf("no retries recorded: %v", snap)
	}
	if snap.BreakerTrips != uint64(len(faulty)) || snap.Tripped != len(faulty) {
		t.Errorf("breaker counters: %v", snap)
	}
	if snap.BreakerSkips != uint64(len(faulty)) || snap.BreakerProbes != uint64(len(faulty)) {
		t.Errorf("breaker skip/probe counters: %v", snap)
	}
}

// TestBreakerLifecycle walks one device's breaker through the full
// state machine: healthy → degraded (first failure) → tripped (second)
// → open-skip → half-open probe after the device heals → healthy, with
// the accept counter resuming.
func TestBreakerLifecycle(t *testing.T) {
	f := newFabric()
	plans := newPlannedDial()
	svc := fleet.NewService(chaosConfig(plans.wrap(f.dial)))
	defer svc.Close()

	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{w.Input})
	if err != nil {
		t.Fatal(err)
	}
	d := spawnDevice(t, f, w, 0, nil)
	if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
		t.Fatal(err)
	}
	plans.set(d.addr, faultconn.Plan{StallWriteAfter: 3})

	state := func() fleet.DeviceState {
		st, ok := svc.Device(d.id)
		if !ok {
			t.Fatal("device missing")
		}
		return st
	}
	sweep := func() fleet.SweepReport {
		rep, err := svc.SweepProgram(pid, w.Input)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	sweep() // failure 1
	if st := state(); st.Breaker != fleet.BreakerDegraded || st.ConsecutiveTransportFails != 1 {
		t.Fatalf("after failure 1: %+v", st)
	}
	rep := sweep() // failure 2: trips
	if len(rep.NewlyTripped) != 1 || rep.NewlyTripped[0] != d.id {
		t.Fatalf("trip sweep: %+v", rep)
	}
	if st := state(); st.Breaker != fleet.BreakerTripped {
		t.Fatalf("after failure 2: %+v", st)
	}
	rep = sweep() // open: skipped without paying the timeout budget
	if rep.BreakerSkipped != 1 || rep.Errors != 0 {
		t.Fatalf("open sweep: %+v", rep)
	}

	plans.clear(d.addr) // the device heals
	rep = sweep()       // half-open probe succeeds and closes the breaker
	if rep.BreakerProbes != 1 || rep.Accepted != 1 {
		t.Fatalf("probe sweep: %+v", rep)
	}
	st := state()
	if st.Breaker != fleet.BreakerHealthy || st.ConsecutiveTransportFails != 0 {
		t.Fatalf("after successful probe: %+v", st)
	}
	if rep = sweep(); rep.Accepted != 1 || rep.BreakerProbes != 0 {
		t.Fatalf("post-recovery sweep: %+v", rep)
	}
	if got := svc.Metrics().BreakerResets; got != 1 {
		t.Fatalf("breaker resets = %d, want 1", got)
	}
}

// TestBreakerProbePacingMultiProgram pins the probe cadence to whole
// fleet sweeps: with several programs registered, a tripped device must
// still sit out BreakerProbeAfter full sweeps before its half-open
// probe (the generation counter advances once per Sweep, not once per
// program).
func TestBreakerProbePacingMultiProgram(t *testing.T) {
	f := newFabric()
	plans := newPlannedDial()
	svc := fleet.NewService(chaosConfig(plans.wrap(f.dial)))
	defer svc.Close()

	var faulty simDevice
	for i, name := range []string{"syringe-pump", "bubble-sort", "crc32"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		prog, err := w.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		input := w.Input
		if input == nil {
			input = []uint32{}
		}
		pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{input})
		if err != nil {
			t.Fatal(err)
		}
		d := spawnDevice(t, f, w, i, nil)
		if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
		if name == "syringe-pump" {
			faulty = d
			plans.set(d.addr, faultconn.Plan{StallWriteAfter: 3})
		}
	}

	sweep := func() map[attest.ProgramID]fleet.SweepReport {
		reps, err := svc.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		byProg := make(map[attest.ProgramID]fleet.SweepReport, len(reps))
		for _, r := range reps {
			byProg[r.Program] = r
		}
		return byProg
	}
	total := func(field func(fleet.SweepReport) int) func(map[attest.ProgramID]fleet.SweepReport) int {
		return func(m map[attest.ProgramID]fleet.SweepReport) int {
			n := 0
			for _, r := range m {
				n += field(r)
			}
			return n
		}
	}
	probes := total(func(r fleet.SweepReport) int { return r.BreakerProbes })
	skips := total(func(r fleet.SweepReport) int { return r.BreakerSkipped })

	sweep() // failure 1: degraded
	sweep() // failure 2: trips (threshold 2)
	if st, _ := svc.Device(faulty.id); st.Breaker != fleet.BreakerTripped {
		t.Fatalf("device not tripped after 2 failed sweeps: %+v", st)
	}
	m := sweep() // sit-out sweep: must skip, NOT probe, despite 3 programs
	if probes(m) != 0 || skips(m) != 1 {
		t.Fatalf("sit-out sweep: %d probes, %d skips; want 0 probes, 1 skip", probes(m), skips(m))
	}
	m = sweep() // probe sweep
	if probes(m) != 1 {
		t.Fatalf("probe sweep: %d probes, want 1", probes(m))
	}
}

// TestReleaseClosesBreaker covers the recovery path for breakers
// tripped outside sweeps: direct Submit rounds (no sweep generation)
// never fire half-open probes, so an operator Release must close the
// breaker along with lifting quarantine — and the round duration the
// pipeline reports must cover the time the failed attempts actually
// took.
func TestReleaseClosesBreaker(t *testing.T) {
	f := newFabric()
	plans := newPlannedDial()
	svc := fleet.NewService(chaosConfig(plans.wrap(f.dial)))
	defer svc.Close()

	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{w.Input})
	if err != nil {
		t.Fatal(err)
	}
	d := spawnDevice(t, f, w, 0, nil)
	if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
		t.Fatal(err)
	}
	plans.set(d.addr, faultconn.Plan{StallWriteAfter: 3})

	for i := 0; i < 2; i++ { // threshold 2: trips via direct rounds
		out, err := svc.Submit(fleet.Round{Device: d.id, Input: w.Input})
		if err != nil {
			t.Fatal(err)
		}
		if out.Err == nil {
			t.Fatalf("round %d against stalled device succeeded", i)
		}
		if out.Duration <= 0 {
			t.Fatalf("round %d reported no duration despite timing out", i)
		}
	}
	out, err := svc.Submit(fleet.Round{Device: d.id, Input: w.Input})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Skipped || !out.BreakerOpen {
		t.Fatalf("direct round on tripped breaker ran: %+v", out)
	}

	plans.clear(d.addr)
	if !svc.Release(d.id) {
		t.Fatal("release failed")
	}
	if st, _ := svc.Device(d.id); st.Breaker != fleet.BreakerHealthy || st.ConsecutiveTransportFails != 0 {
		t.Fatalf("release left breaker open: %+v", st)
	}
	out, err = svc.Submit(fleet.Round{Device: d.id, Input: w.Input})
	if err != nil || out.Err != nil || !out.Result.Accepted {
		t.Fatalf("post-release round: %+v (err %v)", out, err)
	}
}

// spinSource is a firmware whose golden run burns ~2M instructions —
// reliably past a small service MaxInstructions budget, so its sweep
// fails deterministically at the cache-warm step.
const spinSource = `
main:
	li   t0, 0
	li   t1, 1000000
spin:
	addi t0, t0, 1
	blt  t0, t1, spin
	li   a0, 0
	li   a7, 93
	ecall
`

// TestSweepPartialFailureAggregation checks that one program failing
// its sweep no longer aborts the whole fleet sweep: the healthy
// program's report is returned and the failure comes back aggregated
// in a *SweepError naming the failing program.
func TestSweepPartialFailureAggregation(t *testing.T) {
	f := newFabric()
	svc := newService(f, fleet.Config{MaxInstructions: 200_000})
	defer svc.Close()

	pump := workloads.SyringePump()
	pumpProg, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pumpID, err := svc.RegisterProgram(pumpProg, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}
	d := spawnDevice(t, f, pump, 0, nil)
	if err := svc.Enroll(d.id, pumpID, d.pub, d.addr); err != nil {
		t.Fatal(err)
	}

	spinProg, err := asm.Assemble(spinSource)
	if err != nil {
		t.Fatal(err)
	}
	spinID, err := svc.RegisterProgram(spinProg, core.Config{}, [][]uint32{{}})
	if err != nil {
		t.Fatal(err)
	}

	reports, err := svc.Sweep()
	if err == nil {
		t.Fatal("sweep with a budget-exhausting program reported no error")
	}
	var serr *fleet.SweepError
	if !errors.As(err, &serr) {
		t.Fatalf("sweep error is %T (%v), want *fleet.SweepError", err, err)
	}
	if len(serr.Failures) != 1 || serr.Failures[0].Program != spinID {
		t.Fatalf("aggregated failures: %+v", serr.Failures)
	}
	if errors.Is(err, fleet.ErrClosed) {
		t.Fatal("aggregate misreports ErrClosed")
	}
	if len(reports) != 1 || reports[0].Program != pumpID || reports[0].Accepted != 1 {
		t.Fatalf("healthy program's report missing or wrong: %+v", reports)
	}
}

// TestSweepReportsSortedByProgram checks the report ordering contract:
// one report per program, sorted by program ID, regardless of map
// iteration order.
func TestSweepReportsSortedByProgram(t *testing.T) {
	f := newFabric()
	svc := newService(f, fleet.Config{})
	defer svc.Close()

	for _, name := range []string{"syringe-pump", "bubble-sort", "crc32"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		prog, err := w.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		input := w.Input
		if input == nil {
			input = []uint32{}
		}
		if _, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{input}); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		reports, err := svc.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		if len(reports) != 3 {
			t.Fatalf("round %d: %d reports, want 3", round, len(reports))
		}
		for i := 1; i < len(reports); i++ {
			a, b := reports[i-1].Program, reports[i].Program
			if bytes.Compare(a[:], b[:]) >= 0 {
				t.Fatalf("round %d: reports out of order: %v before %v", round, a, b)
			}
		}
	}
}

// TestChaosStreamedStall drives a streamed sweep with one device that
// stalls mid-open: the per-segment read deadline times the round out
// while the honest devices stream to completion.
func TestChaosStreamedStall(t *testing.T) {
	start := time.Now()
	f := newStreamFabric()
	plans := newPlannedDial()
	cfg := chaosConfig(plans.wrap(f.dial))
	cfg.StreamedSweeps = true
	cfg.StreamSegmentEvents = 8
	svc := fleet.NewService(cfg)
	defer svc.Close()

	pump := workloads.SyringePump()
	prog, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		d := f.spawn(t, pump, i, nil)
		if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
	}
	stalled := f.spawn(t, pump, 100, nil)
	if err := svc.Enroll(stalled.id, pid, stalled.pub, stalled.addr); err != nil {
		t.Fatal(err)
	}
	plans.set(stalled.addr, faultconn.Plan{StallWriteAfter: 3})

	reports, err := svc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > chaosBudget {
		t.Fatalf("streamed chaos sweep took %v, want < %v", elapsed, chaosBudget)
	}
	rep := reports[0]
	if !rep.Streamed || rep.Accepted != 2 || rep.Errors != 1 {
		t.Fatalf("streamed sweep: %+v", rep)
	}
	if rep.SegmentsVerified == 0 {
		t.Fatalf("honest devices streamed no segments: %+v", rep)
	}
	if svc.Metrics().Timeouts == 0 {
		t.Fatal("stalled streamed round did not time out")
	}
	st, _ := svc.Device(stalled.id)
	if st.Quarantined || st.TransportErrors == 0 {
		t.Fatalf("stalled streamed device: %+v", st)
	}
}

// TestVerifierLocalErrorsDoNotTripBreakers pins the breaker's evidence
// rule from the verifier side: a failure that happens before any bytes
// move (here, per-device streamed golden runs exhausting the
// instruction budget with the shared cache disabled) says nothing
// about the devices, so sweeps error without advancing any breaker —
// a verifier misconfiguration must not mark a healthy fleet unreachable.
func TestVerifierLocalErrorsDoNotTripBreakers(t *testing.T) {
	f := newStreamFabric()
	cfg := chaosConfig(f.dial)
	cfg.StreamedSweeps = true
	cfg.DisableCache = true
	cfg.MaxInstructions = 50 // every golden run fails verifier-side
	svc := fleet.NewService(cfg)
	defer svc.Close()

	pump := workloads.SyringePump()
	prog, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}
	const K = 3
	var ids []fleet.DeviceID
	for i := 0; i < K; i++ {
		d := f.spawn(t, pump, i, nil)
		if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, d.id)
	}

	// Enough sweeps to trip every breaker were these failures wrongly
	// attributed to the devices (threshold 2). Cover both protocol
	// paths: the streamed session fails at Open (golden run), the
	// plain exchange completes but Verify cannot compute the golden
	// comparison (Result.VerifierFault).
	sweepers := []func() (fleet.SweepReport, error){
		func() (fleet.SweepReport, error) { return svc.SweepProgramStreamed(pid, pump.Input) },
		func() (fleet.SweepReport, error) { return svc.SweepProgram(pid, pump.Input) },
	}
	for i := 0; i < 4; i++ {
		rep, err := sweepers[i%2]()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors != K || rep.Rejected != 0 || len(rep.NewlyTripped) != 0 || len(rep.NewlyQuarantined) != 0 {
			t.Fatalf("sweep %d: %+v", i+1, rep)
		}
	}
	for _, id := range ids {
		st, _ := svc.Device(id)
		if st.Breaker != fleet.BreakerHealthy || st.TransportErrors != 0 {
			t.Fatalf("verifier-local failure attributed to device %s: %+v", id, st)
		}
		if st.Quarantined || st.Rejected != 0 {
			t.Fatalf("verifier-local failure became a measurement verdict for %s: %+v", id, st)
		}
	}
	snap := svc.Metrics()
	if snap.LocalErrors != 4*K || snap.BreakerTrips != 0 || snap.Tripped != 0 {
		t.Fatalf("metrics: %v", snap)
	}
}

// TestCorruptedReportNeverAccepted checks wire corruption: a flipped
// byte inside the report frame must never verify — the round ends as a
// protocol error or an unauthenticated rejection, the sweep completes,
// and the honest device is untouched. Crucially the corrupted device
// must NOT be quarantined (an on-path attacker or a flaky link could
// otherwise quarantine honest devices) — the fault feeds its transport
// breaker instead.
func TestCorruptedReportNeverAccepted(t *testing.T) {
	f := newFabric()
	plans := newPlannedDial()
	svc := fleet.NewService(chaosConfig(plans.wrap(f.dial)))
	defer svc.Close()

	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{w.Input})
	if err != nil {
		t.Fatal(err)
	}
	honest := spawnDevice(t, f, w, 0, nil)
	if err := svc.Enroll(honest.id, pid, honest.pub, honest.addr); err != nil {
		t.Fatal(err)
	}
	corrupt := spawnDevice(t, f, w, 1, nil)
	if err := svc.Enroll(corrupt.id, pid, corrupt.pub, corrupt.addr); err != nil {
		t.Fatal(err)
	}
	// Byte 40 of the read stream lands well inside the report payload
	// (the frame header is 5 bytes; the report carries a 64-byte hash
	// and a 64-byte signature), so framing survives but the content is
	// tampered.
	plans.set(corrupt.addr, faultconn.Plan{CorruptReadAt: 40})

	rep, err := svc.SweepProgram(pid, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 1 {
		t.Fatalf("honest device not accepted: %+v", rep)
	}
	if rep.Rejected+rep.Errors != 1 {
		t.Fatalf("corrupted round neither rejected nor errored: %+v", rep)
	}
	st, _ := svc.Device(corrupt.id)
	if st.Accepted != 0 {
		t.Fatalf("corrupted report was accepted: %+v", st)
	}
	if st.Quarantined || st.ConsecutiveRejects != 0 || st.Rejected != 0 {
		t.Fatalf("wire corruption attributed a measurement verdict to an honest device: %+v", st)
	}
	if st.Breaker != fleet.BreakerDegraded || st.TransportErrors == 0 {
		t.Fatalf("wire corruption did not land in the transport counters: %+v", st)
	}
	if hst, _ := svc.Device(honest.id); hst.Accepted != 1 || hst.Quarantined {
		t.Fatalf("honest device: %+v", hst)
	}

	// Persistent corruption trips the breaker (threshold 2) instead of
	// ever reaching quarantine.
	if _, err := svc.SweepProgram(pid, w.Input); err != nil {
		t.Fatal(err)
	}
	st, _ = svc.Device(corrupt.id)
	if st.Quarantined || st.Breaker != fleet.BreakerTripped {
		t.Fatalf("persistently corrupted device: %+v, want tripped breaker and no quarantine", st)
	}
}
