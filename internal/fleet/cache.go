package fleet

import (
	"sync"
	"sync/atomic"

	"lofat/internal/attest"
	"lofat/internal/core"
)

// MeasurementCache is the fleet-wide golden-measurement store. It
// implements attest.ExpectationCache, so device verifiers derived from
// one template all read through it: the first verification of a
// (program, input) pair simulates the golden run and publishes it; every
// subsequent verification — on any device in the fleet — is a pure
// protocol + signature + hash/metadata comparison with no simulation.
//
// Entries are immutable once published (verifiers only read the shared
// *core.Measurement), so a plain RWMutex map suffices. Keys are the
// verifier-built opaque strings of attest.ExpectationCache, which cover
// program identity, device configuration and input. Hit/miss counters
// feed the fleet metrics.
type MeasurementCache struct {
	mu      sync.RWMutex
	entries map[string]*core.Measurement

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewMeasurementCache returns an empty cache.
func NewMeasurementCache() *MeasurementCache {
	return &MeasurementCache{entries: make(map[string]*core.Measurement)}
}

// GetExpectation implements attest.ExpectationCache.
func (c *MeasurementCache) GetExpectation(key string) (*core.Measurement, bool) {
	c.mu.RLock()
	m, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return m, ok
}

// PutExpectation implements attest.ExpectationCache.
func (c *MeasurementCache) PutExpectation(key string, m *core.Measurement) {
	c.mu.Lock()
	c.entries[key] = m
	c.mu.Unlock()
}

// Warm precomputes the golden measurements for a set of inputs through
// a verifier already wired to this cache (RegisterProgram does the
// wiring) — attest.Precompute layered fleet-wide. Sweeps call this with
// the round's input before fanning out to the worker pool, so
// concurrent workers never race to simulate the same golden run.
func (c *MeasurementCache) Warm(v *attest.Verifier, inputs [][]uint32) error {
	_, err := v.Precompute(inputs)
	return err
}

// Hits reports shared-cache lookups that avoided a golden run.
func (c *MeasurementCache) Hits() uint64 { return c.hits.Load() }

// Misses reports shared-cache lookups that fell through to simulation.
func (c *MeasurementCache) Misses() uint64 { return c.misses.Load() }

// HitRate reports hits/(hits+misses), or 0 before any lookup.
func (c *MeasurementCache) HitRate() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Keys lists the cached measurement keys. The keys are the opaque
// verifier-built strings of attest.ExpectationCache; a persistence
// layer records them so a restarted node knows which golden runs it had
// warmed (the measurements themselves are recomputed, not persisted —
// they are derivable and large, the keys are neither).
func (c *MeasurementCache) Keys() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	return out
}

// Len reports the number of cached (program, input) measurements.
func (c *MeasurementCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
