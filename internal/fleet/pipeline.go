package fleet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"lofat/internal/attest"
	"lofat/internal/obs"
	"lofat/internal/stream"
)

// Round is one unit of pipeline work: challenge device with input.
type Round struct {
	Device DeviceID
	Input  []uint32
	// Streamed selects the segmented streaming protocol for this round:
	// the device is verified incrementally and cut off at the first
	// divergent segment instead of after the run completes.
	Streamed bool

	// gen is the sweep generation the round belongs to (0 for direct
	// submissions); tripped-breaker devices pace half-open probes by it.
	gen uint64
}

// Outcome is the pipeline's record of one completed round.
type Outcome struct {
	Device DeviceID
	// Skipped is set when no exchange happened (device quarantined, or
	// its transport breaker open — see BreakerOpen).
	Skipped bool
	// BreakerOpen is set alongside Skipped when the round was dropped
	// because the device's transport breaker is tripped.
	BreakerOpen bool
	// BreakerProbe marks this round as a half-open probe against a
	// tripped breaker.
	BreakerProbe bool
	// Result is the verifier's decision (valid when Err is nil and the
	// round was not skipped).
	Result attest.Result
	// Stream carries the streaming-specific outcome of a streamed round
	// (segments consumed, early abort, divergence localization).
	Stream *stream.Result
	// Err reports transport or attestation failures (after all
	// transport attempts were exhausted).
	Err error
	// Attempts is the number of transport attempts made (> 1 when the
	// round was retried).
	Attempts int
	// Quarantined is set when this round newly quarantined the device.
	Quarantined bool
	// Tripped is set when this round's failure tripped the device's
	// transport breaker.
	Tripped bool
	// Duration covers the full round: every dial, exchange and backoff.
	Duration time.Duration
}

// label is the outcome's one-word trace annotation (static strings
// only — labeling must not allocate).
func (o *Outcome) label() string {
	switch {
	case o.Skipped:
		return "skipped"
	case o.Err != nil:
		return "error"
	case o.Result.Accepted:
		return "accepted"
	}
	return "rejected"
}

// job carries a round through the queue to a worker, with its result
// slot and completion latch.
type job struct {
	round    Round
	out      *Outcome
	wg       *sync.WaitGroup
	enqueued time.Time
}

// worker drains the job queue until the service closes. Each worker is
// one trace track: its rounds (and their nested exchange/verify/segment
// spans) render as a lane in Perfetto, with queue-wait spans showing
// the gap between enqueue and pickup.
func (s *Service) worker() {
	defer s.workers.Done()
	sc := obs.Scope{T: s.tracer, TID: s.tracer.NextTID()}
	for j := range s.jobs {
		s.metrics.queueWait.Observe(uint64(time.Since(j.enqueued)))
		sc.StartAt("queue-wait", "fleet", j.enqueued).End()
		s.metrics.workersBusy.Add(1)
		*j.out = s.process(j.round, sc)
		s.metrics.workersBusy.Add(-1)
		j.wg.Done()
	}
}

// DialError marks a failure to open the device transport at all, as
// opposed to a failure mid-exchange.
type DialError struct {
	Addr string
	Err  error
}

func (e *DialError) Error() string { return fmt.Sprintf("fleet: dial %q: %v", e.Addr, e.Err) }

func (e *DialError) Unwrap() error { return e.Err }

// retryable reports whether a failed attempt is worth repeating: dial
// failures and transport I/O errors may be transient, while protocol
// violations and prover-side refusals are deterministic — a byzantine
// peer does not improve on retry.
func retryable(err error) bool {
	var de *DialError
	var te *attest.TransportError
	return errors.As(err, &de) || errors.As(err, &te)
}

// process runs one attestation round end to end: registry lookup,
// quarantine and breaker gates, then up to RetryAttempts transport
// attempts of the Figure 2 exchange (dial, challenge with per-phase
// deadlines, prover execution, verification) with exponential backoff
// between them, and finally metrics and registry bookkeeping.
func (s *Service) process(r Round, sc obs.Scope) (out Outcome) {
	out.Device = r.Device
	start := time.Now()
	sp := sc.Start("round", "fleet").Arg("device", string(r.Device))
	defer func() {
		out.Duration = time.Since(start)
		s.metrics.roundLatency.Observe(uint64(out.Duration))
		sp.Arg("outcome", out.label()).End()
	}()

	d, ok := s.reg.get(r.Device)
	if !ok {
		out.Err = fmt.Errorf("fleet: device %q not enrolled", r.Device)
		fc := s.metrics.recordFailure(out.Err)
		if s.flight != nil {
			s.flight.Record(obs.Event{Device: string(r.Device), Kind: obs.KindTransportError,
				Class: fc.String(), Detail: out.Err.Error(), Sweep: r.gen})
		}
		return out
	}
	if _, quarantined := s.quarantineCheck(d); quarantined {
		out.Skipped = true
		s.metrics.skipped.Add(1)
		return out
	}
	skip, probe := s.reg.breakerCheck(d.id, r.gen, s.cfg.BreakerProbeAfter)
	if skip {
		out.Skipped = true
		out.BreakerOpen = true
		s.metrics.skipped.Add(1)
		s.metrics.breakerSkips.Add(1)
		return out
	}
	attempts := s.cfg.RetryAttempts
	if probe {
		// Half-open: one cautious attempt, no retry ladder.
		out.BreakerProbe = true
		s.metrics.breakerProbes.Add(1)
		if s.flight != nil {
			s.flight.Record(obs.Event{Device: string(r.Device), Kind: obs.KindBreakerProbe, Sweep: r.gen})
		}
		attempts = 1
	}

	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			s.metrics.retries.Add(1)
			if s.flight != nil {
				s.flight.Record(obs.Event{Device: string(r.Device), Kind: obs.KindRetry,
					Class: classifyFailure(lastErr).String(), Detail: lastErr.Error(), Sweep: r.gen})
			}
			time.Sleep(s.cfg.backoff(attempt - 1))
		}
		out.Attempts = attempt
		err := s.exchange(d, r, &out, sc)
		if err == nil {
			return out
		}
		lastErr = err
		if !retryable(err) {
			break
		}
	}
	out.Err = lastErr
	fc := s.metrics.recordFailure(lastErr)
	if s.flight != nil {
		s.flight.Record(obs.Event{Device: string(r.Device), Kind: obs.KindTransportError,
			Class: fc.String(), Detail: lastErr.Error(), Sweep: r.gen})
	}
	// Verifier-local failures (golden run, cache, entropy — no bytes
	// moved) carry no evidence about the device: they must not advance
	// its breaker, or a verifier misconfiguration would trip breakers
	// fleet-wide on healthy devices.
	var le *attest.LocalError
	if errors.As(lastErr, &le) {
		return out
	}
	if s.reg.recordError(d.id, lastErr, s.cfg.BreakerThreshold, s.roundGen(r)) {
		out.Tripped = true
		s.metrics.breakerTrips.Add(1)
		if s.flight != nil {
			s.flight.Record(obs.Event{Device: string(r.Device), Kind: obs.KindBreakerTrip,
				Class: fc.String(), Detail: "consecutive transport failures reached breaker threshold", Sweep: r.gen})
		}
	}
	return out
}

// roundGen is the sweep generation breaker bookkeeping anchors on.
// Direct rounds carry none, so they anchor at the current one: a trip
// outside sweeps still sits out BreakerProbeAfter sweeps before its
// first probe.
func (s *Service) roundGen(r Round) uint64 {
	if r.gen != 0 {
		return r.gen
	}
	return s.sweepGen.Load()
}

// exchange dials the device and drives one protocol exchange with
// per-phase deadlines, folding success bookkeeping (metrics, quarantine
// policy, breaker close) into out when the exchange completes.
func (s *Service) exchange(d *device, r Round, out *Outcome, sc obs.Scope) error {
	dsp := sc.Start("dial", "fleet")
	conn, err := s.cfg.Dial(d.addr)
	dsp.End()
	if err != nil {
		return &DialError{Addr: d.addr, Err: err}
	}
	defer conn.Close()
	to := s.cfg.timeouts()
	if r.Streamed {
		sv := stream.NewVerifier(d.verifier, stream.Config{
			SegmentEvents: s.cfg.StreamSegmentEvents,
			Trace:         sc,
			SegmentHist:   &s.metrics.segmentVerify,
		})
		xsp := sc.Start("exchange", "stream")
		sres, err := stream.RequestStreamTimeout(conn, sv, r.Input, to)
		xsp.End()
		if err != nil {
			return err
		}
		// The deferred Close drops the transport right here — for an
		// early-aborted round that is what cuts the device off
		// mid-run: its next segment write fails and the attacked
		// workload stops executing.
		out.Result = sres.Result
		out.Stream = &sres
		s.metrics.recordStream(sres)
		if sres.EarlyAbort && s.flight != nil {
			detail := "rejected mid-run"
			if sres.Divergence != nil {
				detail = fmt.Sprintf("divergence at segment %d, event %d", sres.Divergence.Segment, sres.Divergence.Event)
			}
			s.flight.Record(obs.Event{Device: string(r.Device), Kind: obs.KindEarlyAbort,
				Class: sres.Class.String(), Detail: detail, Sweep: r.gen})
		}
		s.recordVerified(d, sres.Result, r, out)
		return nil
	}
	res, err := attest.RequestFromScoped(conn, d.verifier, r.Input, to, sc)
	if err != nil {
		return err
	}
	if res.VerifierFault {
		// The exchange completed but the verifier could not compute
		// the golden comparison: a verifier-local failure wearing a
		// rejection — route it as one so it is neither a measurement
		// verdict against the device nor breaker evidence.
		return &attest.LocalError{Err: fmt.Errorf("fleet: golden comparison unavailable: %s", strings.Join(res.Findings, "; "))}
	}
	out.Result = res
	s.metrics.record(res)
	s.recordVerified(d, res, r, out)
	return nil
}

// recordVerified applies the registry bookkeeping of a completed
// exchange to the outcome. Unauthenticated rejects advance the breaker
// (see authenticatedReject), so they too can trip it.
func (s *Service) recordVerified(d *device, res attest.Result, r Round, out *Outcome) {
	ro := s.reg.recordResult(d.id, res, s.cfg.QuarantineAfter, s.cfg.BreakerThreshold, s.roundGen(r))
	out.Quarantined = ro.NewlyQuarantined
	if ro.BreakerClosed {
		s.metrics.breakerResets.Add(1)
	}
	if ro.Tripped {
		out.Tripped = true
		s.metrics.breakerTrips.Add(1)
	}
	if s.flight != nil {
		detail := ""
		if !res.Accepted && len(res.Findings) > 0 {
			detail = res.Findings[0]
		}
		s.flight.Record(obs.Event{Device: string(d.id), Kind: obs.KindVerdict,
			Class: res.Class.String(), Detail: detail, Sweep: r.gen})
		if ro.BreakerClosed {
			s.flight.Record(obs.Event{Device: string(d.id), Kind: obs.KindBreakerReset,
				Detail: "completed exchange closed the breaker", Sweep: r.gen})
		}
		if ro.Tripped {
			s.flight.Record(obs.Event{Device: string(d.id), Kind: obs.KindBreakerTrip,
				Detail: "unauthenticated rejects reached breaker threshold", Sweep: r.gen})
		}
		if ro.NewlyQuarantined {
			s.flight.Record(obs.Event{Device: string(d.id), Kind: obs.KindQuarantine,
				Class: res.Class.String(), Detail: detail, Sweep: r.gen})
		}
	}
}

// quarantineCheck reads the device's quarantine flag under its shard
// lock (the flag may flip between enqueue and processing).
func (s *Service) quarantineCheck(d *device) (DeviceID, bool) {
	sh := s.reg.shardFor(d.id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return d.id, d.quarantined
}

// Submit runs one round through the pipeline and waits for its outcome.
func (s *Service) Submit(r Round) (Outcome, error) {
	outs, err := s.SubmitBatch([]Round{r})
	if err != nil {
		return Outcome{}, err
	}
	return outs[0], nil
}

// SubmitBatch enqueues a batch of rounds on the bounded job queue and
// waits until the worker pool has completed them all. Enqueueing blocks
// when the queue is full (backpressure instead of unbounded buffering);
// multiple batches may be submitted concurrently. Outcomes are returned
// in submission order. If the service is closed mid-batch, the rounds
// already enqueued still run to completion and their outcomes are
// returned alongside ErrClosed — workers drain the queue on Close, so
// their effects (metrics, quarantines) happen either way.
func (s *Service) SubmitBatch(rounds []Round) ([]Outcome, error) {
	outs := make([]Outcome, len(rounds))
	var wg sync.WaitGroup
	wg.Add(len(rounds))
	for i := range rounds {
		j := &job{round: rounds[i], out: &outs[i], wg: &wg, enqueued: time.Now()}
		s.mu.RLock()
		if s.closed {
			s.mu.RUnlock()
			// Release the latch for the rounds that will never run,
			// then wait for the ones already in flight.
			for k := i; k < len(rounds); k++ {
				wg.Done()
			}
			wg.Wait()
			return outs[:i], ErrClosed
		}
		s.jobs <- j
		s.mu.RUnlock()
	}
	wg.Wait()
	return outs, nil
}
