package fleet

import (
	"fmt"
	"sync"
	"time"

	"lofat/internal/attest"
	"lofat/internal/stream"
)

// Round is one unit of pipeline work: challenge device with input.
type Round struct {
	Device DeviceID
	Input  []uint32
	// Streamed selects the segmented streaming protocol for this round:
	// the device is verified incrementally and cut off at the first
	// divergent segment instead of after the run completes.
	Streamed bool
}

// Outcome is the pipeline's record of one completed round.
type Outcome struct {
	Device DeviceID
	// Skipped is set when no exchange happened (device quarantined).
	Skipped bool
	// Result is the verifier's decision (valid when Err is nil and the
	// round was not skipped).
	Result attest.Result
	// Stream carries the streaming-specific outcome of a streamed round
	// (segments consumed, early abort, divergence localization).
	Stream *stream.Result
	// Err reports transport or attestation failures.
	Err error
	// Quarantined is set when this round newly quarantined the device.
	Quarantined bool
	// Duration covers the full exchange: dial, challenge, prover
	// execution, verification.
	Duration time.Duration
}

// job carries a round through the queue to a worker, with its result
// slot and completion latch.
type job struct {
	round Round
	out   *Outcome
	wg    *sync.WaitGroup
}

// worker drains the job queue until the service closes.
func (s *Service) worker() {
	defer s.workers.Done()
	for j := range s.jobs {
		*j.out = s.process(j.round)
		j.wg.Done()
	}
}

// process runs one attestation round end to end: registry lookup,
// transport dial, the Figure 2 exchange (prover execution + report
// verification), then metrics and registry bookkeeping.
func (s *Service) process(r Round) Outcome {
	out := Outcome{Device: r.Device}
	start := time.Now()
	defer func() { out.Duration = time.Since(start) }()

	d, ok := s.reg.get(r.Device)
	if !ok {
		out.Err = fmt.Errorf("fleet: device %q not enrolled", r.Device)
		s.metrics.errors.Add(1)
		return out
	}
	if _, quarantined := s.quarantineCheck(d); quarantined {
		out.Skipped = true
		s.metrics.skipped.Add(1)
		return out
	}
	conn, err := s.cfg.Dial(d.addr)
	if err != nil {
		out.Err = fmt.Errorf("fleet: dial %q: %w", d.addr, err)
		s.metrics.errors.Add(1)
		s.reg.recordError(d.id, out.Err)
		return out
	}
	defer conn.Close()
	if r.Streamed {
		sv := stream.NewVerifier(d.verifier, stream.Config{SegmentEvents: s.cfg.StreamSegmentEvents})
		sres, err := stream.RequestStream(conn, sv, r.Input)
		if err != nil {
			out.Err = err
			s.metrics.errors.Add(1)
			s.reg.recordError(d.id, err)
			return out
		}
		// The deferred Close drops the transport right here — for an
		// early-aborted round that is what cuts the device off
		// mid-run: its next segment write fails and the attacked
		// workload stops executing.
		out.Result = sres.Result
		out.Stream = &sres
		s.metrics.recordStream(sres)
		out.Quarantined = s.reg.recordResult(d.id, sres.Result, s.cfg.QuarantineAfter)
		return out
	}
	res, err := attest.RequestFrom(conn, d.verifier, r.Input)
	if err != nil {
		out.Err = err
		s.metrics.errors.Add(1)
		s.reg.recordError(d.id, err)
		return out
	}
	out.Result = res
	s.metrics.record(res)
	out.Quarantined = s.reg.recordResult(d.id, res, s.cfg.QuarantineAfter)
	return out
}

// quarantineCheck reads the device's quarantine flag under its shard
// lock (the flag may flip between enqueue and processing).
func (s *Service) quarantineCheck(d *device) (DeviceID, bool) {
	sh := s.reg.shardFor(d.id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return d.id, d.quarantined
}

// Submit runs one round through the pipeline and waits for its outcome.
func (s *Service) Submit(r Round) (Outcome, error) {
	outs, err := s.SubmitBatch([]Round{r})
	if err != nil {
		return Outcome{}, err
	}
	return outs[0], nil
}

// SubmitBatch enqueues a batch of rounds on the bounded job queue and
// waits until the worker pool has completed them all. Enqueueing blocks
// when the queue is full (backpressure instead of unbounded buffering);
// multiple batches may be submitted concurrently. Outcomes are returned
// in submission order. If the service is closed mid-batch, the rounds
// already enqueued still run to completion and their outcomes are
// returned alongside ErrClosed — workers drain the queue on Close, so
// their effects (metrics, quarantines) happen either way.
func (s *Service) SubmitBatch(rounds []Round) ([]Outcome, error) {
	outs := make([]Outcome, len(rounds))
	var wg sync.WaitGroup
	wg.Add(len(rounds))
	for i := range rounds {
		j := &job{round: rounds[i], out: &outs[i], wg: &wg}
		s.mu.RLock()
		if s.closed {
			s.mu.RUnlock()
			// Release the latch for the rounds that will never run,
			// then wait for the ones already in flight.
			for k := i; k < len(rounds); k++ {
				wg.Done()
			}
			wg.Wait()
			return outs[:i], ErrClosed
		}
		s.jobs <- j
		s.mu.RUnlock()
	}
	wg.Wait()
	return outs, nil
}
