package faultconn_test

import (
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"lofat/internal/fleet/faultconn"
)

// echoPipe returns a faulted client end whose peer echoes every byte
// back, plus a cleanup.
func echoPipe(t *testing.T, plan faultconn.Plan) *faultconn.Conn {
	t.Helper()
	client, server := net.Pipe()
	go func() {
		buf := make([]byte, 256)
		for {
			n, err := server.Read(buf)
			if n > 0 {
				if _, werr := server.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	c := faultconn.New(client, plan)
	t.Cleanup(func() { c.Close(); server.Close() })
	return c
}

func TestPassthrough(t *testing.T) {
	c := echoPipe(t, faultconn.Plan{})
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echoed %q", buf)
	}
}

func TestStallReadHonorsDeadline(t *testing.T) {
	c := echoPipe(t, faultconn.Plan{StallReadAfter: 3})
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf[:3]); err != nil {
		t.Fatalf("pre-stall read: %v", err)
	}
	if err := c.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := c.Read(buf[3:])
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read returned %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled read blocked %v despite deadline", elapsed)
	}
}

func TestStallWriteSwallowsSilently(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	c := faultconn.New(client, faultconn.Plan{StallWriteAfter: 3})
	defer c.Close()

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		server.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _ := server.Read(buf)
		got <- buf[:n]
	}()
	// The write "succeeds" in full but only 3 bytes cross the wire.
	if n, err := c.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("stalled write: n=%d err=%v", n, err)
	}
	if b := <-got; string(b) != "hel" {
		t.Fatalf("peer saw %q, want %q (mid-frame stall)", b, "hel")
	}
}

func TestCloseAfterDropsBothEnds(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	c := faultconn.New(client, faultconn.Plan{CloseAfter: 2})
	defer c.Close()

	peerErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		server.SetReadDeadline(time.Now().Add(2 * time.Second))
		for {
			if _, err := server.Read(buf); err != nil {
				peerErr <- err
				return
			}
		}
	}()
	n, err := c.Write([]byte("hello"))
	if err == nil || n > 2 {
		t.Fatalf("write past drop: n=%d err=%v", n, err)
	}
	if err := <-peerErr; err == nil {
		t.Fatal("peer read survived the drop")
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write on dropped conn succeeded")
	}
}

func TestCorruptReadAt(t *testing.T) {
	c := echoPipe(t, faultconn.Plan{CorruptReadAt: 2})
	if _, err := c.Write([]byte{0x10, 0x20, 0x30}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	want := []byte{0x10, 0x20 ^ 0xFF, 0x30}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("read %x, want %x", buf, want)
		}
	}
}

func TestTearWrite(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	c := faultconn.New(client, faultconn.Plan{TearWriteAfter: 2})
	defer c.Close()

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		server.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _ := server.Read(buf)
		got <- buf[:n]
	}()
	n, err := c.Write([]byte("hello"))
	if !errors.Is(err, faultconn.ErrTorn) {
		t.Fatalf("torn write returned %v, want ErrTorn", err)
	}
	if n != 2 {
		t.Fatalf("torn write delivered %d bytes, want 2", n)
	}
	if b := <-got; string(b) != "he" {
		t.Fatalf("peer saw %q, want %q (torn frame)", b, "he")
	}
}

func TestLatency(t *testing.T) {
	c := echoPipe(t, faultconn.Plan{Latency: 30 * time.Millisecond})
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 60ms (latency on write and read)", elapsed)
	}
}

func TestWrapOnlyPlannedAddrs(t *testing.T) {
	dial := func(addr string) (io.ReadWriteCloser, error) {
		client, server := net.Pipe()
		go func() { io.Copy(server, server) }()
		return client, nil
	}
	wrapped := faultconn.Wrap(dial, func(addr string) (faultconn.Plan, bool) {
		if addr == "bad" {
			return faultconn.Plan{StallReadAfter: 1}, true
		}
		return faultconn.Plan{}, false
	})
	good, err := wrapped("good")
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if _, ok := good.(*faultconn.Conn); ok {
		t.Fatal("unplanned address was wrapped")
	}
	bad, err := wrapped("bad")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if _, ok := bad.(*faultconn.Conn); !ok {
		t.Fatal("planned address was not wrapped")
	}
}
