// Package faultconn injects transport faults into attestation
// connections for chaos testing the fleet's resilience layer. A Conn
// wraps any io.ReadWriteCloser (net.Conn, net.Pipe ends, in-memory
// fabrics) and degrades it according to a Plan: added latency, silent
// mid-frame stalls, abrupt connection drops, wire corruption, and torn
// writes — the failure modes a compromised or flaky prover can impose
// on the verifier far more cheaply than forging a measurement.
//
// Stalls cooperate with deadlines: a stalled Read blocks until the
// read deadline set through SetReadDeadline expires (returning
// os.ErrDeadlineExceeded, like a real net.Conn) or the conn closes.
// Callers that never arm a deadline hang forever — exactly the bug the
// fleet's per-phase timeouts exist to rule out.
package faultconn

import (
	"errors"
	"io"
	"os"
	"sync"
	"time"
)

// ErrTorn is reported by a write torn by Plan.TearWriteAfter: part of
// the buffer reached the wire, the rest did not.
var ErrTorn = errors.New("faultconn: torn write")

// Plan selects the faults injected into one connection. The zero value
// injects nothing. Byte thresholds count from the start of the
// connection; 0 disables the fault.
type Plan struct {
	// Latency delays every Read and Write, simulating a slow link.
	Latency time.Duration
	// StallWriteAfter: once this many bytes have been written, further
	// bytes are silently swallowed — the writes report success but
	// never reach the peer. A threshold inside a frame leaves the peer
	// blocked mid-ReadFull: the mid-frame stall.
	StallWriteAfter int
	// StallReadAfter: once this many bytes have been read, Read blocks
	// until the read deadline expires (os.ErrDeadlineExceeded) or the
	// conn closes — a peer that goes silent mid-reply.
	StallReadAfter int
	// TearWriteAfter: the write crossing this threshold delivers the
	// bytes up to it, drops the rest, and reports ErrTorn — an I/O
	// error landing between the bytes of a frame.
	TearWriteAfter int
	// CloseAfter: once this many bytes have moved in either direction,
	// the connection drops abruptly (both ends).
	CloseAfter int
	// CorruptReadAt flips the bits of read-stream byte N (1-based) —
	// wire corruption that leaves framing intact when N lands inside a
	// payload.
	CorruptReadAt int
}

// Conn is a fault-injected connection. It forwards deadlines to the
// underlying conn when supported, and tracks the read deadline itself
// so injected stalls respect it even when the underlying transport
// never sees the blocked call.
type Conn struct {
	inner io.ReadWriteCloser
	plan  Plan

	mu      sync.Mutex
	read    int // bytes delivered to the reader
	written int // bytes the writer believes it sent

	dlMu         sync.Mutex
	readDeadline time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

// New wraps inner with the plan's faults.
func New(inner io.ReadWriteCloser, plan Plan) *Conn {
	return &Conn{inner: inner, plan: plan, closed: make(chan struct{})}
}

// Wrap adapts a dial function (the shape of fleet.DialFunc) so that
// connections to addresses the plan function knows are fault-injected;
// other addresses pass through untouched.
func Wrap(dial func(addr string) (io.ReadWriteCloser, error), plan func(addr string) (Plan, bool)) func(addr string) (io.ReadWriteCloser, error) {
	return func(addr string) (io.ReadWriteCloser, error) {
		conn, err := dial(addr)
		if err != nil {
			return nil, err
		}
		if p, ok := plan(addr); ok {
			return New(conn, p), nil
		}
		return conn, nil
	}
}

// delay applies the plan latency, aborting early if the conn closes.
func (c *Conn) delay() error {
	select {
	case <-c.closed:
		return io.ErrClosedPipe
	default:
	}
	if c.plan.Latency <= 0 {
		return nil
	}
	t := time.NewTimer(c.plan.Latency)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closed:
		return io.ErrClosedPipe
	}
}

// stall blocks like a silent peer: until the tracked read deadline
// expires or the conn closes.
func (c *Conn) stall() error {
	c.dlMu.Lock()
	dl := c.readDeadline
	c.dlMu.Unlock()
	var expire <-chan time.Time
	if !dl.IsZero() {
		t := time.NewTimer(time.Until(dl))
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-expire:
		return os.ErrDeadlineExceeded
	case <-c.closed:
		return io.ErrClosedPipe
	}
}

func (c *Conn) Read(p []byte) (int, error) {
	if err := c.delay(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	if ca := c.plan.CloseAfter; ca > 0 && c.read+c.written >= ca {
		c.mu.Unlock()
		c.Close()
		return 0, io.ErrUnexpectedEOF
	}
	limit := len(p)
	if sa := c.plan.StallReadAfter; sa > 0 {
		if c.read >= sa {
			c.mu.Unlock()
			return 0, c.stall()
		}
		if room := sa - c.read; limit > room {
			limit = room
		}
	}
	if ca := c.plan.CloseAfter; ca > 0 {
		if room := ca - c.read - c.written; limit > room {
			limit = room
		}
	}
	start := c.read
	c.mu.Unlock()

	n, err := c.inner.Read(p[:limit])
	c.mu.Lock()
	c.read += n
	total := c.read + c.written
	c.mu.Unlock()
	if at := c.plan.CorruptReadAt; at > 0 && start < at && at <= start+n {
		p[at-start-1] ^= 0xFF
	}
	if err == nil && c.plan.CloseAfter > 0 && total >= c.plan.CloseAfter {
		// The byte budget is spent: drop the connection for both ends.
		c.Close()
	}
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	if err := c.delay(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	written := c.written
	read := c.read
	c.mu.Unlock()

	if ca := c.plan.CloseAfter; ca > 0 {
		if written+read >= ca {
			c.Close()
			return 0, io.ErrClosedPipe
		}
		if room := ca - written - read; len(p) > room {
			n, _ := c.inner.Write(p[:room])
			c.mu.Lock()
			c.written += n
			c.mu.Unlock()
			c.Close()
			return n, io.ErrClosedPipe
		}
	}
	if sa := c.plan.StallWriteAfter; sa > 0 && written+len(p) > sa {
		if keep := sa - written; keep > 0 {
			if n, err := c.inner.Write(p[:keep]); err != nil {
				c.mu.Lock()
				c.written += n
				c.mu.Unlock()
				return n, err
			}
		}
		// The remainder is swallowed: the writer sees success, the
		// peer waits for bytes that never come.
		c.mu.Lock()
		c.written += len(p)
		c.mu.Unlock()
		return len(p), nil
	}
	if ta := c.plan.TearWriteAfter; ta > 0 && written+len(p) > ta {
		keep := ta - written
		var n int
		if keep > 0 {
			n, _ = c.inner.Write(p[:keep])
		}
		c.mu.Lock()
		c.written += n
		c.mu.Unlock()
		return n, ErrTorn
	}
	n, err := c.inner.Write(p)
	c.mu.Lock()
	c.written += n
	c.mu.Unlock()
	return n, err
}

// Close drops the connection; injected stalls unblock immediately.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.inner.Close()
	})
	return err
}

// SetReadDeadline tracks the deadline for injected stalls and forwards
// it to the underlying conn when supported.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.readDeadline = t
	c.dlMu.Unlock()
	if dc, ok := c.inner.(interface{ SetReadDeadline(time.Time) error }); ok {
		return dc.SetReadDeadline(t)
	}
	return nil
}

// SetWriteDeadline forwards to the underlying conn when supported.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	if dc, ok := c.inner.(interface{ SetWriteDeadline(time.Time) error }); ok {
		return dc.SetWriteDeadline(t)
	}
	return nil
}
