package fleet_test

import (
	"crypto/rand"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/fleet"
	"lofat/internal/sig"
	"lofat/internal/stream"
	"lofat/internal/workloads"
)

// streamFabric is the in-memory network for streaming-capable devices:
// each address maps to a stream.Registry (which serves both the
// classic and the segmented protocol on one connection).
type streamFabric struct {
	mu   sync.Mutex
	regs map[string]*stream.Registry
}

func newStreamFabric() *streamFabric {
	return &streamFabric{regs: make(map[string]*stream.Registry)}
}

func (f *streamFabric) dial(addr string) (io.ReadWriteCloser, error) {
	f.mu.Lock()
	reg, ok := f.regs[addr]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("streamFabric: no device at %q", addr)
	}
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		_ = reg.ServeConn(server)
	}()
	return client, nil
}

// spawnStreamDevice provisions a streaming-capable prover.
func (f *streamFabric) spawn(t testing.TB, w workloads.Workload, i int, adv attest.Adversary) simDevice {
	t.Helper()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ap := attest.NewProver(prog, core.Config{}, keys)
	ap.Adversary = adv
	reg := stream.NewRegistry()
	reg.Register(stream.NewProver(ap))
	d := simDevice{
		id:   fleet.DeviceID(fmt.Sprintf("s-%s-%03d", w.Name, i)),
		pub:  keys.Public(),
		addr: fmt.Sprintf("mem-stream://%s/%d", w.Name, i),
	}
	f.mu.Lock()
	f.regs[d.addr] = reg
	f.mu.Unlock()
	return d
}

// TestFleetStreamedSweep drives a streamed sweep over honest devices
// plus attacked ones, checking that attacked devices are rejected at a
// divergent segment (early abort, mid-run), quarantined, and that the
// per-segment fleet metrics are populated.
func TestFleetStreamedSweep(t *testing.T) {
	f := newStreamFabric()
	svc := fleet.NewService(fleet.Config{
		Dial:                f.dial,
		StreamSegmentEvents: 8,
	})
	defer svc.Close()

	pump := workloads.SyringePump()
	pumpProg, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pumpID, err := svc.RegisterProgram(pumpProg, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}

	const honest = 20
	for i := 0; i < honest; i++ {
		d := f.spawn(t, pump, i, nil)
		if err := svc.Enroll(d.id, pumpID, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
	}

	atk, ok := workloads.AttackByName("loop-counter")
	if !ok {
		t.Fatal("loop-counter attack missing")
	}
	// Two attacked devices: one inspected via a direct streamed round,
	// one left for the sweep (the adversaries are one-shot closures, so
	// each device is attacked exactly once).
	probe := f.spawn(t, pump, honest, atk.Build(pumpProg))
	if err := svc.Enroll(probe.id, pumpID, probe.pub, probe.addr); err != nil {
		t.Fatal(err)
	}
	swept := f.spawn(t, pump, honest+1, atk.Build(pumpProg))
	if err := svc.Enroll(swept.id, pumpID, swept.pub, swept.addr); err != nil {
		t.Fatal(err)
	}

	// Direct streamed round against the probe: the streaming outcome
	// must localize the divergence.
	out, err := svc.Submit(fleet.Round{Device: probe.id, Input: pump.Input, Streamed: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Result.Accepted || out.Stream == nil {
		t.Fatalf("probe outcome: %+v", out)
	}
	if !out.Stream.EarlyAbort {
		t.Error("probe round not early-aborted")
	}
	if out.Result.Class != attest.ClassLoopCounter {
		t.Errorf("probe class = %v, want %v", out.Result.Class, attest.ClassLoopCounter)
	}
	if d := out.Stream.Divergence; d == nil || d.Got == nil {
		t.Errorf("probe divergence not localized: %+v", out.Stream)
	}
	if !out.Quarantined {
		t.Error("probe device not quarantined after streamed rejection")
	}

	// Streamed sweep over the rest of the fleet.
	rep, err := svc.SweepProgramStreamed(pumpID, pump.Input)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Streamed {
		t.Error("sweep report not marked streamed")
	}
	// The probe is quarantined by now and skipped.
	if rep.Accepted != honest || rep.Rejected != 1 || rep.Skipped != 1 || rep.Errors != 0 {
		t.Fatalf("streamed sweep: %+v", rep)
	}
	if rep.EarlyAborts != 1 {
		t.Errorf("sweep early aborts = %d, want 1", rep.EarlyAborts)
	}
	if rep.SegmentsVerified == 0 {
		t.Error("sweep verified no segments")
	}
	if len(rep.NewlyQuarantined) != 1 || rep.NewlyQuarantined[0] != swept.id {
		t.Errorf("newly quarantined = %v, want [%s]", rep.NewlyQuarantined, swept.id)
	}

	st, ok := svc.Device(swept.id)
	if !ok || !st.Quarantined || st.LastClass != attest.ClassLoopCounter {
		t.Errorf("swept attacked device state: %+v", st)
	}

	snap := svc.Metrics()
	if snap.StreamRounds != honest+2 {
		t.Errorf("stream rounds = %d, want %d", snap.StreamRounds, honest+2)
	}
	if snap.EarlyAborts != 2 {
		t.Errorf("early aborts = %d, want 2", snap.EarlyAborts)
	}
	if snap.SegmentsVerified == 0 {
		t.Error("no segments verified in metrics")
	}
	// The shared cache amortized the streamed golden run: at most one
	// miss per cache kind, everything else hits.
	if snap.CacheMisses > 2 || snap.CacheHits == 0 {
		t.Errorf("cache hits=%d misses=%d", snap.CacheHits, snap.CacheMisses)
	}
}
