package fleet

import (
	"crypto/ed25519"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"lofat/internal/attest"
)

// DeviceID names one enrolled device (serial number, asset tag, ...).
type DeviceID string

// device is the registry's record of one enrolled prover. Mutable
// fields are guarded by the owning shard's lock.
type device struct {
	id       DeviceID
	addr     string
	program  attest.ProgramID
	pub      ed25519.PublicKey
	verifier *attest.Verifier

	quarantined        bool
	consecutiveRejects int
	rounds             uint64
	accepted           uint64
	rejected           uint64
	transportErrors    uint64
	lastClass          attest.Classification
	lastFindings       []string
	lastError          string
	lastAttested       time.Time
}

// DeviceState is an exported point-in-time snapshot of a device record.
type DeviceState struct {
	ID      DeviceID
	Addr    string
	Program attest.ProgramID
	Pub     ed25519.PublicKey

	Quarantined        bool
	ConsecutiveRejects int
	Rounds             uint64
	Accepted           uint64
	Rejected           uint64
	TransportErrors    uint64
	// LastClass is the classification of the most recent verified round
	// (meaningful once Rounds > 0).
	LastClass    attest.Classification
	LastFindings []string
	LastError    string
	LastAttested time.Time
}

func (d *device) snapshot() DeviceState {
	return DeviceState{
		ID:                 d.id,
		Addr:               d.addr,
		Program:            d.program,
		Pub:                append(ed25519.PublicKey(nil), d.pub...),
		Quarantined:        d.quarantined,
		ConsecutiveRejects: d.consecutiveRejects,
		Rounds:             d.rounds,
		Accepted:           d.accepted,
		Rejected:           d.rejected,
		TransportErrors:    d.transportErrors,
		LastClass:          d.lastClass,
		LastFindings:       append([]string(nil), d.lastFindings...),
		LastError:          d.lastError,
		LastAttested:       d.lastAttested,
	}
}

// Registry is the sharded device store: N independently locked shards
// so enrolment lookups and result recording from the worker pool spread
// contention instead of serialising on one fleet-wide mutex.
type Registry struct {
	shards []*shard
}

type shard struct {
	mu      sync.RWMutex
	devices map[DeviceID]*device
}

// NewRegistry builds a registry with n shards (n < 1 selects 1).
func NewRegistry(n int) *Registry {
	if n < 1 {
		n = 1
	}
	r := &Registry{shards: make([]*shard, n)}
	for i := range r.shards {
		r.shards[i] = &shard{devices: make(map[DeviceID]*device)}
	}
	return r
}

func (r *Registry) shardFor(id DeviceID) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return r.shards[h.Sum32()%uint32(len(r.shards))]
}

func (r *Registry) add(d *device) error {
	sh := r.shardFor(d.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.devices[d.id]; dup {
		return fmt.Errorf("fleet: device %q already enrolled", d.id)
	}
	sh.devices[d.id] = d
	return nil
}

func (r *Registry) get(id DeviceID) (*device, bool) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	d, ok := sh.devices[id]
	return d, ok
}

// Len reports the number of enrolled devices.
func (r *Registry) Len() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.RLock()
		n += len(sh.devices)
		sh.mu.RUnlock()
	}
	return n
}

// State snapshots one device.
func (r *Registry) State(id DeviceID) (DeviceState, bool) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	d, ok := sh.devices[id]
	if !ok {
		return DeviceState{}, false
	}
	return d.snapshot(), true
}

// States snapshots the whole fleet, sorted by device ID.
func (r *Registry) States() []DeviceState {
	var out []DeviceState
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, d := range sh.devices {
			out = append(out, d.snapshot())
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Quarantined lists quarantined device IDs, sorted.
func (r *Registry) Quarantined() []DeviceID {
	var out []DeviceID
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, d := range sh.devices {
			if d.quarantined {
				out = append(out, d.id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetQuarantined forces a device's quarantine flag (operator action);
// releasing also clears the rejection streak. It reports whether the
// device exists.
func (r *Registry) SetQuarantined(id DeviceID, q bool) bool {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d, ok := sh.devices[id]
	if !ok {
		return false
	}
	d.quarantined = q
	if !q {
		d.consecutiveRejects = 0
	}
	return true
}

// membersOf returns the devices enrolled for a program, sorted by ID
// for deterministic sweep order.
func (r *Registry) membersOf(prog attest.ProgramID) []*device {
	var out []*device
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, d := range sh.devices {
			if d.program == prog {
				out = append(out, d)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// recordResult folds a verified round into the device record and
// applies the quarantine policy. It reports whether this round newly
// quarantined the device.
func (r *Registry) recordResult(id DeviceID, res attest.Result, quarantineAfter int) bool {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d, ok := sh.devices[id]
	if !ok {
		return false
	}
	d.rounds++
	d.lastClass = res.Class
	d.lastFindings = append([]string(nil), res.Findings...)
	d.lastError = ""
	d.lastAttested = time.Now()
	if res.Accepted {
		d.accepted++
		d.consecutiveRejects = 0
		return false
	}
	d.rejected++
	d.consecutiveRejects++
	if !d.quarantined && d.consecutiveRejects >= quarantineAfter {
		d.quarantined = true
		return true
	}
	return false
}

// recordError folds a transport/attestation failure into the device
// record. Errors do not advance the quarantine streak: an unreachable
// device is an availability problem, not evidence of compromise.
func (r *Registry) recordError(id DeviceID, err error) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d, ok := sh.devices[id]
	if !ok {
		return
	}
	d.transportErrors++
	d.lastError = err.Error()
}
