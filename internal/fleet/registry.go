package fleet

import (
	"crypto/ed25519"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"lofat/internal/attest"
)

// DeviceID names one enrolled device (serial number, asset tag, ...).
type DeviceID string

// BreakerState is the position of one device's transport circuit
// breaker. It is deliberately distinct from quarantine: quarantine is a
// measurement verdict (the device attested and the attestation was
// rejected), the breaker is a transport verdict (the device stalls,
// drops connections, or cannot be reached). A compromised device that
// wedges exchanges mid-frame is cheaper for an attacker than one that
// forges a measurement; the breaker stops it from consuming a full
// timeout-and-retry budget on every sweep.
type BreakerState uint8

const (
	// BreakerHealthy: recent exchanges completed; rounds run normally.
	BreakerHealthy BreakerState = iota
	// BreakerDegraded: consecutive transport failures below the trip
	// threshold. Rounds still run; the state is operator visibility.
	BreakerDegraded
	// BreakerTripped: consecutive failures reached the threshold.
	// Rounds are skipped without paying the timeout budget, except one
	// half-open probe after the device sits out the configured number
	// of sweeps; a completed exchange closes the breaker again.
	BreakerTripped
)

func (b BreakerState) String() string {
	switch b {
	case BreakerHealthy:
		return "healthy"
	case BreakerDegraded:
		return "degraded"
	case BreakerTripped:
		return "tripped"
	default:
		return fmt.Sprintf("BreakerState(%d)", uint8(b))
	}
}

// device is the registry's record of one enrolled prover. Mutable
// fields are guarded by the owning shard's lock.
type device struct {
	id       DeviceID
	addr     string
	program  attest.ProgramID
	pub      ed25519.PublicKey
	verifier *attest.Verifier

	//lofat:guardedby mu
	quarantined bool
	//lofat:guardedby mu
	consecutiveRejects int
	//lofat:guardedby mu
	rounds uint64
	//lofat:guardedby mu
	accepted uint64
	//lofat:guardedby mu
	rejected uint64
	//lofat:guardedby mu
	transportErrors uint64
	//lofat:guardedby mu
	lastClass attest.Classification
	//lofat:guardedby mu
	lastFindings []string
	//lofat:guardedby mu
	lastError string
	//lofat:guardedby mu
	lastAttested time.Time

	//lofat:guardedby mu
	breaker BreakerState
	// transportFails counts consecutive failed rounds (all attempts
	// exhausted).
	//lofat:guardedby mu
	transportFails int
	// breakerGen is the sweep generation of the trip or last failed
	// probe.
	//lofat:guardedby mu
	breakerGen uint64
}

// DeviceState is an exported point-in-time snapshot of a device record.
type DeviceState struct {
	ID      DeviceID
	Addr    string
	Program attest.ProgramID
	Pub     ed25519.PublicKey

	Quarantined        bool
	ConsecutiveRejects int
	Rounds             uint64
	Accepted           uint64
	Rejected           uint64
	TransportErrors    uint64
	// LastClass is the classification of the most recent verified round
	// (meaningful once Rounds > 0).
	LastClass    attest.Classification
	LastFindings []string
	LastError    string
	LastAttested time.Time

	// Breaker is the transport circuit breaker position;
	// ConsecutiveTransportFails is the failed-round streak feeding it.
	// BreakerGen is the sweep generation of the trip (or last failed
	// half-open probe); together with the service's sweep counter it
	// paces when the next probe fires, so it must survive a restore or a
	// restarted node would probe a tripped device immediately.
	Breaker                   BreakerState
	ConsecutiveTransportFails int
	BreakerGen                uint64
}

//lofat:locked mu
func (d *device) snapshot() DeviceState {
	return DeviceState{
		ID:                 d.id,
		Addr:               d.addr,
		Program:            d.program,
		Pub:                append(ed25519.PublicKey(nil), d.pub...),
		Quarantined:        d.quarantined,
		ConsecutiveRejects: d.consecutiveRejects,
		Rounds:             d.rounds,
		Accepted:           d.accepted,
		Rejected:           d.rejected,
		TransportErrors:    d.transportErrors,
		LastClass:          d.lastClass,
		LastFindings:       append([]string(nil), d.lastFindings...),
		LastError:          d.lastError,
		LastAttested:       d.lastAttested,

		Breaker:                   d.breaker,
		ConsecutiveTransportFails: d.transportFails,
		BreakerGen:                d.breakerGen,
	}
}

// Registry is the sharded device store: N independently locked shards
// so enrolment lookups and result recording from the worker pool spread
// contention instead of serialising on one fleet-wide mutex.
type Registry struct {
	shards []*shard
}

type shard struct {
	mu sync.RWMutex
	//lofat:guardedby mu
	devices map[DeviceID]*device
}

// NewRegistry builds a registry with n shards (n < 1 selects 1).
func NewRegistry(n int) *Registry {
	if n < 1 {
		n = 1
	}
	r := &Registry{shards: make([]*shard, n)}
	for i := range r.shards {
		r.shards[i] = &shard{devices: make(map[DeviceID]*device)}
	}
	return r
}

func (r *Registry) shardFor(id DeviceID) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return r.shards[h.Sum32()%uint32(len(r.shards))]
}

func (r *Registry) add(d *device) error {
	sh := r.shardFor(d.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.devices[d.id]; dup {
		return fmt.Errorf("fleet: device %q already enrolled", d.id)
	}
	sh.devices[d.id] = d
	return nil
}

// remove deletes a device, returning its final snapshot. This is the
// federation hand-off primitive: the snapshot carries everything a
// receiving node needs to restore the device mid-history.
func (r *Registry) remove(id DeviceID) (DeviceState, bool) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d, ok := sh.devices[id]
	if !ok {
		return DeviceState{}, false
	}
	st := d.snapshot()
	delete(sh.devices, id)
	return st, true
}

func (r *Registry) get(id DeviceID) (*device, bool) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	d, ok := sh.devices[id]
	return d, ok
}

// Len reports the number of enrolled devices.
func (r *Registry) Len() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.RLock()
		n += len(sh.devices)
		sh.mu.RUnlock()
	}
	return n
}

// State snapshots one device.
func (r *Registry) State(id DeviceID) (DeviceState, bool) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	d, ok := sh.devices[id]
	if !ok {
		return DeviceState{}, false
	}
	return d.snapshot(), true
}

// States snapshots the whole fleet, sorted by device ID.
func (r *Registry) States() []DeviceState {
	var out []DeviceState
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, d := range sh.devices {
			out = append(out, d.snapshot())
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ids lists the devices matching pred, sorted.
func (r *Registry) ids(pred func(*device) bool) []DeviceID {
	var out []DeviceID
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, d := range sh.devices {
			if pred(d) {
				out = append(out, d.id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// count reports how many devices match pred.
func (r *Registry) count(pred func(*device) bool) int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, d := range sh.devices {
			if pred(d) {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// Quarantined lists quarantined device IDs, sorted.
func (r *Registry) Quarantined() []DeviceID {
	//lofat:ignore locked the pred runs inside ids, which holds each shard's read lock around it
	return r.ids(func(d *device) bool { return d.quarantined })
}

// SetQuarantined forces a device's quarantine flag (operator action).
// Releasing restores the device to full service: the rejection streak,
// the transport-failure streak and an open circuit breaker are all
// cleared — an operator re-provisioning a device fixes its transport
// along with its firmware, and this is also the recovery path for
// breakers tripped outside sweeps (direct Submit rounds never fire
// half-open probes). It reports whether the device exists.
func (r *Registry) SetQuarantined(id DeviceID, q bool) bool {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d, ok := sh.devices[id]
	if !ok {
		return false
	}
	d.quarantined = q
	if !q {
		d.consecutiveRejects = 0
		d.transportFails = 0
		d.breaker = BreakerHealthy
	}
	return true
}

// sync overwrites the replicated policy fields of an enrolled device —
// quarantine, streaks, lifetime counters, breaker position — with a
// snapshot from another replica, leaving identity (address, key,
// verifier) and local diagnostics (findings, last error, timestamps)
// untouched. It reports false when the device is absent or enrolled for
// a different program; anti-entropy callers fall back to a full
// EnrollState in that case.
func (r *Registry) sync(st DeviceState) bool {
	sh := r.shardFor(st.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d, ok := sh.devices[st.ID]
	if !ok || d.program != st.Program {
		return false
	}
	d.quarantined = st.Quarantined
	d.consecutiveRejects = st.ConsecutiveRejects
	d.rounds = st.Rounds
	d.accepted = st.Accepted
	d.rejected = st.Rejected
	d.transportErrors = st.TransportErrors
	d.lastClass = st.LastClass
	d.breaker = st.Breaker
	d.transportFails = st.ConsecutiveTransportFails
	d.breakerGen = st.BreakerGen
	return true
}

// membersOf returns the devices enrolled for a program, sorted by ID
// for deterministic sweep order.
func (r *Registry) membersOf(prog attest.ProgramID) []*device {
	var out []*device
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, d := range sh.devices {
			if d.program == prog {
				out = append(out, d)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// authenticatedReject reports whether a rejection is backed by a report
// that authenticated as coming from the device (valid signature,
// coherent protocol): only those are evidence of compromise. Signature
// and protocol failures are exactly what an on-path attacker or a
// corrupting link produces, so they feed the transport breaker instead
// of the quarantine policy — otherwise one flipped byte on the wire
// would quarantine an honest device, and a man-in-the-middle could
// quarantine the whole fleet.
func authenticatedReject(res attest.Result) bool {
	return res.Class != attest.ClassSignature && res.Class != attest.ClassProtocol
}

// advanceBreaker folds one transport-level failure into the breaker
// (caller holds the shard write lock); it reports whether this failure
// newly tripped it. gen is the sweep generation of the round (0 outside
// sweeps); a failed half-open probe re-arms the sit-out window from it.
//
//lofat:locked mu
func (d *device) advanceBreaker(threshold int, gen uint64) bool {
	if threshold < 0 {
		return false // breaker disabled
	}
	d.transportFails++
	switch {
	case d.breaker == BreakerTripped:
		// Failed half-open probe: sit out again from this sweep.
		d.breakerGen = gen
		return false
	case d.transportFails >= threshold:
		d.breaker = BreakerTripped
		d.breakerGen = gen
		return true
	default:
		d.breaker = BreakerDegraded
		return false
	}
}

// resultOutcome is the registry bookkeeping of one completed exchange.
type resultOutcome struct {
	NewlyQuarantined bool
	BreakerClosed    bool
	Tripped          bool
}

// recordResult folds a verified round into the device record and
// applies the quarantine policy. An exchange whose report authenticated
// is also transport health: the failure streak resets and an open
// breaker closes. An unauthenticated reject (signature/protocol class)
// is the opposite — indistinguishable from wire tampering, it advances
// the breaker and leaves the quarantine streak alone.
func (r *Registry) recordResult(id DeviceID, res attest.Result, quarantineAfter, breakerThreshold int, gen uint64) resultOutcome {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var out resultOutcome
	d, ok := sh.devices[id]
	if !ok {
		return out
	}
	d.rounds++
	d.lastClass = res.Class
	d.lastFindings = append([]string(nil), res.Findings...)
	d.lastAttested = time.Now()
	if !res.Accepted && !authenticatedReject(res) {
		// Transport verdict, not a measurement one: the device-level
		// Accepted/Rejected counters track authenticated verdicts only.
		d.transportErrors++
		d.lastError = fmt.Sprintf("unauthenticated report (%v)", res.Class)
		out.Tripped = d.advanceBreaker(breakerThreshold, gen)
		return out
	}
	d.lastError = ""
	d.transportFails = 0
	out.BreakerClosed = d.breaker == BreakerTripped
	d.breaker = BreakerHealthy
	if res.Accepted {
		d.accepted++
		d.consecutiveRejects = 0
		return out
	}
	d.rejected++
	d.consecutiveRejects++
	if !d.quarantined && d.consecutiveRejects >= quarantineAfter {
		d.quarantined = true
		out.NewlyQuarantined = true
	}
	return out
}

// recordError folds a failed round (all transport attempts exhausted)
// into the device record and advances the circuit breaker. Errors do
// not advance the quarantine streak: an unreachable device is an
// availability problem, not evidence of compromise. It reports whether
// this failure newly tripped the breaker.
func (r *Registry) recordError(id DeviceID, err error, threshold int, gen uint64) (tripped bool) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d, ok := sh.devices[id]
	if !ok {
		return false
	}
	d.transportErrors++
	d.lastError = err.Error()
	return d.advanceBreaker(threshold, gen)
}

// breakerCheck gates one round on the device's breaker: skip reports
// that the round must not run (breaker open), probe that it runs as the
// half-open probe. Rounds outside sweeps (gen 0) never probe a tripped
// breaker.
func (r *Registry) breakerCheck(id DeviceID, gen uint64, probeAfter int) (skip, probe bool) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	d, ok := sh.devices[id]
	if !ok || d.breaker != BreakerTripped {
		return false, false
	}
	if gen > d.breakerGen+uint64(probeAfter) {
		return false, true
	}
	return true, false
}

// Tripped lists devices whose transport breaker is tripped, sorted.
func (r *Registry) Tripped() []DeviceID {
	//lofat:ignore locked the pred runs inside ids, which holds each shard's read lock around it
	return r.ids(func(d *device) bool { return d.breaker == BreakerTripped })
}
