// Package fleet is the verifier-side service that scales the Figure 2
// challenge-response protocol from one prover to a large fleet of LO-FAT
// devices running shared firmware images. It combines:
//
//   - a sharded device registry (enrolment: device ID, public key,
//     program ID, last-attested state, quarantine status);
//   - an asynchronous verification pipeline — a bounded job queue
//     feeding a worker pool that drives attestation rounds concurrently,
//     with batch submission;
//   - a fleet-wide measurement cache layered under every device
//     verifier via attest.ExpectationCache, so the golden run for a
//     given (program, input) is simulated once and reused fleet-wide —
//     a cache hit reduces verification to protocol, signature and hash
//     comparison, with no simulation;
//   - a scheduler that sweeps the fleet issuing periodic challenges over
//     the existing frame transport, records per-device results, and
//     quarantines devices whose attestations are rejected;
//   - fleet metrics: throughput, cache hit rate, accept/reject counts
//     per attack classification.
//
// The design follows the C-FLAT lineage's precomputed-measurement
// deployment mode (attest.MeasurementDB): for fleets of identical
// embedded devices the verifier's expensive step — golden-running S(i)
// — amortizes across every enrolled device.
package fleet

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"lofat/internal/asm"
	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/stream"
)

// DialFunc opens a transport to a device given its enrolled address.
// The connection speaks the attest frame protocol (a prover-side
// Registry.ServeConn or attest.Server on the far end).
type DialFunc func(addr string) (io.ReadWriteCloser, error)

// Config parameterises a fleet Service. Zero values select defaults.
type Config struct {
	// Shards is the device registry shard count (default 16).
	Shards int
	// Workers is the verification worker pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the verification job queue; submission blocks
	// when the queue is full (default 4×Workers).
	QueueDepth int
	// QuarantineAfter is the number of consecutive rejected attestations
	// that quarantines a device (default 1). Transport errors neither
	// count toward nor reset the streak: an unreachable device is not
	// evidence of compromise.
	QuarantineAfter int
	// DisableCache turns the shared measurement cache off; every device
	// verifier then golden-runs independently (the pre-fleet behaviour,
	// kept for measurement and fallback).
	DisableCache bool
	// StreamedSweeps makes Sweep (and the scheduler) drive rounds over
	// the segmented streaming protocol (internal/stream): devices are
	// verified incrementally while they execute, and an attacked device
	// is rejected — and quarantined — at its first divergent segment
	// instead of after the run completes. Devices must serve the stream
	// protocol (stream.NewServer / stream.Registry.ServeConn).
	StreamedSweeps bool
	// StreamSegmentEvents is the checkpoint window N for streamed
	// rounds (default stream.DefaultSegmentEvents).
	StreamSegmentEvents int
	// Dial opens device transports (default TCP with a 5s timeout).
	Dial DialFunc
	// MaxInstructions bounds golden runs (default: verifier default).
	MaxInstructions uint64
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.StreamSegmentEvents <= 0 {
		c.StreamSegmentEvents = stream.DefaultSegmentEvents
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 1
	}
	if c.Dial == nil {
		c.Dial = func(addr string) (io.ReadWriteCloser, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
}

// program is a registered firmware image: the shared offline analysis
// (template verifier) plus the input schedule its fleet is swept with.
type program struct {
	prog     *asm.Program
	template *attest.Verifier
	inputs   [][]uint32
	next     int // round-robin index into inputs for the next sweep
}

// Service is the fleet attestation service. Construct with NewService,
// register firmware with RegisterProgram, enrol devices with Enroll,
// then drive rounds with Sweep / SubmitBatch or StartScheduler.
type Service struct {
	cfg     Config
	reg     *Registry
	cache   *MeasurementCache // nil when disabled
	metrics *Metrics
	jobs    chan *job
	workers sync.WaitGroup

	// mu guards programs, reports and closed. Submission paths hold it
	// read-locked around queue sends so Close cannot race a send on a
	// closed channel.
	mu       sync.RWMutex
	programs map[attest.ProgramID]*program
	reports  []SweepReport
	closed   bool
}

// NewService builds the service and starts its worker pool.
func NewService(cfg Config) *Service {
	cfg.fill()
	s := &Service{
		cfg:      cfg,
		reg:      NewRegistry(cfg.Shards),
		metrics:  NewMetrics(),
		jobs:     make(chan *job, cfg.QueueDepth),
		programs: make(map[attest.ProgramID]*program),
	}
	if !cfg.DisableCache {
		s.cache = NewMeasurementCache()
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops the worker pool after in-flight jobs drain. Stop any
// scheduler first; submissions after Close return ErrClosed.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	s.workers.Wait()
}

// ErrClosed is returned for submissions to a closed service.
var ErrClosed = fmt.Errorf("fleet: service is closed")

// RegisterProgram performs the per-firmware offline step once for the
// whole fleet: disassembly, CFG construction, and cache attachment. The
// inputs are the challenge inputs the scheduler rotates through on
// sweeps (at least one is required). Devices enrolled for the returned
// program ID share this analysis via derived verifiers.
func (s *Service) RegisterProgram(prog *asm.Program, devCfg core.Config, inputs [][]uint32) (attest.ProgramID, error) {
	if len(inputs) == 0 {
		return attest.ProgramID{}, fmt.Errorf("fleet: program needs at least one sweep input")
	}
	template, err := attest.NewVerifier(prog, devCfg, nil, rand.Reader)
	if err != nil {
		return attest.ProgramID{}, err
	}
	if s.cfg.MaxInstructions > 0 {
		template.MaxInstructions = s.cfg.MaxInstructions
	}
	if s.cache != nil {
		template.SetExpectationCache(s.cache)
	}
	copied := make([][]uint32, len(inputs))
	for i, in := range inputs {
		copied[i] = append([]uint32(nil), in...)
	}
	id := template.ProgramID()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return attest.ProgramID{}, ErrClosed
	}
	if _, dup := s.programs[id]; dup {
		return attest.ProgramID{}, fmt.Errorf("fleet: program %v already registered", id)
	}
	s.programs[id] = &program{prog: prog, template: template, inputs: copied}
	return id, nil
}

// Enroll adds a device to the fleet: its identity, the firmware it
// runs, the public half of its hardware key, and the address its
// attestation endpoint listens on. The device gets its own verifier
// derived from the program template, sharing the offline analysis and
// the measurement cache but holding independent nonce state.
func (s *Service) Enroll(id DeviceID, prog attest.ProgramID, pub ed25519.PublicKey, addr string) error {
	s.mu.RLock()
	p, ok := s.programs[prog]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("fleet: program %v not registered", prog)
	}
	return s.reg.add(&device{
		id:       id,
		addr:     addr,
		program:  prog,
		pub:      append(ed25519.PublicKey(nil), pub...),
		verifier: p.template.ForKey(pub),
	})
}

// Registry surface, re-exposed on the service.

// Device returns the registry snapshot for one device.
func (s *Service) Device(id DeviceID) (DeviceState, bool) { return s.reg.State(id) }

// Devices returns snapshots of every enrolled device, sorted by ID.
func (s *Service) Devices() []DeviceState { return s.reg.States() }

// FleetSize reports the number of enrolled devices.
func (s *Service) FleetSize() int { return s.reg.Len() }

// Quarantined lists quarantined device IDs, sorted.
func (s *Service) Quarantined() []DeviceID { return s.reg.Quarantined() }

// Release lifts a device's quarantine (operator override after
// re-provisioning); it reports whether the device exists.
func (s *Service) Release(id DeviceID) bool { return s.reg.SetQuarantined(id, false) }

// Cache exposes the shared measurement cache (nil when disabled).
func (s *Service) Cache() *MeasurementCache { return s.cache }
