// Package fleet is the verifier-side service that scales the Figure 2
// challenge-response protocol from one prover to a large fleet of LO-FAT
// devices running shared firmware images. It combines:
//
//   - a sharded device registry (enrolment: device ID, public key,
//     program ID, last-attested state, quarantine status);
//   - an asynchronous verification pipeline — a bounded job queue
//     feeding a worker pool that drives attestation rounds concurrently,
//     with batch submission;
//   - a fleet-wide measurement cache layered under every device
//     verifier via attest.ExpectationCache, so the golden run for a
//     given (program, input) is simulated once and reused fleet-wide —
//     a cache hit reduces verification to protocol, signature and hash
//     comparison, with no simulation;
//   - a scheduler that sweeps the fleet issuing periodic challenges over
//     the existing frame transport, records per-device results, and
//     quarantines devices whose attestations are rejected;
//   - fleet metrics: throughput, cache hit rate, accept/reject counts
//     per attack classification, and per-class transport-failure
//     counters (dial / timeout / drop / protocol);
//   - a transport resilience layer: per-phase I/O deadlines on every
//     exchange, bounded retries with jittered exponential backoff, and
//     a per-device circuit breaker (healthy → degraded → tripped, with
//     half-open probes on later sweeps) so devices that stall
//     mid-frame or drop connections — a cheaper attack than forging a
//     measurement — cannot wedge workers or consume the fleet's
//     timeout budget sweep after sweep. The breaker is deliberately
//     distinct from quarantine: quarantine is a measurement verdict,
//     the breaker a transport verdict. internal/fleet/faultconn is the
//     fault-injection harness that chaos-tests this layer.
//
// The design follows the C-FLAT lineage's precomputed-measurement
// deployment mode (attest.MeasurementDB): for fleets of identical
// embedded devices the verifier's expensive step — golden-running S(i)
// — amortizes across every enrolled device.
package fleet

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lofat/internal/asm"
	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/obs"
	"lofat/internal/stream"
)

// DialFunc opens a transport to a device given its enrolled address.
// The connection speaks the attest frame protocol (a prover-side
// Registry.ServeConn or attest.Server on the far end).
type DialFunc func(addr string) (io.ReadWriteCloser, error)

// Config parameterises a fleet Service. Zero values select defaults.
type Config struct {
	// Shards is the device registry shard count (default 16).
	Shards int
	// Workers is the verification worker pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the verification job queue; submission blocks
	// when the queue is full (default 4×Workers).
	QueueDepth int
	// QuarantineAfter is the number of consecutive rejected attestations
	// that quarantines a device (default 1). Only authenticated
	// rejections — a report that carried a valid device signature and
	// measured wrong — advance the streak. Transport errors and
	// unauthenticated rejects (signature/protocol failures, which an
	// on-path attacker or a corrupting link can fabricate) feed the
	// transport circuit breaker instead: an unreachable or garbled
	// device is not evidence of compromise.
	QuarantineAfter int
	// DisableCache turns the shared measurement cache off; every device
	// verifier then golden-runs independently (the pre-fleet behaviour,
	// kept for measurement and fallback).
	DisableCache bool
	// StreamedSweeps makes Sweep (and the scheduler) drive rounds over
	// the segmented streaming protocol (internal/stream): devices are
	// verified incrementally while they execute, and an attacked device
	// is rejected — and quarantined — at its first divergent segment
	// instead of after the run completes. Devices must serve the stream
	// protocol (stream.NewServer / stream.Registry.ServeConn).
	StreamedSweeps bool
	// StreamSegmentEvents is the checkpoint window N for streamed
	// rounds (default stream.DefaultSegmentEvents).
	StreamSegmentEvents int
	// Dial opens device transports (default TCP with a DialTimeout
	// timeout).
	Dial DialFunc
	// DialTimeout bounds the default TCP dial (default 5s). Ignored
	// when a custom Dial is supplied.
	DialTimeout time.Duration
	// ReadTimeout and WriteTimeout are the per-phase I/O deadlines
	// armed on every exchange with a device: each protocol write and
	// each wait for the device's next frame (report, or stream segment)
	// gets its own deadline, so a device that stalls mid-frame — a
	// cheaper attack than forging a measurement — times the round out
	// instead of wedging a fleet worker forever. Default 30s each; a
	// negative value disables that deadline.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// RetryAttempts is the total number of transport attempts per round
	// (default 2, i.e. one retry). Only transport failures — dial
	// errors, timeouts, dropped connections — are retried; a device
	// speaking garbage or a rejected measurement is never retried.
	RetryAttempts int
	// RetryBackoff is the base delay before the first retry; it doubles
	// per further attempt, capped at RetryBackoffMax, with ±50% jitter
	// so a fleet of failing devices does not retry in lockstep.
	// Defaults: 50ms base, 1s cap.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// BreakerThreshold trips a device's transport circuit breaker after
	// this many consecutive failed rounds (all attempts exhausted).
	// Tripped devices are skipped — their timeout budget is not paid —
	// except for one half-open probe after the device has sat out
	// BreakerProbeAfter fleet sweeps; a completed exchange closes the
	// breaker. Default 3; a negative value disables the breaker. The
	// breaker is distinct from quarantine: quarantine is a measurement
	// verdict (the device attested wrong), the breaker is a transport
	// verdict (the device cannot be talked to).
	BreakerThreshold int
	// BreakerProbeAfter is the number of sweeps a tripped device sits
	// out before the next half-open probe (default 1).
	BreakerProbeAfter int
	// MaxInstructions bounds golden runs (default: verifier default).
	MaxInstructions uint64
	// Obs attaches the observability hub: a non-nil Reg exposes the
	// fleet counters, gauges and latency histograms; a non-nil Tracer
	// records sweep → round → segment spans; a non-nil Flight keeps the
	// recent-event ring for post-mortem dumps. Nil (the default) leaves
	// every hot path at its zero-overhead disabled state.
	Obs *obs.Hub
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.StreamSegmentEvents <= 0 {
		c.StreamSegmentEvents = stream.DefaultSegmentEvents
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 1
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerProbeAfter <= 0 {
		c.BreakerProbeAfter = 1
	}
	if c.Dial == nil {
		dialTimeout := c.DialTimeout
		c.Dial = func(addr string) (io.ReadWriteCloser, error) {
			return net.DialTimeout("tcp", addr, dialTimeout)
		}
	}
}

// timeouts are the per-phase exchange deadlines selected by the config
// (negative fields disable the corresponding deadline).
func (c *Config) timeouts() attest.Timeouts {
	to := attest.Timeouts{Read: c.ReadTimeout, Write: c.WriteTimeout}
	if to.Read < 0 {
		to.Read = 0
	}
	if to.Write < 0 {
		to.Write = 0
	}
	return to
}

// backoff is the pre-attempt delay before retry number retry (1-based):
// exponential, uniformly jittered to ±50% of the nominal value, and
// never above RetryBackoffMax.
func (c *Config) backoff(retry int) time.Duration {
	d := c.RetryBackoff << (retry - 1)
	if d <= 0 || d > c.RetryBackoffMax {
		d = c.RetryBackoffMax
	}
	j := d/2 + mrand.N(d+1) // uniform in [d/2, 3d/2]
	return min(j, c.RetryBackoffMax)
}

// program is a registered firmware image: the shared offline analysis
// (template verifier) plus the input schedule its fleet is swept with.
type program struct {
	prog     *asm.Program
	template *attest.Verifier
	inputs   [][]uint32
	next     int // round-robin index into inputs for the next sweep
}

// Service is the fleet attestation service. Construct with NewService,
// register firmware with RegisterProgram, enrol devices with Enroll,
// then drive rounds with Sweep / SubmitBatch or StartScheduler.
type Service struct {
	cfg     Config
	reg     *Registry
	cache   *MeasurementCache // nil when disabled
	metrics *Metrics
	tracer  *obs.Tracer // nil when tracing is off
	flight  *obs.Flight // nil when the flight recorder is off
	jobs    chan *job
	workers sync.WaitGroup

	// sweepGen numbers program sweeps; tripped-breaker devices use it
	// to pace their half-open probes (one per BreakerProbeAfter sweeps).
	sweepGen atomic.Uint64

	// mu guards programs, reports and closed. Submission paths hold it
	// read-locked around queue sends so Close cannot race a send on a
	// closed channel.
	mu       sync.RWMutex
	programs map[attest.ProgramID]*program
	reports  []SweepReport
	closed   bool
}

// NewService builds the service and starts its worker pool.
func NewService(cfg Config) *Service {
	cfg.fill()
	s := &Service{
		cfg:      cfg,
		reg:      NewRegistry(cfg.Shards),
		metrics:  NewMetrics(),
		jobs:     make(chan *job, cfg.QueueDepth),
		programs: make(map[attest.ProgramID]*program),
	}
	if !cfg.DisableCache {
		s.cache = NewMeasurementCache()
	}
	if hub := cfg.Obs; hub != nil {
		s.tracer = hub.Tracer
		s.flight = hub.Flight
		if reg := hub.Reg; reg != nil {
			s.metrics.register(reg)
			reg.RegisterGaugeFunc("lofat_fleet_devices", "", "Enrolled devices.",
				func() int64 { return int64(s.reg.Len()) })
			reg.RegisterGaugeFunc("lofat_fleet_quarantined", "", "Quarantined devices (measurement verdict).",
				//lofat:ignore locked the pred runs inside count, which holds each shard's read lock around it
				func() int64 { return int64(s.reg.count(func(d *device) bool { return d.quarantined })) })
			reg.RegisterGaugeFunc("lofat_fleet_tripped", "", "Devices with a tripped transport breaker.",
				//lofat:ignore locked the pred runs inside count, which holds each shard's read lock around it
				func() int64 { return int64(s.reg.count(func(d *device) bool { return d.breaker == BreakerTripped })) })
			reg.RegisterGaugeFunc("lofat_fleet_queue_depth", "", "Verification jobs waiting in the pipeline queue.",
				func() int64 { return int64(len(s.jobs)) })
		}
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops the worker pool after in-flight jobs drain. Stop any
// scheduler first; submissions after Close return ErrClosed.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	s.workers.Wait()
}

// ErrClosed is returned for submissions to a closed service.
var ErrClosed = fmt.Errorf("fleet: service is closed")

// RegisterProgram performs the per-firmware offline step once for the
// whole fleet: disassembly, CFG construction, and cache attachment. The
// inputs are the challenge inputs the scheduler rotates through on
// sweeps (at least one is required). Devices enrolled for the returned
// program ID share this analysis via derived verifiers.
func (s *Service) RegisterProgram(prog *asm.Program, devCfg core.Config, inputs [][]uint32) (attest.ProgramID, error) {
	if len(inputs) == 0 {
		return attest.ProgramID{}, fmt.Errorf("fleet: program needs at least one sweep input")
	}
	template, err := attest.NewVerifier(prog, devCfg, nil, rand.Reader)
	if err != nil {
		return attest.ProgramID{}, err
	}
	if s.cfg.MaxInstructions > 0 {
		template.MaxInstructions = s.cfg.MaxInstructions
	}
	if s.cache != nil {
		template.SetExpectationCache(s.cache)
	}
	copied := make([][]uint32, len(inputs))
	for i, in := range inputs {
		copied[i] = append([]uint32(nil), in...)
	}
	id := template.ProgramID()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return attest.ProgramID{}, ErrClosed
	}
	if _, dup := s.programs[id]; dup {
		return attest.ProgramID{}, fmt.Errorf("fleet: program %v already registered", id)
	}
	s.programs[id] = &program{prog: prog, template: template, inputs: copied}
	return id, nil
}

// Enroll adds a device to the fleet: its identity, the firmware it
// runs, the public half of its hardware key, and the address its
// attestation endpoint listens on. The device gets its own verifier
// derived from the program template, sharing the offline analysis and
// the measurement cache but holding independent nonce state.
func (s *Service) Enroll(id DeviceID, prog attest.ProgramID, pub ed25519.PublicKey, addr string) error {
	s.mu.RLock()
	p, ok := s.programs[prog]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("fleet: program %v not registered", prog)
	}
	return s.reg.add(&device{
		id:       id,
		addr:     addr,
		program:  prog,
		pub:      append(ed25519.PublicKey(nil), pub...),
		verifier: p.template.ForKey(pub),
	})
}

// EnrollState enrols a device restoring a previously snapshotted record
// — the warm-restart and federation hand-off path. Unlike Enroll, the
// quarantine flag, rejection streak, breaker position and lifetime
// counters all carry over, so a device quarantined (or mid-breaker)
// before a node died stays that way after the restore. The program must
// already be registered; the verifier is re-derived from its template
// (verifier nonce state is per-round and deliberately not restored).
func (s *Service) EnrollState(st DeviceState) error {
	s.mu.RLock()
	p, ok := s.programs[st.Program]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("fleet: program %v not registered", st.Program)
	}
	return s.reg.add(&device{
		id:       st.ID,
		addr:     st.Addr,
		program:  st.Program,
		pub:      append(ed25519.PublicKey(nil), st.Pub...),
		verifier: p.template.ForKey(st.Pub),

		quarantined:        st.Quarantined,
		consecutiveRejects: st.ConsecutiveRejects,
		rounds:             st.Rounds,
		accepted:           st.Accepted,
		rejected:           st.Rejected,
		transportErrors:    st.TransportErrors,
		lastClass:          st.LastClass,
		lastFindings:       append([]string(nil), st.LastFindings...),
		lastError:          st.LastError,
		lastAttested:       st.LastAttested,

		breaker:        st.Breaker,
		transportFails: st.ConsecutiveTransportFails,
		breakerGen:     st.BreakerGen,
	})
}

// SyncState overwrites an enrolled device's replicated policy fields —
// quarantine, rejection streak, lifetime counters, breaker position —
// with a snapshot from another replica of the same device. This is the
// anti-entropy half of federated replication: a secondary that did not
// run the round still converges on the primary's verdict history.
// Identity fields and local diagnostics are left untouched. It reports
// false when the device is not enrolled (or enrolled for a different
// program); callers then restore via EnrollState instead.
func (s *Service) SyncState(st DeviceState) bool {
	return s.reg.sync(st)
}

// Forget removes a device from the fleet entirely, returning its final
// snapshot — the extraction half of a federation hand-off (EnrollState
// on the receiving node is the other half). The device's flight-recorder
// events are drained along with the record: if the ID is ever enrolled
// again, here or elsewhere, it must not inherit this occupant's breaker
// or quarantine history.
func (s *Service) Forget(id DeviceID) (DeviceState, bool) {
	st, ok := s.reg.remove(id)
	if ok {
		s.flight.DropDevice(string(id))
	}
	return st, ok
}

// SweepGeneration reports the current sweep generation counter.
func (s *Service) SweepGeneration() uint64 { return s.sweepGen.Load() }

// SyncSweepGeneration advances the sweep counter to at least gen (it
// never rewinds). A node restoring persisted device state must also
// restore the generation the breaker fields were recorded against,
// or every restored tripped breaker would fire its half-open probe on
// the first post-restart sweep regardless of how long it had sat out.
func (s *Service) SyncSweepGeneration(gen uint64) {
	for {
		cur := s.sweepGen.Load()
		if cur >= gen || s.sweepGen.CompareAndSwap(cur, gen) {
			return
		}
	}
}

// Registry surface, re-exposed on the service.

// Device returns the registry snapshot for one device.
func (s *Service) Device(id DeviceID) (DeviceState, bool) { return s.reg.State(id) }

// Devices returns snapshots of every enrolled device, sorted by ID.
func (s *Service) Devices() []DeviceState { return s.reg.States() }

// FleetSize reports the number of enrolled devices.
func (s *Service) FleetSize() int { return s.reg.Len() }

// Quarantined lists quarantined device IDs, sorted.
func (s *Service) Quarantined() []DeviceID { return s.reg.Quarantined() }

// Tripped lists devices whose transport circuit breaker is tripped,
// sorted. Distinct from Quarantined: these devices measured nothing
// wrong — they could not be talked to.
func (s *Service) Tripped() []DeviceID { return s.reg.Tripped() }

// Release restores a device to full service (operator override after
// re-provisioning): quarantine is lifted and an open transport breaker
// is closed; it reports whether the device exists. This is also the
// recovery path for breakers tripped by direct Submit rounds, which —
// unlike sweeps — never fire half-open probes. The device's
// flight-recorder events are drained too: a released device is treated
// as re-provisioned, and post-mortems on its future conduct must not
// pick up breaker or quarantine history from before the operator
// intervened.
func (s *Service) Release(id DeviceID) bool {
	ok := s.reg.SetQuarantined(id, false)
	if ok {
		s.flight.DropDevice(string(id))
	}
	return ok
}

// Cache exposes the shared measurement cache (nil when disabled).
func (s *Service) Cache() *MeasurementCache { return s.cache }

// Flight exposes the service's flight recorder (nil when disabled).
func (s *Service) Flight() *obs.Flight { return s.flight }
