package fleet_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lofat/internal/core"
	"lofat/internal/fleet"
	"lofat/internal/fleet/faultconn"
	"lofat/internal/obs"
	"lofat/internal/workloads"
)

// obsTraceEvent mirrors the Chrome trace-event fields the tests check.
type obsTraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TID  int64             `json:"tid"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Args map[string]string `json:"args"`
}

// TestObservabilityEndToEnd drives a streamed sweep over a 100+-device
// mixed honest/attacked fleet with the full observability stack
// attached, then checks all three legs: live metrics served over HTTP
// in Prometheus exposition format, a Perfetto-loadable trace with
// sweep → round → segment span nesting, and flight-recorder verdict
// and quarantine events.
func TestObservabilityEndToEnd(t *testing.T) {
	f := newStreamFabric()

	var traceBuf bytes.Buffer
	hub := obs.NewHub()
	hub.Tracer = obs.NewTracer(&traceBuf)
	hub.Flight = obs.NewFlight(1024)

	svc := fleet.NewService(fleet.Config{
		Dial:                f.dial,
		StreamedSweeps:      true,
		StreamSegmentEvents: 8,
		Obs:                 hub,
	})
	defer svc.Close()

	pump := workloads.SyringePump()
	prog, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}

	const honest = 100
	for i := 0; i < honest; i++ {
		d := f.spawn(t, pump, i, nil)
		if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
	}
	atk, ok := workloads.AttackByName("loop-counter")
	if !ok {
		t.Fatal("loop-counter attack not found")
	}
	var attackedIDs []fleet.DeviceID
	for i := 0; i < 4; i++ {
		d := f.spawn(t, pump, 500+i, atk.Build(prog))
		if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
		attackedIDs = append(attackedIDs, d.id)
	}
	const total = honest + 4

	if _, err := svc.Sweep(); err != nil {
		t.Fatalf("sweep: %v", err)
	}

	// Leg 1: metrics. The snapshot and the HTTP exposition must both
	// reflect the sweep.
	snap := svc.Metrics()
	if snap.Verified != total {
		t.Errorf("verified = %d, want %d", snap.Verified, total)
	}
	if snap.Accepted != honest || snap.Rejected != 4 {
		t.Errorf("accepted/rejected = %d/%d, want %d/4", snap.Accepted, snap.Rejected, honest)
	}
	if snap.RoundLatency.Count != total {
		t.Errorf("round latency samples = %d, want %d", snap.RoundLatency.Count, total)
	}
	if snap.QueueWait.Count != total {
		t.Errorf("queue wait samples = %d, want %d", snap.QueueWait.Count, total)
	}
	if snap.SegmentVerify.Count == 0 {
		t.Error("no per-segment verify samples recorded")
	}
	if snap.SweepDuration.Count != 1 {
		t.Errorf("sweep duration samples = %d, want 1", snap.SweepDuration.Count)
	}
	if p50 := snap.RoundLatency.Quantile(0.5); p50 <= 0 {
		t.Errorf("round latency p50 = %v, want > 0", p50)
	}
	if !strings.Contains(snap.String(), "round latency p50/p95/p99") {
		t.Errorf("snapshot summary missing percentiles: %s", snap)
	}

	srv := httptest.NewServer(hub.Handler(false))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	expo := string(body)
	for _, want := range []string{
		"# TYPE lofat_fleet_verified_total counter",
		"lofat_fleet_verified_total 104",
		`lofat_fleet_class_total{class="accepted"} 100`,
		`lofat_fleet_class_total{class="loop-counter-attack"} 4`,
		"# TYPE lofat_fleet_round_latency_ns histogram",
		"lofat_fleet_round_latency_ns_count 104",
		"lofat_fleet_devices 104",
		"lofat_fleet_quarantined 4",
		"lofat_fleet_sweeps_total 1",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.Contains(expo, `_bucket{le="`) {
		t.Errorf("exposition has no histogram buckets:\n%s", expo)
	}

	// Leg 2: the trace. Close the tracer and check the JSON parses and
	// the spans nest sweep → round → segment by time containment.
	if err := hub.Tracer.Close(); err != nil {
		t.Fatalf("tracer close: %v", err)
	}
	var events []obsTraceEvent
	if err := json.Unmarshal(traceBuf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var sweep *obsTraceEvent
	var rounds, segments []obsTraceEvent
	for i := range events {
		switch events[i].Name {
		case "sweep":
			sweep = &events[i]
		case "round":
			rounds = append(rounds, events[i])
		case "segment":
			segments = append(segments, events[i])
		}
	}
	if sweep == nil {
		t.Fatal("no sweep span in trace")
	}
	if len(rounds) != total {
		t.Errorf("round spans = %d, want %d", len(rounds), total)
	}
	if len(segments) == 0 {
		t.Error("no segment spans in trace")
	}
	const eps = 1.0 // ms-scale clock reads, µs units: allow 1µs slack
	sweepEnd := sweep.TS + sweep.Dur
	for _, r := range rounds {
		if r.TS+eps < sweep.TS || r.TS+r.Dur > sweepEnd+eps {
			t.Errorf("round span [%v, %v] outside sweep [%v, %v]",
				r.TS, r.TS+r.Dur, sweep.TS, sweepEnd)
			break
		}
		if r.Args["device"] == "" || r.Args["outcome"] == "" {
			t.Errorf("round span missing args: %v", r.Args)
			break
		}
	}
	// Each segment span must be contained in a round span on its own
	// track (the worker tid).
	contained := 0
	for _, sg := range segments {
		for _, r := range rounds {
			if sg.TID == r.TID && sg.TS+eps >= r.TS && sg.TS+sg.Dur <= r.TS+r.Dur+eps {
				contained++
				break
			}
		}
	}
	if contained != len(segments) {
		t.Errorf("only %d/%d segment spans nest inside a round span on their track", contained, len(segments))
	}

	// Leg 3: the flight recorder holds verdicts for the sweep and
	// quarantine events naming each attacked device.
	for _, id := range attackedIDs {
		evs := hub.Flight.DeviceEvents(string(id))
		var sawVerdict, sawQuarantine bool
		for _, e := range evs {
			switch e.Kind {
			case obs.KindVerdict:
				if e.Class == "loop-counter-attack" {
					sawVerdict = true
				}
			case obs.KindQuarantine:
				sawQuarantine = true
			}
		}
		if !sawVerdict || !sawQuarantine {
			t.Errorf("device %s: verdict=%v quarantine=%v, want both (events: %v)", id, sawVerdict, sawQuarantine, evs)
		}
	}
	if n := hub.Flight.Len(); n < total {
		t.Errorf("flight events = %d, want >= %d (one verdict per device)", n, total)
	}
}

// TestFlightRecorderOnChaos injects transport faults (stall, drop) into
// a sweep sequence and checks the flight recorder names the failing
// devices, their transport-error classes, and the breaker transitions
// (trip, skip-era probe), and that the dump renders all of it.
func TestFlightRecorderOnChaos(t *testing.T) {
	f := newFabric()
	plans := newPlannedDial()
	hub := obs.NewHub()
	hub.Flight = obs.NewFlight(1024)
	cfg := chaosConfig(plans.wrap(f.dial))
	cfg.Obs = hub
	svc := fleet.NewService(cfg)
	defer svc.Close()

	pump := workloads.SyringePump()
	prog, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		d := spawnDevice(t, f, pump, i, nil)
		if err := svc.Enroll(d.id, pid, d.pub, d.addr); err != nil {
			t.Fatal(err)
		}
	}
	stalled := spawnDevice(t, f, pump, 200, nil)
	if err := svc.Enroll(stalled.id, pid, stalled.pub, stalled.addr); err != nil {
		t.Fatal(err)
	}
	plans.set(stalled.addr, faultconn.Plan{StallWriteAfter: 3})
	dropping := spawnDevice(t, f, pump, 300, nil)
	if err := svc.Enroll(dropping.id, pid, dropping.pub, dropping.addr); err != nil {
		t.Fatal(err)
	}
	plans.set(dropping.addr, faultconn.Plan{CloseAfter: 2})

	// Sweeps 1-2 fail the faulty devices to their breaker threshold
	// (trip); sweep 3 skips them; sweep 4 fires half-open probes.
	for i := 0; i < 4; i++ {
		if _, err := svc.Sweep(); err != nil {
			t.Fatalf("sweep %d: %v", i+1, err)
		}
	}

	check := func(dev fleet.DeviceID, wantClass string) {
		t.Helper()
		evs := svc.Flight().DeviceEvents(string(dev))
		if len(evs) == 0 {
			t.Fatalf("no flight events for %s", dev)
		}
		var sawErr, sawTrip, sawProbe, sawRetry bool
		for _, e := range evs {
			switch e.Kind {
			case obs.KindTransportError:
				if e.Class == wantClass {
					sawErr = true
				}
			case obs.KindBreakerTrip:
				sawTrip = true
			case obs.KindBreakerProbe:
				sawProbe = true
			case obs.KindRetry:
				sawRetry = true
			}
		}
		if !sawErr {
			t.Errorf("%s: no transport-error event with class %q (events: %v)", dev, wantClass, evs)
		}
		if !sawTrip {
			t.Errorf("%s: no breaker-trip event", dev)
		}
		if !sawProbe {
			t.Errorf("%s: no breaker-probe event", dev)
		}
		if !sawRetry {
			t.Errorf("%s: no retry event", dev)
		}
	}
	check(stalled.id, "timeout")
	check(dropping.id, "conn-drop")

	// The dump must name the failing device, its error class, and the
	// breaker transition in operator-readable text.
	var dump bytes.Buffer
	if err := svc.Flight().Dump(&dump); err != nil {
		t.Fatal(err)
	}
	text := dump.String()
	for _, want := range []string{string(stalled.id), string(dropping.id), "[timeout]", "[conn-drop]", "breaker-trip", "breaker-probe"} {
		if !strings.Contains(text, want) {
			t.Errorf("flight dump missing %q:\n%s", want, text)
		}
	}

	// Healed device: clearing the fault lets the probe complete, which
	// must surface as a breaker-reset event.
	plans.clear(stalled.addr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := svc.Sweep(); err != nil {
			t.Fatalf("heal sweep: %v", err)
		}
		var reset bool
		for _, e := range svc.Flight().DeviceEvents(string(stalled.id)) {
			if e.Kind == obs.KindBreakerReset {
				reset = true
			}
		}
		if reset {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no breaker-reset event after healing the stalled device")
		}
	}
}
