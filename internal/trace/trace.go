// Package trace defines the retired-instruction event stream the
// simulated core exposes to observers. This is the hardware interface of
// Figure 3: "the branch filter ... extracts the current program counter
// and instruction executed per clock cycle". LO-FAT's branch filter, the
// C-FLAT baseline's instrumentation shim, and test harnesses all consume
// the same stream, which is what makes the comparison between them fair.
package trace

import "lofat/internal/isa"

// Event describes one retired instruction.
type Event struct {
	// Cycle is the clock cycle at which the instruction retired.
	Cycle uint64
	// PC is the address of the retired instruction (Src of a branch).
	PC uint32
	// Word is the raw instruction encoding.
	Word uint32
	// Inst is the decoded instruction.
	Inst isa.Inst
	// Kind classifies the instruction for the branch filter.
	Kind isa.ControlFlowKind
	// Taken reports whether a conditional branch was taken; true for
	// unconditional transfers, false for non-control-flow.
	Taken bool
	// NextPC is the address of the next instruction to execute (Dest
	// of a taken branch, fall-through otherwise).
	NextPC uint32
	// Linking reports whether the instruction updated the link
	// register (subroutine call), per the §5.1 loop heuristic.
	Linking bool
}

// IsBackward reports whether the event is a taken control transfer to an
// earlier address — the trigger for the loop-entry heuristic.
func (e Event) IsBackward() bool {
	return e.Kind != isa.KindNone && e.Taken && e.NextPC < e.PC
}

// SrcDest returns the (Src, Dest) address pair the LO-FAT hash engine
// absorbs for this control-flow event.
//
//lofat:zeroalloc
func (e Event) SrcDest() (uint32, uint32) { return e.PC, e.NextPC }

// IsInterrupt reports whether the event is an interrupt-dispatch or
// return-from-interrupt transfer rather than a retired instruction's
// edge. IRQ-enter events are pseudo-events published by the core's
// vector dispatch: no instruction retires, Word and Inst are zero, and
// (PC, NextPC) is the (interrupted PC, vector) pair.
//
//lofat:zeroalloc
func (e Event) IsInterrupt() bool {
	return e.Kind == isa.KindIRQEnter || e.Kind == isa.KindIRQRet
}

// Sink consumes retired-instruction events. Implementations must not
// retain the event past the call.
type Sink interface {
	Retire(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Retire implements Sink.
func (f SinkFunc) Retire(e Event) { f(e) }

// Multi fans one event stream out to several sinks in order. A single
// sink is returned unwrapped so the common one-observer case pays no
// extra indirection.
func Multi(sinks ...Sink) Sink {
	if len(sinks) == 1 {
		return sinks[0]
	}
	return SinkFunc(func(e Event) {
		for _, s := range sinks {
			s.Retire(e)
		}
	})
}

// BatchSink consumes retired-instruction events in batches: the fast
// trace port. The core buffers events and delivers them in program
// order once per batch instead of crossing an interface per retirement;
// a consumer that also cares about wall-clock alignment (the LO-FAT
// device ticking its hash engine in step with the processor) receives
// a Sync with the core clock at flush points, covering cycles whose
// events were withheld by the core-side control-flow-only mask.
//
// The batch slice is owned by the producer and reused across calls:
// implementations must not retain it (copy events they need).
type BatchSink interface {
	RetireBatch(events []Event)
	// Sync advances the observer's notion of the core clock to cycle
	// without delivering an event. Observers with no clock model ignore
	// it.
	Sync(cycle uint64)
}

// Batch adapts a per-event Sink to the batched interface, keeping old
// observers attachable to the fast trace port.
type Batch struct{ Sink Sink }

// RetireBatch implements BatchSink by replaying the batch per event.
func (b Batch) RetireBatch(events []Event) {
	for i := range events {
		b.Sink.Retire(events[i])
	}
}

// Sync implements BatchSink; per-event sinks carry no clock state.
func (b Batch) Sync(uint64) {}
