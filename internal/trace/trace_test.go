package trace

import (
	"testing"

	"lofat/internal/isa"
)

func TestIsBackward(t *testing.T) {
	cases := []struct {
		e    Event
		want bool
	}{
		{Event{PC: 0x120, NextPC: 0x100, Kind: isa.KindCondBr, Taken: true}, true},
		{Event{PC: 0x100, NextPC: 0x120, Kind: isa.KindCondBr, Taken: true}, false},
		{Event{PC: 0x120, NextPC: 0x100, Kind: isa.KindCondBr, Taken: false}, false},
		{Event{PC: 0x120, NextPC: 0x100, Kind: isa.KindNone, Taken: true}, false},
		{Event{PC: 0x120, NextPC: 0x100, Kind: isa.KindJump, Taken: true}, true},
		{Event{PC: 0x120, NextPC: 0x120, Kind: isa.KindJump, Taken: true}, false}, // self is not backward
	}
	for i, c := range cases {
		if got := c.e.IsBackward(); got != c.want {
			t.Errorf("case %d: IsBackward = %v, want %v", i, got, c.want)
		}
	}
}

func TestSrcDest(t *testing.T) {
	e := Event{PC: 0xAAAA, NextPC: 0xBBBB}
	s, d := e.SrcDest()
	if s != 0xAAAA || d != 0xBBBB {
		t.Errorf("SrcDest = %#x, %#x", s, d)
	}
}

// multiProbe is a concrete sink type so unwrapping is observable.
type multiProbe struct{ pcs []uint32 }

func (p *multiProbe) Retire(e Event) { p.pcs = append(p.pcs, e.PC) }

func TestMultiSingleSinkUnwrapped(t *testing.T) {
	p := &multiProbe{}
	sink := Multi(p)
	if sink != Sink(p) {
		t.Errorf("Multi(single) wrapped the sink instead of returning it")
	}
	sink.Retire(Event{PC: 7})
	if len(p.pcs) != 1 || p.pcs[0] != 7 {
		t.Errorf("unwrapped sink did not receive the event: %v", p.pcs)
	}
}

func TestBatchAdapter(t *testing.T) {
	p := &multiProbe{}
	b := Batch{Sink: p}
	b.RetireBatch([]Event{{PC: 1}, {PC: 2}, {PC: 3}})
	b.Sync(99) // no-op for per-event sinks
	if len(p.pcs) != 3 || p.pcs[0] != 1 || p.pcs[2] != 3 {
		t.Errorf("batch adapter replay broken: %v", p.pcs)
	}
}

func TestMultiFanOut(t *testing.T) {
	var a, b []uint32
	sink := Multi(
		SinkFunc(func(e Event) { a = append(a, e.PC) }),
		SinkFunc(func(e Event) { b = append(b, e.PC) }),
	)
	sink.Retire(Event{PC: 1})
	sink.Retire(Event{PC: 2})
	if len(a) != 2 || len(b) != 2 || a[1] != 2 || b[0] != 1 {
		t.Errorf("fan-out broken: %v %v", a, b)
	}
}

func TestIsInterrupt(t *testing.T) {
	cases := []struct {
		kind isa.ControlFlowKind
		want bool
	}{
		{isa.KindNone, false},
		{isa.KindCondBr, false},
		{isa.KindJump, false},
		{isa.KindIndirect, false},
		{isa.KindReturn, false},
		{isa.KindIRQEnter, true},
		{isa.KindIRQRet, true},
	}
	for _, c := range cases {
		if got := (Event{Kind: c.kind}).IsInterrupt(); got != c.want {
			t.Errorf("IsInterrupt() = %v for %v, want %v", got, c.kind, c.want)
		}
	}
}
