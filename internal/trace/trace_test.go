package trace

import (
	"testing"

	"lofat/internal/isa"
)

func TestIsBackward(t *testing.T) {
	cases := []struct {
		e    Event
		want bool
	}{
		{Event{PC: 0x120, NextPC: 0x100, Kind: isa.KindCondBr, Taken: true}, true},
		{Event{PC: 0x100, NextPC: 0x120, Kind: isa.KindCondBr, Taken: true}, false},
		{Event{PC: 0x120, NextPC: 0x100, Kind: isa.KindCondBr, Taken: false}, false},
		{Event{PC: 0x120, NextPC: 0x100, Kind: isa.KindNone, Taken: true}, false},
		{Event{PC: 0x120, NextPC: 0x100, Kind: isa.KindJump, Taken: true}, true},
		{Event{PC: 0x120, NextPC: 0x120, Kind: isa.KindJump, Taken: true}, false}, // self is not backward
	}
	for i, c := range cases {
		if got := c.e.IsBackward(); got != c.want {
			t.Errorf("case %d: IsBackward = %v, want %v", i, got, c.want)
		}
	}
}

func TestSrcDest(t *testing.T) {
	e := Event{PC: 0xAAAA, NextPC: 0xBBBB}
	s, d := e.SrcDest()
	if s != 0xAAAA || d != 0xBBBB {
		t.Errorf("SrcDest = %#x, %#x", s, d)
	}
}

func TestMultiFanOut(t *testing.T) {
	var a, b []uint32
	sink := Multi(
		SinkFunc(func(e Event) { a = append(a, e.PC) }),
		SinkFunc(func(e Event) { b = append(b, e.PC) }),
	)
	sink.Retire(Event{PC: 1})
	sink.Retire(Event{PC: 2})
	if len(a) != 2 || len(b) != 2 || a[1] != 2 || b[0] != 1 {
		t.Errorf("fan-out broken: %v %v", a, b)
	}
}
