package trace

import (
	"testing"

	"lofat/internal/isa"
)

// TestEventHelpersZeroAlloc pins the per-retired-instruction Event
// helpers at zero allocations — SrcDest is //lofat:zeroalloc and sits
// on the branch filter's per-event path.
func TestEventHelpersZeroAlloc(t *testing.T) {
	e := Event{Cycle: 7, PC: 0x104, NextPC: 0x100, Kind: isa.KindCondBr, Taken: true}
	var src, dest uint32
	var back bool
	n := testing.AllocsPerRun(200, func() {
		src, dest = e.SrcDest()
		back = e.IsBackward()
	})
	if n != 0 {
		t.Fatalf("Event helpers allocate %v per run, want 0", n)
	}
	if src != 0x104 || dest != 0x100 || !back {
		t.Fatalf("SrcDest/IsBackward: got (%#x, %#x, %v)", src, dest, back)
	}
}
