package conform

import (
	"reflect"
	"strings"
	"testing"

	"lofat/internal/attest"
)

// TestISRConformanceCorpus is the interrupt-driven counterpart of
// TestConformanceCorpus: the same seed range, but every program
// carries an interrupt handler and every golden run executes under a
// seed-derived deterministic interrupt schedule. The full mutation
// taxonomy runs on top of interrupt-bearing traces — the pre-existing
// classes must keep classifying correctly when dispatch edges are
// interleaved into the stream — and the two ISR-specific classes
// (isr-hijack, interrupt-storm) must actually fire, not silently skip.
func TestISRConformanceCorpus(t *testing.T) {
	n := 12
	if !testing.Short() {
		n = 40
	}
	sum := New(Config{Seeds: seedRange(n), ISR: true}).Run()

	t.Logf("ISR conformance: %d scenarios (%d passed, %d skipped, %d failed), %d verdicts, classes=%v",
		sum.Scenarios, sum.Passed, sum.Skipped, sum.Failed, sum.Verdicts, sum.ByClass)

	for _, r := range sum.Failures() {
		for _, f := range r.Failures {
			t.Errorf("seed %d mutation %s: %s", r.Seed, r.Mutation, f)
		}
	}

	// Coverage floor: each ISR mutation class must run for a healthy
	// share of the corpus. Short seeds whose schedule never fires are
	// allowed to skip, but a corpus where most seeds skip means the
	// seed-derived schedules are mistuned.
	fired := map[string]int{}
	for _, r := range sum.Results {
		if !r.Skipped && len(r.Failures) == 0 {
			fired[r.Mutation]++
		}
	}
	for _, name := range []string{"isr-hijack", "interrupt-storm"} {
		if fired[name]*2 < n {
			t.Errorf("mutation %s fired on only %d/%d seeds", name, fired[name], n)
		}
	}
	for _, class := range []attest.Classification{
		attest.ClassAccepted, attest.ClassControlFlow, attest.ClassNonControlData,
	} {
		if sum.ByClass[class.String()] == 0 {
			t.Errorf("ISR corpus exercised no %q verdicts", class)
		}
	}
}

// TestISRCrossPathAgreement drives the ISR mutation classes through
// all five delivery paths — direct, streamed, single-service fleet
// (two sweeps) and the federated topology (two sweeps) — and asserts
// every path returns the ground-truth classification. Interrupts are
// below the evidence-transport layer: no path may diagnose a hijacked
// vector or a storm-pressured trace differently from any other.
func TestISRCrossPathAgreement(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 3
	}
	e := New(Config{Seeds: seedRange(seeds), ISR: true})
	exercised := map[string]int{}
	for _, seed := range e.cfg.Seeds {
		sub, err := buildSubject(seed, &e.cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var muts []*Mutation
		for _, b := range builders() {
			if mut, _ := b.build(sub, mutationRand(seed, b.name)); mut != nil {
				muts = append(muts, mut)
			}
		}
		fleetVerdicts, err := runFleet(sub, muts)
		if err != nil {
			t.Fatalf("seed %d: fleet path: %v", seed, err)
		}
		fedVerdicts := runFederated(t, sub, muts, 1)

		for _, mut := range muts {
			exercised[mut.Name]++
			res := ScenarioResult{
				Seed:     seed,
				Mutation: mut.Name,
				Class:    mut.Class,
				Expect:   mut.Expect.String(),
			}
			res.Verdicts = append(res.Verdicts, runDirect(sub, mut))
			res.Verdicts = append(res.Verdicts, runStream(sub, mut))
			res.Verdicts = append(res.Verdicts, fleetVerdicts[mut.Name]...)
			res.Verdicts = append(res.Verdicts, fedVerdicts[mut.Name]...)
			if len(res.Verdicts) != 6 {
				t.Fatalf("seed %d mutation %s: %d verdicts, want 6", seed, mut.Name, len(res.Verdicts))
			}
			for _, f := range checkScenario(&res, mut) {
				t.Errorf("seed %d mutation %s: %s", seed, mut.Name, f)
			}
		}
	}
	for _, name := range []string{"isr-hijack", "interrupt-storm"} {
		if exercised[name] == 0 {
			t.Errorf("no seed in range exercised %s across the five paths", name)
		}
	}
}

// TestISRInjectedFailureIsCaughtAndReproducible mirrors the harness
// self-test from the non-ISR corpus: sabotage an isr-hijack label,
// prove the harness flags it with the exact repro recipe, and prove
// the forensic dump — the full ScenarioResult including per-path
// verdicts and findings — reproduces bit-identically on a second run.
// A disagreement dump that cannot be replayed is worthless in triage.
func TestISRInjectedFailureIsCaughtAndReproducible(t *testing.T) {
	run := func() ScenarioResult {
		e := New(Config{Seeds: []int64{0}, Paths: []Path{PathDirect, PathStream}, ISR: true})
		sub, err := buildSubject(0, &e.cfg)
		if err != nil {
			t.Fatal(err)
		}
		mut, skip := buildISRHijack(sub, mutationRand(0, "isr-hijack"))
		if mut == nil {
			t.Fatalf("seed 0 cannot express isr-hijack: %s", skip)
		}
		mut.Expect = attest.ClassAccepted // sabotage the label
		res := ScenarioResult{Seed: 0, Mutation: mut.Name, Expect: mut.Expect.String()}
		res.Verdicts = append(res.Verdicts, runDirect(sub, mut), runStream(sub, mut))
		res.Failures = checkScenario(&res, mut)
		return res
	}
	first := run()
	if len(first.Failures) == 0 {
		t.Fatal("sabotaged ISR label was not flagged as a conformance failure")
	}
	for _, f := range first.Failures {
		if !strings.Contains(f, "repro: lofat-conform -seeds 0 -mutations isr-hijack") {
			t.Errorf("failure lacks the repro recipe: %s", f)
		}
	}
	if second := run(); !reflect.DeepEqual(first, second) {
		t.Errorf("injected ISR failure did not reproduce identically:\n%+v\nvs\n%+v", first, second)
	}
}
