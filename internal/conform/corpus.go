package conform

import (
	"encoding/binary"
	"fmt"
	mrand "math/rand"
	"reflect"

	"lofat/internal/asm"
	"lofat/internal/attest"
	"lofat/internal/cfg"
	"lofat/internal/core"
	"lofat/internal/cpu"
	"lofat/internal/hashengine"
	"lofat/internal/proggen"
	"lofat/internal/sig"
	"lofat/internal/stream"
)

// subject is one seed's honest ground state: the generated program,
// its static analysis, the device keys, the shared verifiers, and the
// honest instrumented run (measurement + raw edge stream) every
// mutation is derived from.
type subject struct {
	cfg  *Config
	seed int64

	src   string
	prog  *asm.Program
	graph *cfg.Graph
	id    attest.ProgramID
	dev   core.Config
	keys  *sig.KeyStore

	// av / sv are the in-process verifiers, shared across the seed's
	// scenarios so golden runs amortize exactly as they do in a fleet.
	av *attest.Verifier
	sv *stream.Verifier

	// honest is the golden streamed measurement (hash A, loop metadata
	// L, per-segment checkpoints); edges is its flattened control-flow
	// edge stream; exit is the honest exit code.
	honest core.Measurement
	edges  []hashengine.Pair
	exit   uint32
}

// buildSubject generates, assembles, analyses and golden-runs the
// seed's program.
func buildSubject(seed int64, cfg *Config) (*subject, error) {
	progCfg := cfg.Prog
	if cfg.ISR {
		progCfg.ISR = true
	}
	src := proggen.GenerateSeeded(seed, progCfg)
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("assemble: %w", err)
	}
	keys, err := sig.GenerateKeyStore(mrand.New(mrand.NewSource(seed ^ 0x5eed)))
	if err != nil {
		return nil, fmt.Errorf("keys: %w", err)
	}
	devCfg := core.Config{}
	if cfg.ISR {
		vector, ok := prog.Entry("isr")
		if !ok {
			return nil, fmt.Errorf("ISR corpus program has no isr label")
		}
		// Seed-derived schedule: deterministic per seed, varied across
		// the corpus. Phase lands inside even short programs; Period
		// keeps the handler duty cycle low so the main computation
		// dominates the measurement.
		devCfg.IRQ = cpu.IRQSchedule{
			Vector: vector,
			Phase:  uint64(12 + seed&31),
			Period: uint64(192 + (seed&7)*67),
		}
	}
	av, err := attest.NewVerifier(prog, devCfg, keys.Public(), mrand.New(mrand.NewSource(seed^0x0ce)))
	if err != nil {
		return nil, fmt.Errorf("verifier: %w", err)
	}
	av.MaxInstructions = cfg.MaxInstructions
	sv := stream.NewVerifier(av, stream.Config{SegmentEvents: cfg.SegmentEvents})

	meas, exit, err := stream.MeasureStream(prog, devCfg, nil, cfg.SegmentEvents, cfg.MaxInstructions)
	if err != nil {
		return nil, fmt.Errorf("honest run: %w", err)
	}
	sub := &subject{
		cfg:    cfg,
		seed:   seed,
		src:    src,
		prog:   prog,
		graph:  av.Graph(),
		id:     av.ProgramID(),
		dev:    devCfg,
		keys:   keys,
		av:     av,
		sv:     sv,
		honest: meas,
		edges:  stream.FlattenSegments(meas.Segments),
		exit:   exit,
	}
	return sub, nil
}

func (s *subject) indirectBits() int {
	bits := s.dev.Monitor.IndirectBits
	if bits <= 0 {
		bits = 4
	}
	return bits
}

// oracleScenario checks the per-seed invariants of the honest run —
// properties the labeled scenarios rely on but do not themselves
// assert.
func (e *Engine) oracleScenario(sub *subject) ScenarioResult {
	res := ScenarioResult{
		Seed:     sub.seed,
		Mutation: "oracle",
		Expect:   attest.ClassAccepted.String(),
	}
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		res.Failures = append(res.Failures, fmt.Sprintf("%s [repro: %s]", msg, res.Recipe()))
	}

	// Measurement determinism: a second instrumented run must be
	// bit-identical in hash, loop metadata and segment chain.
	again, exit2, err := stream.MeasureStream(sub.prog, sub.dev, nil, e.cfg.SegmentEvents, e.cfg.MaxInstructions)
	switch {
	case err != nil:
		fail("determinism re-run failed: %v", err)
	case again.Hash != sub.honest.Hash:
		fail("nondeterministic measurement hash")
	case !reflect.DeepEqual(again.Loops, sub.honest.Loops):
		fail("nondeterministic loop metadata")
	case !reflect.DeepEqual(again.Segments, sub.honest.Segments):
		fail("nondeterministic segment chain")
	case exit2 != sub.exit:
		fail("nondeterministic exit code: %d vs %d", exit2, sub.exit)
	}

	// Device/emitter agreement: the plain end-of-run device must
	// produce the same (A, L) as the streamed instrumentation.
	plain, _, err := attest.Measure(sub.prog, sub.dev, nil, e.cfg.MaxInstructions)
	switch {
	case err != nil:
		fail("plain measurement failed: %v", err)
	case plain.Hash != sub.honest.Hash:
		fail("streamed and plain measurement hashes differ")
	case !reflect.DeepEqual(plain.Loops, sub.honest.Loops):
		fail("streamed and plain loop metadata differ")
	}

	// Event conservation: every control-flow event is hashed or
	// deduplicated; the device drops and stalls nothing.
	st := sub.honest.Stats
	if st.HashedPairs+st.DedupedPairs != st.ControlFlowEvents {
		fail("conservation: hashed %d + deduped %d != events %d",
			st.HashedPairs, st.DedupedPairs, st.ControlFlowEvents)
	}
	if st.ProcessorStallCycles != 0 {
		fail("device stalled the processor for %d cycles", st.ProcessorStallCycles)
	}
	if st.Engine.Dropped != 0 {
		fail("hash engine dropped %d pairs", st.Engine.Dropped)
	}
	if got := uint64(len(sub.edges)); got != st.ControlFlowEvents {
		fail("emitter recorded %d edges, device measured %d events", got, st.ControlFlowEvents)
	}

	// cfg.ValidEdge soundness: the static analysis must admit every
	// edge the honest execution actually took.
	for i, p := range sub.edges {
		if !sub.graph.ValidEdge(p.Src, p.Dest) {
			fail("executed honest edge %d (%#x->%#x) rejected by cfg.ValidEdge", i, p.Src, p.Dest)
			break
		}
	}

	// Honest loop records never fail the CFG path walks.
	for _, rec := range sub.honest.Loops {
		for _, wr := range sub.graph.ValidateRecord(rec, sub.indirectBits()) {
			if wr.Verdict == cfg.PathInvalid {
				fail("honest record %v flagged invalid: %s", rec, wr.Reason)
			}
		}
	}

	// ChunkEdges must reproduce the emitter's segmentation exactly —
	// the synthetic provers depend on it.
	if !reflect.DeepEqual(stream.ChunkEdges(sub.edges, e.cfg.SegmentEvents), sub.honest.Segments) {
		fail("ChunkEdges disagrees with the emitter's segment chain")
	}

	res.Verdicts = append(res.Verdicts, Verdict{
		Path:     "oracle",
		Class:    attest.ClassAccepted.String(),
		Accepted: len(res.Failures) == 0,
	})
	return res
}

// mutationRand derives the deterministic RNG for one (seed, mutation)
// pair: mutation choices never depend on builder order or on other
// mutations.
func mutationRand(seed int64, name string) *mrand.Rand {
	h := hashengine.Sum512(append(binary.LittleEndian.AppendUint64(nil, uint64(seed)), name...))
	return mrand.New(mrand.NewSource(int64(binary.LittleEndian.Uint64(h[:8]))))
}
