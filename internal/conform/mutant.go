package conform

import (
	"errors"
	"fmt"
	"io"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/hashengine"
	"lofat/internal/stream"
)

// mutantDevice is the synthetic dishonest prover: it answers both
// protocols with a mutation's artifacts, signed with the real device
// key (except where the mutation tampers the signature itself). It
// replaces execution with replay — the measurement a LO-FAT device
// would have produced under the attack was already derived by the
// mutator — so the same labeled evidence can be presented on every
// delivery path and any verdict difference is attributable to the
// path, not the attack.
type mutantDevice struct {
	sub *subject
	mut *Mutation
}

func newMutantDevice(sub *subject, mut *Mutation) *mutantDevice {
	return &mutantDevice{sub: sub, mut: mut}
}

// nonce echoes (or, for the replay mutation, corrupts) the challenge
// nonce.
func (d *mutantDevice) nonce(n attest.Nonce) attest.Nonce {
	if d.mut.tamperNonce {
		n[0] ^= 0xa5
	}
	return n
}

// report builds the signed end-of-run report for a challenge nonce.
func (d *mutantDevice) report(n attest.Nonce) *attest.Report {
	rep := &attest.Report{
		Program:  d.mut.program,
		Nonce:    d.nonce(n),
		Hash:     d.mut.hash,
		Loops:    d.mut.loops,
		ExitCode: d.mut.exit,
	}
	rep.Sig = d.sub.keys.Sign(attest.SignedPayload(rep))
	if d.mut.tamperSig {
		rep.Sig[0] ^= 0x80
	}
	return rep
}

// mutantStream walks one streamed session: the mutation's edge stream
// chunked with the verifier-requested window, signed segment by
// segment on demand (a session rejected early never pays for the tail
// signatures).
type mutantStream struct {
	d     *mutantDevice
	nonce attest.Nonce
	segs  []core.Segment
	next  int
}

func (d *mutantDevice) streamSession(n attest.Nonce, windowEvents int) *mutantStream {
	return &mutantStream{d: d, nonce: n, segs: stream.ChunkEdges(d.mut.edges, windowEvents)}
}

// nextReport returns the next signed segment, or nil at end of stream.
func (ms *mutantStream) nextReport() *stream.SegmentReport {
	if ms.next >= len(ms.segs) {
		return nil
	}
	seg := ms.segs[ms.next]
	ms.next++
	sr := &stream.SegmentReport{
		Program: ms.d.mut.program,
		Nonce:   ms.d.nonce(ms.nonce),
		Index:   seg.Index,
		Events:  seg.Events,
		Chain:   seg.Chain,
		Edges:   seg.Edges,
	}
	sr.Sig = ms.d.sub.keys.Sign(stream.SegmentPayload(sr))
	if ms.d.mut.tamperSig && seg.Index == 0 {
		sr.Sig[0] ^= 0x80
	}
	return sr
}

// closeReport builds the final message: the end-of-run report framed
// with the stream's segment count and chain head.
func (ms *mutantStream) closeReport() *stream.CloseReport {
	var chain [hashengine.DigestSize]byte
	if n := len(ms.segs); n > 0 {
		chain = ms.segs[n-1].Chain
	}
	return &stream.CloseReport{
		Report:   *ms.d.report(ms.nonce),
		Segments: uint32(len(ms.segs)),
		Chain:    chain,
	}
}

// serveConn speaks both wire protocols on one connection — the fleet
// delivery path. Classic challenges get a mutant report; stream opens
// get the mutant segment stream and close. A write error means the
// verifier hung up (mid-stream rejection): the device stops, exactly
// like a real prover whose emitter write fails.
func (d *mutantDevice) serveConn(conn io.ReadWriter) error {
	for {
		typ, payload, err := attest.ReadFrame(conn)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		switch typ {
		case attest.MsgChallenge:
			ch, err := attest.DecodeChallenge(payload)
			if err != nil {
				return err
			}
			rep := d.report(ch.Nonce)
			if err := attest.WriteFrame(conn, attest.MsgReport, attest.EncodeReport(rep)); err != nil {
				return err
			}
		case stream.MsgStreamOpen:
			open, err := stream.DecodeOpen(payload)
			if err != nil {
				return err
			}
			ms := d.streamSession(open.Nonce, int(open.SegmentEvents))
			for sr := ms.nextReport(); sr != nil; sr = ms.nextReport() {
				if err := attest.WriteFrame(conn, stream.MsgSegment, stream.EncodeSegment(sr)); err != nil {
					return err
				}
			}
			if err := attest.WriteFrame(conn, stream.MsgStreamClose, stream.EncodeClose(ms.closeReport())); err != nil {
				return err
			}
		default:
			return fmt.Errorf("conform: mutant device: unexpected message type %d", typ)
		}
	}
}
