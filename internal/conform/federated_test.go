package conform

import (
	"fmt"
	"io"
	"net"
	"testing"

	"lofat/internal/attest"
	"lofat/internal/fed"
	"lofat/internal/fleet"
)

// runFederated verifies every mutant of one seed through the federated
// path: a coordinator fanning sweeps out to three verifier nodes, the
// mutants sharded across them by the placement ring (replicas-wide
// replica sets; 1 = single-owner). Like runFleet it contributes two
// verdicts per mutation — a direct sweep and, after releasing the
// quarantines it caused, a streamed sweep.
func runFederated(t *testing.T, sub *subject, muts []*Mutation, replicas int) map[string][]Verdict {
	t.Helper()
	devices := make(map[string]*mutantDevice, len(muts))
	addrOf := func(m *Mutation) string { return "mem://" + m.Name }
	for _, mut := range muts {
		devices[addrOf(mut)] = newMutantDevice(sub, mut)
	}
	dial := func(addr string) (io.ReadWriteCloser, error) {
		d, ok := devices[addr]
		if !ok {
			return nil, fmt.Errorf("conform: no mutant device at %q", addr)
		}
		client, server := net.Pipe()
		go func() {
			defer server.Close()
			_ = d.serveConn(server)
		}()
		return client, nil
	}

	coord := fed.NewCoordinator(fed.Config{Replicas: replicas})
	defer coord.Close()
	for i := 0; i < 3; i++ {
		node, err := fed.NewNode(fed.NodeConfig{
			ID: fed.NodeID(fmt.Sprintf("node-%d", i)),
			Fleet: fleet.Config{
				Workers:             2,
				Dial:                dial,
				BreakerThreshold:    -1, // protocol-class mutants must be re-challenged, not tripped
				StreamSegmentEvents: sub.cfg.SegmentEvents,
				MaxInstructions:     sub.cfg.MaxInstructions,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		nodeDial := func() (io.ReadWriteCloser, error) {
			client, server := net.Pipe()
			go func() {
				defer server.Close()
				_ = node.ServeConn(server)
			}()
			return client, nil
		}
		if _, err := coord.Join(node.ID(), nodeDial); err != nil {
			t.Fatal(err)
		}
	}

	progID, err := coord.RegisterProgram(sub.prog, sub.dev, [][]uint32{{}})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	for _, mut := range muts {
		if err := coord.Enroll(fleet.DeviceID(mut.Name), progID, sub.keys.Public(), addrOf(mut)); err != nil {
			t.Fatalf("enroll %s: %v", mut.Name, err)
		}
	}

	out := make(map[string][]Verdict, len(muts))
	collect := func(path string, wantRounds uint64) {
		for _, mut := range muts {
			st, _, err := coord.Device(fleet.DeviceID(mut.Name))
			if err != nil {
				t.Fatalf("device %s: %v", mut.Name, err)
			}
			if st.Rounds != wantRounds {
				out[mut.Name] = append(out[mut.Name], errorVerdict(path, fmt.Errorf(
					"device %s completed %d rounds, want %d (last error: %s)",
					mut.Name, st.Rounds, wantRounds, st.LastError)))
				continue
			}
			out[mut.Name] = append(out[mut.Name], Verdict{
				Path:     path,
				Class:    st.LastClass.String(),
				Accepted: st.LastClass == attest.ClassAccepted,
				Findings: st.LastFindings,
			})
		}
	}

	v, err := coord.Sweep(progID, nil, false)
	if err != nil {
		t.Fatalf("federated direct sweep: %v", err)
	}
	if v.NodesOK != 3 || v.Devices != len(muts) || len(v.Uncovered) != 0 {
		t.Fatalf("federated sweep did not cover the corpus: %s", v)
	}
	collect("federated-direct", 1)
	// Release the direct sweep's quarantines so the streamed sweep
	// challenges every mutant again — same protocol as runFleet.
	for _, ids := range v.NewlyQuarantined {
		for _, id := range ids {
			if err := coord.Release(id); err != nil {
				t.Fatalf("release %s: %v", id, err)
			}
		}
	}
	if _, err := coord.Sweep(progID, nil, true); err != nil {
		t.Fatalf("federated streamed sweep: %v", err)
	}
	collect("federated-stream", 2)
	return out
}

// TestFederatedCrossPathAgreement runs a seed range through every
// delivery path — direct, streamed, single-service fleet, and the
// federated coordinator → 3 nodes topology — and asserts each mutation
// gets the same classification everywhere, including against its
// ground-truth label. A federation must not change a single verdict:
// sharding and transport are below the measurement semantics.
func TestFederatedCrossPathAgreement(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 3
	}
	e := New(Config{Seeds: seedRange(seeds)})
	for _, seed := range e.cfg.Seeds {
		sub, err := buildSubject(seed, &e.cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var muts []*Mutation
		for _, b := range builders() {
			if mut, _ := b.build(sub, mutationRand(seed, b.name)); mut != nil {
				muts = append(muts, mut)
			}
		}
		fleetVerdicts, err := runFleet(sub, muts)
		if err != nil {
			t.Fatalf("seed %d: fleet path: %v", seed, err)
		}
		fedVerdicts := runFederated(t, sub, muts, 1)

		for _, mut := range muts {
			res := ScenarioResult{
				Seed:     seed,
				Mutation: mut.Name,
				Class:    mut.Class,
				Expect:   mut.Expect.String(),
			}
			res.Verdicts = append(res.Verdicts, runDirect(sub, mut))
			res.Verdicts = append(res.Verdicts, runStream(sub, mut))
			res.Verdicts = append(res.Verdicts, fleetVerdicts[mut.Name]...)
			res.Verdicts = append(res.Verdicts, fedVerdicts[mut.Name]...)
			if len(res.Verdicts) != 6 {
				t.Fatalf("seed %d mutation %s: %d verdicts, want 6", seed, mut.Name, len(res.Verdicts))
			}
			for _, f := range checkScenario(&res, mut) {
				t.Errorf("seed %d mutation %s: %s", seed, mut.Name, f)
			}
		}
	}
}

// TestFederatedReplicatedAgreement re-runs the federated path with a
// replication factor of 2 and asserts replication is invisible to the
// measurement: every mutant classifies identically to the single-owner
// federation and to its ground-truth label. Warm standby replicas must
// never double-challenge a device — a second challenge would consume a
// one-shot mutation and flip the verdict.
func TestFederatedReplicatedAgreement(t *testing.T) {
	seeds := 3
	if testing.Short() {
		seeds = 2
	}
	e := New(Config{Seeds: seedRange(seeds)})
	for _, seed := range e.cfg.Seeds {
		sub, err := buildSubject(seed, &e.cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var muts []*Mutation
		for _, b := range builders() {
			if mut, _ := b.build(sub, mutationRand(seed, b.name)); mut != nil {
				muts = append(muts, mut)
			}
		}
		single := runFederated(t, sub, muts, 1)
		replicated := runFederated(t, sub, muts, 2)
		for _, mut := range muts {
			a, b := single[mut.Name], replicated[mut.Name]
			if len(a) != len(b) {
				t.Fatalf("seed %d mutation %s: %d vs %d verdicts across replication factors", seed, mut.Name, len(a), len(b))
			}
			for i := range a {
				if a[i].Class != b[i].Class || a[i].Accepted != b[i].Accepted {
					t.Errorf("seed %d mutation %s %s: R=1 classified %q, R=2 %q",
						seed, mut.Name, a[i].Path, a[i].Class, b[i].Class)
				}
			}
			res := ScenarioResult{
				Seed:     seed,
				Mutation: mut.Name,
				Class:    mut.Class,
				Expect:   mut.Expect.String(),
				Verdicts: b,
			}
			for _, f := range checkScenario(&res, mut) {
				t.Errorf("seed %d mutation %s (R=2): %s", seed, mut.Name, f)
			}
		}
	}
}
