package conform

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// SoakConfig parameterises a long-run conformance soak: instead of a
// fixed seed list, the engine sweeps consecutive seed windows until a
// wall-clock budget is spent, persisting its position after every
// window so the next soak resumes where this one stopped. Over nightly
// runs the fleet therefore walks an unbounded, never-repeating seed
// space instead of re-proving the same corpus forever.
type SoakConfig struct {
	// Budget is the wall-clock budget (required, > 0). The soak always
	// completes at least one window, then stops at the first window
	// boundary past the budget — a window is never abandoned mid-seed,
	// so every persisted position is a clean resume point.
	Budget time.Duration
	// Window is the number of consecutive seeds per window (default 25).
	Window int
	// StateFile, when set, persists the soak position as JSON. The file
	// is written atomically (temp + rename) after every window; a
	// missing file starts the walk at seed 0.
	StateFile string
	// Base is the per-window engine configuration. Base.Seeds is
	// ignored — the soak supplies each window's seed range.
	Base Config
	// Log, when set, receives one progress line per window.
	Log func(format string, args ...any)

	// now is a test seam; nil means time.Now.
	now func() time.Time
}

// SoakState is the persisted position of the rolling seed walk.
type SoakState struct {
	// NextSeed is the first seed of the next window to run.
	NextSeed int64 `json:"next_seed"`
	// Windows counts completed windows across all soaks of this state.
	Windows int64 `json:"windows"`
	// Scenarios counts non-skipped scenarios across all soaks.
	Scenarios int64 `json:"scenarios"`
	// UpdatedAt is the RFC 3339 time of the last window boundary.
	UpdatedAt string `json:"updated_at"`
}

// SoakSummary aggregates one soak invocation.
type SoakSummary struct {
	// FirstSeed..NextSeed is the half-open seed range this soak covered.
	FirstSeed int64 `json:"first_seed"`
	NextSeed  int64 `json:"next_seed"`
	// Windows is the number of windows this soak completed.
	Windows int `json:"windows"`
	// Elapsed is the wall-clock time spent.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Scenarios/Passed/Skipped/Failed/Verdicts aggregate every window's
	// Summary counters.
	Scenarios int `json:"scenarios"`
	Passed    int `json:"passed"`
	Skipped   int `json:"skipped"`
	Failed    int `json:"failed"`
	Verdicts  int `json:"verdicts"`
	// Failures collects every failing scenario across all windows.
	Failures []ScenarioResult `json:"failures,omitempty"`
}

// Soak runs rolling seed windows until the budget is spent, persisting
// the resume position after every window. It returns the aggregate
// summary; conformance failures are reported in the summary, not as an
// error (errors are environmental: an unreadable or unwritable state
// file).
func Soak(cfg SoakConfig) (*SoakSummary, error) {
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("conform: soak budget must be positive, got %v", cfg.Budget)
	}
	if cfg.Window <= 0 {
		cfg.Window = 25
	}
	now := cfg.now
	if now == nil {
		now = time.Now
	}
	state, err := loadSoakState(cfg.StateFile)
	if err != nil {
		return nil, err
	}

	sum := &SoakSummary{FirstSeed: state.NextSeed, NextSeed: state.NextSeed}
	start := now()
	for {
		seeds := make([]int64, cfg.Window)
		for i := range seeds {
			seeds[i] = state.NextSeed + int64(i)
		}
		winCfg := cfg.Base
		winCfg.Seeds = seeds
		win := New(winCfg).Run()

		state.NextSeed += int64(cfg.Window)
		state.Windows++
		state.Scenarios += int64(win.Scenarios - win.Skipped)
		state.UpdatedAt = now().UTC().Format(time.RFC3339)
		if err := saveSoakState(cfg.StateFile, state); err != nil {
			return nil, err
		}

		sum.NextSeed = state.NextSeed
		sum.Windows++
		sum.Scenarios += win.Scenarios
		sum.Passed += win.Passed
		sum.Skipped += win.Skipped
		sum.Failed += win.Failed
		sum.Verdicts += win.Verdicts
		sum.Failures = append(sum.Failures, win.Failures()...)
		sum.Elapsed = now().Sub(start)

		if cfg.Log != nil {
			cfg.Log("soak window %d: seeds %d:%d, %d scenarios (%d failed), %v elapsed of %v",
				state.Windows, seeds[0], state.NextSeed, win.Scenarios, win.Failed,
				sum.Elapsed.Round(time.Millisecond), cfg.Budget)
		}
		if sum.Elapsed >= cfg.Budget {
			return sum, nil
		}
	}
}

// loadSoakState reads the resume position; a missing file (or empty
// path) starts the walk at seed 0. A present-but-corrupt file is an
// error: silently restarting at 0 would re-prove old seeds while
// looking like forward progress.
func loadSoakState(path string) (*SoakState, error) {
	st := &SoakState{}
	if path == "" {
		return st, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return nil, fmt.Errorf("conform: soak state: %w", err)
	}
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("conform: soak state %s is corrupt: %w", path, err)
	}
	if st.NextSeed < 0 {
		return nil, fmt.Errorf("conform: soak state %s has negative next_seed %d", path, st.NextSeed)
	}
	return st, nil
}

// saveSoakState persists atomically: write a temp file in the same
// directory, then rename over the target. A soak killed mid-write
// resumes from the previous window boundary, never from a torn file.
func saveSoakState(path string, st *SoakState) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("conform: soak state: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".soak-state-*")
	if err != nil {
		return fmt.Errorf("conform: soak state: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("conform: soak state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("conform: soak state: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("conform: soak state: %w", err)
	}
	return nil
}
