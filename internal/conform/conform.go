// Package conform is the adversarial conformance harness: it proves,
// at corpus scale, the classification claim behind LO-FAT's security
// argument — for every control-flow attack class of the paper's
// Figure 1 the verifier must reject with the RIGHT diagnosis, for
// every honest run it must accept, and the verdict must not depend on
// which delivery path carried the evidence.
//
// The harness is deterministic end to end. A scenario is the triple
// (seed, mutation, path):
//
//   - the SEED names a program: internal/proggen generates it
//     byte-reproducibly, and one instrumented golden run captures the
//     honest measurement (A, L) plus the raw control-flow edge stream;
//   - the MUTATION mechanically derives a labeled attack from the
//     honest artifacts. Each mutation carries its ground-truth
//     attest.Classification, established by CONSTRUCTION against the
//     static CFG oracle (internal/cfg) — never by asking the verifier
//     being tested. The mutator covers the Figure 1 taxonomy (loop
//     counter corruption, CFG-invalid edge splices, permissible-but-
//     unintended path substitution) plus the protocol layer that
//     fences it (code injection caught by program-identity binding,
//     nonce replay, signature forgery);
//   - the PATH is one of the three delivery routes a real deployment
//     uses: the in-process attest.Verifier, an incremental
//     internal/stream session, and an internal/fleet sweep over
//     in-memory pipes (optionally fault-injected with latency via
//     internal/fleet/faultconn). A synthetic dishonest prover replays
//     the same mutated artifacts over each path, so any disagreement
//     between paths is a bug in one of them, not noise in the attack.
//
// Every scenario asserts the verifier's Classification (and a finding
// substring) against the mutation's label, and that all paths agree.
// On top of the labeled corpus, an oracle pass checks per-seed
// invariants no single scenario sees: measurement determinism,
// device/emitter agreement, event conservation, honest records passing
// CFG path walks, and cfg.ValidEdge soundness on every executed honest
// edge. Failures print a one-line repro recipe (seed + mutation +
// path) that cmd/lofat-conform replays exactly.
package conform

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"lofat/internal/attest"
	"lofat/internal/proggen"
	"lofat/internal/stream"
)

// Path names one delivery route for attestation evidence.
type Path string

// The three delivery paths.
const (
	// PathDirect verifies a signed end-of-run report with an
	// in-process attest.Verifier.
	PathDirect Path = "direct"
	// PathStream consumes a segmented edge stream through an
	// internal/stream session, rejecting at the first divergent
	// segment.
	PathStream Path = "stream"
	// PathFleet drives both protocols through an internal/fleet
	// service over in-memory pipes: a direct sweep and a streamed
	// sweep, each producing its own verdict.
	PathFleet Path = "fleet"
)

// AllPaths is the default path set.
func AllPaths() []Path { return []Path{PathDirect, PathStream, PathFleet} }

// Config parameterises a conformance run. Zero values select defaults.
type Config struct {
	// Seeds are the program seeds to test (required).
	Seeds []int64
	// SegmentEvents is the streamed checkpoint window N (default 32).
	SegmentEvents int
	// MaxInstructions bounds every simulation (default 3,000,000).
	MaxInstructions uint64
	// Paths restricts the delivery paths exercised (default all).
	Paths []Path
	// Mutations restricts the mutation kinds by name (default all).
	Mutations []string
	// Workers bounds seed-level parallelism (default GOMAXPROCS).
	Workers int
	// Prog shapes the generated programs (proggen defaults).
	Prog proggen.Config
	// FleetLatency, when positive, wraps every fleet transport in a
	// faultconn latency plan: the sweeps then exercise the deadline
	// plumbing without changing any verdict.
	FleetLatency int // microseconds per I/O operation
	// ISR switches the corpus to interrupt-driven firmware: programs
	// carry an interrupt handler (proggen.Config.ISR), every golden run
	// executes under a seed-derived deterministic interrupt schedule,
	// and the isr-hijack / interrupt-storm mutation classes become
	// applicable (they skip on a non-ISR corpus).
	ISR bool
}

func (c *Config) fill() {
	if c.SegmentEvents <= 0 {
		c.SegmentEvents = 32
	}
	if c.SegmentEvents > stream.MaxSegmentEvents {
		c.SegmentEvents = stream.MaxSegmentEvents
	}
	if c.MaxInstructions == 0 {
		c.MaxInstructions = 3_000_000
	}
	if len(c.Paths) == 0 {
		c.Paths = AllPaths()
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

func (c *Config) hasPath(p Path) bool {
	for _, q := range c.Paths {
		if q == p {
			return true
		}
	}
	return false
}

func (c *Config) wantsMutation(name string) bool {
	if len(c.Mutations) == 0 {
		return true
	}
	for _, m := range c.Mutations {
		if m == name {
			return true
		}
	}
	return false
}

// Verdict is one path's decision on one scenario.
type Verdict struct {
	Path     string   `json:"path"`
	Class    string   `json:"class"`
	Accepted bool     `json:"accepted"`
	Findings []string `json:"findings,omitempty"`
}

// ScenarioResult is the outcome of one (seed, mutation) pair across
// every enabled path.
type ScenarioResult struct {
	Seed     int64  `json:"seed"`
	Mutation string `json:"mutation"`
	// Class is the mutation's Figure 1 class (1–3; 0 for honest and
	// oracle scenarios, -1 for protocol-layer mutations).
	Class int `json:"figure1_class"`
	// Expect is the ground-truth classification label.
	Expect string `json:"expect"`
	// Verdicts holds one entry per delivery verdict (the fleet path
	// contributes two: its direct and its streamed sweep).
	Verdicts []Verdict `json:"verdicts,omitempty"`
	// Skipped scenarios were inapplicable to the generated program
	// (e.g. a loop mutation on a loop-free program).
	Skipped    bool   `json:"skipped,omitempty"`
	SkipReason string `json:"skip_reason,omitempty"`
	// Failures lists every conformance violation, each ending with the
	// repro recipe. Empty means the scenario passed.
	Failures []string `json:"failures,omitempty"`
}

// Recipe is the one-line reproduction recipe for the scenario: feed it
// back to cmd/lofat-conform to replay exactly this check.
func (r ScenarioResult) Recipe() string {
	return Recipe(r.Seed, r.Mutation)
}

// Recipe renders the reproduction recipe for a (seed, mutation) pair.
func Recipe(seed int64, mutation string) string {
	return fmt.Sprintf("lofat-conform -seeds %d -mutations %s", seed, mutation)
}

// Summary aggregates a conformance run.
type Summary struct {
	Seeds     int              `json:"seeds"`
	Scenarios int              `json:"scenarios"`
	Passed    int              `json:"passed"`
	Skipped   int              `json:"skipped"`
	Failed    int              `json:"failed"`
	Verdicts  int              `json:"verdicts"`
	ByClass   map[string]int   `json:"by_class"`
	Results   []ScenarioResult `json:"results"`
}

// Failures returns the failing scenarios.
func (s *Summary) Failures() []ScenarioResult {
	var out []ScenarioResult
	for _, r := range s.Results {
		if len(r.Failures) > 0 {
			out = append(out, r)
		}
	}
	return out
}

// Engine runs conformance scenarios.
type Engine struct {
	cfg Config
}

// New builds an engine; the configuration is filled with defaults.
func New(cfg Config) *Engine {
	cfg.fill()
	return &Engine{cfg: cfg}
}

// Run executes every (seed, mutation, path) scenario and aggregates
// the summary. Seeds run in parallel (Config.Workers); results are
// reported in deterministic (seed, mutation) order regardless.
func (e *Engine) Run() *Summary {
	jobs := make(chan int)
	out := make([][]ScenarioResult, len(e.cfg.Seeds))
	var wg sync.WaitGroup
	workers := min(e.cfg.Workers, max(len(e.cfg.Seeds), 1))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = e.RunSeed(e.cfg.Seeds[i])
			}
		}()
	}
	for i := range e.cfg.Seeds {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	sum := &Summary{Seeds: len(e.cfg.Seeds), ByClass: make(map[string]int)}
	for _, results := range out {
		sum.Results = append(sum.Results, results...)
	}
	sort.SliceStable(sum.Results, func(i, j int) bool {
		a, b := sum.Results[i], sum.Results[j]
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.Mutation < b.Mutation
	})
	for _, r := range sum.Results {
		sum.Scenarios++
		switch {
		case r.Skipped:
			sum.Skipped++
		case len(r.Failures) > 0:
			sum.Failed++
		default:
			sum.Passed++
		}
		sum.Verdicts += len(r.Verdicts)
		for _, v := range r.Verdicts {
			sum.ByClass[v.Class]++
		}
	}
	return sum
}

// RunSeed executes every scenario for one seed: the oracle pass over
// the honest run, then each applicable mutation over every enabled
// path.
func (e *Engine) RunSeed(seed int64) []ScenarioResult {
	sub, err := buildSubject(seed, &e.cfg)
	if err != nil {
		return []ScenarioResult{{
			Seed:     seed,
			Mutation: "corpus",
			Expect:   attest.ClassAccepted.String(),
			Failures: []string{fmt.Sprintf("subject construction failed: %v [repro: %s]", err, Recipe(seed, "corpus"))},
		}}
	}

	results := []ScenarioResult{e.oracleScenario(sub)}

	var muts []*Mutation
	for _, b := range builders() {
		if !e.cfg.wantsMutation(b.name) {
			continue
		}
		mut, skip := b.build(sub, mutationRand(seed, b.name))
		if mut == nil {
			results = append(results, ScenarioResult{
				Seed:       seed,
				Mutation:   b.name,
				Skipped:    true,
				SkipReason: skip,
			})
			continue
		}
		muts = append(muts, mut)
	}

	// The fleet path verifies every mutant of the seed in two sweeps
	// of one service, so it runs once per seed, not once per mutation.
	var fleetVerdicts map[string][]Verdict
	var fleetErr error
	if e.cfg.hasPath(PathFleet) && len(muts) > 0 {
		fleetVerdicts, fleetErr = runFleet(sub, muts)
	}

	for _, mut := range muts {
		res := ScenarioResult{
			Seed:     seed,
			Mutation: mut.Name,
			Class:    mut.Class,
			Expect:   mut.Expect.String(),
		}
		if e.cfg.hasPath(PathDirect) {
			res.Verdicts = append(res.Verdicts, runDirect(sub, mut))
		}
		if e.cfg.hasPath(PathStream) {
			res.Verdicts = append(res.Verdicts, runStream(sub, mut))
		}
		if fleetErr != nil {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"fleet path failed: %v [repro: %s]", fleetErr, res.Recipe()))
		} else if fleetVerdicts != nil {
			res.Verdicts = append(res.Verdicts, fleetVerdicts[mut.Name]...)
		}
		res.Failures = append(res.Failures, checkScenario(&res, mut)...)
		results = append(results, res)
	}
	return results
}

// checkScenario asserts the conformance contract on a scenario's
// verdicts: every path classified the mutation as its ground-truth
// label, at least one finding names the diagnosis, and no two paths
// disagree.
func checkScenario(res *ScenarioResult, mut *Mutation) []string {
	var fails []string
	recipe := res.Recipe()
	for _, v := range res.Verdicts {
		if v.Class != mut.Expect.String() {
			fails = append(fails, fmt.Sprintf(
				"%s path classified %q, ground truth %q (findings: %v) [repro: %s -path %s]",
				v.Path, v.Class, mut.Expect, v.Findings, recipe, v.Path))
		}
		if v.Accepted != (mut.Expect == attest.ClassAccepted) {
			fails = append(fails, fmt.Sprintf(
				"%s path accepted=%v, ground truth accepted=%v [repro: %s -path %s]",
				v.Path, v.Accepted, mut.Expect == attest.ClassAccepted, recipe, v.Path))
		}
		if len(mut.FindingAny) > 0 && !findingMatches(v.Findings, mut.FindingAny) {
			fails = append(fails, fmt.Sprintf(
				"%s path findings %v name none of %v [repro: %s -path %s]",
				v.Path, v.Findings, mut.FindingAny, recipe, v.Path))
		}
	}
	// Cross-path agreement: any divergence between delivery paths is a
	// conformance failure in its own right, with a forensic dump of
	// every verdict.
	for i := 1; i < len(res.Verdicts); i++ {
		if res.Verdicts[i].Class != res.Verdicts[0].Class {
			fails = append(fails, fmt.Sprintf(
				"delivery paths disagree: %s [repro: %s]", dumpVerdicts(res.Verdicts), recipe))
			break
		}
	}
	return fails
}

func dumpVerdicts(vs []Verdict) string {
	s := ""
	for i, v := range vs {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("%s=%s(accepted=%v findings=%v)", v.Path, v.Class, v.Accepted, v.Findings)
	}
	return s
}

func findingMatches(findings, any []string) bool {
	res := attest.Result{Findings: findings}
	for _, sub := range any {
		if res.HasFinding(sub) {
			return true
		}
	}
	return false
}
