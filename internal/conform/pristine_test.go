package conform

import (
	"encoding/hex"
	"testing"

	"lofat/internal/asm"
	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/proggen"
)

// pristineDigest is a golden measurement captured at the commit BEFORE
// the interrupt model existed: proggen seed (zero Config), zero device
// config, nil input, 3M instruction budget.
type pristineDigest struct {
	hash   string // hex SHA-3-512 measurement A
	exit   uint32
	loops  int
	hashed uint64 // Stats.HashedPairs
}

// pristineDigests pins seeds 0..15. The values were produced by the
// pre-interrupt tree; any drift here means the interrupt feature
// changed the measurement of interrupt-free programs, which must never
// happen — a disabled interrupt line (zero IRQSchedule) is required to
// be bit-for-bit invisible.
var pristineDigests = []pristineDigest{
	{"271b770622346d7b2d682b53837327f2ae85e4c2eb70c57e90479a3ae4398f2d4b0286ebfb13b54f90850461697462bf1623db8313bc58e7948d40ce5caf6281", 2310, 1, 6},
	{"b39292c91670bbdd1f290a1cd4ca80270e45365e4357ceb92a1c11c97abaf80d47cf1e33a9192d53fb750c6ffbf096fff5cb0f5d13705dce32bc4084c86eec01", 7228, 16, 118},
	{"51510265d43780ed7d78514665cb4c046275eac07f6df39ce035590ce2db86f345b807c40b4cf4b72699ec7d639d9cc7d59af52db52c871eefdba04c633381fe", 4512, 4, 25},
	{"d7366542dd0e714dfda4448a7cab3732f1961137d32182a1dc9dde06f3030c1451492bf0506d648ea47fbb2cf6f1131c2784fb7c43187245e12dcc9777c99060", 6572, 2, 8},
	{"8a1d65f5acee94def2dac97dd68341960e841d6e1e89e4b9cb8896e73bc7771ddff345902508ae85650c738dc56729fe8ac941b4ff0d9b7a37d960938a3e1376", 223620149, 8, 45},
	{"b8e42b5b599d753691ec6c4e3efff02c057e28aecc329e28750da3b90c485594e6bbfc5a1659c1945ff10b3f2bc37defd355dde659029ce19e37cdb3fce0692e", 911, 0, 1},
	{"beb5e7c545fe002f02fb86ba686d3118ef204622352bb295cc36d353e2be73e89a27d65f6f6d42dee0657be7825c6d28dcb60b5bba805b38aa3f395311496b66", 3585749384, 86, 418},
	{"286a82f3ea9ecd09bc0648a61fcfe128e5948f7a46db156ece55e5845133ec9ade24e54eef94685e5c29b6af89383add9b375d60d3135a9c40ac743896e2de0a", 668, 25, 105},
	{"925459451f1a781c0d1b865aedc10188184927939db988680be5049ae7808156cee728dca80fe2420a9d1267a407dd77944f41f744c09891ccd835095f4c0e01", 440, 0, 1},
	{"d01357d2b9b786c4ec02e507d11e6fcf0c2326834f03bdccfdaff15362585af499de3c26a6768dcd250dbd464b5106697ead0b4cbe049d5852250d6c22d38a4c", 5, 0, 2},
	{"5bf8b11e5930941a1b5c1db417523b8ed085bf9989c05fe1d65f2a97cecd756caea5f13b9941ed384ed81114600558519a1987e1f729bb3fdfbb562fb5b17403", 448150, 1, 5},
	{"0717fca0e8bda63999708389343c75f606687c585caa0719329f7d689fb7312f62e385b50db5839fec459236f739c90442bd752d8253d55b6c921e706f734735", 367533879, 68, 426},
	{"c82db58b94b6aea4eedffdab440e512555b1f55f95124a521a43820224e24edb106dd1b2290c6382960213f585a1f129ebc20ac8bac40d7b41388eca864335ee", 146, 2, 11},
	{"df44b9bb165c476819c0fbc064c953e22aaeb77ce601e667a71d5622a3b02d6f7ebf69411d35684047b4a994d0fd43a7dd900ce0b7b370f03353a496ebca363f", 3697, 4, 42},
	{"76236197218a90e9ac9be6d0dce0f7c49e72eca7fa72d38f83f35d9cb74ed339d552d9f6f5334f6b354765acac3c04d55e32edee7360abcac50d54c2783ecc90", 192, 1, 5},
	{"a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a615b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26", 264, 0, 0},
}

// TestInterruptFreeMeasurementsBitIdenticalToPreISRHead is the
// differential acceptance test for the interrupt feature: measurements
// of interrupt-free programs (zero IRQ schedule) must be bit-identical
// to the measurements the tree produced before interrupts existed.
func TestInterruptFreeMeasurementsBitIdenticalToPreISRHead(t *testing.T) {
	for seed, want := range pristineDigests {
		prog, err := asm.Assemble(proggen.GenerateSeeded(int64(seed), proggen.Config{}))
		if err != nil {
			t.Fatalf("seed %d: assemble: %v", seed, err)
		}
		m, exit, err := attest.Measure(prog, core.Config{}, nil, 3_000_000)
		if err != nil {
			t.Fatalf("seed %d: measure: %v", seed, err)
		}
		if got := hex.EncodeToString(m.Hash[:]); got != want.hash {
			t.Errorf("seed %d: hash A drifted from pre-ISR HEAD\n got %s\nwant %s", seed, got, want.hash)
		}
		if exit != want.exit {
			t.Errorf("seed %d: exit %d, want %d", seed, exit, want.exit)
		}
		if len(m.Loops) != want.loops {
			t.Errorf("seed %d: %d loop records, want %d", seed, len(m.Loops), want.loops)
		}
		if m.Stats.HashedPairs != want.hashed {
			t.Errorf("seed %d: HashedPairs %d, want %d", seed, m.Stats.HashedPairs, want.hashed)
		}
	}
}
