package conform

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"lofat/internal/attest"
)

func seedRange(n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	return seeds
}

// TestConformanceCorpus is the headline conformance run: ≥200 labeled
// scenarios across every delivery path, zero misclassifications, zero
// cross-path disagreements. Short mode still meets the 200-scenario
// floor; the full run quadruples the corpus.
func TestConformanceCorpus(t *testing.T) {
	n := 30 // 30 seeds × (oracle + 7 mutations) ≈ 240 scenarios
	if !testing.Short() {
		n = 120
	}
	sum := New(Config{Seeds: seedRange(n)}).Run()

	t.Logf("conformance: %d scenarios (%d passed, %d skipped, %d failed), %d verdicts, classes=%v",
		sum.Scenarios, sum.Passed, sum.Skipped, sum.Failed, sum.Verdicts, sum.ByClass)

	const floor = 200
	if sum.Scenarios-sum.Skipped < floor {
		t.Errorf("only %d non-skipped scenarios, conformance floor is %d",
			sum.Scenarios-sum.Skipped, floor)
	}
	for _, r := range sum.Failures() {
		for _, f := range r.Failures {
			t.Errorf("seed %d mutation %s: %s", r.Seed, r.Mutation, f)
		}
	}

	// Every attack class of the taxonomy must actually be exercised —
	// a corpus that silently skipped a class proves nothing about it.
	for _, class := range []attest.Classification{
		attest.ClassAccepted, attest.ClassProtocol, attest.ClassSignature,
		attest.ClassLoopCounter, attest.ClassControlFlow, attest.ClassNonControlData,
	} {
		if sum.ByClass[class.String()] == 0 {
			t.Errorf("no scenario exercised classification %q", class)
		}
	}
}

// TestCrossPathAgreement drives every (program, mutation) pair through
// the direct and streamed paths independently and re-asserts that no
// pair produces differing verdicts — the forensic dump names the seed,
// mutation and both verdicts when one does.
func TestCrossPathAgreement(t *testing.T) {
	e := New(Config{Seeds: seedRange(12), Paths: []Path{PathDirect, PathStream}})
	for _, seed := range e.cfg.Seeds {
		for _, r := range e.RunSeed(seed) {
			if r.Skipped || r.Mutation == "oracle" {
				continue
			}
			if len(r.Verdicts) != 2 {
				t.Fatalf("seed %d mutation %s: %d verdicts, want 2", r.Seed, r.Mutation, len(r.Verdicts))
			}
			d, s := r.Verdicts[0], r.Verdicts[1]
			if d.Class != s.Class || d.Accepted != s.Accepted {
				t.Errorf("seed %d mutation %s: direct and streamed verdicts differ\n  direct:  %s accepted=%v findings=%v\n  stream:  %s accepted=%v findings=%v\n  repro: %s",
					r.Seed, r.Mutation, d.Class, d.Accepted, d.Findings,
					s.Class, s.Accepted, s.Findings, r.Recipe())
			}
		}
	}
}

// TestSeedRecipeReproduces re-runs a scenario from nothing but its
// recipe coordinates (seed + mutation) and checks the outcome is
// bit-identical — the property that makes a printed repro recipe
// trustworthy.
func TestSeedRecipeReproduces(t *testing.T) {
	cfg := Config{Seeds: []int64{7}}
	first := New(cfg).Run()
	second := New(Config{Seeds: []int64{7}}).Run()
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatalf("re-running seed 7 from its recipe changed the outcome:\n%v\nvs\n%v",
			first.Results, second.Results)
	}
	// Narrowing to one mutation must reproduce that scenario exactly.
	for _, r := range first.Results {
		if r.Mutation == "oracle" || r.Skipped {
			continue
		}
		repro := New(Config{Seeds: []int64{r.Seed}, Mutations: []string{r.Mutation}}).Run()
		var got *ScenarioResult
		for i := range repro.Results {
			if repro.Results[i].Mutation == r.Mutation {
				got = &repro.Results[i]
			}
		}
		if got == nil {
			t.Fatalf("recipe %q did not re-run its scenario", r.Recipe())
		}
		if !reflect.DeepEqual(*got, r) {
			t.Errorf("recipe %q produced a different outcome:\n%+v\nvs\n%+v", r.Recipe(), *got, r)
		}
	}
}

// TestInjectedFailureIsCaughtAndReproducible plants a deliberate
// misclassification — a mutation whose ground-truth label is wrong —
// and checks the engine reports it with a recipe that reproduces the
// failure.
func TestInjectedFailureIsCaughtAndReproducible(t *testing.T) {
	run := func() ScenarioResult {
		e := New(Config{Seeds: []int64{3}, Paths: []Path{PathDirect, PathStream}})
		sub, err := buildSubject(3, &e.cfg)
		if err != nil {
			t.Fatal(err)
		}
		mut, skip := buildSigForgery(sub, mutationRand(3, "sig-forgery"))
		if mut == nil {
			t.Fatalf("seed 3 cannot express sig-forgery: %s", skip)
		}
		mut.Expect = attest.ClassAccepted // sabotage the label
		res := ScenarioResult{Seed: 3, Mutation: mut.Name, Expect: mut.Expect.String()}
		res.Verdicts = append(res.Verdicts, runDirect(sub, mut), runStream(sub, mut))
		res.Failures = checkScenario(&res, mut)
		return res
	}
	first := run()
	if len(first.Failures) == 0 {
		t.Fatal("sabotaged label was not flagged as a conformance failure")
	}
	for _, f := range first.Failures {
		if !strings.Contains(f, "repro: lofat-conform -seeds 3 -mutations sig-forgery") {
			t.Errorf("failure lacks the repro recipe: %s", f)
		}
	}
	if second := run(); !reflect.DeepEqual(first, second) {
		t.Errorf("injected failure did not reproduce identically:\n%+v\nvs\n%+v", first, second)
	}
}

// TestSummaryJSONRoundTrips keeps the -json CLI surface stable enough
// to parse.
func TestSummaryJSONRoundTrips(t *testing.T) {
	sum := New(Config{Seeds: []int64{1}, Paths: []Path{PathDirect}}).Run()
	b, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scenarios != sum.Scenarios || back.Passed != sum.Passed {
		t.Errorf("JSON round trip changed counts: %+v vs %+v", back, sum)
	}
}
