package conform

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// soakBase is a deliberately small per-window configuration so soak
// tests measure the soak machinery, not the corpus.
func soakBase() Config {
	return Config{
		Paths:     []Path{PathDirect},
		Mutations: []string{"honest", "cfg-splice"},
		ISR:       true,
	}
}

// TestSoakRollingWindowAndResume: two consecutive soaks over one state
// file must walk disjoint, adjacent seed windows — the whole point of
// the rolling state is that nightly runs never re-prove old seeds.
func TestSoakRollingWindowAndResume(t *testing.T) {
	state := filepath.Join(t.TempDir(), "soak.json")
	cfg := SoakConfig{
		Budget:    time.Nanosecond, // one window, then stop at the boundary
		Window:    3,
		StateFile: state,
		Base:      soakBase(),
	}
	first, err := Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.FirstSeed != 0 || first.NextSeed != 3 || first.Windows != 1 {
		t.Fatalf("first soak covered [%d,%d) in %d windows, want [0,3) in 1",
			first.FirstSeed, first.NextSeed, first.Windows)
	}
	if first.Failed != 0 || len(first.Failures) != 0 {
		t.Fatalf("soak window failed: %+v", first.Failures)
	}
	if first.Scenarios == 0 || first.Verdicts == 0 {
		t.Fatal("soak window ran no scenarios")
	}

	second, err := Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.FirstSeed != 3 || second.NextSeed != 6 {
		t.Fatalf("second soak covered [%d,%d), want the adjacent window [3,6)",
			second.FirstSeed, second.NextSeed)
	}

	var st SoakState
	data, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("state file is not valid JSON: %v", err)
	}
	if st.NextSeed != 6 || st.Windows != 2 {
		t.Fatalf("persisted state %+v, want next_seed 6 after 2 windows", st)
	}
	if st.Scenarios == 0 || st.UpdatedAt == "" {
		t.Fatalf("persisted state lacks run metadata: %+v", st)
	}
}

// TestSoakBudgetRunsMultipleWindows: a budget that outlasts the first
// window keeps rolling; the fake clock charges 40ms per call, so a
// 100ms budget spans several windows without real sleeping.
func TestSoakBudgetRunsMultipleWindows(t *testing.T) {
	var tick time.Duration
	clock := func() time.Time {
		tick += 40 * time.Millisecond
		return time.Unix(0, int64(tick))
	}
	var lines []string
	sum, err := Soak(SoakConfig{
		Budget: 300 * time.Millisecond,
		Window: 2,
		Base:   soakBase(),
		Log:    func(format string, args ...any) { lines = append(lines, format) },
		now:    clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Windows < 2 {
		t.Fatalf("budget admitted only %d windows", sum.Windows)
	}
	if sum.NextSeed != int64(2*sum.Windows) {
		t.Fatalf("NextSeed %d after %d windows of 2", sum.NextSeed, sum.Windows)
	}
	if len(lines) != sum.Windows {
		t.Fatalf("%d log lines for %d windows", len(lines), sum.Windows)
	}
}

// TestSoakStateFileHygiene: a corrupt state file must be a hard error
// (silently restarting at seed 0 would fake forward progress), and a
// rejected budget must not touch the state.
func TestSoakStateFileHygiene(t *testing.T) {
	state := filepath.Join(t.TempDir(), "soak.json")
	if err := os.WriteFile(state, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Soak(SoakConfig{Budget: time.Nanosecond, Window: 1, StateFile: state, Base: soakBase()})
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt state file not rejected: %v", err)
	}

	if _, err := Soak(SoakConfig{Window: 1, Base: soakBase()}); err == nil {
		t.Fatal("zero budget accepted")
	}
}
