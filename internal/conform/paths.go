package conform

import (
	"fmt"
	"io"
	"net"
	"time"

	"lofat/internal/attest"
	"lofat/internal/fleet"
	"lofat/internal/fleet/faultconn"
)

func verdictFrom(path string, res attest.Result) Verdict {
	return Verdict{
		Path:     path,
		Class:    res.Class.String(),
		Accepted: res.Accepted,
		Findings: res.Findings,
	}
}

func errorVerdict(path string, err error) Verdict {
	return Verdict{Path: path, Class: "path-error", Findings: []string{err.Error()}}
}

// runDirect presents the mutant report to the in-process verifier —
// the classic Figure 2 exchange without a transport.
func runDirect(sub *subject, mut *Mutation) Verdict {
	ch, err := sub.av.NewChallenge(nil)
	if err != nil {
		return errorVerdict(string(PathDirect), err)
	}
	rep := newMutantDevice(sub, mut).report(ch.Nonce)
	return verdictFrom(string(PathDirect), sub.av.Verify(ch, rep))
}

// runStream feeds the mutant segment stream through an incremental
// session, stopping at the first terminal verdict exactly as the
// transport layer would.
func runStream(sub *subject, mut *Mutation) Verdict {
	s, open, err := sub.sv.Open(nil)
	if err != nil {
		return errorVerdict(string(PathStream), err)
	}
	ms := newMutantDevice(sub, mut).streamSession(open.Nonce, int(open.SegmentEvents))
	for sr := ms.nextReport(); sr != nil; sr = ms.nextReport() {
		if res := s.Consume(sr); res != nil {
			return verdictFrom(string(PathStream), res.Result)
		}
	}
	return verdictFrom(string(PathStream), s.Close(ms.closeReport()).Result)
}

// runFleet verifies every mutant of the seed through an internal/fleet
// service over in-memory pipes: one device per mutation, one direct
// sweep, then — after releasing the sweep's quarantines so every
// device is challenged again — one streamed sweep. Each sweep
// contributes a per-mutation verdict read back from the registry.
func runFleet(sub *subject, muts []*Mutation) (map[string][]Verdict, error) {
	devices := make(map[string]*mutantDevice, len(muts))
	addrOf := func(m *Mutation) string { return "mem://" + m.Name }
	for _, mut := range muts {
		devices[addrOf(mut)] = newMutantDevice(sub, mut)
	}
	dial := func(addr string) (io.ReadWriteCloser, error) {
		d, ok := devices[addr]
		if !ok {
			return nil, fmt.Errorf("conform: no mutant device at %q", addr)
		}
		client, server := net.Pipe()
		go func() {
			defer server.Close()
			_ = d.serveConn(server)
		}()
		if sub.cfg.FleetLatency > 0 {
			return faultconn.New(client, faultconn.Plan{
				Latency: time.Duration(sub.cfg.FleetLatency) * time.Microsecond,
			}), nil
		}
		return client, nil
	}

	svc := fleet.NewService(fleet.Config{
		Workers:             2,
		Dial:                dial,
		BreakerThreshold:    -1, // protocol-class mutants must be re-challenged, not tripped
		StreamSegmentEvents: sub.cfg.SegmentEvents,
		MaxInstructions:     sub.cfg.MaxInstructions,
	})
	defer svc.Close()

	progID, err := svc.RegisterProgram(sub.prog, sub.dev, [][]uint32{{}})
	if err != nil {
		return nil, fmt.Errorf("register: %w", err)
	}
	for _, mut := range muts {
		if err := svc.Enroll(fleet.DeviceID(mut.Name), progID, sub.keys.Public(), addrOf(mut)); err != nil {
			return nil, fmt.Errorf("enroll %s: %w", mut.Name, err)
		}
	}

	out := make(map[string][]Verdict, len(muts))
	collect := func(path string, wantRounds uint64) error {
		for _, mut := range muts {
			st, ok := svc.Device(fleet.DeviceID(mut.Name))
			if !ok {
				return fmt.Errorf("device %s vanished", mut.Name)
			}
			if st.Rounds != wantRounds {
				out[mut.Name] = append(out[mut.Name], errorVerdict(path, fmt.Errorf(
					"device %s completed %d rounds, want %d (last error: %s)",
					mut.Name, st.Rounds, wantRounds, st.LastError)))
				continue
			}
			out[mut.Name] = append(out[mut.Name], Verdict{
				Path:     path,
				Class:    st.LastClass.String(),
				Accepted: st.LastClass == attest.ClassAccepted,
				Findings: st.LastFindings,
			})
		}
		return nil
	}

	if _, err := svc.SweepProgram(progID, nil); err != nil {
		return nil, fmt.Errorf("direct sweep: %w", err)
	}
	if err := collect("fleet-direct", 1); err != nil {
		return nil, err
	}
	// The direct sweep quarantines authenticated rejects; release them
	// so the streamed sweep challenges every device again.
	for _, id := range svc.Quarantined() {
		svc.Release(id)
	}
	if _, err := svc.SweepProgramStreamed(progID, nil); err != nil {
		return nil, fmt.Errorf("streamed sweep: %w", err)
	}
	if err := collect("fleet-stream", 2); err != nil {
		return nil, err
	}
	return out, nil
}
