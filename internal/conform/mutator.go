package conform

import (
	"fmt"
	mrand "math/rand"

	"lofat/internal/attest"
	"lofat/internal/cfg"
	"lofat/internal/hashengine"
	"lofat/internal/monitor"
	"lofat/internal/stream"
)

// Mutation is one mechanically-derived labeled attack: the artifacts a
// dishonest prover will present on every delivery path, plus the
// ground-truth verdict the verifier must reach. The label is fixed by
// CONSTRUCTION — each builder gates its candidates against the static
// CFG oracle (cfg.ValidEdge / cfg.ValidateRecord / loop membership),
// which restates the paper's Figure 1 class definitions without asking
// the classifier under test:
//
//   - class 2 (loop counter): identical path structure, identical
//     hash, different iteration counts; at trace level, an extra (or
//     missing) decision whose two arms differ in loop membership;
//   - class 3 (control flow): loop metadata no CFG walk realizes; at
//     trace level, an edge cfg.ValidEdge rejects;
//   - class 1 (non-control data): everything CFG-consistent but not
//     the expected execution for the input; at trace level, a flipped
//     decision whose arms agree on every loop's membership;
//   - protocol layer: wrong program identity (code injection caught by
//     static-attestation binding), wrong nonce (replay), bad
//     signature (forgery).
type Mutation struct {
	// Name identifies the mutation kind in recipes and reports.
	Name string
	// Class is the Figure 1 attack class (1-3), 0 for the honest
	// baseline, -1 for protocol-layer mutations.
	Class int
	// Expect is the ground-truth classification.
	Expect attest.Classification
	// FindingAny requires at least one verifier finding to contain one
	// of these substrings (empty: no requirement).
	FindingAny []string

	// The presented artifacts: claimed program identity, end-of-run
	// measurement (hash A, loop metadata L), exit code, and the
	// control-flow edge stream the streamed protocol reports.
	program attest.ProgramID
	hash    [hashengine.DigestSize]byte
	loops   []monitor.LoopRecord
	edges   []hashengine.Pair
	exit    uint32

	// tamperNonce corrupts the echoed nonce; tamperSig corrupts the
	// report signature and the first segment signature.
	tamperNonce bool
	tamperSig   bool
}

// builderSpec pairs a mutation name with its constructor. A builder
// returns (nil, reason) when the generated program cannot express the
// attack (e.g. a loop mutation on a loop-free program).
type builderSpec struct {
	name  string
	build func(*subject, *mrand.Rand) (*Mutation, string)
}

// MutationNames lists every mutation kind the engine knows, in report
// order — the valid values for Config.Mutations (and the CLI's
// -mutations flag).
func MutationNames() []string {
	specs := builders()
	names := make([]string, len(specs))
	for i, b := range specs {
		names[i] = b.name
	}
	return names
}

// builders lists every mutation kind in report order.
func builders() []builderSpec {
	return []builderSpec{
		{"honest", buildHonest},
		{"code-injection", buildCodeInjection},
		{"nonce-replay", buildNonceReplay},
		{"sig-forgery", buildSigForgery},
		{"loop-count", buildLoopCount},
		{"path-subst", buildPathSubst},
		{"cfg-splice", buildCFGSplice},
		{"isr-hijack", buildISRHijack},
		{"interrupt-storm", buildInterruptStorm},
	}
}

// base copies the honest artifacts; builders then tamper with them.
func base(sub *subject, name string) *Mutation {
	return &Mutation{
		Name:    name,
		program: sub.id,
		hash:    sub.honest.Hash,
		loops:   sub.honest.Loops,
		edges:   sub.edges,
		exit:    sub.exit,
	}
}

// buildHonest is the acceptance baseline: unmodified artifacts.
func buildHonest(sub *subject, _ *mrand.Rand) (*Mutation, string) {
	m := base(sub, "honest")
	m.Class = 0
	m.Expect = attest.ClassAccepted
	return m, ""
}

// buildCodeInjection models a tampered binary: one flipped bit in the
// text image. The device reports the identity of what it actually
// runs, so the program-identity binding — the paper's static
// attestation prerequisite — rejects at the protocol layer before any
// measurement is inspected.
func buildCodeInjection(sub *subject, r *mrand.Rand) (*Mutation, string) {
	text := append([]byte(nil), sub.prog.Text...)
	text[r.Intn(len(text))] ^= 1 << uint(r.Intn(8))
	id := attest.ComputeProgramID(text)
	if id == sub.id {
		return nil, "bit flip did not change the program identity"
	}
	m := base(sub, "code-injection")
	m.Class = -1
	m.Expect = attest.ClassProtocol
	m.FindingAny = []string{"program"}
	m.program = id
	return m, ""
}

// buildNonceReplay echoes a corrupted nonce in every message — the
// stale-response replay the freshness challenge exists to stop.
func buildNonceReplay(sub *subject, _ *mrand.Rand) (*Mutation, string) {
	m := base(sub, "nonce-replay")
	m.Class = -1
	m.Expect = attest.ClassProtocol
	m.FindingAny = []string{"nonce"}
	m.tamperNonce = true
	return m, ""
}

// buildSigForgery corrupts the signatures: a forged or in-flight
// tampered report must be rejected as such, not as a measurement
// mismatch.
func buildSigForgery(sub *subject, _ *mrand.Rand) (*Mutation, string) {
	m := base(sub, "sig-forgery")
	m.Class = -1
	m.Expect = attest.ClassSignature
	m.FindingAny = []string{"signature"}
	m.tamperSig = true
	return m, ""
}

// buildLoopCount is Figure 1 class 2 — loop counter corruption. The
// report keeps the honest hash and path structure but inflates one
// path's iteration count (what corrupting a memory-held trip counter
// produces: same paths, more iterations, hash unchanged because
// repeated paths are deduplicated). The edge stream takes one extra
// stay-in-loop decision at a site where the golden run left (or
// stayed in) a loop: the two arms differ in static loop membership,
// which is the trace-level definition of an iteration-count change.
func buildLoopCount(sub *subject, r *mrand.Rand) (*Mutation, string) {
	// Direct-path artifact: bump a recorded path count.
	type pathRef struct{ rec, path int }
	var refs []pathRef
	for i, rec := range sub.honest.Loops {
		for j := range rec.Paths {
			refs = append(refs, pathRef{i, j})
		}
	}
	if len(refs) == 0 {
		return nil, "honest run recorded no loop paths"
	}

	// Stream-path artifact: a decision site whose flip crosses a loop
	// boundary.
	var sites []flipSite
	for k, e := range sub.edges {
		other, ok := otherArm(sub.graph, e)
		if !ok {
			continue
		}
		if loopMembershipDiffers(sub.graph, e.Src, other, e.Dest) {
			sites = append(sites, flipSite{k: k, dest: other})
		}
	}
	if len(sites) == 0 {
		return nil, "no loop-boundary decision in the edge stream"
	}

	m := base(sub, "loop-count")
	m.Class = 2
	m.Expect = attest.ClassLoopCounter
	m.FindingAny = []string{"iteration", "loop counter"}

	ref := refs[r.Intn(len(refs))]
	delta := uint64(1 + r.Intn(4))
	loops := copyLoops(sub.honest.Loops)
	loops[ref.rec].Paths[ref.path].Count += delta
	loops[ref.rec].Iterations += delta // keep the record internally consistent
	m.loops = loops

	site := sites[r.Intn(len(sites))]
	m.edges = insertEdge(sub.edges, site.k, hashengine.Pair{Src: sub.edges[site.k].Src, Dest: site.dest})
	return m, ""
}

// buildPathSubst is Figure 1 class 1 — a permissible-but-unintended
// path. The loop metadata swaps the first-occurrence order of two
// recorded paths (or flips a path-code bit), gated so every resulting
// walk stays CFG-consistent; the edge stream flips one forward
// decision whose arms agree on every loop's membership. Nothing the
// prover reports is statically impossible — it is just not the
// execution of S under input i.
func buildPathSubst(sub *subject, r *mrand.Rand) (*Mutation, string) {
	var sites []flipSite
	for k, e := range sub.edges {
		other, ok := otherArm(sub.graph, e)
		if !ok || other <= e.Src || e.Dest <= e.Src {
			// Backward arms are loop decisions; class 1 must not look
			// like one.
			continue
		}
		if !loopMembershipDiffers(sub.graph, e.Src, other, e.Dest) {
			sites = append(sites, flipSite{k: k, dest: other})
		}
	}
	if len(sites) == 0 {
		return nil, "no loop-neutral decision in the edge stream"
	}

	m := base(sub, "path-subst")
	m.Class = 1
	m.Expect = attest.ClassNonControlData
	m.FindingAny = []string{"differs from expected execution", "not the expected path"}
	if loops, ok := substituteValidLoops(sub, r); ok {
		// A flip inside a loop: the unintended path shows up in the
		// loop metadata L while the deduplicated hash A is unchanged.
		m.loops = loops
	} else {
		// A flip outside every loop: L carries no evidence, only the
		// cumulative hash A differs — still CFG-consistent, still
		// class 1. Any changed hash expresses it; flip one bit.
		m.hash[0] ^= 0x01
	}
	site := sites[r.Intn(len(sites))]
	m.edges = replaceEdge(sub.edges, site.k, hashengine.Pair{Src: sub.edges[site.k].Src, Dest: site.dest})
	return m, ""
}

// substituteValidLoops derives loop metadata that differs from the
// honest record yet passes every CFG walk. Preferred construction:
// swap two distinct recorded paths of one loop (reordering the
// first-occurrence list). Fallback: flip one path-code bit, keeping
// only candidates whose record re-validates without a PathInvalid.
func substituteValidLoops(sub *subject, r *mrand.Rand) ([]monitor.LoopRecord, bool) {
	bits := sub.indirectBits()
	var candidates [][]monitor.LoopRecord
	for i, rec := range sub.honest.Loops {
		if len(rec.Paths) >= 2 {
			loops := copyLoops(sub.honest.Loops)
			p := loops[i].Paths
			p[0], p[1] = p[1], p[0]
			if !recordInvalid(sub.graph, loops[i], bits) {
				candidates = append(candidates, loops)
			}
		}
		for j, ps := range rec.Paths {
			for b := 0; b < int(ps.Code.Len); b++ {
				loops := copyLoops(sub.honest.Loops)
				loops[i].Paths[j].Code.Bits ^= 1 << uint(b)
				if duplicateCode(loops[i].Paths, j) {
					continue
				}
				if !recordInvalid(sub.graph, loops[i], bits) {
					candidates = append(candidates, loops)
				}
			}
		}
	}
	if len(candidates) == 0 {
		return nil, false
	}
	return candidates[r.Intn(len(candidates))], true
}

// buildCFGSplice is Figure 1 class 3 — a control-flow attack. The edge
// stream splices in an edge cfg.ValidEdge rejects (the trace-level
// signature of a hijacked code pointer); the loop metadata is
// corrupted until cfg.ValidateRecord proves no CFG walk realizes it.
func buildCFGSplice(sub *subject, r *mrand.Rand) (*Mutation, string) {
	if len(sub.edges) == 0 {
		return nil, "edge stream is empty"
	}
	loops, ok := corruptLoopsInvalid(sub, r)
	if !ok {
		return nil, "honest run recorded no loop metadata to corrupt"
	}

	m := base(sub, "cfg-splice")
	m.Class = 3
	m.Expect = attest.ClassControlFlow
	m.FindingAny = []string{"CFG violation", "not CFG-consistent"}
	m.loops = loops

	k := r.Intn(len(sub.edges))
	src, honest := sub.edges[k].Src, sub.edges[k].Dest
	for _, bad := range []uint32{0xfffffff0, src + 8, sub.graph.Limit + 64, src ^ 0x44} {
		if bad != honest && !sub.graph.ValidEdge(src, bad) {
			m.edges = replaceEdge(sub.edges, k, hashengine.Pair{Src: src, Dest: bad})
			return m, ""
		}
	}
	return nil, "no CFG-invalid splice target found" // unreachable in practice
}

// buildISRHijack is the ISR analogue of Figure 1 class 3 — a hijacked
// interrupt vector. The edge stream redirects one honest dispatch edge
// away from the configured vector to a forged handler address; the
// oracle guarantees the label because EnableISR validates a dispatch
// edge ONLY into the vector (cfg.ValidEdge rejects every candidate by
// construction). The loop metadata is corrupted the same way as
// cfg-splice so the direct path — which never sees individual edges —
// has class-3 evidence too.
func buildISRHijack(sub *subject, r *mrand.Rand) (*Mutation, string) {
	vector := sub.dev.IRQ.Vector
	if vector == 0 {
		return nil, "interrupt line disabled (non-ISR corpus)"
	}
	var entries []int
	for k, e := range sub.edges {
		if e.Dest == vector {
			entries = append(entries, k)
		}
	}
	if len(entries) == 0 {
		return nil, "honest schedule never dispatched an interrupt"
	}
	loops, ok := corruptLoopsInvalid(sub, r)
	if !ok {
		return nil, "honest run recorded no loop metadata to corrupt"
	}

	m := base(sub, "isr-hijack")
	m.Class = 3
	m.Expect = attest.ClassControlFlow
	m.FindingAny = []string{"CFG violation", "not CFG-consistent"}
	m.loops = loops

	k := entries[r.Intn(len(entries))]
	src := sub.edges[k].Src
	for _, bad := range []uint32{vector + 8, src + 8, sub.graph.Limit + 64, vector ^ 0x30} {
		if bad != vector && bad != sub.edges[k].Dest && !sub.graph.ValidEdge(src, bad) {
			m.edges = replaceEdge(sub.edges, k, hashengine.Pair{Src: src, Dest: bad})
			return m, ""
		}
	}
	return nil, "no CFG-invalid hijack target found" // unreachable in practice
}

// buildInterruptStorm is attestation under trace pressure: the device
// re-measures the SAME program under a much denser interrupt schedule
// than the attested one — the extra dispatch edges saturate the trace
// path and hash-engine FIFO (absorbed by back-pressure, never
// dropped). Everything reported is a real, CFG-consistent execution;
// it is just not the execution the verifier's golden schedule
// prescribes — Figure 1 class 1, labeled by the oracle (the
// measurement genuinely differs), never by the classifier under test.
func buildInterruptStorm(sub *subject, r *mrand.Rand) (*Mutation, string) {
	if sub.dev.IRQ.Vector == 0 {
		return nil, "interrupt line disabled (non-ISR corpus)"
	}
	storm := sub.dev
	// 4–8× denser than attested, floored above the handler's own cycle
	// cost so the main program still makes progress (no livelock), and
	// phase-advanced so even a run too short for a second dispatch
	// diverges at its first.
	storm.IRQ.Period = max(48, sub.dev.IRQ.Period/uint64(4+r.Intn(5)))
	storm.IRQ.Phase = max(1, sub.dev.IRQ.Phase/2)
	meas, exit, err := stream.MeasureStream(sub.prog, storm, nil, sub.cfg.SegmentEvents, sub.cfg.MaxInstructions)
	if err != nil {
		return nil, fmt.Sprintf("storm run did not complete: %v", err)
	}
	if meas.Hash == sub.honest.Hash {
		return nil, "storm schedule measured identically to the attested one"
	}
	if meas.Stats.Engine.Dropped != 0 {
		// The back-pressure contract broke; that is an oracle failure,
		// not a labeled scenario — surface it loudly.
		return nil, fmt.Sprintf("storm run dropped %d pairs despite FIFO back-pressure", meas.Stats.Engine.Dropped)
	}

	m := base(sub, "interrupt-storm")
	m.Class = 1
	m.Expect = attest.ClassNonControlData
	m.FindingAny = []string{"differs from expected execution", "not the expected"}
	m.hash = meas.Hash
	m.loops = meas.Loops
	m.edges = stream.FlattenSegments(meas.Segments)
	m.exit = exit
	return m, ""
}

// corruptLoopsInvalid derives loop metadata that cfg.ValidateRecord
// provably rejects: a flipped path-code bit whose walk derails, or —
// when no bit flip lands on an invalid walk — a loop identity shifted
// off the static loop table.
func corruptLoopsInvalid(sub *subject, r *mrand.Rand) ([]monitor.LoopRecord, bool) {
	if len(sub.honest.Loops) == 0 {
		return nil, false
	}
	bits := sub.indirectBits()
	var candidates [][]monitor.LoopRecord
	for i, rec := range sub.honest.Loops {
		for j, ps := range rec.Paths {
			for b := 0; b < int(ps.Code.Len); b++ {
				loops := copyLoops(sub.honest.Loops)
				loops[i].Paths[j].Code.Bits ^= 1 << uint(b)
				if duplicateCode(loops[i].Paths, j) {
					continue
				}
				if recordInvalid(sub.graph, loops[i], bits) {
					candidates = append(candidates, loops)
				}
			}
		}
	}
	if len(candidates) > 0 {
		return candidates[r.Intn(len(candidates))], true
	}
	// Fallback: report a loop the static analysis never enumerated.
	i := r.Intn(len(sub.honest.Loops))
	loops := copyLoops(sub.honest.Loops)
	for shift := uint32(4); shift < 64; shift += 4 {
		entry := loops[i].Entry + shift
		if _, exists := sub.graph.LoopWithEntry(entry, loops[i].Exit); !exists {
			loops[i].Entry = entry
			return loops, true
		}
	}
	return nil, false
}

// flipSite is a candidate decision flip in the edge stream.
type flipSite struct {
	k    int
	dest uint32
}

// otherArm returns the successor of the conditional branch at e.Src
// that the honest edge did NOT take.
func otherArm(g *cfg.Graph, e hashengine.Pair) (uint32, bool) {
	taken, fallthru, ok := g.BranchArms(e.Src)
	if !ok || taken == fallthru {
		return 0, false
	}
	switch e.Dest {
	case taken:
		return fallthru, true
	case fallthru:
		return taken, true
	}
	return 0, false
}

// loopMembershipDiffers reports whether some static loop contains the
// decision site and exactly one of the two destinations — the flip
// then changes how often that loop iterates.
func loopMembershipDiffers(g *cfg.Graph, src, a, b uint32) bool {
	for _, l := range g.Loops() {
		if l.Contains(src) && l.Contains(a) != l.Contains(b) {
			return true
		}
	}
	return false
}

func recordInvalid(g *cfg.Graph, rec monitor.LoopRecord, indirectBits int) bool {
	for _, wr := range g.ValidateRecord(rec, indirectBits) {
		if wr.Verdict == cfg.PathInvalid {
			return true
		}
	}
	return false
}

// duplicateCode reports whether path j's code collides with another
// recorded path of the same loop (the monitor never records the same
// path ID twice, so a collision would be trivially implausible).
func duplicateCode(paths []monitor.PathStat, j int) bool {
	for i := range paths {
		if i != j && paths[i].Code == paths[j].Code {
			return true
		}
	}
	return false
}

func copyLoops(in []monitor.LoopRecord) []monitor.LoopRecord {
	out := make([]monitor.LoopRecord, len(in))
	for i, r := range in {
		r.Paths = append([]monitor.PathStat(nil), r.Paths...)
		r.IndirectTargets = append([]uint32(nil), r.IndirectTargets...)
		out[i] = r
	}
	return out
}

func insertEdge(edges []hashengine.Pair, k int, e hashengine.Pair) []hashengine.Pair {
	out := make([]hashengine.Pair, 0, len(edges)+1)
	out = append(out, edges[:k]...)
	out = append(out, e)
	out = append(out, edges[k:]...)
	return out
}

func replaceEdge(edges []hashengine.Pair, k int, e hashengine.Pair) []hashengine.Pair {
	out := append([]hashengine.Pair(nil), edges...)
	out[k] = e
	return out
}
