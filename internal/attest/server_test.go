package attest_test

import (
	"crypto/rand"
	"fmt"
	"net"
	"sync"
	"testing"

	. "lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/sig"
	"lofat/internal/workloads"
)

// multiRig registers several workloads on one device registry and
// returns per-workload verifiers sharing the device key.
func multiRig(t *testing.T, names ...string) (*Registry, map[string]*Verifier, map[string]workloads.Workload) {
	t.Helper()
	keys, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	verifiers := make(map[string]*Verifier)
	ws := make(map[string]workloads.Workload)
	for _, name := range names {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %s", name)
		}
		prog, err := w.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		reg.Register(NewProver(prog, core.Config{}, keys))
		v, err := NewVerifier(prog, core.Config{}, keys.Public(), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		verifiers[name] = v
		ws[name] = w
	}
	return reg, verifiers, ws
}

func TestRegistryRouting(t *testing.T) {
	reg, verifiers, ws := multiRig(t, "syringe-pump", "dispatch", "crc32")
	if reg.Len() != 3 {
		t.Fatalf("registry len = %d", reg.Len())
	}

	srv := NewServer(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// One persistent connection, multiple programs over it.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	for _, name := range []string{"dispatch", "syringe-pump", "crc32", "dispatch"} {
		res, err := RequestFrom(conn, verifiers[name], ws[name].Input)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Accepted {
			t.Errorf("%s rejected: %v %v", name, res, res.Findings)
		}
	}
}

func TestRegistryUnknownProgram(t *testing.T) {
	reg, _, _ := multiRig(t, "syringe-pump")
	srv := NewServer(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A verifier for a program the device does not run.
	w := workloads.BubbleSort()
	prog, _ := w.Assemble()
	keys, _ := sig.GenerateKeyStore(rand.Reader)
	v, err := NewVerifier(prog, core.Config{}, keys.Public(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := RequestFrom(conn, v, w.Input); err == nil {
		t.Error("unknown program request succeeded")
	}
}

func TestServerConcurrentClients(t *testing.T) {
	reg, verifiers, ws := multiRig(t, "syringe-pump", "dispatch")
	srv := NewServer(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Verifiers are safe for concurrent use, so goroutines may share
	// the per-program verifier.
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		name := "syringe-pump"
		if i%2 == 1 {
			name = "dispatch"
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			res, err := RequestFrom(conn, verifiers[name], ws[name].Input)
			if err != nil {
				errs <- err
				return
			}
			if !res.Accepted {
				errs <- fmt.Errorf("%s rejected: %v", name, res)
			}
		}(name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
