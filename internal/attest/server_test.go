package attest_test

import (
	"crypto/rand"
	"fmt"
	"net"
	"sync"
	"testing"

	. "lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/sig"
	"lofat/internal/workloads"
)

// multiRig registers several workloads on one device registry and
// returns per-workload verifiers sharing the device key.
func multiRig(t *testing.T, names ...string) (*Registry, map[string]*Verifier, map[string]workloads.Workload) {
	t.Helper()
	keys, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	verifiers := make(map[string]*Verifier)
	ws := make(map[string]workloads.Workload)
	for _, name := range names {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %s", name)
		}
		prog, err := w.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		reg.Register(NewProver(prog, core.Config{}, keys))
		v, err := NewVerifier(prog, core.Config{}, keys.Public(), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		verifiers[name] = v
		ws[name] = w
	}
	return reg, verifiers, ws
}

func TestRegistryRouting(t *testing.T) {
	reg, verifiers, ws := multiRig(t, "syringe-pump", "dispatch", "crc32")
	if reg.Len() != 3 {
		t.Fatalf("registry len = %d", reg.Len())
	}

	srv := NewServer(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// One persistent connection, multiple programs over it.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	for _, name := range []string{"dispatch", "syringe-pump", "crc32", "dispatch"} {
		res, err := RequestFrom(conn, verifiers[name], ws[name].Input)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Accepted {
			t.Errorf("%s rejected: %v %v", name, res, res.Findings)
		}
	}
}

func TestRegistryUnknownProgram(t *testing.T) {
	reg, _, _ := multiRig(t, "syringe-pump")
	srv := NewServer(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A verifier for a program the device does not run.
	w := workloads.BubbleSort()
	prog, _ := w.Assemble()
	keys, _ := sig.GenerateKeyStore(rand.Reader)
	v, err := NewVerifier(prog, core.Config{}, keys.Public(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := RequestFrom(conn, v, w.Input); err == nil {
		t.Error("unknown program request succeeded")
	}
}

func TestListenTwice(t *testing.T) {
	reg, _, _ := multiRig(t, "syringe-pump")
	srv := NewServer(reg)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("second Listen on a live server succeeded")
	}
}

func TestFailedExchangeRetiresNonce(t *testing.T) {
	_, verifiers, ws := multiRig(t, "syringe-pump")
	v := verifiers["syringe-pump"]

	// The peer hangs up before answering: every exchange fails after
	// the challenge nonce was drawn, and each failure must retire it.
	for i := 0; i < 3; i++ {
		client, server := net.Pipe()
		server.Close()
		if _, err := RequestFrom(client, v, ws["syringe-pump"].Input); err == nil {
			t.Fatal("exchange with hung-up prover succeeded")
		}
		client.Close()
	}
	if n := v.PendingChallenges(); n != 0 {
		t.Fatalf("failed exchanges leaked %d nonces", n)
	}
}

func TestVerifyRetiresNonceOnProtocolReject(t *testing.T) {
	reg, verifiers, ws := multiRig(t, "syringe-pump")
	v := verifiers["syringe-pump"]
	p, ok := reg.Lookup(v.ProgramID())
	if !ok {
		t.Fatal("prover missing")
	}
	ch, err := v.NewChallenge(ws["syringe-pump"].Input)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Attest(ch)
	if err != nil {
		t.Fatal(err)
	}
	// A tampered nonce echo is rejected before the signature check —
	// but the issued nonce must still be retired.
	rep.Nonce[0] ^= 1
	res := v.Verify(ch, rep)
	if res.Accepted || res.Class != ClassProtocol {
		t.Fatalf("tampered report: %v", res)
	}
	if n := v.PendingChallenges(); n != 0 {
		t.Fatalf("protocol reject leaked %d nonces", n)
	}
}

func TestListenAfterClose(t *testing.T) {
	reg, _, _ := multiRig(t, "syringe-pump")
	srv := NewServer(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err != ErrServerClosed {
		t.Fatalf("Listen after Close = %v, want ErrServerClosed", err)
	}
	// The old address must not have been rebound.
	if conn, err := net.Dial("tcp", addr.String()); err == nil {
		conn.Close()
		t.Fatal("closed server still accepting connections")
	}
}

// TestRegistryServeConnConcurrent exchanges challenges over many
// simultaneous connections against one registry (run under -race: the
// registry, provers and shared verifiers must all be concurrency-safe).
func TestRegistryServeConnConcurrent(t *testing.T) {
	reg, verifiers, ws := multiRig(t, "syringe-pump", "dispatch", "crc32")
	names := []string{"syringe-pump", "dispatch", "crc32"}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 24; i++ {
		name := names[i%len(names)]
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			client, server := net.Pipe()
			defer client.Close()
			go func() {
				defer server.Close()
				_ = reg.ServeConn(server)
			}()
			// Several rounds per connection: connections are reusable.
			for r := 0; r < 3; r++ {
				res, err := RequestFrom(client, verifiers[name], ws[name].Input)
				if err != nil {
					errs <- fmt.Errorf("%s round %d: %w", name, r, err)
					return
				}
				if !res.Accepted {
					errs <- fmt.Errorf("%s round %d rejected: %v", name, r, res)
					return
				}
			}
		}(name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	reg, verifiers, ws := multiRig(t, "syringe-pump", "dispatch")
	srv := NewServer(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Verifiers are safe for concurrent use, so goroutines may share
	// the per-program verifier.
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		name := "syringe-pump"
		if i%2 == 1 {
			name = "dispatch"
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			res, err := RequestFrom(conn, verifiers[name], ws[name].Input)
			if err != nil {
				errs <- err
				return
			}
			if !res.Accepted {
				errs <- fmt.Errorf("%s rejected: %v", name, res)
			}
		}(name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
