package attest

import (
	"fmt"

	"lofat/internal/asm"
	"lofat/internal/core"
	"lofat/internal/cpu"
	"lofat/internal/sig"
)

// Adversary is an optional attack hook run before every instruction. It
// models the paper's software adversary with "full control over the data
// memory": implementations corrupt rw memory through Machine.Mem.Poke
// (code and LO-FAT state are out of its reach by construction). A
// non-nil error aborts the run.
type Adversary func(m *cpu.Machine) error

// Prover is the embedded device: program, LO-FAT hardware configuration,
// and the hardware-held signing key.
type Prover struct {
	prog   *asm.Program
	id     ProgramID
	devCfg core.Config
	keys   *sig.KeyStore

	// MaxInstructions bounds a single attested execution.
	MaxInstructions uint64
	// Adversary, when set, simulates run-time attacks during execution.
	Adversary Adversary
}

// NewProver builds a prover for an assembled program.
func NewProver(prog *asm.Program, devCfg core.Config, keys *sig.KeyStore) *Prover {
	return &Prover{
		prog:            prog,
		id:              ComputeProgramID(prog.Text),
		devCfg:          devCfg,
		keys:            keys,
		MaxInstructions: 50_000_000,
	}
}

// ProgramID returns the identity of the installed binary.
func (p *Prover) ProgramID() ProgramID { return p.id }

// Program exposes the installed program image (for protocol extensions
// that run it under extra instrumentation, e.g. internal/stream).
func (p *Prover) Program() *asm.Program { return p.prog }

// DeviceConfig exposes the LO-FAT hardware configuration.
func (p *Prover) DeviceConfig() core.Config { return p.devCfg }

// Sign signs a payload with the device's hardware-held key. Protocol
// extensions use it to authenticate their own messages (per-segment
// signatures in internal/stream) with the same key that signs reports.
func (p *Prover) Sign(msg []byte) []byte { return p.keys.Sign(msg) }

// Attest executes the challenge: runs S(i) under LO-FAT observation and
// returns the signed report. The adversary hook, if any, runs alongside,
// exactly like the untrusted inputs I of the system model.
func (p *Prover) Attest(ch Challenge) (*Report, error) {
	if ch.Program != p.id {
		return nil, fmt.Errorf("attest: challenge for program %v, running %v", ch.Program, p.id)
	}
	meas, exitCode, err := runMeasured(p.prog, p.devCfg, ch.Input, p.Adversary, p.MaxInstructions)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Program:  p.id,
		Nonce:    ch.Nonce,
		Hash:     meas.Hash,
		Loops:    meas.Loops,
		ExitCode: exitCode,
	}
	rep.Sig = p.keys.Sign(SignedPayload(rep))
	return rep, nil
}

// Measure runs the program without an adversary and returns the raw
// measurement; used by provers for self-test and by the verifier for
// golden-run expectations.
func Measure(prog *asm.Program, devCfg core.Config, input []uint32, maxInstructions uint64) (core.Measurement, uint32, error) {
	return runMeasured(prog, devCfg, input, nil, maxInstructions)
}

func runMeasured(prog *asm.Program, devCfg core.Config, input []uint32, adv Adversary, budget uint64) (core.Measurement, uint32, error) {
	mach, err := cpu.AcquireMachine(prog, cpu.LoadOptions{})
	if err != nil {
		return core.Measurement{}, 0, err
	}
	defer cpu.ReleaseMachine(mach)
	dev := core.AcquireDevice(devCfg)
	defer core.ReleaseDevice(dev)
	// Fast trace port: batched delivery, masked to control-flow events
	// whenever the device accepts that (no Region configured). Either
	// way the measurement is bit-identical to per-event delivery.
	mach.CPU.TraceBatch = dev
	mach.CPU.TraceCFOnly = dev.CFOnlyCompatible()
	mach.CPU.Input = input
	mach.CPU.IRQ = devCfg.IRQ

	if adv == nil {
		if err := mach.CPU.Run(budget); err != nil {
			return core.Measurement{}, 0, fmt.Errorf("attest: %w", err)
		}
	} else {
		for !mach.CPU.Halted {
			if mach.CPU.Retired >= budget {
				return core.Measurement{}, 0, fmt.Errorf("attest: instruction budget exhausted at pc=%#08x", mach.CPU.PC)
			}
			if err := adv(mach); err != nil {
				return core.Measurement{}, 0, fmt.Errorf("attest: adversary: %w", err)
			}
			if err := mach.CPU.Step(); err != nil {
				return core.Measurement{}, 0, err
			}
		}
	}
	return dev.Finalize(), mach.CPU.ExitCode, nil
}
