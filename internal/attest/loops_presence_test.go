package attest_test

import (
	"crypto/rand"
	"strings"
	"testing"

	"lofat/internal/asm"
	. "lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/sig"
)

// inputLoopSrc runs a counted loop only when the input word is
// non-zero: input {n>0} produces loop metadata, input {0} produces
// none — the two sides of the metadata-presence check.
const inputLoopSrc = `
main:
	li   a7, 63
	ecall            # read n
	beqz a0, done
loop:
	addi a0, a0, -1
	bnez a0, loop
done:
	li   a0, 0
	li   a7, 93
	ecall
`

// A report whose loop-record slice is empty while the expected
// execution has loops (or vice versa) must be rejected with the
// distinct presence finding, not the generic metadata mismatch.
func TestLoopMetadataPresenceMismatch(t *testing.T) {
	prog, err := asm.Assemble(inputLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProver(prog, core.Config{}, keys)
	v, err := NewVerifier(prog, core.Config{}, keys.Public(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	withLoops := []uint32{3}
	noLoops := []uint32{0}

	// Sanity: the two inputs differ exactly in loop presence.
	mLoops, _, err := Measure(prog, core.Config{}, withLoops, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	mNone, _, err := Measure(prog, core.Config{}, noLoops, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(mLoops.Loops) == 0 || len(mNone.Loops) != 0 {
		t.Fatalf("workload loops: with=%d without=%d", len(mLoops.Loops), len(mNone.Loops))
	}

	findingsOf := func(res Result) string { return strings.Join(res.Findings, "\n") }

	t.Run("absent", func(t *testing.T) {
		// Expectations have loops; the report's slice is non-nil but
		// empty. The signature is recomputed so the check under test —
		// not signature verification — decides.
		ch, err := v.NewChallenge(withLoops)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Attest(ch)
		if err != nil {
			t.Fatal(err)
		}
		rep.Loops = rep.Loops[:0]
		rep.Sig = keys.Sign(SignedPayload(rep))
		res := v.Verify(ch, rep)
		if res.Accepted {
			t.Fatal("report with stripped loop metadata accepted")
		}
		if !strings.Contains(findingsOf(res), "loop metadata L absent") {
			t.Errorf("missing distinct absence finding, got: %v", res.Findings)
		}
		if strings.Contains(findingsOf(res), "loop metadata L differs") {
			t.Errorf("generic mismatch finding present alongside: %v", res.Findings)
		}
	})

	t.Run("unexpected", func(t *testing.T) {
		// Expectations have no loops; the report fabricates
		// CFG-consistent records (taken from a genuine loop-executing
		// run, so CFG validation cannot reject them first).
		ch, err := v.NewChallenge(noLoops)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Attest(ch)
		if err != nil {
			t.Fatal(err)
		}
		rep.Loops = append(rep.Loops, mLoops.Loops...)
		rep.Sig = keys.Sign(SignedPayload(rep))
		res := v.Verify(ch, rep)
		if res.Accepted {
			t.Fatal("report with fabricated loop metadata accepted")
		}
		if !strings.Contains(findingsOf(res), "loop metadata L unexpected") {
			t.Errorf("missing distinct unexpected-metadata finding, got: %v", res.Findings)
		}
	})
}
