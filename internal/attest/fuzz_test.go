package attest_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	. "lofat/internal/attest"
	"lofat/internal/workloads"
)

// Decoders must never panic on arbitrary bytes (they face the network).
func TestDecodeReportNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("DecodeReport panicked on %d bytes: %v", len(b), r)
			}
		}()
		_, _ = DecodeReport(b)
		_, _ = DecodeChallenge(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Bit-flipping a valid encoded report must never produce an ACCEPTED
// verification (decode error, signature failure, or mismatch — anything
// but acceptance).
func TestBitflippedReportsNeverAccepted(t *testing.T) {
	p, v := rig(t, workloads.SyringePump())
	in := workloads.SyringePump().Input

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 150; trial++ {
		ch, err := v.NewChallenge(in)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Attest(ch)
		if err != nil {
			t.Fatal(err)
		}
		enc := EncodeReport(rep)
		// Flip 1-3 random bits.
		for k := 0; k < 1+rng.Intn(3); k++ {
			i := rng.Intn(len(enc))
			enc[i] ^= 1 << uint(rng.Intn(8))
		}
		dec, err := DecodeReport(enc)
		if err != nil {
			continue // malformed: rejected at the parser, fine
		}
		res := v.Verify(ch, dec)
		if res.Accepted {
			// Only acceptable if the flips cancelled out to the
			// original bytes — with >=1 flip they cannot.
			t.Fatalf("trial %d: bit-flipped report ACCEPTED", trial)
		}
	}
}

// Truncations of a valid report must be rejected cleanly.
func TestTruncatedReportsRejected(t *testing.T) {
	p, v := rig(t, workloads.SyringePump())
	ch, _ := v.NewChallenge(workloads.SyringePump().Input)
	rep, err := p.Attest(ch)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeReport(rep)
	for n := 0; n < len(enc); n += 7 {
		if _, err := DecodeReport(enc[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", n)
		}
	}
}
