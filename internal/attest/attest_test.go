package attest_test

import (
	"bytes"
	"crypto/rand"
	"net"
	"testing"

	. "lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/sig"
	"lofat/internal/workloads"
)

// rig builds a prover/verifier pair for a workload.
func rig(t *testing.T, w workloads.Workload) (*Prover, *Verifier) {
	t.Helper()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProver(prog, core.Config{}, keys)
	v, err := NewVerifier(prog, core.Config{}, keys.Public(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return p, v
}

// Honest provers are accepted for every workload in the suite.
func TestHonestAttestationAccepted(t *testing.T) {
	for _, w := range workloads.All() {
		t.Run(w.Name, func(t *testing.T) {
			p, v := rig(t, w)
			ch, err := v.NewChallenge(w.Input)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := p.Attest(ch)
			if err != nil {
				t.Fatal(err)
			}
			res := v.Verify(ch, rep)
			if !res.Accepted || res.Class != ClassAccepted {
				t.Fatalf("honest run rejected: %v\nfindings: %v", res, res.Findings)
			}
		})
	}
}

// E7: each Figure 1 attack class is detected and correctly classified.
func TestAttackDetectionMatrix(t *testing.T) {
	for _, atk := range workloads.Attacks() {
		t.Run(atk.Name, func(t *testing.T) {
			prog, err := atk.Workload.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			keys, err := sig.GenerateKeyStore(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			p := NewProver(prog, core.Config{}, keys)
			p.Adversary = atk.Build(prog)
			v, err := NewVerifier(prog, core.Config{}, keys.Public(), rand.Reader)
			if err != nil {
				t.Fatal(err)
			}

			ch, err := v.NewChallenge(atk.Workload.Input)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := p.Attest(ch)
			if err != nil {
				t.Fatal(err)
			}
			res := v.Verify(ch, rep)
			if atk.Expect == ClassAccepted {
				// The documented limitation: pure data-oriented
				// corruption is invisible to CFA and must be accepted.
				if !res.Accepted {
					t.Fatalf("data-only attack %s rejected: %v %v",
						atk.Name, res, res.Findings)
				}
				return
			}
			if res.Accepted {
				t.Fatalf("attack %s ACCEPTED", atk.Name)
			}
			if res.Class != atk.Expect {
				t.Errorf("attack %s classified %v, want %v\nfindings: %v",
					atk.Name, res.Class, atk.Expect, res.Findings)
			}
			if len(res.Findings) == 0 {
				t.Error("rejection carries no findings")
			}
			t.Logf("%s -> %v: %v", atk.Name, res.Class, res.Findings)
		})
	}
}

// Freshness: replaying a report against a new challenge is rejected.
func TestReplayRejected(t *testing.T) {
	p, v := rig(t, workloads.SyringePump())
	in := workloads.SyringePump().Input

	ch1, _ := v.NewChallenge(in)
	rep1, err := p.Attest(ch1)
	if err != nil {
		t.Fatal(err)
	}
	if res := v.Verify(ch1, rep1); !res.Accepted {
		t.Fatalf("first exchange rejected: %v", res)
	}

	// Replay the old report against a fresh challenge.
	ch2, _ := v.NewChallenge(in)
	res := v.Verify(ch2, rep1)
	if res.Accepted || res.Class != ClassProtocol {
		t.Errorf("replay verdict = %v, want protocol rejection", res)
	}

	// Reusing the consumed challenge also fails (single-use nonces).
	res = v.Verify(ch1, rep1)
	if res.Accepted {
		t.Error("nonce reuse accepted")
	}
}

// Integrity: any tampering with the signed report fields is caught.
func TestTamperedReportRejected(t *testing.T) {
	p, v := rig(t, workloads.SyringePump())
	in := workloads.SyringePump().Input

	tamper := []struct {
		name string
		mut  func(r *Report)
	}{
		{"hash", func(r *Report) { r.Hash[0] ^= 1 }},
		{"loop-count", func(r *Report) { r.Loops[0].Iterations++ }},
		{"path-count", func(r *Report) { r.Loops[0].Paths[0].Count += 5 }},
		{"exit-code", func(r *Report) { r.ExitCode ^= 1 }},
		{"sig", func(r *Report) { r.Sig[0] ^= 1 }},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			ch, _ := v.NewChallenge(in)
			rep, err := p.Attest(ch)
			if err != nil {
				t.Fatal(err)
			}
			tc.mut(rep)
			res := v.Verify(ch, rep)
			if res.Accepted {
				t.Fatal("tampered report accepted")
			}
			if res.Class != ClassSignature {
				t.Errorf("verdict = %v, want bad-signature", res.Class)
			}
		})
	}
}

// A report signed under a different key is rejected.
func TestWrongKeyRejected(t *testing.T) {
	w := workloads.SyringePump()
	prog, _ := w.Assemble()
	keysA, _ := sig.GenerateKeyStore(rand.Reader)
	keysB, _ := sig.GenerateKeyStore(rand.Reader)
	p := NewProver(prog, core.Config{}, keysB) // rogue device key
	v, err := NewVerifier(prog, core.Config{}, keysA.Public(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := v.NewChallenge(w.Input)
	rep, err := p.Attest(ch)
	if err != nil {
		t.Fatal(err)
	}
	res := v.Verify(ch, rep)
	if res.Accepted || res.Class != ClassSignature {
		t.Errorf("verdict = %v, want bad-signature", res)
	}
}

// Different inputs produce different expected measurements; the verifier
// goldens per input.
func TestPerInputExpectations(t *testing.T) {
	p, v := rig(t, workloads.SyringePump())

	for _, input := range [][]uint32{
		{0xC0FFEE, 1, 4},
		{0xC0FFEE, 2, 4, 9},
		{0xBAD, 1, 4}, // rejected by the pump: different path
	} {
		ch, _ := v.NewChallenge(input)
		rep, err := p.Attest(ch)
		if err != nil {
			t.Fatal(err)
		}
		res := v.Verify(ch, rep)
		if !res.Accepted {
			t.Errorf("input %v: honest run rejected: %v %v", input, res, res.Findings)
		}
	}
}

// Report wire round-trip.
func TestReportCodecRoundTrip(t *testing.T) {
	p, v := rig(t, workloads.SyringePump())
	ch, _ := v.NewChallenge(workloads.SyringePump().Input)
	rep, err := p.Attest(ch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(EncodeReport(rep))
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != rep.Program || got.Nonce != rep.Nonce || got.Hash != rep.Hash ||
		got.ExitCode != rep.ExitCode || !bytes.Equal(got.Sig, rep.Sig) {
		t.Error("scalar fields did not round-trip")
	}
	if len(got.Loops) != len(rep.Loops) {
		t.Fatalf("loops = %d, want %d", len(got.Loops), len(rep.Loops))
	}
	// The signature must still verify after the round trip (canonical
	// encoding).
	res := v.Verify(ch, got)
	if !res.Accepted {
		t.Errorf("round-tripped report rejected: %v %v", res, res.Findings)
	}
}

func TestChallengeCodecRoundTrip(t *testing.T) {
	_, v := rig(t, workloads.SyringePump())
	ch, _ := v.NewChallenge([]uint32{1, 2, 3})
	got, err := DecodeChallenge(EncodeChallenge(&ch))
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != ch.Program || got.Nonce != ch.Nonce || len(got.Input) != 3 {
		t.Error("challenge did not round-trip")
	}
}

func TestDecodeGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1, 2, 3}, make([]byte, 64)} {
		if _, err := DecodeReport(b); err == nil {
			t.Errorf("DecodeReport(%d bytes) succeeded", len(b))
		}
		if _, err := DecodeChallenge(b); err == nil && len(b) < 68 {
			t.Errorf("DecodeChallenge(%d bytes) succeeded", len(b))
		}
	}
	// Trailing garbage rejected.
	p, v := rig(t, workloads.SyringePump())
	ch, _ := v.NewChallenge(nil)
	rep, err := p.Attest(ch)
	if err != nil {
		t.Fatal(err)
	}
	enc := append(EncodeReport(rep), 0xFF)
	if _, err := DecodeReport(enc); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// Full exchange over a real network connection.
func TestProtocolOverTCP(t *testing.T) {
	p, v := rig(t, workloads.SyringePump())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	errc := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		defer conn.Close()
		errc <- ServeProver(conn, p)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := RequestAttestation(conn, v, workloads.SyringePump().Input)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Errorf("TCP exchange rejected: %v %v", res, res.Findings)
	}
	if err := <-errc; err != nil {
		t.Fatalf("prover side: %v", err)
	}
}

// Wrong-program challenges are refused by the prover and reports for the
// wrong program are rejected by the verifier.
func TestProgramBinding(t *testing.T) {
	p, _ := rig(t, workloads.SyringePump())
	_, v2 := rig(t, workloads.BubbleSort())

	ch, _ := v2.NewChallenge(nil)
	if _, err := p.Attest(ch); err == nil {
		t.Error("prover attested a challenge for a different program")
	}

	// Forge the program ID so the prover accepts; the verifier must
	// still reject (ID mismatch, then signature would fail anyway).
	ch.Program = p.ProgramID()
	rep, err := p.Attest(ch)
	if err != nil {
		t.Fatal(err)
	}
	res := v2.Verify(ch, rep)
	if res.Accepted {
		t.Error("cross-program report accepted")
	}
}

// MetadataSize grows with loop count (sanity for E10).
func TestMetadataSize(t *testing.T) {
	p, v := rig(t, workloads.SyringePump())
	small, _ := v.NewChallenge([]uint32{0xC0FFEE, 1, 2})
	big, _ := v.NewChallenge([]uint32{0xC0FFEE, 6, 2, 3, 4, 5, 6, 7})
	rs, err := p.Attest(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := p.Attest(big)
	if err != nil {
		t.Fatal(err)
	}
	if MetadataSize(rb.Loops) <= MetadataSize(rs.Loops) {
		t.Errorf("metadata size did not grow: %d vs %d",
			MetadataSize(rb.Loops), MetadataSize(rs.Loops))
	}
}
