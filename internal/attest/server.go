package attest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"lofat/internal/obs"
)

// Registry hosts multiple attestable programs on one prover device —
// an embedded system running several attested tasks, each bound to its
// installed binary by program ID. Challenges are routed by the ID in
// the challenge message.
type Registry struct {
	mu sync.RWMutex
	//lofat:guardedby mu
	provers map[ProgramID]*Prover
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{provers: make(map[ProgramID]*Prover)}
}

// Register adds a prover; re-registering the same program replaces it.
func (r *Registry) Register(p *Prover) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.provers[p.ProgramID()] = p
}

// Lookup returns the prover for a program ID.
func (r *Registry) Lookup(id ProgramID) (*Prover, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.provers[id]
	return p, ok
}

// Len reports the number of registered programs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.provers)
}

// ServeConn handles challenge frames on one connection until EOF,
// routing each to the prover registered for its program ID. Unknown
// programs get an error frame; the connection stays usable.
func (r *Registry) ServeConn(conn io.ReadWriter) error {
	for {
		typ, payload, err := ReadFrame(conn)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if typ != MsgChallenge {
			return fmt.Errorf("attest: registry expected challenge, got type %d", typ)
		}
		if err := HandleChallenge(conn, payload, r.Lookup); err != nil {
			return err
		}
	}
}

// HandleChallenge processes one received challenge payload against a
// prover lookup, writing the report (or error frame) back. It is the
// shared per-frame body of every challenge-serving connection loop —
// the attest Registry above and protocol extensions multiplexing
// additional frame types on the same connection (internal/stream).
// Prover-side failures are answered with an error frame and a nil
// return (the connection stays usable); only transport and decode
// errors are returned.
func HandleChallenge(conn io.ReadWriter, payload []byte, lookup func(ProgramID) (*Prover, bool)) error {
	ch, err := DecodeChallenge(payload)
	if err != nil {
		return err
	}
	p, ok := lookup(ch.Program)
	if !ok {
		return WriteFrame(conn, MsgError, []byte("unknown program"))
	}
	rep, err := p.Attest(*ch)
	if err != nil {
		return WriteFrame(conn, MsgError, []byte("attestation failed"))
	}
	return WriteFrame(conn, MsgReport, EncodeReport(rep))
}

// Server is a persistent TCP attestation service over a per-connection
// handler — by default a Registry's challenge loop, but protocol
// extensions (internal/stream) reuse the same listener plumbing with
// their own handlers.
type Server struct {
	Registry *Registry

	// IdleTimeout, when positive, bounds each section of every received
	// frame (the 5-byte header, then the payload) and each write on an
	// accepted connection. The deadline re-arms only at section
	// boundaries, never mid-section, so a peer that goes silent — or
	// trickles one byte per deadline to stretch it (slowloris) —
	// cannot pin a handler goroutine beyond two windows per frame. Set
	// before Listen.
	IdleTimeout time.Duration

	handler func(io.ReadWriter) error
	mu      sync.Mutex
	//lofat:guardedby mu
	listener net.Listener
	wg       sync.WaitGroup
	//lofat:guardedby mu
	closed bool
}

// NewServer wraps a registry in a TCP server (not yet listening).
func NewServer(reg *Registry) *Server {
	return &Server{Registry: reg, handler: reg.ServeConn}
}

// NewServerFunc builds a TCP server around an arbitrary per-connection
// handler speaking the frame transport.
func NewServerFunc(handle func(io.ReadWriter) error) *Server {
	return &Server{handler: handle}
}

// ErrServerClosed is returned by Listen on a server that has been
// Closed: a closed server stays closed rather than silently rebinding.
var ErrServerClosed = errors.New("attest: server is closed")

// Listen binds the address and starts accepting connections in the
// background, one goroutine per connection. It returns the bound
// address (useful with ":0"). After Close it returns ErrServerClosed;
// a server listens on at most one address, so a second Listen on a
// live server is an error rather than a silent listener leak.
func (s *Server) Listen(addr string) (net.Addr, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	if s.listener != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("attest: server already listening on %s", s.listener.Addr())
	}
	s.mu.Unlock()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("attest: server: %w", err)
	}
	s.mu.Lock()
	switch {
	case s.closed: // Close raced with the bind: undo it
		s.mu.Unlock()
		ln.Close()
		return nil, ErrServerClosed
	case s.listener != nil: // concurrent Listen won the race
		other := s.listener.Addr()
		s.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("attest: server already listening on %s", other)
	}
	s.listener = ln
	// The accept loop registers on wg before the lock drops: a
	// concurrent Close must observe it and wait for it to exit.
	s.wg.Add(1)
	s.mu.Unlock()

	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				var rw io.ReadWriter = conn
				if d := s.IdleTimeout; d > 0 {
					rw = &idleConn{conn: conn, timeout: d}
				}
				_ = s.handler(rw)
			}()
		}
	}()
	return ln.Addr(), nil
}

// Close stops accepting and waits for in-flight exchanges.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.listener
	s.closed = true
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// idleConn bounds one slow or stalled peer by the server's IdleTimeout.
// Reads arm one deadline per frame section (header, then payload) by
// tracking the wire format, so a byte-trickling client cannot re-arm
// its way past the budget; writes arm a deadline per call.
type idleConn struct {
	conn    net.Conn
	timeout time.Duration

	hdr       [5]byte // header bytes of the frame being received
	hdrN      int
	remaining uint64 // payload bytes outstanding for the current frame
	armed     bool
}

// Read delivers bytes under the per-section deadline.
//
//lofat:rawconn idleConn IS the server-side deadline wrapper; every Read arms a deadline first
func (c *idleConn) Read(p []byte) (int, error) {
	if !c.armed {
		if err := c.conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return 0, err
		}
		c.armed = true
	}
	n, err := c.conn.Read(p)
	c.consume(p[:n])
	return n, err
}

// consume advances the frame parser over bytes the peer delivered; at
// each section boundary (header complete, payload complete) the next
// Read re-arms a fresh deadline — and only there.
func (c *idleConn) consume(b []byte) {
	for len(b) > 0 {
		if c.hdrN < len(c.hdr) {
			k := len(c.hdr) - c.hdrN
			if k > len(b) {
				k = len(b)
			}
			copy(c.hdr[c.hdrN:], b[:k])
			c.hdrN += k
			b = b[k:]
			if c.hdrN == len(c.hdr) {
				c.remaining = uint64(binary.LittleEndian.Uint32(c.hdr[1:]))
				c.armed = false
				if c.remaining == 0 {
					c.hdrN = 0
				}
			}
			continue
		}
		k := uint64(len(b))
		if k > c.remaining {
			k = c.remaining
		}
		c.remaining -= k
		b = b[k:]
		if c.remaining == 0 {
			c.hdrN = 0
			c.armed = false
		}
	}
}

// Write sends bytes under a per-call deadline.
//
//lofat:rawconn idleConn IS the server-side deadline wrapper; every Write arms a deadline first
func (c *idleConn) Write(p []byte) (int, error) {
	if err := c.conn.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, err
	}
	return c.conn.Write(p)
}

// RequestFrom drives one challenge-response exchange for input against
// an already-open connection to a registry server (connections are
// reusable across rounds).
func RequestFrom(conn io.ReadWriter, v *Verifier, input []uint32) (Result, error) {
	return RequestAttestation(conn, v, input)
}

// RequestFromTimeout is RequestFrom with per-phase I/O deadlines (see
// RequestAttestationTimeout).
func RequestFromTimeout(conn io.ReadWriter, v *Verifier, input []uint32, to Timeouts) (Result, error) {
	return RequestAttestationTimeout(conn, v, input, to)
}

// RequestFromScoped is RequestFromTimeout with round tracing (see
// RequestAttestationScoped).
func RequestFromScoped(conn io.ReadWriter, v *Verifier, input []uint32, to Timeouts, sc obs.Scope) (Result, error) {
	return RequestAttestationScoped(conn, v, input, to, sc)
}
