package attest_test

import (
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	. "lofat/internal/attest"
)

// callCountingWriter records each Write it receives.
type callCountingWriter struct {
	calls  int
	frames [][]byte
}

func (w *callCountingWriter) Write(p []byte) (int, error) {
	w.calls++
	w.frames = append(w.frames, append([]byte(nil), p...))
	return len(p), nil
}

// failingWriter errors from the Nth call on.
type failingWriter struct {
	calls   int
	failAt  int
	written []byte
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.calls++
	if w.calls >= w.failAt {
		return 0, fmt.Errorf("boom")
	}
	w.written = append(w.written, p...)
	return len(p), nil
}

// TestWriteFrameSingleWrite pins the torn-frame fix: header and payload
// must leave in ONE Write, so an error (or a concurrent writer) cannot
// land between them and leave a partial frame on the wire.
func TestWriteFrameSingleWrite(t *testing.T) {
	w := &callCountingWriter{}
	payload := []byte("payload-bytes")
	if err := WriteFrame(w, MsgReport, payload); err != nil {
		t.Fatal(err)
	}
	if w.calls != 1 {
		t.Fatalf("WriteFrame issued %d writes, want 1 (torn-frame hazard)", w.calls)
	}
	frame := w.frames[0]
	if len(frame) != 5+len(payload) {
		t.Fatalf("frame length %d, want %d", len(frame), 5+len(payload))
	}
	if frame[0] != MsgReport || string(frame[5:]) != string(payload) {
		t.Fatalf("frame content wrong: %x", frame)
	}

	// A writer that fails on its first call leaves NOTHING on the wire:
	// either the whole frame lands or none of it.
	fw := &failingWriter{failAt: 1}
	err := WriteFrame(fw, MsgChallenge, payload)
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("failed write returned %T (%v), want *TransportError", err, err)
	}
	if len(fw.written) != 0 {
		t.Fatalf("failed WriteFrame left %d bytes on the wire", len(fw.written))
	}
}

// TestRequestTimeoutStalledProver checks the per-phase read deadline: a
// prover that swallows the challenge and never answers fails the
// exchange with a timeout-classed TransportError in bounded time, and
// the challenge nonce is retired.
func TestRequestTimeoutStalledProver(t *testing.T) {
	_, verifiers, ws := multiRig(t, "syringe-pump")
	v := verifiers["syringe-pump"]

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		// Read the challenge, then go silent forever.
		buf := make([]byte, 4096)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()

	start := time.Now()
	_, err := RequestFromTimeout(client, v, ws["syringe-pump"].Input, Timeouts{Read: 100 * time.Millisecond})
	elapsed := time.Since(start)
	var te *TransportError
	if !errors.As(err, &te) || !te.Timeout() {
		t.Fatalf("stalled exchange returned %v, want timeout TransportError", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("stalled exchange took %v despite 100ms read deadline", elapsed)
	}
	if n := v.PendingChallenges(); n != 0 {
		t.Fatalf("timed-out exchange leaked %d nonces", n)
	}
}

// TestServerIdleTimeout checks that a peer which connects and stalls
// mid-frame cannot pin a server handler: the idle deadline fires, the
// handler exits and the connection is closed under the client.
func TestServerIdleTimeout(t *testing.T) {
	reg, _, _ := multiRig(t, "syringe-pump")
	srv := NewServer(reg)
	srv.IdleTimeout = 100 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Two bytes of a five-byte header, then silence: a mid-frame stall.
	if _, err := conn.Write([]byte{MsgChallenge, 0x01}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept the stalled connection alive")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("server held the stalled connection for %v", elapsed)
	}
}

// TestServerIdleTimeoutTrickler checks the slowloris case: a client
// that delivers one byte per interval — each arriving well inside the
// idle timeout — must NOT keep extending its budget; the deadline only
// re-arms at frame-section boundaries, so the stretched header blows
// the window and the handler drops the connection.
func TestServerIdleTimeoutTrickler(t *testing.T) {
	reg, _, _ := multiRig(t, "syringe-pump")
	srv := NewServer(reg)
	srv.IdleTimeout = 200 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Header claims a 1KB payload; every byte lands 80ms apart — far
	// inside the 200ms timeout individually, far beyond it in total.
	frame := []byte{MsgChallenge, 0x00, 0x04, 0x00, 0x00}
	start := time.Now()
	dropped := false
	for i := 0; i < 30 && !dropped; i++ {
		b := byte(0)
		if i < len(frame) {
			b = frame[i]
		}
		if _, err := conn.Write([]byte{b}); err != nil {
			dropped = true
			break
		}
		time.Sleep(80 * time.Millisecond)
		conn.SetReadDeadline(time.Now().Add(time.Millisecond))
		if _, err := conn.Read(make([]byte, 1)); err != nil && !errors.Is(err, os.ErrDeadlineExceeded) {
			dropped = true
		}
	}
	if !dropped {
		t.Fatal("trickling client kept the connection alive past 2.4s of 200ms idle windows")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("server took %v to drop the trickler", elapsed)
	}
}

// TestTimeoutsDisarmKeepsConnReusable checks that deadlines armed for
// one exchange do not poison a later exchange on the same connection
// that runs without timeouts.
func TestTimeoutsDisarmKeepsConnReusable(t *testing.T) {
	reg, verifiers, ws := multiRig(t, "syringe-pump")
	srv := NewServer(reg)
	// An idle timeout on the server also exercises the frame-aware
	// deadline parser across multiple frames on one connection.
	srv.IdleTimeout = 5 * time.Second
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	v := verifiers["syringe-pump"]
	input := ws["syringe-pump"].Input
	if res, err := RequestFromTimeout(conn, v, input, Timeouts{Read: 5 * time.Second, Write: 5 * time.Second}); err != nil || !res.Accepted {
		t.Fatalf("timed exchange: %v %v", res, err)
	}
	// Were the deadline left armed, this follow-up exchange would fail
	// once it expired.
	time.Sleep(10 * time.Millisecond)
	if res, err := RequestFrom(conn, v, input); err != nil || !res.Accepted {
		t.Fatalf("follow-up exchange after disarm: %v %v", res, err)
	}
}
