package attest_test

import (
	"crypto/rand"
	"testing"

	. "lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/sig"
	"lofat/internal/workloads"
)

func pumpInputs() [][]uint32 {
	return [][]uint32{
		{0xC0FFEE, 1, 4},
		{0xC0FFEE, 2, 5, 3},
		{0xC0FFEE, 3, 1, 2, 3},
		{0xBAD, 1, 4},
	}
}

func TestPrecomputeAndVerify(t *testing.T) {
	p, v := rig(t, workloads.SyringePump())
	db, err := v.Precompute(pumpInputs())
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != len(pumpInputs()) {
		t.Fatalf("db size = %d", db.Size())
	}
	if got := len(db.Inputs()); got != len(pumpInputs()) {
		t.Fatalf("Inputs() = %d entries", got)
	}

	for _, in := range pumpInputs() {
		ch, err := v.NewChallenge(in)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Attest(ch)
		if err != nil {
			t.Fatal(err)
		}
		res := v.VerifyWithDB(db, ch, rep)
		if !res.Accepted {
			t.Errorf("input %v: DB verification rejected honest run: %v %v",
				in, res, res.Findings)
		}
	}
}

func TestDBUnknownInput(t *testing.T) {
	p, v := rig(t, workloads.SyringePump())
	db, err := v.Precompute(pumpInputs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := v.NewChallenge([]uint32{0xC0FFEE, 2, 9, 9})
	rep, err := p.Attest(ch)
	if err != nil {
		t.Fatal(err)
	}
	res := v.VerifyWithDB(db, ch, rep)
	if res.Accepted || res.Class != ClassProtocol {
		t.Errorf("unknown input verdict = %v, want protocol rejection", res)
	}
}

func TestDBDetectsAttacks(t *testing.T) {
	atk, _ := workloads.AttackByName("loop-counter")
	prog, err := atk.Workload.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := sig.GenerateKeyStore(rand.Reader)
	p := NewProver(prog, core.Config{}, keys)
	v, err := NewVerifier(prog, core.Config{}, keys.Public(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	db, err := v.Precompute([][]uint32{atk.Workload.Input})
	if err != nil {
		t.Fatal(err)
	}

	p.Adversary = atk.Build(prog)
	ch, _ := v.NewChallenge(atk.Workload.Input)
	rep, err := p.Attest(ch)
	if err != nil {
		t.Fatal(err)
	}
	res := v.VerifyWithDB(db, ch, rep)
	if res.Accepted {
		t.Fatal("DB verification accepted the attack")
	}
	if res.Class != ClassLoopCounter {
		t.Errorf("classified %v, want loop-counter (fallback classifier)", res.Class)
	}
}

func TestDBRejectsBadSignature(t *testing.T) {
	p, v := rig(t, workloads.SyringePump())
	db, err := v.Precompute(pumpInputs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := v.NewChallenge(pumpInputs()[0])
	rep, err := p.Attest(ch)
	if err != nil {
		t.Fatal(err)
	}
	rep.Sig[0] ^= 1
	res := v.VerifyWithDB(db, ch, rep)
	if res.Accepted || res.Class != ClassSignature {
		t.Errorf("verdict = %v, want bad-signature", res)
	}
}
