package attest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"lofat/internal/obs"
)

// Message types on the wire. The attest package owns type bytes 1-15;
// protocol extensions riding the same frame transport allocate from 16
// up (internal/stream uses 16-19 for its segmented-attestation
// messages; internal/fed uses 32-47 for its coordinator↔node
// control-plane messages).
const (
	MsgChallenge byte = 1
	MsgReport    byte = 2
	MsgError     byte = 3
)

// maxMessageSize bounds a frame to keep a malicious peer from forcing
// unbounded allocation.
const maxMessageSize = 16 << 20

// TransportError marks an I/O failure on the frame transport — the
// bytes could not be moved — as opposed to a protocol violation or a
// verification verdict. Callers use it to decide whether a failed
// exchange is worth retrying (a timed-out or dropped connection may
// recover; a peer speaking garbage will not).
type TransportError struct {
	Op  string // "read frame" or "write frame"
	Err error
}

func (e *TransportError) Error() string { return fmt.Sprintf("attest: %s: %v", e.Op, e.Err) }

func (e *TransportError) Unwrap() error { return e.Err }

// Timeout reports whether the underlying failure was a deadline expiry
// (net.Error timeout or os.ErrDeadlineExceeded), distinguishing a
// stalled peer from a dropped connection.
func (e *TransportError) Timeout() bool {
	var t interface{ Timeout() bool }
	if errors.As(e.Err, &t) {
		return t.Timeout()
	}
	return false
}

// LocalError marks a failure that occurred verifier-side before any
// bytes moved — challenge/session creation, golden-run or cache
// failures. It carries no evidence about the peer: callers applying
// per-peer health policy (retry, circuit breaking) must not attribute
// it to the device.
type LocalError struct {
	Err error
}

func (e *LocalError) Error() string { return fmt.Sprintf("attest: verifier-local: %v", e.Err) }

func (e *LocalError) Unwrap() error { return e.Err }

// DeadlineConn is the optional transport interface for per-phase I/O
// deadlines. net.Conn and net.Pipe implement it; in-memory buffers do
// not and simply run without deadlines.
type DeadlineConn interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// Timeouts are per-phase I/O deadlines for one protocol exchange: each
// read phase (waiting for the peer's next frame) and each write phase
// gets its own deadline, so a peer that stalls mid-frame — cheaper for
// an attacker than forging a measurement — cannot wedge the caller
// forever. Zero fields disable the corresponding deadline; conns that
// do not implement DeadlineConn are used as-is.
type Timeouts struct {
	Read  time.Duration
	Write time.Duration
}

// ArmRead sets the read deadline on conn for the next read phase, when
// both the timeout and the conn support it.
func (t Timeouts) ArmRead(conn any) {
	if t.Read <= 0 {
		return
	}
	if dc, ok := conn.(DeadlineConn); ok {
		_ = dc.SetReadDeadline(time.Now().Add(t.Read))
	}
}

// ArmWrite sets the write deadline on conn for the next write phase,
// when both the timeout and the conn support it.
func (t Timeouts) ArmWrite(conn any) {
	if t.Write <= 0 {
		return
	}
	if dc, ok := conn.(DeadlineConn); ok {
		_ = dc.SetWriteDeadline(time.Now().Add(t.Write))
	}
}

// Disarm clears any deadlines this exchange armed, so a connection
// reused for a later exchange without timeouts is not poisoned by a
// stale deadline.
func (t Timeouts) Disarm(conn any) {
	dc, ok := conn.(DeadlineConn)
	if !ok {
		return
	}
	if t.Read > 0 {
		_ = dc.SetReadDeadline(time.Time{})
	}
	if t.Write > 0 {
		_ = dc.SetWriteDeadline(time.Time{})
	}
}

// WriteFrame sends a type-tagged, length-prefixed frame — the transport
// unit under every protocol message, shared with extensions
// (internal/stream) so one connection can carry both. Header and
// payload are coalesced into a single Write: an error or a concurrent
// writer can no longer land between them and leave a torn frame on the
// wire.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	buf := make([]byte, 5+len(payload))
	buf[0] = typ
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(payload)))
	copy(buf[5:], payload)
	if _, err := w.Write(buf); err != nil {
		return &TransportError{Op: "write frame", Err: err}
	}
	return nil
}

// ReadFrame receives one frame.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, &TransportError{Op: "read frame", Err: err}
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxMessageSize {
		return 0, nil, fmt.Errorf("attest: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, &TransportError{Op: "read frame", Err: err}
	}
	return hdr[0], payload, nil
}

// ServeProver handles one attestation exchange on conn: receive a
// challenge, attest, reply with the report (or an error frame). It
// returns after one exchange; callers loop for persistent service.
func ServeProver(conn io.ReadWriter, p *Prover) error {
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		return err
	}
	if typ != MsgChallenge {
		return fmt.Errorf("attest: prover expected challenge, got type %d", typ)
	}
	ch, err := DecodeChallenge(payload)
	if err != nil {
		return err
	}
	rep, err := p.Attest(*ch)
	if err != nil {
		// Report the failure without leaking internals.
		_ = WriteFrame(conn, MsgError, []byte("attestation failed"))
		return err
	}
	return WriteFrame(conn, MsgReport, EncodeReport(rep))
}

// RequestAttestation drives one exchange from the verifier side: send a
// fresh challenge for input, receive the report, and verify it. On any
// failure before verification the challenge nonce is retired, so failed
// exchanges (unreachable or misbehaving provers) do not grow the
// verifier's issued-nonce set — long-lived verifiers polling flaky
// devices stay bounded.
func RequestAttestation(conn io.ReadWriter, v *Verifier, input []uint32) (Result, error) {
	return RequestAttestationTimeout(conn, v, input, Timeouts{})
}

// RequestAttestationTimeout is RequestAttestation with per-phase I/O
// deadlines: the challenge write and the report read each get their own
// deadline when the conn supports them (DeadlineConn), so a prover that
// accepts the challenge and then stalls — mid-frame or by going silent —
// fails the exchange with a TransportError whose Timeout() is true
// instead of blocking forever. Deadlines armed here are cleared before
// returning, keeping the connection reusable.
func RequestAttestationTimeout(conn io.ReadWriter, v *Verifier, input []uint32, to Timeouts) (Result, error) {
	return RequestAttestationScoped(conn, v, input, to, obs.Scope{})
}

// RequestAttestationScoped is RequestAttestationTimeout with round
// tracing: the network phase (challenge write through report read) and
// the verification phase are recorded as "exchange" and "verify" spans
// on sc's track. The zero Scope disables tracing at the cost of one
// branch per span — this is the variant the fleet pipeline calls.
func RequestAttestationScoped(conn io.ReadWriter, v *Verifier, input []uint32, to Timeouts, sc obs.Scope) (Result, error) {
	ch, err := v.NewChallenge(input)
	if err != nil {
		return Result{}, &LocalError{Err: err}
	}
	defer to.Disarm(conn)
	fail := func(err error) (Result, error) {
		v.consumeNonce(ch.Nonce)
		return Result{}, err
	}
	xsp := sc.Start("exchange", "attest")
	to.ArmWrite(conn)
	if err := WriteFrame(conn, MsgChallenge, EncodeChallenge(&ch)); err != nil {
		xsp.Arg("error", "write").End()
		return fail(err)
	}
	to.ArmRead(conn)
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		xsp.Arg("error", "read").End()
		return fail(err)
	}
	xsp.End()
	switch typ {
	case MsgReport:
		rep, err := DecodeReport(payload)
		if err != nil {
			return fail(err)
		}
		vsp := sc.Start("verify", "attest")
		res := v.Verify(ch, rep)
		vsp.Arg("class", res.Class.String()).End()
		return res, nil
	case MsgError:
		return fail(fmt.Errorf("attest: prover error: %s", payload))
	default:
		return fail(fmt.Errorf("attest: unexpected message type %d", typ))
	}
}
