package attest

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Message types on the wire. The attest package owns type bytes 1-15;
// protocol extensions riding the same frame transport allocate from 16
// up (internal/stream uses 16-19 for its segmented-attestation
// messages).
const (
	MsgChallenge byte = 1
	MsgReport    byte = 2
	MsgError     byte = 3
)

// maxMessageSize bounds a frame to keep a malicious peer from forcing
// unbounded allocation.
const maxMessageSize = 16 << 20

// WriteFrame sends a type-tagged, length-prefixed frame — the transport
// unit under every protocol message, shared with extensions
// (internal/stream) so one connection can carry both.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	hdr := make([]byte, 5)
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("attest: write frame: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("attest: write frame: %w", err)
	}
	return nil
}

// ReadFrame receives one frame.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, fmt.Errorf("attest: read frame: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxMessageSize {
		return 0, nil, fmt.Errorf("attest: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("attest: read frame: %w", err)
	}
	return hdr[0], payload, nil
}

// ServeProver handles one attestation exchange on conn: receive a
// challenge, attest, reply with the report (or an error frame). It
// returns after one exchange; callers loop for persistent service.
func ServeProver(conn io.ReadWriter, p *Prover) error {
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		return err
	}
	if typ != MsgChallenge {
		return fmt.Errorf("attest: prover expected challenge, got type %d", typ)
	}
	ch, err := DecodeChallenge(payload)
	if err != nil {
		return err
	}
	rep, err := p.Attest(*ch)
	if err != nil {
		// Report the failure without leaking internals.
		_ = WriteFrame(conn, MsgError, []byte("attestation failed"))
		return err
	}
	return WriteFrame(conn, MsgReport, EncodeReport(rep))
}

// RequestAttestation drives one exchange from the verifier side: send a
// fresh challenge for input, receive the report, and verify it. On any
// failure before verification the challenge nonce is retired, so failed
// exchanges (unreachable or misbehaving provers) do not grow the
// verifier's issued-nonce set — long-lived verifiers polling flaky
// devices stay bounded.
func RequestAttestation(conn io.ReadWriter, v *Verifier, input []uint32) (Result, error) {
	ch, err := v.NewChallenge(input)
	if err != nil {
		return Result{}, err
	}
	fail := func(err error) (Result, error) {
		v.consumeNonce(ch.Nonce)
		return Result{}, err
	}
	if err := WriteFrame(conn, MsgChallenge, EncodeChallenge(&ch)); err != nil {
		return fail(err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		return fail(err)
	}
	switch typ {
	case MsgReport:
		rep, err := DecodeReport(payload)
		if err != nil {
			return fail(err)
		}
		return v.Verify(ch, rep), nil
	case MsgError:
		return fail(fmt.Errorf("attest: prover error: %s", payload))
	default:
		return fail(fmt.Errorf("attest: unexpected message type %d", typ))
	}
}
