package attest

import (
	"encoding/binary"
	"fmt"

	"lofat/internal/hashengine"
	"lofat/internal/monitor"
)

// Wire format: all integers little-endian, length-prefixed slices. The
// encoding is canonical (a given value has exactly one encoding), which
// makes the signed payload deterministic.

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("attest: decode: truncated %s at offset %d", what, r.off)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail("u8")
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail("bytes")
		return nil
	}
	v := make([]byte, n)
	copy(v, r.buf[r.off:])
	r.off += n
	return v
}

func writePathCode(w *writer, c monitor.PathCode) {
	w.u64(c.Bits)
	w.u8(c.Len)
	if c.Overflow {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func readPathCode(r *reader) monitor.PathCode {
	var c monitor.PathCode
	c.Bits = r.u64()
	c.Len = r.u8()
	c.Overflow = r.u8() == 1
	return c
}

func writeLoopRecord(w *writer, rec monitor.LoopRecord) {
	w.u32(rec.Entry)
	w.u32(rec.Exit)
	w.u64(rec.Iterations)
	w.u64(rec.IndirectOverflows)
	writePathCode(w, rec.Partial)
	w.u32(uint32(len(rec.Paths)))
	for _, p := range rec.Paths {
		writePathCode(w, p.Code)
		w.u64(p.Count)
	}
	w.u32(uint32(len(rec.IndirectTargets)))
	for _, t := range rec.IndirectTargets {
		w.u32(t)
	}
}

func readLoopRecord(r *reader) monitor.LoopRecord {
	var rec monitor.LoopRecord
	rec.Entry = r.u32()
	rec.Exit = r.u32()
	rec.Iterations = r.u64()
	rec.IndirectOverflows = r.u64()
	rec.Partial = readPathCode(r)
	nPaths := int(r.u32())
	if r.err == nil && nPaths > len(r.buf) { // defensive bound
		r.fail("paths count")
		return rec
	}
	for i := 0; i < nPaths && r.err == nil; i++ {
		code := readPathCode(r)
		count := r.u64()
		rec.Paths = append(rec.Paths, monitor.PathStat{Code: code, Count: count})
	}
	nTgts := int(r.u32())
	if r.err == nil && nTgts > len(r.buf) {
		r.fail("targets count")
		return rec
	}
	for i := 0; i < nTgts && r.err == nil; i++ {
		rec.IndirectTargets = append(rec.IndirectTargets, r.u32())
	}
	return rec
}

// SignedPayload is the byte string the prover signs: idS || A || L || N
// || exit code — the paper's P || N with the program identity bound in.
func SignedPayload(r *Report) []byte {
	var w writer
	w.buf = make([]byte, 0, 256)
	w.buf = append(w.buf, r.Program[:]...)
	w.buf = append(w.buf, r.Hash[:]...)
	w.u32(uint32(len(r.Loops)))
	for _, rec := range r.Loops {
		writeLoopRecord(&w, rec)
	}
	w.buf = append(w.buf, r.Nonce[:]...)
	w.u32(r.ExitCode)
	return w.buf
}

// EncodeReport serializes a report for transport.
func EncodeReport(r *Report) []byte {
	var w writer
	w.buf = append(w.buf, r.Program[:]...)
	w.buf = append(w.buf, r.Nonce[:]...)
	w.buf = append(w.buf, r.Hash[:]...)
	w.u32(r.ExitCode)
	w.u32(uint32(len(r.Loops)))
	for _, rec := range r.Loops {
		writeLoopRecord(&w, rec)
	}
	w.bytes(r.Sig)
	return w.buf
}

// DecodeReport parses a transported report.
func DecodeReport(b []byte) (*Report, error) {
	r := &reader{buf: b}
	var rep Report
	if len(b) < len(rep.Program)+len(rep.Nonce)+hashengine.DigestSize {
		return nil, fmt.Errorf("attest: report too short (%d bytes)", len(b))
	}
	copy(rep.Program[:], b[r.off:])
	r.off += len(rep.Program)
	copy(rep.Nonce[:], b[r.off:])
	r.off += len(rep.Nonce)
	copy(rep.Hash[:], b[r.off:])
	r.off += hashengine.DigestSize
	rep.ExitCode = r.u32()
	n := int(r.u32())
	if r.err == nil && n > len(b) {
		return nil, fmt.Errorf("attest: absurd loop count %d", n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		rep.Loops = append(rep.Loops, readLoopRecord(r))
	}
	rep.Sig = r.bytes()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("attest: %d trailing bytes in report", len(b)-r.off)
	}
	return &rep, nil
}

// EncodeChallenge serializes a challenge.
func EncodeChallenge(c *Challenge) []byte {
	var w writer
	w.buf = append(w.buf, c.Program[:]...)
	w.buf = append(w.buf, c.Nonce[:]...)
	w.u32(uint32(len(c.Input)))
	for _, v := range c.Input {
		w.u32(v)
	}
	return w.buf
}

// DecodeChallenge parses a challenge.
func DecodeChallenge(b []byte) (*Challenge, error) {
	var c Challenge
	r := &reader{buf: b}
	if len(b) < len(c.Program)+len(c.Nonce)+4 {
		return nil, fmt.Errorf("attest: challenge too short (%d bytes)", len(b))
	}
	copy(c.Program[:], b[r.off:])
	r.off += len(c.Program)
	copy(c.Nonce[:], b[r.off:])
	r.off += len(c.Nonce)
	n := int(r.u32())
	if r.err == nil && n > len(b) {
		return nil, fmt.Errorf("attest: absurd input count %d", n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		c.Input = append(c.Input, r.u32())
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("attest: %d trailing bytes in challenge", len(b)-r.off)
	}
	return &c, nil
}

// MetadataSize reports the encoded size of L in bytes — the quantity §6.1
// says "depends on the number of loops executed, the number of different
// paths per loop, and the number of indirect branch targets".
func MetadataSize(loops []monitor.LoopRecord) int {
	var w writer
	for _, rec := range loops {
		writeLoopRecord(&w, rec)
	}
	return len(w.buf)
}
