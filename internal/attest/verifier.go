package attest

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"lofat/internal/asm"
	"lofat/internal/cfg"
	"lofat/internal/core"
	"lofat/internal/monitor"
	"lofat/internal/sig"
)

// ExpectationCache is a shared store of golden measurements consulted
// before (and populated after) a golden run. It lets many verifiers for
// the same firmware image amortize simulation: a fleet verifier computes
// the expected measurement for (S, i) once and every other device's
// verifier reuses it (internal/fleet layers its measurement cache
// through this hook). Keys are opaque strings built by the verifier,
// covering program identity, device configuration AND input — golden
// measurements depend on all three, so caches never need to reason
// about collision domains. Implementations must be safe for concurrent
// use; stored measurements are shared read-only and must not be
// mutated.
type ExpectationCache interface {
	GetExpectation(key string) (*core.Measurement, bool)
	PutExpectation(key string, m *core.Measurement)
}

// Verifier is V of Figure 2: it holds the program binary, its offline
// CFG analysis, the prover's public key, and an entropy source for
// nonces. Expected measurements are produced by golden-running S(i) on
// the verifier's own simulator and are cached per input.
type Verifier struct {
	prog   *asm.Program
	id     ProgramID
	graph  *cfg.Graph
	pub    ed25519.PublicKey
	devCfg core.Config
	rand   io.Reader

	// MaxInstructions bounds golden runs.
	MaxInstructions uint64

	// cacheKeyBase prefixes shared-cache keys with everything besides
	// the input that determines a golden measurement: program identity
	// and the full device configuration.
	cacheKeyBase string

	// mu guards expectations, issued and shared: one verifier may serve
	// many concurrent attestation sessions.
	mu           sync.Mutex
	expectations map[string]*core.Measurement
	issued       map[Nonce]bool
	shared       ExpectationCache
}

// NewVerifier performs the one-time offline pre-processing step:
// disassembly and CFG construction.
func NewVerifier(prog *asm.Program, devCfg core.Config, pub ed25519.PublicKey, rand io.Reader) (*Verifier, error) {
	words := make([]uint32, 0, len(prog.Data)/4)
	for i := 0; i+4 <= len(prog.Data); i += 4 {
		words = append(words, binary.LittleEndian.Uint32(prog.Data[i:]))
	}
	g, err := cfg.Build(prog.Text, prog.TextBase, words)
	if err != nil {
		return nil, fmt.Errorf("attest: verifier CFG: %w", err)
	}
	if devCfg.IRQ.Vector != 0 {
		g.EnableISR(devCfg.IRQ.Vector)
	}
	id := ComputeProgramID(prog.Text)
	return &Verifier{
		prog:   prog,
		id:     id,
		graph:  g,
		pub:    pub,
		devCfg: devCfg,
		rand:   rand,
		// %#v covers every config field (all plain values), so two
		// verifiers share cache entries only when program, device
		// configuration and input all agree.
		cacheKeyBase:    fmt.Sprintf("%x|%#v|", id, devCfg),
		MaxInstructions: 50_000_000,
		expectations:    make(map[string]*core.Measurement),
		issued:          make(map[Nonce]bool),
	}, nil
}

// SetExpectationCache installs a shared golden-measurement cache
// consulted before simulating (nil removes it). The verifier still keeps
// its private per-input memo; the shared cache sits behind it so
// cross-verifier reuse survives verifier churn.
func (v *Verifier) SetExpectationCache(c ExpectationCache) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.shared = c
}

// ForKey derives a verifier that shares this verifier's offline analysis
// (program image, CFG, device configuration, shared expectation cache)
// but trusts a different device public key — the fleet deployment: one
// firmware image enrolled on many devices, each holding its own
// hardware-protected key. The derived verifier has independent nonce
// state, so concurrent sessions against different devices never contend.
// The entropy source is shared and must be safe for concurrent use
// (crypto/rand.Reader is).
func (v *Verifier) ForKey(pub ed25519.PublicKey) *Verifier {
	v.mu.Lock()
	defer v.mu.Unlock()
	return &Verifier{
		prog:            v.prog,
		id:              v.id,
		graph:           v.graph,
		pub:             pub,
		devCfg:          v.devCfg,
		rand:            v.rand,
		cacheKeyBase:    v.cacheKeyBase,
		MaxInstructions: v.MaxInstructions,
		expectations:    make(map[string]*core.Measurement),
		issued:          make(map[Nonce]bool),
		shared:          v.shared,
	}
}

// Graph exposes the verifier's CFG (for tooling and reporting).
func (v *Verifier) Graph() *cfg.Graph { return v.graph }

// ProgramID returns the identity V expects the prover to run.
func (v *Verifier) ProgramID() ProgramID { return v.id }

// Program exposes the program image the verifier analyses. Protocol
// extensions layered on the verifier (internal/stream) golden-run it
// with their own instrumentation.
func (v *Verifier) Program() *asm.Program { return v.prog }

// DeviceConfig exposes the hardware configuration golden runs use.
func (v *Verifier) DeviceConfig() core.Config { return v.devCfg }

// PublicKey exposes the enrolled device public key.
func (v *Verifier) PublicKey() ed25519.PublicKey { return v.pub }

// NewChallenge draws a fresh nonce and builds the attestation request
// for input i.
func (v *Verifier) NewChallenge(input []uint32) (Challenge, error) {
	var n Nonce
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, err := io.ReadFull(v.rand, n[:]); err != nil {
		return Challenge{}, fmt.Errorf("attest: nonce: %w", err)
	}
	v.issued[n] = true
	return Challenge{Program: v.id, Nonce: n, Input: append([]uint32(nil), input...)}, nil
}

// expected returns (computing and caching on first use) the golden
// measurement for an input. Lookup order: private memo, shared
// expectation cache, simulation — with the simulated result published to
// both layers.
func (v *Verifier) expected(input []uint32) (*core.Measurement, error) {
	return v.ExpectedCustom("", input, func() (*core.Measurement, error) {
		meas, _, err := Measure(v.prog, v.devCfg, input, v.MaxInstructions)
		if err != nil {
			return nil, fmt.Errorf("attest: golden run: %w", err)
		}
		return &meas, nil
	})
}

// ExpectedCustom returns (computing and caching on first use) a golden
// measurement produced by a caller-supplied measurement procedure,
// under the verifier's two-layer cache (private memo + shared
// ExpectationCache). kind namespaces the cache entry: the empty kind is
// the plain end-of-run expectation; protocol extensions use distinct
// kinds for expectations with extra state — internal/stream records
// per-segment checkpoint states under "streamN" kinds this way, so
// fleet-wide caches amortize streamed golden runs exactly like plain
// ones. compute runs outside the verifier lock (golden runs are the
// expensive part) and its result is published to both cache layers.
func (v *Verifier) ExpectedCustom(kind string, input []uint32, compute func() (*core.Measurement, error)) (*core.Measurement, error) {
	key := inputKey(input)
	if kind != "" {
		key = kind + "\x00" + key
	}
	v.mu.Lock()
	if m, ok := v.expectations[key]; ok {
		v.mu.Unlock()
		return m, nil
	}
	shared := v.shared
	v.mu.Unlock()
	if shared != nil {
		if m, ok := shared.GetExpectation(v.cacheKeyBase + key); ok {
			v.mu.Lock()
			v.expectations[key] = m
			v.mu.Unlock()
			return m, nil
		}
	}
	m, err := compute()
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	v.expectations[key] = m
	v.mu.Unlock()
	if shared != nil {
		shared.PutExpectation(v.cacheKeyBase+key, m)
	}
	return m, nil
}

// SeedExpectation publishes a golden measurement for an input into both
// cache layers under the plain end-of-run kind. The caller must have
// produced m by a faithful golden run of the verifier's program and
// device configuration on that input: streamed golden runs (whose hash
// and loop metadata equal the plain run's) seed the end-of-run
// expectation this way, so a streamed session's final Verify never
// re-simulates.
func (v *Verifier) SeedExpectation(input []uint32, m *core.Measurement) {
	key := inputKey(input)
	v.mu.Lock()
	_, have := v.expectations[key]
	if !have {
		v.expectations[key] = m
	}
	shared := v.shared
	v.mu.Unlock()
	if !have && shared != nil {
		if _, ok := shared.GetExpectation(v.cacheKeyBase + key); !ok {
			shared.PutExpectation(v.cacheKeyBase+key, m)
		}
	}
}

func inputKey(input []uint32) string {
	b := make([]byte, 4*len(input))
	for i, w := range input {
		binary.LittleEndian.PutUint32(b[4*i:], w)
	}
	return string(b)
}

// Verify runs the full decision procedure on a report for a previously
// issued challenge.
func (v *Verifier) Verify(ch Challenge, rep *Report) Result {
	res := Result{Got: rep}

	// The challenge nonce is retired up front, whatever the verdict:
	// a misbehaving prover must not leave entries behind in the
	// issued-nonce set.
	issued := v.consumeNonce(ch.Nonce)

	// Protocol checks: right program, nonce echo, freshness.
	if rep.Program != v.id {
		return reject(res, ClassProtocol, fmt.Sprintf("program ID %v, expected %v", rep.Program, v.id))
	}
	if rep.Nonce != ch.Nonce {
		return reject(res, ClassProtocol, "nonce mismatch (replay?)")
	}
	if !issued {
		return reject(res, ClassProtocol, "nonce was never issued")
	}

	// Authenticity.
	if err := sig.Verify(v.pub, SignedPayload(rep), rep.Sig); err != nil {
		return reject(res, ClassSignature, err.Error())
	}

	// Golden-run comparison: V knows S and i, so the expected path is
	// fully determined.
	exp, err := v.expected(ch.Input)
	if err != nil {
		res.VerifierFault = true
		return reject(res, ClassProtocol, err.Error())
	}
	res.Expected = exp
	if rep.Hash == exp.Hash && loopsEqual(rep.Loops, exp.Loops) {
		res.Accepted = true
		res.Class = ClassAccepted
		return res
	}

	// Mismatch: diagnose which attack class fits.
	return v.classify(res, exp, rep)
}

// PendingChallenges reports the number of issued-but-unverified nonces
// (for leak detection and operational metrics).
func (v *Verifier) PendingChallenges() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.issued)
}

// ConsumeNonce atomically checks and retires an issued nonce (single
// use). Verify does this itself; protocol extensions layered on the
// verifier (internal/stream) call it when a session terminates before
// reaching Verify — mid-stream rejection or transport failure — so the
// issued-nonce set stays bounded.
func (v *Verifier) ConsumeNonce(n Nonce) bool { return v.consumeNonce(n) }

// consumeNonce atomically checks and retires a nonce (single use).
func (v *Verifier) consumeNonce(n Nonce) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.issued[n] {
		return false
	}
	delete(v.issued, n)
	return true
}

func reject(res Result, class Classification, finding string) Result {
	res.Accepted = false
	res.Class = class
	res.Findings = append(res.Findings, finding)
	return res
}

// classify maps a measurement mismatch to the paper's attack classes.
func (v *Verifier) classify(res Result, exp *core.Measurement, rep *Report) Result {
	res.Accepted = false

	// Class 2 (loop counter corruption): identical hash — the same set
	// of unique paths executed — and identical path structure, but the
	// counters differ. This is exactly the attack that A alone cannot
	// see and L exists to catch.
	if rep.Hash == exp.Hash && loopsStructurallyEqual(rep.Loops, exp.Loops) {
		res.Class = ClassLoopCounter
		for i := range rep.Loops {
			for j := range rep.Loops[i].Paths {
				got := rep.Loops[i].Paths[j].Count
				want := exp.Loops[i].Paths[j].Count
				if got != want {
					res.Findings = append(res.Findings, fmt.Sprintf(
						"loop %#x path %s: %d iterations, expected %d",
						rep.Loops[i].Entry, rep.Loops[i].Paths[j].Code, got, want))
				}
			}
		}
		return res
	}

	// CFG validation of the metadata: any statically impossible path is
	// hard evidence of a control-flow attack (class 3).
	violations := 0
	for _, rec := range rep.Loops {
		for _, wr := range v.graph.ValidateRecord(rec, v.devCfg.Monitor.IndirectBits) {
			if wr.Verdict == cfg.PathInvalid {
				violations++
				res.Findings = append(res.Findings, "CFG violation: "+wr.Reason)
			}
		}
	}
	if violations > 0 {
		res.Class = ClassControlFlow
		return res
	}

	// Everything reported is CFG-consistent but differs from the
	// expected execution under input i: a permissible-but-unintended
	// path (class 1, non-control data) — or a code-pointer attack whose
	// effects hide outside loop metadata; the hash mismatch flags it
	// either way.
	res.Class = ClassNonControlData
	if rep.Hash != exp.Hash {
		res.Findings = append(res.Findings, "measurement hash A differs from expected execution")
	}
	// A presence mismatch — no loop records where the expected execution
	// has them, or records where none are expected — is diagnosed
	// distinctly: suppressed or fabricated metadata is stronger evidence
	// than a generic content difference.
	switch {
	case len(rep.Loops) == 0 && len(exp.Loops) > 0:
		res.Findings = append(res.Findings, fmt.Sprintf(
			"loop metadata L absent: expected execution records %d loops, report has none", len(exp.Loops)))
	case len(rep.Loops) > 0 && len(exp.Loops) == 0:
		res.Findings = append(res.Findings, fmt.Sprintf(
			"loop metadata L unexpected: report records %d loops, expected execution has none", len(rep.Loops)))
	case !loopsEqual(rep.Loops, exp.Loops):
		res.Findings = append(res.Findings, "loop metadata L differs from expected execution")
	}
	return res
}

// loopsEqual compares metadata exactly.
func loopsEqual(a, b []monitor.LoopRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !loopEqual(a[i], b[i], true) {
			return false
		}
	}
	return true
}

// loopsStructurallyEqual ignores counts: same loops, same path IDs in
// the same first-occurrence order, same indirect targets.
func loopsStructurallyEqual(a, b []monitor.LoopRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !loopEqual(a[i], b[i], false) {
			return false
		}
	}
	return true
}

func loopEqual(x, y monitor.LoopRecord, counts bool) bool {
	if x.Entry != y.Entry || x.Exit != y.Exit || x.Partial != y.Partial {
		return false
	}
	if counts && (x.Iterations != y.Iterations || x.IndirectOverflows != y.IndirectOverflows) {
		return false
	}
	if len(x.Paths) != len(y.Paths) || len(x.IndirectTargets) != len(y.IndirectTargets) {
		return false
	}
	for i := range x.Paths {
		if x.Paths[i].Code != y.Paths[i].Code {
			return false
		}
		if counts && x.Paths[i].Count != y.Paths[i].Count {
			return false
		}
	}
	for i := range x.IndirectTargets {
		if x.IndirectTargets[i] != y.IndirectTargets[i] {
			return false
		}
	}
	return true
}
