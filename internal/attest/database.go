package attest

import (
	"crypto/ed25519"
	"fmt"
	"sort"

	"lofat/internal/sig"
)

func verifySig(pub ed25519.PublicKey, rep *Report) error {
	return sig.Verify(pub, SignedPayload(rep), rep.Sig)
}

// MeasurementDB is the verifier's precomputed database of valid
// measurements, the deployment mode C-FLAT describes and §3 implies:
// "V checks whether the reported path P resembles a valid path in
// CFG(S) under input i". For devices whose input space is small and
// enumerable (command sets, sensor ranges), the verifier computes every
// expected (A, L) offline and later verifies reports without running
// simulations online — the cheap path for constrained verifiers.
type MeasurementDB struct {
	byInput map[string]dbEntry
}

type dbEntry struct {
	input []uint32
	hash  [64]byte
	lsize int
	lsig  string // canonical serialization of L for exact comparison
}

// Precompute golden-runs every input and stores the expected
// measurements. It reuses the verifier's simulator and device
// configuration, so the database is consistent with online golden runs.
func (v *Verifier) Precompute(inputs [][]uint32) (*MeasurementDB, error) {
	db := &MeasurementDB{byInput: make(map[string]dbEntry, len(inputs))}
	for _, in := range inputs {
		meas, err := v.expected(in)
		if err != nil {
			return nil, fmt.Errorf("attest: precompute %v: %w", in, err)
		}
		rep := Report{Hash: meas.Hash, Loops: meas.Loops}
		db.byInput[inputKey(in)] = dbEntry{
			input: append([]uint32(nil), in...),
			hash:  meas.Hash,
			lsize: MetadataSize(meas.Loops),
			lsig:  string(SignedPayload(&rep)),
		}
	}
	return db, nil
}

// Size reports the number of precomputed inputs.
func (db *MeasurementDB) Size() int { return len(db.byInput) }

// Inputs lists the precomputed inputs (sorted for determinism).
func (db *MeasurementDB) Inputs() [][]uint32 {
	keys := make([]string, 0, len(db.byInput))
	for k := range db.byInput {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]uint32, len(keys))
	for i, k := range keys {
		out[i] = db.byInput[k].input
	}
	return out
}

// Lookup reports whether a report's measurement matches the precomputed
// expectation for the input. It performs NO simulation: only database
// comparison. Signature and freshness must already be checked by the
// caller (Verifier.VerifyWithDB does both).
func (db *MeasurementDB) Lookup(input []uint32, rep *Report) (bool, error) {
	e, ok := db.byInput[inputKey(input)]
	if !ok {
		return false, fmt.Errorf("attest: input %v not in measurement database", input)
	}
	if rep.Hash != e.hash {
		return false, nil
	}
	cmp := Report{Hash: rep.Hash, Loops: rep.Loops}
	return string(SignedPayload(&cmp)) == e.lsig, nil
}

// VerifyWithDB is the offline verification path: protocol checks and
// signature as usual, then a pure database lookup instead of a golden
// run. Mismatches are still classified with the online machinery (which
// may simulate) so the diagnosis quality is unchanged.
func (v *Verifier) VerifyWithDB(db *MeasurementDB, ch Challenge, rep *Report) Result {
	res := Result{Got: rep}
	// Retire the challenge nonce up front, whatever the verdict (see
	// Verify).
	issued := v.consumeNonce(ch.Nonce)
	if rep.Program != v.id {
		return reject(res, ClassProtocol, "program ID mismatch")
	}
	if rep.Nonce != ch.Nonce {
		return reject(res, ClassProtocol, "nonce mismatch (replay?)")
	}
	if !issued {
		return reject(res, ClassProtocol, "nonce was never issued")
	}
	if err := verifySig(v.pub, rep); err != nil {
		return reject(res, ClassSignature, err.Error())
	}
	ok, err := db.Lookup(ch.Input, rep)
	if err != nil {
		return reject(res, ClassProtocol, err.Error())
	}
	if ok {
		res.Accepted = true
		res.Class = ClassAccepted
		return res
	}
	// Fall back to the full classifier for the diagnosis.
	exp, err := v.expected(ch.Input)
	if err != nil {
		return reject(res, ClassProtocol, err.Error())
	}
	res.Expected = exp
	return v.classify(res, exp, rep)
}
