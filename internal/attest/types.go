// Package attest implements the LO-FAT remote attestation protocol of
// Figure 2: the verifier V sends (idS, i, N); the prover P executes S
// with input i under LO-FAT observation, obtains the path measurement
// P = (A, L), and returns R = sign(P || N; sk). V checks the signature,
// freshness, and whether the reported path is valid for S under i.
package attest

import (
	"fmt"
	"strings"

	"lofat/internal/core"
	"lofat/internal/hashengine"
	"lofat/internal/monitor"
)

// ProgramID identifies the attested binary: a truncated SHA3-512 of the
// text image. Binding the report to the ID models the paper's
// prerequisite that "conventional static (binary) attestation assures P
// is executing the correct and unmodified program S".
type ProgramID [32]byte

// ComputeProgramID hashes a text image into its identity.
func ComputeProgramID(text []byte) ProgramID {
	var id ProgramID
	sum := hashengine.Sum512(text)
	copy(id[:], sum[:32])
	return id
}

// String renders the ID in short hex form.
func (id ProgramID) String() string { return fmt.Sprintf("%x", id[:8]) }

// NonceSize is the challenge nonce length in bytes.
const NonceSize = 32

// Nonce is the verifier's freshness challenge.
type Nonce [NonceSize]byte

// Challenge is V's attestation request: program identity, program input
// i, and the nonce N.
type Challenge struct {
	Program ProgramID
	Nonce   Nonce
	Input   []uint32
}

// Report is P's attestation response: the measurement (A, L), the
// execution outcome, and the signature R over everything plus N.
type Report struct {
	Program  ProgramID
	Nonce    Nonce
	Hash     [hashengine.DigestSize]byte // A
	Loops    []monitor.LoopRecord        // L
	ExitCode uint32
	Sig      []byte // R
}

// Classification labels the verifier's diagnosis, mapped to the paper's
// attack classes of Figure 1.
type Classification uint8

// Verification outcomes.
const (
	// ClassAccepted: measurement matches the expected execution.
	ClassAccepted Classification = iota
	// ClassProtocol: stale nonce, wrong program, malformed report.
	ClassProtocol
	// ClassSignature: signature verification failed (forgery/tamper).
	ClassSignature
	// ClassLoopCounter: hash and path structure match but iteration
	// counts differ — attack class 2 (loop counter corruption).
	ClassLoopCounter
	// ClassControlFlow: the reported path violates the CFG — attack
	// class 3 (code pointer overwrite, e.g. ROP).
	ClassControlFlow
	// ClassNonControlData: the path is CFG-consistent but not the
	// expected path for input i — attack class 1 (non-control data).
	ClassNonControlData
)

// String names the classification.
func (c Classification) String() string {
	switch c {
	case ClassAccepted:
		return "accepted"
	case ClassProtocol:
		return "protocol-violation"
	case ClassSignature:
		return "bad-signature"
	case ClassLoopCounter:
		return "loop-counter-attack"
	case ClassControlFlow:
		return "control-flow-attack"
	case ClassNonControlData:
		return "non-control-data-attack"
	}
	return "unknown"
}

// Result is the verifier's decision.
type Result struct {
	Accepted bool
	Class    Classification
	// Findings are human-readable diagnostics supporting the decision.
	Findings []string
	// Expected and Got expose the compared measurements for reporting.
	Expected *core.Measurement
	Got      *Report
	// VerifierFault marks a rejection caused by a verifier-side failure
	// (the golden run could not be computed), not by anything the
	// prover sent: the report may be perfectly honest, the verifier
	// just could not check it. Per-device health policy (quarantine,
	// circuit breaking) must not attribute such a rejection to the
	// device.
	VerifierFault bool
}

// HasFinding reports whether any finding contains the substring — the
// assertion conformance and protocol tests make about WHY a report was
// rejected, not only that it was.
func (r Result) HasFinding(sub string) bool {
	for _, f := range r.Findings {
		if strings.Contains(f, sub) {
			return true
		}
	}
	return false
}

func (r Result) String() string {
	verdict := "REJECTED"
	if r.Accepted {
		verdict = "ACCEPTED"
	}
	return fmt.Sprintf("%s (%s)", verdict, r.Class)
}
