package stream_test

import (
	"crypto/rand"
	"net"
	"testing"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/cpu"
	"lofat/internal/hashengine"
	"lofat/internal/isa"
	"lofat/internal/sig"
	"lofat/internal/stream"
	"lofat/internal/trace"
	"lofat/internal/workloads"
)

// rig builds a streamed prover/verifier pair for a workload.
func rig(t testing.TB, w workloads.Workload, segmentEvents int) (*stream.Prover, *stream.Verifier) {
	t.Helper()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ap := attest.NewProver(prog, core.Config{}, keys)
	av, err := attest.NewVerifier(prog, core.Config{}, keys.Public(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return stream.NewProver(ap), stream.NewVerifier(av, stream.Config{SegmentEvents: segmentEvents})
}

// runSession drives a full in-memory session: the prover's emit
// callback feeds the verifier session directly, and a divergence
// verdict aborts the run through the emit error, exactly like a
// dropped transport would.
func runSession(t testing.TB, p *stream.Prover, v *stream.Verifier, input []uint32) stream.Result {
	t.Helper()
	s, open, err := v.Open(input)
	if err != nil {
		t.Fatal(err)
	}
	var verdict *stream.Result
	abort := func() error { return net.ErrClosed }
	cr, err := p.Stream(*open, func(sr *stream.SegmentReport) error {
		if res := s.Consume(sr); res != nil {
			verdict = res
			return abort()
		}
		return nil
	})
	if verdict != nil {
		if err == nil {
			t.Fatal("prover completed despite mid-stream rejection")
		}
		return *verdict
	}
	if err != nil {
		t.Fatal(err)
	}
	return s.Close(cr)
}

// collectEdges is the independent oracle: it replays a (possibly
// attacked) execution with a bare trace tap — no stream machinery —
// and records the raw control-flow edge sequence.
func collectEdges(t testing.TB, w workloads.Workload, adv attest.Adversary) []hashengine.Pair {
	t.Helper()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	mach, err := cpu.Load(prog, cpu.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var edges []hashengine.Pair
	mach.CPU.Trace = trace.SinkFunc(func(e trace.Event) {
		if e.Kind != isa.KindNone {
			src, dest := e.SrcDest()
			edges = append(edges, hashengine.Pair{Src: src, Dest: dest})
		}
	})
	mach.CPU.Input = w.Input
	for !mach.CPU.Halted {
		if adv != nil {
			if err := adv(mach); err != nil {
				t.Fatal(err)
			}
		}
		if err := mach.CPU.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return edges
}

// Honest streamed runs are accepted for every workload, and streaming
// does not perturb the device measurement: the close report's (A, L)
// match a plain end-of-run measurement.
func TestHonestStreamAccepted(t *testing.T) {
	for _, w := range workloads.All() {
		t.Run(w.Name, func(t *testing.T) {
			p, v := rig(t, w, 16)
			res := runSession(t, p, v, w.Input)
			if !res.Accepted {
				t.Fatalf("honest streamed run rejected: %v %v", res.Class, res.Findings)
			}
			if res.EarlyAbort {
				t.Error("honest run flagged as early abort")
			}
			if res.Segments == 0 && len(collectEdges(t, w, nil)) > 0 {
				t.Error("no segments consumed for a run with control-flow events")
			}
			prog, err := w.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			plain, _, err := attest.Measure(prog, core.Config{}, w.Input, 50_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if res.Got.Hash != plain.Hash {
				t.Error("streamed measurement hash differs from plain measurement")
			}
			if v.Inner().PendingChallenges() != 0 {
				t.Errorf("leaked %d nonces", v.Inner().PendingChallenges())
			}
		})
	}
}

// Attacked runs are rejected at the FIRST divergent segment, with the
// segment index and offending edge matching an independent edge-level
// diff of the benign vs attacked traces, and strictly earlier than the
// end of the run.
func TestAttacksLocalizedAtFirstDivergentSegment(t *testing.T) {
	const n = 8
	for _, atk := range workloads.Attacks() {
		if atk.Expect == attest.ClassAccepted {
			continue // pure data attacks are invisible by design
		}
		t.Run(atk.Name, func(t *testing.T) {
			prog, err := atk.Workload.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			p, v := rig(t, atk.Workload, n)
			p.Inner().Adversary = atk.Build(prog)

			// Oracle: first index where the attacked edge stream leaves
			// the benign one.
			benign := collectEdges(t, atk.Workload, nil)
			attacked := collectEdges(t, atk.Workload, atk.Build(prog))
			j := 0
			for j < len(benign) && j < len(attacked) && benign[j] == attacked[j] {
				j++
			}
			if j == len(benign) && j == len(attacked) {
				t.Fatal("attack did not change the edge stream")
			}

			res := runSession(t, p, v, atk.Workload.Input)
			if res.Accepted {
				t.Fatalf("attacked run accepted")
			}
			if !res.EarlyAbort {
				t.Error("attacked run not aborted early")
			}
			if res.Class != atk.Expect {
				t.Errorf("class = %v, want %v (findings: %v)", res.Class, atk.Expect, res.Findings)
			}
			d := res.Divergence
			if d == nil {
				t.Fatalf("no divergence localized (findings: %v)", res.Findings)
			}
			if want := uint32(j / n); d.Segment != want {
				t.Errorf("divergent segment = %d, want %d", d.Segment, want)
			}
			if d.Event != uint64(j) {
				t.Errorf("divergent event = %d, want %d", d.Event, j)
			}
			if j < len(attacked) {
				if d.Got == nil || *d.Got != attacked[j] {
					t.Errorf("offending edge = %v, want %#x->%#x", d.Got, attacked[j].Src, attacked[j].Dest)
				}
			}
			// Strictly earlier than end-of-run: the attacked run has
			// more segments than the session consumed.
			total := uint32((len(attacked) + n - 1) / n)
			if res.Segments >= total {
				t.Errorf("consumed %d segments, attacked run has %d: no early abort advantage", res.Segments, total)
			}
			if v.Inner().PendingChallenges() != 0 {
				t.Errorf("leaked %d nonces", v.Inner().PendingChallenges())
			}
		})
	}
}

// The full wire path: RequestStream over a pipe against ServeConn.
func TestStreamOverTransport(t *testing.T) {
	w := workloads.SyringePump()
	p, v := rig(t, w, 16)
	reg := stream.NewRegistry()
	reg.Register(p)

	t.Run("honest", func(t *testing.T) {
		client, server := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- reg.ServeConn(server) }()
		res, err := stream.RequestStream(client, v, w.Input)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("honest stream rejected: %v %v", res.Class, res.Findings)
		}
		client.Close()
		server.Close()
		<-done
	})

	t.Run("attacked-aborts-mid-run", func(t *testing.T) {
		atk, _ := workloads.AttackByName("loop-counter")
		prog, err := atk.Workload.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		ap, av := rig(t, atk.Workload, 8)
		ap.Inner().Adversary = atk.Build(prog)
		r2 := stream.NewRegistry()
		r2.Register(ap)

		client, server := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- r2.ServeConn(server) }()
		res, err := stream.RequestStream(client, av, atk.Workload.Input)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted || !res.EarlyAbort {
			t.Fatalf("expected early-abort rejection, got %+v", res.Result)
		}
		if res.Class != attest.ClassLoopCounter {
			t.Errorf("class = %v, want %v", res.Class, attest.ClassLoopCounter)
		}
		// Dropping the transport must cut the prover off mid-run: the
		// serve loop exits with the aborted-stream error.
		client.Close()
		if err := <-done; err == nil {
			t.Error("prover served the attacked run to completion")
		}
		server.Close()
	})
}

// Protocol and authenticity violations are rejected at the right
// layer: out-of-order segments, tampered chains (signature), replays
// across sessions (nonce), and a close arriving before the stream is
// complete.
func TestStreamProtocolViolations(t *testing.T) {
	w := workloads.SyringePump()
	p, v := rig(t, w, 16)

	// collect opens a session and runs an honest prover against its
	// nonce, returning the live session plus the wire messages.
	collect := func() (*stream.Session, []*stream.SegmentReport, *stream.CloseReport) {
		t.Helper()
		s, open, err := v.Open(w.Input)
		if err != nil {
			t.Fatal(err)
		}
		var segs []*stream.SegmentReport
		cr, err := p.Stream(*open, func(sr *stream.SegmentReport) error {
			segs = append(segs, sr)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) < 2 {
			t.Fatalf("need >=2 segments, got %d", len(segs))
		}
		return s, segs, cr
	}

	// Out-of-order segment (matching nonce, wrong index).
	s, segs, _ := collect()
	if res := s.Consume(segs[1]); res == nil || res.Accepted || res.Class != attest.ClassProtocol {
		t.Errorf("out-of-order segment verdict = %+v", res)
	}

	// Tampered chain: the signature covers it.
	s, segs, _ = collect()
	bad := *segs[0]
	bad.Chain[0] ^= 1
	if res := s.Consume(&bad); res == nil || res.Accepted || res.Class != attest.ClassSignature {
		t.Errorf("tampered chain verdict = %+v", res)
	}

	// Replay into a different session: the nonce echo catches it.
	sA, segsA, _ := collect()
	sB, _, _ := collect()
	if res := sB.Consume(segsA[0]); res == nil || res.Accepted || res.Class != attest.ClassProtocol {
		t.Errorf("replayed segment verdict = %+v", res)
	}
	sA.Abort()

	// Close before the stream is complete: an early end, not a pass.
	s, segs, cr := collect()
	if res := s.Consume(segs[0]); res != nil {
		t.Fatalf("honest first segment rejected: %+v", res)
	}
	if res := s.Close(cr); res.Accepted {
		t.Error("incomplete stream accepted at close")
	}

	if n := v.Inner().PendingChallenges(); n != 0 {
		t.Errorf("leaked %d nonces", n)
	}
}
