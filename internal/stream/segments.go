package stream

import (
	"lofat/internal/core"
	"lofat/internal/hashengine"
)

// ChunkEdges reproduces the emitter's segmentation over a raw
// control-flow edge stream: full windows of windowEvents edges plus a
// partial tail, with the chain value extended per segment exactly as
// Emitter.seal does (segment k's chain is SHA3-512 over segment k-1's
// chain followed by the window's edges, starting from the zero digest).
//
// It exists so stream peers other than a live core — replay tooling,
// the conformance harness's synthetic provers, tests — can produce a
// segment stream that is bit-compatible with what an Emitter tapping
// the same edge sequence would have sealed. An empty edge stream
// yields no segments, matching a run with no measured control-flow
// events. The window is defaulted exactly as NewEmitter defaults it —
// and, like the emitter, deliberately NOT clamped to MaxSegmentEvents
// (that bound is protocol admission policy, enforced where windows are
// negotiated; applying it here would silently diverge from an emitter
// configured with the same oversized window).
func ChunkEdges(edges []hashengine.Pair, windowEvents int) []core.Segment {
	if windowEvents <= 0 {
		windowEvents = DefaultSegmentEvents
	}
	var (
		chain [hashengine.DigestSize]byte
		segs  []core.Segment
	)
	for start := 0; start < len(edges); start += windowEvents {
		end := min(start+windowEvents, len(edges))
		window := edges[start:end]
		chain = hashengine.ChainPairs(chain, window)
		segs = append(segs, core.Segment{
			Index:  uint32(len(segs)),
			Events: uint32(len(window)),
			Chain:  chain,
			Edges:  append([]hashengine.Pair(nil), window...),
		})
	}
	return segs
}

// FlattenSegments concatenates the edge windows of a segment chain back
// into the raw control-flow edge stream — the inverse of ChunkEdges for
// golden measurements that retained their segments.
func FlattenSegments(segs []core.Segment) []hashengine.Pair {
	n := 0
	for i := range segs {
		n += len(segs[i].Edges)
	}
	out := make([]hashengine.Pair, 0, n)
	for i := range segs {
		out = append(out, segs[i].Edges...)
	}
	return out
}
