package stream

import (
	"fmt"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/cpu"
)

// Prover is the device-side half of segmented attestation: it wraps an
// attest.Prover (program image, hardware configuration, signing key,
// adversary hook) and answers stream open requests by executing S(i)
// under a segment emitter, signing each checkpoint as it is sealed.
type Prover struct {
	ap *attest.Prover
}

// NewProver wraps an attest prover for streaming.
func NewProver(ap *attest.Prover) *Prover { return &Prover{ap: ap} }

// Inner exposes the wrapped attest prover (the same endpoint usually
// serves both protocols).
func (p *Prover) Inner() *attest.Prover { return p.ap }

// ProgramID returns the identity of the installed binary.
func (p *Prover) ProgramID() attest.ProgramID { return p.ap.ProgramID() }

// Stream executes an open request under segmented observation. emit is
// called with each signed segment report in stream order; its error
// aborts the execution (the transport layer maps a dead connection —
// a verifier that rejected mid-stream and hung up — onto exactly this
// path, so an attacked device stops running the moment the verifier
// gives up on it). On success the signed close report is returned; the
// caller transmits it as the final message of the session.
func (p *Prover) Stream(open OpenRequest, emit func(*SegmentReport) error) (*CloseReport, error) {
	if open.Program != p.ap.ProgramID() {
		return nil, fmt.Errorf("stream: open for program %v, running %v", open.Program, p.ap.ProgramID())
	}
	n := int(open.SegmentEvents)
	if n <= 0 || n > MaxSegmentEvents {
		return nil, fmt.Errorf("stream: segment window %d out of range [1, %d]", open.SegmentEvents, MaxSegmentEvents)
	}

	mach, err := cpu.Load(p.ap.Program(), cpu.LoadOptions{})
	if err != nil {
		return nil, err
	}
	devCfg := p.ap.DeviceConfig()
	dev := core.NewDevice(devCfg)
	em := NewEmitter(dev, devCfg, n, func(seg core.Segment) error {
		sr := &SegmentReport{
			Program: open.Program,
			Nonce:   open.Nonce,
			Index:   seg.Index,
			Events:  seg.Events,
			Chain:   seg.Chain,
			Edges:   seg.Edges,
		}
		sr.Sig = p.ap.Sign(SegmentPayload(sr))
		return emit(sr)
	})
	// Per-event delivery, deliberately not the batched port: the run
	// loop polls em.Err() every step so a verifier-side abort stops the
	// execution within one instruction, not one batch.
	mach.CPU.Trace = em
	mach.CPU.Input = open.Input
	mach.CPU.IRQ = devCfg.IRQ

	adv := p.ap.Adversary
	for !mach.CPU.Halted {
		if mach.CPU.Retired >= p.ap.MaxInstructions {
			return nil, fmt.Errorf("stream: instruction budget exhausted at pc=%#08x", mach.CPU.PC)
		}
		if adv != nil {
			if err := adv(mach); err != nil {
				return nil, fmt.Errorf("stream: adversary: %w", err)
			}
		}
		if err := mach.CPU.Step(); err != nil {
			return nil, err
		}
		if err := em.Err(); err != nil {
			return nil, fmt.Errorf("stream: aborted mid-run: %w", err)
		}
	}
	meas, err := em.Finalize()
	if err != nil {
		return nil, fmt.Errorf("stream: aborted at final segment: %w", err)
	}

	rep := attest.Report{
		Program:  p.ap.ProgramID(),
		Nonce:    open.Nonce,
		Hash:     meas.Hash,
		Loops:    meas.Loops,
		ExitCode: mach.CPU.ExitCode,
	}
	rep.Sig = p.ap.Sign(attest.SignedPayload(&rep))
	return &CloseReport{
		Report:   rep,
		Segments: em.SegmentCount(),
		Chain:    em.ChainValue(),
	}, nil
}
