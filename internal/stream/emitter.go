package stream

import (
	"fmt"

	"lofat/internal/asm"
	"lofat/internal/core"
	"lofat/internal/cpu"
	"lofat/internal/hashengine"
	"lofat/internal/isa"
	"lofat/internal/trace"
)

// SegmentFunc receives each sealed segment as the run streams. A
// non-nil error stops measurement: the prover's run loop observes it
// and aborts the execution — this is how a verifier-side early abort
// propagates back into the device mid-run.
type SegmentFunc func(core.Segment) error

// Emitter is the device-side checkpoint unit: a trace.Sink wrapper
// over core.Device. Every retired instruction is forwarded to the
// wrapped device unchanged (the end-of-run measurement (A, L) is
// exactly what it would be without streaming); in parallel the emitter
// records the (Src, Dest) edge of each measured control-flow event and
// seals a chained core.Segment every windowEvents edges. Like the
// device, it applies the configured attestation Region: events sourced
// outside the region are not part of the edge stream.
//
// With a nil SegmentFunc the emitter retains the sealed segments and
// attaches them to the final measurement — the golden-run mode the
// verifier uses to build per-segment expectations.
type Emitter struct {
	dev    *core.Device
	region core.Region
	window int
	emit   SegmentFunc

	chain  [hashengine.DigestSize]byte
	edges  []hashengine.Pair
	index  uint32
	events uint64
	segs   []core.Segment
	err    error
}

// NewEmitter wraps a LO-FAT device (built from devCfg) in a segment
// emitter with the given checkpoint window (<=0 selects
// DefaultSegmentEvents). emit receives sealed segments as the run
// streams; nil retains them for the final measurement instead.
func NewEmitter(dev *core.Device, devCfg core.Config, windowEvents int, emit SegmentFunc) *Emitter {
	if windowEvents <= 0 {
		windowEvents = DefaultSegmentEvents
	}
	return &Emitter{
		dev:    dev,
		region: devCfg.Region,
		window: windowEvents,
		emit:   emit,
		edges:  make([]hashengine.Pair, 0, windowEvents),
	}
}

// Retire implements trace.Sink.
func (e *Emitter) Retire(ev trace.Event) {
	e.dev.Retire(ev)
	if e.err != nil {
		return
	}
	if ev.Kind == isa.KindNone || !e.region.Contains(ev.PC) {
		return
	}
	src, dest := ev.SrcDest()
	e.edges = append(e.edges, hashengine.Pair{Src: src, Dest: dest})
	e.events++
	if len(e.edges) >= e.window {
		e.seal()
	}
}

// seal closes the current window into a segment and extends the chain.
func (e *Emitter) seal() {
	e.chain = hashengine.ChainPairs(e.chain, e.edges)
	seg := core.Segment{
		Index:  e.index,
		Events: uint32(len(e.edges)),
		Chain:  e.chain,
		Edges:  append([]hashengine.Pair(nil), e.edges...),
	}
	e.index++
	e.edges = e.edges[:0]
	if e.emit == nil {
		e.segs = append(e.segs, seg)
		return
	}
	if err := e.emit(seg); err != nil {
		e.err = err
	}
}

// RetireBatch implements trace.BatchSink, the core's fast trace port.
func (e *Emitter) RetireBatch(events []trace.Event) {
	for i := range events {
		e.Retire(events[i])
	}
}

// Sync implements trace.BatchSink by forwarding the core clock to the
// wrapped device (the emitter itself has no cycle state).
func (e *Emitter) Sync(cycle uint64) { e.dev.Sync(cycle) }

// Err reports the first SegmentFunc error; the prover's run loop polls
// it to abort an execution whose verifier has hung up.
func (e *Emitter) Err() error { return e.err }

// Events reports the number of control-flow edges observed so far.
func (e *Emitter) Events() uint64 { return e.events }

// SegmentCount reports the number of segments sealed so far.
func (e *Emitter) SegmentCount() uint32 { return e.index }

// ChainValue returns the current chain head.
func (e *Emitter) ChainValue() [hashengine.DigestSize]byte { return e.chain }

// Finalize seals the partial tail window (if any), finalizes the
// wrapped device, and returns the measurement — with Segments attached
// in golden-run mode. The SegmentFunc error, if any, is returned so
// callers do not mistake an aborted run for a complete one.
func (e *Emitter) Finalize() (core.Measurement, error) {
	if len(e.edges) > 0 && e.err == nil {
		e.seal()
	}
	m := e.dev.Finalize()
	m.Segments = e.segs
	return m, e.err
}

// MeasureStream golden-runs a program under a segment emitter and
// returns the measurement with per-segment checkpoints retained — the
// verifier-side half of segmented attestation. It mirrors
// attest.Measure, adding the streaming instrumentation.
func MeasureStream(prog *asm.Program, devCfg core.Config, input []uint32, segmentEvents int, budget uint64) (core.Measurement, uint32, error) {
	mach, err := cpu.AcquireMachine(prog, cpu.LoadOptions{})
	if err != nil {
		return core.Measurement{}, 0, err
	}
	defer cpu.ReleaseMachine(mach)
	dev := core.AcquireDevice(devCfg)
	defer core.ReleaseDevice(dev)
	em := NewEmitter(dev, devCfg, segmentEvents, nil)
	// Golden runs take the batched trace port; the control-flow-only
	// mask is exact here because the emitter ignores non-control-flow
	// events and the device accepts the mask whenever no Region is set.
	mach.CPU.TraceBatch = em
	mach.CPU.TraceCFOnly = dev.CFOnlyCompatible()
	mach.CPU.Input = input
	mach.CPU.IRQ = devCfg.IRQ

	for !mach.CPU.Halted {
		if mach.CPU.Retired >= budget {
			return core.Measurement{}, 0, fmt.Errorf("stream: instruction budget exhausted at pc=%#08x", mach.CPU.PC)
		}
		if err := mach.CPU.Step(); err != nil {
			return core.Measurement{}, 0, err
		}
	}
	m, _ := em.Finalize() // emit is nil: no SegmentFunc error possible
	return m, mach.CPU.ExitCode, nil
}
