package stream

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"lofat/internal/attest"
)

// Registry hosts streamable programs on one prover device and serves
// both protocols on a single connection: classic challenge frames are
// delegated to the wrapped attest provers, stream opens run a full
// segmented session.
type Registry struct {
	mu      sync.RWMutex
	provers map[attest.ProgramID]*Prover
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{provers: make(map[attest.ProgramID]*Prover)}
}

// Register adds a prover; re-registering the same program replaces it.
func (r *Registry) Register(p *Prover) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.provers[p.ProgramID()] = p
}

// Lookup returns the prover for a program ID.
func (r *Registry) Lookup(id attest.ProgramID) (*Prover, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.provers[id]
	return p, ok
}

// ServeConn handles frames on one connection until EOF. Stream opens
// execute the program with segments written back as they seal; if a
// segment write fails (the verifier rejected mid-stream and dropped
// the transport) the execution is aborted — the device stops running
// the attacked workload instead of finishing it.
func (r *Registry) ServeConn(conn io.ReadWriter) error {
	for {
		typ, payload, err := attest.ReadFrame(conn)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		switch typ {
		case attest.MsgChallenge:
			err := attest.HandleChallenge(conn, payload, func(id attest.ProgramID) (*attest.Prover, bool) {
				p, ok := r.Lookup(id)
				if !ok {
					return nil, false
				}
				return p.Inner(), true
			})
			if err != nil {
				return err
			}
		case MsgStreamOpen:
			open, err := DecodeOpen(payload)
			if err != nil {
				return err
			}
			p, ok := r.Lookup(open.Program)
			if !ok {
				if err := attest.WriteFrame(conn, attest.MsgError, []byte("unknown program")); err != nil {
					return err
				}
				continue
			}
			cr, err := p.Stream(*open, func(sr *SegmentReport) error {
				return attest.WriteFrame(conn, MsgSegment, EncodeSegment(sr))
			})
			if err != nil {
				// Report the failure without leaking internals; if even
				// the error frame cannot be written the transport is
				// dead (mid-stream abort) and the connection is done.
				if werr := attest.WriteFrame(conn, attest.MsgError, []byte("stream attestation failed")); werr != nil {
					return err
				}
				continue
			}
			if err := attest.WriteFrame(conn, MsgStreamClose, EncodeClose(cr)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("stream: unexpected message type %d", typ)
		}
	}
}

// NewServer wraps the registry in a TCP server on the attest listener
// plumbing (bind with Listen, stop with Close).
func NewServer(r *Registry) *attest.Server {
	return attest.NewServerFunc(r.ServeConn)
}

// RequestStream drives one streamed attestation session from the
// verifier side: open, consume segments as they arrive, and either
// reject at the first divergent segment — the early abort; the caller
// should then drop the connection so the prover's next segment write
// fails and the run stops — or verify the close report. Transport
// failures retire the session nonce, mirroring attest.RequestAttestation.
func RequestStream(conn io.ReadWriter, v *Verifier, input []uint32) (Result, error) {
	return RequestStreamTimeout(conn, v, input, attest.Timeouts{})
}

// RequestStreamTimeout is RequestStream with per-phase I/O deadlines:
// the open write and every segment read arm their own deadline when the
// conn supports them (attest.DeadlineConn). The read deadline bounds
// the gap between consecutive segments, so a prover that opens a
// session and then stalls — mid-frame or between checkpoints — fails
// the round with a timeout instead of wedging the verifier for as long
// as the device pretends to run. Deadlines armed here are cleared
// before returning.
func RequestStreamTimeout(conn io.ReadWriter, v *Verifier, input []uint32, to attest.Timeouts) (Result, error) {
	s, open, err := v.Open(input)
	if err != nil {
		// Session creation failed verifier-side (golden run, cache,
		// nonce entropy): no bytes moved, so the failure says nothing
		// about the device.
		return Result{}, &attest.LocalError{Err: err}
	}
	defer to.Disarm(conn)
	fail := func(err error) (Result, error) {
		s.Abort()
		return Result{}, err
	}
	to.ArmWrite(conn)
	if err := attest.WriteFrame(conn, MsgStreamOpen, EncodeOpen(open)); err != nil {
		return fail(err)
	}
	for {
		to.ArmRead(conn)
		typ, payload, err := attest.ReadFrame(conn)
		if err != nil {
			return fail(err)
		}
		switch typ {
		case MsgSegment:
			sr, err := DecodeSegment(payload)
			if err != nil {
				return fail(err)
			}
			if res := s.Consume(sr); res != nil {
				return *res, nil
			}
		case MsgStreamClose:
			cr, err := DecodeClose(payload)
			if err != nil {
				return fail(err)
			}
			return s.Close(cr), nil
		case attest.MsgError:
			return fail(fmt.Errorf("stream: prover error: %s", payload))
		default:
			return fail(fmt.Errorf("stream: unexpected message type %d", typ))
		}
	}
}
