package stream

import (
	"encoding/binary"
	"fmt"

	"lofat/internal/attest"
	"lofat/internal/hashengine"
)

// Wire format: the attest conventions — little-endian integers,
// length-prefixed slices, canonical encodings (one encoding per value)
// so signed payloads are deterministic. Messages ride the attest frame
// transport on the type bytes below (attest owns 1-15).
const (
	// MsgStreamOpen carries an OpenRequest (verifier → prover).
	MsgStreamOpen byte = 16
	// MsgSegment carries a SegmentReport (prover → verifier).
	MsgSegment byte = 17
	// MsgStreamClose carries a CloseReport (prover → verifier).
	MsgStreamClose byte = 18
)

// OpenRequest opens a streamed attestation session: the classic
// challenge (program identity, input i, nonce N) plus the checkpoint
// window the prover must seal segments at.
type OpenRequest struct {
	Program attest.ProgramID
	Nonce   attest.Nonce
	Input   []uint32
	// SegmentEvents is the checkpoint window N requested by the
	// verifier.
	SegmentEvents uint32
}

// SegmentReport is one chained sub-measurement: checkpoint k of the
// streamed run. Chain commits to the full edge-stream prefix; Edges is
// the raw window, authenticated through Chain (the verifier recomputes
// the link before trusting it). Sig covers SegmentPayload with the
// device key.
type SegmentReport struct {
	Program attest.ProgramID
	Nonce   attest.Nonce
	Index   uint32
	Events  uint32
	Chain   [hashengine.DigestSize]byte
	Edges   []hashengine.Pair
	Sig     []byte
}

// CloseReport ends a streamed session: the classic signed end-of-run
// report (A, L, exit code — verified exactly like a Figure 2 report)
// plus the stream framing the verifier cross-checks against its own
// accumulated state. Segments and Chain need no extra signature: every
// segment was individually signed, so the verifier's accumulated chain
// is authenticated already and the close merely has to match it.
type CloseReport struct {
	Report   attest.Report
	Segments uint32
	Chain    [hashengine.DigestSize]byte
}

type writer struct{ buf []byte }

func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("stream: decode: truncated %s at offset %d", what, r.off)
	}
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) raw(n int, what string) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail(what)
		return nil
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n > len(r.buf)-r.off {
		r.fail("bytes")
		return nil
	}
	v := make([]byte, n)
	copy(v, r.buf[r.off:])
	r.off += n
	return v
}

func (r *reader) finish(what string) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("stream: %d trailing bytes in %s", len(r.buf)-r.off, what)
	}
	return nil
}

// EncodeOpen serializes an open request.
func EncodeOpen(o *OpenRequest) []byte {
	var w writer
	w.buf = append(w.buf, o.Program[:]...)
	w.buf = append(w.buf, o.Nonce[:]...)
	w.u32(o.SegmentEvents)
	w.u32(uint32(len(o.Input)))
	for _, v := range o.Input {
		w.u32(v)
	}
	return w.buf
}

// DecodeOpen parses an open request.
func DecodeOpen(b []byte) (*OpenRequest, error) {
	var o OpenRequest
	r := &reader{buf: b}
	copy(o.Program[:], r.raw(len(o.Program), "program"))
	copy(o.Nonce[:], r.raw(len(o.Nonce), "nonce"))
	o.SegmentEvents = r.u32()
	n := int(r.u32())
	if r.err == nil && n > (len(b)-r.off)/4 {
		return nil, fmt.Errorf("stream: absurd input count %d", n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		o.Input = append(o.Input, r.u32())
	}
	if err := r.finish("open request"); err != nil {
		return nil, err
	}
	return &o, nil
}

// segmentDomain prefixes every signed segment payload: the device key
// also signs end-of-run reports (attest.SignedPayload), and a fixed
// domain tag keeps the two signed message classes disjoint by
// construction rather than by accidental byte-layout differences.
const segmentDomain = "lofat-stream-segment-v1\x00"

// SegmentPayload is the byte string the prover signs per segment:
// domain || idS || N || index || events || chain. Edges are not
// covered directly — the chain commits to them, and the verifier
// recomputes the chain link from the received edges before trusting
// either.
func SegmentPayload(s *SegmentReport) []byte {
	var w writer
	w.buf = make([]byte, 0, len(segmentDomain)+2*32+8+hashengine.DigestSize)
	w.buf = append(w.buf, segmentDomain...)
	w.buf = append(w.buf, s.Program[:]...)
	w.buf = append(w.buf, s.Nonce[:]...)
	w.u32(s.Index)
	w.u32(s.Events)
	w.buf = append(w.buf, s.Chain[:]...)
	return w.buf
}

// EncodeSegment serializes a segment report.
func EncodeSegment(s *SegmentReport) []byte {
	var w writer
	w.buf = make([]byte, 0, 2*32+8+hashengine.DigestSize+8*len(s.Edges)+len(s.Sig)+8)
	w.buf = append(w.buf, s.Program[:]...)
	w.buf = append(w.buf, s.Nonce[:]...)
	w.u32(s.Index)
	w.u32(s.Events)
	w.buf = append(w.buf, s.Chain[:]...)
	w.u32(uint32(len(s.Edges)))
	for _, p := range s.Edges {
		w.u32(p.Src)
		w.u32(p.Dest)
	}
	w.bytes(s.Sig)
	return w.buf
}

// DecodeSegment parses a segment report.
func DecodeSegment(b []byte) (*SegmentReport, error) {
	var s SegmentReport
	r := &reader{buf: b}
	copy(s.Program[:], r.raw(len(s.Program), "program"))
	copy(s.Nonce[:], r.raw(len(s.Nonce), "nonce"))
	s.Index = r.u32()
	s.Events = r.u32()
	copy(s.Chain[:], r.raw(len(s.Chain), "chain"))
	n := int(r.u32())
	if r.err == nil && n > (len(b)-r.off)/8 {
		return nil, fmt.Errorf("stream: absurd edge count %d", n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		s.Edges = append(s.Edges, hashengine.Pair{Src: r.u32(), Dest: r.u32()})
	}
	s.Sig = r.bytes()
	if err := r.finish("segment report"); err != nil {
		return nil, err
	}
	return &s, nil
}

// EncodeClose serializes a close report; the embedded end-of-run
// report reuses the attest codec.
func EncodeClose(c *CloseReport) []byte {
	var w writer
	w.u32(c.Segments)
	w.buf = append(w.buf, c.Chain[:]...)
	w.bytes(attest.EncodeReport(&c.Report))
	return w.buf
}

// DecodeClose parses a close report.
func DecodeClose(b []byte) (*CloseReport, error) {
	var c CloseReport
	r := &reader{buf: b}
	c.Segments = r.u32()
	copy(c.Chain[:], r.raw(len(c.Chain), "chain"))
	enc := r.bytes()
	if err := r.finish("close report"); err != nil {
		return nil, err
	}
	rep, err := attest.DecodeReport(enc)
	if err != nil {
		return nil, err
	}
	c.Report = *rep
	return &c, nil
}
