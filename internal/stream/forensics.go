package stream

import (
	"fmt"

	"lofat/internal/attest"
	"lofat/internal/hashengine"
)

// This file is the forensic pass: once a segment's chain value refuses
// to match the golden checkpoint, the verifier stops treating the
// stream as a black box and diffs the authenticated edge window
// against the golden window to localize the FIRST divergent edge, then
// classifies the divergence against the statically-known CFG — the
// streamed analogue of attest.Verifier.classify, but with a concrete
// (segment, offset, src→dest) location instead of a whole-run verdict.

// buildSeen reconstructs the matched-prefix edge history from the
// golden segments [0, segments) — done only when forensics need it, so
// the honest fast path stays O(1) per segment.
func (s *Session) buildSeen(segments int) {
	if s.seen == nil {
		s.seen = make(map[hashengine.Pair]bool)
	}
	for _, g := range s.exp.Segments[:segments] {
		for _, p := range g.Edges {
			s.seen[p] = true
		}
	}
}

// diverge runs the forensic pass on the first non-matching segment.
// The reported edges have already been authenticated through the
// chain; index ordering guarantees every earlier segment matched the
// golden run exactly.
func (s *Session) diverge(sr *SegmentReport) *Result {
	s.buildSeen(int(sr.Index))
	var want []hashengine.Pair
	if int(sr.Index) < len(s.exp.Segments) {
		want = s.exp.Segments[sr.Index].Edges
	}
	got := sr.Edges

	// Walk the common prefix: edges matching the golden run are
	// legitimate history (they feed the seen-set the classifier uses
	// to recognize repeated loop edges).
	j := 0
	for j < len(got) && j < len(want) && got[j] == want[j] {
		s.seen[got[j]] = true
		j++
	}

	d := &Divergence{
		Segment: sr.Index,
		Offset:  uint32(j),
		Event:   s.matched + uint64(j),
	}
	switch {
	case j < len(got) && j < len(want):
		d.Got, d.Want = &got[j], &want[j]
	case j < len(got):
		// Reported stream runs past the golden end (or past a partial
		// golden tail segment): extra execution.
		d.Got = &got[j]
	case j < len(want):
		// Reported segment is shorter than the golden one: the run
		// ended early.
		d.Want = &want[j]
	default:
		// Identical edges over identical prefix cannot yield a
		// different chain; keep a defensive verdict anyway.
		return s.terminal(true, attest.ClassProtocol, fmt.Sprintf("segment %d chain mismatch with identical edges", sr.Index))
	}

	class, why := s.classifyDivergence(d)
	res := s.terminal(true, class,
		fmt.Sprintf("first divergence at %s", d),
		why)
	res.Divergence = d
	return res
}

// earlyEnd handles a stream that closed before the golden run's
// segments were exhausted: the execution stopped early, which is a
// divergence located at the first unconsumed golden edge. The run has
// already ended by the time the close arrives, so this is not an early
// abort.
func (s *Session) earlyEnd() *Result {
	s.buildSeen(int(s.next))
	d := &Divergence{
		Segment: s.next,
		Offset:  0,
		Event:   s.matched,
	}
	if int(s.next) < len(s.exp.Segments) && len(s.exp.Segments[s.next].Edges) > 0 {
		d.Want = &s.exp.Segments[s.next].Edges[0]
	}
	class, why := s.classifyDivergence(d)
	res := s.terminal(false, class,
		fmt.Sprintf("stream closed after %d of %d expected segments", s.next, len(s.exp.Segments)),
		fmt.Sprintf("first divergence at %s", d),
		why)
	res.Divergence = d
	return res
}

// classifyDivergence maps a localized divergence onto the paper's
// Figure 1 attack classes using the CFG and the session's edge
// history:
//
//   - the offending edge is not CFG-consistent → class 3 (code pointer
//     overwrite / control-flow attack): no legal execution of S takes
//     that edge;
//   - the divergence flips a decision at a branch site whose loop
//     back-edge the session has already observed → class 2 (loop
//     counter corruption): legitimate paths, wrong iteration count;
//   - otherwise → class 1 (non-control data): a
//     permissible-but-unintended path for input i.
func (s *Session) classifyDivergence(d *Divergence) (attest.Classification, string) {
	backward := func(p *hashengine.Pair) bool { return p != nil && p.Dest <= p.Src }
	seen := func(p *hashengine.Pair) bool { return p != nil && s.seen[*p] }

	switch {
	case d.Got == nil:
		if backward(d.Want) && seen(d.Want) {
			// The golden run would have taken a known back-edge again;
			// the device's loop ended sooner than it should have.
			return attest.ClassLoopCounter, "expected another iteration of a known loop back-edge: iteration count reduced"
		}
		return attest.ClassNonControlData, "execution ended before the expected path completed"
	case !s.v.av.Graph().ValidEdge(d.Got.Src, d.Got.Dest):
		return attest.ClassControlFlow, fmt.Sprintf("edge %#x->%#x is not CFG-consistent: control-flow attack", d.Got.Src, d.Got.Dest)
	case s.isISRDivergence(d):
		// An interrupt edge (dispatch to the vector, or an mret resume)
		// appearing where the golden run has none is CFG-consistent by
		// construction — dispatch is architecturally valid at every
		// boundary — but the timing differs from the attested schedule.
		// That is a class-1 deviation (interrupt-storm / trace-pressure
		// shape), NOT a loop-counter one, even when the interrupted PC
		// coincides with a branch site the loop table knows.
		return attest.ClassNonControlData, fmt.Sprintf("interrupt edge %#x->%#x is not the expected interrupt schedule for this run", d.Got.Src, d.Got.Dest)
	case s.isLoopDivergence(d):
		return attest.ClassLoopCounter, "divergent decision at a known loop back-edge: loop counter corruption"
	default:
		return attest.ClassNonControlData, fmt.Sprintf("edge %#x->%#x is CFG-consistent but not the expected path for this input", d.Got.Src, d.Got.Dest)
	}
}

// isISRDivergence reports whether the offending reported edge is an
// interrupt transfer: a dispatch edge into the configured vector, or a
// resume edge out of a return-from-interrupt site. Only meaningful when
// the verifier's oracle has ISR semantics enabled.
func (s *Session) isISRDivergence(d *Divergence) bool {
	g := s.v.av.Graph()
	vector, ok := g.ISRVector()
	if !ok {
		return false
	}
	return d.Got.Dest == vector || g.IsMRetSite(d.Got.Src)
}

// isLoopDivergence recognizes class-2 shapes: the reported and golden
// runs disagree at the same decision site, and the flipped decision
// changes whether execution stays inside a statically-known loop —
// i.e. the loop iterated more (or fewer) times than the golden run,
// exactly what counter corruption produces. A history-based fallback
// catches re-taken back-edges (the run continuing a loop past the
// expected end) when the static loop table has no entry for the site.
func (s *Session) isLoopDivergence(d *Divergence) bool {
	backward := func(p *hashengine.Pair) bool { return p != nil && p.Dest <= p.Src }
	seen := func(p *hashengine.Pair) bool { return p != nil && s.seen[*p] }

	if d.Want != nil && d.Want.Src == d.Got.Src {
		for _, l := range s.v.av.Graph().Loops() {
			if l.Contains(d.Got.Src) && l.Contains(d.Got.Dest) != l.Contains(d.Want.Dest) {
				return true
			}
		}
		return (seen(d.Got) || seen(d.Want)) && (backward(d.Got) || backward(d.Want))
	}
	// No golden counterpart: the run continued past the expected end
	// by re-taking a loop edge it had taken before.
	return d.Want == nil && seen(d.Got) && backward(d.Got)
}
