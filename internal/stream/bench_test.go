package stream_test

import (
	"testing"

	"lofat/internal/stream"
	"lofat/internal/workloads"
)

// BenchmarkStreamVerify compares the verifier-side work of a streamed
// session that aborts at the first divergent segment of an attacked
// run against full verification of the complete honest stream of the
// same workload. Early abort consumes a strict prefix of the segments
// (reported as segs/op), which is the point of streaming: divergence
// is decided — and the device cut off — long before end-of-run.
func BenchmarkStreamVerify(b *testing.B) {
	const n = 8
	atk, ok := workloads.AttackByName("loop-counter")
	if !ok {
		b.Fatal("loop-counter attack missing")
	}
	prog, err := atk.Workload.Assemble()
	if err != nil {
		b.Fatal(err)
	}

	p, v := rig(b, atk.Workload, n)

	// Segment reports are bound to their session nonce, so each
	// iteration re-runs the prover for a fresh session (and re-arms
	// the one-shot adversary); the timed region covers only the
	// verifier-side consumption.
	b.Run("EarlyAbort", func(b *testing.B) {
		var segsConsumed, totalSegs float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p.Inner().Adversary = atk.Build(prog)
			s, open, err := v.Open(atk.Workload.Input)
			if err != nil {
				b.Fatal(err)
			}
			var attacked []*stream.SegmentReport
			if _, err := p.Stream(*open, func(sr *stream.SegmentReport) error {
				attacked = append(attacked, sr)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()

			var res *stream.Result
			for _, sr := range attacked {
				if res = s.Consume(sr); res != nil {
					break
				}
			}
			if res == nil || res.Accepted || !res.EarlyAbort {
				b.Fatalf("attacked stream not early-aborted: %+v", res)
			}
			segsConsumed += float64(res.Segments)
			totalSegs += float64(len(attacked))
		}
		b.ReportMetric(segsConsumed/float64(b.N), "segs/op")
		b.ReportMetric(totalSegs/float64(b.N), "totalsegs/op")
	})

	b.Run("FullStream", func(b *testing.B) {
		p.Inner().Adversary = nil
		var segsConsumed float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s, open2, err := v.Open(atk.Workload.Input)
			if err != nil {
				b.Fatal(err)
			}
			// Re-sign the honest stream against this session's nonce.
			var segs []*stream.SegmentReport
			cr2, err := p.Stream(*open2, func(sr *stream.SegmentReport) error {
				segs = append(segs, sr)
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()

			for _, sr := range segs {
				if res := s.Consume(sr); res != nil {
					b.Fatalf("honest segment rejected: %+v", res)
				}
			}
			if res := s.Close(cr2); !res.Accepted {
				b.Fatalf("honest stream rejected: %+v", res)
			}
			segsConsumed += float64(len(segs))
		}
		b.ReportMetric(segsConsumed/float64(b.N), "segs/op")
	})
}
