package stream

import (
	"fmt"
	"strconv"
	"time"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/hashengine"
	"lofat/internal/sig"
)

// Verifier is the incremental half of segmented attestation: it wraps
// an attest.Verifier (program image, CFG analysis, device key, nonce
// state, expectation caches) and opens sessions that consume segments
// as they arrive. Golden streaming runs are recorded per (input, N)
// through the wrapped verifier's two-layer expectation cache, so a
// fleet of devices on the same firmware simulates each streamed golden
// run once — and each streamed golden run also seeds the plain
// end-of-run expectation (the inner device's A and L are unchanged by
// streaming), so the session's final Verify never re-simulates.
type Verifier struct {
	av  *attest.Verifier
	cfg Config
}

// NewVerifier wraps an attest verifier for streamed sessions.
func NewVerifier(av *attest.Verifier, cfg Config) *Verifier {
	cfg.fill()
	return &Verifier{av: av, cfg: cfg}
}

// Inner exposes the wrapped attest verifier.
func (v *Verifier) Inner() *attest.Verifier { return v.av }

// SegmentEvents reports the checkpoint window sessions are opened with.
func (v *Verifier) SegmentEvents() int { return v.cfg.SegmentEvents }

// expectedStream returns (computing and caching on first use) the
// golden streamed measurement for an input: per-segment checkpoint
// states plus the usual (A, L).
func (v *Verifier) expectedStream(input []uint32) (*core.Measurement, error) {
	kind := fmt.Sprintf("stream%d", v.cfg.SegmentEvents)
	m, err := v.av.ExpectedCustom(kind, input, func() (*core.Measurement, error) {
		meas, _, err := MeasureStream(v.av.Program(), v.av.DeviceConfig(), input, v.cfg.SegmentEvents, v.av.MaxInstructions)
		if err != nil {
			return nil, fmt.Errorf("stream: golden run: %w", err)
		}
		return &meas, nil
	})
	if err != nil {
		return nil, err
	}
	// The streamed golden measurement subsumes the end-of-run one.
	v.av.SeedExpectation(input, m)
	return m, nil
}

// Precompute warms the expectation caches for a set of inputs (the
// fleet sweep path: one streamed golden run up front, every device
// verification a cache hit).
func (v *Verifier) Precompute(inputs [][]uint32) error {
	for _, in := range inputs {
		if _, err := v.expectedStream(in); err != nil {
			return err
		}
	}
	return nil
}

// Session is one streamed attestation in progress. It is not safe for
// concurrent use; drive it from the goroutine reading the transport.
type Session struct {
	v        *Verifier
	ch       attest.Challenge
	exp      *core.Measurement
	chain    [hashengine.DigestSize]byte
	next     uint32 // next expected segment index
	consumed uint32 // segment reports consumed (incl. a divergent one)
	matched  uint64 // control-flow events matched against golden
	// seen is the edge history of the matched prefix, built lazily by
	// the forensic pass (the honest fast path never needs it).
	seen map[hashengine.Pair]bool
	done bool
}

// Open starts a streamed session for an input: it draws a fresh
// challenge nonce, ensures the golden streamed expectation exists, and
// returns the session plus the open request to transmit.
func (v *Verifier) Open(input []uint32) (*Session, *OpenRequest, error) {
	ch, err := v.av.NewChallenge(input)
	if err != nil {
		return nil, nil, err
	}
	exp, err := v.expectedStream(ch.Input)
	if err != nil {
		v.av.ConsumeNonce(ch.Nonce)
		return nil, nil, err
	}
	s := &Session{v: v, ch: ch, exp: exp}
	open := &OpenRequest{
		Program:       ch.Program,
		Nonce:         ch.Nonce,
		Input:         ch.Input,
		SegmentEvents: uint32(v.cfg.SegmentEvents),
	}
	return s, open, nil
}

// Challenge exposes the session's challenge (program, nonce, input).
func (s *Session) Challenge() attest.Challenge { return s.ch }

// ExpectedSegments reports how many segments the golden run produced.
func (s *Session) ExpectedSegments() int { return len(s.exp.Segments) }

// Done reports whether the session reached a terminal outcome.
func (s *Session) Done() bool { return s.done }

// Abort terminates the session without a verdict (transport failure);
// the nonce is retired so the issued set stays bounded.
func (s *Session) Abort() {
	if s.done {
		return
	}
	s.done = true
	s.v.av.ConsumeNonce(s.ch.Nonce)
}

// terminal marks the session done, retires the nonce, and builds the
// rejection result. earlyAbort distinguishes mid-stream rejections
// (the device is still running and will be cut off) from rejections at
// close time (the run already ended).
func (s *Session) terminal(earlyAbort bool, class attest.Classification, findings ...string) *Result {
	s.done = true
	s.v.av.ConsumeNonce(s.ch.Nonce)
	return &Result{
		Result: attest.Result{
			Accepted: false,
			Class:    class,
			Findings: findings,
			Expected: s.exp,
		},
		Segments:   s.consumed,
		EarlyAbort: earlyAbort,
	}
}

// Consume checks one segment report. A nil return means the segment
// matched the golden checkpoint: keep streaming. A non-nil Result is
// the session's terminal verdict — the first divergent (or malformed)
// segment rejects immediately, while the device may still be running:
// callers drop the transport to cut it off (see RequestStream).
//
// With observability configured (Config.Trace / Config.SegmentHist)
// each consume is timed and recorded; disabled, the wrapper is two
// branches in front of the verification work.
func (s *Session) Consume(sr *SegmentReport) *Result {
	hist, tr := s.v.cfg.SegmentHist, s.v.cfg.Trace
	if hist == nil && !tr.Enabled() {
		return s.consume(sr)
	}
	sp := tr.Start("segment", "stream")
	start := time.Now()
	res := s.consume(sr)
	hist.ObserveSince(start)
	if tr.Enabled() {
		sp = sp.Arg("index", strconv.FormatUint(uint64(sr.Index), 10))
		switch {
		case res == nil:
			sp = sp.Arg("verdict", "matched")
		case res.EarlyAbort:
			sp = sp.Arg("verdict", "early-abort")
		default:
			sp = sp.Arg("verdict", res.Class.String())
		}
	}
	sp.End()
	return res
}

func (s *Session) consume(sr *SegmentReport) *Result {
	if s.done {
		return &Result{
			Result:   attest.Result{Accepted: false, Class: attest.ClassProtocol, Findings: []string{"session already terminated"}},
			Segments: s.consumed,
		}
	}
	s.consumed++

	// Protocol checks: right program, nonce echo, stream order.
	if sr.Program != s.ch.Program {
		return s.terminal(true, attest.ClassProtocol, fmt.Sprintf("segment for program %v, expected %v", sr.Program, s.ch.Program))
	}
	if sr.Nonce != s.ch.Nonce {
		return s.terminal(true, attest.ClassProtocol, "segment nonce mismatch (replay?)")
	}
	if sr.Index != s.next {
		return s.terminal(true, attest.ClassProtocol, fmt.Sprintf("segment %d out of order, expected %d", sr.Index, s.next))
	}
	if int(sr.Events) != len(sr.Edges) {
		return s.terminal(true, attest.ClassProtocol, fmt.Sprintf("segment %d claims %d events but carries %d edges", sr.Index, sr.Events, len(sr.Edges)))
	}

	// Authenticity: per-segment signature over the chained state.
	if err := sig.Verify(s.v.av.PublicKey(), SegmentPayload(sr), sr.Sig); err != nil {
		return s.terminal(true, attest.ClassSignature, fmt.Sprintf("segment %d: %v", sr.Index, err))
	}

	// Fast path: the signed chain value equals the golden checkpoint.
	// Chain equality pins the entire edge-stream prefix to the golden
	// run (the chain is a running hash over every edge so far), so no
	// per-edge comparison — and no chain recomputation — is needed.
	if int(sr.Index) < len(s.exp.Segments) {
		g := s.exp.Segments[sr.Index]
		if sr.Chain == g.Chain && sr.Events == g.Events {
			s.chain = sr.Chain
			s.next++
			s.matched += uint64(g.Events)
			return nil
		}
	}

	// Divergence. Authenticate the reported edge window through the
	// chain before doing forensics on it.
	if hashengine.ChainPairs(s.chain, sr.Edges) != sr.Chain {
		return s.terminal(true, attest.ClassProtocol, fmt.Sprintf("segment %d: edges do not hash to the reported chain", sr.Index))
	}
	return s.diverge(sr)
}

// Close checks the final message of an honest stream: every golden
// segment consumed, the close framing consistent with the session's
// accumulated (signed) state, then the classic end-of-run verification
// of the embedded report — which consumes the challenge nonce.
func (s *Session) Close(cr *CloseReport) Result {
	if s.done {
		return Result{
			Result:   attest.Result{Accepted: false, Class: attest.ClassProtocol, Findings: []string{"session already terminated"}},
			Segments: s.consumed,
		}
	}
	if int(s.next) != len(s.exp.Segments) {
		// The reported stream is a strict prefix of the golden one:
		// the run ended before the expected path completed.
		res := s.earlyEnd()
		return *res
	}
	if cr.Segments != s.next {
		return *s.terminal(false, attest.ClassProtocol, fmt.Sprintf("close claims %d segments, session verified %d", cr.Segments, s.next))
	}
	if cr.Chain != s.chain {
		return *s.terminal(false, attest.ClassProtocol, "close chain does not match the verified stream")
	}
	s.done = true
	res := s.v.av.Verify(s.ch, &cr.Report)
	return Result{Result: res, Segments: s.consumed}
}
