package stream_test

import (
	"reflect"
	"testing"

	"lofat/internal/core"
	"lofat/internal/hashengine"
	"lofat/internal/stream"
	"lofat/internal/workloads"
)

// ChunkEdges must be bit-compatible with the emitter: chunking a golden
// run's flattened edge stream reproduces the emitter's segment chain
// exactly — indexes, window sizes, chain values and edge windows.
func TestChunkEdgesMatchesEmitter(t *testing.T) {
	for _, window := range []int{1, 7, 64, 1 << 20 /* larger than any run */} {
		for _, w := range []workloads.Workload{workloads.SyringePump(), workloads.Dispatch()} {
			prog, err := w.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			meas, _, err := stream.MeasureStream(prog, core.Config{}, w.Input, window, 10_000_000)
			if err != nil {
				t.Fatal(err)
			}
			edges := stream.FlattenSegments(meas.Segments)
			rebuilt := stream.ChunkEdges(edges, window)
			if !reflect.DeepEqual(rebuilt, meas.Segments) {
				t.Errorf("window %d, %s: ChunkEdges differs from emitter segments (%d vs %d segments)",
					window, w.Name, len(rebuilt), len(meas.Segments))
			}
		}
	}
}

// Degenerate inputs: no edges, no segments; a final partial window is
// its own segment.
func TestChunkEdgesEdgeCases(t *testing.T) {
	if segs := stream.ChunkEdges(nil, 8); segs != nil {
		t.Errorf("empty edge stream produced %d segments", len(segs))
	}
	edges := []hashengine.Pair{{Src: 4, Dest: 8}, {Src: 8, Dest: 12}, {Src: 12, Dest: 4}}
	segs := stream.ChunkEdges(edges, 2)
	if len(segs) != 2 || segs[0].Events != 2 || segs[1].Events != 1 {
		t.Fatalf("3 edges / window 2: got %+v", segs)
	}
	if segs[0].Chain != hashengine.ChainPairs([hashengine.DigestSize]byte{}, edges[:2]) {
		t.Error("first chain link does not start from the zero digest")
	}
	if segs[1].Chain != hashengine.ChainPairs(segs[0].Chain, edges[2:]) {
		t.Error("second chain link does not extend the first")
	}
	if !reflect.DeepEqual(stream.FlattenSegments(segs), edges) {
		t.Error("FlattenSegments is not the inverse of ChunkEdges")
	}
}
