// Package stream implements segmented, incrementally-verified
// attestation on top of the LO-FAT stack: instead of one measurement
// over the whole run (Figure 2's single signed report), the prover
// emits chained sub-measurements — segments — every N retired
// control-flow events, and the verifier checks each segment as it
// arrives against golden-run checkpoints.
//
// This closes two gaps in end-of-run attestation:
//
//   - long-running (or non-terminating) programs can be checked while
//     they execute, not only after they halt;
//   - on divergence the verifier rejects at the FIRST bad segment —
//     aborting the session mid-run — and a forensic pass localizes the
//     offending control-flow edge (src→dest PC) and classifies the
//     attack against the statically-enumerated CFG, instead of
//     reporting only "the hash differs".
//
// The moving parts:
//
//   - Emitter: a trace.Sink wrapper over core.Device. It forwards every
//     retired instruction to the device (the normal A/L measurement is
//     unchanged) and, in parallel, records the (Src, Dest) edge of each
//     measured control-flow event. Every N edges it seals a
//     core.Segment whose chain value is SHA3-512(previous chain ||
//     edge window) — segment k commits to segments 0..k-1, so an
//     already-reported prefix cannot be rewritten.
//   - Prover: wraps attest.Prover; runs S(i) under the emitter, signing
//     each segment and the final close report with the device key.
//   - Verifier/Session: wraps attest.Verifier; golden-runs S(i) once
//     under the same emitter (cached through attest.ExpectationCache,
//     so fleets amortize streamed golden runs exactly like plain ones)
//     and consumes segments incrementally. The first divergent segment
//     terminates the session; forensics diff the divergent window
//     against the golden window to name the first offending edge.
//   - Transport: the new messages (OpenRequest, SegmentReport,
//     CloseReport) ride the attest frame transport on type bytes 16+,
//     so one connection — and one attest.Server — can serve both the
//     classic and the streamed protocol.
//
// Nonce discipline is inherited from attest.Verifier: Open draws a
// fresh challenge nonce, every segment echoes it, and the session
// retires it on any terminal outcome.
package stream

import (
	"errors"
	"fmt"

	"lofat/internal/attest"
	"lofat/internal/hashengine"
	"lofat/internal/obs"
)

// DefaultSegmentEvents is the default checkpoint window N: the number
// of retired control-flow events per segment.
const DefaultSegmentEvents = 64

// MaxSegmentEvents bounds the window a verifier may request (and a
// prover will honour): large enough for coarse checkpointing, small
// enough that a hostile open cannot force unbounded buffering.
const MaxSegmentEvents = 1 << 16

// Config parameterises streamed verification.
type Config struct {
	// SegmentEvents is the checkpoint window N (default
	// DefaultSegmentEvents). Smaller windows localize divergence
	// faster and abort earlier; larger windows cost fewer signatures.
	SegmentEvents int

	// Trace, when enabled, records a "segment" span per consumed
	// segment report on its track. The zero Scope (the default)
	// disables tracing; Consume then takes one extra branch and
	// allocates nothing.
	Trace obs.Scope

	// SegmentHist, when non-nil, records per-segment verify time in
	// nanoseconds. Nil (the default) costs one branch.
	SegmentHist *obs.Histogram
}

func (c *Config) fill() {
	if c.SegmentEvents <= 0 {
		c.SegmentEvents = DefaultSegmentEvents
	}
	if c.SegmentEvents > MaxSegmentEvents {
		c.SegmentEvents = MaxSegmentEvents
	}
}

// Divergence localizes the first point where the reported execution
// left the expected one.
type Divergence struct {
	// Segment is the index of the first divergent segment.
	Segment uint32
	// Offset is the edge offset of the divergence within that segment.
	Offset uint32
	// Event is the absolute control-flow event index of the divergence
	// (events counted from the start of the attested run).
	Event uint64
	// Got is the first offending reported edge; nil when the stream
	// ended before the expected path completed.
	Got *hashengine.Pair
	// Want is the edge the golden run took at the same position; nil
	// when the prover ran past the expected end of execution.
	Want *hashengine.Pair
}

// String renders the divergence for diagnostics.
func (d Divergence) String() string {
	fmtEdge := func(p *hashengine.Pair) string {
		if p == nil {
			return "(end of stream)"
		}
		return fmt.Sprintf("%#x->%#x", p.Src, p.Dest)
	}
	return fmt.Sprintf("segment %d offset %d (event %d): got %s, expected %s",
		d.Segment, d.Offset, d.Event, fmtEdge(d.Got), fmtEdge(d.Want))
}

// Result is the outcome of a streamed attestation session. It embeds
// the classic attest.Result (verdict, attack classification, findings,
// compared measurements) and adds the streaming-specific fields.
type Result struct {
	attest.Result
	// Segments is the number of segment reports the session consumed.
	Segments uint32
	// EarlyAbort reports that the session terminated before stream
	// close: the verifier stopped at the first divergent (or
	// malformed) segment while the device was still running.
	EarlyAbort bool
	// Divergence localizes the first divergent edge. Nil when the
	// session was accepted or when rejection happened at the protocol
	// layer (bad signature, out-of-order segment, ...).
	Divergence *Divergence
}

// errRejectedMidStream aborts a prover run whose verifier session has
// already reached a verdict.
var errRejectedMidStream = errors.New("stream: session rejected mid-stream")

// AttestOnce runs one full streamed attestation round in memory — the
// segmented analogue of lofat.System.AttestOnce: the prover's segments
// feed the verifier session directly as they seal, and a divergence
// verdict aborts the run at the first bad segment (exactly as a
// dropped transport would mid-run). observe, when non-nil, sees every
// segment report before it is verified (demo/diagnostic hook).
func AttestOnce(p *Prover, v *Verifier, input []uint32, observe func(*SegmentReport)) (Result, error) {
	s, open, err := v.Open(input)
	if err != nil {
		return Result{}, err
	}
	var verdict *Result
	cr, err := p.Stream(*open, func(sr *SegmentReport) error {
		if observe != nil {
			observe(sr)
		}
		if res := s.Consume(sr); res != nil {
			verdict = res
			return errRejectedMidStream
		}
		return nil
	})
	if verdict != nil {
		return *verdict, nil
	}
	if err != nil {
		s.Abort()
		return Result{}, err
	}
	return s.Close(cr), nil
}
