package stream_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lofat/internal/hashengine"
	"lofat/internal/stream"
	"lofat/internal/workloads"
)

// Decoders must never panic on arbitrary bytes (they face the network)
// — the streamed analogue of internal/attest's codec fuzzing.
func TestDecodeStreamMessagesNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("stream decoder panicked on %d bytes: %v", len(b), r)
			}
		}()
		_, _ = stream.DecodeOpen(b)
		_, _ = stream.DecodeSegment(b)
		_, _ = stream.DecodeClose(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Randomly generated segment reports must round-trip exactly through
// the canonical encoding.
func TestSegmentCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		sr := &stream.SegmentReport{
			Index:  rng.Uint32(),
			Events: rng.Uint32(),
		}
		rng.Read(sr.Program[:])
		rng.Read(sr.Nonce[:])
		rng.Read(sr.Chain[:])
		for i := rng.Intn(20); i > 0; i-- {
			sr.Edges = append(sr.Edges, hashengine.Pair{Src: rng.Uint32(), Dest: rng.Uint32()})
		}
		sr.Sig = make([]byte, rng.Intn(80))
		rng.Read(sr.Sig)

		enc := stream.EncodeSegment(sr)
		dec, err := stream.DecodeSegment(enc)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(sr, dec) {
			t.Fatalf("trial %d: round trip mismatch:\n%+v\n%+v", trial, sr, dec)
		}
		if !bytes.Equal(stream.EncodeSegment(dec), enc) {
			t.Fatalf("trial %d: re-encoding not canonical", trial)
		}
	}
}

// Open requests round-trip, and every truncation of every message type
// is rejected cleanly (no panic, no silent success).
func TestStreamCodecTruncationRobustness(t *testing.T) {
	w := workloads.SyringePump()
	p, v := rig(t, w, 16)
	s, open, err := v.Open(w.Input)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Abort()

	encOpen := stream.EncodeOpen(open)
	gotOpen, err := stream.DecodeOpen(encOpen)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(open, gotOpen) {
		t.Fatalf("open round trip mismatch:\n%+v\n%+v", open, gotOpen)
	}

	var encSeg []byte
	cr, err := p.Stream(*open, func(sr *stream.SegmentReport) error {
		if encSeg == nil {
			encSeg = stream.EncodeSegment(sr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	encClose := stream.EncodeClose(cr)
	gotClose, err := stream.DecodeClose(encClose)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cr, gotClose) {
		t.Fatal("close round trip mismatch")
	}

	for name, tc := range map[string]struct {
		enc    []byte
		decode func([]byte) error
	}{
		"open":    {encOpen, func(b []byte) error { _, err := stream.DecodeOpen(b); return err }},
		"segment": {encSeg, func(b []byte) error { _, err := stream.DecodeSegment(b); return err }},
		"close":   {encClose, func(b []byte) error { _, err := stream.DecodeClose(b); return err }},
	} {
		if len(tc.enc) == 0 {
			t.Fatalf("%s: empty encoding", name)
		}
		for n := 0; n < len(tc.enc); n++ {
			if err := tc.decode(tc.enc[:n]); err == nil {
				t.Errorf("%s truncated to %d bytes decoded successfully", name, n)
			}
		}
		if err := tc.decode(append(append([]byte(nil), tc.enc...), 0)); err == nil {
			t.Errorf("%s with a trailing byte decoded successfully", name)
		}
	}
}
