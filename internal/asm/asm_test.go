package asm

import (
	"encoding/binary"
	"strings"
	"testing"

	"lofat/internal/isa"
)

func words(t *testing.T, p *Program) []uint32 {
	t.Helper()
	if len(p.Text)%4 != 0 {
		t.Fatalf("text size %d not word-aligned", len(p.Text))
	}
	out := make([]uint32, len(p.Text)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(p.Text[4*i:])
	}
	return out
}

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func decodeAll(t *testing.T, p *Program) []isa.Inst {
	t.Helper()
	ws := words(t, p)
	out := make([]isa.Inst, len(ws))
	for i, w := range ws {
		in, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("word %d (%#08x): %v", i, w, err)
		}
		out[i] = in
	}
	return out
}

func TestBasicProgram(t *testing.T) {
	p := mustAssemble(t, `
		# function prologue from the paper's Figure 3 sample
		main:
			addi    sp, sp, -16
			sw      ra, 12(sp)
			lw      ra, 12(sp)
			addi    sp, sp, 16
			jalr    zero, ra, 0
	`)
	ins := decodeAll(t, p)
	want := []isa.Inst{
		{Op: isa.OpADDI, Rd: isa.SP, Rs1: isa.SP, Imm: -16},
		{Op: isa.OpSW, Rs1: isa.SP, Rs2: isa.RA, Imm: 12},
		{Op: isa.OpLW, Rd: isa.RA, Rs1: isa.SP, Imm: 12},
		{Op: isa.OpADDI, Rd: isa.SP, Rs1: isa.SP, Imm: 16},
		{Op: isa.OpJALR, Rd: isa.Zero, Rs1: isa.RA},
	}
	if len(ins) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(ins), len(want))
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("inst %d = %+v, want %+v", i, ins[i], want[i])
		}
	}
	if a, ok := p.Entry("main"); !ok || a != DefaultLayout.TextBase {
		t.Errorf("Entry(main) = %#x, %v", a, ok)
	}
}

func TestBranchTargets(t *testing.T) {
	p := mustAssemble(t, `
	loop:
		addi a0, a0, -1
		bnez a0, loop
		beq  a0, zero, done
		nop
	done:
		ret
	`)
	ins := decodeAll(t, p)
	// bnez at +4 jumps back 4 bytes.
	if ins[1].Op != isa.OpBNE || ins[1].Imm != -4 {
		t.Errorf("bnez = %+v, want bne offset -4", ins[1])
	}
	// beq at +8 jumps to done at +16: offset 8.
	if ins[2].Op != isa.OpBEQ || ins[2].Imm != 8 {
		t.Errorf("beq = %+v, want offset 8", ins[2])
	}
}

func TestForwardAndBackwardLabels(t *testing.T) {
	p := mustAssemble(t, `
		j fwd
	back:
		ret
	fwd:
		j back
	`)
	ins := decodeAll(t, p)
	if ins[0].Imm != 8 {
		t.Errorf("forward j offset = %d, want 8", ins[0].Imm)
	}
	if ins[2].Imm != -4 {
		t.Errorf("backward j offset = %d, want -4", ins[2].Imm)
	}
}

func TestLIExpansion(t *testing.T) {
	cases := []struct {
		src   string
		words int
		check func(t *testing.T, ins []isa.Inst)
	}{
		{"li a0, 42", 1, func(t *testing.T, ins []isa.Inst) {
			if ins[0] != (isa.Inst{Op: isa.OpADDI, Rd: isa.A0, Imm: 42}) {
				t.Errorf("li 42 = %+v", ins[0])
			}
		}},
		{"li a0, -2048", 1, nil},
		{"li a0, 0x12345000", 1, func(t *testing.T, ins []isa.Inst) {
			if ins[0].Op != isa.OpLUI || uint32(ins[0].Imm) != 0x12345000 {
				t.Errorf("li hi-only = %+v", ins[0])
			}
		}},
		{"li a0, 0x12345678", 2, func(t *testing.T, ins []isa.Inst) {
			if ins[0].Op != isa.OpLUI || ins[1].Op != isa.OpADDI {
				t.Fatalf("li = %+v", ins)
			}
			got := uint32(ins[0].Imm) + uint32(ins[1].Imm)
			if got != 0x12345678 {
				t.Errorf("li reconstructs %#x, want 0x12345678", got)
			}
		}},
		{"li a0, 0xFFFFF800", 1, func(t *testing.T, ins []isa.Inst) {
			// == -2048 as int32: single addi.
			if ins[0] != (isa.Inst{Op: isa.OpADDI, Rd: isa.A0, Imm: -2048}) {
				t.Errorf("li 0xFFFFF800 = %+v", ins[0])
			}
		}},
		{"li a0, 0xDEADBEEF", 2, func(t *testing.T, ins []isa.Inst) {
			got := uint32(ins[0].Imm) + uint32(ins[1].Imm)
			if got != 0xDEADBEEF {
				t.Errorf("li reconstructs %#x, want 0xDEADBEEF", got)
			}
		}},
	}
	for _, c := range cases {
		p := mustAssemble(t, c.src)
		ins := decodeAll(t, p)
		if len(ins) != c.words {
			t.Errorf("%q: %d words, want %d", c.src, len(ins), c.words)
			continue
		}
		if c.check != nil {
			c.check(t, ins)
		}
	}
}

func TestLISizeConsistency(t *testing.T) {
	// A label placed after an li must account for the expansion size;
	// 0xFFFFF800 sign-extends to -2048 and must be ONE word.
	p := mustAssemble(t, `
		li a0, 0xFFFFF800
	after:
		ret
	`)
	if a := p.Labels["after"]; a != DefaultLayout.TextBase+4 {
		t.Errorf("label after li = %#x, want %#x", a, DefaultLayout.TextBase+4)
	}
}

func TestLAAndDataSection(t *testing.T) {
	p := mustAssemble(t, `
		.data
	buf:
		.word 1, 2, 3
	msg:
		.byte 'h', 'i', 0
		.align 2
	tbl:
		.word buf
		.text
	main:
		la   a0, buf
		lw   a1, 0(a0)
		ret
	`)
	if got := p.Labels["buf"]; got != DefaultLayout.DataBase {
		t.Errorf("buf = %#x, want %#x", got, DefaultLayout.DataBase)
	}
	if got := p.Labels["msg"]; got != DefaultLayout.DataBase+12 {
		t.Errorf("msg = %#x", got)
	}
	if got := p.Labels["tbl"]; got != DefaultLayout.DataBase+16 {
		t.Errorf("tbl = %#x (alignment)", got)
	}
	// .word buf stores the address of buf.
	addr := binary.LittleEndian.Uint32(p.Data[16:20])
	if addr != p.Labels["buf"] {
		t.Errorf(".word buf = %#x, want %#x", addr, p.Labels["buf"])
	}
	// Data payload.
	if binary.LittleEndian.Uint32(p.Data[0:4]) != 1 || p.Data[12] != 'h' || p.Data[13] != 'i' {
		t.Errorf("data payload wrong: % x", p.Data[:16])
	}
	// la reconstructs buf's address.
	ins := decodeAll(t, p)
	got := uint32(ins[0].Imm) + uint32(ins[1].Imm)
	if got != p.Labels["buf"] {
		t.Errorf("la reconstructs %#x, want %#x", got, p.Labels["buf"])
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := mustAssemble(t, `
		nop
		mv   a0, a1
		not  a2, a3
		neg  a4, a5
		seqz t0, t1
		snez t2, t3
		j    end
		call end
		jr   a0
	end:
		ret
	`)
	ins := decodeAll(t, p)
	want := []isa.Inst{
		{Op: isa.OpADDI},
		{Op: isa.OpADDI, Rd: isa.A0, Rs1: isa.A1},
		{Op: isa.OpXORI, Rd: isa.A2, Rs1: isa.A3, Imm: -1},
		{Op: isa.OpSUB, Rd: isa.A4, Rs2: isa.A5},
		{Op: isa.OpSLTIU, Rd: isa.T0, Rs1: isa.T1, Imm: 1},
		{Op: isa.OpSLTU, Rd: isa.T2, Rs2: isa.T3},
		{Op: isa.OpJAL, Rd: isa.Zero, Imm: 12},
		{Op: isa.OpJAL, Rd: isa.RA, Imm: 8},
		{Op: isa.OpJALR, Rd: isa.Zero, Rs1: isa.A0},
		{Op: isa.OpJALR, Rd: isa.Zero, Rs1: isa.RA},
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("inst %d = %+v, want %+v", i, ins[i], want[i])
		}
	}
}

func TestBranchPseudos(t *testing.T) {
	p := mustAssemble(t, `
	l:
		beqz a0, l
		bnez a0, l
		blez a0, l
		bgez a0, l
		bltz a0, l
		bgtz a0, l
		bgt  a0, a1, l
		ble  a0, a1, l
		bgtu a0, a1, l
		bleu a0, a1, l
	`)
	ins := decodeAll(t, p)
	wantOps := []isa.Opcode{
		isa.OpBEQ, isa.OpBNE, isa.OpBGE, isa.OpBGE, isa.OpBLT,
		isa.OpBLT, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU,
	}
	for i, op := range wantOps {
		if ins[i].Op != op {
			t.Errorf("inst %d op = %v, want %v", i, ins[i].Op, op)
		}
		if ins[i].Imm != int32(-4*i) {
			t.Errorf("inst %d offset = %d, want %d", i, ins[i].Imm, -4*i)
		}
	}
	// bgt a0,a1 swaps to blt a1,a0.
	if ins[6].Rs1 != isa.A1 || ins[6].Rs2 != isa.A0 {
		t.Errorf("bgt operands not swapped: %+v", ins[6])
	}
}

func TestEqu(t *testing.T) {
	p := mustAssemble(t, `
		.equ BUFSZ, 64
		.equ NEG, -5
		li a0, BUFSZ
		addi a1, zero, NEG
	`)
	ins := decodeAll(t, p)
	if ins[0].Imm != 64 {
		t.Errorf("li BUFSZ = %+v", ins[0])
	}
	if ins[1].Imm != -5 {
		t.Errorf("addi NEG = %+v", ins[1])
	}
}

func TestJALRForms(t *testing.T) {
	p := mustAssemble(t, `
		jalr a0
		jalr ra, a0
		jalr ra, 4(a0)
		jalr ra, a0, 8
		jalr zero, ra, 0
	`)
	ins := decodeAll(t, p)
	want := []isa.Inst{
		{Op: isa.OpJALR, Rd: isa.RA, Rs1: isa.A0},
		{Op: isa.OpJALR, Rd: isa.RA, Rs1: isa.A0},
		{Op: isa.OpJALR, Rd: isa.RA, Rs1: isa.A0, Imm: 4},
		{Op: isa.OpJALR, Rd: isa.RA, Rs1: isa.A0, Imm: 8},
		{Op: isa.OpJALR, Rd: isa.Zero, Rs1: isa.RA},
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("jalr form %d = %+v, want %+v", i, ins[i], want[i])
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"unknown mnemonic", "frobnicate a0", "unknown mnemonic"},
		{"undefined label", "j nowhere", "undefined label"},
		{"duplicate label", "x:\nx:\n ret", "duplicate label"},
		{"bad register", "add a0, a1, q9", "unknown register"},
		{"operand count", "add a0, a1", "want 3 operands"},
		{"imm range", "addi a0, a0, 5000", "immediate"},
		{"bad directive", ".bogus 1", "unknown directive"},
		{"inst in data", ".data\nadd a0, a0, a0", "data section"},
		{"bad int", "li a0, zzz", "bad integer"},
		{"bad mem operand", "lw a0, 4[sp]", "bad memory operand"},
		{"upper range", "lui a0, 0x100000", "20-bit"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("assembled, want error containing %q", c.frag)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("error %q does not contain %q", err, c.frag)
			}
		})
	}
}

func TestLineFor(t *testing.T) {
	p := mustAssemble(t, "\n\tnop\n\tnop\nmain:\n\tret\n")
	if p.LineFor[DefaultLayout.TextBase] != 2 {
		t.Errorf("LineFor[base] = %d, want 2", p.LineFor[DefaultLayout.TextBase])
	}
	if p.LineFor[DefaultLayout.TextBase+8] != 5 {
		t.Errorf("LineFor[base+8] = %d, want 5", p.LineFor[DefaultLayout.TextBase+8])
	}
}

func TestCommentsAndLabelsOnSameLine(t *testing.T) {
	p := mustAssemble(t, `
	start: nop # trailing comment
	       ret // another comment
	`)
	if p.NumInstructions() != 2 {
		t.Fatalf("got %d instructions, want 2", p.NumInstructions())
	}
	if _, ok := p.Entry("start"); !ok {
		t.Error("label on same line as instruction lost")
	}
}
