package asm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lofat/internal/isa"
)

// renderable reports whether Inst.String() output is valid assembler
// input for the instruction (branch/jump offsets render as numeric
// PC-relative targets, which the assembler accepts).
func renderable(in isa.Inst) bool {
	switch in.Op {
	case isa.OpFENCE:
		return true
	case isa.OpECALL, isa.OpEBREAK:
		return true
	}
	return in.Op.Format() != isa.FormatSys
}

func randomRenderableInst(r *rand.Rand) isa.Inst {
	for {
		in := randomInstFor(r)
		if renderable(in) {
			return in
		}
	}
}

// randomInstFor mirrors the generator in the isa tests (kept local to
// avoid an export): produces any valid instruction.
func randomInstFor(r *rand.Rand) isa.Inst {
	ops := []isa.Opcode{
		isa.OpLUI, isa.OpAUIPC, isa.OpJAL, isa.OpJALR,
		isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU,
		isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLBU, isa.OpLHU,
		isa.OpSB, isa.OpSH, isa.OpSW,
		isa.OpADDI, isa.OpSLTI, isa.OpSLTIU, isa.OpXORI, isa.OpORI, isa.OpANDI,
		isa.OpSLLI, isa.OpSRLI, isa.OpSRAI,
		isa.OpADD, isa.OpSUB, isa.OpSLL, isa.OpSLT, isa.OpSLTU, isa.OpXOR,
		isa.OpSRL, isa.OpSRA, isa.OpOR, isa.OpAND,
		isa.OpMUL, isa.OpMULH, isa.OpMULHSU, isa.OpMULHU,
		isa.OpDIV, isa.OpDIVU, isa.OpREM, isa.OpREMU,
		isa.OpECALL, isa.OpEBREAK, isa.OpFENCE,
	}
	op := ops[r.Intn(len(ops))]
	in := isa.Inst{Op: op}
	switch op.Format() {
	case isa.FormatR:
		in.Rd = isa.Reg(r.Intn(32))
		in.Rs1 = isa.Reg(r.Intn(32))
		in.Rs2 = isa.Reg(r.Intn(32))
	case isa.FormatI:
		in.Rd = isa.Reg(r.Intn(32))
		in.Rs1 = isa.Reg(r.Intn(32))
		if op == isa.OpSLLI || op == isa.OpSRLI || op == isa.OpSRAI {
			in.Imm = int32(r.Intn(32))
		} else {
			in.Imm = int32(r.Intn(1<<12)) - 1<<11
		}
	case isa.FormatS:
		in.Rs1 = isa.Reg(r.Intn(32))
		in.Rs2 = isa.Reg(r.Intn(32))
		in.Imm = int32(r.Intn(1<<12)) - 1<<11
	case isa.FormatB:
		in.Rs1 = isa.Reg(r.Intn(32))
		in.Rs2 = isa.Reg(r.Intn(32))
		in.Imm = (int32(r.Intn(1<<12)) - 1<<11) &^ 1
	case isa.FormatU:
		in.Rd = isa.Reg(r.Intn(32))
		in.Imm = int32(r.Uint32() & 0xFFFFF000)
	case isa.FormatJ:
		in.Rd = isa.Reg(r.Intn(32))
		in.Imm = (int32(r.Intn(1<<20)) - 1<<19) &^ 1
	}
	return in
}

// Property: assembling an instruction's String() rendering reproduces
// the exact machine encoding — the disassembler syntax and the assembler
// grammar agree.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		in := randomRenderableInst(r)
		want := isa.MustEncode(in)

		src := in.String()
		p, err := Assemble(src)
		if err != nil {
			t.Fatalf("Assemble(%q): %v", src, err)
		}
		if len(p.Text) != 4 {
			t.Fatalf("Assemble(%q): %d bytes", src, len(p.Text))
		}
		got := binary.LittleEndian.Uint32(p.Text)
		if got != want {
			gotIn, _ := isa.Decode(got)
			t.Fatalf("round trip %q: got %#08x (%v), want %#08x (%+v)",
				src, got, gotIn, want, in)
		}
	}
}

// Property: a whole random instruction sequence survives the text round
// trip, preserving label-free addressing.
func TestProgramTextRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 50; trial++ {
		var b strings.Builder
		var want []uint32
		for i := 0; i < 30; i++ {
			in := randomRenderableInst(r)
			fmt.Fprintln(&b, in.String())
			want = append(want, isa.MustEncode(in))
		}
		p, err := Assemble(b.String())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, b.String())
		}
		if p.NumInstructions() != len(want) {
			t.Fatalf("trial %d: %d instructions, want %d", trial, p.NumInstructions(), len(want))
		}
		for i, w := range want {
			got := binary.LittleEndian.Uint32(p.Text[4*i:])
			if got != w {
				t.Fatalf("trial %d inst %d: %#08x != %#08x", trial, i, got, w)
			}
		}
	}
}
