// Package asm is a two-pass RV32IM assembler. It replaces the RISC-V GCC
// toolchain the paper used to build its workloads: programs are written
// in conventional RISC-V assembly (ABI register names, labels,
// pseudo-instructions) and assembled to the binary image executed by the
// simulated core and attested by LO-FAT.
//
// Supported syntax:
//
//	label:                      # labels, one per line or before an instruction
//	add  a0, a1, a2             # R-type
//	addi sp, sp, -16            # I-type ALU
//	lw   ra, 12(sp)             # loads / stores with displacement syntax
//	beq  a0, zero, done         # branches to labels or numeric offsets
//	jal  ra, func               # jumps; jal/j/call/ret pseudo forms
//	li   a0, 0x12345678         # expands to lui+addi when needed
//	la   a0, buffer             # load address of a label
//	.text / .data               # section switch
//	.word 1, 2, 3               # literal words (either section)
//	.byte 1, 2                  # literal bytes (data section)
//	.space 64                   # zero-filled bytes
//	.align 4                    # align to 2^n? no: align to n bytes (power of two)
//	.equ NAME, value            # assembler constants
//
// Comments start with '#' or "//" and run to end of line.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"lofat/internal/isa"
)

// Program is the output of the assembler: a text image, a data image,
// and the symbol table. TextBase/DataBase are fixed by the caller's
// Layout (defaults match the simulator's default memory map).
type Program struct {
	TextBase uint32
	Text     []byte // little-endian instruction words
	DataBase uint32
	Data     []byte
	Labels   map[string]uint32
	// LineFor maps a text-section instruction address to the 1-based
	// source line it came from, for diagnostics and trace annotation.
	LineFor map[uint32]int
}

// Entry returns the address of the given label, typically "main" or
// "_start"; ok is false if undefined.
func (p *Program) Entry(label string) (uint32, bool) {
	a, ok := p.Labels[label]
	return a, ok
}

// NumInstructions reports the number of instruction words in the text image.
func (p *Program) NumInstructions() int { return len(p.Text) / 4 }

// Layout fixes the section bases for assembly.
type Layout struct {
	TextBase uint32
	DataBase uint32
}

// DefaultLayout matches the simulator's default memory map.
var DefaultLayout = Layout{TextBase: 0x0000_1000, DataBase: 0x0010_0000}

// Error is an assembly diagnostic tied to a source line.
type Error struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble assembles source with the default layout.
func Assemble(source string) (*Program, error) {
	return AssembleLayout(source, DefaultLayout)
}

// section identifiers
const (
	secText = iota
	secData
)

// item is an intermediate representation entry produced by pass 1.
type item struct {
	line    int
	section int
	addr    uint32
	// exactly one of the below is set
	inst  *instStmt
	bytes []byte // literal data (.word/.byte/.space payload)
}

type instStmt struct {
	mnemonic string
	operands []string
}

type assembler struct {
	layout   Layout
	labels   map[string]uint32
	equs     map[string]int64
	items    []item
	textSize uint32
	dataSize uint32
}

// AssembleLayout assembles source into a Program at the given bases.
func AssembleLayout(source string, layout Layout) (*Program, error) {
	a := &assembler{
		layout: layout,
		labels: make(map[string]uint32),
		equs:   make(map[string]int64),
	}
	if err := a.pass1(source); err != nil {
		return nil, err
	}
	return a.pass2()
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

// pass1 tokenizes, expands sizes, and assigns addresses to labels.
func (a *assembler) pass1(source string) error {
	section := secText
	for lineNo, raw := range strings.Split(source, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		lineNum := lineNo + 1

		// Peel off any leading labels.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !isIdent(name) {
				break // e.g. "12(sp):" cannot happen, but a ':' inside operands could
			}
			if _, dup := a.labels[name]; dup {
				return errf(lineNum, "duplicate label %q", name)
			}
			a.labels[name] = a.cursor(section)
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}

		fields := strings.SplitN(line, " ", 2)
		mnemonic := strings.ToLower(strings.TrimSpace(fields[0]))
		rest := ""
		if len(fields) == 2 {
			rest = strings.TrimSpace(fields[1])
		}

		if strings.HasPrefix(mnemonic, ".") {
			var err error
			section, err = a.directive(lineNum, section, mnemonic, rest)
			if err != nil {
				return err
			}
			continue
		}

		operands := splitOperands(rest)
		size, err := instSize(lineNum, mnemonic, operands, a.equs)
		if err != nil {
			return err
		}
		if section != secText {
			return errf(lineNum, "instruction %q in data section", mnemonic)
		}
		a.items = append(a.items, item{
			line: lineNum, section: section, addr: a.cursor(section),
			inst: &instStmt{mnemonic: mnemonic, operands: operands},
		})
		a.textSize += size
	}
	return nil
}

func (a *assembler) cursor(section int) uint32 {
	if section == secText {
		return a.layout.TextBase + a.textSize
	}
	return a.layout.DataBase + a.dataSize
}

func (a *assembler) advance(section int, n uint32) {
	if section == secText {
		a.textSize += n
	} else {
		a.dataSize += n
	}
}

func (a *assembler) directive(line, section int, name, rest string) (int, error) {
	switch name {
	case ".text":
		return secText, nil
	case ".data":
		return secData, nil
	case ".globl", ".global", ".type", ".size", ".option", ".file":
		return section, nil // accepted and ignored for GNU as compatibility
	case ".equ", ".set":
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return section, errf(line, ".equ wants NAME, value")
		}
		v, err := a.evalInt(line, parts[1])
		if err != nil {
			return section, err
		}
		a.equs[parts[0]] = v
		return section, nil
	case ".word":
		vals := splitOperands(rest)
		buf := make([]byte, 0, 4*len(vals))
		for _, s := range vals {
			v, err := a.evalIntOrLabelPlaceholder(line, s)
			if err != nil {
				return section, err
			}
			buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		// Label references inside .word are resolved in pass 2; we
		// record the raw operand strings alongside.
		a.items = append(a.items, item{line: line, section: section,
			addr: a.cursor(section), bytes: buf,
			inst: &instStmt{mnemonic: ".word", operands: vals}})
		a.advance(section, uint32(len(buf)))
		return section, nil
	case ".byte":
		vals := splitOperands(rest)
		buf := make([]byte, 0, len(vals))
		for _, s := range vals {
			v, err := a.evalInt(line, s)
			if err != nil {
				return section, err
			}
			if v < -128 || v > 255 {
				return section, errf(line, ".byte value %d out of range", v)
			}
			buf = append(buf, byte(v))
		}
		a.items = append(a.items, item{line: line, section: section,
			addr: a.cursor(section), bytes: buf})
		a.advance(section, uint32(len(buf)))
		return section, nil
	case ".space", ".zero":
		n, err := a.evalInt(line, strings.TrimSpace(rest))
		if err != nil {
			return section, err
		}
		if n < 0 || n > 1<<20 {
			return section, errf(line, ".space size %d out of range", n)
		}
		a.items = append(a.items, item{line: line, section: section,
			addr: a.cursor(section), bytes: make([]byte, n)})
		a.advance(section, uint32(n))
		return section, nil
	case ".align":
		n, err := a.evalInt(line, strings.TrimSpace(rest))
		if err != nil {
			return section, err
		}
		if n < 0 || n > 12 {
			return section, errf(line, ".align %d out of range (power of two exponent)", n)
		}
		align := uint32(1) << uint(n)
		cur := a.cursor(section)
		pad := (align - cur%align) % align
		if pad > 0 {
			a.items = append(a.items, item{line: line, section: section,
				addr: cur, bytes: make([]byte, pad)})
			a.advance(section, pad)
		}
		return section, nil
	}
	return section, errf(line, "unknown directive %q", name)
}

// evalIntOrLabelPlaceholder evaluates an integer if possible; labels are
// deferred to pass 2 (returns 0 placeholder).
func (a *assembler) evalIntOrLabelPlaceholder(line int, s string) (int64, error) {
	if isIdent(s) {
		if v, ok := a.equs[s]; ok {
			return v, nil
		}
		return 0, nil // label: patched in pass 2
	}
	return a.evalInt(line, s)
}

// pass2 encodes all instructions now that every label address is known.
func (a *assembler) pass2() (*Program, error) {
	p := &Program{
		TextBase: a.layout.TextBase,
		DataBase: a.layout.DataBase,
		Text:     make([]byte, 0, a.textSize),
		Data:     make([]byte, 0, a.dataSize),
		Labels:   a.labels,
		LineFor:  make(map[uint32]int),
	}
	for _, it := range a.items {
		switch {
		case it.inst != nil && it.inst.mnemonic == ".word":
			// Patch label references.
			buf := make([]byte, 0, len(it.bytes))
			for _, s := range it.inst.operands {
				var v int64
				if isIdent(s) && !a.isEqu(s) {
					addr, ok := a.labels[s]
					if !ok {
						return nil, errf(it.line, "undefined label %q in .word", s)
					}
					v = int64(addr)
				} else {
					var err error
					v, err = a.evalIntOrLabelPlaceholder(it.line, s)
					if err != nil {
						return nil, err
					}
				}
				buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			a.emit(p, it.section, buf)

		case it.inst != nil:
			words, err := a.encodeInst(it)
			if err != nil {
				return nil, err
			}
			for i, w := range words {
				p.LineFor[it.addr+uint32(4*i)] = it.line
				a.emit(p, it.section, []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)})
			}

		default:
			a.emit(p, it.section, it.bytes)
		}
	}
	return p, nil
}

func (a *assembler) isEqu(s string) bool {
	_, ok := a.equs[s]
	return ok
}

func (a *assembler) emit(p *Program, section int, b []byte) {
	if section == secText {
		p.Text = append(p.Text, b...)
	} else {
		p.Data = append(p.Data, b...)
	}
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitOperands splits "a0, 12(sp)" into {"a0", "12(sp)"}.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

// evalInt parses a literal integer (decimal, 0x hex, 0b binary, char) or
// .equ constant.
func (a *assembler) evalInt(line int, s string) (int64, error) {
	if v, ok := a.equs[s]; ok {
		return v, nil
	}
	return parseInt(line, s)
}

func parseInt(line int, s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, errf(line, "empty integer")
	}
	neg := false
	if s[0] == '-' {
		neg = true
		s = s[1:]
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body := s[1 : len(s)-1]
		if body == "\\n" {
			return 10, nil
		}
		if len(body) == 1 {
			v := int64(body[0])
			if neg {
				v = -v
			}
			return v, nil
		}
		return 0, errf(line, "bad char literal %q", s)
	}
	v, err := strconv.ParseUint(s, 0, 33)
	if err != nil {
		return 0, errf(line, "bad integer %q", s)
	}
	r := int64(v)
	if neg {
		r = -r
	}
	if r > 1<<32-1 || r < -(1<<31) {
		return 0, errf(line, "integer %q out of 32-bit range", s)
	}
	return r, nil
}

var _ = isa.NumRegs // keep the import pinned for the doc reference
