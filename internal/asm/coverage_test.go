package asm

import (
	"strings"
	"testing"

	"lofat/internal/isa"
)

// Directive corner cases.
func TestDirectiveCoverage(t *testing.T) {
	p := mustAssemble(t, `
		.globl main
		.option norvc
		.equ K, 10
		.set  K2, 0x20
		.data
	b1:
		.byte -1, 255, 'a', '\n'
	sp1:
		.zero 8
	al:
		.align 3
	w1:
		.word K, K2
		.text
	main:
		li a0, K2
		ret
	`)
	if p.Data[0] != 0xFF || p.Data[1] != 0xFF || p.Data[2] != 'a' || p.Data[3] != 10 {
		t.Errorf(".byte payload = % x", p.Data[:4])
	}
	if p.Labels["al"]%8 == 0 && p.Labels["w1"]%8 != 0 {
		t.Errorf(".align 3 did not align w1: %#x", p.Labels["w1"])
	}
	ins := decodeAll(t, p)
	if ins[0].Imm != 0x20 {
		t.Errorf("li K2 = %+v", ins[0])
	}
}

func TestDirectiveErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{".equ ONLY", "wants NAME"},
		{".byte 300", "out of range"},
		{".byte 'xy'", "bad char literal"},
		{".space -1", "out of range"},
		{".space zz", "bad integer"},
		{".align 99", "out of range"},
		{".word nosuchlabel", "undefined label"},
		{"li a0, 99999999999", "bad integer"},
		{"li a0, 5000000000", "out of 32-bit range"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Assemble(%q) err = %v, want %q", c.src, err, c.frag)
		}
	}
}

func TestPseudoOperandErrors(t *testing.T) {
	bad := []string{
		"mv a0",
		"not a0",
		"neg a0",
		"seqz a0",
		"beqz a0",
		"bgt a0, a1",
		"j",
		"jr",
		"ret now",
		"li a0",
		"la a0",
		"la a0, nowhere",
		"jalr",
		"jalr a0, a1, a2, a3",
		"jal a0, b0, c0",
		"lui a0",
		"sw a0",
		"ecall now",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}

// Branch pseudo to numeric offsets (no label).
func TestNumericTargets(t *testing.T) {
	p := mustAssemble(t, `
		beqz a0, 8
		j    -4
	`)
	ins := decodeAll(t, p)
	if ins[0].Imm != 8 || ins[1].Imm != -4 {
		t.Errorf("numeric targets = %d, %d", ins[0].Imm, ins[1].Imm)
	}
}

// .equ used as a branch target offset.
func TestEquAsTarget(t *testing.T) {
	p := mustAssemble(t, `
		.equ STEP, 8
		beqz a0, STEP
		nop
		ret
	`)
	ins := decodeAll(t, p)
	if ins[0].Imm != 8 {
		t.Errorf("equ target = %d", ins[0].Imm)
	}
}

// Multiple labels on one address.
func TestAliasedLabels(t *testing.T) {
	p := mustAssemble(t, `
	a: b: c:
		ret
	`)
	if p.Labels["a"] != p.Labels["b"] || p.Labels["b"] != p.Labels["c"] {
		t.Error("aliased labels differ")
	}
}

// jalr with ABI x-names and `tail`.
func TestTailAndXNames(t *testing.T) {
	p := mustAssemble(t, `
	main:
		tail f
	f:
		add x5, x6, x7
		ret
	`)
	ins := decodeAll(t, p)
	if ins[0].Op != isa.OpJAL || ins[0].Rd != isa.Zero {
		t.Errorf("tail = %+v", ins[0])
	}
	if ins[1] != (isa.Inst{Op: isa.OpADD, Rd: isa.T0, Rs1: isa.T1, Rs2: isa.T2}) {
		t.Errorf("x-name add = %+v", ins[1])
	}
}
