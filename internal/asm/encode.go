package asm

import (
	"strings"

	"lofat/internal/isa"
)

// realFormats lists mnemonics that map 1:1 to an isa.Opcode.
func realOpcode(mnemonic string) (isa.Opcode, bool) {
	return isa.OpcodeByName(mnemonic)
}

// pseudo-instruction registry: name -> fixed word count (li is variable
// and handled separately).
var pseudoSize = map[string]uint32{
	"nop": 1, "mv": 1, "not": 1, "neg": 1,
	"seqz": 1, "snez": 1, "sltz": 1, "sgtz": 1,
	"beqz": 1, "bnez": 1, "blez": 1, "bgez": 1, "bltz": 1, "bgtz": 1,
	"bgt": 1, "ble": 1, "bgtu": 1, "bleu": 1,
	"j": 1, "jr": 1, "call": 1, "tail": 1, "ret": 1,
	"la": 2,
}

// instSize returns the number of bytes an instruction statement will
// occupy, needed by pass 1 to lay out labels.
func instSize(line int, mnemonic string, operands []string, equs map[string]int64) (uint32, error) {
	if _, ok := realOpcode(mnemonic); ok {
		return 4, nil
	}
	if n, ok := pseudoSize[mnemonic]; ok {
		return 4 * n, nil
	}
	if mnemonic == "li" {
		if len(operands) != 2 {
			return 0, errf(line, "li wants rd, imm")
		}
		v, err := evalWith(line, operands[1], equs)
		if err != nil {
			return 0, err
		}
		// Normalize to the 32-bit value the expansion will see so the
		// size estimate always matches expandLI's word count.
		v32 := int32(uint32(v))
		if v32 >= -2048 && v32 <= 2047 {
			return 4, nil
		}
		if uint32(v)&0xFFF == 0 {
			return 4, nil // plain lui
		}
		return 8, nil
	}
	return 0, errf(line, "unknown mnemonic %q", mnemonic)
}

func evalWith(line int, s string, equs map[string]int64) (int64, error) {
	if v, ok := equs[s]; ok {
		return v, nil
	}
	return parseInt(line, s)
}

// encodeInst lowers one statement to one or more machine words.
func (a *assembler) encodeInst(it item) ([]uint32, error) {
	st := it.inst
	line := it.line
	ops := st.operands

	reg := func(i int) (isa.Reg, error) {
		if i >= len(ops) {
			return 0, errf(line, "%s: missing operand %d", st.mnemonic, i+1)
		}
		r, err := isa.RegByName(ops[i])
		if err != nil {
			return 0, errf(line, "%s: %v", st.mnemonic, err)
		}
		return r, nil
	}
	imm := func(i int) (int64, error) {
		if i >= len(ops) {
			return 0, errf(line, "%s: missing operand %d", st.mnemonic, i+1)
		}
		return a.evalInt(line, ops[i])
	}
	// target resolves a branch/jump target operand to a PC-relative
	// byte offset.
	target := func(i int) (int32, error) {
		if i >= len(ops) {
			return 0, errf(line, "%s: missing target operand", st.mnemonic)
		}
		s := ops[i]
		if addr, ok := a.labels[s]; ok {
			return int32(addr - it.addr), nil
		}
		if isIdent(s) && !a.isEqu(s) {
			return 0, errf(line, "%s: undefined label %q", st.mnemonic, s)
		}
		v, err := a.evalInt(line, s)
		if err != nil {
			return 0, err
		}
		return int32(v), nil
	}
	one := func(in isa.Inst) ([]uint32, error) {
		w, err := isa.Encode(in)
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		return []uint32{w}, nil
	}
	expect := func(n int) error {
		if len(ops) != n {
			return errf(line, "%s: want %d operands, got %d", st.mnemonic, n, len(ops))
		}
		return nil
	}

	if op, ok := realOpcode(st.mnemonic); ok {
		switch op.Format() {
		case isa.FormatR:
			if err := expect(3); err != nil {
				return nil, err
			}
			rd, err := reg(0)
			if err != nil {
				return nil, err
			}
			rs1, err := reg(1)
			if err != nil {
				return nil, err
			}
			rs2, err := reg(2)
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})

		case isa.FormatI:
			switch op {
			case isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLBU, isa.OpLHU:
				if err := expect(2); err != nil {
					return nil, err
				}
				rd, err := reg(0)
				if err != nil {
					return nil, err
				}
				off, base, err := a.memOperand(line, ops[1])
				if err != nil {
					return nil, err
				}
				return one(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: off})
			case isa.OpJALR:
				return a.encodeJALR(it)
			default: // ALU immediates and shifts
				if err := expect(3); err != nil {
					return nil, err
				}
				rd, err := reg(0)
				if err != nil {
					return nil, err
				}
				rs1, err := reg(1)
				if err != nil {
					return nil, err
				}
				v, err := imm(2)
				if err != nil {
					return nil, err
				}
				return one(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int32(v)})
			}

		case isa.FormatS:
			if err := expect(2); err != nil {
				return nil, err
			}
			rs2, err := reg(0)
			if err != nil {
				return nil, err
			}
			off, base, err := a.memOperand(line, ops[1])
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: op, Rs1: base, Rs2: rs2, Imm: off})

		case isa.FormatB:
			if err := expect(3); err != nil {
				return nil, err
			}
			rs1, err := reg(0)
			if err != nil {
				return nil, err
			}
			rs2, err := reg(1)
			if err != nil {
				return nil, err
			}
			off, err := target(2)
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})

		case isa.FormatU:
			if err := expect(2); err != nil {
				return nil, err
			}
			rd, err := reg(0)
			if err != nil {
				return nil, err
			}
			v, err := imm(1)
			if err != nil {
				return nil, err
			}
			if v < 0 || v > 0xFFFFF {
				return nil, errf(line, "%s: upper immediate %d out of 20-bit range", st.mnemonic, v)
			}
			return one(isa.Inst{Op: op, Rd: rd, Imm: int32(v << 12)})

		case isa.FormatJ:
			switch len(ops) {
			case 1: // jal target (rd=ra implied)
				off, err := target(0)
				if err != nil {
					return nil, err
				}
				return one(isa.Inst{Op: op, Rd: isa.RA, Imm: off})
			case 2:
				rd, err := reg(0)
				if err != nil {
					return nil, err
				}
				off, err := target(1)
				if err != nil {
					return nil, err
				}
				return one(isa.Inst{Op: op, Rd: rd, Imm: off})
			}
			return nil, errf(line, "jal wants [rd,] target")

		case isa.FormatSys:
			if err := expect(0); err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: op})
		}
	}

	// Pseudo-instructions.
	switch st.mnemonic {
	case "nop":
		return one(isa.Inst{Op: isa.OpADDI})
	case "mv":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rs})
	case "not":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpXORI, Rd: rd, Rs1: rs, Imm: -1})
	case "neg":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpSUB, Rd: rd, Rs2: rs})
	case "seqz":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpSLTIU, Rd: rd, Rs1: rs, Imm: 1})
	case "snez":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpSLTU, Rd: rd, Rs2: rs})
	case "sltz":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpSLT, Rd: rd, Rs1: rs})
	case "sgtz":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpSLT, Rd: rd, Rs2: rs})

	case "beqz", "bnez", "blez", "bgez", "bltz", "bgtz":
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		off, err := target(1)
		if err != nil {
			return nil, err
		}
		switch st.mnemonic {
		case "beqz":
			return one(isa.Inst{Op: isa.OpBEQ, Rs1: rs, Imm: off})
		case "bnez":
			return one(isa.Inst{Op: isa.OpBNE, Rs1: rs, Imm: off})
		case "blez":
			return one(isa.Inst{Op: isa.OpBGE, Rs2: rs, Imm: off})
		case "bgez":
			return one(isa.Inst{Op: isa.OpBGE, Rs1: rs, Imm: off})
		case "bltz":
			return one(isa.Inst{Op: isa.OpBLT, Rs1: rs, Imm: off})
		default: // bgtz
			return one(isa.Inst{Op: isa.OpBLT, Rs2: rs, Imm: off})
		}

	case "bgt", "ble", "bgtu", "bleu":
		rs1, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs2, err := reg(1)
		if err != nil {
			return nil, err
		}
		off, err := target(2)
		if err != nil {
			return nil, err
		}
		switch st.mnemonic {
		case "bgt":
			return one(isa.Inst{Op: isa.OpBLT, Rs1: rs2, Rs2: rs1, Imm: off})
		case "ble":
			return one(isa.Inst{Op: isa.OpBGE, Rs1: rs2, Rs2: rs1, Imm: off})
		case "bgtu":
			return one(isa.Inst{Op: isa.OpBLTU, Rs1: rs2, Rs2: rs1, Imm: off})
		default: // bleu
			return one(isa.Inst{Op: isa.OpBGEU, Rs1: rs2, Rs2: rs1, Imm: off})
		}

	case "j", "tail":
		off, err := target(0)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpJAL, Rd: isa.Zero, Imm: off})
	case "call":
		off, err := target(0)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpJAL, Rd: isa.RA, Imm: off})
	case "jr":
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpJALR, Rd: isa.Zero, Rs1: rs})
	case "ret":
		if err := expect(0); err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpJALR, Rd: isa.Zero, Rs1: isa.RA})

	case "li":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		v, err := imm(1)
		if err != nil {
			return nil, err
		}
		return a.expandLI(line, rd, uint32(v))

	case "la":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		if len(ops) != 2 {
			return nil, errf(line, "la wants rd, label")
		}
		addr, ok := a.labels[ops[1]]
		if !ok {
			return nil, errf(line, "la: undefined label %q", ops[1])
		}
		return a.expandLA(line, rd, addr)
	}
	return nil, errf(line, "unknown mnemonic %q", st.mnemonic)
}

// expandLI emits the canonical lui+addi (or single-instruction) sequence
// for a 32-bit constant. The word count must match instSize's estimate.
func (a *assembler) expandLI(line int, rd isa.Reg, v uint32) ([]uint32, error) {
	sv := int32(v)
	if sv >= -2048 && sv <= 2047 {
		w, err := isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: rd, Imm: sv})
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		return []uint32{w}, nil
	}
	upper := (v + 0x800) & 0xFFFF_F000
	low := int32(v - upper) // sign-extends correctly into [-2048, 2047]
	lui, err := isa.Encode(isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: int32(upper)})
	if err != nil {
		return nil, errf(line, "%v", err)
	}
	if low == 0 {
		return []uint32{lui}, nil
	}
	addi, err := isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: low})
	if err != nil {
		return nil, errf(line, "%v", err)
	}
	return []uint32{lui, addi}, nil
}

// expandLA emits a fixed two-word lui+addi for a label address so pass-1
// sizing never depends on label values (which are not final in pass 1).
func (a *assembler) expandLA(line int, rd isa.Reg, addr uint32) ([]uint32, error) {
	upper := (addr + 0x800) & 0xFFFF_F000
	low := int32(addr - upper)
	lui, err := isa.Encode(isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: int32(upper)})
	if err != nil {
		return nil, errf(line, "%v", err)
	}
	addi, err := isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: low})
	if err != nil {
		return nil, errf(line, "%v", err)
	}
	return []uint32{lui, addi}, nil
}

// encodeJALR handles the accepted jalr spellings:
//
//	jalr rs1              (rd=ra, imm=0)
//	jalr rd, rs1          (imm=0)
//	jalr rd, imm(rs1)
//	jalr rd, rs1, imm
func (a *assembler) encodeJALR(it item) ([]uint32, error) {
	line, ops := it.line, it.inst.operands
	var rd, rs1 isa.Reg
	var off int32
	var err error
	switch len(ops) {
	case 1:
		rd = isa.RA
		rs1, err = isa.RegByName(ops[0])
		if err != nil {
			return nil, errf(line, "jalr: %v", err)
		}
	case 2:
		rd, err = isa.RegByName(ops[0])
		if err != nil {
			return nil, errf(line, "jalr: %v", err)
		}
		if strings.Contains(ops[1], "(") {
			off, rs1, err = a.memOperand(line, ops[1])
			if err != nil {
				return nil, err
			}
		} else {
			rs1, err = isa.RegByName(ops[1])
			if err != nil {
				return nil, errf(line, "jalr: %v", err)
			}
		}
	case 3:
		rd, err = isa.RegByName(ops[0])
		if err != nil {
			return nil, errf(line, "jalr: %v", err)
		}
		rs1, err = isa.RegByName(ops[1])
		if err != nil {
			return nil, errf(line, "jalr: %v", err)
		}
		v, err := a.evalInt(line, ops[2])
		if err != nil {
			return nil, err
		}
		off = int32(v)
	default:
		return nil, errf(line, "jalr wants 1-3 operands")
	}
	w, err := isa.Encode(isa.Inst{Op: isa.OpJALR, Rd: rd, Rs1: rs1, Imm: off})
	if err != nil {
		return nil, errf(line, "%v", err)
	}
	return []uint32{w}, nil
}

// memOperand parses "imm(reg)" or "(reg)".
func (a *assembler) memOperand(line int, s string) (int32, isa.Reg, error) {
	open := strings.IndexByte(s, '(')
	close := strings.IndexByte(s, ')')
	if open < 0 || close < open {
		return 0, 0, errf(line, "bad memory operand %q (want imm(reg))", s)
	}
	var off int64
	if d := strings.TrimSpace(s[:open]); d != "" {
		var err error
		off, err = a.evalInt(line, d)
		if err != nil {
			return 0, 0, err
		}
	}
	r, err := isa.RegByName(strings.TrimSpace(s[open+1 : close]))
	if err != nil {
		return 0, 0, errf(line, "bad memory operand %q: %v", s, err)
	}
	return int32(off), r, nil
}
