// Package cflat implements the paper's software baseline: C-FLAT (Abera
// et al., CCS 2016), the control-flow attestation scheme LO-FAT is
// measured against. C-FLAT instruments every control-flow instruction to
// trap into a measurement runtime inside a TEE, which updates a
// cumulative hash in software. Its two defining costs — the ones §1 and
// §7 criticise — are modeled faithfully:
//
//  1. run-time overhead LINEAR in the number of control-flow events
//     (each event detours through the trampoline and a software hash
//     update on the main core, stalling the application), and
//  2. binary rewriting: every control-flow instruction grows by the
//     trampoline stub, breaking legacy compliance.
//
// The measurement itself (hash over (Src,Dest) pairs) is computed with
// the same algorithm as LO-FAT's device so that the comparison isolates
// the cost model, not the measurement semantics.
package cflat

import (
	"fmt"

	"lofat/internal/asm"
	"lofat/internal/cfg"
	"lofat/internal/cpu"
	"lofat/internal/hashengine"
	"lofat/internal/isa"
	"lofat/internal/trace"
)

// CostModel captures the per-event software attestation cost on the
// prover's main core.
type CostModel struct {
	// TrampolineCycles is the control transfer into and out of the
	// measurement runtime (world switch on TrustZone-class hardware).
	TrampolineCycles uint64
	// HashUpdateCycles is one software hash-absorb of a 64-bit
	// (Src,Dest) pair. A software SHA-3/BLAKE2 on a 32-bit MCU costs
	// on the order of hundreds of cycles per absorbed block once the
	// permutation is amortised.
	HashUpdateCycles uint64
	// LoopHandlingCycles is the extra bookkeeping C-FLAT performs at
	// instrumented loop entries/exits.
	LoopHandlingCycles uint64
}

// DefaultCostModel is calibrated to the C-FLAT paper's observation of
// substantial slowdowns on branch-dense code: several hundred cycles of
// software work per control-flow event.
var DefaultCostModel = CostModel{
	TrampolineCycles:   60,
	HashUpdateCycles:   480,
	LoopHandlingCycles: 40,
}

// StubWords is the number of extra instruction words the rewriter
// inserts per control-flow instruction (save regs, load runtime address,
// call, restore). Used for the binary-size overhead metric.
const StubWords = 6

// Result is one instrumented-execution measurement.
type Result struct {
	// Hash is the cumulative measurement (same semantics as LO-FAT's A
	// for non-loop handling; loop compression differs but the workload
	// comparison uses event counts).
	Hash [hashengine.DigestSize]byte
	// BaseCycles is the uninstrumented execution time.
	BaseCycles uint64
	// TotalCycles includes the per-event software attestation work.
	TotalCycles uint64
	// Events is the number of control-flow events attested.
	Events uint64
	// LoopEvents is the subset at instrumented loop boundaries.
	LoopEvents uint64
	// ExitCode is the program's result (must be unchanged by
	// instrumentation).
	ExitCode uint32
}

// Overhead returns the run-time overhead factor (TotalCycles/BaseCycles).
func (r Result) Overhead() float64 {
	if r.BaseCycles == 0 {
		return 0
	}
	return float64(r.TotalCycles) / float64(r.BaseCycles)
}

// AddedCycles is the absolute attestation cost.
func (r Result) AddedCycles() uint64 { return r.TotalCycles - r.BaseCycles }

// Runner executes programs under the C-FLAT cost model.
type Runner struct {
	Costs CostModel
	// MaxInstructions bounds a run.
	MaxInstructions uint64
}

// NewRunner returns a runner with the default calibration.
func NewRunner() *Runner {
	return &Runner{Costs: DefaultCostModel, MaxInstructions: 50_000_000}
}

// measureSink accumulates the instrumented-execution costs over the
// core's batched control-flow-only trace port. C-FLAT's shim only ever
// fires on control-flow instructions, so the mask is exact by
// construction.
type measureSink struct {
	costs      CostModel
	events     uint64
	loopEvents uint64
	attCycles  uint64
	sponge     hashengine.Sponge
}

// RetireBatch implements trace.BatchSink.
func (s *measureSink) RetireBatch(events []trace.Event) {
	for i := range events {
		e := &events[i]
		if e.Kind == isa.KindNone {
			continue
		}
		s.events++
		// Trampoline + software hash absorb on the main core: the
		// application is stalled for the duration.
		s.attCycles += s.costs.TrampolineCycles + s.costs.HashUpdateCycles
		if e.IsBackward() && !e.Linking {
			s.loopEvents++
			s.attCycles += s.costs.LoopHandlingCycles
		}
		src, dest := e.SrcDest()
		s.sponge.WritePair(src, dest)
	}
}

// Sync implements trace.BatchSink; the software shim has no clock model.
func (s *measureSink) Sync(uint64) {}

// Run executes the program with input under instrumentation.
func (r *Runner) Run(prog *asm.Program, input []uint32) (Result, error) {
	mach, err := cpu.Load(prog, cpu.LoadOptions{})
	if err != nil {
		return Result{}, err
	}
	sink := &measureSink{costs: r.Costs}
	mach.CPU.Input = input
	mach.CPU.TraceBatch = sink
	mach.CPU.TraceCFOnly = true

	if err := mach.CPU.Run(r.MaxInstructions); err != nil {
		return Result{}, err
	}
	res := Result{
		Events:      sink.events,
		LoopEvents:  sink.loopEvents,
		BaseCycles:  mach.CPU.Cycle,
		TotalCycles: mach.CPU.Cycle + sink.attCycles,
		Hash:        sink.sponge.Sum(),
		ExitCode:    mach.CPU.ExitCode,
	}
	return res, nil
}

// SizeOverhead reports the static binary-growth of C-FLAT's rewriting:
// bytes added and the growth factor, computed from the CFG's control-flow
// instruction count. LO-FAT's corresponding number is zero (legacy
// compliance, no rewriting).
func SizeOverhead(prog *asm.Program) (addedBytes int, factor float64, err error) {
	g, err := cfg.Build(prog.Text, prog.TextBase, nil)
	if err != nil {
		return 0, 0, fmt.Errorf("cflat: %w", err)
	}
	cfCount := 0
	for _, in := range g.Instrs {
		if in.Inst.Op.IsControlFlow() {
			cfCount++
		}
	}
	added := cfCount * StubWords * 4
	return added, float64(len(prog.Text)+added) / float64(len(prog.Text)), nil
}
