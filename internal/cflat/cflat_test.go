package cflat

import (
	"testing"

	"lofat/internal/cpu"
	"lofat/internal/workloads"
)

// C-FLAT instrumentation must not change program semantics.
func TestSemanticsPreserved(t *testing.T) {
	r := NewRunner()
	for _, w := range workloads.All() {
		t.Run(w.Name, func(t *testing.T) {
			prog, err := w.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Run(prog, w.Input)
			if err != nil {
				t.Fatal(err)
			}
			if res.ExitCode != w.WantExit {
				t.Errorf("exit = %d, want %d", res.ExitCode, w.WantExit)
			}
		})
	}
}

// The defining property (§6.1): C-FLAT's overhead is linear in the
// number of control-flow events.
func TestOverheadLinearInEvents(t *testing.T) {
	r := NewRunner()
	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}

	type point struct{ events, added uint64 }
	var pts []point
	for _, steps := range []uint32{2, 8, 32} {
		res, err := r.Run(prog, []uint32{0xC0FFEE, 1, steps})
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{res.Events, res.AddedCycles()})
	}
	// added/events must be constant (within the loop-handling wobble).
	ratio0 := float64(pts[0].added) / float64(pts[0].events)
	for _, p := range pts[1:] {
		ratio := float64(p.added) / float64(p.events)
		if ratio < 0.9*ratio0 || ratio > 1.1*ratio0 {
			t.Errorf("cost per event drifted: %.1f vs %.1f", ratio, ratio0)
		}
	}
	if pts[2].added <= pts[0].added {
		t.Error("more events did not cost more")
	}
}

// Overhead factors are substantial on branch-dense code — the problem
// LO-FAT eliminates.
func TestOverheadSubstantial(t *testing.T) {
	r := NewRunner()
	w := workloads.CRC32() // 1 branch per ~4 instructions
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(prog, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead() < 2 {
		t.Errorf("overhead = %.2fx; expected branch-dense code to suffer >2x", res.Overhead())
	}
	if res.BaseCycles+res.Events*
		(r.Costs.TrampolineCycles+r.Costs.HashUpdateCycles) > res.TotalCycles {
		t.Error("total cycles below the per-event floor")
	}
}

// Base cycles equal the uninstrumented run (the cost model is additive).
func TestBaseCyclesMatchUninstrumented(t *testing.T) {
	w := workloads.BubbleSort()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewRunner().Run(prog, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := cpu.Load(prog, cpu.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mach.CPU.Input = w.Input
	if err := mach.CPU.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if res.BaseCycles != mach.CPU.Cycle {
		t.Errorf("base = %d, uninstrumented = %d", res.BaseCycles, mach.CPU.Cycle)
	}
}

// Binary rewriting grows the image; LO-FAT's is zero by design.
func TestSizeOverhead(t *testing.T) {
	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	added, factor, err := SizeOverhead(prog)
	if err != nil {
		t.Fatal(err)
	}
	if added <= 0 || factor <= 1 {
		t.Errorf("size overhead = %d bytes, %.2fx", added, factor)
	}
}

// Measurements are deterministic and input-sensitive.
func TestMeasurementProperties(t *testing.T) {
	r := NewRunner()
	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Run(prog, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(prog, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Error("measurement not deterministic")
	}
	c, err := r.Run(prog, []uint32{0xC0FFEE, 1, 9})
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash == a.Hash {
		t.Error("different input, same measurement")
	}
}
