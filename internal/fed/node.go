package fed

import (
	"fmt"
	"io"
	"sync"

	"lofat/internal/asm"
	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/fed/faultfs"
	"lofat/internal/fleet"
	"lofat/internal/obs"
)

// DefaultSnapshotEvery is the WAL record count that triggers automatic
// compaction into a fresh snapshot generation.
const DefaultSnapshotEvery = 4096

// DefaultLameDuckAfter is how many consecutive failed persistence
// passes a node tolerates before declaring its store dead and entering
// lame-duck service. One flaky fsync should not drain a node; a disk
// that fails twice in a row is not coming back on its own.
const DefaultLameDuckAfter = 2

// NodeConfig parameterises one verifier node.
type NodeConfig struct {
	// ID names the node in the ring and in persisted state.
	ID NodeID
	// Dir is the persistence directory; empty runs the node ephemeral
	// (no snapshot, no WAL — state dies with the process).
	Dir string
	// Fleet configures the node's underlying fleet service.
	Fleet fleet.Config
	// SnapshotEvery compacts the WAL into a new snapshot after this
	// many records (default DefaultSnapshotEvery).
	SnapshotEvery int
	// FS is the filesystem the store runs against; nil selects the real
	// one. Chaos tests pass a faultfs.Injector.
	FS faultfs.FS
	// LameDuckAfter is the consecutive persistence-failure threshold
	// that flips the node into lame-duck service (default
	// DefaultLameDuckAfter).
	LameDuckAfter int
}

// Node is one federation member: a fleet.Service plus its durability
// layer and the frame handler the coordinator talks to.
//
// Warm restart: NewNode loads the newest snapshot and replays the WAL,
// but the recovered device records cannot be enrolled until their
// program's offline analysis exists — so they wait in a pending set,
// and RegisterProgram adopts the ones belonging to the program it just
// registered. A node restarted with the same programs re-registered is
// therefore byte-for-byte back where it was killed: same membership,
// same quarantine flags, same breaker positions, same sweep-generation
// pacing. Cached measurements are not persisted (they are derivable);
// the first post-restart sweep re-warms them.
type Node struct {
	cfg   NodeConfig
	svc   *fleet.Service
	store *Store // nil when ephemeral

	mu sync.Mutex
	// pending holds restored device records awaiting their program's
	// registration, keyed by program then device.
	//lofat:guardedby mu
	pending map[attest.ProgramID]map[fleet.DeviceID]DeviceRecord
	// persisted mirrors what the WAL+snapshot durably describe, so the
	// post-sweep diff appends only records that actually changed.
	//lofat:guardedby mu
	persisted map[fleet.DeviceID]DeviceRecord
	// knownKeys tracks cache keys already WAL-logged. The measurements
	// behind them are not persisted (derivable, large) — sweeps re-warm
	// them lazily; the keys keep the durable picture complete.
	//lofat:guardedby mu
	knownKeys map[string]struct{}
	//lofat:guardedby mu
	persistedGen uint64
	//lofat:guardedby mu
	programs map[attest.ProgramID]registerReq
	//lofat:guardedby mu
	lastFlightSeq uint64
	//lofat:guardedby mu
	killed bool
	// storeFails counts consecutive failed persistence passes; at
	// cfg.LameDuckAfter the node goes lame: read-only degraded service.
	// A lame node still answers sweeps, transfers and syncs (in memory)
	// but refuses new enrolments, stops touching its broken store, and
	// reports itself unhealthy so the coordinator drains it.
	//lofat:guardedby mu
	storeFails int
	//lofat:guardedby mu
	lame bool
	//lofat:guardedby mu
	lameErr string
}

// NewNode builds the node, recovering persisted state when cfg.Dir is
// set. Registry membership restores lazily per program — see the type
// comment.
//
// (construction: the node is not yet published to any other goroutine,
// so its state is owned without taking the lock)
//
//lofat:locked mu
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("fed: node needs an ID")
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.LameDuckAfter <= 0 {
		cfg.LameDuckAfter = DefaultLameDuckAfter
	}
	n := &Node{
		cfg:       cfg,
		pending:   make(map[attest.ProgramID]map[fleet.DeviceID]DeviceRecord),
		persisted: make(map[fleet.DeviceID]DeviceRecord),
		knownKeys: make(map[string]struct{}),
		programs:  make(map[attest.ProgramID]registerReq),
	}
	var restored *State
	if cfg.Dir != "" {
		store, state, err := OpenStoreFS(cfg.FS, cfg.Dir, cfg.ID)
		if err != nil {
			return nil, err
		}
		n.store, restored = store, state
	}
	n.svc = fleet.NewService(cfg.Fleet)
	if restored != nil {
		for id, rec := range restored.Devices {
			byProg, ok := n.pending[rec.Program]
			if !ok {
				byProg = make(map[fleet.DeviceID]DeviceRecord)
				n.pending[rec.Program] = byProg
			}
			byProg[id] = rec
			n.persisted[id] = rec
		}
		for k := range restored.CacheKeys {
			n.knownKeys[k] = struct{}{}
		}
		n.persistedGen = restored.SweepGen
		n.svc.SyncSweepGeneration(restored.SweepGen)
	}
	return n, nil
}

// ID names the node.
func (n *Node) ID() NodeID { return n.cfg.ID }

// Service exposes the underlying fleet service (tests and local
// embedding; the coordinator goes through the frame protocol).
func (n *Node) Service() *fleet.Service { return n.svc }

// PendingDevices reports restored devices still awaiting their
// program's registration.
func (n *Node) PendingDevices() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for _, m := range n.pending {
		c += len(m)
	}
	return c
}

// RegisterProgram registers a firmware image on the node's fleet
// service and adopts any restored devices waiting for it (re-enrolling
// them with their persisted quarantine, breaker and counter state).
// Registration is idempotent — a coordinator re-registering on rejoin
// gets the same program ID back.
func (n *Node) RegisterProgram(prog *asm.Program, devCfg core.Config, inputs [][]uint32) (attest.ProgramID, error) {
	id := attest.ComputeProgramID(prog.Text)
	n.mu.Lock()
	_, known := n.programs[id]
	n.mu.Unlock()
	if !known {
		got, err := n.svc.RegisterProgram(prog, devCfg, inputs)
		if err != nil {
			return attest.ProgramID{}, err
		}
		id = got
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.programs[id] = registerReq{Prog: prog, DevCfg: devCfg, Inputs: inputs}
	for devID, rec := range n.pending[id] {
		if err := n.svc.EnrollState(rec.State()); err != nil {
			return id, fmt.Errorf("fed: node %s: restore device %q: %w", n.cfg.ID, devID, err)
		}
	}
	delete(n.pending, id)
	return id, nil
}

// Enroll adds (or restores) one device and logs it durably. A lame
// node refuses: it cannot durably own anything new, and refusing is
// what steers the coordinator's placement toward healthy replicas.
func (n *Node) Enroll(st fleet.DeviceState) error {
	n.mu.Lock()
	if n.lame {
		msg := n.lameErr
		n.mu.Unlock()
		return fmt.Errorf("fed: node %s: lame duck (read-only): %s", n.cfg.ID, msg)
	}
	n.mu.Unlock()
	if err := n.svc.EnrollState(st); err != nil {
		return err
	}
	rec := RecordFromState(st)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.persisted[st.ID] = rec
	return n.appendLocked(WALRecord{Kind: recUpsert, Device: rec})
}

// Transfer extracts one device for hand-off to another node: the
// device is removed (flight ring drained) and its final state returned;
// the removal is WAL-logged so a restart does not resurrect it.
func (n *Node) Transfer(id fleet.DeviceID) (fleet.DeviceState, bool, error) {
	st, ok := n.svc.Forget(id)
	if !ok {
		return fleet.DeviceState{}, false, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.persisted, id)
	return st, true, n.appendLocked(WALRecord{Kind: recForget, ID: id})
}

// Release lifts a device's quarantine (operator override), logging the
// change.
func (n *Node) Release(id fleet.DeviceID) (bool, error) {
	if !n.svc.Release(id) {
		return false, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if rec, ok := n.persisted[id]; ok {
		rec.Quarantined = false
		rec.ConsecutiveRejects = 0
		rec.TransportFails = 0
		rec.Breaker = fleet.BreakerHealthy
		n.persisted[id] = rec
	}
	return true, n.appendLocked(WALRecord{Kind: recQuarantine, ID: id, On: false})
}

// Sweep runs one program sweep on the node's fleet and persists the
// diff: every device whose persistable record changed, every cache key
// newly warmed, and the advanced sweep generation. It delegates to
// sweepEx with no device filter.
func (n *Node) Sweep(prog attest.ProgramID, input []uint32, streamed bool) (fleet.SweepReport, error) {
	rep, _, err := n.sweepEx(prog, input, streamed, false, nil)
	return rep, err
}

// sweepEx is the full-width sweep entry point: explicit selects a
// placement-directed sweep over exactly devices, and the returned
// changed slice (sorted by ID) lists every device record the round
// moved — the coordinator's anti-entropy feed. A persistence failure
// does not fail the sweep: the verdict was already computed, so the
// node records the store failure (eventually going lame) and serves
// the report regardless — losing durability must not lose coverage.
func (n *Node) sweepEx(prog attest.ProgramID, input []uint32, streamed bool, explicit bool, devices []fleet.DeviceID) (fleet.SweepReport, []DeviceRecord, error) {
	var rep fleet.SweepReport
	var err error
	if explicit {
		rep, err = n.svc.SweepProgramDevices(prog, input, streamed, devices)
	} else if streamed {
		rep, err = n.svc.SweepProgramStreamed(prog, input)
	} else {
		rep, err = n.svc.SweepProgram(prog, input)
	}
	if err != nil {
		return rep, nil, err
	}
	return rep, n.persistDiff(), nil
}

// persistDiff computes which device records drifted from the last
// persisted picture, appends WAL records for them (plus newly warmed
// cache keys and the advanced sweep generation), and compacts past the
// configured trigger. The changed records are returned even when the
// node is ephemeral or its store is failing — replication needs the
// delta regardless of local durability. Store errors never propagate:
// they feed the lame-duck counter instead (see storeFailLocked).
func (n *Node) persistDiff() []DeviceRecord {
	states := n.svc.Devices()
	keys := []string(nil)
	if c := n.svc.Cache(); c != nil {
		keys = c.Keys()
	}
	gen := n.svc.SweepGeneration()

	n.mu.Lock()
	defer n.mu.Unlock()
	var changed []DeviceRecord
	persistOK := true
	for _, st := range states {
		rec := RecordFromState(st)
		if prev, ok := n.persisted[st.ID]; ok && prev == rec {
			continue
		}
		changed = append(changed, rec)
		if !persistOK {
			continue
		}
		if err := n.appendLocked(WALRecord{Kind: recUpsert, Device: rec}); err != nil {
			n.storeFailLocked(err)
			persistOK = false
			continue
		}
		n.persisted[st.ID] = rec
	}
	if n.store == nil || n.lame {
		// Ephemeral nodes track the reported picture in n.persisted so
		// deltas stay precise; a lame node stops advancing it (the disk
		// no longer reflects it) and simply re-reports drift — the
		// anti-entropy upserts are idempotent.
		if n.store == nil {
			for _, rec := range changed {
				n.persisted[rec.ID] = rec
			}
		}
		return changed
	}
	if !persistOK {
		return changed
	}
	for _, k := range keys {
		if _, ok := n.knownKeys[k]; ok {
			continue
		}
		if err := n.appendLocked(WALRecord{Kind: recCacheKey, Key: k}); err != nil {
			n.storeFailLocked(err)
			return changed
		}
		n.knownKeys[k] = struct{}{}
	}
	if gen > n.persistedGen {
		if err := n.appendLocked(WALRecord{Kind: recSweepGen, Gen: gen}); err != nil {
			n.storeFailLocked(err)
			return changed
		}
		n.persistedGen = gen
	}
	if err := n.store.Sync(); err != nil {
		n.storeFailLocked(fmt.Errorf("fed: node %s: wal sync: %w", n.cfg.ID, err))
		return changed
	}
	if n.store.Records() >= n.cfg.SnapshotEvery {
		if err := n.compactLocked(); err != nil {
			n.storeFailLocked(err)
			return changed
		}
	}
	n.storeFails = 0
	return changed
}

// storeFailLocked records one failed persistence pass; at the
// configured threshold the node flips to lame duck. Caller holds n.mu.
//
//lofat:locked mu
func (n *Node) storeFailLocked(err error) {
	n.storeFails++
	n.lameErr = err.Error()
	if n.storeFails >= n.cfg.LameDuckAfter && !n.lame {
		n.lame = true
		if f := n.svc.Flight(); f != nil {
			f.Record(obs.Event{Device: string(n.cfg.ID), Kind: obs.KindLameDuck,
				Detail: n.lameErr, Sweep: n.svc.SweepGeneration()})
		}
	}
}

// Health reports whether the node is lame (read-only degraded service)
// and, if so, the store error that put it there.
func (n *Node) Health() (lame bool, reason string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lame, n.lameErr
}

// appendLocked logs one record (no-op when ephemeral or lame — a lame
// node's store is broken, and retrying every append against a dead
// disk would only add latency to the degraded service that remains).
// Caller holds n.mu.
//
//lofat:locked mu
func (n *Node) appendLocked(rec WALRecord) error {
	if n.store == nil || n.lame {
		return nil
	}
	if err := n.store.Append(rec); err != nil {
		return fmt.Errorf("fed: node %s: %w", n.cfg.ID, err)
	}
	return nil
}

// materializeLocked builds the State the store should describe. Caller
// holds n.mu.
//
//lofat:locked mu
func (n *Node) materializeLocked() *State {
	st := NewState(n.cfg.ID)
	st.SweepGen = n.persistedGen
	for id, rec := range n.persisted {
		st.Devices[id] = rec
	}
	// Devices still pending (program never re-registered this run) are
	// part of the durable picture too.
	for _, byProg := range n.pending {
		for id, rec := range byProg {
			st.Devices[id] = rec
		}
	}
	for k := range n.knownKeys {
		st.CacheKeys[k] = struct{}{}
	}
	return st
}

// MaterializedState returns the node's current durable picture — what
// a warm restart would recover. Chaos tests compare this across a
// kill/reopen cycle.
func (n *Node) MaterializedState() *State {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.materializeLocked()
}

//lofat:locked mu
func (n *Node) compactLocked() error {
	if err := n.store.Compact(n.materializeLocked()); err != nil {
		return fmt.Errorf("fed: node %s: %w", n.cfg.ID, err)
	}
	return nil
}

// Compact forces a snapshot generation now.
func (n *Node) Compact() error {
	if n.store == nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.compactLocked()
}

// SyncRecords applies authoritative device records pushed by the
// coordinator's anti-entropy pass (or its rejoin reconciliation):
// overwrite the policy fields of a device the node holds, enrol from
// the record when the program is registered but the device absent, and
// park it in the pending set otherwise (adopted when the program
// arrives, exactly like warm-restart recovery). Applied records are
// WAL-logged like any other state change.
func (n *Node) SyncRecords(recs []DeviceRecord) error {
	for _, rec := range recs {
		st := rec.State()
		if !n.svc.SyncState(st) {
			n.mu.Lock()
			_, registered := n.programs[rec.Program]
			n.mu.Unlock()
			if registered {
				if err := n.svc.EnrollState(st); err != nil {
					return fmt.Errorf("fed: node %s: sync device %q: %w", n.cfg.ID, rec.ID, err)
				}
			} else {
				n.mu.Lock()
				byProg, ok := n.pending[rec.Program]
				if !ok {
					byProg = make(map[fleet.DeviceID]DeviceRecord)
					n.pending[rec.Program] = byProg
				}
				byProg[rec.ID] = rec
				n.mu.Unlock()
			}
		}
		n.mu.Lock()
		if prev, ok := n.persisted[rec.ID]; !ok || prev != rec {
			if err := n.appendLocked(WALRecord{Kind: recUpsert, Device: rec}); err != nil {
				n.storeFailLocked(err)
			} else if n.store == nil || !n.lame {
				n.persisted[rec.ID] = rec
			}
		}
		n.mu.Unlock()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.store != nil && !n.lame {
		if err := n.store.Sync(); err != nil {
			n.storeFailLocked(fmt.Errorf("fed: node %s: wal sync: %w", n.cfg.ID, err))
			return nil
		}
		if n.store.Records() >= n.cfg.SnapshotEvery {
			if err := n.compactLocked(); err != nil {
				n.storeFailLocked(err)
			}
		}
	}
	return nil
}

// FetchRecords snapshots the named devices as wire records; devices
// the node does not hold are silently absent from the result.
func (n *Node) FetchRecords(ids []fleet.DeviceID) []DeviceRecord {
	out := make([]DeviceRecord, 0, len(ids))
	for _, id := range ids {
		if st, ok := n.svc.Device(id); ok {
			out = append(out, RecordFromState(st))
		}
	}
	return out
}

// Close shuts the node down cleanly: fleet workers drained, WAL synced
// and closed. A lame node's store is already broken — its handle is
// dropped crash-style rather than risking a hang on a dead disk.
func (n *Node) Close() error {
	n.svc.Close()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.store == nil || n.killed {
		return nil
	}
	if n.lame {
		n.store.Abandon()
		return nil
	}
	return n.store.Close()
}

// Kill is the chaos switch: the node stops as a crash would — no final
// sync, no snapshot, WAL handle dropped as-is. Whatever the OS already
// wrote is what recovery gets.
func (n *Node) Kill() {
	n.mu.Lock()
	if n.store != nil && !n.killed {
		n.store.Abandon()
	}
	n.killed = true
	n.mu.Unlock()
	n.svc.Close()
}

// ServeConn handles coordinator requests on one connection until EOF
// or transport error — the node side of the control plane. Run it in a
// goroutine per accepted connection.
func (n *Node) ServeConn(conn io.ReadWriter) error {
	for {
		if err := n.handleOne(conn); err != nil {
			return err
		}
	}
}

// handleOne reads and answers a single request frame. The returned
// error is transport-level only — request refusals go back on the wire
// as msgErr frames and keep the connection serving.
func (n *Node) handleOne(conn io.ReadWriter) error {
	typ, body, err := attest.ReadFrame(conn)
	if err != nil {
		return err
	}
	switch typ {
	case msgRegister:
		var req registerReq
		if err := decodePayload(body, &req); err != nil {
			return writeErr(conn, err)
		}
		id, err := n.RegisterProgram(req.Prog, req.DevCfg, req.Inputs)
		if err != nil {
			return writeErr(conn, err)
		}
		return writeResp(conn, msgOK, okResp{Node: n.cfg.ID, Program: id})
	case msgEnroll:
		var req enrollReq
		if err := decodePayload(body, &req); err != nil {
			return writeErr(conn, err)
		}
		if err := n.Enroll(req.State); err != nil {
			return writeErr(conn, err)
		}
		return writeResp(conn, msgOK, okResp{Node: n.cfg.ID})
	case msgSweep:
		var req sweepReq
		if err := decodePayload(body, &req); err != nil {
			return writeErr(conn, err)
		}
		rep, changed, err := n.sweepEx(req.Program, req.Input, req.Streamed, req.Explicit, req.Devices)
		if err != nil {
			return writeErr(conn, err)
		}
		lame, lameErr := n.Health()
		if !lame {
			lameErr = ""
		}
		nr := NodeReport{
			Node:     n.cfg.ID,
			Devices:  n.svc.FleetSize(),
			Report:   rep,
			Metrics:  n.svc.Metrics(),
			Flight:   n.flightDelta(),
			LameDuck: lame,
			StoreErr: lameErr,
		}
		if req.WantDelta {
			nr.Changed = changed
		}
		return writeResp(conn, msgReport, nr)
	case msgSync:
		var req syncReq
		if err := decodePayload(body, &req); err != nil {
			return writeErr(conn, err)
		}
		if err := n.SyncRecords(req.Records); err != nil {
			return writeErr(conn, err)
		}
		return writeResp(conn, msgOK, okResp{Node: n.cfg.ID})
	case msgFetch:
		var req fetchReq
		if err := decodePayload(body, &req); err != nil {
			return writeErr(conn, err)
		}
		return writeResp(conn, msgRecords, recordsResp{Records: n.FetchRecords(req.Devices)})
	case msgTransfer:
		var req deviceReq
		if err := decodePayload(body, &req); err != nil {
			return writeErr(conn, err)
		}
		st, found, err := n.Transfer(req.Device)
		if err != nil {
			return writeErr(conn, err)
		}
		return writeResp(conn, msgState, stateResp{Found: found, State: st})
	case msgRelease:
		var req deviceReq
		if err := decodePayload(body, &req); err != nil {
			return writeErr(conn, err)
		}
		found, err := n.Release(req.Device)
		if err != nil {
			return writeErr(conn, err)
		}
		st, _ := n.svc.Device(req.Device)
		return writeResp(conn, msgState, stateResp{Found: found, State: st})
	case msgGet:
		var req deviceReq
		if err := decodePayload(body, &req); err != nil {
			return writeErr(conn, err)
		}
		st, found := n.svc.Device(req.Device)
		return writeResp(conn, msgState, stateResp{Found: found, State: st})
	default:
		return writeErr(conn, fmt.Errorf("fed: node %s: unknown request type %d", n.cfg.ID, typ))
	}
}

// flightDelta returns the node's flight events newer than the last
// delta it shipped, so the coordinator accumulates each event exactly
// once across sweeps.
func (n *Node) flightDelta() []obs.Event {
	events := n.svc.Flight().Events()
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []obs.Event
	for _, e := range events {
		if e.Seq > n.lastFlightSeq {
			out = append(out, e)
			n.lastFlightSeq = e.Seq
		}
	}
	return out
}
