package fed

import (
	"fmt"
	"io"
	"sync"

	"lofat/internal/asm"
	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/fleet"
	"lofat/internal/obs"
)

// DefaultSnapshotEvery is the WAL record count that triggers automatic
// compaction into a fresh snapshot generation.
const DefaultSnapshotEvery = 4096

// NodeConfig parameterises one verifier node.
type NodeConfig struct {
	// ID names the node in the ring and in persisted state.
	ID NodeID
	// Dir is the persistence directory; empty runs the node ephemeral
	// (no snapshot, no WAL — state dies with the process).
	Dir string
	// Fleet configures the node's underlying fleet service.
	Fleet fleet.Config
	// SnapshotEvery compacts the WAL into a new snapshot after this
	// many records (default DefaultSnapshotEvery).
	SnapshotEvery int
}

// Node is one federation member: a fleet.Service plus its durability
// layer and the frame handler the coordinator talks to.
//
// Warm restart: NewNode loads the newest snapshot and replays the WAL,
// but the recovered device records cannot be enrolled until their
// program's offline analysis exists — so they wait in a pending set,
// and RegisterProgram adopts the ones belonging to the program it just
// registered. A node restarted with the same programs re-registered is
// therefore byte-for-byte back where it was killed: same membership,
// same quarantine flags, same breaker positions, same sweep-generation
// pacing. Cached measurements are not persisted (they are derivable);
// the first post-restart sweep re-warms them.
type Node struct {
	cfg   NodeConfig
	svc   *fleet.Service
	store *Store // nil when ephemeral

	mu sync.Mutex
	// pending holds restored device records awaiting their program's
	// registration, keyed by program then device.
	pending map[attest.ProgramID]map[fleet.DeviceID]DeviceRecord
	// persisted mirrors what the WAL+snapshot durably describe, so the
	// post-sweep diff appends only records that actually changed.
	persisted map[fleet.DeviceID]DeviceRecord
	// knownKeys tracks cache keys already WAL-logged. The measurements
	// behind them are not persisted (derivable, large) — sweeps re-warm
	// them lazily; the keys keep the durable picture complete.
	knownKeys     map[string]struct{}
	persistedGen  uint64
	programs      map[attest.ProgramID]registerReq
	lastFlightSeq uint64
	killed        bool
}

// NewNode builds the node, recovering persisted state when cfg.Dir is
// set. Registry membership restores lazily per program — see the type
// comment.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("fed: node needs an ID")
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	n := &Node{
		cfg:       cfg,
		pending:   make(map[attest.ProgramID]map[fleet.DeviceID]DeviceRecord),
		persisted: make(map[fleet.DeviceID]DeviceRecord),
		knownKeys: make(map[string]struct{}),
		programs:  make(map[attest.ProgramID]registerReq),
	}
	var restored *State
	if cfg.Dir != "" {
		store, state, err := OpenStore(cfg.Dir, cfg.ID)
		if err != nil {
			return nil, err
		}
		n.store, restored = store, state
	}
	n.svc = fleet.NewService(cfg.Fleet)
	if restored != nil {
		for id, rec := range restored.Devices {
			byProg, ok := n.pending[rec.Program]
			if !ok {
				byProg = make(map[fleet.DeviceID]DeviceRecord)
				n.pending[rec.Program] = byProg
			}
			byProg[id] = rec
			n.persisted[id] = rec
		}
		for k := range restored.CacheKeys {
			n.knownKeys[k] = struct{}{}
		}
		n.persistedGen = restored.SweepGen
		n.svc.SyncSweepGeneration(restored.SweepGen)
	}
	return n, nil
}

// ID names the node.
func (n *Node) ID() NodeID { return n.cfg.ID }

// Service exposes the underlying fleet service (tests and local
// embedding; the coordinator goes through the frame protocol).
func (n *Node) Service() *fleet.Service { return n.svc }

// PendingDevices reports restored devices still awaiting their
// program's registration.
func (n *Node) PendingDevices() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for _, m := range n.pending {
		c += len(m)
	}
	return c
}

// RegisterProgram registers a firmware image on the node's fleet
// service and adopts any restored devices waiting for it (re-enrolling
// them with their persisted quarantine, breaker and counter state).
// Registration is idempotent — a coordinator re-registering on rejoin
// gets the same program ID back.
func (n *Node) RegisterProgram(prog *asm.Program, devCfg core.Config, inputs [][]uint32) (attest.ProgramID, error) {
	id := attest.ComputeProgramID(prog.Text)
	n.mu.Lock()
	_, known := n.programs[id]
	n.mu.Unlock()
	if !known {
		got, err := n.svc.RegisterProgram(prog, devCfg, inputs)
		if err != nil {
			return attest.ProgramID{}, err
		}
		id = got
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.programs[id] = registerReq{Prog: prog, DevCfg: devCfg, Inputs: inputs}
	for devID, rec := range n.pending[id] {
		if err := n.svc.EnrollState(rec.State()); err != nil {
			return id, fmt.Errorf("fed: node %s: restore device %q: %w", n.cfg.ID, devID, err)
		}
	}
	delete(n.pending, id)
	return id, nil
}

// Enroll adds (or restores) one device and logs it durably.
func (n *Node) Enroll(st fleet.DeviceState) error {
	if err := n.svc.EnrollState(st); err != nil {
		return err
	}
	rec := RecordFromState(st)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.persisted[st.ID] = rec
	return n.appendLocked(WALRecord{Kind: recUpsert, Device: rec})
}

// Transfer extracts one device for hand-off to another node: the
// device is removed (flight ring drained) and its final state returned;
// the removal is WAL-logged so a restart does not resurrect it.
func (n *Node) Transfer(id fleet.DeviceID) (fleet.DeviceState, bool, error) {
	st, ok := n.svc.Forget(id)
	if !ok {
		return fleet.DeviceState{}, false, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.persisted, id)
	return st, true, n.appendLocked(WALRecord{Kind: recForget, ID: id})
}

// Release lifts a device's quarantine (operator override), logging the
// change.
func (n *Node) Release(id fleet.DeviceID) (bool, error) {
	if !n.svc.Release(id) {
		return false, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if rec, ok := n.persisted[id]; ok {
		rec.Quarantined = false
		rec.ConsecutiveRejects = 0
		rec.TransportFails = 0
		rec.Breaker = fleet.BreakerHealthy
		n.persisted[id] = rec
	}
	return true, n.appendLocked(WALRecord{Kind: recQuarantine, ID: id, On: false})
}

// Sweep runs one program sweep on the node's fleet and persists the
// diff: every device whose persistable record changed, every cache key
// newly warmed, and the advanced sweep generation.
func (n *Node) Sweep(prog attest.ProgramID, input []uint32, streamed bool) (fleet.SweepReport, error) {
	var rep fleet.SweepReport
	var err error
	if streamed {
		rep, err = n.svc.SweepProgramStreamed(prog, input)
	} else {
		rep, err = n.svc.SweepProgram(prog, input)
	}
	if err != nil {
		return rep, err
	}
	return rep, n.persistDiff()
}

// persistDiff appends WAL records for whatever changed since the last
// persisted picture, then compacts if the WAL has grown past the
// configured trigger.
func (n *Node) persistDiff() error {
	if n.store == nil {
		return nil
	}
	states := n.svc.Devices()
	keys := []string(nil)
	if c := n.svc.Cache(); c != nil {
		keys = c.Keys()
	}
	gen := n.svc.SweepGeneration()

	n.mu.Lock()
	defer n.mu.Unlock()
	for _, st := range states {
		rec := RecordFromState(st)
		if prev, ok := n.persisted[st.ID]; ok && prev == rec {
			continue
		}
		if err := n.appendLocked(WALRecord{Kind: recUpsert, Device: rec}); err != nil {
			return err
		}
		n.persisted[st.ID] = rec
	}
	for _, k := range keys {
		if _, ok := n.knownKeys[k]; ok {
			continue
		}
		if err := n.appendLocked(WALRecord{Kind: recCacheKey, Key: k}); err != nil {
			return err
		}
		n.knownKeys[k] = struct{}{}
	}
	if gen > n.persistedGen {
		if err := n.appendLocked(WALRecord{Kind: recSweepGen, Gen: gen}); err != nil {
			return err
		}
		n.persistedGen = gen
	}
	if err := n.store.Sync(); err != nil {
		return fmt.Errorf("fed: node %s: wal sync: %w", n.cfg.ID, err)
	}
	if n.store.Records() >= n.cfg.SnapshotEvery {
		return n.compactLocked()
	}
	return nil
}

// appendLocked logs one record (no-op when ephemeral). Caller holds
// n.mu.
func (n *Node) appendLocked(rec WALRecord) error {
	if n.store == nil {
		return nil
	}
	if err := n.store.Append(rec); err != nil {
		return fmt.Errorf("fed: node %s: %w", n.cfg.ID, err)
	}
	return nil
}

// materializeLocked builds the State the store should describe. Caller
// holds n.mu.
func (n *Node) materializeLocked() *State {
	st := NewState(n.cfg.ID)
	st.SweepGen = n.persistedGen
	for id, rec := range n.persisted {
		st.Devices[id] = rec
	}
	// Devices still pending (program never re-registered this run) are
	// part of the durable picture too.
	for _, byProg := range n.pending {
		for id, rec := range byProg {
			st.Devices[id] = rec
		}
	}
	for k := range n.knownKeys {
		st.CacheKeys[k] = struct{}{}
	}
	return st
}

// MaterializedState returns the node's current durable picture — what
// a warm restart would recover. Chaos tests compare this across a
// kill/reopen cycle.
func (n *Node) MaterializedState() *State {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.materializeLocked()
}

func (n *Node) compactLocked() error {
	if err := n.store.Compact(n.materializeLocked()); err != nil {
		return fmt.Errorf("fed: node %s: %w", n.cfg.ID, err)
	}
	return nil
}

// Compact forces a snapshot generation now.
func (n *Node) Compact() error {
	if n.store == nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.compactLocked()
}

// Close shuts the node down cleanly: fleet workers drained, WAL synced
// and closed.
func (n *Node) Close() error {
	n.svc.Close()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.store == nil || n.killed {
		return nil
	}
	return n.store.Close()
}

// Kill is the chaos switch: the node stops as a crash would — no final
// sync, no snapshot, WAL handle dropped as-is. Whatever the OS already
// wrote is what recovery gets.
func (n *Node) Kill() {
	n.mu.Lock()
	if n.store != nil && !n.killed {
		n.store.Abandon()
	}
	n.killed = true
	n.mu.Unlock()
	n.svc.Close()
}

// ServeConn handles coordinator requests on one connection until EOF
// or transport error — the node side of the control plane. Run it in a
// goroutine per accepted connection.
func (n *Node) ServeConn(conn io.ReadWriter) error {
	for {
		if err := n.handleOne(conn); err != nil {
			return err
		}
	}
}

// handleOne reads and answers a single request frame. The returned
// error is transport-level only — request refusals go back on the wire
// as msgErr frames and keep the connection serving.
func (n *Node) handleOne(conn io.ReadWriter) error {
	typ, body, err := attest.ReadFrame(conn)
	if err != nil {
		return err
	}
	switch typ {
	case msgRegister:
		var req registerReq
		if err := decodePayload(body, &req); err != nil {
			return writeErr(conn, err)
		}
		id, err := n.RegisterProgram(req.Prog, req.DevCfg, req.Inputs)
		if err != nil {
			return writeErr(conn, err)
		}
		return writeResp(conn, msgOK, okResp{Node: n.cfg.ID, Program: id})
	case msgEnroll:
		var req enrollReq
		if err := decodePayload(body, &req); err != nil {
			return writeErr(conn, err)
		}
		if err := n.Enroll(req.State); err != nil {
			return writeErr(conn, err)
		}
		return writeResp(conn, msgOK, okResp{Node: n.cfg.ID})
	case msgSweep:
		var req sweepReq
		if err := decodePayload(body, &req); err != nil {
			return writeErr(conn, err)
		}
		rep, err := n.Sweep(req.Program, req.Input, req.Streamed)
		if err != nil {
			return writeErr(conn, err)
		}
		nr := NodeReport{
			Node:    n.cfg.ID,
			Devices: n.svc.FleetSize(),
			Report:  rep,
			Metrics: n.svc.Metrics(),
			Flight:  n.flightDelta(),
		}
		return writeResp(conn, msgReport, nr)
	case msgTransfer:
		var req deviceReq
		if err := decodePayload(body, &req); err != nil {
			return writeErr(conn, err)
		}
		st, found, err := n.Transfer(req.Device)
		if err != nil {
			return writeErr(conn, err)
		}
		return writeResp(conn, msgState, stateResp{Found: found, State: st})
	case msgRelease:
		var req deviceReq
		if err := decodePayload(body, &req); err != nil {
			return writeErr(conn, err)
		}
		found, err := n.Release(req.Device)
		if err != nil {
			return writeErr(conn, err)
		}
		st, _ := n.svc.Device(req.Device)
		return writeResp(conn, msgState, stateResp{Found: found, State: st})
	case msgGet:
		var req deviceReq
		if err := decodePayload(body, &req); err != nil {
			return writeErr(conn, err)
		}
		st, found := n.svc.Device(req.Device)
		return writeResp(conn, msgState, stateResp{Found: found, State: st})
	default:
		return writeErr(conn, fmt.Errorf("fed: node %s: unknown request type %d", n.cfg.ID, typ))
	}
}

// flightDelta returns the node's flight events newer than the last
// delta it shipped, so the coordinator accumulates each event exactly
// once across sweeps.
func (n *Node) flightDelta() []obs.Event {
	events := n.svc.Flight().Events()
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []obs.Event
	for _, e := range events {
		if e.Seq > n.lastFlightSeq {
			out = append(out, e)
			n.lastFlightSeq = e.Seq
		}
	}
	return out
}
