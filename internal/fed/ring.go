package fed

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per physical node used when
// a Ring is built with a non-positive replica count. More replicas
// smooth the key distribution at the cost of a larger point table;
// 128 keeps per-node load within a few percent of even for the node
// counts a federation realistically runs (single digits to tens).
const DefaultReplicas = 128

// Ring is a consistent-hash ring mapping device IDs to verifier nodes.
// Each node contributes `replicas` virtual points; a key is assigned to
// the node owning the first point at or clockwise after the key's hash.
// Adding or removing one node therefore moves only the keys that hashed
// into the arcs its points covered — roughly 1/N of the fleet — and the
// assignment is a pure function of the membership set, so every party
// that knows the members computes identical placement.
//
// Ring is not safe for concurrent mutation; the Coordinator guards it.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by (hash, node)
	nodes    map[NodeID]struct{}
}

type ringPoint struct {
	hash uint64
	node NodeID
}

// NewRing builds an empty ring with the given virtual-node count per
// physical node (non-positive selects DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[NodeID]struct{})}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV alone distributes short, similar strings ("n1#0", "n1#1", …)
	// poorly around the ring; a splitmix64 finalizer scrambles the low
	// entropy into the full 64-bit space so arc lengths even out.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a node's virtual points; it reports false (and changes
// nothing) if the node is already a member.
func (r *Ring) Add(n NodeID) bool {
	if _, dup := r.nodes[n]; dup {
		return false
	}
	r.nodes[n] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", n, i)), node: n})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return true
}

// Remove deletes a node's virtual points; it reports whether the node
// was a member.
func (r *Ring) Remove(n NodeID) bool {
	if _, ok := r.nodes[n]; !ok {
		return false
	}
	delete(r.nodes, n)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != n {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Assign maps a key to its owning node; ok is false on an empty ring.
func (r *Ring) Assign(key string) (node NodeID, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the hash space
	}
	return r.points[i].node, true
}

// AssignN maps a key to an ordered replica set of up to n distinct
// physical nodes: the owner from Assign first, then the owners of the
// next clockwise points belonging to nodes not already collected. The
// order is significant — index 0 is the primary, later entries are the
// failover sequence — and, like Assign, it is a pure function of the
// membership set. When the ring holds fewer than n nodes the slice is
// shorter (min(n, Len()) entries); an empty ring yields nil.
func (r *Ring) AssignN(key string, n int) []NodeID {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]NodeID, 0, n)
	seen := make(map[NodeID]struct{}, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		owners = append(owners, p.node)
	}
	return owners
}

// Nodes lists the member nodes, sorted.
func (r *Ring) Nodes() []NodeID {
	out := make([]NodeID, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len reports the member-node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Has reports membership of one node.
func (r *Ring) Has(n NodeID) bool {
	_, ok := r.nodes[n]
	return ok
}

// Clone returns an independent copy — the Coordinator diffs assignments
// between the pre- and post-change rings to plan a rebalance.
func (r *Ring) Clone() *Ring {
	c := &Ring{
		replicas: r.replicas,
		points:   append([]ringPoint(nil), r.points...),
		nodes:    make(map[NodeID]struct{}, len(r.nodes)),
	}
	for n := range r.nodes {
		c.nodes[n] = struct{}{}
	}
	return c
}
