package fed

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lofat/internal/core"
	"lofat/internal/fed/faultfs"
	"lofat/internal/fleet"
	"lofat/internal/workloads"
)

// walRec builds a distinct upsert record for fault tests; all indices
// below 10 encode to the same byte length, which the byte-threshold
// arithmetic in the short-write test relies on.
func walRec(i int) WALRecord {
	return WALRecord{Kind: recUpsert, Device: DeviceRecord{
		ID:     fleet.DeviceID(fmt.Sprintf("dev-%03d", i)),
		Addr:   fmt.Sprintf("mem://dev/%d", i),
		Rounds: uint64(i + 1),
	}}
}

func mustOpen(t *testing.T, fsys faultfs.FS, dir string) (*Store, *State) {
	t.Helper()
	st, state, err := OpenStoreFS(fsys, dir, "n1")
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return st, state
}

// TestStoreOpenRemovesStaleSnapshotTemp: a crash between Compact's
// CreateTemp and its rename leaves a snap-*.tmp in the directory; Open
// must sweep it out and leave the store fully usable.
func TestStoreOpenRemovesStaleSnapshotTemp(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "snap-12345678.tmp")
	if err := os.WriteFile(stale, []byte("never-published garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, state := mustOpen(t, nil, dir)
	if len(state.Devices) != 0 {
		t.Fatalf("fresh store recovered %d devices", len(state.Devices))
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale snapshot temp survived open: %v", err)
	}
	if err := st.Append(walRec(0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, state2, err := OpenStore(dir, "n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(state2.Devices) != 1 {
		t.Fatalf("recovered %d devices, want 1", len(state2.Devices))
	}
}

// TestStoreCompactDirSyncFailure: the snapshot rename is only durable
// once the directory itself is fsynced. Compact must issue that sync
// (the regression this test pins), report its failure loudly, and leave
// every record loadable afterwards.
func TestStoreCompactDirSyncFailure(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS{}, faultfs.Plan{DirSyncErrOn: 1})
	st, state := mustOpen(t, inj, dir)
	for i := 0; i < 3; i++ {
		rec := walRec(i)
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
		state.Apply(rec)
	}
	err := st.Compact(state)
	if err == nil || !strings.Contains(err.Error(), "sync dir") {
		t.Fatalf("compact with failing directory sync: %v", err)
	}
	if got := inj.Stats().DirSyncs; got != 1 {
		t.Fatalf("compact issued %d directory syncs, want 1 after the snapshot rename", got)
	}
	st.Abandon()

	_, state2, err := OpenStore(dir, "n1")
	if err != nil {
		t.Fatalf("reopen after failed compact: %v", err)
	}
	if len(state2.Devices) != 3 {
		t.Fatalf("recovered %d devices after failed compact, want 3", len(state2.Devices))
	}
}

// TestStoreCompactRenameFailure: a rename that never lands must leave
// the previous generation (snapshot + WAL) authoritative and no temp
// litter behind.
func TestStoreCompactRenameFailure(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS{}, faultfs.Plan{RenameErrOn: 1})
	st, state := mustOpen(t, inj, dir)
	for i := 0; i < 3; i++ {
		rec := walRec(i)
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
		state.Apply(rec)
	}
	if err := st.Compact(state); err == nil {
		t.Fatal("compact succeeded despite failed rename")
	}
	st.Abandon()

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("failed compact left %s behind", e.Name())
		}
	}
	_, state2, err := OpenStore(dir, "n1")
	if err != nil {
		t.Fatalf("reopen after failed compact: %v", err)
	}
	if len(state2.Devices) != 3 {
		t.Fatalf("recovered %d devices after failed compact, want 3", len(state2.Devices))
	}
}

// TestStoreAppendClawsBackTornWrite: a write torn mid-record must not
// leave its partial bytes in the file — a later successful append would
// graft a valid record onto the tear, and replay (which stops at the
// tear) would silently drop it.
func TestStoreAppendClawsBackTornWrite(t *testing.T) {
	recSize := recHeaderLen + len(encodeRecordBody(walRec(0)))
	dir := t.TempDir()
	// Header and record 0 land whole; the single write crossing the
	// threshold — record 1 — is cut four bytes in.
	inj := faultfs.New(faultfs.OS{}, faultfs.Plan{ShortWriteAt: walHeaderLen + recSize + 4})
	st, _ := mustOpen(t, inj, dir)
	if err := st.Append(walRec(0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(walRec(1)); err == nil {
		t.Fatal("torn append reported success")
	}
	if err := st.Append(walRec(2)); err != nil {
		t.Fatalf("append after claw-back: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, state, err := OpenStore(dir, "n1")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, ok := state.Devices["dev-000"]; !ok {
		t.Fatal("record 0 lost")
	}
	if _, ok := state.Devices["dev-001"]; ok {
		t.Fatal("torn record 1 resurrected")
	}
	if _, ok := state.Devices["dev-002"]; !ok {
		t.Fatal("record 2 after the tear lost — partial bytes were not clawed back")
	}
	if len(state.Devices) != 2 {
		t.Fatalf("recovered %d devices, want 2", len(state.Devices))
	}
}

// TestStoreTornWriteSweepNeverCorrupt is the disk-fault acceptance
// sweep: for every byte position in the store's write stream, the disk
// fills at exactly that point (the crossing write delivers only its
// prefix — real ENOSPC), the node "crashes", and the store reopened on
// the healed filesystem must load the successfully-appended prefix —
// never ErrCorrupt, never a resurrected or lost record. This includes
// cuts inside the WAL header itself.
func TestStoreTornWriteSweepNeverCorrupt(t *testing.T) {
	const N = 6
	clean := faultfs.New(faultfs.OS{}, faultfs.Plan{})
	cleanDir := t.TempDir()
	st, _ := mustOpen(t, clean, cleanDir)
	for i := 0; i < N; i++ {
		if err := st.Append(walRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	total := clean.Stats().BytesWritten
	if total <= walHeaderLen {
		t.Fatalf("measured write stream only %d bytes", total)
	}

	for cut := 1; cut <= total; cut++ {
		dir := filepath.Join(t.TempDir(), "store")
		inj := faultfs.New(faultfs.OS{}, faultfs.Plan{WriteErrAfter: cut})
		appended := 0
		if st, _, err := OpenStoreFS(inj, dir, "n1"); err == nil {
			for i := 0; i < N; i++ {
				if err := st.Append(walRec(i)); err != nil {
					break
				}
				appended++
			}
			st.Abandon()
		}

		st2, state, err := OpenStore(dir, "n1")
		if err != nil {
			t.Fatalf("cut %d: reopen after torn write: %v", cut, err)
		}
		if len(state.Devices) != appended {
			t.Fatalf("cut %d: recovered %d devices, want the %d appended", cut, len(state.Devices), appended)
		}
		for i := 0; i < appended; i++ {
			if _, ok := state.Devices[fleet.DeviceID(fmt.Sprintf("dev-%03d", i))]; !ok {
				t.Fatalf("cut %d: appended record %d lost", cut, i)
			}
		}
		// The healed store must accept appends at the right offset.
		if err := st2.Append(walRec(9)); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := st2.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestLameDuckNode drives the degraded-storage lifecycle end to end
// through the coordinator: a member node's disk stops accepting fsyncs,
// the node flips to lame-duck after the configured number of failed
// persistence passes, the fleet verdict reports it, enrolments onto it
// are refused — and it keeps serving sweeps, because losing durability
// must not lose attestation coverage.
func TestLameDuckNode(t *testing.T) {
	f := newFabric()
	coord := NewCoordinator(Config{})
	inj := faultfs.New(faultfs.OS{}, faultfs.Plan{SyncErrOn: 1})
	var nodes []*testNode
	for i := 0; i < 3; i++ {
		cfg := NodeConfig{
			ID:            NodeID(fmt.Sprintf("node-%d", i)),
			Fleet:         fleet.Config{Dial: f.dial},
			SnapshotEvery: 1 << 20, // keep compaction (and its syncs) out of the count
		}
		if i == 0 {
			cfg.Dir = t.TempDir()
			cfg.FS = inj
		}
		tn := newTestNode(t, cfg)
		nodes = append(nodes, tn)
		if _, err := coord.Join(tn.node.ID(), tn.dial); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		coord.Close()
		for _, tn := range nodes {
			tn.close()
		}
	})

	pump := workloads.SyringePump()
	prog, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	progID, err := coord.RegisterProgram(prog, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}
	pub, addr := spawnHonestEndpoint(t, f, pump, "honest")
	const devices = 24
	for i := 0; i < devices; i++ {
		if err := coord.Enroll(fleet.DeviceID(fmt.Sprintf("dev-%03d", i)), progID, pub, addr); err != nil {
			t.Fatal(err)
		}
	}

	// Each sweep's persistence pass ends in a failing fsync; at
	// DefaultLameDuckAfter consecutive failures the node goes lame.
	var lameSweep *FleetVerdict
	for s := 0; s < DefaultLameDuckAfter+1 && lameSweep == nil; s++ {
		v, err := coord.Sweep(progID, pump.Input, false)
		if err != nil {
			t.Fatal(err)
		}
		if v.NodesOK != 3 || v.Devices != coord.FleetSize() {
			t.Fatalf("sweep %d lost coverage: %s", s, v)
		}
		if v.NodesLame > 0 {
			lameSweep = v
		}
	}
	if lameSweep == nil {
		t.Fatalf("node-0 never reported lame duck after %d failing sweeps", DefaultLameDuckAfter+1)
	}
	if lameSweep.NodesLame != 1 {
		t.Fatalf("%d lame nodes reported, want 1", lameSweep.NodesLame)
	}
	for _, n := range lameSweep.Nodes {
		if n.Node == "node-0" {
			if !n.LameDuck || n.StoreErr == "" {
				t.Fatalf("node-0 report: lame=%v storeErr=%q", n.LameDuck, n.StoreErr)
			}
		} else if n.LameDuck {
			t.Fatalf("healthy node %s reported lame", n.Node)
		}
	}
	if lame, reason := nodes[0].node.Health(); !lame || reason == "" {
		t.Fatalf("node-0 health: lame=%v reason=%q", lame, reason)
	}

	// A lame node refuses new enrolments — with single-owner placement
	// the coordinator surfaces the refusal, steering the operator (and,
	// with R>1, the all-or-nothing enroll) away from it. Probe fresh IDs
	// until one lands on node-0.
	refused := false
	for i := 0; i < 40 && !refused; i++ {
		err := coord.Enroll(fleet.DeviceID(fmt.Sprintf("probe-%03d", i)), progID, pub, addr)
		if err != nil {
			if !strings.Contains(err.Error(), "lame duck") {
				t.Fatalf("enroll failed for the wrong reason: %v", err)
			}
			refused = true
		}
	}
	if !refused {
		t.Fatal("no enrolment ever landed on (and was refused by) the lame node")
	}

	// Read-only degraded service: the lame node still sweeps its shard.
	v, err := coord.Sweep(progID, pump.Input, false)
	if err != nil {
		t.Fatal(err)
	}
	if v.NodesOK != 3 || v.NodesLame != 1 || v.Devices != coord.FleetSize() || v.Rejected != 0 {
		t.Fatalf("lame-duck federation sweep: %s", v)
	}
}
