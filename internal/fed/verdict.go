package fed

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"lofat/internal/attest"
	"lofat/internal/fleet"
	"lofat/internal/obs"
)

// NodeReport is one node's contribution to a federated sweep: its
// SweepReport plus the metrics snapshot and the flight-recorder events
// it produced, so the coordinator's merged verdict keeps per-node
// attribution instead of flattening everything into fleet totals.
type NodeReport struct {
	Node NodeID
	// Skipped: the coordinator did not contact this node (its node
	// breaker was open); Probe: this contact was the half-open probe.
	Skipped bool
	Probe   bool
	// Err is the failure that voided this node's report ("" on
	// success); Attempts counts the transport attempts spent.
	Err      string
	Attempts int

	// Devices is the node's total enrolment at sweep time (all
	// programs); the remaining fields are valid when Err is empty and
	// Skipped is false.
	Devices int
	Report  fleet.SweepReport
	Metrics fleet.MetricsSnapshot
	// Flight carries the node's flight-recorder events new since the
	// coordinator last collected (delta, not the full ring).
	Flight []obs.Event
}

// FleetVerdict is the single merged outcome of one federated sweep:
// fleet-wide totals with the per-node reports they were merged from.
type FleetVerdict struct {
	Program attest.ProgramID
	Input   []uint32

	// Nodes are the per-node reports, sorted by node ID. NodesOK
	// completed; NodesFailed exhausted their transport attempts;
	// NodesSkipped sat out behind an open node breaker.
	Nodes        []NodeReport
	NodesOK      int
	NodesFailed  int
	NodesSkipped int

	// Fleet-wide sums over the nodes that reported.
	Devices  int
	Accepted int
	Rejected int
	Errors   int
	Skipped  int
	Retried  int
	ByClass  map[attest.Classification]int

	// Per-node attribution of state transitions this sweep caused.
	NewlyQuarantined map[NodeID][]fleet.DeviceID
	NewlyTripped     map[NodeID][]fleet.DeviceID

	SegmentsVerified int
	EarlyAborts      int

	// Healthy: every member node reported and no device was rejected
	// or lost — the fleet attested clean.
	Healthy  bool
	Duration time.Duration
	// Throughput is fleet-wide verified rounds per second — the
	// scale-out quantity: nodes sweep their shards concurrently, so the
	// federation's rate is the sum of its members' rates over the
	// slowest member's wall clock.
	Throughput float64
}

// mergeVerdict folds per-node reports into the fleet verdict. duration
// is the coordinator's wall-clock for the whole fan-out.
func mergeVerdict(prog attest.ProgramID, input []uint32, nodes []NodeReport, duration time.Duration) *FleetVerdict {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Node < nodes[j].Node })
	v := &FleetVerdict{
		Program:          prog,
		Input:            append([]uint32(nil), input...),
		Nodes:            nodes,
		ByClass:          make(map[attest.Classification]int),
		NewlyQuarantined: make(map[NodeID][]fleet.DeviceID),
		NewlyTripped:     make(map[NodeID][]fleet.DeviceID),
		Healthy:          true,
		Duration:         duration,
	}
	for _, n := range nodes {
		switch {
		case n.Skipped:
			v.NodesSkipped++
			v.Healthy = false
			continue
		case n.Err != "":
			v.NodesFailed++
			v.Healthy = false
			continue
		}
		v.NodesOK++
		r := n.Report
		v.Devices += r.Devices
		v.Accepted += r.Accepted
		v.Rejected += r.Rejected
		v.Errors += r.Errors
		v.Skipped += r.Skipped
		v.Retried += r.Retried
		for c, k := range r.ByClass {
			v.ByClass[c] += k
		}
		if len(r.NewlyQuarantined) > 0 {
			v.NewlyQuarantined[n.Node] = append([]fleet.DeviceID(nil), r.NewlyQuarantined...)
		}
		if len(r.NewlyTripped) > 0 {
			v.NewlyTripped[n.Node] = append([]fleet.DeviceID(nil), r.NewlyTripped...)
		}
		v.SegmentsVerified += r.SegmentsVerified
		v.EarlyAborts += r.EarlyAborts
		if r.Rejected > 0 || r.Errors > 0 || r.Skipped > 0 {
			v.Healthy = false
		}
	}
	if verified := v.Accepted + v.Rejected; verified > 0 && duration > 0 {
		v.Throughput = float64(verified) / duration.Seconds()
	}
	return v
}

// String renders a multi-line fleet verdict with per-node attribution.
func (v *FleetVerdict) String() string {
	var b strings.Builder
	status := "HEALTHY"
	if !v.Healthy {
		status = "DEGRADED"
	}
	fmt.Fprintf(&b, "fleet verdict %v: %s — %d devices on %d node(s): %d accepted, %d rejected, %d errors, %d skipped, %.0f rounds/s",
		v.Program, status, v.Devices, v.NodesOK, v.Accepted, v.Rejected, v.Errors, v.Skipped, v.Throughput)
	if v.NodesFailed > 0 || v.NodesSkipped > 0 {
		fmt.Fprintf(&b, " [%d node(s) failed, %d breaker-skipped]", v.NodesFailed, v.NodesSkipped)
	}
	for _, n := range v.Nodes {
		switch {
		case n.Skipped:
			fmt.Fprintf(&b, "\n  %s: skipped (node breaker open)", n.Node)
		case n.Err != "":
			fmt.Fprintf(&b, "\n  %s: FAILED after %d attempt(s): %s", n.Node, n.Attempts, n.Err)
		default:
			fmt.Fprintf(&b, "\n  %s: %d devices, %d accepted, %d rejected, %d errors, %d skipped",
				n.Node, n.Report.Devices, n.Report.Accepted, n.Report.Rejected, n.Report.Errors, n.Report.Skipped)
			if q := v.NewlyQuarantined[n.Node]; len(q) > 0 {
				fmt.Fprintf(&b, ", quarantined %v", q)
			}
			if t := v.NewlyTripped[n.Node]; len(t) > 0 {
				fmt.Fprintf(&b, ", tripped %v", t)
			}
		}
	}
	return b.String()
}
