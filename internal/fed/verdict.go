package fed

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"lofat/internal/attest"
	"lofat/internal/fleet"
	"lofat/internal/obs"
)

// NodeReport is one node's contribution to a federated sweep: its
// SweepReport plus the metrics snapshot and the flight-recorder events
// it produced, so the coordinator's merged verdict keeps per-node
// attribution instead of flattening everything into fleet totals.
type NodeReport struct {
	Node NodeID
	// Skipped: the coordinator did not contact this node (its node
	// breaker was open); Probe: this contact was the half-open probe.
	Skipped bool
	Probe   bool
	// Err is the failure that voided this node's report ("" on
	// success); Attempts counts the transport attempts spent.
	Err      string
	Attempts int

	// Devices is the node's total enrolment at sweep time (all
	// programs); the remaining fields are valid when Err is empty and
	// Skipped is false — except that a node which completed earlier
	// failover waves before dying keeps those waves' sums in Report
	// alongside its Err.
	Devices int
	Report  fleet.SweepReport
	Metrics fleet.MetricsSnapshot
	// Flight carries the node's flight-recorder events new since the
	// coordinator last collected (delta, not the full ring).
	Flight []obs.Event

	// LameDuck: the node's persistence layer is failing and it is in
	// read-only degraded service; StoreErr is the store failure that
	// put it there. The coordinator steers placement away from lame
	// nodes, falling back to them only when no healthy replica is live.
	LameDuck bool
	StoreErr string

	// Changed lists the device records this node's sweep moved, when
	// the coordinator asked for the delta (replicated federations only)
	// — the anti-entropy feed. Cleared before the report lands in the
	// verdict; it is plumbing, not attestation outcome.
	Changed []DeviceRecord `json:"-"`
}

// foldNodeReport merges a later wave's report for the same node into
// an earlier one: sweep sums add (each wave challenged a disjoint
// device set), flight deltas concatenate, the newest metrics snapshot
// and health flags win, and a failure in any wave voids no earlier
// wave's results but does mark the node failed.
func foldNodeReport(dst, src NodeReport) NodeReport {
	dst.Probe = dst.Probe || src.Probe
	dst.Attempts += src.Attempts
	if src.Err != "" {
		dst.Err = src.Err
	}
	if src.Devices > dst.Devices {
		dst.Devices = src.Devices
	}
	dst.Report = foldSweepReports(dst.Report, src.Report)
	if src.Err == "" {
		dst.Metrics = src.Metrics
		dst.LameDuck = src.LameDuck
		dst.StoreErr = src.StoreErr
	}
	dst.Flight = append(dst.Flight, src.Flight...)
	dst.Changed = append(dst.Changed, src.Changed...)
	return dst
}

// foldSweepReports sums two sweep reports over disjoint device sets.
func foldSweepReports(a, b fleet.SweepReport) fleet.SweepReport {
	a.Devices += b.Devices
	a.Skipped += b.Skipped
	a.Accepted += b.Accepted
	a.Rejected += b.Rejected
	a.Errors += b.Errors
	a.Retried += b.Retried
	a.BreakerSkipped += b.BreakerSkipped
	a.BreakerProbes += b.BreakerProbes
	a.SegmentsVerified += b.SegmentsVerified
	a.EarlyAborts += b.EarlyAborts
	a.NewlyQuarantined = append(a.NewlyQuarantined, b.NewlyQuarantined...)
	a.NewlyTripped = append(a.NewlyTripped, b.NewlyTripped...)
	if len(b.ByClass) > 0 {
		if a.ByClass == nil {
			a.ByClass = make(map[attest.Classification]int, len(b.ByClass))
		}
		for c, k := range b.ByClass {
			a.ByClass[c] += k
		}
	}
	a.Duration += b.Duration
	return a
}

// FleetVerdict is the single merged outcome of one federated sweep:
// fleet-wide totals with the per-node reports they were merged from.
type FleetVerdict struct {
	Program attest.ProgramID
	Input   []uint32

	// Nodes are the per-node reports, sorted by node ID. NodesOK
	// completed; NodesFailed exhausted their transport attempts;
	// NodesSkipped sat out behind an open node breaker.
	Nodes        []NodeReport
	NodesOK      int
	NodesFailed  int
	NodesSkipped int

	// Fleet-wide sums over the nodes that reported.
	Devices  int
	Accepted int
	Rejected int
	Errors   int
	Skipped  int
	Retried  int
	ByClass  map[attest.Classification]int

	// Per-node attribution of state transitions this sweep caused.
	NewlyQuarantined map[NodeID][]fleet.DeviceID
	NewlyTripped     map[NodeID][]fleet.DeviceID

	SegmentsVerified int
	EarlyAborts      int

	// FailedOver attributes each re-issued device to the node that
	// actually verified it: a device appears here when its acting
	// primary failed (or sat behind an open breaker) mid-sweep and a
	// later wave re-challenged it on the mapped replica. Waves counts
	// the placement rounds the sweep needed (1 = no failover).
	FailedOver map[fleet.DeviceID]NodeID
	Waves      int
	// Uncovered lists enrolled devices no live replica could verify
	// this sweep — every owner dead, skipped, or exhausted. Empty in a
	// healthy federation and, with R ≥ 2, across single-node failures.
	Uncovered []fleet.DeviceID
	// NodesLame counts reporting nodes in lame-duck (read-only) service.
	NodesLame int

	// Healthy: every member node reported and no device was rejected
	// or lost — the fleet attested clean.
	Healthy  bool
	Duration time.Duration
	// Throughput is fleet-wide verified rounds per second — the
	// scale-out quantity: nodes sweep their shards concurrently, so the
	// federation's rate is the sum of its members' rates over the
	// slowest member's wall clock.
	Throughput float64
}

// mergeVerdict folds per-node reports into the fleet verdict. duration
// is the coordinator's wall-clock for the whole fan-out; failedOver,
// uncovered and waves come from the failover planner (nil/0 for an
// unreplicated sweep). A failed node's partial report — waves it
// completed before dying — still counts toward the fleet sums: those
// devices were verified.
func mergeVerdict(prog attest.ProgramID, input []uint32, nodes []NodeReport, failedOver map[fleet.DeviceID]NodeID, uncovered []fleet.DeviceID, waves int, duration time.Duration) *FleetVerdict {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Node < nodes[j].Node })
	for i := range nodes {
		nodes[i].Changed = nil // anti-entropy plumbing, not verdict data
	}
	v := &FleetVerdict{
		Program:          prog,
		Input:            append([]uint32(nil), input...),
		Nodes:            nodes,
		ByClass:          make(map[attest.Classification]int),
		NewlyQuarantined: make(map[NodeID][]fleet.DeviceID),
		NewlyTripped:     make(map[NodeID][]fleet.DeviceID),
		FailedOver:       failedOver,
		Waves:            waves,
		Uncovered:        uncovered,
		Healthy:          true,
		Duration:         duration,
	}
	if len(uncovered) > 0 {
		v.Healthy = false
	}
	for _, n := range nodes {
		switch {
		case n.Skipped:
			v.NodesSkipped++
			v.Healthy = false
			continue
		case n.Err != "":
			v.NodesFailed++
			v.Healthy = false
		default:
			v.NodesOK++
			if n.LameDuck {
				v.NodesLame++
			}
		}
		r := n.Report
		v.Devices += r.Devices
		v.Accepted += r.Accepted
		v.Rejected += r.Rejected
		v.Errors += r.Errors
		v.Skipped += r.Skipped
		v.Retried += r.Retried
		for c, k := range r.ByClass {
			v.ByClass[c] += k
		}
		if len(r.NewlyQuarantined) > 0 {
			v.NewlyQuarantined[n.Node] = append([]fleet.DeviceID(nil), r.NewlyQuarantined...)
		}
		if len(r.NewlyTripped) > 0 {
			v.NewlyTripped[n.Node] = append([]fleet.DeviceID(nil), r.NewlyTripped...)
		}
		v.SegmentsVerified += r.SegmentsVerified
		v.EarlyAborts += r.EarlyAborts
		if r.Rejected > 0 || r.Errors > 0 || r.Skipped > 0 {
			v.Healthy = false
		}
	}
	if verified := v.Accepted + v.Rejected; verified > 0 && duration > 0 {
		v.Throughput = float64(verified) / duration.Seconds()
	}
	return v
}

// String renders a multi-line fleet verdict with per-node attribution.
func (v *FleetVerdict) String() string {
	var b strings.Builder
	status := "HEALTHY"
	if !v.Healthy {
		status = "DEGRADED"
	}
	fmt.Fprintf(&b, "fleet verdict %v: %s — %d devices on %d node(s): %d accepted, %d rejected, %d errors, %d skipped, %.0f rounds/s",
		v.Program, status, v.Devices, v.NodesOK, v.Accepted, v.Rejected, v.Errors, v.Skipped, v.Throughput)
	if v.NodesFailed > 0 || v.NodesSkipped > 0 {
		fmt.Fprintf(&b, " [%d node(s) failed, %d breaker-skipped]", v.NodesFailed, v.NodesSkipped)
	}
	if len(v.FailedOver) > 0 {
		fmt.Fprintf(&b, " [%d device(s) failed over across %d wave(s)]", len(v.FailedOver), v.Waves)
	}
	if len(v.Uncovered) > 0 {
		fmt.Fprintf(&b, " [%d device(s) UNCOVERED]", len(v.Uncovered))
	}
	for _, n := range v.Nodes {
		switch {
		case n.Skipped:
			fmt.Fprintf(&b, "\n  %s: skipped (node breaker open)", n.Node)
		case n.Err != "":
			fmt.Fprintf(&b, "\n  %s: FAILED after %d attempt(s): %s", n.Node, n.Attempts, n.Err)
			if n.Report.Devices > 0 {
				fmt.Fprintf(&b, " (kept %d device(s) from completed waves)", n.Report.Devices)
			}
		default:
			fmt.Fprintf(&b, "\n  %s: %d devices, %d accepted, %d rejected, %d errors, %d skipped",
				n.Node, n.Report.Devices, n.Report.Accepted, n.Report.Rejected, n.Report.Errors, n.Report.Skipped)
			if q := v.NewlyQuarantined[n.Node]; len(q) > 0 {
				fmt.Fprintf(&b, ", quarantined %v", q)
			}
			if t := v.NewlyTripped[n.Node]; len(t) > 0 {
				fmt.Fprintf(&b, ", tripped %v", t)
			}
			if n.LameDuck {
				fmt.Fprintf(&b, " [LAME DUCK: %s]", n.StoreErr)
			}
		}
	}
	return b.String()
}
