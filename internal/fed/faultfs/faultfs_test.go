package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func writeAll(t *testing.T, f File, p []byte) (int, error) {
	t.Helper()
	return f.Write(p)
}

func TestInjectorWriteFaults(t *testing.T) {
	dir := t.TempDir()
	in := New(OS{}, Plan{WriteErrAfter: 10, Err: syscall.ENOSPC})
	f, err := in.OpenFile(filepath.Join(dir, "w"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if n, err := writeAll(t, f, []byte("1234")); n != 4 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	// This write crosses the 10-byte budget: 6 bytes land, ENOSPC.
	n, err := writeAll(t, f, []byte("56789abc"))
	if n != 6 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("crossing write: n=%d err=%v, want 6/ENOSPC", n, err)
	}
	// The disk stays full.
	if n, err := writeAll(t, f, []byte("x")); n != 0 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-budget write: n=%d err=%v", n, err)
	}
	got, rerr := os.ReadFile(filepath.Join(dir, "w"))
	if rerr != nil || !bytes.Equal(got, []byte("123456789a")) {
		t.Fatalf("on-disk content %q err=%v, want the 10-byte prefix", got, rerr)
	}
	st := in.Stats()
	if st.BytesWritten != 10 || st.Writes != 3 {
		t.Fatalf("stats %+v, want BytesWritten=10 Writes=3", st)
	}
}

func TestInjectorShortWriteOneShot(t *testing.T) {
	dir := t.TempDir()
	in := New(OS{}, Plan{ShortWriteAt: 3})
	f, err := in.OpenFile(filepath.Join(dir, "w"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if n, err := writeAll(t, f, []byte("abcdef")); n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: n=%d err=%v, want 3/ErrInjected", n, err)
	}
	// One-shot: the torn record happened, the file grows again.
	if n, err := writeAll(t, f, []byte("ghi")); n != 3 || err != nil {
		t.Fatalf("follow-up write: n=%d err=%v", n, err)
	}
	got, _ := os.ReadFile(filepath.Join(dir, "w"))
	if !bytes.Equal(got, []byte("abcghi")) {
		t.Fatalf("on-disk content %q, want abcghi", got)
	}
}

func TestInjectorOpFaults(t *testing.T) {
	dir := t.TempDir()
	in := New(OS{}, Plan{SyncErrOn: 2, RenameErrOn: 1, DirSyncErrOn: 1})
	f, err := in.CreateTemp(dir, "t-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1 should pass: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2 should fail: %v", err)
	}
	if err := in.Rename(f.Name(), filepath.Join(dir, "final")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename should fail: %v", err)
	}
	if err := in.SyncDir(dir); !errors.Is(err, ErrInjected) {
		t.Fatalf("dir sync should fail: %v", err)
	}
	if st := in.Stats(); st.Syncs != 2 || st.Renames != 1 || st.DirSyncs != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOSSyncDir(t *testing.T) {
	if err := (OS{}).SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a real directory: %v", err)
	}
}

func TestInjectorArm(t *testing.T) {
	dir := t.TempDir()
	in := New(OS{}, Plan{})
	f, err := in.OpenFile(filepath.Join(dir, "w"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Clean plan: writes and syncs succeed while the fixture warms up.
	if n, err := writeAll(t, f, []byte("123456")); n != 6 || err != nil {
		t.Fatalf("pre-arm write: n=%d err=%v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("pre-arm sync: %v", err)
	}

	// Arm the fault mid-run. Thresholds still count from creation, so a
	// budget below what is already written fails the very next write,
	// and SyncErrOn 2 means the next (second) sync fails.
	in.Arm(Plan{WriteErrAfter: 4, SyncErrOn: 2, Err: syscall.ENOSPC})
	if n, err := writeAll(t, f, []byte("x")); n != 0 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-arm write: n=%d err=%v, want 0/ENOSPC", n, err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-arm sync: %v, want ENOSPC", err)
	}
	got, rerr := os.ReadFile(filepath.Join(dir, "w"))
	if rerr != nil || !bytes.Equal(got, []byte("123456")) {
		t.Fatalf("on-disk content %q err=%v, want the pre-arm bytes", got, rerr)
	}
}
