// Package faultfs injects filesystem faults into a node's persistence
// layer for chaos testing — the disk-side mirror of fleet/faultconn. A
// Store normally talks to the real filesystem through the OS
// implementation of the FS interface; tests swap in an Injector, which
// degrades the same operations according to a Plan: writes that start
// failing mid-stream (a disk filling up), short writes (power cut
// mid-append), fsync failures (the write-back cache lying), and rename
// or directory-sync failures (the two steps crash-durable snapshot
// publication actually depends on).
//
// The distinction the store's recovery contract draws — a torn tail is
// expected damage, a corrupt complete record is not — is exactly what
// these faults exercise: every Plan in this package produces states a
// real crash could have left, so a store that ever refuses to load
// after one has a durability bug, not bad luck.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"sync"
)

// ErrInjected is the default error returned by injected faults when a
// Plan does not supply its own (for example syscall.ENOSPC).
var ErrInjected = errors.New("faultfs: injected fault")

// File is the slice of *os.File the store's WAL and snapshot plumbing
// needs.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Name() string
	Stat() (fs.FileInfo, error)
	Sync() error
	Truncate(size int64) error
}

// FS is the filesystem surface the store is written against. OS is the
// real thing; Injector wraps any FS with faults.
type FS interface {
	MkdirAll(dir string, perm fs.FileMode) error
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(dir string) ([]fs.DirEntry, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory, making previously renamed entries
	// crash-durable. Rename alone only updates the in-memory dirent.
	SyncDir(dir string) error
}

// OS is the passthrough FS backed by package os.
type OS struct{}

func (OS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (OS) ReadFile(name string) ([]byte, error)      { return os.ReadFile(name) }
func (OS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }
func (OS) Rename(oldpath, newpath string) error      { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                  { return os.Remove(name) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Plan selects the faults an Injector applies. The zero value injects
// nothing. Byte thresholds count file bytes written through the
// injector since its creation; operation indexes are 1-based counts of
// that operation ("the Nth sync and every one after it fails"). Zero
// disables a fault.
type Plan struct {
	// WriteErrAfter: the disk is full after this many bytes. The write
	// crossing the threshold delivers only the bytes up to it and
	// reports Err (real ENOSPC is exactly this partial write); every
	// later write fails outright.
	WriteErrAfter int
	// ShortWriteAt: the single write crossing this byte threshold
	// delivers only the bytes up to it, then reports Err — a power cut
	// mid-append. Later writes proceed normally (unless another fault
	// applies), so tests can grow a file around one torn record.
	ShortWriteAt int
	// SyncErrOn: the Nth file Sync and every later one fail with Err —
	// the write-back cache can no longer reach stable storage.
	SyncErrOn int
	// RenameErrOn: the Nth Rename and every later one fail with Err.
	RenameErrOn int
	// DirSyncErrOn: the Nth SyncDir and every later one fail with Err.
	DirSyncErrOn int
	// Err is the error injected faults return; nil selects ErrInjected.
	Err error
}

func (p Plan) err() error {
	if p.Err != nil {
		return p.Err
	}
	return ErrInjected
}

// Stats counts the operations an Injector has seen — how tests assert
// the store performed a durability step (for example that Compact
// issued a SyncDir after its Rename) rather than merely not crashing.
type Stats struct {
	BytesWritten int
	Writes       int
	Syncs        int
	Renames      int
	Removes      int
	DirSyncs     int
}

// Injector wraps an FS with the faults of a Plan. Counters are shared
// across every file opened through it, so byte thresholds describe the
// node's total write stream the way faultconn thresholds describe one
// connection's.
type Injector struct {
	inner FS
	plan  Plan

	mu    sync.Mutex
	stats Stats
}

// New wraps inner with the plan's faults.
func New(inner FS, plan Plan) *Injector {
	return &Injector{inner: inner, plan: plan}
}

// Stats returns a snapshot of the operation counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Arm swaps the injector's plan mid-run, so a fixture can enroll and
// warm a node cleanly and only then break its disk for a chosen phase.
// Counters are not reset: byte and operation thresholds still count
// from the injector's creation.
func (in *Injector) Arm(plan Plan) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plan = plan
}

func (in *Injector) MkdirAll(dir string, perm fs.FileMode) error {
	return in.inner.MkdirAll(dir, perm)
}

func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: f, in: in}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: f, in: in}, nil
}

func (in *Injector) ReadFile(name string) ([]byte, error) { return in.inner.ReadFile(name) }

func (in *Injector) ReadDir(dir string) ([]fs.DirEntry, error) { return in.inner.ReadDir(dir) }

func (in *Injector) Rename(oldpath, newpath string) error {
	in.mu.Lock()
	in.stats.Renames++
	fail := in.plan.RenameErrOn > 0 && in.stats.Renames >= in.plan.RenameErrOn
	in.mu.Unlock()
	if fail {
		return in.plan.err()
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	in.mu.Lock()
	in.stats.Removes++
	in.mu.Unlock()
	return in.inner.Remove(name)
}

func (in *Injector) SyncDir(dir string) error {
	in.mu.Lock()
	in.stats.DirSyncs++
	fail := in.plan.DirSyncErrOn > 0 && in.stats.DirSyncs >= in.plan.DirSyncErrOn
	in.mu.Unlock()
	if fail {
		return in.plan.err()
	}
	return in.inner.SyncDir(dir)
}

// faultFile applies the injector's write and sync faults to one file.
type faultFile struct {
	inner File
	in    *Injector
}

func (f *faultFile) Read(p []byte) (int, error)         { return f.inner.Read(p) }
func (f *faultFile) Seek(o int64, w int) (int64, error) { return f.inner.Seek(o, w) }
func (f *faultFile) Close() error                       { return f.inner.Close() }
func (f *faultFile) Name() string                       { return f.inner.Name() }
func (f *faultFile) Stat() (fs.FileInfo, error)         { return f.inner.Stat() }
func (f *faultFile) Truncate(size int64) error          { return f.inner.Truncate(size) }

func (f *faultFile) Write(p []byte) (int, error) {
	in := f.in
	in.mu.Lock()
	written := in.stats.BytesWritten
	in.stats.Writes++
	plan := in.plan
	// allow is how many of p's bytes reach the disk; faulted stays
	// false for a clean write. A threshold landing inside this write
	// tears it: the prefix lands, the call reports the injected error.
	allow, faulted := len(p), false
	cut := func(limit int) {
		if limit > 0 && written+allow > limit {
			if keep := limit - written; keep < allow {
				if keep < 0 {
					keep = 0
				}
				allow = keep
			}
			faulted = true
		}
	}
	cut(plan.WriteErrAfter)
	if plan.ShortWriteAt > 0 && written < plan.ShortWriteAt {
		cut(plan.ShortWriteAt)
	}
	in.mu.Unlock()

	if faulted && allow == 0 {
		return 0, plan.err()
	}
	n, err := f.inner.Write(p[:allow])
	in.mu.Lock()
	in.stats.BytesWritten += n
	in.mu.Unlock()
	if err == nil && faulted {
		err = plan.err()
	}
	return n, err
}

func (f *faultFile) Sync() error {
	in := f.in
	in.mu.Lock()
	in.stats.Syncs++
	fail := in.plan.SyncErrOn > 0 && in.stats.Syncs >= in.plan.SyncErrOn
	in.mu.Unlock()
	if fail {
		return in.plan.err()
	}
	return f.inner.Sync()
}
