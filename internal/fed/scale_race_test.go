//go:build race

package fed

// Scale-test sizing under the race detector: the instrumentation costs
// roughly an order of magnitude in time and memory, so the fleet
// shrinks while staying large enough to exercise every shard, worker
// and ring arc.
const (
	scaleHonestDevices   = 20000
	scaleAttackedDevices = 50
)
