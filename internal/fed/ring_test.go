package fed

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("device-%06d", i)
	}
	return keys
}

func assignAll(r *Ring, keys []string) map[string]NodeID {
	out := make(map[string]NodeID, len(keys))
	for _, k := range keys {
		n, ok := r.Assign(k)
		if !ok {
			panic("empty ring")
		}
		out[k] = n
	}
	return out
}

func TestRingDeterministic(t *testing.T) {
	keys := ringKeys(1000)
	build := func() *Ring {
		r := NewRing(64)
		// Insertion order must not matter.
		return r
	}
	a := build()
	for _, n := range []NodeID{"a", "b", "c"} {
		a.Add(n)
	}
	b := build()
	for _, n := range []NodeID{"c", "a", "b"} {
		b.Add(n)
	}
	av, bv := assignAll(a, keys), assignAll(b, keys)
	for _, k := range keys {
		if av[k] != bv[k] {
			t.Fatalf("key %s: %s vs %s under different insertion order", k, av[k], bv[k])
		}
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Assign("x"); ok {
		t.Fatal("assign on empty ring should fail")
	}
	if !r.Add("a") || r.Add("a") {
		t.Fatal("Add should succeed once then report duplicate")
	}
	if !r.Has("a") || r.Has("b") {
		t.Fatal("membership wrong")
	}
	if r.Remove("b") {
		t.Fatal("removing a non-member should report false")
	}
	if !r.Remove("a") || r.Len() != 0 {
		t.Fatal("remove failed")
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(128)
	nodes := []NodeID{"n0", "n1", "n2", "n3"}
	for _, n := range nodes {
		r.Add(n)
	}
	keys := ringKeys(20000)
	counts := make(map[NodeID]int)
	for _, k := range keys {
		n, _ := r.Assign(k)
		counts[n]++
	}
	want := len(keys) / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < want/2 || c > want*2 {
			t.Errorf("node %s holds %d keys, want within [%d, %d]", n, c, want/2, want*2)
		}
	}
}

// TestRingMinimalMovement is the consistent-hashing contract: adding a
// node moves only keys onto the new node (nothing shuffles between
// survivors), removing it restores the previous assignment exactly.
func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(128)
	for _, n := range []NodeID{"a", "b", "c"} {
		r.Add(n)
	}
	keys := ringKeys(5000)
	before := assignAll(r, keys)

	r.Add("d")
	after := assignAll(r, keys)
	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if after[k] != "d" {
				t.Fatalf("key %s moved %s → %s, not onto the joining node", k, before[k], after[k])
			}
		}
	}
	if moved == 0 || moved > len(keys)/2 {
		t.Fatalf("join moved %d of %d keys; want roughly 1/4", moved, len(keys))
	}

	r.Remove("d")
	restored := assignAll(r, keys)
	for _, k := range keys {
		if before[k] != restored[k] {
			t.Fatalf("key %s: %s before join, %s after leave", k, before[k], restored[k])
		}
	}
}

// TestRingAssignNDistinct is the replica-set placement property: for
// every key and every replication factor up to the member count, the
// owner list holds exactly min(R, N) distinct physical nodes, starts
// with the Assign owner, and is stable across recomputation.
func TestRingAssignNDistinct(t *testing.T) {
	r := NewRing(64)
	nodes := []NodeID{"n0", "n1", "n2", "n3", "n4"}
	keys := ringKeys(2000)
	for added, n := range nodes {
		r.Add(n)
		live := added + 1
		for wantR := 1; wantR <= live+1; wantR++ {
			want := wantR
			if want > live {
				want = live
			}
			for _, k := range keys[:500] {
				owners := r.AssignN(k, wantR)
				if len(owners) != want {
					t.Fatalf("%d nodes, R=%d: key %s got %d owners, want %d", live, wantR, k, len(owners), want)
				}
				seen := make(map[NodeID]bool, len(owners))
				for _, o := range owners {
					if seen[o] {
						t.Fatalf("key %s: duplicate owner %s in %v", k, o, owners)
					}
					if !r.Has(o) {
						t.Fatalf("key %s: owner %s is not a ring member", k, o)
					}
					seen[o] = true
				}
				primary, _ := r.Assign(k)
				if owners[0] != primary {
					t.Fatalf("key %s: AssignN[0]=%s, Assign=%s", k, owners[0], primary)
				}
			}
		}
	}
	if got := r.AssignN("x", 0); got != nil {
		t.Fatalf("AssignN(_, 0) = %v, want nil", got)
	}
	if got := NewRing(8).AssignN("x", 2); got != nil {
		t.Fatalf("AssignN on empty ring = %v, want nil", got)
	}
}

// TestRingAssignNMinimalMovement extends the consistent-hashing
// contract to replica sets: a join only ever adds the joining node to a
// key's owner list (survivor membership is preserved, though failover
// order may shift), a leave only removes the leaver, and removal
// restores the pre-join replica sets exactly. The moved fraction of
// (key, replica) assignments stays near R/N.
func TestRingAssignNMinimalMovement(t *testing.T) {
	const R = 2
	r := NewRing(128)
	for _, n := range []NodeID{"a", "b", "c"} {
		r.Add(n)
	}
	keys := ringKeys(5000)
	setOf := func(owners []NodeID) map[NodeID]bool {
		m := make(map[NodeID]bool, len(owners))
		for _, o := range owners {
			m[o] = true
		}
		return m
	}
	before := make(map[string][]NodeID, len(keys))
	for _, k := range keys {
		before[k] = r.AssignN(k, R)
	}

	r.Add("d")
	movedPairs := 0
	for _, k := range keys {
		after := r.AssignN(k, R)
		was, now := setOf(before[k]), setOf(after)
		for n := range now {
			if !was[n] && n != "d" {
				t.Fatalf("key %s: join of d added survivor %s (%v → %v)", k, n, before[k], after)
			}
		}
		dropped := 0
		for n := range was {
			if !now[n] {
				dropped++
			}
		}
		if dropped > 1 {
			t.Fatalf("key %s: join displaced %d replicas (%v → %v), want ≤ 1", k, dropped, before[k], after)
		}
		for i := range after {
			if i >= len(before[k]) || after[i] != before[k][i] {
				movedPairs++
			}
		}
	}
	// Expected churn: each of the R replica slots moves for ~1/4 of
	// keys (the new node's share), plus order shifts; allow slack but
	// reject wholesale reshuffles.
	total := len(keys) * R
	if movedPairs == 0 || movedPairs > total/2 {
		t.Fatalf("join moved %d of %d (key, replica) pairs; want roughly %d", movedPairs, total, total/4)
	}

	r.Remove("d")
	for _, k := range keys {
		restored := r.AssignN(k, R)
		if len(restored) != len(before[k]) {
			t.Fatalf("key %s: %v before join, %v after leave", k, before[k], restored)
		}
		for i := range restored {
			if restored[i] != before[k][i] {
				t.Fatalf("key %s: %v before join, %v after leave", k, before[k], restored)
			}
		}
	}
}

func TestRingClone(t *testing.T) {
	r := NewRing(32)
	r.Add("a")
	c := r.Clone()
	c.Add("b")
	if r.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: %d / %d", r.Len(), c.Len())
	}
}
