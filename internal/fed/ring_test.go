package fed

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("device-%06d", i)
	}
	return keys
}

func assignAll(r *Ring, keys []string) map[string]NodeID {
	out := make(map[string]NodeID, len(keys))
	for _, k := range keys {
		n, ok := r.Assign(k)
		if !ok {
			panic("empty ring")
		}
		out[k] = n
	}
	return out
}

func TestRingDeterministic(t *testing.T) {
	keys := ringKeys(1000)
	build := func() *Ring {
		r := NewRing(64)
		// Insertion order must not matter.
		return r
	}
	a := build()
	for _, n := range []NodeID{"a", "b", "c"} {
		a.Add(n)
	}
	b := build()
	for _, n := range []NodeID{"c", "a", "b"} {
		b.Add(n)
	}
	av, bv := assignAll(a, keys), assignAll(b, keys)
	for _, k := range keys {
		if av[k] != bv[k] {
			t.Fatalf("key %s: %s vs %s under different insertion order", k, av[k], bv[k])
		}
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Assign("x"); ok {
		t.Fatal("assign on empty ring should fail")
	}
	if !r.Add("a") || r.Add("a") {
		t.Fatal("Add should succeed once then report duplicate")
	}
	if !r.Has("a") || r.Has("b") {
		t.Fatal("membership wrong")
	}
	if r.Remove("b") {
		t.Fatal("removing a non-member should report false")
	}
	if !r.Remove("a") || r.Len() != 0 {
		t.Fatal("remove failed")
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(128)
	nodes := []NodeID{"n0", "n1", "n2", "n3"}
	for _, n := range nodes {
		r.Add(n)
	}
	keys := ringKeys(20000)
	counts := make(map[NodeID]int)
	for _, k := range keys {
		n, _ := r.Assign(k)
		counts[n]++
	}
	want := len(keys) / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < want/2 || c > want*2 {
			t.Errorf("node %s holds %d keys, want within [%d, %d]", n, c, want/2, want*2)
		}
	}
}

// TestRingMinimalMovement is the consistent-hashing contract: adding a
// node moves only keys onto the new node (nothing shuffles between
// survivors), removing it restores the previous assignment exactly.
func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(128)
	for _, n := range []NodeID{"a", "b", "c"} {
		r.Add(n)
	}
	keys := ringKeys(5000)
	before := assignAll(r, keys)

	r.Add("d")
	after := assignAll(r, keys)
	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if after[k] != "d" {
				t.Fatalf("key %s moved %s → %s, not onto the joining node", k, before[k], after[k])
			}
		}
	}
	if moved == 0 || moved > len(keys)/2 {
		t.Fatalf("join moved %d of %d keys; want roughly 1/4", moved, len(keys))
	}

	r.Remove("d")
	restored := assignAll(r, keys)
	for _, k := range keys {
		if before[k] != restored[k] {
			t.Fatalf("key %s: %s before join, %s after leave", k, before[k], restored[k])
		}
	}
}

func TestRingClone(t *testing.T) {
	r := NewRing(32)
	r.Add("a")
	c := r.Clone()
	c.Add("b")
	if r.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: %d / %d", r.Len(), c.Len())
	}
}
