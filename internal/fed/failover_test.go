package fed

import (
	"fmt"
	"io"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/fleet"
	"lofat/internal/obs"
	"lofat/internal/workloads"
)

// chaosGate wedges a node's device-side dials: once armed, every dial
// signals begun (first only), blocks until release, then fails. The
// blocking matters — if gated dials failed immediately, the victim
// would finish its sweep and politely report per-device errors, which
// is not a crash. Blocking holds the victim's sweep exchange open so
// the chaos goroutine can sever its control plane mid-flight, and the
// one-shot adversaries on attacked devices are never consumed by a
// challenge whose verdict dies with the node.
type chaosGate struct {
	armed   atomic.Bool
	once    sync.Once
	begun   chan struct{}
	release chan struct{}
}

func newChaosGate() *chaosGate {
	return &chaosGate{begun: make(chan struct{}), release: make(chan struct{})}
}

// dial wraps the fabric's dialer with the gate.
func (g *chaosGate) dial(f *fabric) func(string) (io.ReadWriteCloser, error) {
	return func(addr string) (io.ReadWriteCloser, error) {
		if g.armed.Load() {
			g.once.Do(func() { close(g.begun) })
			<-g.release
			return nil, fmt.Errorf("chaos: device network down")
		}
		return f.dial(addr)
	}
}

// sever cuts the coordinator's control-plane connections to the node
// and refuses new dials without tearing the node process down — the
// first half of a crash, split from kill because Node.Kill blocks on
// fleet workers that may still be wedged inside gated device dials:
// the chaos sequence is sever, release the gate, then Kill.
func (tn *testNode) sever() {
	tn.mu.Lock()
	tn.down = true
	conns := tn.conns
	tn.conns = nil
	tn.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// chaosFed is a three-node federation whose nodes' device networks are
// individually gateable.
type chaosFed struct {
	f        *fabric
	coord    *Coordinator
	nodes    []*testNode
	gates    []*chaosGate
	progID   attest.ProgramID
	input    []uint32
	honest   []fleet.DeviceID
	attacked []fleet.DeviceID
}

func (cf *chaosFed) total() int { return len(cf.honest) + len(cf.attacked) }

// nodeIndex maps a node ID back to its slot in nodes/gates.
func (cf *chaosFed) nodeIndex(id NodeID) int {
	for i, tn := range cf.nodes {
		if tn.node.ID() == id {
			return i
		}
	}
	return -1
}

// newChaosFed builds the federation: three nodes, honest devices on a
// shared endpoint, attacked devices running one-shot loop-counter
// adversaries.
func newChaosFed(t *testing.T, cfg Config, honest, attacked int) *chaosFed {
	t.Helper()
	cf := &chaosFed{f: newFabric(), coord: NewCoordinator(cfg)}
	for i := 0; i < 3; i++ {
		gate := newChaosGate()
		tn := newTestNode(t, NodeConfig{
			ID:    NodeID(fmt.Sprintf("node-%d", i)),
			Fleet: fleet.Config{Dial: gate.dial(cf.f)},
		})
		cf.nodes = append(cf.nodes, tn)
		cf.gates = append(cf.gates, gate)
		if _, err := cf.coord.Join(tn.node.ID(), tn.dial); err != nil {
			t.Fatalf("join %s: %v", tn.node.ID(), err)
		}
	}
	t.Cleanup(func() {
		cf.coord.Close()
		for _, tn := range cf.nodes {
			tn.close()
		}
	})

	pump := workloads.SyringePump()
	prog, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	cf.input = pump.Input
	cf.progID, err = cf.coord.RegisterProgram(prog, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}
	pub, addr := spawnHonestEndpoint(t, cf.f, pump, "honest")
	for i := 0; i < honest; i++ {
		id := fleet.DeviceID(fmt.Sprintf("dev-%03d", i))
		if err := cf.coord.Enroll(id, cf.progID, pub, addr); err != nil {
			t.Fatal(err)
		}
		cf.honest = append(cf.honest, id)
	}
	for i := 0; i < attacked; i++ {
		id, apub, aaddr := spawnAttacked(t, cf.f, pump, "loop-counter", i)
		if err := cf.coord.Enroll(id, cf.progID, apub, aaddr); err != nil {
			t.Fatal(err)
		}
		cf.attacked = append(cf.attacked, id)
	}
	return cf
}

// TestFailoverMidSweep is the headline chaos scenario the replicated
// placement exists for: a node is crashed in the middle of a federated
// sweep — control plane severed mid-exchange, WAL handle dropped
// without a sync — and the verdict must still cover every device with
// per-device classifications identical to a federation that never saw
// the failure. Two follow-up sweeps walk the dead node's breaker
// through trip and skip, each still covering the whole fleet.
func TestFailoverMidSweep(t *testing.T) {
	const honest, attacked = 36, 4
	cfg := Config{Replicas: 2, BreakerThreshold: 2}

	// Baseline: identical fleet, no failure.
	base := newChaosFed(t, cfg, honest, attacked)
	vA, err := base.coord.Sweep(base.progID, base.input, false)
	if err != nil {
		t.Fatal(err)
	}
	if vA.Waves != 1 || len(vA.FailedOver) != 0 || len(vA.Uncovered) != 0 {
		t.Fatalf("baseline sweep not clean: %s", vA)
	}

	hub := obs.NewHub()
	hub.Flight = obs.NewFlight(0)
	cfg.Obs = hub
	cf := newChaosFed(t, cfg, honest, attacked)
	victimID, ok := cf.coord.Owner(cf.honest[0])
	if !ok {
		t.Fatal("no owner for honest device 0")
	}
	vi := cf.nodeIndex(victimID)
	victim, gate := cf.nodes[vi], cf.gates[vi]

	// Expected failover set: every device whose primary is the victim.
	wantFailover := make(map[fleet.DeviceID]bool)
	for _, id := range append(append([]fleet.DeviceID(nil), cf.honest...), cf.attacked...) {
		if owner, _ := cf.coord.Owner(id); owner == victimID {
			wantFailover[id] = true
		}
	}

	gate.armed.Store(true)
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		<-gate.begun
		victim.sever()
		close(gate.release)
		victim.node.Kill()
	}()

	vB, err := cf.coord.Sweep(cf.progID, cf.input, false)
	if err != nil {
		t.Fatal(err)
	}
	<-killed
	t.Logf("kill sweep: %s", vB)

	if vB.NodesFailed != 1 || vB.NodesOK != 2 || vB.NodesSkipped != 0 {
		t.Fatalf("node outcome: ok=%d failed=%d skipped=%d", vB.NodesOK, vB.NodesFailed, vB.NodesSkipped)
	}
	if vB.Waves != 2 {
		t.Fatalf("sweep took %d waves, want 2", vB.Waves)
	}
	if len(vB.Uncovered) != 0 {
		t.Fatalf("uncovered devices despite live replicas: %v", vB.Uncovered)
	}
	if vB.Devices != cf.total() {
		t.Fatalf("verdict covers %d devices, want %d", vB.Devices, cf.total())
	}

	// The crash must be invisible in the attestation outcome.
	if vB.Accepted != vA.Accepted || vB.Rejected != vA.Rejected || vB.Errors != 0 || vB.Skipped != 0 {
		t.Fatalf("totals diverge from no-failure run: accepted %d/%d rejected %d/%d errors=%d skipped=%d",
			vB.Accepted, vA.Accepted, vB.Rejected, vA.Rejected, vB.Errors, vB.Skipped)
	}
	if !reflect.DeepEqual(vB.ByClass, vA.ByClass) {
		t.Fatalf("classification diverges from no-failure run:\n  with kill: %v\n  baseline:  %v", vB.ByClass, vA.ByClass)
	}

	// Per-device attribution: exactly the victim's devices failed over,
	// each to a surviving replica.
	if len(vB.FailedOver) != len(wantFailover) {
		t.Fatalf("%d devices failed over, want %d (the victim's acting set)", len(vB.FailedOver), len(wantFailover))
	}
	for id, node := range vB.FailedOver {
		if !wantFailover[id] {
			t.Fatalf("device %s failed over but its primary %v is alive", id, victimID)
		}
		if node == victimID {
			t.Fatalf("device %s attributed to the dead node", id)
		}
	}
	events := 0
	for _, e := range hub.Flight.Events() {
		if e.Kind == obs.KindFailover {
			events++
		}
	}
	if events != len(wantFailover) {
		t.Fatalf("%d failover flight events, want %d", events, len(wantFailover))
	}

	// Post-failover device state matches the baseline's classifications.
	for _, id := range cf.honest {
		st, node, err := cf.coord.Device(id)
		if err != nil {
			t.Fatalf("device %s: %v", id, err)
		}
		if st.Quarantined || st.LastClass != attest.ClassAccepted {
			t.Fatalf("honest device %s on %s misclassified after failover: %+v", id, node, st)
		}
	}
	for _, id := range cf.attacked {
		st, _, err := cf.coord.Device(id)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Quarantined || st.LastClass != attest.ClassLoopCounter {
			t.Fatalf("attacked device %s not quarantined after failover: %+v", id, st)
		}
	}

	// Sweep 2: the dead node fails again — second consecutive failure
	// trips its breaker — and its devices fail over in-wave once more.
	v2, err := cf.coord.Sweep(cf.progID, cf.input, false)
	if err != nil {
		t.Fatal(err)
	}
	if v2.NodesFailed != 1 || v2.NodesOK != 2 || v2.Waves < 2 {
		t.Fatalf("second sweep: ok=%d failed=%d waves=%d", v2.NodesOK, v2.NodesFailed, v2.Waves)
	}
	if v2.Devices != cf.total() || len(v2.Uncovered) != 0 || len(v2.FailedOver) != len(wantFailover) {
		t.Fatalf("second sweep coverage: %s", v2)
	}
	if br, ok := cf.coord.NodeBreaker(victimID); !ok || br != fleet.BreakerTripped {
		t.Fatalf("victim breaker = %v after repeat failure, want tripped", br)
	}
	if v2.Accepted != honest || v2.Skipped != attacked {
		t.Fatalf("second sweep totals: accepted=%d skipped=%d, want %d/%d", v2.Accepted, v2.Skipped, honest, attacked)
	}

	// Sweep 3: the breaker is open, so the dead node is skipped at the
	// planner — failover happens in wave one, no transport attempts
	// wasted on it.
	v3, err := cf.coord.Sweep(cf.progID, cf.input, false)
	if err != nil {
		t.Fatal(err)
	}
	if v3.NodesSkipped != 1 || v3.NodesOK != 2 || v3.Waves != 1 {
		t.Fatalf("third sweep: ok=%d skipped=%d waves=%d", v3.NodesOK, v3.NodesSkipped, v3.Waves)
	}
	if v3.Devices != cf.total() || len(v3.Uncovered) != 0 || len(v3.FailedOver) != len(wantFailover) {
		t.Fatalf("third sweep coverage: %s", v3)
	}
}

// TestRejoinDuringSweep races a crash-and-rejoin against an in-flight
// sweep: the victim dies mid-exchange, a replacement node rejoins under
// the same ID while the sweep's failover waves are still running, and
// the generation check must keep the sweep routing by a consistent
// placement. The replacement's breaker must be untouched by the dead
// incarnation's failure, and the next sweep must run three-healthy.
func TestRejoinDuringSweep(t *testing.T) {
	const honest = 40
	cf := newChaosFed(t, Config{Replicas: 2}, honest, 0)
	victimID, _ := cf.coord.Owner(cf.honest[0])
	vi := cf.nodeIndex(victimID)
	victim, gate := cf.nodes[vi], cf.gates[vi]

	gate.armed.Store(true)
	done := make(chan struct{})
	var rejoinErr error
	go func() {
		defer close(done)
		<-gate.begun
		victim.sever()
		close(gate.release)
		victim.node.Kill()
		replacement := newTestNode(t, NodeConfig{
			ID:    victimID,
			Fleet: fleet.Config{Dial: cf.f.dial},
		})
		cf.nodes[vi] = replacement
		rejoinErr = cf.coord.Rejoin(victimID, replacement.dial)
	}()

	v, err := cf.coord.Sweep(cf.progID, cf.input, false)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if rejoinErr != nil {
		t.Fatalf("rejoin during sweep: %v", rejoinErr)
	}
	t.Logf("sweep racing rejoin: %s", v)

	if v.Devices != honest || len(v.Uncovered) != 0 {
		t.Fatalf("coverage under rejoin race: devices=%d uncovered=%v", v.Devices, v.Uncovered)
	}
	if v.NodesFailed != 1 {
		t.Fatalf("node outcome: ok=%d failed=%d skipped=%d", v.NodesOK, v.NodesFailed, v.NodesSkipped)
	}
	// The dead incarnation's transport failure must not have advanced
	// the replacement's breaker — it is a different client under the
	// same name.
	if br, ok := cf.coord.NodeBreaker(victimID); !ok || br != fleet.BreakerHealthy {
		t.Fatalf("replacement breaker = %v (member=%v), want healthy", br, ok)
	}

	v2, err := cf.coord.Sweep(cf.progID, cf.input, false)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Healthy || v2.NodesOK != 3 || v2.Accepted != honest || len(v2.FailedOver) != 0 {
		t.Fatalf("post-rejoin sweep not three-healthy: %s", v2)
	}
}

// TestLeaveDuringSweep races a planned departure against an in-flight
// sweep. The split nodeClient locking must keep Leave from deadlocking
// behind the victim's wedged sweep exchange, the generation check must
// re-plan any failover waves on the post-leave ring, and the shrunken
// federation must still cover the whole fleet.
func TestLeaveDuringSweep(t *testing.T) {
	const honest = 40
	cf := newChaosFed(t, Config{Replicas: 2}, honest, 0)
	victimID, _ := cf.coord.Owner(cf.honest[0])
	vi := cf.nodeIndex(victimID)
	gate := cf.gates[vi]

	gate.armed.Store(true)
	done := make(chan struct{})
	var leaveRep *RebalanceReport
	var leaveErr error
	go func() {
		defer close(done)
		<-gate.begun
		leaveFinished := make(chan struct{})
		go func() {
			leaveRep, leaveErr = cf.coord.Leave(victimID)
			close(leaveFinished)
		}()
		// Leave's hand-off requests queue behind the victim's in-flight
		// sweep exchange; release the gate so that exchange can finish
		// (with per-device dial errors) instead of wedging both.
		close(gate.release)
		<-leaveFinished
	}()

	v, err := cf.coord.Sweep(cf.progID, cf.input, false)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if leaveErr != nil {
		t.Fatalf("leave during sweep: %v", leaveErr)
	}
	if len(leaveRep.Errors) != 0 {
		t.Fatalf("leave rebalance errors: %v", leaveRep.Errors)
	}
	t.Logf("sweep racing leave: %s", v)

	if v.Devices != honest || len(v.Uncovered) != 0 {
		t.Fatalf("coverage under leave race: devices=%d uncovered=%v", v.Devices, v.Uncovered)
	}
	if got := len(cf.coord.Nodes()); got != 2 {
		t.Fatalf("federation has %d nodes after leave, want 2", got)
	}
	if got := cf.coord.FleetSize(); got != honest {
		t.Fatalf("fleet size %d after leave, want %d", got, honest)
	}

	// The two survivors carry the whole fleet on the next sweep.
	v2, err := cf.coord.Sweep(cf.progID, cf.input, false)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Healthy || v2.NodesOK != 2 || v2.Accepted != honest || v2.Devices != honest {
		t.Fatalf("post-leave sweep: %s", v2)
	}
}
