package fed

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"lofat/internal/attest"
	"lofat/internal/fleet"
)

// Persistence wire format: all integers little-endian, length-prefixed
// strings, one canonical encoding per value (the attest codec
// discipline). Two containers share it:
//
//	snapshot file:  "LFED" | u16 version | body | u32 crc
//	WAL file:       "LFWL" | u16 version | record*
//	WAL record:     u32 len | u32 crc(body) | body
//	record body:    u8 kind | kind-specific fields
//
// The snapshot CRC covers magic+version+body; a WAL record's CRC covers
// its body only, so each record is independently verifiable and a crash
// mid-append damages at most the final record (the torn tail).

// SnapshotVersion is the schema version this build writes. Loading a
// different version fails loudly — silently reinterpreting breaker or
// quarantine state across schema changes is exactly the failure mode
// the version field exists to prevent.
const SnapshotVersion = 1

const (
	snapshotMagic = "LFED"
	walMagic      = "LFWL"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WAL record kinds.
const (
	// recUpsert: full DeviceRecord — enrolment or any post-sweep change.
	recUpsert byte = 1
	// recForget: device removed (federation hand-off or teardown).
	recForget byte = 2
	// recQuarantine: operator quarantine flag change; clearing it also
	// clears the streaks and breaker, mirroring fleet.SetQuarantined.
	recQuarantine byte = 3
	// recCacheKey: a measurement-cache key the node has warmed.
	recCacheKey byte = 4
	// recSweepGen: the sweep-generation counter after a sweep.
	recSweepGen byte = 5
)

// DeviceRecord is the persistable subset of a fleet.DeviceState: the
// fields that must survive a restart for the node to make the same
// policy decisions it would have made had it stayed up — identity,
// placement, quarantine, breaker lifecycle and the lifetime counters.
// Last-round diagnostics (findings, error text, wall-clock timestamp)
// are deliberately not persisted: they inform operators, not policy.
// The struct is comparable, so the node's post-sweep diff is a plain
// != against the previously persisted record.
type DeviceRecord struct {
	ID      fleet.DeviceID
	Addr    string
	Program attest.ProgramID
	Pub     [ed25519.PublicKeySize]byte

	Quarantined        bool
	ConsecutiveRejects uint32
	Rounds             uint64
	Accepted           uint64
	Rejected           uint64
	TransportErrors    uint64
	LastClass          attest.Classification

	Breaker        fleet.BreakerState
	TransportFails uint32
	BreakerGen     uint64
}

// RecordFromState projects a registry snapshot onto its persistable
// record.
func RecordFromState(st fleet.DeviceState) DeviceRecord {
	r := DeviceRecord{
		ID:                 st.ID,
		Addr:               st.Addr,
		Program:            st.Program,
		Quarantined:        st.Quarantined,
		ConsecutiveRejects: uint32(st.ConsecutiveRejects),
		Rounds:             st.Rounds,
		Accepted:           st.Accepted,
		Rejected:           st.Rejected,
		TransportErrors:    st.TransportErrors,
		LastClass:          st.LastClass,
		Breaker:            st.Breaker,
		TransportFails:     uint32(st.ConsecutiveTransportFails),
		BreakerGen:         st.BreakerGen,
	}
	copy(r.Pub[:], st.Pub)
	return r
}

// State rehydrates the record into the fleet.DeviceState shape that
// Service.EnrollState restores.
func (r DeviceRecord) State() fleet.DeviceState {
	return fleet.DeviceState{
		ID:                 r.ID,
		Addr:               r.Addr,
		Program:            r.Program,
		Pub:                append(ed25519.PublicKey(nil), r.Pub[:]...),
		Quarantined:        r.Quarantined,
		ConsecutiveRejects: int(r.ConsecutiveRejects),
		Rounds:             r.Rounds,
		Accepted:           r.Accepted,
		Rejected:           r.Rejected,
		TransportErrors:    r.TransportErrors,
		LastClass:          r.LastClass,

		Breaker:                   r.Breaker,
		ConsecutiveTransportFails: int(r.TransportFails),
		BreakerGen:                r.BreakerGen,
	}
}

// WALRecord is one append-only log entry. Kind selects which of the
// other fields are meaningful.
type WALRecord struct {
	Kind   byte
	Device DeviceRecord   // recUpsert
	ID     fleet.DeviceID // recForget, recQuarantine
	On     bool           // recQuarantine
	Key    string         // recCacheKey
	Gen    uint64         // recSweepGen
}

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("fed: decode: truncated %s at offset %d", what, r.off)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail("u8")
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.buf) {
		r.fail("u16")
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) bool() bool { return r.u8() == 1 }

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail("string")
		return ""
	}
	v := string(r.buf[r.off : r.off+n])
	r.off += n
	return v
}

func (r *reader) raw(n int, what string) []byte {
	if r.err != nil || r.off+n > len(r.buf) {
		r.fail(what)
		return nil
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v
}

func writeDeviceRecord(w *writer, d DeviceRecord) {
	w.str(string(d.ID))
	w.str(d.Addr)
	w.buf = append(w.buf, d.Program[:]...)
	w.buf = append(w.buf, d.Pub[:]...)
	w.bool(d.Quarantined)
	w.u32(d.ConsecutiveRejects)
	w.u64(d.Rounds)
	w.u64(d.Accepted)
	w.u64(d.Rejected)
	w.u64(d.TransportErrors)
	w.u8(uint8(d.LastClass))
	w.u8(uint8(d.Breaker))
	w.u32(d.TransportFails)
	w.u64(d.BreakerGen)
}

func readDeviceRecord(r *reader) DeviceRecord {
	var d DeviceRecord
	d.ID = fleet.DeviceID(r.str())
	d.Addr = r.str()
	copy(d.Program[:], r.raw(len(d.Program), "program id"))
	copy(d.Pub[:], r.raw(len(d.Pub), "public key"))
	d.Quarantined = r.bool()
	d.ConsecutiveRejects = r.u32()
	d.Rounds = r.u64()
	d.Accepted = r.u64()
	d.Rejected = r.u64()
	d.TransportErrors = r.u64()
	d.LastClass = attest.Classification(r.u8())
	d.Breaker = fleet.BreakerState(r.u8())
	d.TransportFails = r.u32()
	d.BreakerGen = r.u64()
	return d
}

// encodeRecordBody serializes a WAL record body (kind byte + fields).
func encodeRecordBody(rec WALRecord) []byte {
	var w writer
	w.u8(rec.Kind)
	switch rec.Kind {
	case recUpsert:
		writeDeviceRecord(&w, rec.Device)
	case recForget:
		w.str(string(rec.ID))
	case recQuarantine:
		w.str(string(rec.ID))
		w.bool(rec.On)
	case recCacheKey:
		w.str(rec.Key)
	case recSweepGen:
		w.u64(rec.Gen)
	}
	return w.buf
}

// decodeRecordBody parses a WAL record body. Unknown kinds are an
// error: a WAL written by a future schema must not be half-understood.
func decodeRecordBody(b []byte) (WALRecord, error) {
	r := &reader{buf: b}
	var rec WALRecord
	rec.Kind = r.u8()
	switch rec.Kind {
	case recUpsert:
		rec.Device = readDeviceRecord(r)
	case recForget:
		rec.ID = fleet.DeviceID(r.str())
	case recQuarantine:
		rec.ID = fleet.DeviceID(r.str())
		rec.On = r.bool()
	case recCacheKey:
		rec.Key = r.str()
	case recSweepGen:
		rec.Gen = r.u64()
	default:
		if r.err == nil {
			return rec, fmt.Errorf("fed: wal: unknown record kind %d", rec.Kind)
		}
	}
	if r.err != nil {
		return rec, r.err
	}
	if r.off != len(b) {
		return rec, fmt.Errorf("fed: wal: %d trailing bytes in record", len(b)-r.off)
	}
	return rec, nil
}

// State is a node's materialized persistable state: what a snapshot
// stores and what WAL replay reconstructs.
type State struct {
	Node      NodeID
	SweepGen  uint64
	Devices   map[fleet.DeviceID]DeviceRecord
	CacheKeys map[string]struct{}
}

// NewState returns an empty state for a node.
func NewState(node NodeID) *State {
	return &State{
		Node:      node,
		Devices:   make(map[fleet.DeviceID]DeviceRecord),
		CacheKeys: make(map[string]struct{}),
	}
}

// Apply folds one WAL record into the state.
func (s *State) Apply(rec WALRecord) {
	switch rec.Kind {
	case recUpsert:
		s.Devices[rec.Device.ID] = rec.Device
	case recForget:
		delete(s.Devices, rec.ID)
	case recQuarantine:
		d, ok := s.Devices[rec.ID]
		if !ok {
			return
		}
		d.Quarantined = rec.On
		if !rec.On {
			// Mirror fleet.SetQuarantined(id, false): release clears the
			// streaks and closes the breaker.
			d.ConsecutiveRejects = 0
			d.TransportFails = 0
			d.Breaker = fleet.BreakerHealthy
		}
		s.Devices[rec.ID] = d
	case recCacheKey:
		s.CacheKeys[rec.Key] = struct{}{}
	case recSweepGen:
		if rec.Gen > s.SweepGen {
			s.SweepGen = rec.Gen
		}
	}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := NewState(s.Node)
	c.SweepGen = s.SweepGen
	for id, d := range s.Devices {
		c.Devices[id] = d
	}
	for k := range s.CacheKeys {
		c.CacheKeys[k] = struct{}{}
	}
	return c
}

// EncodeSnapshot serializes the state as a schema-versioned,
// checksummed snapshot file image.
func EncodeSnapshot(s *State) []byte {
	var w writer
	w.buf = append(w.buf, snapshotMagic...)
	w.u16(SnapshotVersion)
	w.str(string(s.Node))
	w.u64(s.SweepGen)
	// Deterministic image: devices and keys sorted, so identical state
	// always snapshots to identical bytes.
	ids := make([]string, 0, len(s.Devices))
	for id := range s.Devices {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	w.u32(uint32(len(ids)))
	for _, id := range ids {
		writeDeviceRecord(&w, s.Devices[fleet.DeviceID(id)])
	}
	keys := make([]string, 0, len(s.CacheKeys))
	for k := range s.CacheKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		w.str(k)
	}
	w.u32(crc32.Checksum(w.buf, crcTable))
	return w.buf
}

// DecodeSnapshot parses and verifies a snapshot image. Any damage —
// bad magic, a version this build does not speak, a checksum mismatch,
// truncation — fails loudly; a snapshot is the node's ground truth and
// must never be half-loaded.
func DecodeSnapshot(b []byte) (*State, error) {
	if len(b) < len(snapshotMagic)+2+4 {
		return nil, fmt.Errorf("fed: snapshot: too short (%d bytes)", len(b))
	}
	if string(b[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("fed: snapshot: bad magic %q", b[:len(snapshotMagic)])
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if got := crc32.Checksum(body, crcTable); got != sum {
		return nil, fmt.Errorf("fed: snapshot: checksum mismatch (stored %08x, computed %08x)", sum, got)
	}
	r := &reader{buf: body, off: len(snapshotMagic)}
	if v := r.u16(); v != SnapshotVersion {
		return nil, fmt.Errorf("fed: snapshot: version %d, this build speaks only %d", v, SnapshotVersion)
	}
	s := NewState(NodeID(r.str()))
	s.SweepGen = r.u64()
	nDev := int(r.u32())
	if r.err == nil && nDev > len(body) {
		return nil, fmt.Errorf("fed: snapshot: absurd device count %d", nDev)
	}
	for i := 0; i < nDev && r.err == nil; i++ {
		d := readDeviceRecord(r)
		s.Devices[d.ID] = d
	}
	nKeys := int(r.u32())
	if r.err == nil && nKeys > len(body) {
		return nil, fmt.Errorf("fed: snapshot: absurd key count %d", nKeys)
	}
	for i := 0; i < nKeys && r.err == nil; i++ {
		s.CacheKeys[r.str()] = struct{}{}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("fed: snapshot: %d trailing bytes", len(body)-r.off)
	}
	return s, nil
}
