//go:build !race

package fed

// Scale-test sizing for regular runs: the full 100k-device fleet the
// federation is designed to shard. The race detector multiplies memory
// and time per goroutine, so -race runs use the smaller sizing in
// scale_race_test.go; -short shrinks further still.
const (
	scaleHonestDevices   = 100000
	scaleAttackedDevices = 100
)
