package fed

import (
	"reflect"
	"testing"

	"lofat/internal/fleet"
)

// TestPayloadRoundTrip drives every control-plane payload shape
// through encodePayload/decodePayload and requires the decoded value
// to match exactly — the round-trip witness the walcodec analyzer
// demands for the gob payload layer.
func TestPayloadRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		in   any
		out  func() any
	}{
		{
			name: "sweepReq",
			in: &sweepReq{
				Explicit:  true,
				Devices:   []fleet.DeviceID{"pump-1", "pump-2"},
				WantDelta: true,
			},
			out: func() any { return new(sweepReq) },
		},
		{
			name: "deviceReq",
			in:   &deviceReq{Device: "pump-7"},
			out:  func() any { return new(deviceReq) },
		},
		{
			name: "fetchReq",
			in:   &fetchReq{Devices: []fleet.DeviceID{"a", "b", "c"}},
			out:  func() any { return new(fetchReq) },
		},
		{
			name: "okResp",
			in:   &okResp{Node: "node-3"},
			out:  func() any { return new(okResp) },
		},
		{
			name: "stateResp",
			in:   &stateResp{Found: true, State: fleet.DeviceState{ID: "pump-7", Quarantined: true, Rounds: 4}},
			out:  func() any { return new(stateResp) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := encodePayload(tc.in)
			if err != nil {
				t.Fatalf("encodePayload: %v", err)
			}
			got := tc.out()
			if err := decodePayload(b, got); err != nil {
				t.Fatalf("decodePayload: %v", err)
			}
			if !reflect.DeepEqual(got, tc.in) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tc.in)
			}
		})
	}
}

// TestDecodePayloadCorrupt requires decodePayload to fail cleanly, not
// panic, on truncated and garbage input.
func TestDecodePayloadCorrupt(t *testing.T) {
	b, err := encodePayload(&sweepReq{Devices: []fleet.DeviceID{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(b) / 2, len(b) - 1} {
		if err := decodePayload(b[:cut], new(sweepReq)); err == nil {
			t.Errorf("decodePayload accepted %d/%d truncated bytes", cut, len(b))
		}
	}
	if err := decodePayload([]byte("not a gob stream"), new(sweepReq)); err == nil {
		t.Error("decodePayload accepted garbage")
	}
}
