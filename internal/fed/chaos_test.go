package fed

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/fleet"
	"lofat/internal/fleet/faultconn"
	"lofat/internal/obs"
	"lofat/internal/workloads"
)

// TestFederationKillRejoin is the federation chaos scenario: build up
// non-trivial registry state (quarantine, device transport breaker,
// sweep-generation pacing) across three persistent nodes, crash one
// mid-federation, verify the coordinator degrades and trips the node
// breaker, then restart the node from its snapshot+WAL and check the
// recovered durable state is byte-identical to the pre-kill picture.
// A fourth node then joins to force a rebalance; no honest device may
// be misclassified at any point.
func TestFederationKillRejoin(t *testing.T) {
	f := newFabric()

	// One device gets a permanently faulty link: its connection drops
	// after a handful of bytes every round, feeding the *transport*
	// breaker (not quarantine) so the persisted state includes a tripped
	// breaker with its probe-pacing generation.
	const flakyAddr = "mem://flaky"
	dial := faultconn.Wrap(f.dial, func(addr string) (faultconn.Plan, bool) {
		if addr == flakyAddr {
			return faultconn.Plan{CloseAfter: 40}, true
		}
		return faultconn.Plan{}, false
	})

	dir := t.TempDir()
	fleetCfg := fleet.Config{
		Dial:             dial,
		Workers:          4,
		RetryAttempts:    1,
		RetryBackoff:     time.Millisecond,
		ReadTimeout:      2 * time.Second,
		WriteTimeout:     2 * time.Second,
		BreakerThreshold: 2,
	}
	nodeCfg := func(i int) NodeConfig {
		return NodeConfig{
			ID:            NodeID(fmt.Sprintf("node-%d", i)),
			Dir:           fmt.Sprintf("%s/node-%d", dir, i),
			Fleet:         fleetCfg,
			SnapshotEvery: 8, // compact aggressively so recovery spans snapshot + WAL
		}
	}

	hub := &obs.Hub{Reg: obs.NewRegistry(), Flight: obs.NewFlight(256)}
	coord := NewCoordinator(Config{
		ReadTimeout:      2 * time.Second,
		WriteTimeout:     2 * time.Second,
		SweepTimeout:     time.Minute,
		RetryAttempts:    2,
		RetryBackoff:     5 * time.Millisecond,
		BreakerThreshold: 1, // one lost sweep exchange trips the node breaker
		Obs:              hub,
	})
	defer coord.Close()

	nodes := make(map[NodeID]*testNode)
	for i := 0; i < 3; i++ {
		tn := newTestNode(t, nodeCfg(i))
		nodes[tn.node.ID()] = tn
		if _, err := coord.Join(tn.node.ID(), tn.dial); err != nil {
			t.Fatal(err)
		}
	}

	pump := workloads.SyringePump()
	prog, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	progID, err := coord.RegisterProgram(prog, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}

	pub, addr := spawnHonestEndpoint(t, f, pump, "honest")
	const honest = 40
	honestIDs := make([]fleet.DeviceID, honest)
	for i := range honestIDs {
		honestIDs[i] = fleet.DeviceID(fmt.Sprintf("dev-%03d", i))
		if err := coord.Enroll(honestIDs[i], progID, pub, addr); err != nil {
			t.Fatal(err)
		}
	}
	atkID, atkPub, atkAddr := spawnAttacked(t, f, pump, "loop-counter", 0)
	if err := coord.Enroll(atkID, progID, atkPub, atkAddr); err != nil {
		t.Fatal(err)
	}
	flakyID := fleet.DeviceID("dev-flaky")
	f.install(flakyAddr, attest.NewRegistry()) // never actually answers; the fault drops the conn first
	if err := coord.Enroll(flakyID, progID, pub, flakyAddr); err != nil {
		t.Fatal(err)
	}

	assertHonestClean := func(when string) {
		t.Helper()
		for _, id := range honestIDs {
			st, node, err := coord.Device(id)
			if err != nil {
				t.Fatalf("%s: device %s: %v", when, id, err)
			}
			if st.Quarantined || st.LastClass != attest.ClassAccepted {
				t.Fatalf("%s: honest device %s on %s misclassified: quarantined=%v class=%v",
					when, id, node, st.Quarantined, st.LastClass)
			}
		}
	}

	// Two sweeps: the attacker is quarantined on the first, the flaky
	// device's transport breaker trips on the second (threshold 2).
	for i := 0; i < 2; i++ {
		if _, err := coord.Sweep(progID, pump.Input, false); err != nil {
			t.Fatal(err)
		}
	}
	assertHonestClean("after warm-up sweeps")
	if st, _, err := coord.Device(atkID); err != nil || !st.Quarantined {
		t.Fatalf("attacker not quarantined: %+v (%v)", st, err)
	}
	if st, _, err := coord.Device(flakyID); err != nil || st.Breaker != fleet.BreakerTripped {
		t.Fatalf("flaky device breaker = %v, want tripped (%v)", st.Breaker, err)
	}

	// Crash the node that owns the attacker — its durable state is the
	// most interesting to recover.
	victim, _ := coord.Owner(atkID)
	tn := nodes[victim]
	preKill := tn.node.MaterializedState()
	if len(preKill.Devices) == 0 || preKill.SweepGen == 0 {
		t.Fatalf("pre-kill state trivial: %d devices, gen %d", len(preKill.Devices), preKill.SweepGen)
	}
	tn.kill()

	// Sweep the degraded federation: the dead node fails its exchange
	// and trips the coordinator's node breaker; the next sweep skips it
	// without paying its timeout.
	v, err := coord.Sweep(progID, pump.Input, false)
	if err != nil {
		t.Fatal(err)
	}
	if v.NodesOK != 2 || v.NodesFailed != 1 || v.Healthy {
		t.Fatalf("degraded sweep: ok=%d failed=%d healthy=%v", v.NodesOK, v.NodesFailed, v.Healthy)
	}
	if br, ok := coord.NodeBreaker(victim); !ok || br != fleet.BreakerTripped {
		t.Fatalf("node breaker = %v after lost sweep, want tripped", br)
	}
	v, err = coord.Sweep(progID, pump.Input, false)
	if err != nil {
		t.Fatal(err)
	}
	if v.NodesSkipped != 1 {
		t.Fatalf("tripped node not skipped: %s", v)
	}

	// Warm restart from the same directory: the recovered durable
	// picture must equal the pre-kill one exactly — same membership,
	// quarantine flags, breaker positions and sweep generation.
	restarted, err := NewNode(nodeCfg(int(victim[len(victim)-1] - '0')))
	if err != nil {
		t.Fatalf("warm restart: %v", err)
	}
	if got := restarted.MaterializedState(); !reflect.DeepEqual(preKill, got) {
		t.Fatalf("recovered state diverges from pre-kill state:\n pre:  %+v\n post: %+v", preKill, got)
	}
	if restarted.PendingDevices() == 0 {
		t.Fatal("restored devices should be pending until their program re-registers")
	}
	tn2 := &testNode{node: restarted}
	nodes[victim] = tn2
	t.Cleanup(func() { tn2.close() })
	if err := coord.Rejoin(victim, tn2.dial); err != nil {
		t.Fatal(err)
	}
	if restarted.PendingDevices() != 0 {
		t.Fatal("rejoin re-registered programs but devices still pending")
	}

	// The rejoined federation sweeps whole again; the restored node's
	// quarantine survived the crash.
	v, err = coord.Sweep(progID, pump.Input, false)
	if err != nil {
		t.Fatal(err)
	}
	if v.NodesOK != 3 || v.NodesFailed != 0 || v.NodesSkipped != 0 {
		t.Fatalf("post-rejoin sweep: %s", v)
	}
	if v.Devices != honest+2 || v.Accepted != honest {
		t.Fatalf("post-rejoin coverage: %s", v)
	}
	assertHonestClean("after rejoin")
	if st, _, err := coord.Device(atkID); err != nil || !st.Quarantined || st.LastClass != attest.ClassLoopCounter {
		t.Fatalf("quarantine lost across crash: %+v (%v)", st, err)
	}

	// A fourth node joins and takes over part of the ring; devices move
	// with their state and no honest device is misclassified by the
	// rebalance.
	tn3 := newTestNode(t, nodeCfg(3))
	t.Cleanup(func() { tn3.close() })
	rep, err := coord.Join(tn3.node.ID(), tn3.dial)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("rebalance errors: %v", rep.Errors)
	}
	if rep.Moved == 0 || rep.Transferred != rep.Moved {
		t.Fatalf("join rebalance: moved %d, transferred %d — want all moves stateful", rep.Moved, rep.Transferred)
	}
	v, err = coord.Sweep(progID, pump.Input, false)
	if err != nil {
		t.Fatal(err)
	}
	if v.NodesOK != 4 || v.Devices != honest+2 || v.Accepted != honest {
		t.Fatalf("post-join sweep: %s", v)
	}
	assertHonestClean("after rebalance")
	if st, _, err := coord.Device(atkID); err != nil || !st.Quarantined {
		t.Fatalf("quarantine lost across rebalance: %+v (%v)", st, err)
	}

	// The coordinator's flight ring narrates the whole episode:
	// joins, the breaker-tripped leave, the rejoin, and device moves.
	kinds := map[obs.EventKind]int{}
	for _, e := range hub.Flight.Events() {
		kinds[e.Kind]++
	}
	if kinds[obs.KindNodeJoin] < 5 || kinds[obs.KindNodeLeave] < 1 || kinds[obs.KindRebalance] < rep.Moved {
		t.Fatalf("flight events incomplete: %v", kinds)
	}
}

// TestFederationRejoinColdRecovers checks the wiped-directory path: a
// node that lost its data directory rejoins cold, and the coordinator
// re-enrolls its ring-assigned devices fresh from enrolment metadata.
func TestFederationRejoinColdRecovers(t *testing.T) {
	f := newFabric()
	coord, nodes := federation(t, f, Config{}, 3)

	pump := workloads.SyringePump()
	prog, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	progID, err := coord.RegisterProgram(prog, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}
	pub, addr := spawnHonestEndpoint(t, f, pump, "honest")
	ids := make([]fleet.DeviceID, 30)
	for i := range ids {
		ids[i] = fleet.DeviceID(fmt.Sprintf("dev-%03d", i))
		if err := coord.Enroll(ids[i], progID, pub, addr); err != nil {
			t.Fatal(err)
		}
	}

	// Crash node 1 (ephemeral: its registry dies with it) and bring up
	// a blank replacement under the same identity.
	victim := nodes[1]
	id := victim.node.ID()
	owned := victim.node.Service().FleetSize()
	if owned == 0 {
		t.Skip("ring assigned node-1 nothing; nothing to recover")
	}
	victim.kill()
	blank := newTestNode(t, NodeConfig{ID: id, Fleet: fleet.Config{Dial: f.dial}})
	t.Cleanup(func() { blank.close() })
	if err := coord.Rejoin(id, blank.dial); err != nil {
		t.Fatal(err)
	}
	if got := blank.node.Service().FleetSize(); got != owned {
		t.Fatalf("cold rejoin re-enrolled %d devices, want %d", got, owned)
	}
	v, err := coord.Sweep(progID, pump.Input, false)
	if err != nil {
		t.Fatal(err)
	}
	if v.NodesOK != 3 || v.Devices != len(ids) || v.Accepted != len(ids) || !v.Healthy {
		t.Fatalf("post-cold-rejoin sweep: %s", v)
	}
	var got []string
	for _, n := range v.Nodes {
		got = append(got, fmt.Sprintf("%s:%d", n.Node, n.Report.Devices))
	}
	sort.Strings(got)
	t.Logf("shards after cold rejoin: %v", got)
}
