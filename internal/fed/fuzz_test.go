package fed

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the WAL recovery path. The
// contract under fuzzing: replay either recovers a consistent prefix
// (never a half-applied record) or fails loudly with ErrCorrupt — it
// must not panic, must not loop, and must never silently succeed on a
// log whose complete records are damaged.
func FuzzWALReplay(f *testing.F) {
	var valid writer
	valid.buf = append(valid.buf, walMagic...)
	valid.u16(SnapshotVersion)
	for _, rec := range []WALRecord{
		{Kind: recUpsert, Device: testRecord(1)},
		{Kind: recQuarantine, ID: "dev-b", On: true},
		{Kind: recCacheKey, Key: "k"},
		{Kind: recSweepGen, Gen: 5},
	} {
		body := encodeRecordBody(rec)
		valid.u32(uint32(len(body)))
		valid.u32(crc32.Checksum(body, crcTable))
		valid.buf = append(valid.buf, body...)
	}
	f.Add(valid.buf)
	f.Add(valid.buf[:len(valid.buf)-3]) // torn tail
	f.Add([]byte(walMagic))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid.buf...)
	mutated[walHeaderLen+recHeaderLen+2] ^= 0xFF
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		state := NewState("n")
		prefix, records, err := replayWAL(bytes.NewReader(data), state)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("replay error not tagged ErrCorrupt: %v", err)
			}
			return
		}
		if prefix < int64(walHeaderLen) || prefix > int64(len(data)) {
			t.Fatalf("prefix %d out of range (len %d)", prefix, len(data))
		}
		// The accepted prefix must itself replay to the same state: the
		// recovery fixed point.
		state2 := NewState("n")
		prefix2, records2, err2 := replayWAL(bytes.NewReader(data[:prefix]), state2)
		if err2 != nil || prefix2 != prefix || records2 != records {
			t.Fatalf("recovered prefix is not self-consistent: %v (prefix %d vs %d)", err2, prefix2, prefix)
		}
	})
}

// FuzzSnapshotLoad feeds arbitrary bytes to the snapshot loader: it
// must reject everything that is not exactly a sealed snapshot, and
// round-trip what is.
func FuzzSnapshotLoad(f *testing.F) {
	f.Add(EncodeSnapshot(testState()))
	f.Add(EncodeSnapshot(NewState("n")))
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})
	future := EncodeSnapshot(NewState("n"))
	binary.LittleEndian.PutUint16(future[len(snapshotMagic):], SnapshotVersion+1)
	binary.LittleEndian.PutUint32(future[len(future)-4:], crc32.Checksum(future[:len(future)-4], crcTable))
	f.Add(future)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// Anything accepted must re-encode to the identical image: the
		// checksum plus canonical encoding leave no room for two
		// interpretations of one file.
		if !bytes.Equal(EncodeSnapshot(s), data) {
			t.Fatalf("accepted snapshot is not canonical")
		}
	})
}

// FuzzStoreOpen drives the full OpenStore path with a fuzzed WAL file
// on disk — the integration of header validation, replay, torn-tail
// truncation and append repositioning.
func FuzzStoreOpen(f *testing.F) {
	var valid writer
	valid.buf = append(valid.buf, walMagic...)
	valid.u16(SnapshotVersion)
	body := encodeRecordBody(WALRecord{Kind: recSweepGen, Gen: 3})
	valid.u32(uint32(len(body)))
	valid.u32(crc32.Checksum(body, crcTable))
	valid.buf = append(valid.buf, body...)
	f.Add(valid.buf)
	f.Add(valid.buf[:len(valid.buf)-2])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000000.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, _, err := OpenStore(dir, "n")
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open error not tagged ErrCorrupt: %v", err)
			}
			return
		}
		// A store that opened must accept appends and reopen cleanly.
		if err := st.Append(WALRecord{Kind: recSweepGen, Gen: 9}); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		if _, state, err := OpenStore(dir, "n"); err != nil {
			t.Fatalf("reopen after append: %v", err)
		} else if state.SweepGen != 9 {
			t.Fatalf("appended record lost: gen %d", state.SweepGen)
		}
	})
}
