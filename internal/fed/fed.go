// Package fed federates the fleet attestation service across multiple
// verifier nodes. It is the scale-out layer above internal/fleet:
//
//   - a consistent-hash ring (virtual nodes, configurable replicas)
//     assigns each enrolled device to one verifier node, and keeps
//     reassignment deterministic and minimal when nodes join or leave;
//   - a persistence layer — schema-versioned snapshot files plus an
//     append-only, checksummed WAL — makes each node's registry
//     membership, quarantine flags, breaker lifecycle and measurement-
//     cache keys durable, so a killed node restarts warm: the latest
//     valid snapshot is loaded and the WAL replayed onto it, tolerating
//     a torn tail (a record cut short by the crash) but refusing
//     corruption loudly;
//   - a coordinator fans sweeps out to member nodes over the existing
//     attest frame transport — reusing its per-phase deadlines, bounded
//     retries and per-node circuit breakers — and merges the per-node
//     SweepReports, metrics snapshots and flight-recorder events into
//     one fleet-wide verdict with per-node attribution.
//
// The division of labour: internal/fleet still owns devices (registry
// shards, worker pools, quarantine, per-device breakers); fed owns
// nodes (placement, durability, fan-out, per-node breakers) and treats
// each node's fleet.Service as a black box behind the frame protocol.
package fed

// NodeID names one verifier node in the federation.
type NodeID string
