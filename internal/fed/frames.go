package fed

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"lofat/internal/asm"
	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/fleet"
)

// Coordinator↔node control-plane messages ride the attest frame
// transport (type-tagged, length-prefixed, 16 MiB cap) on type bytes
// 32-47 — the range transport.go reserves for this package; attest owns
// 1-15 and internal/stream 16-19, so one listener can multiplex all
// three protocols. Payloads are gob: this is the low-rate control
// plane between trusted verifier nodes, not the per-device data plane,
// so self-describing encoding beats hand-rolled canonical bytes — the
// data plane (challenges, reports, WAL, snapshots) stays canonical.
const (
	// Requests.
	msgRegister byte = 32 // registerReq  → msgOK
	msgEnroll   byte = 33 // enrollReq    → msgOK
	msgSweep    byte = 34 // sweepReq     → msgReport
	msgTransfer byte = 35 // deviceReq    → msgState (extract + forget)
	msgRelease  byte = 36 // deviceReq    → msgState
	msgGet      byte = 37 // deviceReq    → msgState
	msgSync     byte = 38 // syncReq      → msgOK (anti-entropy upsert)
	msgFetch    byte = 39 // fetchReq     → msgRecords (bulk state read)
	// Responses.
	msgRecords byte = 43 // recordsResp
	msgOK      byte = 44 // okResp
	msgReport  byte = 45 // NodeReport
	msgState   byte = 46 // stateResp
	msgErr     byte = 47 // error string (plain bytes, not gob)
)

type registerReq struct {
	Prog   *asm.Program
	DevCfg core.Config
	Inputs [][]uint32
}

type enrollReq struct {
	// State carries fresh enrolments (zero counters) and federation
	// hand-offs (mid-history restores) alike; the node restores whatever
	// is in it via fleet.Service.EnrollState.
	State fleet.DeviceState
}

type sweepReq struct {
	Program  attest.ProgramID
	Input    []uint32
	Streamed bool
	// Explicit selects placement-directed sweeps: the node challenges
	// exactly the Devices listed (the coordinator's acting set for this
	// node this generation) instead of every member it holds. Standby
	// replicas therefore keep warm state without double-challenging the
	// prover. Explicit is a separate flag because gob cannot tell an
	// empty Devices list from an absent one.
	Explicit bool
	Devices  []fleet.DeviceID
	// WantDelta asks the node to return the device records its sweep
	// changed, feeding the coordinator's anti-entropy pass. Off for
	// unreplicated federations to keep reports small.
	WantDelta bool
}

type deviceReq struct {
	Device fleet.DeviceID
}

// syncReq pushes authoritative device records onto a replica — the
// anti-entropy write half. The node upserts each record: overwrite the
// policy fields of a device it holds, enrol from the record otherwise.
type syncReq struct {
	Records []DeviceRecord
}

// fetchReq reads a batch of device records — the anti-entropy read
// half, used by Rejoin to pull authoritative state from live replicas.
// Unknown devices are silently absent from the response.
type fetchReq struct {
	Devices []fleet.DeviceID
}

type recordsResp struct {
	Records []DeviceRecord
}

type okResp struct {
	Node    NodeID
	Program attest.ProgramID // msgRegister: the registered program's ID
}

type stateResp struct {
	Found bool
	State fleet.DeviceState
}

// NodeError is a node-side failure relayed over the control plane — the
// remote executed the request and refused it. It is not a transport
// error: retrying the same request buys nothing and the node breaker
// must not count it as the node being unreachable.
type NodeError struct {
	Node NodeID
	Msg  string
}

func (e *NodeError) Error() string { return fmt.Sprintf("fed: node %s: %s", e.Node, e.Msg) }

func encodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("fed: encode payload: %w", err)
	}
	return buf.Bytes(), nil
}

func decodePayload(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("fed: decode payload: %w", err)
	}
	return nil
}

// exchange runs one request/response round trip on conn with per-phase
// deadlines. The error is a *attest.TransportError when the bytes could
// not be moved (retryable, breaker evidence), a *NodeError when the
// node answered with a refusal, and plain otherwise.
func exchange(conn io.ReadWriter, to attest.Timeouts, node NodeID, reqTyp byte, req any, respTyp byte, resp any) error {
	payload, err := encodePayload(req)
	if err != nil {
		return err
	}
	to.ArmWrite(conn)
	if err := attest.WriteFrame(conn, reqTyp, payload); err != nil {
		to.Disarm(conn)
		return err
	}
	to.ArmRead(conn)
	typ, body, err := attest.ReadFrame(conn)
	to.Disarm(conn)
	if err != nil {
		return err
	}
	switch typ {
	case respTyp:
		return decodePayload(body, resp)
	case msgErr:
		return &NodeError{Node: node, Msg: string(body)}
	default:
		return fmt.Errorf("fed: node %s: expected frame type %d, got %d", node, respTyp, typ)
	}
}

// writeErr answers a request with a refusal frame.
func writeErr(conn io.ReadWriter, err error) error {
	return attest.WriteFrame(conn, msgErr, []byte(err.Error()))
}

// writeResp answers a request with a gob-encoded response frame.
func writeResp(conn io.ReadWriter, typ byte, v any) error {
	payload, err := encodePayload(v)
	if err != nil {
		return err
	}
	return attest.WriteFrame(conn, typ, payload)
}
