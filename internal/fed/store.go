package fed

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"lofat/internal/fed/faultfs"
)

// Store is a node's durability layer: a directory holding generations
// of snapshot files plus the append-only WAL written since the latest
// snapshot.
//
//	snap-00000003.lfed   snapshot generation 3 (schema-versioned, CRC'd)
//	wal-00000003.log     records appended since snapshot 3
//
// OpenStore loads the newest valid snapshot and replays its paired WAL
// on top, yielding the warm-restart state. Crash-recovery contract:
//
//   - a torn tail — the final WAL record cut short mid-append by the
//     crash — is expected damage: replay stops at the last complete,
//     checksummed record and the file is truncated to that consistent
//     prefix before appends resume;
//   - a checksum mismatch on a *complete* record, a bad header, or an
//     unknown schema version is NOT expected damage: it means the log
//     no longer says what was written, and the store refuses to open
//     rather than silently dropping quarantine or breaker state.
//
// Compact writes a new snapshot generation (write-to-temp, fsync,
// rename) and starts a fresh WAL; the previous generation is kept as a
// fallback and older ones removed.
type Store struct {
	fs      faultfs.FS
	dir     string
	wal     faultfs.File
	walLen  int64  // bytes of durable, validated WAL content
	gen     uint64 // current snapshot/WAL generation
	records int    // records appended to the current WAL
	closed  bool
}

// ErrCorrupt tags unrecoverable persistence damage (distinct from the
// torn tail, which recovery handles silently). errors.Is(err,
// ErrCorrupt) holds for every such failure out of OpenStore.
var ErrCorrupt = errors.New("fed: persistent state corrupt")

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.lfed", gen))
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", gen))
}

// walHeaderLen is magic + u16 version.
const walHeaderLen = len(walMagic) + 2

// recHeaderLen is u32 len + u32 crc.
const recHeaderLen = 8

// OpenStore opens (creating if needed) the store in dir and returns it
// together with the recovered state: the newest valid snapshot with its
// WAL replayed on top, or an empty state for a fresh directory. node
// names the owner; opening a directory persisted by a different node ID
// fails loudly (two nodes sharing a directory is operator error).
func OpenStore(dir string, node NodeID) (*Store, *State, error) {
	return OpenStoreFS(faultfs.OS{}, dir, node)
}

// OpenStoreFS is OpenStore against an explicit filesystem — the real
// one in production, a faultfs.Injector under chaos tests.
func OpenStoreFS(fsys faultfs.FS, dir string, node NodeID) (*Store, *State, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("fed: store: %w", err)
	}
	gens, err := snapshotGenerations(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	// A crash between CreateTemp and the rename in Compact leaves a
	// stale snap-*.tmp: never-published garbage. Sweep it now so the
	// directory only ever holds files the recovery contract covers.
	if ents, err := fsys.ReadDir(dir); err == nil {
		for _, e := range ents {
			name := e.Name()
			if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".tmp") {
				fsys.Remove(filepath.Join(dir, name))
			}
		}
	}
	state := NewState(node)
	st := &Store{fs: fsys, dir: dir}
	// Newest snapshot first; an unreadable snapshot file is corruption,
	// not an invitation to fall back silently.
	if len(gens) > 0 {
		st.gen = gens[len(gens)-1]
		img, err := fsys.ReadFile(snapPath(dir, st.gen))
		if err != nil {
			return nil, nil, fmt.Errorf("%w: read snapshot %d: %v", ErrCorrupt, st.gen, err)
		}
		state, err = DecodeSnapshot(img)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: snapshot %d: %v", ErrCorrupt, st.gen, err)
		}
		if state.Node != node {
			return nil, nil, fmt.Errorf("%w: snapshot %d belongs to node %q, not %q", ErrCorrupt, st.gen, state.Node, node)
		}
	}
	if err := st.openWAL(state); err != nil {
		return nil, nil, err
	}
	return st, state, nil
}

// openWAL opens (creating if absent) the current generation's WAL,
// replays it onto state, truncates a torn tail, and leaves the file
// positioned for appends.
func (s *Store) openWAL(state *State) error {
	path := walPath(s.dir, s.gen)
	f, err := s.fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("fed: store: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("fed: store: %w", err)
	}
	if info.Size() < int64(walHeaderLen) {
		// Fresh WAL — or the header write itself torn by a crash. A
		// strict prefix of the expected header is a crash artifact, so
		// rewind and stamp a fresh one; any other bytes are damage.
		var w writer
		w.buf = append(w.buf, walMagic...)
		w.u16(SnapshotVersion)
		if info.Size() > 0 {
			got := make([]byte, info.Size())
			if _, err := io.ReadFull(f, got); err != nil {
				f.Close()
				return fmt.Errorf("fed: store: %w", err)
			}
			if !bytes.Equal(got, w.buf[:len(got)]) {
				f.Close()
				return fmt.Errorf("%w: wal: %d-byte file is not a header prefix", ErrCorrupt, info.Size())
			}
			if err := f.Truncate(0); err != nil {
				f.Close()
				return fmt.Errorf("fed: store: %w", err)
			}
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				f.Close()
				return fmt.Errorf("fed: store: %w", err)
			}
		}
		if _, err := f.Write(w.buf); err != nil {
			f.Close()
			return fmt.Errorf("fed: store: write wal header: %w", err)
		}
		s.wal, s.walLen = f, int64(walHeaderLen)
		return nil
	}
	n, records, err := replayWAL(f, state)
	if err != nil {
		f.Close()
		return err
	}
	if n < info.Size() {
		// Torn tail: cut the file back to the validated prefix so the
		// next append does not graft onto garbage.
		if err := f.Truncate(n); err != nil {
			f.Close()
			return fmt.Errorf("fed: store: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(n, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("fed: store: %w", err)
	}
	s.wal, s.walLen, s.records = f, n, records
	return nil
}

// replayWAL applies every complete, checksummed record to state and
// returns the byte length of the consistent prefix. A record cut short
// by EOF is the torn tail and ends replay silently; a complete record
// whose checksum or encoding is wrong is corruption and fails.
func replayWAL(r io.Reader, state *State) (prefix int64, records int, err error) {
	hdr := make([]byte, walHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, fmt.Errorf("%w: wal header: %v", ErrCorrupt, err)
	}
	if string(hdr[:len(walMagic)]) != walMagic {
		return 0, 0, fmt.Errorf("%w: wal: bad magic %q", ErrCorrupt, hdr[:len(walMagic)])
	}
	if v := binary.LittleEndian.Uint16(hdr[len(walMagic):]); v != SnapshotVersion {
		return 0, 0, fmt.Errorf("%w: wal: version %d, this build speaks only %d", ErrCorrupt, v, SnapshotVersion)
	}
	prefix = int64(walHeaderLen)
	rec := make([]byte, recHeaderLen)
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return prefix, records, nil // torn (or clean) tail
			}
			return 0, 0, fmt.Errorf("%w: wal read: %v", ErrCorrupt, err)
		}
		n := binary.LittleEndian.Uint32(rec[:4])
		sum := binary.LittleEndian.Uint32(rec[4:])
		if n > walMaxRecord {
			return 0, 0, fmt.Errorf("%w: wal: absurd record length %d", ErrCorrupt, n)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return prefix, records, nil // torn tail mid-body
			}
			return 0, 0, fmt.Errorf("%w: wal read: %v", ErrCorrupt, err)
		}
		if got := crc32.Checksum(body, crcTable); got != sum {
			// The full record is present but its bytes are not what was
			// written: that is disk damage, not a crash artifact.
			return 0, 0, fmt.Errorf("%w: wal record at offset %d: checksum mismatch (stored %08x, computed %08x)",
				ErrCorrupt, prefix, sum, got)
		}
		decoded, err := decodeRecordBody(body)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: wal record at offset %d: %v", ErrCorrupt, prefix, err)
		}
		state.Apply(decoded)
		prefix += int64(recHeaderLen) + int64(n)
		records++
	}
}

// walMaxRecord bounds one WAL record; device records are well under a
// kilobyte, so anything near this is damage, not data.
const walMaxRecord = 1 << 20

// Append durably logs one record.
func (s *Store) Append(rec WALRecord) error {
	if s.closed {
		return fmt.Errorf("fed: store: closed")
	}
	body := encodeRecordBody(rec)
	var w writer
	w.u32(uint32(len(body)))
	w.u32(crc32.Checksum(body, crcTable))
	w.buf = append(w.buf, body...)
	if _, err := s.wal.Write(w.buf); err != nil {
		// Claw back whatever partial bytes the failed write left, so a
		// later successful append never grafts a valid record onto a
		// torn middle — replay would stop at the tear and silently drop
		// it. If the truncate fails too the disk is gone; the node's
		// lame-duck path stops further appends.
		if s.wal.Truncate(s.walLen) == nil {
			s.wal.Seek(s.walLen, io.SeekStart)
		}
		return fmt.Errorf("fed: store: wal append: %w", err)
	}
	s.walLen += int64(len(w.buf))
	s.records++
	return nil
}

// Sync flushes appended records to stable storage.
func (s *Store) Sync() error {
	if s.closed {
		return nil
	}
	return s.wal.Sync()
}

// Records reports how many records the current WAL holds — the
// compaction trigger.
func (s *Store) Records() int { return s.records }

// Generation reports the current snapshot/WAL generation.
func (s *Store) Generation() uint64 { return s.gen }

// Compact writes state as the next snapshot generation and starts its
// empty WAL. The snapshot lands via temp-file + fsync + rename, so a
// crash mid-compaction leaves the previous generation intact and
// loadable. Snapshots older than the previous generation are removed.
func (s *Store) Compact(state *State) error {
	if s.closed {
		return fmt.Errorf("fed: store: closed")
	}
	next := s.gen + 1
	img := EncodeSnapshot(state)
	tmp, err := s.fs.CreateTemp(s.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("fed: store: %w", err)
	}
	if _, err := tmp.Write(img); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		s.fs.Remove(tmp.Name())
		return fmt.Errorf("fed: store: write snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		s.fs.Remove(tmp.Name())
		return fmt.Errorf("fed: store: %w", err)
	}
	if err := s.fs.Rename(tmp.Name(), snapPath(s.dir, next)); err != nil {
		s.fs.Remove(tmp.Name())
		return fmt.Errorf("fed: store: %w", err)
	}
	// The rename published the snapshot's name, but only in the
	// directory's in-memory state: a crash before the directory itself
	// reaches disk can roll the rename back, orphaning the generation.
	// Fsync the directory before trusting it.
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("fed: store: sync dir after snapshot rename: %w", err)
	}
	// The new generation is durable; swap the WAL.
	old := s.wal
	s.gen, s.records, s.wal, s.walLen = next, 0, nil, 0
	if err := s.openWAL(NewState(state.Node)); err != nil {
		return err
	}
	old.Sync()
	old.Close()
	// Retire obsolete generations (keep current and previous).
	if gens, err := snapshotGenerations(s.fs, s.dir); err == nil {
		for _, g := range gens {
			if g+1 < next {
				s.fs.Remove(snapPath(s.dir, g))
				s.fs.Remove(walPath(s.dir, g))
			}
		}
	}
	return nil
}

// Close syncs and closes the WAL. The store is unusable afterwards.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return err
	}
	return s.wal.Close()
}

// Abandon closes the WAL file handle without syncing — the kill
// switch for chaos tests: whatever the OS already has is what a real
// crash would have left.
func (s *Store) Abandon() {
	if s.closed {
		return
	}
	s.closed = true
	s.wal.Close()
}

// snapshotGenerations lists the snapshot generations present in dir,
// ascending.
func snapshotGenerations(fsys faultfs.FS, dir string) ([]uint64, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fed: store: %w", err)
	}
	var gens []uint64
	for _, e := range ents {
		var g uint64
		if _, err := fmt.Sscanf(e.Name(), "snap-%d.lfed", &g); err == nil {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}
