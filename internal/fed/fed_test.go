package fed

import (
	"crypto/rand"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/fleet"
	"lofat/internal/sig"
	"lofat/internal/workloads"
)

// fabric is an in-memory device network, the same idiom the fleet tests
// use: each address maps to a prover-side attest.Registry, and dialing
// spawns a ServeConn goroutine on the server end of a synchronous pipe.
type fabric struct {
	mu   sync.Mutex
	regs map[string]*attest.Registry
}

func newFabric() *fabric { return &fabric{regs: make(map[string]*attest.Registry)} }

func (f *fabric) install(addr string, reg *attest.Registry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.regs[addr] = reg
}

func (f *fabric) dial(addr string) (io.ReadWriteCloser, error) {
	f.mu.Lock()
	reg, ok := f.regs[addr]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fabric: no device at %q", addr)
	}
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		_ = reg.ServeConn(server)
	}()
	return client, nil
}

// testNode wraps a verifier node with the connection bookkeeping a kill
// needs: a real crash severs the node's TCP connections, so the test
// kill must close every pipe the coordinator holds open — otherwise the
// coordinator's next exchange would see a polite node-side error
// instead of the transport failure a dead process produces.
type testNode struct {
	node *Node

	mu    sync.Mutex
	conns []net.Conn
	down  bool
}

func newTestNode(t testing.TB, cfg NodeConfig) *testNode {
	t.Helper()
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatalf("node %s: %v", cfg.ID, err)
	}
	return &testNode{node: n}
}

// dial is the coordinator-facing DialFunc for this node.
func (tn *testNode) dial() (io.ReadWriteCloser, error) {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	if tn.down {
		return nil, fmt.Errorf("node %s is down", tn.node.ID())
	}
	client, server := net.Pipe()
	tn.conns = append(tn.conns, server)
	go func() {
		defer server.Close()
		_ = tn.node.ServeConn(server)
	}()
	return client, nil
}

// kill crashes the node: every open control-plane connection is severed
// and the WAL handle dropped without a final sync.
func (tn *testNode) kill() {
	tn.mu.Lock()
	tn.down = true
	conns := tn.conns
	tn.conns = nil
	tn.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	tn.node.Kill()
}

// close shuts the node down cleanly.
func (tn *testNode) close() error {
	tn.mu.Lock()
	tn.down = true
	conns := tn.conns
	tn.conns = nil
	tn.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return tn.node.Close()
}

// spawnAttacked provisions one adversarial prover on the fabric. Each
// attacked device needs its own prover: adversary closures are one-shot
// and not safe for the concurrent rounds a shared endpoint would see.
func spawnAttacked(t testing.TB, f *fabric, w workloads.Workload, attack string, i int) (fleet.DeviceID, []byte, string) {
	t.Helper()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	atk, ok := workloads.AttackByName(attack)
	if !ok {
		t.Fatalf("unknown attack %q", attack)
	}
	keys, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p := attest.NewProver(prog, core.Config{}, keys)
	p.Adversary = atk.Build(prog)
	reg := attest.NewRegistry()
	reg.Register(p)
	addr := fmt.Sprintf("mem://%s/%d", attack, i)
	f.install(addr, reg)
	return fleet.DeviceID(fmt.Sprintf("atk-%s-%04d", attack, i)), keys.Public(), addr
}

// spawnHonestEndpoint provisions one honest prover endpoint that any
// number of enrolled device IDs can share — a nil-adversary prover is
// safe under concurrent rounds, so the fleet's honest majority does not
// need a hundred thousand goroutine-backed registries.
func spawnHonestEndpoint(t testing.TB, f *fabric, w workloads.Workload, name string) ([]byte, string) {
	t.Helper()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p := attest.NewProver(prog, core.Config{}, keys)
	reg := attest.NewRegistry()
	reg.Register(p)
	addr := "mem://" + name
	f.install(addr, reg)
	return keys.Public(), addr
}

// federation spins up count ephemeral nodes joined to one coordinator.
func federation(t testing.TB, f *fabric, cfg Config, count int) (*Coordinator, []*testNode) {
	t.Helper()
	coord := NewCoordinator(cfg)
	nodes := make([]*testNode, count)
	for i := range nodes {
		tn := newTestNode(t, NodeConfig{
			ID:    NodeID(fmt.Sprintf("node-%d", i)),
			Fleet: fleet.Config{Dial: f.dial},
		})
		nodes[i] = tn
		if _, err := coord.Join(tn.node.ID(), tn.dial); err != nil {
			t.Fatalf("join %s: %v", tn.node.ID(), err)
		}
	}
	t.Cleanup(func() {
		coord.Close()
		for _, tn := range nodes {
			tn.close()
		}
	})
	return coord, nodes
}

// TestFederatedSweepScale drives the headline scale-out scenario: a
// large simulated fleet (100k+ devices without -race; see the scale_*
// build-tag files) sharded by the ring over three verifier nodes, swept
// once from the coordinator, with a seeded minority of loop-counter
// attackers. The merged verdict must classify every device correctly
// and attribute each quarantine to the owning node.
func TestFederatedSweepScale(t *testing.T) {
	honest, attacked := scaleHonestDevices, scaleAttackedDevices
	if testing.Short() {
		honest, attacked = 2000, 20
	}

	f := newFabric()
	coord, _ := federation(t, f, Config{}, 3)

	pump := workloads.SyringePump()
	prog, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	progID, err := coord.RegisterProgram(prog, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}

	honestPub, honestAddr := spawnHonestEndpoint(t, f, pump, "honest")
	honestIDs := make([]fleet.DeviceID, honest)
	for i := range honestIDs {
		honestIDs[i] = fleet.DeviceID(fmt.Sprintf("dev-%06d", i))
		if err := coord.Enroll(honestIDs[i], progID, honestPub, honestAddr); err != nil {
			t.Fatal(err)
		}
	}
	attackedIDs := make([]fleet.DeviceID, attacked)
	for i := range attackedIDs {
		id, pub, addr := spawnAttacked(t, f, pump, "loop-counter", i)
		attackedIDs[i] = id
		if err := coord.Enroll(id, progID, pub, addr); err != nil {
			t.Fatal(err)
		}
	}
	total := honest + attacked
	if got := coord.FleetSize(); got != total {
		t.Fatalf("coordinator enrolment = %d, want %d", got, total)
	}

	v, err := coord.Sweep(progID, pump.Input, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("federated sweep: %s", v)

	if v.NodesOK != 3 || v.NodesFailed != 0 || v.NodesSkipped != 0 {
		t.Fatalf("node outcome: ok=%d failed=%d skipped=%d", v.NodesOK, v.NodesFailed, v.NodesSkipped)
	}
	if v.Devices != total {
		t.Fatalf("verdict covers %d devices, want %d", v.Devices, total)
	}
	if v.Accepted != honest || v.Rejected != attacked || v.Errors != 0 || v.Skipped != 0 {
		t.Fatalf("verdict totals: accepted=%d rejected=%d errors=%d skipped=%d, want %d/%d/0/0",
			v.Accepted, v.Rejected, v.Errors, v.Skipped, honest, attacked)
	}
	if v.ByClass[attest.ClassAccepted] != honest || v.ByClass[attest.ClassLoopCounter] != attacked {
		t.Fatalf("classification: %v", v.ByClass)
	}
	if v.Healthy {
		t.Fatal("verdict healthy despite rejected devices")
	}
	if v.Throughput <= 0 {
		t.Fatalf("throughput %f", v.Throughput)
	}

	// Every node must own a non-trivial shard — the ring is doing the
	// scale-out, not one node carrying the fleet.
	quarantined := 0
	for _, n := range v.Nodes {
		if n.Report.Devices == 0 {
			t.Fatalf("node %s swept no devices — ring assigned it nothing", n.Node)
		}
		quarantined += len(v.NewlyQuarantined[n.Node])
	}
	if quarantined != attacked {
		t.Fatalf("%d devices newly quarantined, want %d", quarantined, attacked)
	}

	// Spot-check classification through the coordinator's query path.
	for _, id := range honestIDs[:5] {
		st, node, err := coord.Device(id)
		if err != nil {
			t.Fatalf("device %s: %v", id, err)
		}
		if st.Quarantined || st.LastClass != attest.ClassAccepted {
			t.Fatalf("honest device %s on %s misclassified: %+v", id, node, st)
		}
	}
	for _, id := range attackedIDs[:min(5, attacked)] {
		st, _, err := coord.Device(id)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Quarantined || st.LastClass != attest.ClassLoopCounter {
			t.Fatalf("attacked device %s not quarantined: %+v", id, st)
		}
	}

	// Second sweep: quarantined attackers sit out, the honest fleet
	// re-attests clean.
	v2, err := coord.Sweep(progID, pump.Input, false)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Accepted != honest || v2.Rejected != 0 || v2.Skipped != attacked {
		t.Fatalf("second sweep: accepted=%d rejected=%d skipped=%d", v2.Accepted, v2.Rejected, v2.Skipped)
	}
}

// TestFederationLeaveRebalance checks the planned-departure path: a
// leaving node's devices move to the survivors with their state, and a
// quarantined device stays quarantined after the move.
func TestFederationLeaveRebalance(t *testing.T) {
	f := newFabric()
	coord, nodes := federation(t, f, Config{}, 3)

	pump := workloads.SyringePump()
	prog, err := pump.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	progID, err := coord.RegisterProgram(prog, core.Config{}, [][]uint32{pump.Input})
	if err != nil {
		t.Fatal(err)
	}
	pub, addr := spawnHonestEndpoint(t, f, pump, "honest")
	const devices = 60
	for i := 0; i < devices; i++ {
		if err := coord.Enroll(fleet.DeviceID(fmt.Sprintf("dev-%03d", i)), progID, pub, addr); err != nil {
			t.Fatal(err)
		}
	}
	atkID, atkPub, atkAddr := spawnAttacked(t, f, pump, "loop-counter", 0)
	if err := coord.Enroll(atkID, progID, atkPub, atkAddr); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Sweep(progID, pump.Input, false); err != nil {
		t.Fatal(err)
	}
	st, owner, err := coord.Device(atkID)
	if err != nil || !st.Quarantined {
		t.Fatalf("attacked device not quarantined before leave: %+v (%v)", st, err)
	}

	// Leave whichever node owns the quarantined device so its record
	// must actually move.
	var leaving *testNode
	for _, tn := range nodes {
		if tn.node.ID() == owner {
			leaving = tn
		}
	}
	ownedBefore := leaving.node.Service().FleetSize()
	rep, err := coord.Leave(owner)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("rebalance errors: %v", rep.Errors)
	}
	if rep.Moved != ownedBefore || rep.Transferred != ownedBefore {
		t.Fatalf("moved %d (transferred %d) of the %d devices the leaving node owned",
			rep.Moved, rep.Transferred, ownedBefore)
	}

	// The quarantine must have moved with the device, and a sweep over
	// the shrunken federation still covers the whole fleet.
	st, newOwner, err := coord.Device(atkID)
	if err != nil {
		t.Fatal(err)
	}
	if newOwner == owner || !st.Quarantined || st.LastClass != attest.ClassLoopCounter {
		t.Fatalf("quarantine lost in transfer: owner %s → %s, state %+v", owner, newOwner, st)
	}
	v, err := coord.Sweep(progID, pump.Input, false)
	if err != nil {
		t.Fatal(err)
	}
	if v.NodesOK != 2 || v.Devices != devices+1 || v.Accepted != devices || v.Skipped != 1 {
		t.Fatalf("post-leave sweep: %s", v)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
