package fed

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lofat/internal/attest"
	"lofat/internal/fleet"
)

func testRecord(i int) DeviceRecord {
	rec := DeviceRecord{
		ID:                 fleet.DeviceID("dev-" + string(rune('a'+i%26))),
		Addr:               "mem://host/x",
		Quarantined:        i%2 == 0,
		ConsecutiveRejects: uint32(i),
		Rounds:             uint64(i * 7),
		Accepted:           uint64(i * 5),
		Rejected:           uint64(i * 2),
		TransportErrors:    uint64(i),
		LastClass:          attest.ClassLoopCounter,
		Breaker:            fleet.BreakerDegraded,
		TransportFails:     uint32(i % 3),
		BreakerGen:         uint64(i * 11),
	}
	for j := range rec.Program {
		rec.Program[j] = byte(i + j)
	}
	for j := range rec.Pub {
		rec.Pub[j] = byte(i ^ j)
	}
	return rec
}

func TestWALRecordRoundTrip(t *testing.T) {
	recs := []WALRecord{
		{Kind: recUpsert, Device: testRecord(3)},
		{Kind: recForget, ID: "dev-b"},
		{Kind: recQuarantine, ID: "dev-c", On: true},
		{Kind: recQuarantine, ID: "dev-c", On: false},
		{Kind: recCacheKey, Key: "aa|{...}|bb"},
		{Kind: recSweepGen, Gen: 42},
	}
	for _, rec := range recs {
		body := encodeRecordBody(rec)
		got, err := decodeRecordBody(body)
		if err != nil {
			t.Fatalf("kind %d: %v", rec.Kind, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("kind %d round trip:\n got %+v\nwant %+v", rec.Kind, got, rec)
		}
	}
}

func TestWALRecordDecodeRejectsDamage(t *testing.T) {
	body := encodeRecordBody(WALRecord{Kind: recUpsert, Device: testRecord(1)})
	if _, err := decodeRecordBody(body[:len(body)-3]); err == nil {
		t.Fatal("truncated record body decoded silently")
	}
	if _, err := decodeRecordBody(append(body, 0)); err == nil {
		t.Fatal("trailing bytes decoded silently")
	}
	if _, err := decodeRecordBody([]byte{99}); err == nil {
		t.Fatal("unknown record kind decoded silently")
	}
}

func testState() *State {
	s := NewState("node-1")
	s.SweepGen = 9
	for i := 0; i < 5; i++ {
		d := testRecord(i)
		s.Devices[d.ID] = d
	}
	s.CacheKeys["k1"] = struct{}{}
	s.CacheKeys["k2"] = struct{}{}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := testState()
	img := EncodeSnapshot(s)
	got, err := DecodeSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, s)
	}
	// Canonical: identical state → identical bytes.
	if !bytes.Equal(img, EncodeSnapshot(s.Clone())) {
		t.Fatal("snapshot encoding is not deterministic")
	}
}

func TestSnapshotRejectsDamage(t *testing.T) {
	img := EncodeSnapshot(testState())

	flipped := append([]byte(nil), img...)
	flipped[len(flipped)/2] ^= 0xFF
	if _, err := DecodeSnapshot(flipped); err == nil {
		t.Fatal("bit-flipped snapshot loaded silently")
	}

	if _, err := DecodeSnapshot(img[:len(img)-5]); err == nil {
		t.Fatal("truncated snapshot loaded silently")
	}

	badMagic := append([]byte(nil), img...)
	badMagic[0] = 'X'
	if _, err := DecodeSnapshot(badMagic); err == nil {
		t.Fatal("bad-magic snapshot loaded silently")
	}

	// Mixed-version: bump the version field and re-seal the checksum so
	// only the version check can refuse it.
	future := append([]byte(nil), img...)
	binary.LittleEndian.PutUint16(future[len(snapshotMagic):], SnapshotVersion+1)
	binary.LittleEndian.PutUint32(future[len(future)-4:], crc32.Checksum(future[:len(future)-4], crcTable))
	if _, err := DecodeSnapshot(future); err == nil {
		t.Fatal("future-version snapshot loaded silently")
	}
}

func TestStateApplyQuarantineRelease(t *testing.T) {
	s := NewState("n")
	d := testRecord(2)
	d.Quarantined = true
	d.ConsecutiveRejects = 3
	d.Breaker = fleet.BreakerTripped
	d.TransportFails = 4
	s.Apply(WALRecord{Kind: recUpsert, Device: d})
	s.Apply(WALRecord{Kind: recQuarantine, ID: d.ID, On: false})
	got := s.Devices[d.ID]
	if got.Quarantined || got.ConsecutiveRejects != 0 || got.TransportFails != 0 || got.Breaker != fleet.BreakerHealthy {
		t.Fatalf("release did not clear streaks/breaker: %+v", got)
	}
	s.Apply(WALRecord{Kind: recForget, ID: d.ID})
	if _, ok := s.Devices[d.ID]; ok {
		t.Fatal("forget did not remove the device")
	}
}

// --- store-level recovery ---

func writeStoreWAL(t *testing.T, dir string, recs ...WALRecord) string {
	t.Helper()
	st, _, err := OpenStore(dir, "n")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return walPath(dir, 0)
}

func TestStoreReplayAndCompact(t *testing.T) {
	dir := t.TempDir()
	st, state, err := OpenStore(dir, "n")
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Devices) != 0 {
		t.Fatal("fresh store not empty")
	}
	d := testRecord(1)
	for _, rec := range []WALRecord{
		{Kind: recUpsert, Device: d},
		{Kind: recCacheKey, Key: "k"},
		{Kind: recSweepGen, Gen: 3},
	} {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, recovered, err := OpenStore(dir, "n")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recovered.Devices[d.ID], d) || recovered.SweepGen != 3 {
		t.Fatalf("replayed state wrong: %+v", recovered)
	}
	if _, ok := recovered.CacheKeys["k"]; !ok {
		t.Fatal("cache key lost in replay")
	}

	// Compact, append more, reopen: snapshot + fresh WAL must compose.
	if err := st2.Compact(recovered); err != nil {
		t.Fatal(err)
	}
	if st2.Generation() != 1 || st2.Records() != 0 {
		t.Fatalf("compaction bookkeeping: gen=%d records=%d", st2.Generation(), st2.Records())
	}
	d2 := testRecord(2)
	if err := st2.Append(WALRecord{Kind: recUpsert, Device: d2}); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recovered2, err := OpenStore(dir, "n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered2.Devices) != 2 || !reflect.DeepEqual(recovered2.Devices[d2.ID], d2) {
		t.Fatalf("post-compaction recovery wrong: %+v", recovered2)
	}
}

func TestStoreTornTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	d := testRecord(1)
	path := writeStoreWAL(t, dir,
		WALRecord{Kind: recUpsert, Device: d},
		WALRecord{Kind: recSweepGen, Gen: 7})

	// Sever the final record mid-body — the crash artifact.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, img[:len(img)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	st, state, err := OpenStore(dir, "n")
	if err != nil {
		t.Fatalf("torn tail must recover, got %v", err)
	}
	if !reflect.DeepEqual(state.Devices[d.ID], d) {
		t.Fatal("consistent prefix lost")
	}
	if state.SweepGen != 0 {
		t.Fatal("torn record must not half-apply")
	}
	// The tail must be truncated so new appends produce a valid log.
	if err := st.Append(WALRecord{Kind: recSweepGen, Gen: 9}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, state2, err := OpenStore(dir, "n")
	if err != nil {
		t.Fatal(err)
	}
	if state2.SweepGen != 9 || !reflect.DeepEqual(state2.Devices[d.ID], d) {
		t.Fatalf("post-truncation append lost: %+v", state2)
	}
}

func TestStoreCorruptRecordFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	path := writeStoreWAL(t, dir,
		WALRecord{Kind: recUpsert, Device: testRecord(1)},
		WALRecord{Kind: recSweepGen, Gen: 7})

	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the FIRST record's body: a complete record
	// whose checksum no longer matches — disk damage, not a torn tail.
	img[walHeaderLen+recHeaderLen+4] ^= 0xFF
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenStore(dir, "n")
	if err == nil {
		t.Fatal("corrupted WAL record opened silently")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not tagged ErrCorrupt: %v", err)
	}
}

func TestStoreVersionMismatchFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	path := writeStoreWAL(t, dir, WALRecord{Kind: recSweepGen, Gen: 1})
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(img[len(walMagic):], SnapshotVersion+1)
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenStore(dir, "n"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future-version WAL: want ErrCorrupt, got %v", err)
	}
}

func TestStoreCorruptSnapshotFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	st, state, err := OpenStore(dir, "n")
	if err != nil {
		t.Fatal(err)
	}
	state.Devices["d"] = testRecord(1)
	if err := st.Compact(state); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	path := snapPath(dir, 1)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0xFF
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenStore(dir, "n"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: want ErrCorrupt, got %v", err)
	}
}

func TestStoreRejectsForeignNode(t *testing.T) {
	dir := t.TempDir()
	st, state, err := OpenStore(dir, "n1")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(state); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenStore(dir, "n2"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign node dir: want ErrCorrupt, got %v", err)
	}
	if _, _, err := OpenStore(filepath.Join(dir, "fresh"), "n2"); err != nil {
		t.Fatalf("fresh subdir: %v", err)
	}
}
