package fed

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lofat/internal/asm"
	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/fleet"
	"lofat/internal/obs"
)

// DialFunc opens a control-plane transport to a verifier node.
type DialFunc func() (io.ReadWriteCloser, error)

// Config parameterises a Coordinator. Zero values select defaults.
type Config struct {
	// Replicas is the replication factor R: every device is placed on
	// an ordered set of R distinct nodes — the first live one acts for
	// it each sweep, the rest hold warm state and take over mid-sweep
	// when it fails (default 1: no replication, single-owner placement).
	Replicas int
	// VirtualNodes is the virtual-node count per physical node on the
	// placement ring (default DefaultReplicas).
	VirtualNodes int
	// ReadTimeout / WriteTimeout are the per-phase deadlines on
	// control-plane exchanges other than sweeps (default 30s each; a
	// negative value disables that deadline).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// SweepTimeout is the read deadline while waiting for a node's
	// sweep report — a sweep legitimately takes as long as the node's
	// slowest device rounds, so it gets its own, longer budget
	// (default 5m; negative disables).
	SweepTimeout time.Duration
	// RetryAttempts is the total number of transport attempts per node
	// exchange (default 2); RetryBackoff is the flat pre-retry delay
	// (default 50ms).
	RetryAttempts int
	RetryBackoff  time.Duration
	// BreakerThreshold trips a node's circuit breaker after this many
	// consecutive failed exchanges; the node then sits out
	// BreakerProbeAfter federated sweeps between half-open probes.
	// Default 3; negative disables. The same healthy → degraded →
	// tripped lifecycle the fleet applies per device, applied per node.
	BreakerThreshold  int
	BreakerProbeAfter int
	// Obs attaches the coordinator's observability hub: node gauges on
	// Reg, topology events (join/leave/rebalance) on Flight.
	Obs *obs.Hub
}

func (c *Config) fill() {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultReplicas
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.SweepTimeout == 0 {
		c.SweepTimeout = 5 * time.Minute
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerProbeAfter <= 0 {
		c.BreakerProbeAfter = 1
	}
}

func (c *Config) timeouts() attest.Timeouts {
	to := attest.Timeouts{Read: c.ReadTimeout, Write: c.WriteTimeout}
	if to.Read < 0 {
		to.Read = 0
	}
	if to.Write < 0 {
		to.Write = 0
	}
	return to
}

func (c *Config) sweepTimeouts() attest.Timeouts {
	to := c.timeouts()
	to.Read = c.SweepTimeout
	if to.Read < 0 {
		to.Read = 0
	}
	return to
}

// nodeClient is the coordinator's handle on one member node: a
// persistent control-plane connection (re-dialled on failure) plus the
// node's circuit-breaker bookkeeping.
//
// Two locks, deliberately: exMu serialises exchanges (the control
// plane is one request/response stream per node), while mu guards the
// connection handle and breaker state. They used to be one lock, which
// meant Leave's close() queued behind an in-flight sweep exchange for
// up to the full sweep timeout; with the split, close() severs the
// conn immediately — the blocked exchange takes a transport error and
// the closed flag stops its retry loop from re-dialling a node that is
// no longer a member.
type nodeClient struct {
	id   NodeID
	dial DialFunc

	exMu sync.Mutex // serialises request/response exchanges

	mu     sync.Mutex // guards everything below
	conn   io.ReadWriteCloser
	closed bool

	fails      int
	breaker    fleet.BreakerState
	breakerGen uint64
	// lame mirrors the node's last reported lame-duck flag; the sweep
	// planner deprioritises lame nodes when choosing acting replicas.
	lame    bool
	devices atomic.Int64 // last reported enrolment, for the gauge
}

// isLame reports the node's last known lame-duck state.
func (nc *nodeClient) isLame() bool {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.lame
}

// setLame records the lame-duck flag from a sweep report; it reports
// whether the flag flipped on.
func (nc *nodeClient) setLame(lame bool) (flipped bool) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	flipped = lame && !nc.lame
	nc.lame = lame
	return flipped
}

// deviceMeta is the coordinator's own record of an enrolment — enough
// to re-enroll the device fresh if its owning node dies with the state.
type deviceMeta struct {
	Program attest.ProgramID
	Pub     ed25519.PublicKey
	Addr    string
}

// Coordinator owns the federation: the placement ring, one client per
// member node, the authoritative enrolment table, and the sweep fan-out
// that merges per-node reports into fleet verdicts.
type Coordinator struct {
	cfg     Config
	flight  *obs.Flight
	tracer  *obs.Tracer
	metrics *coordMetrics

	mu       sync.Mutex
	ring     *Ring
	clients  map[NodeID]*nodeClient
	programs map[attest.ProgramID]registerReq
	devices  map[fleet.DeviceID]deviceMeta
	sweepGen uint64
	// topoGen counts ring/membership mutations; a sweep re-reads its
	// placement between failover waves when it observes a newer
	// generation, so a Leave or Rejoin landing mid-sweep cannot leave a
	// wave routing devices by a ring that no longer exists.
	topoGen uint64
}

type coordMetrics struct {
	sweeps        obs.Counter
	nodeFailures  obs.Counter
	nodeRetries   obs.Counter
	breakerTrips  obs.Counter
	breakerResets obs.Counter
	rebalanced    obs.Counter
	transferred   obs.Counter

	failoverDevices  obs.Counter
	failoverWaves    obs.Counter
	uncoveredDevices obs.Counter
	syncedRecords    obs.Counter
}

// NewCoordinator builds an empty federation.
func NewCoordinator(cfg Config) *Coordinator {
	cfg.fill()
	c := &Coordinator{
		cfg:      cfg,
		ring:     NewRing(cfg.VirtualNodes),
		clients:  make(map[NodeID]*nodeClient),
		programs: make(map[attest.ProgramID]registerReq),
		devices:  make(map[fleet.DeviceID]deviceMeta),
		metrics:  &coordMetrics{},
	}
	if hub := cfg.Obs; hub != nil {
		c.flight = hub.Flight
		c.tracer = hub.Tracer
		if reg := hub.Reg; reg != nil {
			reg.RegisterCounter("lofat_fed_sweeps", "", "Federated sweeps completed.", &c.metrics.sweeps)
			reg.RegisterCounter("lofat_fed_node_failures", "", "Node exchanges lost after all attempts.", &c.metrics.nodeFailures)
			reg.RegisterCounter("lofat_fed_node_retries", "", "Extra node-exchange attempts beyond the first.", &c.metrics.nodeRetries)
			reg.RegisterCounter("lofat_fed_node_breaker_trips", "", "Node circuit-breaker trips.", &c.metrics.breakerTrips)
			reg.RegisterCounter("lofat_fed_node_breaker_resets", "", "Node circuit-breaker resets.", &c.metrics.breakerResets)
			reg.RegisterCounter("lofat_fed_rebalanced_devices", "", "Devices reassigned by ring changes.", &c.metrics.rebalanced)
			reg.RegisterCounter("lofat_fed_transferred_devices", "", "Reassigned devices moved with full state.", &c.metrics.transferred)
			reg.RegisterCounter("lofat_fed_failover_devices", "", "Devices re-issued against a replica after their acting node failed mid-sweep.", &c.metrics.failoverDevices)
			reg.RegisterCounter("lofat_fed_failover_waves", "", "Extra placement waves federated sweeps needed beyond the first.", &c.metrics.failoverWaves)
			reg.RegisterCounter("lofat_fed_uncovered_devices", "", "Devices no live replica could verify in a sweep.", &c.metrics.uncoveredDevices)
			reg.RegisterCounter("lofat_fed_synced_records", "", "Device records pushed to replicas by anti-entropy.", &c.metrics.syncedRecords)
			reg.RegisterGaugeFunc("lofat_fed_lame_nodes", "", "Member nodes in lame-duck (read-only) service.", func() int64 {
				var lame int64
				for _, nc := range c.clientList() {
					if nc.isLame() {
						lame++
					}
				}
				return lame
			})
			reg.RegisterGaugeFunc("lofat_fed_nodes", "", "Member verifier nodes.", func() int64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return int64(c.ring.Len())
			})
			reg.RegisterGaugeFunc("lofat_fed_devices", "", "Devices enrolled across the federation.", func() int64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return int64(len(c.devices))
			})
		}
	}
	return c
}

// RebalanceReport summarises the device moves one ring change caused.
type RebalanceReport struct {
	// Node is the node that joined or left; Joined says which.
	Node   NodeID
	Joined bool
	// Moved devices changed owner; Transferred of those moved with
	// their full state (quarantine, breaker, counters) from the old
	// owner, and Recovered were re-enrolled fresh from coordinator
	// metadata because the old owner could not hand them off.
	Moved       int
	Transferred int
	Recovered   int
	// Errors lists devices that could not be placed at all (their new
	// owner refused the enrolment).
	Errors []string
}

// Join adds a verifier node to the federation: programs are registered
// on it, the ring is extended, and every device whose placement moved
// onto the new node is handed off (with state where possible).
func (c *Coordinator) Join(id NodeID, dial DialFunc) (*RebalanceReport, error) {
	c.mu.Lock()
	if _, dup := c.clients[id]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("fed: node %s already a member", id)
	}
	nc := &nodeClient{id: id, dial: dial}
	progs := c.programSpecs()
	c.mu.Unlock()

	// Register every known program before the node owns any devices.
	for _, spec := range progs {
		var resp okResp
		if _, err := c.request(nc, msgRegister, spec, msgOK, &resp, c.cfg.timeouts()); err != nil {
			return nil, fmt.Errorf("fed: join %s: register program: %w", id, err)
		}
	}

	c.mu.Lock()
	old := c.ring.Clone()
	c.ring.Add(id)
	c.clients[id] = nc
	c.topoGen++
	c.mu.Unlock()
	c.recordTopology(obs.KindNodeJoin, id, "")
	rep := c.rebalance(old, id, true)
	return rep, nil
}

// Leave removes a node from the federation, first draining its devices
// to their new owners (with state while the node is still reachable).
func (c *Coordinator) Leave(id NodeID) (*RebalanceReport, error) {
	c.mu.Lock()
	nc, ok := c.clients[id]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("fed: node %s is not a member", id)
	}
	old := c.ring.Clone()
	c.ring.Remove(id)
	c.topoGen++
	c.mu.Unlock()
	rep := c.rebalance(old, id, false)
	c.mu.Lock()
	delete(c.clients, id)
	c.topoGen++
	c.mu.Unlock()
	nc.close()
	c.recordTopology(obs.KindNodeLeave, id, "")
	return rep, nil
}

// Rejoin reattaches a node that crashed and restarted without changing
// the ring: the client connection and breaker are reset, programs are
// re-registered (idempotent node-side; a warm node adopts its restored
// devices here). State then reconciles in two tiers. Devices with a
// live replica on another node are bulk-fetched from that peer and
// pushed onto the rejoiner — the peers kept acting while this node was
// down, so their copy is authoritative and carries quarantines and
// breaker history the rejoiner's own store missed. Devices with no
// live peer (R=1, or every other replica dead) fall back to the old
// path: keep whatever the node restored from disk, re-enroll fresh
// from coordinator metadata only if it holds nothing.
func (c *Coordinator) Rejoin(id NodeID, dial DialFunc) error {
	c.mu.Lock()
	if !c.ring.Has(id) {
		c.mu.Unlock()
		return fmt.Errorf("fed: node %s is not a member (use Join)", id)
	}
	if old := c.clients[id]; old != nil {
		old.close()
	}
	nc := &nodeClient{id: id, dial: dial}
	c.clients[id] = nc
	c.topoGen++
	progs := c.programSpecs()
	owned := c.ownedBy(id)
	peers := make(map[NodeID]*nodeClient, len(c.clients))
	for pid, pc := range c.clients {
		if pid != id {
			peers[pid] = pc
		}
	}
	peerOf := make(map[fleet.DeviceID]NodeID, len(owned))
	for _, dev := range owned {
		for _, o := range c.ring.AssignN(string(dev.id), c.cfg.Replicas) {
			if o != id && peers[o] != nil {
				peerOf[dev.id] = o
				break
			}
		}
	}
	c.mu.Unlock()

	for _, spec := range progs {
		var resp okResp
		if _, err := c.request(nc, msgRegister, spec, msgOK, &resp, c.cfg.timeouts()); err != nil {
			return fmt.Errorf("fed: rejoin %s: register program: %w", id, err)
		}
	}

	// Tier 1: pull authoritative records from live peer replicas, then
	// push them onto the rejoiner (enroll-or-overwrite node-side).
	// Failures demote the affected devices to the tier-2 path instead of
	// failing the rejoin — a flaky peer must not keep a node out.
	byPeer := make(map[NodeID][]fleet.DeviceID)
	for _, dev := range owned {
		if peer, ok := peerOf[dev.id]; ok {
			byPeer[peer] = append(byPeer[peer], dev.id)
		}
	}
	synced := make(map[fleet.DeviceID]bool)
	peerIDs := make([]NodeID, 0, len(byPeer))
	for peer := range byPeer {
		peerIDs = append(peerIDs, peer)
	}
	sort.Slice(peerIDs, func(i, j int) bool { return peerIDs[i] < peerIDs[j] })
	for _, peer := range peerIDs {
		ids := byPeer[peer]
		var recs recordsResp
		if _, err := c.request(peers[peer], msgFetch, fetchReq{Devices: ids}, msgRecords, &recs, c.cfg.timeouts()); err != nil {
			continue
		}
		if len(recs.Records) == 0 {
			continue
		}
		if err := c.pushRecords(nc, recs.Records); err != nil {
			return fmt.Errorf("fed: rejoin %s: sync state from %s: %w", id, peer, err)
		}
		c.metrics.syncedRecords.Add(uint64(len(recs.Records)))
		for _, rec := range recs.Records {
			synced[rec.ID] = true
		}
	}

	// Tier 2: no live peer had the device — trust the node's own
	// restored copy, re-enrolling fresh only when it holds nothing.
	for _, dev := range owned {
		if synced[dev.id] {
			continue
		}
		var st stateResp
		if _, err := c.request(nc, msgGet, deviceReq{Device: dev.id}, msgState, &st, c.cfg.timeouts()); err != nil {
			return fmt.Errorf("fed: rejoin %s: query device %q: %w", id, dev.id, err)
		}
		if st.Found {
			continue
		}
		var ok okResp
		if _, err := c.request(nc, msgEnroll, enrollReq{State: freshState(dev.id, dev.meta)}, msgOK, &ok, c.cfg.timeouts()); err != nil {
			return fmt.Errorf("fed: rejoin %s: re-enroll device %q: %w", id, dev.id, err)
		}
	}
	c.recordTopology(obs.KindNodeJoin, id, "rejoin")
	return nil
}

// syncChunk bounds one msgSync payload; anti-entropy and rejoin pushes
// split larger record sets so no frame nears the transport's 16 MiB cap.
const syncChunk = 2048

// pushRecords upserts records onto a node in bounded chunks.
func (c *Coordinator) pushRecords(nc *nodeClient, recs []DeviceRecord) error {
	for len(recs) > 0 {
		chunk := recs
		if len(chunk) > syncChunk {
			chunk = chunk[:syncChunk]
		}
		recs = recs[len(chunk):]
		var resp okResp
		if _, err := c.request(nc, msgSync, syncReq{Records: chunk}, msgOK, &resp, c.cfg.timeouts()); err != nil {
			return err
		}
	}
	return nil
}

type ownedDevice struct {
	id   fleet.DeviceID
	meta deviceMeta
}

// ownedBy lists devices whose replica set includes node, sorted. Caller
// holds c.mu.
func (c *Coordinator) ownedBy(node NodeID) []ownedDevice {
	var out []ownedDevice
	for id, meta := range c.devices {
		for _, owner := range c.ring.AssignN(string(id), c.cfg.Replicas) {
			if owner == node {
				out = append(out, ownedDevice{id: id, meta: meta})
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// programSpecs lists registered program specs. Caller holds c.mu.
func (c *Coordinator) programSpecs() []registerReq {
	out := make([]registerReq, 0, len(c.programs))
	for _, spec := range c.programs {
		out = append(out, spec)
	}
	return out
}

// freshState is the zero-history DeviceState of a new (or recovered)
// enrolment.
func freshState(id fleet.DeviceID, meta deviceMeta) fleet.DeviceState {
	return fleet.DeviceState{ID: id, Addr: meta.Addr, Program: meta.Program, Pub: meta.Pub}
}

// rebalance moves every (device, replica) assignment that changed
// between the old and new ring. For each replica a device gained, the
// coordinator first tries a stateful hand-off — Transfer from a holder
// the device lost (the leave-drain path: state moves off the departing
// node), then a copy from a surviving replica — and falls back to a
// fresh enrolment from its own metadata when neither source answers
// (the changed node, on a leave, may already be dead; that must not
// strand its devices). Lost holders that no hand-off consumed are then
// drained with a discard-Transfer so standby copies do not accumulate
// on nodes the ring no longer assigns.
func (c *Coordinator) rebalance(old *Ring, changed NodeID, joined bool) *RebalanceReport {
	rep := &RebalanceReport{Node: changed, Joined: joined}
	c.mu.Lock()
	type move struct {
		id        fleet.DeviceID
		meta      deviceMeta
		added     []NodeID
		removed   []NodeID
		survivors []NodeID
	}
	var moves []move
	for id, meta := range c.devices {
		oldOwners := old.AssignN(string(id), c.cfg.Replicas)
		newOwners := c.ring.AssignN(string(id), c.cfg.Replicas)
		if len(newOwners) == 0 {
			continue // ring emptied; nothing to place onto
		}
		was := make(map[NodeID]bool, len(oldOwners))
		for _, o := range oldOwners {
			was[o] = true
		}
		now := make(map[NodeID]bool, len(newOwners))
		for _, o := range newOwners {
			now[o] = true
		}
		mv := move{id: id, meta: meta}
		for _, o := range newOwners {
			if was[o] {
				mv.survivors = append(mv.survivors, o)
			} else {
				mv.added = append(mv.added, o)
			}
		}
		for _, o := range oldOwners {
			if !now[o] {
				mv.removed = append(mv.removed, o)
			}
		}
		if len(mv.added) == 0 && len(mv.removed) == 0 {
			continue
		}
		moves = append(moves, mv)
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].id < moves[j].id })
	clients := make(map[NodeID]*nodeClient, len(c.clients))
	for id, nc := range c.clients {
		clients[id] = nc
	}
	c.mu.Unlock()

	for _, mv := range moves {
		rep.Moved++
		c.metrics.rebalanced.Inc()
		removedPool := append([]NodeID(nil), mv.removed...)
		stateful, recovered := false, false
		for _, target := range mv.added {
			state := freshState(mv.id, mv.meta)
			got := false
			// Preferred source: a holder the device lost — Transfer both
			// moves the state and drains the old copy in one exchange.
			if len(removedPool) > 0 {
				if from := clients[removedPool[0]]; from != nil {
					var st stateResp
					if _, err := c.request(from, msgTransfer, deviceReq{Device: mv.id}, msgState, &st, c.cfg.timeouts()); err == nil && st.Found {
						state = st.State
						got = true
						removedPool = removedPool[1:]
					}
				}
			}
			// Else copy from a surviving replica (which keeps its copy).
			if !got {
				for _, src := range mv.survivors {
					if from := clients[src]; from != nil {
						var st stateResp
						if _, err := c.request(from, msgGet, deviceReq{Device: mv.id}, msgState, &st, c.cfg.timeouts()); err == nil && st.Found {
							state = st.State
							got = true
							break
						}
					}
				}
			}
			to := clients[target]
			if to == nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("%s: new owner %s has no client", mv.id, target))
				continue
			}
			var ok okResp
			if _, err := c.request(to, msgEnroll, enrollReq{State: state}, msgOK, &ok, c.cfg.timeouts()); err != nil {
				// A refusal usually means the target already holds the
				// device — a warm copy from an earlier topology, or a
				// concurrent sweep's anti-entropy push landing first.
				// Upsert the authoritative hand-off state over it rather
				// than failing the move; transport errors stay errors.
				var ne *NodeError
				if !errors.As(err, &ne) {
					rep.Errors = append(rep.Errors, fmt.Sprintf("%s: enroll on %s: %v", mv.id, target, err))
					continue
				}
				if serr := c.pushRecords(to, []DeviceRecord{RecordFromState(state)}); serr != nil {
					rep.Errors = append(rep.Errors, fmt.Sprintf("%s: enroll on %s: %v", mv.id, target, err))
					continue
				}
			}
			if got {
				stateful = true
			} else {
				recovered = true
			}
			if c.flight.Enabled() {
				c.flight.Record(obs.Event{Device: string(mv.id), Kind: obs.KindRebalance,
					Detail: fmt.Sprintf("→ %s", target)})
			}
		}
		// Drain surplus copies no hand-off consumed (best-effort: the
		// holder may already be dead, and a stale standby copy is only
		// wasted memory, never authoritative).
		for _, holder := range removedPool {
			if from := clients[holder]; from != nil {
				var st stateResp
				_, _ = c.request(from, msgTransfer, deviceReq{Device: mv.id}, msgState, &st, c.cfg.timeouts())
			}
		}
		switch {
		case stateful:
			rep.Transferred++
			c.metrics.transferred.Inc()
		case recovered:
			rep.Recovered++
		}
	}
	return rep
}

// recordTopology logs a node join/leave flight event.
func (c *Coordinator) recordTopology(kind obs.EventKind, id NodeID, detail string) {
	if c.flight.Enabled() {
		c.flight.Record(obs.Event{Device: string(id), Kind: kind, Detail: detail})
	}
}

// RegisterProgram registers a firmware image on every member node and
// remembers the spec for nodes that join later.
func (c *Coordinator) RegisterProgram(prog *asm.Program, devCfg core.Config, inputs [][]uint32) (attest.ProgramID, error) {
	spec := registerReq{Prog: prog, DevCfg: devCfg, Inputs: inputs}
	clients := c.clientList()
	if len(clients) == 0 {
		return attest.ProgramID{}, fmt.Errorf("fed: no member nodes")
	}
	var id attest.ProgramID
	for _, nc := range clients {
		var resp okResp
		if _, err := c.request(nc, msgRegister, spec, msgOK, &resp, c.cfg.timeouts()); err != nil {
			return attest.ProgramID{}, fmt.Errorf("fed: register on %s: %w", nc.id, err)
		}
		id = resp.Program
	}
	c.mu.Lock()
	c.programs[id] = spec
	c.mu.Unlock()
	return id, nil
}

// Enroll places a device on its full replica set: the fresh state is
// enrolled on every owner, so standbys hold warm copies from round
// zero. Enrolment is all-or-nothing — a replica that refuses (a lame
// duck, say) fails the enrol and the copies already placed are rolled
// back, keeping the invariant that an enrolled device is held by all
// of its owners.
func (c *Coordinator) Enroll(id fleet.DeviceID, prog attest.ProgramID, pub ed25519.PublicKey, addr string) error {
	c.mu.Lock()
	if _, dup := c.devices[id]; dup {
		c.mu.Unlock()
		return fmt.Errorf("fed: device %q already enrolled", id)
	}
	owners := c.ring.AssignN(string(id), c.cfg.Replicas)
	if len(owners) == 0 {
		c.mu.Unlock()
		return fmt.Errorf("fed: no member nodes")
	}
	targets := make([]*nodeClient, len(owners))
	for i, o := range owners {
		targets[i] = c.clients[o]
	}
	meta := deviceMeta{Program: prog, Pub: append(ed25519.PublicKey(nil), pub...), Addr: addr}
	c.mu.Unlock()

	state := freshState(id, meta)
	for i, nc := range targets {
		var resp okResp
		if _, err := c.request(nc, msgEnroll, enrollReq{State: state}, msgOK, &resp, c.cfg.timeouts()); err != nil {
			for _, prev := range targets[:i] {
				var st stateResp
				_, _ = c.request(prev, msgTransfer, deviceReq{Device: id}, msgState, &st, c.cfg.timeouts())
			}
			return fmt.Errorf("fed: enroll %q on %s: %w", id, owners[i], err)
		}
	}
	c.mu.Lock()
	c.devices[id] = meta
	c.mu.Unlock()
	return nil
}

// Owner reports the node acting for a device: the first owner in its
// replica set — the one a fault-free sweep challenges it from.
func (c *Coordinator) Owner(id fleet.DeviceID) (NodeID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, known := c.devices[id]; !known {
		return "", false
	}
	return c.ring.Assign(string(id))
}

// replicaClients snapshots the live clients for a device's replica set,
// in placement order.
func (c *Coordinator) replicaClients(id fleet.DeviceID) []*nodeClient {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*nodeClient
	for _, o := range c.ring.AssignN(string(id), c.cfg.Replicas) {
		if nc := c.clients[o]; nc != nil {
			out = append(out, nc)
		}
	}
	return out
}

// Device queries a device's registry state, walking its replica set in
// placement order so a dead primary does not mask a live copy.
func (c *Coordinator) Device(id fleet.DeviceID) (fleet.DeviceState, NodeID, error) {
	cands := c.replicaClients(id)
	if len(cands) == 0 {
		return fleet.DeviceState{}, "", fmt.Errorf("fed: no owner for device %q", id)
	}
	var lastErr error
	lastOwner := cands[0].id
	for _, nc := range cands {
		var st stateResp
		if _, err := c.request(nc, msgGet, deviceReq{Device: id}, msgState, &st, c.cfg.timeouts()); err != nil {
			lastErr, lastOwner = err, nc.id
			continue
		}
		if st.Found {
			return st.State, nc.id, nil
		}
		lastErr, lastOwner = fmt.Errorf("fed: device %q not held by node %s", id, nc.id), nc.id
	}
	return fleet.DeviceState{}, lastOwner, lastErr
}

// Release lifts a device's quarantine on every reachable replica — the
// copies must agree immediately, not at the next anti-entropy pass, or
// a failover could resurrect the quarantine the operator just lifted.
// It succeeds when at least one holder applied the release.
func (c *Coordinator) Release(id fleet.DeviceID) error {
	cands := c.replicaClients(id)
	if len(cands) == 0 {
		return fmt.Errorf("fed: no owner for device %q", id)
	}
	applied := false
	var firstErr error
	for _, nc := range cands {
		var st stateResp
		if _, err := c.request(nc, msgRelease, deviceReq{Device: id}, msgState, &st, c.cfg.timeouts()); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if st.Found {
			applied = true
		}
	}
	if applied {
		return nil
	}
	if firstErr != nil {
		return firstErr
	}
	return fmt.Errorf("fed: device %q not held by node %s", id, cands[0].id)
}

// Nodes lists member node IDs, sorted.
func (c *Coordinator) Nodes() []NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Nodes()
}

// FleetSize reports the coordinator's enrolment count.
func (c *Coordinator) FleetSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.devices)
}

// clientList snapshots the member clients sorted by node ID.
func (c *Coordinator) clientList() []*nodeClient {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*nodeClient, 0, len(c.clients))
	for _, nc := range c.clients {
		out = append(out, nc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Sweep fans one federated sweep out over the program's devices and
// merges per-node reports into a single fleet verdict. Placement is
// wave-based: wave 1 challenges every device from the first live,
// non-lame node in its replica set (and still contacts owner-less
// member nodes, keeping node health observable); when a node's breaker
// is open or its exchange fails mid-sweep, the devices it was acting
// for are re-issued against their next live replica in the following
// wave of the SAME sweep, with per-device attribution in the verdict.
// A device whose every replica is dead is reported Uncovered rather
// than silently dropped. After the waves, an anti-entropy pass pushes
// the device records the sweep changed onto their other live replicas
// so standbys stay warm for the next failure.
func (c *Coordinator) Sweep(prog attest.ProgramID, input []uint32, streamed bool) (*FleetVerdict, error) {
	gen := atomic.AddUint64(&c.sweepGen, 1)
	start := time.Now()
	R := c.cfg.Replicas
	wantDelta := R > 1

	c.mu.Lock()
	if len(c.clients) == 0 {
		c.mu.Unlock()
		return nil, fmt.Errorf("fed: no member nodes")
	}
	remaining := make([]fleet.DeviceID, 0, len(c.devices))
	for id, meta := range c.devices {
		if meta.Program == prog {
			remaining = append(remaining, id)
		}
	}
	sort.Slice(remaining, func(i, j int) bool { return remaining[i] < remaining[j] })
	topo := c.topoGen
	memberCount := len(c.clients)
	c.mu.Unlock()

	// Per-sweep node fates. A node that skips (breaker open) or fails
	// its exchange is dead for the remaining waves: failover reroutes
	// its devices, it is never retried within this sweep.
	type gateRes struct{ skip, probe bool }
	gates := make(map[NodeID]gateRes)
	dead := make(map[NodeID]bool)
	folded := make(map[NodeID]NodeReport)
	next := make(map[fleet.DeviceID]int) // replica cursor per device
	failedOver := make(map[fleet.DeviceID]NodeID)
	var uncovered []fleet.DeviceID

	waves := 0
	for waves <= 2*memberCount+2 { // belt: cursor advance already bounds this
		waves++

		// Snapshot membership and placement for this wave. If topology
		// moved since the last wave (Leave/Join/Rejoin mid-sweep), the
		// replica cursors index stale owner lists — reset them; the dead
		// map still keeps failed nodes out.
		c.mu.Lock()
		clients := make(map[NodeID]*nodeClient, len(c.clients))
		for id, nc := range c.clients {
			clients[id] = nc
		}
		if c.topoGen != topo {
			topo = c.topoGen
			next = make(map[fleet.DeviceID]int)
		}
		owners := make(map[fleet.DeviceID][]NodeID, len(remaining))
		for _, id := range remaining {
			if _, held := c.devices[id]; !held {
				continue // released/forgotten mid-sweep: drop, not uncovered
			}
			owners[id] = c.ring.AssignN(string(id), R)
		}
		c.mu.Unlock()

		gate := func(n NodeID, nc *nodeClient) gateRes {
			if g, ok := gates[n]; ok {
				return g
			}
			skip, probe := nc.breakerCheck(gen, c.cfg.BreakerProbeAfter)
			g := gateRes{skip: skip, probe: probe}
			gates[n] = g
			if skip {
				dead[n] = true
				folded[n] = NodeReport{Node: n, Skipped: true}
			}
			return g
		}

		// Group each remaining device onto its first usable replica:
		// live, not dead this sweep, breaker closed, and not lame — a
		// lame duck still serves sweeps, so it is the fallback of last
		// resort before declaring the device uncovered.
		groups := make(map[NodeID][]fleet.DeviceID)
		picked := make(map[fleet.DeviceID]int)
		for _, id := range remaining {
			own := owners[id]
			chosen, lameIdx := -1, -1
			for j := next[id]; j < len(own); j++ {
				n := own[j]
				if dead[n] {
					continue
				}
				nc := clients[n]
				if nc == nil {
					continue
				}
				if gate(n, nc).skip {
					continue
				}
				if nc.isLame() {
					if lameIdx < 0 {
						lameIdx = j
					}
					continue
				}
				chosen = j
				break
			}
			if chosen < 0 {
				chosen = lameIdx
			}
			if chosen < 0 {
				uncovered = append(uncovered, id)
				continue
			}
			picked[id] = chosen
			groups[own[chosen]] = append(groups[own[chosen]], id)
		}
		if waves == 1 {
			// Contact every live member even if it acts for nothing: the
			// empty exchange is the health probe that keeps NodesOK (and
			// lame-duck reporting) covering the whole federation.
			for n, nc := range clients {
				if dead[n] || gate(n, nc).skip {
					continue
				}
				if _, has := groups[n]; !has {
					groups[n] = nil
				}
			}
		}
		if len(groups) == 0 {
			break
		}

		type waveRes struct {
			node NodeID
			devs []fleet.DeviceID
			rep  NodeReport
		}
		results := make(chan waveRes, len(groups))
		var wg sync.WaitGroup
		for n, devs := range groups {
			wg.Add(1)
			go func(n NodeID, devs []fleet.DeviceID) {
				defer wg.Done()
				rep := c.sweepNode(clients[n], prog, input, streamed, gen, gates[n].probe, devs, wantDelta)
				results <- waveRes{node: n, devs: devs, rep: rep}
			}(n, devs)
		}
		wg.Wait()
		close(results)

		remaining = remaining[:0]
		for res := range results {
			prev, seen := folded[res.node]
			if !seen {
				prev = NodeReport{Node: res.node}
			}
			folded[res.node] = foldNodeReport(prev, res.rep)
			if res.rep.Err != "" {
				// Whatever this node was acting for moves to the next
				// replica in the following wave.
				dead[res.node] = true
				for _, id := range res.devs {
					next[id] = picked[id] + 1
					remaining = append(remaining, id)
				}
				continue
			}
			for _, id := range res.devs {
				if picked[id] == 0 {
					continue
				}
				// Served by a non-primary replica: mid-sweep failover.
				failedOver[id] = res.node
				c.metrics.failoverDevices.Inc()
				if c.flight.Enabled() {
					from := NodeID("?")
					if own := owners[id]; len(own) > 0 {
						from = own[0]
					}
					c.flight.Record(obs.Event{Device: string(id), Kind: obs.KindFailover, Sweep: gen,
						Detail: fmt.Sprintf("%s → %s", from, res.node)})
				}
			}
		}
		if len(remaining) == 0 {
			break
		}
		sort.Slice(remaining, func(i, j int) bool { return remaining[i] < remaining[j] })
	}
	if len(remaining) > 0 {
		uncovered = append(uncovered, remaining...) // wave belt tripped
	}

	if wantDelta {
		c.antiEntropy(folded, dead)
	}

	reports := make([]NodeReport, 0, len(folded))
	for _, rep := range folded {
		reports = append(reports, rep)
	}
	sort.Slice(uncovered, func(i, j int) bool { return uncovered[i] < uncovered[j] })
	c.metrics.sweeps.Inc()
	if waves > 1 {
		c.metrics.failoverWaves.Add(uint64(waves - 1))
	}
	c.metrics.uncoveredDevices.Add(uint64(len(uncovered)))
	if len(failedOver) == 0 {
		failedOver = nil
	}
	return mergeVerdict(prog, input, reports, failedOver, uncovered, waves, time.Since(start)), nil
}

// antiEntropy reconciles replicas after a sweep: every device record a
// node's waves changed is pushed onto the device's other live replicas,
// so a standby that takes over at the next failure starts from the
// state the acting node just wrote (quarantines, streaks, breakers) —
// not from the enrolment-time snapshot. Push failures are tolerated:
// the records re-surface as drift in the next sweep's delta.
func (c *Coordinator) antiEntropy(folded map[NodeID]NodeReport, dead map[NodeID]bool) {
	c.mu.Lock()
	clients := make(map[NodeID]*nodeClient, len(c.clients))
	for id, nc := range c.clients {
		clients[id] = nc
	}
	targetsOf := func(id fleet.DeviceID) []NodeID {
		if _, held := c.devices[id]; !held {
			return nil
		}
		return c.ring.AssignN(string(id), c.cfg.Replicas)
	}
	push := make(map[NodeID][]DeviceRecord)
	for source, rep := range folded {
		for _, rec := range rep.Changed {
			for _, target := range targetsOf(rec.ID) {
				if target == source || dead[target] || clients[target] == nil {
					continue
				}
				push[target] = append(push[target], rec)
			}
		}
	}
	c.mu.Unlock()

	targets := make([]NodeID, 0, len(push))
	for t := range push {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, t := range targets {
		if err := c.pushRecords(clients[t], push[t]); err != nil {
			continue
		}
		c.metrics.syncedRecords.Add(uint64(len(push[t])))
	}
}

// sweepNode runs one node's sweep exchange for its acting device set.
// Breaker gating already happened at the planner; this folds the
// outcome back into the breaker — with the twist that a node removed
// from the federation mid-exchange (Leave raced the sweep) must not
// have the failure its severed connection produced counted as breaker
// evidence against a future member under the same ID.
func (c *Coordinator) sweepNode(nc *nodeClient, prog attest.ProgramID, input []uint32, streamed bool, gen uint64, probe bool, devs []fleet.DeviceID, wantDelta bool) NodeReport {
	rep := NodeReport{Node: nc.id, Probe: probe}
	req := sweepReq{Program: prog, Input: input, Streamed: streamed, Explicit: true, Devices: devs, WantDelta: wantDelta}
	var nodeRep NodeReport
	attempts, err := c.request(nc, msgSweep, req, msgReport, &nodeRep, c.cfg.sweepTimeouts())
	rep.Attempts = attempts
	if err != nil {
		rep.Err = err.Error()
		var ne *NodeError
		if !errors.As(err, &ne) {
			// Transport failure: breaker evidence. A NodeError is not —
			// the node answered; it just refused the request.
			c.metrics.nodeFailures.Inc()
			c.mu.Lock()
			member := c.clients[nc.id] == nc
			c.mu.Unlock()
			if member {
				if tripped := nc.advanceBreaker(c.cfg.BreakerThreshold, gen); tripped {
					c.metrics.breakerTrips.Inc()
					c.recordTopology(obs.KindNodeLeave, nc.id, "breaker tripped: "+err.Error())
				}
			}
		}
		return rep
	}
	if reset := nc.recordSuccess(); reset {
		c.metrics.breakerResets.Inc()
	}
	if flipped := nc.setLame(nodeRep.LameDuck); flipped && c.flight.Enabled() {
		c.flight.Record(obs.Event{Device: string(nc.id), Kind: obs.KindLameDuck, Sweep: gen,
			Detail: nodeRep.StoreErr})
	}
	nodeRep.Probe = probe
	nodeRep.Attempts = attempts
	nc.devices.Store(int64(nodeRep.Devices))
	return nodeRep
}

// request runs one exchange against a node with bounded retries on
// transport failures, re-dialling the persistent connection per
// attempt. It returns the attempts spent. Only exMu is held across the
// wire exchange: a concurrent close() (Leave, Rejoin) severs the
// connection under the state lock, failing the in-flight exchange
// immediately, and the closed flag stops the retry loop from
// re-dialling a node that is no longer a member.
func (c *Coordinator) request(nc *nodeClient, reqTyp byte, req any, respTyp byte, resp any, to attest.Timeouts) (int, error) {
	if nc == nil {
		return 0, fmt.Errorf("fed: no client for node")
	}
	nc.exMu.Lock()
	defer nc.exMu.Unlock()
	var err error
	for attempt := 1; attempt <= c.cfg.RetryAttempts; attempt++ {
		if attempt > 1 {
			c.metrics.nodeRetries.Inc()
			time.Sleep(c.cfg.RetryBackoff)
		}
		nc.mu.Lock()
		if nc.closed {
			nc.mu.Unlock()
			return attempt, fmt.Errorf("fed: node %s: client closed", nc.id)
		}
		conn := nc.conn
		nc.mu.Unlock()
		if conn == nil {
			conn, err = nc.dial()
			if err != nil {
				err = fmt.Errorf("fed: dial node %s: %w", nc.id, err)
				continue
			}
			nc.mu.Lock()
			if nc.closed {
				nc.mu.Unlock()
				conn.Close()
				return attempt, fmt.Errorf("fed: node %s: client closed", nc.id)
			}
			nc.conn = conn
			nc.mu.Unlock()
		}
		err = exchange(conn, to, nc.id, reqTyp, req, respTyp, resp)
		if err == nil {
			return attempt, nil
		}
		var te *attest.TransportError
		if errors.As(err, &te) {
			// The stream is dead or desynchronised; next attempt re-dials.
			nc.mu.Lock()
			if nc.conn == conn {
				nc.conn = nil
			}
			closed := nc.closed
			nc.mu.Unlock()
			conn.Close()
			if closed {
				return attempt, err
			}
			continue
		}
		// Node-level refusal or protocol mismatch: not retryable.
		return attempt, err
	}
	return c.cfg.RetryAttempts, err
}

// breakerCheck gates one sweep exchange on the node's breaker.
func (nc *nodeClient) breakerCheck(gen uint64, probeAfter int) (skip, probe bool) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.breaker != fleet.BreakerTripped {
		return false, false
	}
	if gen > nc.breakerGen+uint64(probeAfter) {
		return false, true
	}
	return true, false
}

// advanceBreaker folds one failed exchange into the node breaker; it
// reports whether this failure newly tripped it.
func (nc *nodeClient) advanceBreaker(threshold int, gen uint64) bool {
	if threshold < 0 {
		return false
	}
	nc.mu.Lock()
	defer nc.mu.Unlock()
	nc.fails++
	switch {
	case nc.breaker == fleet.BreakerTripped:
		nc.breakerGen = gen
		return false
	case nc.fails >= threshold:
		nc.breaker = fleet.BreakerTripped
		nc.breakerGen = gen
		return true
	default:
		nc.breaker = fleet.BreakerDegraded
		return false
	}
}

// recordSuccess resets the node breaker after a completed exchange; it
// reports whether an open breaker closed.
func (nc *nodeClient) recordSuccess() (reset bool) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	reset = nc.breaker == fleet.BreakerTripped
	nc.fails = 0
	nc.breaker = fleet.BreakerHealthy
	return reset
}

// close marks the client dead and severs its connection. It does NOT
// wait for in-flight exchanges — severing the conn fails them with a
// transport error, and the closed flag stops their retry loops.
func (nc *nodeClient) close() {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	nc.closed = true
	if nc.conn != nil {
		nc.conn.Close()
		nc.conn = nil
	}
}

// NodeBreaker reports a node's breaker position.
func (c *Coordinator) NodeBreaker(id NodeID) (fleet.BreakerState, bool) {
	c.mu.Lock()
	nc := c.clients[id]
	c.mu.Unlock()
	if nc == nil {
		return fleet.BreakerHealthy, false
	}
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.breaker, true
}

// Close tears down every node connection (the nodes themselves keep
// running; they are independent processes).
func (c *Coordinator) Close() {
	for _, nc := range c.clientList() {
		nc.close()
	}
}
